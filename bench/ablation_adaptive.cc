// §6.2.2 ablation: static S3-FIFO vs adaptive S3-FIFO-D across all traces,
// plus the adversarial pattern where adaptation is expected to help. The
// dataset sweep runs on the sweep engine; the adversarial pair shares one
// trace pass via MultiSimulate.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/sweep.h"
#include "bench/trace_source.h"
#include "src/sim/metrics.h"
#include "src/sim/multi_sim.h"
#include "src/workload/scan_workload.h"

namespace s3fifo {
namespace {

void Run(const BenchOptions& opts) {
  PrintHeader("Ablation: S3-FIFO vs S3-FIFO-D (adaptive queue sizes)", "§6.2.2");
  const double scale = BenchScale() * 0.25;

  const std::vector<PolicyVariant> variants = {
      {"s3fifo", "s3fifo", ""},
      {"s3fifo-d", "s3fifo-d", ""},
  };
  std::vector<double> delta;  // mr(s3fifo-d) - mr(s3fifo); negative = adaptive wins
  int adaptive_wins = 0, static_wins = 0, ties = 0;
  BenchTraceSource source(opts);
  const SweepSummary summary = RunMissRatioSweep(
      scale, variants, /*include_small=*/false,
      [&](const SweepCell& c) {
        const double mr_s = c.results[0].MissRatio();
        const double mr_d = c.results[1].MissRatio();
        delta.push_back(mr_d - mr_s);
        if (mr_d + 1e-4 < mr_s) {
          ++adaptive_wins;
        } else if (mr_s + 1e-4 < mr_d) {
          ++static_wins;
        } else {
          ++ties;
        }
      },
      opts.threads, /*progress=*/true, source.cache(), ParseMrcMode(opts.mrc));
  std::printf("across traces (large cache): adaptive wins %d, static wins %d, ties %d\n",
              adaptive_wins, static_wins, ties);
  const PercentileRow delta_row = Percentiles(delta);
  std::printf("%s\n", FormatPercentileRow("mr(D)-mr(S)", delta_row).c_str());

  // The adversarial two-hit pattern (with warm M), where adaptation helps.
  std::vector<Request> out;
  for (uint64_t w = 0; w < 400; ++w) {
    for (int rep = 0; rep < 3; ++rep) {
      Request r;
      r.id = (1ULL << 51) + w;
      out.push_back(r);
    }
  }
  Trace twohit = GenerateTwoHitPattern(static_cast<uint64_t>(20000 * BenchScale()), 30);
  uint64_t hot = 0;
  for (size_t i = 0; i < twohit.size(); ++i) {
    out.push_back(twohit[i]);
    Request r;
    r.id = (1ULL << 50) + (hot++ % 60);
    out.push_back(r);
  }
  Trace adversarial(std::move(out), "adversarial");
  CacheConfig config;
  config.capacity = 200;
  std::vector<std::unique_ptr<Cache>> pair;
  pair.push_back(CreateCache("s3fifo", config));
  config.params = "adapt_ghost_ratio=0.5";
  pair.push_back(CreateCache("s3fifo-d", config));
  const std::vector<SimResult> adv = MultiSimulate(adversarial, pair);
  std::printf("\nadversarial two-hit pattern: s3fifo mr=%.4f  s3fifo-d mr=%.4f\n",
              adv[0].MissRatio(), adv[1].MissRatio());

  std::printf("\npaper shape (§6.2.2): static S3-FIFO is at least as good as S3-FIFO-D\n"
              "on most traces; the adaptive variant only pays off on the rare\n"
              "adversarial tail (~2%% of traces), where it clearly reduces the miss\n"
              "ratio.\n");
  PrintSweepSummary(summary);
  WriteBenchJson("ablation_adaptive",
                 JsonFields()
                     .Add("scale", scale)
                     .Add("threads", summary.threads)
                     .Add("wall_ms", summary.wall_ms)
                     .Add("simulated_requests", summary.simulated_requests)
                     .Add("requests_per_sec", summary.requests_per_sec),
                 {JsonFields()
                      .Add("metric", "mr_delta_adaptive_minus_static")
                      .Add("adaptive_wins", adaptive_wins)
                      .Add("static_wins", static_wins)
                      .Add("ties", ties)
                      .Add("mean", delta_row.mean)
                      .Add("p10", delta_row.p10)
                      .Add("p90", delta_row.p90),
                  JsonFields()
                      .Add("metric", "adversarial_miss_ratio")
                      .Add("s3fifo", adv[0].MissRatio())
                      .Add("s3fifo_d", adv[1].MissRatio())});
  source.WriteReport();
}

}  // namespace
}  // namespace s3fifo

int main(int argc, char** argv) {
  s3fifo::Run(s3fifo::ParseBenchArgs(argc, argv));
  return 0;
}
