// §6.2.2 ablation: static S3-FIFO vs adaptive S3-FIFO-D across all traces,
// plus the adversarial pattern where adaptation is expected to help.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/sweep.h"
#include "src/core/cache_factory.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"
#include "src/workload/scan_workload.h"

namespace s3fifo {
namespace {

void Run() {
  PrintHeader("Ablation: S3-FIFO vs S3-FIFO-D (adaptive queue sizes)", "§6.2.2");
  const double scale = BenchScale() * 0.25;

  std::vector<double> delta;  // mr(s3fifo-d) - mr(s3fifo); negative = adaptive wins
  int adaptive_wins = 0, static_wins = 0, ties = 0;
  ForEachSweepCase(scale, [&](const SweepCase& c) {
    CacheConfig config;
    config.capacity = c.large_capacity;
    auto s3 = CreateCache("s3fifo", config);
    auto s3d = CreateCache("s3fifo-d", config);
    const double mr_s = Simulate(c.trace, *s3).MissRatio();
    const double mr_d = Simulate(c.trace, *s3d).MissRatio();
    delta.push_back(mr_d - mr_s);
    if (mr_d + 1e-4 < mr_s) {
      ++adaptive_wins;
    } else if (mr_s + 1e-4 < mr_d) {
      ++static_wins;
    } else {
      ++ties;
    }
  });
  std::printf("across traces (large cache): adaptive wins %d, static wins %d, ties %d\n",
              adaptive_wins, static_wins, ties);
  std::printf("%s\n", FormatPercentileRow("mr(D)-mr(S)", Percentiles(delta)).c_str());

  // The adversarial two-hit pattern (with warm M), where adaptation helps.
  std::vector<Request> out;
  for (uint64_t w = 0; w < 400; ++w) {
    for (int rep = 0; rep < 3; ++rep) {
      Request r;
      r.id = (1ULL << 51) + w;
      out.push_back(r);
    }
  }
  Trace twohit = GenerateTwoHitPattern(static_cast<uint64_t>(20000 * BenchScale()), 30);
  uint64_t hot = 0;
  for (size_t i = 0; i < twohit.size(); ++i) {
    out.push_back(twohit[i]);
    Request r;
    r.id = (1ULL << 50) + (hot++ % 60);
    out.push_back(r);
  }
  Trace adversarial(std::move(out), "adversarial");
  CacheConfig config;
  config.capacity = 200;
  auto s3 = CreateCache("s3fifo", config);
  config.params = "adapt_ghost_ratio=0.5";
  auto s3d = CreateCache("s3fifo-d", config);
  std::printf("\nadversarial two-hit pattern: s3fifo mr=%.4f  s3fifo-d mr=%.4f\n",
              Simulate(adversarial, *s3).MissRatio(), Simulate(adversarial, *s3d).MissRatio());

  std::printf("\npaper shape (§6.2.2): static S3-FIFO is at least as good as S3-FIFO-D\n"
              "on most traces; the adaptive variant only pays off on the rare\n"
              "adversarial tail (~2%% of traces), where it clearly reduces the miss\n"
              "ratio.\n");
}

}  // namespace
}  // namespace s3fifo

int main() {
  s3fifo::Run();
  return 0;
}
