// §6.3 ablation: "LRU or FIFO?" — replace S and/or M with LRU queues and
// compare miss ratios across traces. The paper's conclusion: with quick
// demotion in place, the queue type does not matter. One shared trace pass
// through all five variants on the sweep engine.
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "bench/sweep.h"
#include "bench/trace_source.h"
#include "src/sim/metrics.h"

namespace s3fifo {
namespace {

void Run(const BenchOptions& opts) {
  PrintHeader("Ablation: FIFO vs LRU queues inside S3-FIFO", "§6.3");
  const double scale = BenchScale() * 0.25;

  const std::vector<PolicyVariant> variants = {
      {"fifo-S/fifo-M", "s3fifo", ""},
      {"lru-S/fifo-M", "s3fifo", "small_lru=1"},
      {"fifo-S/lru-M", "s3fifo", "main_lru=1"},
      {"lru-S/lru-M", "s3fifo", "small_lru=1,main_lru=1"},
      {"fifo-S/sieve-M", "s3fifo", "main_sieve=1"},  // §7: Sieve as the main queue
  };
  std::map<std::string, std::vector<double>> reductions;

  BenchTraceSource source(opts);
  const SweepSummary summary = RunMissRatioSweep(
      scale, variants, /*include_small=*/false,
      [&](const SweepCell& c) {
        const double mr_fifo = c.fifo.MissRatio();
        for (size_t vi = 0; vi < variants.size(); ++vi) {
          reductions[variants[vi].label].push_back(
              MissRatioReduction(c.results[vi].MissRatio(), mr_fifo));
        }
      },
      opts.threads, /*progress=*/true, source.cache(), ParseMrcMode(opts.mrc));

  std::vector<JsonFields> json_rows;
  for (const PolicyVariant& v : variants) {
    const PercentileRow row = Percentiles(reductions[v.label]);
    std::printf("%s\n", FormatPercentileRow(v.label, row).c_str());
    json_rows.push_back(JsonFields()
                            .Add("variant", v.label)
                            .Add("mean_reduction", row.mean)
                            .Add("p10", row.p10)
                            .Add("p90", row.p90));
  }
  std::printf("\npaper shape (§6.3): 'LRU queues do not improve efficiency' — all four\n"
              "rows should be within noise of each other at every percentile.\n");
  PrintSweepSummary(summary);
  WriteBenchJson("ablation_queue_type",
                 JsonFields()
                     .Add("scale", scale)
                     .Add("threads", summary.threads)
                     .Add("wall_ms", summary.wall_ms)
                     .Add("simulated_requests", summary.simulated_requests)
                     .Add("requests_per_sec", summary.requests_per_sec),
                 json_rows);
  source.WriteReport();
}

}  // namespace
}  // namespace s3fifo

int main(int argc, char** argv) {
  s3fifo::Run(s3fifo::ParseBenchArgs(argc, argv));
  return 0;
}
