// §6.3 ablation: "LRU or FIFO?" — replace S and/or M with LRU queues and
// compare miss ratios across traces. The paper's conclusion: with quick
// demotion in place, the queue type does not matter.
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "bench/sweep.h"
#include "src/core/cache_factory.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"

namespace s3fifo {
namespace {

void Run() {
  PrintHeader("Ablation: FIFO vs LRU queues inside S3-FIFO", "§6.3");
  const double scale = BenchScale() * 0.25;

  const std::vector<std::pair<std::string, std::string>> variants = {
      {"fifo-S/fifo-M", ""},
      {"lru-S/fifo-M", "small_lru=1"},
      {"fifo-S/lru-M", "main_lru=1"},
      {"lru-S/lru-M", "small_lru=1,main_lru=1"},
      {"fifo-S/sieve-M", "main_sieve=1"},  // §7: Sieve as the main queue
  };
  std::map<std::string, std::vector<double>> reductions;

  ForEachSweepCase(scale, [&](const SweepCase& c) {
    CacheConfig config;
    config.capacity = c.large_capacity;
    auto fifo = CreateCache("fifo", config);
    const double mr_fifo = Simulate(c.trace, *fifo).MissRatio();
    for (const auto& [label, params] : variants) {
      CacheConfig c2 = config;
      c2.params = params;
      auto cache = CreateCache("s3fifo", c2);
      reductions[label].push_back(
          MissRatioReduction(Simulate(c.trace, *cache).MissRatio(), mr_fifo));
    }
  });

  for (const auto& [label, params] : variants) {
    std::printf("%s\n", FormatPercentileRow(label, Percentiles(reductions[label])).c_str());
  }
  std::printf("\npaper shape (§6.3): 'LRU queues do not improve efficiency' — all four\n"
              "rows should be within noise of each other at every percentile.\n");
}

}  // namespace
}  // namespace s3fifo

int main() {
  s3fifo::Run();
  return 0;
}
