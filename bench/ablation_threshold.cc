// Ablation: the S->M move threshold. Algorithm 1 line 18 moves on freq > 1
// (two accesses after insertion); the §4.1 prose reads "accessed more than
// once", which several open-source implementations interpret as one access
// (freq >= 1). This sweep quantifies the difference.
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "bench/sweep.h"
#include "src/core/cache_factory.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"

namespace s3fifo {
namespace {

void Run() {
  PrintHeader("Ablation: S->M move threshold (Algorithm 1 line 18)", "§4.1 / Algorithm 1");
  const double scale = BenchScale() * 0.25;

  std::map<int, std::vector<double>> red_large, red_small;
  ForEachSweepCase(scale, [&](const SweepCase& c) {
    for (const bool large : {true, false}) {
      CacheConfig config;
      config.capacity = large ? c.large_capacity : c.small_capacity;
      auto fifo = CreateCache("fifo", config);
      const double mr_fifo = Simulate(c.trace, *fifo).MissRatio();
      for (int threshold : {1, 2, 3}) {
        char params[48];
        std::snprintf(params, sizeof(params), "move_to_main_threshold=%d", threshold);
        CacheConfig c2 = config;
        c2.params = params;
        auto cache = CreateCache("s3fifo", c2);
        (large ? red_large : red_small)[threshold].push_back(
            MissRatioReduction(Simulate(c.trace, *cache).MissRatio(), mr_fifo));
      }
    }
  });

  for (const bool large : {true, false}) {
    std::printf("\n--- %s cache ---\n", large ? "large" : "small");
    for (int threshold : {1, 2, 3}) {
      char label[48];
      std::snprintf(label, sizeof(label), "threshold=%d", threshold);
      std::printf("%s\n",
                  FormatPercentileRow(label,
                                      Percentiles((large ? red_large : red_small)[threshold]))
                      .c_str());
    }
  }
  std::printf("\nexpectation: thresholds 1 and 2 are close on most traces (objects hot\n"
              "enough to be promoted usually collect 2+ hits in S anyway); threshold 3\n"
              "over-filters and starts losing at the tail.\n");
}

}  // namespace
}  // namespace s3fifo

int main() {
  s3fifo::Run();
  return 0;
}
