// Ablation: the S->M move threshold. Algorithm 1 line 18 moves on freq > 1
// (two accesses after insertion); the §4.1 prose reads "accessed more than
// once", which several open-source implementations interpret as one access
// (freq >= 1). This sweep quantifies the difference, one shared trace pass
// per cache size on the sweep engine.
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "bench/sweep.h"
#include "bench/trace_source.h"
#include "src/sim/metrics.h"

namespace s3fifo {
namespace {

void Run(const BenchOptions& opts) {
  PrintHeader("Ablation: S->M move threshold (Algorithm 1 line 18)", "§4.1 / Algorithm 1");
  const double scale = BenchScale() * 0.25;

  std::vector<PolicyVariant> variants;
  for (int threshold : {1, 2, 3}) {
    char label[48], params[48];
    std::snprintf(label, sizeof(label), "threshold=%d", threshold);
    std::snprintf(params, sizeof(params), "move_to_main_threshold=%d", threshold);
    variants.push_back({label, "s3fifo", params});
  }

  std::map<std::string, std::vector<double>> red_large, red_small;
  BenchTraceSource source(opts);
  const SweepSummary summary = RunMissRatioSweep(
      scale, variants, /*include_small=*/true,
      [&](const SweepCell& c) {
        const double mr_fifo = c.fifo.MissRatio();
        for (size_t vi = 0; vi < variants.size(); ++vi) {
          (c.large ? red_large : red_small)[variants[vi].label].push_back(
              MissRatioReduction(c.results[vi].MissRatio(), mr_fifo));
        }
      },
      opts.threads, /*progress=*/true, source.cache(), ParseMrcMode(opts.mrc));

  std::vector<JsonFields> json_rows;
  for (const bool large : {true, false}) {
    std::printf("\n--- %s cache ---\n", large ? "large" : "small");
    for (const PolicyVariant& v : variants) {
      const PercentileRow row = Percentiles((large ? red_large : red_small)[v.label]);
      std::printf("%s\n", FormatPercentileRow(v.label, row).c_str());
      json_rows.push_back(JsonFields()
                              .Add("variant", v.label)
                              .Add("size", large ? "large" : "small")
                              .Add("mean_reduction", row.mean)
                              .Add("p10", row.p10)
                              .Add("p90", row.p90));
    }
  }
  std::printf("\nexpectation: thresholds 1 and 2 are close on most traces (objects hot\n"
              "enough to be promoted usually collect 2+ hits in S anyway); threshold 3\n"
              "over-filters and starts losing at the tail.\n");
  PrintSweepSummary(summary);
  WriteBenchJson("ablation_threshold",
                 JsonFields()
                     .Add("scale", scale)
                     .Add("threads", summary.threads)
                     .Add("wall_ms", summary.wall_ms)
                     .Add("simulated_requests", summary.simulated_requests)
                     .Add("requests_per_sec", summary.requests_per_sec),
                 json_rows);
  source.WriteReport();
}

}  // namespace
}  // namespace s3fifo

int main(int argc, char** argv) {
  s3fifo::Run(s3fifo::ParseBenchArgs(argc, argv));
  return 0;
}
