// Shared helpers for the figure/table benchmark binaries.
//
// Every bench honours S3FIFO_BENCH_SCALE (a multiplier on trace lengths /
// counts; default 1.0 = laptop scale, larger = closer to paper scale).
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace s3fifo {

inline double BenchScale() {
  const char* env = std::getenv("S3FIFO_BENCH_SCALE");
  if (env == nullptr) {
    return 1.0;
  }
  const double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

// The comparison set used by the miss-ratio figures (name, factory name).
inline const std::vector<std::string>& ComparisonPolicies() {
  static const std::vector<std::string>* policies = new std::vector<std::string>{
      "s3fifo", "tinylfu", "tinylfu-0.1", "lirs", "2q",   "arc",        "slru",
      "lru",    "clock",   "lecar",       "lhd",  "blru", "fifo-merge",
  };
  return *policies;
}

inline void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("scale: %.2f (set S3FIFO_BENCH_SCALE to change)\n", BenchScale());
  std::printf("==============================================================\n");
}

}  // namespace s3fifo

#endif  // BENCH_BENCH_UTIL_H_
