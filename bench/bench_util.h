// Shared helpers for the figure/table benchmark binaries.
//
// Every bench honours S3FIFO_BENCH_SCALE (a multiplier on trace lengths /
// counts; default 1.0 = laptop scale, larger = closer to paper scale).
// Sweep-driven benches additionally take --threads=N (0 = hardware
// concurrency) and write a machine-readable BENCH_<name>.json next to the
// human-readable table so the perf trajectory can be tracked across PRs.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace s3fifo {

inline double BenchScale() {
  const char* env = std::getenv("S3FIFO_BENCH_SCALE");
  if (env == nullptr) {
    return 1.0;
  }
  const double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

struct BenchOptions {
  unsigned threads = 0;  // sweep parallelism; 0 = hardware concurrency
  // Directory for the persistent mmap trace cache; empty = regenerate every
  // run. Settable via --trace-cache-dir= or env S3FIFO_TRACE_CACHE_DIR.
  std::string trace_cache_dir;
  // MRC computation mode for the miss-ratio sweeps: "onepass" (default;
  // FIFO-family policies use the exact one-pass engine) or "brute" (one
  // simulation per size — the escape hatch / reference path). Parsed by
  // ParseMrcMode in src/analysis/mrc_engine.h at the call site.
  std::string mrc = "onepass";
};

inline BenchOptions ParseBenchArgs(int argc, char** argv) {
  BenchOptions opts;
  if (const char* env = std::getenv("S3FIFO_TRACE_CACHE_DIR")) {
    opts.trace_cache_dir = env;
  }
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      opts.threads = static_cast<unsigned>(std::atoi(arg + 10));
    } else if (std::strncmp(arg, "--trace-cache-dir=", 18) == 0) {
      opts.trace_cache_dir = arg + 18;
    } else if (std::strncmp(arg, "--mrc=", 6) == 0) {
      opts.mrc = arg + 6;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      std::printf(
          "usage: %s [--threads=N] [--trace-cache-dir=DIR] [--mrc=MODE]\n"
          "  --threads=N           sweep-engine worker threads (0 = hardware concurrency)\n"
          "  --trace-cache-dir=DIR persist generated traces; later runs mmap them\n"
          "                        (also env S3FIFO_TRACE_CACHE_DIR; empty = off)\n"
          "  --mrc=MODE            miss-ratio sweeps: onepass (default) | brute\n"
          "  env S3FIFO_BENCH_SCALE=X scales trace lengths (default 1.0)\n",
          argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "warning: ignoring unknown argument '%s'\n", arg);
    }
  }
  return opts;
}

// The comparison set used by the miss-ratio figures (name, factory name).
inline const std::vector<std::string>& ComparisonPolicies() {
  static const std::vector<std::string>* policies = new std::vector<std::string>{
      "s3fifo", "tinylfu", "tinylfu-0.1", "lirs", "2q",   "arc",        "slru",
      "lru",    "clock",   "lecar",       "lhd",  "blru", "fifo-merge",
  };
  return *policies;
}

inline void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("scale: %.2f (set S3FIFO_BENCH_SCALE to change)\n", BenchScale());
  std::printf("==============================================================\n");
}

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Minimal JSON object builder for the BENCH_<name>.json emitters. Values are
// serialized immediately; insertion order is preserved.
class JsonFields {
 public:
  JsonFields& Add(const std::string& key, const std::string& v) {
    return AddRaw(key, "\"" + Escaped(v) + "\"");
  }
  JsonFields& Add(const std::string& key, const char* v) { return Add(key, std::string(v)); }
  JsonFields& Add(const std::string& key, double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return AddRaw(key, buf);
  }
  JsonFields& Add(const std::string& key, uint64_t v) { return AddRaw(key, std::to_string(v)); }
  JsonFields& Add(const std::string& key, unsigned v) { return AddRaw(key, std::to_string(v)); }
  JsonFields& Add(const std::string& key, int v) { return AddRaw(key, std::to_string(v)); }
  JsonFields& Add(const std::string& key, bool v) { return AddRaw(key, v ? "true" : "false"); }

  std::string Serialize() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) {
        out += ", ";
      }
      out += "\"" + fields_[i].first + "\": " + fields_[i].second;
    }
    out += "}";
    return out;
  }

 private:
  static std::string Escaped(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
    return out;
  }
  JsonFields& AddRaw(const std::string& key, std::string value) {
    fields_.emplace_back(key, std::move(value));
    return *this;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

// Writes BENCH_<bench_name>.json into the working directory:
// {"bench": ..., "summary": {...}, "rows": [{...}, ...]}.
inline void WriteBenchJson(const std::string& bench_name, const JsonFields& summary,
                           const std::vector<JsonFields>& rows) {
  const std::string path = "BENCH_" + bench_name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"summary\": %s,\n  \"rows\": [", bench_name.c_str(),
               summary.Serialize().c_str());
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f, "%s\n    %s", i > 0 ? "," : "", rows[i].Serialize().c_str());
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("\n[bench] wrote %s\n", path.c_str());
}

}  // namespace s3fifo

#endif  // BENCH_BENCH_UTIL_H_
