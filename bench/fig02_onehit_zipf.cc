// Fig. 1 + Fig. 2: the one-hit-wonder ratio vs sequence length.
//  - the Fig. 1 toy example, verified exactly;
//  - Fig. 2a/b: synthetic Zipf traces at skews 0.6 / 0.8 / 1.0 / 1.2;
//  - Fig. 2c/d: the MSR-like and Twitter-like dataset profiles.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/trace_source.h"
#include "src/analysis/one_hit_wonder.h"
#include "src/workload/dataset_profiles.h"
#include "src/workload/zipf_workload.h"

namespace s3fifo {
namespace {

const double kFractions[] = {0.01, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0};

void PrintCurve(const char* label, const Trace& trace) {
  std::printf("%-16s", label);
  for (double f : kFractions) {
    std::printf(" %5.2f", SubSequenceOneHitWonderRatio(trace, f, 15, 11));
  }
  std::printf("\n");
}

void Run(const BenchOptions& opts) {
  PrintHeader("Fig. 1 + Fig. 2: one-hit-wonder ratio vs sequence length",
              "Fig. 1 (toy), Fig. 2a-d");

  // Fig. 1 toy example.
  std::vector<Request> toy;
  for (uint64_t id : {'A', 'B', 'A', 'C', 'B', 'A', 'D', 'A', 'B', 'C', 'B', 'A', 'E', 'C',
                      'A', 'B', 'D'}) {
    Request r;
    r.id = id;
    toy.push_back(r);
  }
  Trace toy_trace(std::move(toy));
  std::printf("Fig.1 toy: full=%.2f (paper 0.20)  first7=%.2f (paper 0.50)  "
              "first4=%.2f (paper 0.67)\n\n",
              OneHitWonderRatio(toy_trace, 0, 17), OneHitWonderRatio(toy_trace, 0, 7),
              OneHitWonderRatio(toy_trace, 0, 4));

  std::printf("sequence length (fraction of unique objects):\n%-16s", "");
  for (double f : kFractions) {
    std::printf(" %5.2f", f);
  }
  std::printf("\n");

  const double scale = BenchScale();
  BenchTraceSource source(opts);
  for (double alpha : {0.6, 0.8, 1.0, 1.2}) {
    ZipfWorkloadConfig c;
    c.num_objects = static_cast<uint64_t>(20000 * scale);
    c.num_requests = static_cast<uint64_t>(400000 * scale);
    c.alpha = alpha;
    c.seed = 42;
    Trace t = source.ZipfTrace(c);
    char label[32];
    std::snprintf(label, sizeof(label), "zipf a=%.1f", alpha);
    PrintCurve(label, t);
  }
  std::printf("\n");
  PrintCurve("msr-like", source.DatasetTrace(DatasetByName("msr"), 0, scale));
  PrintCurve("twitter-like", source.DatasetTrace(DatasetByName("twitter"), 0, scale));

  std::printf("\npaper shape: every curve decreases with sequence length; higher skew\n"
              "lies lower; twitter-like lies far below msr-like at every length\n"
              "(paper: 26%% vs 75%% at the 10%% sequence length).\n");
  source.WriteReport();
}

}  // namespace
}  // namespace s3fifo

int main(int argc, char** argv) {
  s3fifo::Run(s3fifo::ParseBenchArgs(argc, argv));
  return 0;
}
