// Fig. 3: distribution of the one-hit-wonder ratio across all traces at
// sequence lengths of 100% / 50% / 10% / 1% of each trace's objects.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/trace_source.h"
#include "src/analysis/one_hit_wonder.h"
#include "src/sim/metrics.h"
#include "src/workload/dataset_profiles.h"

namespace s3fifo {
namespace {

void Run(const BenchOptions& opts) {
  PrintHeader("Fig. 3: one-hit-wonder ratio across all traces", "Fig. 3");
  const double scale = BenchScale() * 0.4;
  BenchTraceSource source(opts);

  std::vector<double> at_full, at_50, at_10, at_1;
  for (const DatasetProfile& d : AllDatasetProfiles()) {
    for (uint32_t i = 0; i < d.num_traces; ++i) {
      Trace t = source.DatasetTrace(d, i, scale);
      at_full.push_back(t.Stats().one_hit_wonder_ratio);
      at_50.push_back(SubSequenceOneHitWonderRatio(t, 0.5, 8, 3));
      at_10.push_back(SubSequenceOneHitWonderRatio(t, 0.1, 8, 3));
      at_1.push_back(SubSequenceOneHitWonderRatio(t, 0.01, 8, 3));
    }
  }
  std::printf("traces: %zu\n\n", at_full.size());
  std::printf("%s\n", FormatPercentileRow("full trace", Percentiles(at_full)).c_str());
  std::printf("%s\n", FormatPercentileRow("50% objects", Percentiles(at_50)).c_str());
  std::printf("%s\n", FormatPercentileRow("10% objects", Percentiles(at_10)).c_str());
  std::printf("%s\n", FormatPercentileRow("1% objects", Percentiles(at_1)).c_str());
  std::printf("\npaper medians: full 0.26, 50%% 0.38, 10%% 0.72, 1%% 0.78 — the median\n"
              "must increase monotonically as the sequence shortens.\n");
  source.WriteReport();
}

}  // namespace
}  // namespace s3fifo

int main(int argc, char** argv) {
  s3fifo::Run(s3fifo::ParseBenchArgs(argc, argv));
  return 0;
}
