// Fig. 4: the frequency (number of post-insertion requests) of objects at
// eviction, for LRU and Belady on the MSR-like and Twitter-like profiles at
// cache sizes of 10% and 1% of the trace footprint.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/trace_source.h"
#include "src/analysis/eviction_age.h"
#include "src/core/cache_factory.h"
#include "src/trace/next_access.h"
#include "src/workload/dataset_profiles.h"

namespace s3fifo {
namespace {

void Run(const BenchOptions& opts) {
  PrintHeader("Fig. 4: frequency of objects at eviction", "Fig. 4");
  const double scale = BenchScale();
  BenchTraceSource source(opts);

  for (const char* dataset : {"twitter", "msr"}) {
    Trace t = source.DatasetTrace(DatasetByName(dataset), 0, scale);
    AnnotateNextAccess(t);
    const uint64_t footprint = t.Stats().num_objects;
    for (double size_frac : {0.10, 0.01}) {
      const uint64_t capacity =
          std::max<uint64_t>(static_cast<uint64_t>(footprint * size_frac), 100);
      std::printf("\n%s-like trace, cache = %.0f%% of footprint (%lu objects)\n", dataset,
                  size_frac * 100, (unsigned long)capacity);
      std::printf("%-8s %8s |", "policy", "missr");
      for (int k = 0; k <= 4; ++k) {
        std::printf(" freq=%d%s", k, k == 4 ? "+" : " ");
      }
      std::printf("\n");
      for (const char* policy : {"lru", "belady"}) {
        CacheConfig config;
        config.capacity = capacity;
        auto cache = CreateCache(policy, config);
        const EvictionProfile p = CollectEvictionProfile(t, *cache, 4);
        std::printf("%-8s %8.4f |", policy, p.miss_ratio);
        for (double f : p.freq_at_eviction) {
          std::printf("  %5.2f ", f);
        }
        std::printf("\n");
      }
    }
  }
  std::printf("\npaper shape: at the large size the twitter-like trace evicts ~25%%\n"
              "zero-reuse objects (both policies); the msr-like trace evicts far more\n"
              "(~82%% LRU / ~68%% Belady) — the freq=0 column dominates on msr.\n");
  source.WriteReport();
}

}  // namespace
}  // namespace s3fifo

int main(int argc, char** argv) {
  s3fifo::Run(s3fifo::ParseBenchArgs(argc, argv));
  return 0;
}
