// Fig. 6: each algorithm's miss-ratio reduction relative to FIFO at
// P10/P25/P50/mean/P75/P90 across all traces, at the large and small cache
// sizes. Runs on the sweep engine: each trace is generated once and streamed
// once per cache size through all 14 policies.
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "bench/sweep.h"
#include "bench/trace_source.h"
#include "src/sim/metrics.h"

namespace s3fifo {
namespace {

void Run(const BenchOptions& opts) {
  PrintHeader("Fig. 6: miss-ratio reduction vs FIFO, percentiles across traces",
              "Fig. 6a (large = 10% footprint) and Fig. 6b (small = 1% footprint)");
  const double scale = BenchScale() * 0.25;
  const std::vector<PolicyVariant> variants = VariantsFromPolicyNames(ComparisonPolicies());

  std::map<std::string, std::vector<double>> reductions_large, reductions_small;
  std::map<std::string, std::vector<double>> missratios_large, missratios_small;

  BenchTraceSource source(opts);
  const SweepSummary summary = RunMissRatioSweep(
      scale, variants, /*include_small=*/true,
      [&](const SweepCell& c) {
        const double mr_fifo = c.fifo.MissRatio();
        for (size_t vi = 0; vi < variants.size(); ++vi) {
          const double mr = c.results[vi].MissRatio();
          auto& bucket = c.large ? reductions_large[variants[vi].label]
                                 : reductions_small[variants[vi].label];
          bucket.push_back(MissRatioReduction(mr, mr_fifo));
          (c.large ? missratios_large : missratios_small)[variants[vi].label].push_back(mr);
        }
      },
      opts.threads, /*progress=*/true, source.cache(), ParseMrcMode(opts.mrc));

  std::vector<JsonFields> json_rows;
  for (const bool large : {true, false}) {
    std::printf("\n--- %s cache (%s of footprint) ---\n", large ? "large" : "small",
                large ? "10%" : "1%");
    auto& reductions = large ? reductions_large : reductions_small;
    // Order rows by mean reduction, best first (the paper sorts visually).
    std::vector<std::pair<double, std::string>> order;
    for (const auto& [policy, values] : reductions) {
      order.emplace_back(-Percentiles(values).mean, policy);
    }
    std::sort(order.begin(), order.end());
    for (const auto& [neg_mean, policy] : order) {
      const PercentileRow row = Percentiles(reductions.at(policy));
      std::printf("%s\n", FormatPercentileRow(policy, row).c_str());
      const auto& mrs = (large ? missratios_large : missratios_small).at(policy);
      json_rows.push_back(JsonFields()
                              .Add("policy", policy)
                              .Add("size", large ? "large" : "small")
                              .Add("mean_miss_ratio", Percentiles(mrs).mean)
                              .Add("mean_reduction", row.mean)
                              .Add("p10", row.p10)
                              .Add("p50", row.p50)
                              .Add("p90", row.p90));
    }
  }
  std::printf("\npaper shape (Fig. 6): s3fifo has the largest reductions across almost\n"
              "all percentiles at the large size (mean ~0.14, P90 > 0.32); tinylfu is\n"
              "the closest competitor but its P10 goes negative (worse than FIFO on\n"
              "~20%% of traces); blru sits at/below zero.\n");
  PrintSweepSummary(summary);
  WriteBenchJson("fig06_percentiles",
                 JsonFields()
                     .Add("scale", scale)
                     .Add("mrc", opts.mrc)
                     .Add("threads", summary.threads)
                     .Add("wall_ms", summary.wall_ms)
                     .Add("simulated_requests", summary.simulated_requests)
                     .Add("requests_per_sec", summary.requests_per_sec),
                 json_rows);
  source.WriteReport();
}

}  // namespace
}  // namespace s3fifo

int main(int argc, char** argv) {
  s3fifo::Run(s3fifo::ParseBenchArgs(argc, argv));
  return 0;
}
