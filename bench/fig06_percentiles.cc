// Fig. 6: each algorithm's miss-ratio reduction relative to FIFO at
// P10/P25/P50/mean/P75/P90 across all traces, at the large and small cache
// sizes.
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "bench/sweep.h"
#include "src/core/cache_factory.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"

namespace s3fifo {
namespace {

void Run() {
  PrintHeader("Fig. 6: miss-ratio reduction vs FIFO, percentiles across traces",
              "Fig. 6a (large = 10% footprint) and Fig. 6b (small = 1% footprint)");
  const double scale = BenchScale() * 0.25;

  std::map<std::string, std::vector<double>> reductions_large, reductions_small;

  ForEachSweepCase(scale, [&](const SweepCase& c) {
    for (const bool large : {true, false}) {
      CacheConfig config;
      config.capacity = large ? c.large_capacity : c.small_capacity;
      auto fifo = CreateCache("fifo", config);
      const double mr_fifo = Simulate(c.trace, *fifo).MissRatio();
      for (const std::string& policy : ComparisonPolicies()) {
        auto cache = CreateCache(policy, config);
        const double mr = Simulate(c.trace, *cache).MissRatio();
        auto& bucket = large ? reductions_large[policy] : reductions_small[policy];
        bucket.push_back(MissRatioReduction(mr, mr_fifo));
      }
    }
  });

  for (const bool large : {true, false}) {
    std::printf("\n--- %s cache (%s of footprint) ---\n", large ? "large" : "small",
                large ? "10%" : "1%");
    auto& reductions = large ? reductions_large : reductions_small;
    // Order rows by mean reduction, best first (the paper sorts visually).
    std::vector<std::pair<double, std::string>> order;
    for (const auto& [policy, values] : reductions) {
      order.emplace_back(-Percentiles(values).mean, policy);
    }
    std::sort(order.begin(), order.end());
    for (const auto& [neg_mean, policy] : order) {
      std::printf("%s\n", FormatPercentileRow(policy, Percentiles(reductions.at(policy))).c_str());
    }
  }
  std::printf("\npaper shape (Fig. 6): s3fifo has the largest reductions across almost\n"
              "all percentiles at the large size (mean ~0.14, P90 > 0.32); tinylfu is\n"
              "the closest competitor but its P10 goes negative (worse than FIFO on\n"
              "~20%% of traces); blru sits at/below zero.\n");
}

}  // namespace
}  // namespace s3fifo

int main() {
  s3fifo::Run();
  return 0;
}
