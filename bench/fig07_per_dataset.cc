// Fig. 7: the mean miss-ratio reduction (vs FIFO) per dataset, large and
// small cache sizes, for the selected algorithms — plus the paper's
// robustness headline: on how many datasets is each algorithm the best /
// top-3?
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "bench/sweep.h"
#include "src/core/cache_factory.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"

namespace s3fifo {
namespace {

const std::vector<std::string>& SelectedPolicies() {
  static const std::vector<std::string>* p = new std::vector<std::string>{
      "s3fifo", "tinylfu", "lirs", "2q", "arc", "lru"};
  return *p;
}

void Run() {
  PrintHeader("Fig. 7: mean miss-ratio reduction per dataset", "Fig. 7a/7b");
  const double scale = BenchScale() * 0.25;

  // sums[large][policy][dataset] = (sum, count)
  std::map<std::string, std::map<std::string, std::pair<double, int>>> sum_large, sum_small;

  ForEachSweepCase(scale, [&](const SweepCase& c) {
    for (const bool large : {true, false}) {
      CacheConfig config;
      config.capacity = large ? c.large_capacity : c.small_capacity;
      auto fifo = CreateCache("fifo", config);
      const double mr_fifo = Simulate(c.trace, *fifo).MissRatio();
      for (const std::string& policy : SelectedPolicies()) {
        auto cache = CreateCache(policy, config);
        const double red = MissRatioReduction(Simulate(c.trace, *cache).MissRatio(), mr_fifo);
        auto& cell = (large ? sum_large : sum_small)[policy][c.dataset->name];
        cell.first += red;
        cell.second += 1;
      }
    }
  });

  for (const bool large : {true, false}) {
    auto& sums = large ? sum_large : sum_small;
    std::printf("\n--- %s cache ---\n%-14s", large ? "large" : "small", "dataset");
    for (const auto& policy : SelectedPolicies()) {
      std::printf(" %11s", policy.c_str());
    }
    std::printf("\n");
    std::map<std::string, int> best_count, top3_count;
    for (const DatasetProfile& d : AllDatasetProfiles()) {
      std::printf("%-14s", d.name.c_str());
      std::vector<std::pair<double, std::string>> ranked;
      for (const auto& policy : SelectedPolicies()) {
        const auto& cell = sums[policy][d.name];
        const double mean = cell.second ? cell.first / cell.second : 0.0;
        std::printf(" %+11.4f", mean);
        ranked.emplace_back(-mean, policy);
      }
      std::sort(ranked.begin(), ranked.end());
      best_count[ranked[0].second]++;
      for (size_t k = 0; k < 3 && k < ranked.size(); ++k) {
        top3_count[ranked[k].second]++;
      }
      std::printf("\n");
    }
    std::printf("best-on-N-datasets: ");
    for (const auto& policy : SelectedPolicies()) {
      std::printf("%s=%d ", policy.c_str(), best_count[policy]);
    }
    std::printf("\ntop3-on-N-datasets: ");
    for (const auto& policy : SelectedPolicies()) {
      std::printf("%s=%d ", policy.c_str(), top3_count[policy]);
    }
    std::printf("\n");
  }
  std::printf("\npaper shape (Fig. 7 / §5.2.2): s3fifo is the best algorithm on 10/14\n"
              "datasets at the large size (7/14 at the small size) and top-3 on 13/14;\n"
              "no other algorithm is best on more than 3.\n");
}

}  // namespace
}  // namespace s3fifo

int main() {
  s3fifo::Run();
  return 0;
}
