// Fig. 7: the mean miss-ratio reduction (vs FIFO) per dataset, large and
// small cache sizes, for the selected algorithms — plus the paper's
// robustness headline: on how many datasets is each algorithm the best /
// top-3? Runs on the sweep engine: each trace is generated once and streamed
// once per cache size through all policies.
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "bench/sweep.h"
#include "bench/trace_source.h"
#include "src/sim/metrics.h"

namespace s3fifo {
namespace {

const std::vector<std::string>& SelectedPolicies() {
  static const std::vector<std::string>* p = new std::vector<std::string>{
      "s3fifo", "tinylfu", "lirs", "2q", "arc", "lru"};
  return *p;
}

void Run(const BenchOptions& opts) {
  PrintHeader("Fig. 7: mean miss-ratio reduction per dataset", "Fig. 7a/7b");
  const double scale = BenchScale() * 0.25;
  const std::vector<PolicyVariant> variants = VariantsFromPolicyNames(SelectedPolicies());

  // sums[large][policy][dataset] = (sum, count)
  std::map<std::string, std::map<std::string, std::pair<double, int>>> sum_large, sum_small;

  BenchTraceSource source(opts);
  const SweepSummary summary = RunMissRatioSweep(
      scale, variants, /*include_small=*/true,
      [&](const SweepCell& c) {
        const double mr_fifo = c.fifo.MissRatio();
        for (size_t vi = 0; vi < variants.size(); ++vi) {
          const double red = MissRatioReduction(c.results[vi].MissRatio(), mr_fifo);
          auto& cell = (c.large ? sum_large : sum_small)[variants[vi].label][c.dataset->name];
          cell.first += red;
          cell.second += 1;
        }
      },
      opts.threads, /*progress=*/true, source.cache(), ParseMrcMode(opts.mrc));

  std::vector<JsonFields> json_rows;
  for (const bool large : {true, false}) {
    auto& sums = large ? sum_large : sum_small;
    std::printf("\n--- %s cache ---\n%-14s", large ? "large" : "small", "dataset");
    for (const auto& policy : SelectedPolicies()) {
      std::printf(" %11s", policy.c_str());
    }
    std::printf("\n");
    std::map<std::string, int> best_count, top3_count;
    for (const DatasetProfile& d : AllDatasetProfiles()) {
      std::printf("%-14s", d.name.c_str());
      std::vector<std::pair<double, std::string>> ranked;
      for (const auto& policy : SelectedPolicies()) {
        const auto& cell = sums[policy][d.name];
        const double mean = cell.second ? cell.first / cell.second : 0.0;
        std::printf(" %+11.4f", mean);
        ranked.emplace_back(-mean, policy);
        json_rows.push_back(JsonFields()
                                .Add("policy", policy)
                                .Add("dataset", d.name)
                                .Add("size", large ? "large" : "small")
                                .Add("mean_reduction", mean));
      }
      std::sort(ranked.begin(), ranked.end());
      best_count[ranked[0].second]++;
      for (size_t k = 0; k < 3 && k < ranked.size(); ++k) {
        top3_count[ranked[k].second]++;
      }
      std::printf("\n");
    }
    std::printf("best-on-N-datasets: ");
    for (const auto& policy : SelectedPolicies()) {
      std::printf("%s=%d ", policy.c_str(), best_count[policy]);
    }
    std::printf("\ntop3-on-N-datasets: ");
    for (const auto& policy : SelectedPolicies()) {
      std::printf("%s=%d ", policy.c_str(), top3_count[policy]);
    }
    std::printf("\n");
  }
  std::printf("\npaper shape (Fig. 7 / §5.2.2): s3fifo is the best algorithm on 10/14\n"
              "datasets at the large size (7/14 at the small size) and top-3 on 13/14;\n"
              "no other algorithm is best on more than 3.\n");
  PrintSweepSummary(summary);
  WriteBenchJson("fig07_per_dataset",
                 JsonFields()
                     .Add("scale", scale)
                     .Add("mrc", opts.mrc)
                     .Add("threads", summary.threads)
                     .Add("wall_ms", summary.wall_ms)
                     .Add("simulated_requests", summary.simulated_requests)
                     .Add("requests_per_sec", summary.requests_per_sec),
                 json_rows);
  source.WriteReport();
}

}  // namespace
}  // namespace s3fifo

int main(int argc, char** argv) {
  s3fifo::Run(s3fifo::ParseBenchArgs(argc, argv));
  return 0;
}
