// Fig. 8: throughput scaling with thread count for the concurrent cache
// prototypes (strict LRU, Cachelib-style optimized LRU, CLOCK, TinyLFU,
// S3-FIFO), on a Zipf(1.0) workload at a large (low miss ratio) and small
// (high miss ratio) cache size.
//
// NOTE: true scaling needs as many physical cores as threads. On a machine
// with fewer cores the harness still runs (threads time-share), measuring
// per-op overhead and lock contention rather than parallel speedup; the
// hardware core count is printed so results can be interpreted.
#include <cstdio>
#include <memory>
#include <thread>

#include "bench/bench_util.h"
#include "src/concurrent/concurrent_clock.h"
#include "src/concurrent/concurrent_lru.h"
#include "src/concurrent/concurrent_s3fifo.h"
#include "src/concurrent/concurrent_s3fifo_ring.h"
#include "src/concurrent/concurrent_tinylfu.h"
#include "src/concurrent/replay.h"

namespace s3fifo {
namespace {

std::unique_ptr<ConcurrentCache> MakeCache(const std::string& kind,
                                           const ConcurrentCacheConfig& config) {
  if (kind == "lru-strict") {
    return std::make_unique<ConcurrentLruStrict>(config);
  }
  if (kind == "lru-optimized") {
    return std::make_unique<ConcurrentLruOptimized>(config);
  }
  if (kind == "clock") {
    return std::make_unique<ConcurrentClock>(config);
  }
  if (kind == "tinylfu") {
    return std::make_unique<ConcurrentTinyLfu>(config);
  }
  if (kind == "s3fifo-ring") {
    return std::make_unique<ConcurrentS3FifoRing>(config);
  }
  return std::make_unique<ConcurrentS3Fifo>(config);
}

void Run() {
  PrintHeader("Fig. 8: throughput scaling with CPU cores", "Fig. 8a (large) / 8b (small)");
  std::printf("hardware threads on this machine: %u\n", std::thread::hardware_concurrency());

  const double scale = BenchScale();
  const uint64_t num_objects = 1 << 18;
  const uint64_t per_thread = static_cast<uint64_t>(400000 * scale);

  for (const bool large : {true, false}) {
    ConcurrentCacheConfig config;
    config.capacity_objects = large ? (num_objects / 2) : (num_objects / 64);
    config.value_size = 64;
    std::printf("\n--- %s cache (%lu objects, Zipf 1.0 over %lu objects) ---\n",
                large ? "large" : "small", (unsigned long)config.capacity_objects,
                (unsigned long)num_objects);
    std::printf("%-14s %8s", "cache", "hitr");
    for (unsigned t : {1u, 2u, 4u, 8u, 16u}) {
      std::printf("  T=%-2u Mops", t);
    }
    std::printf("\n");
    for (const char* kind :
         {"lru-strict", "lru-optimized", "clock", "tinylfu", "s3fifo", "s3fifo-ring"}) {
      std::printf("%-14s", kind);
      double hit_ratio = 0;
      std::string row;
      for (unsigned threads : {1u, 2u, 4u, 8u, 16u}) {
        auto cache = MakeCache(kind, config);
        ReplayOptions options;
        options.num_threads = threads;
        options.requests_per_thread = per_thread;
        options.num_objects = num_objects;
        options.zipf_alpha = 1.0;
        const ReplayResult r = ReplayClosedLoop(*cache, options);
        hit_ratio = r.hit_ratio;
        char buf[32];
        std::snprintf(buf, sizeof(buf), "  %9.2f", r.throughput_mops);
        row += buf;
      }
      std::printf(" %8.3f%s\n", hit_ratio, row.c_str());
    }
  }
  std::printf("\npaper shape (Fig. 8): on a 16-core box, s3fifo reaches >6x the\n"
              "throughput of optimized LRU at 16 threads; optimized LRU stops scaling\n"
              "past ~2 cores; tinylfu trails LRU; strict LRU is flat. On a 1-core box\n"
              "no cache can scale (threads time-share); the meaningful signals are\n"
              "that s3fifo/clock degrade least as threads (and lock handoffs) grow,\n"
              "and that tinylfu pays the largest per-op cost.\n");
}

}  // namespace
}  // namespace s3fifo

int main() {
  s3fifo::Run();
  return 0;
}
