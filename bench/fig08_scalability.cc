// Fig. 8: throughput scaling with thread count for the concurrent cache
// prototypes (strict LRU, Cachelib-style optimized LRU, CLOCK, TinyLFU,
// S3-FIFO), on a Zipf(1.0) workload at a large (low miss ratio) and small
// (high miss ratio) cache size. Reports the hit ratio at *every* thread
// count (a concurrency bug that corrupts eviction shows up as a hit-ratio
// drift with threads, not just as a throughput artifact) and emits
// BENCH_fig08.json for cross-PR tracking.
//
// NOTE: true scaling needs as many physical cores as threads. On a machine
// with fewer cores the harness still runs (threads time-share), measuring
// per-op overhead and lock contention rather than parallel speedup; the
// hardware core count is printed so results can be interpreted.
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/concurrent/concurrent_clock.h"
#include "src/concurrent/concurrent_lru.h"
#include "src/concurrent/concurrent_s3fifo.h"
#include "src/concurrent/concurrent_s3fifo_ring.h"
#include "src/concurrent/concurrent_tinylfu.h"
#include "src/concurrent/replay.h"

namespace s3fifo {
namespace {

std::unique_ptr<ConcurrentCache> MakeCache(const std::string& kind,
                                           const ConcurrentCacheConfig& config) {
  if (kind == "lru-strict") {
    return std::make_unique<ConcurrentLruStrict>(config);
  }
  if (kind == "lru-optimized") {
    return std::make_unique<ConcurrentLruOptimized>(config);
  }
  if (kind == "clock") {
    return std::make_unique<ConcurrentClock>(config);
  }
  if (kind == "tinylfu") {
    return std::make_unique<ConcurrentTinyLfu>(config);
  }
  if (kind == "s3fifo-ring") {
    return std::make_unique<ConcurrentS3FifoRing>(config);
  }
  return std::make_unique<ConcurrentS3Fifo>(config);
}

void Run() {
  PrintHeader("Fig. 8: throughput scaling with CPU cores", "Fig. 8a (large) / 8b (small)");
  const unsigned hw_threads = std::thread::hardware_concurrency();
  std::printf("hardware threads on this machine: %u\n", hw_threads);

  const double scale = BenchScale();
  const uint64_t num_objects = 1 << 18;
  const uint64_t per_thread = static_cast<uint64_t>(400000 * scale);
  const std::vector<unsigned> thread_counts = {1, 2, 4, 8, 16};

  JsonFields summary;
  summary.Add("hardware_threads", hw_threads)
      .Add("num_objects", num_objects)
      .Add("requests_per_thread", per_thread)
      .Add("zipf_alpha", 1.0);
  std::vector<JsonFields> rows;

  for (const bool large : {true, false}) {
    ConcurrentCacheConfig config;
    config.capacity_objects = large ? (num_objects / 2) : (num_objects / 64);
    config.value_size = 64;
    std::printf("\n--- %s cache (%lu objects, Zipf 1.0 over %lu objects) ---\n",
                large ? "large" : "small", (unsigned long)config.capacity_objects,
                (unsigned long)num_objects);
    std::printf("columns: Mops (hit ratio) per thread count\n");
    std::printf("%-14s", "cache");
    for (unsigned t : thread_counts) {
      std::printf("   T=%-2u          ", t);
    }
    std::printf("\n");
    for (const char* kind :
         {"lru-strict", "lru-optimized", "clock", "tinylfu", "s3fifo", "s3fifo-ring"}) {
      std::printf("%-14s", kind);
      for (unsigned threads : thread_counts) {
        auto cache = MakeCache(kind, config);
        ReplayOptions options;
        options.num_threads = threads;
        options.requests_per_thread = per_thread;
        options.num_objects = num_objects;
        options.zipf_alpha = 1.0;
        const ReplayResult r = ReplayClosedLoop(*cache, options);
        std::printf("  %7.2f (%.3f)", r.throughput_mops, r.hit_ratio);
        rows.push_back(JsonFields()
                           .Add("cache", kind)
                           .Add("cache_size", large ? "large" : "small")
                           .Add("capacity_objects", config.capacity_objects)
                           .Add("threads", threads)
                           .Add("throughput_mops", r.throughput_mops)
                           .Add("hit_ratio", r.hit_ratio)
                           .Add("batch_size", options.batch_size)
                           .Add("svc_p50_ns", r.latency.Percentile(50))
                           .Add("svc_p99_ns", r.latency.Percentile(99))
                           .Add("svc_p999_ns", r.latency.Percentile(99.9)));
      }
      std::printf("\n");
    }
  }
  WriteBenchJson("fig08", summary, rows);
  std::printf("\npaper shape (Fig. 8): on a 16-core box, s3fifo reaches >6x the\n"
              "throughput of optimized LRU at 16 threads; optimized LRU stops scaling\n"
              "past ~2 cores; tinylfu trails LRU; strict LRU is flat. On a 1-core box\n"
              "no cache can scale (threads time-share); the meaningful signals are\n"
              "that s3fifo/clock degrade least as threads (and lock handoffs) grow,\n"
              "that tinylfu pays the largest per-op cost, and that each cache's hit\n"
              "ratio stays flat across thread counts (concurrency does not corrupt\n"
              "eviction decisions).\n");
}

}  // namespace
}  // namespace s3fifo

int main() {
  s3fifo::Run();
  return 0;
}
