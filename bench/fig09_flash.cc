// Fig. 9: flash cache admission — write bytes (normalised to the trace's
// unique bytes) and miss ratio for: no admission (FIFO), probabilistic 20%,
// Flashield-like learned admission, and the S3-FIFO small-queue filter, on
// Wikimedia-CDN-like and Tencent-Photo-like traces, at DRAM sizes of 0.1%,
// 1%, and 10% of the flash cache.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/trace_source.h"
#include "src/flash/flash_cache.h"
#include "src/flash/log_flash_cache.h"
#include "src/workload/dataset_profiles.h"

namespace s3fifo {
namespace {

void Run(const BenchOptions& opts) {
  PrintHeader("Fig. 9: flash write bytes and miss ratio by admission policy",
              "Fig. 9 (left: wiki-like, right: tencent-photo-like)");
  const double scale = BenchScale();
  BenchTraceSource source(opts);

  for (const char* dataset : {"wiki", "tencent_photo"}) {
    // Use the dataset's access pattern with the paper's ~4KB reference
    // object size: production flash caches are orders of magnitude larger
    // than our scaled traces, so keeping the original large CDN objects
    // would leave the "0.1% DRAM" tier smaller than a single object.
    ZipfWorkloadConfig wc = DatasetByName(dataset).base;
    wc.num_objects = static_cast<uint64_t>(wc.num_objects * scale * 4);
    wc.num_requests = static_cast<uint64_t>(wc.num_requests * scale * 4);
    wc.size_mean_bytes = 4096;
    wc.size_sigma = 0.6;
    wc.seed = 11;
    Trace t = source.ZipfTrace(wc);
    const uint64_t footprint_bytes = t.Stats().footprint_bytes;
    const uint64_t flash_bytes = footprint_bytes / 10;  // 10% of footprint (paper)
    std::printf("\n--- %s-like trace: %lu requests, footprint %.1f MB, flash %.1f MB ---\n",
                dataset, (unsigned long)t.size(), footprint_bytes / 1048576.0,
                flash_bytes / 1048576.0);
    // Per scheme, two backends: the abstract byte-FIFO flash (write-bytes,
    // miss-ratio — the original fig09 columns) and the log-structured backend
    // (segment log + GC), which adds the WA axis: device bytes actually
    // absorbed by the flash and device/admitted write amplification.
    std::printf("%-22s %9s %12s %10s | %12s %7s %10s\n", "scheme", "dram", "write-bytes",
                "miss-ratio", "device-bytes", "WA", "log-missr");

    const uint64_t segment_bytes = 256 * 1024;
    for (const double dram_frac : {0.001, 0.01, 0.10}) {
      const uint64_t dram_bytes =
          std::max<uint64_t>(static_cast<uint64_t>(flash_bytes * dram_frac), 16 << 10);
      for (const char* scheme : {"none", "probabilistic", "flashield", "s3fifo"}) {
        const DramDiscipline discipline = std::string(scheme) == "s3fifo"
                                              ? DramDiscipline::kSmallFifo
                                              : DramDiscipline::kLru;
        FlashCacheConfig config;
        config.flash_capacity_bytes = flash_bytes;
        config.dram_capacity_bytes = dram_bytes;
        config.dram_discipline = discipline;
        auto admission =
            CreateAdmissionPolicy(scheme, /*reuse_horizon=*/t.size() / 10, /*seed=*/11);
        const FlashCacheStats stats = SimulateFlashCache(t, config, std::move(admission));

        LogFlashCacheConfig log_config;
        log_config.dram_capacity_bytes = dram_bytes;
        log_config.dram_discipline = discipline;
        log_config.log.segment_bytes = segment_bytes;
        log_config.log.num_segments = std::max<uint64_t>(flash_bytes / segment_bytes, 1);
        LogStructuredFlashCache log_cache(
            log_config, CreateAdmissionPolicy(scheme, /*reuse_horizon=*/t.size() / 10,
                                              /*seed=*/11));
        for (const Request& r : t.requests()) {
          log_cache.Get(r);
        }
        std::printf("%-22s %8.1f%% %12.3f %10.4f | %12.3f %7.3f %10.4f\n", scheme,
                    dram_frac * 100,
                    static_cast<double>(stats.flash_write_bytes) /
                        static_cast<double>(footprint_bytes),
                    stats.MissRatio(),
                    static_cast<double>(log_cache.DeviceBytesWritten()) /
                        static_cast<double>(footprint_bytes),
                    log_cache.WriteAmplification(), log_cache.stats().MissRatio());
      }
      std::printf("\n");
    }
  }
  std::printf("paper shape (Fig. 9): 'none' writes the most bytes with the lowest miss\n"
              "ratio; probabilistic cuts writes but raises the miss ratio regardless of\n"
              "DRAM size; flashield approaches s3fifo only at 10%% DRAM and degrades as\n"
              "DRAM shrinks; the s3fifo filter gets BOTH fewer writes and a miss ratio\n"
              "at or below the alternatives even at 0.1%% DRAM.\n");
  source.WriteReport();
}

}  // namespace
}  // namespace s3fifo

int main(int argc, char** argv) {
  s3fifo::Run(s3fifo::ParseBenchArgs(argc, argv));
  return 0;
}
