// Fig. 10 + Table 2: quick-demotion speed and precision, and the miss ratio
// as a function of the probationary-queue size, for ARC, TinyLFU, and
// S3-FIFO on the Twitter-like and MSR-like traces at large (10%) and small
// (1%) cache sizes. Speed is normalised to the LRU eviction age (§6.1).
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/trace_source.h"
#include "src/analysis/demotion.h"
#include "src/core/cache_factory.h"
#include "src/flash/log_flash_cache.h"
#include "src/sim/simulator.h"
#include "src/trace/next_access.h"
#include "src/workload/dataset_profiles.h"

namespace s3fifo {
namespace {

const double kQueueSizes[] = {0.40, 0.30, 0.20, 0.10, 0.05, 0.02, 0.01};

void Run(const BenchOptions& opts) {
  PrintHeader("Fig. 10 + Table 2: quick-demotion speed and precision", "Fig. 10a-d, Table 2");
  const double scale = BenchScale();
  BenchTraceSource source(opts);

  for (const char* dataset : {"twitter", "msr"}) {
    Trace t = source.DatasetTrace(DatasetByName(dataset), 0, scale);
    AnnotateNextAccess(t);
    const uint64_t footprint = t.Stats().num_objects;
    for (const double size_frac : {0.10, 0.01}) {
      CacheConfig config;
      config.capacity = std::max<uint64_t>(static_cast<uint64_t>(footprint * size_frac), 100);
      const double lru_age = LruEvictionAge(t, config);
      {
        auto lru = CreateCache("lru", config);
        auto arc = CreateCache("arc", config);
        const DemotionMetrics arc_m = MeasureDemotion(t, *arc, lru_age);
        std::printf("\n%s-like, cache=%.0f%% footprint (%lu objects), LRU evict age %.0f, "
                    "LRU missr %.4f\n",
                    dataset, size_frac * 100, (unsigned long)config.capacity, lru_age,
                    Simulate(t, *lru).MissRatio());
        std::printf("%-14s %7s %10s %10s %10s\n", "algorithm", "S-size", "speed", "precision",
                    "miss-ratio");
        std::printf("%-14s %7s %10.2f %10.3f %10.4f\n", "arc", "adapt", arc_m.normalized_speed,
                    arc_m.precision, arc_m.miss_ratio);
      }
      for (const char* algo : {"tinylfu", "s3fifo"}) {
        for (double s : kQueueSizes) {
          CacheConfig c2 = config;
          char params[64];
          if (std::string(algo) == "tinylfu") {
            std::snprintf(params, sizeof(params), "window_ratio=%.2f", s);
          } else {
            std::snprintf(params, sizeof(params), "small_ratio=%.2f", s);
          }
          c2.params = params;
          auto cache = CreateCache(algo, c2);
          const DemotionMetrics m = MeasureDemotion(t, *cache, lru_age);
          std::printf("%-14s %6.0f%% %10.2f %10.3f %10.4f\n", algo, s * 100,
                      m.normalized_speed, m.precision, m.miss_ratio);
        }
      }
    }
  }
  // Flash companion: the same probationary-queue-size axis, but with the
  // small queue as the DRAM tier of the log-structured flash cache. Quick
  // demotion is exactly what protects the flash device — a smaller S evicts
  // one-hit wonders before they earn admission, so WA and device bytes fall
  // with S until the queue is too small to accumulate the admission signal.
  {
    std::printf("\n--- flash WA vs small-queue (DRAM) size: twitter-like trace, "
                "log-structured backend, s3fifo admission ---\n");
    ZipfWorkloadConfig wc = DatasetByName("twitter").base;
    wc.num_objects = static_cast<uint64_t>(wc.num_objects * scale);
    wc.num_requests = static_cast<uint64_t>(wc.num_requests * scale);
    wc.size_mean_bytes = 4096;
    wc.size_sigma = 0.6;
    wc.seed = 11;
    const Trace t = source.ZipfTrace(wc);
    const uint64_t footprint_bytes = t.Stats().footprint_bytes;
    const uint64_t flash_bytes = footprint_bytes / 10;
    const uint64_t segment_bytes = 256 * 1024;
    std::printf("%-8s %10s %12s %7s %10s\n", "S-size", "miss-ratio", "device-MB", "WA",
                "gc-MB");
    for (const double s : kQueueSizes) {
      LogFlashCacheConfig config;
      config.dram_capacity_bytes =
          std::max<uint64_t>(static_cast<uint64_t>(flash_bytes * s), 16 << 10);
      config.dram_discipline = DramDiscipline::kSmallFifo;
      config.log.segment_bytes = segment_bytes;
      config.log.num_segments = std::max<uint64_t>(flash_bytes / segment_bytes, 1);
      config.log.gc_readmit = true;
      LogStructuredFlashCache cache(
          config, CreateAdmissionPolicy("s3fifo", /*reuse_horizon=*/t.size() / 10, /*seed=*/11));
      for (const Request& r : t.requests()) {
        cache.Get(r);
      }
      std::printf("%6.0f%% %10.4f %12.1f %7.3f %10.1f\n", s * 100, cache.stats().MissRatio(),
                  cache.DeviceBytesWritten() / 1048576.0, cache.WriteAmplification(),
                  cache.log_stats().gc_rewrite_bytes / 1048576.0);
    }
  }

  std::printf("\npaper shape (Fig. 10 / Table 2): shrinking S monotonically increases\n"
              "demotion speed for both tinylfu and s3fifo; s3fifo's precision rises to\n"
              "a peak then falls as S grows; at matched speed s3fifo's precision is at\n"
              "or above tinylfu's, and higher precision tracks lower miss ratios.\n");
  source.WriteReport();
}

}  // namespace
}  // namespace s3fifo

int main(int argc, char** argv) {
  s3fifo::Run(s3fifo::ParseBenchArgs(argc, argv));
  return 0;
}
