// Fig. 10 + Table 2: quick-demotion speed and precision, and the miss ratio
// as a function of the probationary-queue size, for ARC, TinyLFU, and
// S3-FIFO on the Twitter-like and MSR-like traces at large (10%) and small
// (1%) cache sizes. Speed is normalised to the LRU eviction age (§6.1).
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/trace_source.h"
#include "src/analysis/demotion.h"
#include "src/core/cache_factory.h"
#include "src/sim/simulator.h"
#include "src/trace/next_access.h"
#include "src/workload/dataset_profiles.h"

namespace s3fifo {
namespace {

const double kQueueSizes[] = {0.40, 0.30, 0.20, 0.10, 0.05, 0.02, 0.01};

void Run(const BenchOptions& opts) {
  PrintHeader("Fig. 10 + Table 2: quick-demotion speed and precision", "Fig. 10a-d, Table 2");
  const double scale = BenchScale();
  BenchTraceSource source(opts);

  for (const char* dataset : {"twitter", "msr"}) {
    Trace t = source.DatasetTrace(DatasetByName(dataset), 0, scale);
    AnnotateNextAccess(t);
    const uint64_t footprint = t.Stats().num_objects;
    for (const double size_frac : {0.10, 0.01}) {
      CacheConfig config;
      config.capacity = std::max<uint64_t>(static_cast<uint64_t>(footprint * size_frac), 100);
      const double lru_age = LruEvictionAge(t, config);
      {
        auto lru = CreateCache("lru", config);
        auto arc = CreateCache("arc", config);
        const DemotionMetrics arc_m = MeasureDemotion(t, *arc, lru_age);
        std::printf("\n%s-like, cache=%.0f%% footprint (%lu objects), LRU evict age %.0f, "
                    "LRU missr %.4f\n",
                    dataset, size_frac * 100, (unsigned long)config.capacity, lru_age,
                    Simulate(t, *lru).MissRatio());
        std::printf("%-14s %7s %10s %10s %10s\n", "algorithm", "S-size", "speed", "precision",
                    "miss-ratio");
        std::printf("%-14s %7s %10.2f %10.3f %10.4f\n", "arc", "adapt", arc_m.normalized_speed,
                    arc_m.precision, arc_m.miss_ratio);
      }
      for (const char* algo : {"tinylfu", "s3fifo"}) {
        for (double s : kQueueSizes) {
          CacheConfig c2 = config;
          char params[64];
          if (std::string(algo) == "tinylfu") {
            std::snprintf(params, sizeof(params), "window_ratio=%.2f", s);
          } else {
            std::snprintf(params, sizeof(params), "small_ratio=%.2f", s);
          }
          c2.params = params;
          auto cache = CreateCache(algo, c2);
          const DemotionMetrics m = MeasureDemotion(t, *cache, lru_age);
          std::printf("%-14s %6.0f%% %10.2f %10.3f %10.4f\n", algo, s * 100,
                      m.normalized_speed, m.precision, m.miss_ratio);
        }
      }
    }
  }
  std::printf("\npaper shape (Fig. 10 / Table 2): shrinking S monotonically increases\n"
              "demotion speed for both tinylfu and s3fifo; s3fifo's precision rises to\n"
              "a peak then falls as S grows; at matched speed s3fifo's precision is at\n"
              "or above tinylfu's, and higher precision tracks lower miss ratios.\n");
  source.WriteReport();
}

}  // namespace
}  // namespace s3fifo

int main(int argc, char** argv) {
  s3fifo::Run(s3fifo::ParseBenchArgs(argc, argv));
  return 0;
}
