// Fig. 11: S3-FIFO's miss-ratio-reduction percentiles across traces as a
// function of the small-queue size (1% .. 40% of the cache), at large and
// small cache sizes. Runs on the sweep engine: all seven small_ratio
// variants share one pass over each trace.
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "bench/sweep.h"
#include "bench/trace_source.h"
#include "src/sim/metrics.h"

namespace s3fifo {
namespace {

const double kSmallRatios[] = {0.01, 0.02, 0.05, 0.10, 0.20, 0.30, 0.40};

void Run(const BenchOptions& opts) {
  PrintHeader("Fig. 11: sensitivity to the small-queue size", "Fig. 11 (left/right)");
  const double scale = BenchScale() * 0.25;

  std::vector<PolicyVariant> variants;
  for (double ratio : kSmallRatios) {
    char label[32], params[48];
    std::snprintf(label, sizeof(label), "S=%.0f%%", ratio * 100);
    std::snprintf(params, sizeof(params), "small_ratio=%.2f", ratio);
    variants.push_back({label, "s3fifo", params});
  }

  std::map<std::string, std::vector<double>> red_large, red_small;
  BenchTraceSource source(opts);
  const SweepSummary summary = RunMissRatioSweep(
      scale, variants, /*include_small=*/true,
      [&](const SweepCell& c) {
        const double mr_fifo = c.fifo.MissRatio();
        for (size_t vi = 0; vi < variants.size(); ++vi) {
          (c.large ? red_large : red_small)[variants[vi].label].push_back(
              MissRatioReduction(c.results[vi].MissRatio(), mr_fifo));
        }
      },
      opts.threads, /*progress=*/true, source.cache(), ParseMrcMode(opts.mrc));

  std::vector<JsonFields> json_rows;
  for (const bool large : {true, false}) {
    std::printf("\n--- %s cache ---\n", large ? "large" : "small");
    for (const PolicyVariant& v : variants) {
      const PercentileRow row = Percentiles((large ? red_large : red_small)[v.label]);
      std::printf("%s\n", FormatPercentileRow(v.label, row).c_str());
      json_rows.push_back(JsonFields()
                              .Add("small_ratio", v.params)
                              .Add("size", large ? "large" : "small")
                              .Add("mean_reduction", row.mean)
                              .Add("p10", row.p10)
                              .Add("p90", row.p90));
    }
  }
  std::printf("\npaper shape (Fig. 11): smaller S gives the largest reductions at the\n"
              "top percentiles (P90 peaks near S=1-2%%) but drags the bottom percentile\n"
              "down (more traces worse than FIFO); the curve is flat between 5%% and\n"
              "20%% for most traces — 10%% is a robust default (§6.2.1).\n");
  PrintSweepSummary(summary);
  WriteBenchJson("fig11_queue_size",
                 JsonFields()
                     .Add("scale", scale)
                     .Add("threads", summary.threads)
                     .Add("wall_ms", summary.wall_ms)
                     .Add("simulated_requests", summary.simulated_requests)
                     .Add("requests_per_sec", summary.requests_per_sec),
                 json_rows);
  source.WriteReport();
}

}  // namespace
}  // namespace s3fifo

int main(int argc, char** argv) {
  s3fifo::Run(s3fifo::ParseBenchArgs(argc, argv));
  return 0;
}
