// Fig. 11: S3-FIFO's miss-ratio-reduction percentiles across traces as a
// function of the small-queue size (1% .. 40% of the cache), at large and
// small cache sizes.
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "bench/sweep.h"
#include "src/core/cache_factory.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"

namespace s3fifo {
namespace {

const double kSmallRatios[] = {0.01, 0.02, 0.05, 0.10, 0.20, 0.30, 0.40};

void Run() {
  PrintHeader("Fig. 11: sensitivity to the small-queue size", "Fig. 11 (left/right)");
  const double scale = BenchScale() * 0.25;

  std::map<double, std::vector<double>> red_large, red_small;

  ForEachSweepCase(scale, [&](const SweepCase& c) {
    for (const bool large : {true, false}) {
      CacheConfig config;
      config.capacity = large ? c.large_capacity : c.small_capacity;
      auto fifo = CreateCache("fifo", config);
      const double mr_fifo = Simulate(c.trace, *fifo).MissRatio();
      for (double ratio : kSmallRatios) {
        char params[48];
        std::snprintf(params, sizeof(params), "small_ratio=%.2f", ratio);
        CacheConfig c2 = config;
        c2.params = params;
        auto cache = CreateCache("s3fifo", c2);
        (large ? red_large : red_small)[ratio].push_back(
            MissRatioReduction(Simulate(c.trace, *cache).MissRatio(), mr_fifo));
      }
    }
  });

  for (const bool large : {true, false}) {
    std::printf("\n--- %s cache ---\n", large ? "large" : "small");
    for (double ratio : kSmallRatios) {
      char label[32];
      std::snprintf(label, sizeof(label), "S=%.0f%%", ratio * 100);
      std::printf("%s\n",
                  FormatPercentileRow(label, Percentiles((large ? red_large : red_small)[ratio]))
                      .c_str());
    }
  }
  std::printf("\npaper shape (Fig. 11): smaller S gives the largest reductions at the\n"
              "top percentiles (P90 peaks near S=1-2%%) but drags the bottom percentile\n"
              "down (more traces worse than FIFO); the curve is flat between 5%% and\n"
              "20%% for most traces — 10%% is a robust default (§6.2.1).\n");
}

}  // namespace
}  // namespace s3fifo

int main() {
  s3fifo::Run();
  return 0;
}
