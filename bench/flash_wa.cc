// Flash write-amplification bench: the log-structured backend's device-byte
// accounting across admission policies, log orderings, and the small-object
// set store, on the fig09 wiki-like and tencent-photo-like traces.
//
// This is the axis the abstract FlashCacheSim could not report: every row
// carries device_bytes_written (what the flash absorbs) next to
// admitted_bytes (what the cache asked for), their ratio being the write
// amplification the admission policy + GC discipline produce together.
// Emits BENCH_flash.json for cross-PR tracking.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/trace_source.h"
#include "src/flash/log_flash_cache.h"
#include "src/workload/dataset_profiles.h"

namespace s3fifo {
namespace {

struct Backend {
  const char* name;
  LogOrdering ordering;
  bool gc_readmit;
  bool sets;  // carve 1/8 of flash into a set-associative small-object store
};

void Run(const BenchOptions& opts) {
  PrintHeader("Flash WA: device bytes and write amplification by admission policy",
              "Fig. 9 WA axis (log-structured backend; RIPQ FAST'15, Kangaroo SOSP'21)");
  const double scale = BenchScale();
  BenchTraceSource source(opts);
  const uint64_t segment_bytes = 256 * 1024;

  std::vector<JsonFields> rows;
  JsonFields summary;
  WallTimer total;

  const Backend backends[] = {
      {"log-fifo", LogOrdering::kFifo, false, false},
      {"log-fifo-readmit", LogOrdering::kFifo, true, false},
      {"log-ripq", LogOrdering::kRipq, true, false},
      {"log-ripq+sets", LogOrdering::kRipq, true, true},
  };

  for (const char* dataset : {"wiki", "tencent_photo"}) {
    // Same shaping as fig09: the dataset's access pattern at the paper's
    // ~4KB reference object size.
    ZipfWorkloadConfig wc = DatasetByName(dataset).base;
    wc.num_objects = static_cast<uint64_t>(wc.num_objects * scale * 4);
    wc.num_requests = static_cast<uint64_t>(wc.num_requests * scale * 4);
    wc.size_mean_bytes = 4096;
    wc.size_sigma = 0.6;
    wc.seed = 11;
    Trace t = source.ZipfTrace(wc);
    const uint64_t footprint_bytes = t.Stats().footprint_bytes;
    const uint64_t flash_bytes = footprint_bytes / 10;
    const uint64_t dram_bytes = std::max<uint64_t>(flash_bytes / 100, 16 << 10);
    std::printf("\n--- %s-like trace: %lu requests, footprint %.1f MB, flash %.1f MB, "
                "dram %.1f MB ---\n",
                dataset, (unsigned long)t.size(), footprint_bytes / 1048576.0,
                flash_bytes / 1048576.0, dram_bytes / 1048576.0);
    std::printf("%-18s %-14s %10s %11s %11s %7s %10s\n", "backend", "admission",
                "miss-ratio", "admit-MB", "device-MB", "WA", "gc-MB");

    for (const Backend& backend : backends) {
      for (const char* scheme : {"none", "probabilistic", "flashield", "s3fifo"}) {
        LogFlashCacheConfig config;
        config.dram_capacity_bytes = dram_bytes;
        config.dram_discipline = std::string(scheme) == "s3fifo" ? DramDiscipline::kSmallFifo
                                                                 : DramDiscipline::kLru;
        config.log.segment_bytes = segment_bytes;
        config.log.ordering = backend.ordering;
        config.log.gc_readmit = backend.gc_readmit;
        config.log.ripq_sections = 4;
        config.log.insert_priority = 1;
        uint64_t log_bytes = flash_bytes;
        if (backend.sets) {
          const uint64_t set_budget = flash_bytes / 8;
          config.small_object_threshold = 1024;
          config.set_store.set_bytes = 4096;
          config.set_store.num_sets = std::max<uint64_t>(set_budget / 4096, 1);
          log_bytes -= set_budget;
        }
        config.log.num_segments = std::max<uint64_t>(log_bytes / segment_bytes, 1);

        WallTimer timer;
        LogStructuredFlashCache cache(
            config, CreateAdmissionPolicy(scheme, /*reuse_horizon=*/t.size() / 10, /*seed=*/11));
        for (const Request& r : t.requests()) {
          cache.Get(r);
        }
        const double ms = timer.ElapsedMs();
        const LogFlashCacheStats& stats = cache.stats();
        const double admit_mb = cache.AdmittedBytes() / 1048576.0;
        const double device_mb = cache.DeviceBytesWritten() / 1048576.0;
        std::printf("%-18s %-14s %10.4f %11.1f %11.1f %7.3f %10.1f\n", backend.name, scheme,
                    stats.MissRatio(), admit_mb, device_mb, cache.WriteAmplification(),
                    cache.log_stats().gc_rewrite_bytes / 1048576.0);

        JsonFields row;
        row.Add("dataset", dataset)
            .Add("backend", backend.name)
            .Add("admission", scheme)
            .Add("requests", static_cast<uint64_t>(t.size()))
            .Add("miss_ratio", stats.MissRatio())
            .Add("byte_miss_ratio", stats.ByteMissRatio())
            .Add("admitted_bytes", cache.AdmittedBytes())
            .Add("device_bytes_written", cache.DeviceBytesWritten())
            .Add("write_amplification", cache.WriteAmplification())
            .Add("log_admitted_bytes", cache.log_stats().admitted_bytes)
            .Add("log_device_bytes", cache.log_stats().device_bytes_written)
            .Add("gc_rewrite_bytes", cache.log_stats().gc_rewrite_bytes)
            .Add("set_admitted_bytes", cache.set_stats().admitted_bytes)
            .Add("set_device_bytes", cache.set_stats().device_bytes_written)
            .Add("set_page_writes", cache.set_stats().page_writes)
            .Add("set_bytes", cache.sets().set_bytes())
            .Add("flash_evictions", stats.flash_evictions)
            .Add("elapsed_ms", ms);
        rows.push_back(row);
      }
      std::printf("\n");
    }
  }

  std::printf("shape: every admission filter cuts device bytes 3-7x vs none, with the\n"
              "s3fifo filter taking the lowest miss ratio on every backend; readmission\n"
              "and RIPQ raise WA above 1.0 (the GC rewrite tax) in exchange for lower\n"
              "miss ratios; the set store pays page-granularity WA for sub-1KB objects.\n");

  summary.Add("scale", scale)
      .Add("segment_bytes", segment_bytes)
      .Add("elapsed_ms", total.ElapsedMs());
  WriteBenchJson("flash", summary, rows);
  source.WriteReport();
}

}  // namespace
}  // namespace s3fifo

int main(int argc, char** argv) {
  s3fifo::Run(s3fifo::ParseBenchArgs(argc, argv));
  return 0;
}
