// Micro-benchmarks (google-benchmark): per-request cost of each simulated
// policy, plus the core substrate operations (Zipf sampling, hashing, ghost
// structures, sketch, MPMC ring). Supports the §4.3 overhead analysis.
#include <benchmark/benchmark.h>

#include <unordered_map>

#include "src/concurrent/concurrent_s3fifo.h"
#include "src/concurrent/ebr.h"
#include "src/concurrent/lockfree_hash_map.h"
#include "src/concurrent/mpmc_queue.h"
#include "src/concurrent/striped_hash_map.h"
#include "src/core/cache_factory.h"
#include "src/trace/trace.h"
#include "src/trace/trace_view.h"
#include "src/util/count_min_sketch.h"
#include "src/util/flat_map.h"
#include "src/util/ghost_queue.h"
#include "src/util/ghost_table.h"
#include "src/util/hash.h"
#include "src/util/intrusive_list.h"
#include "src/util/rng.h"
#include "src/util/zipf.h"

namespace s3fifo {
namespace {

void BM_Mix64(benchmark::State& state) {
  uint64_t x = 1;
  for (auto _ : state) {
    x = Mix64(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Mix64);

void BM_ZipfSample(benchmark::State& state) {
  ZipfDistribution zipf(1 << 20, 1.0);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

// Ghost structures across working-set sizes: capacity = range(0), id universe
// 5x capacity (the §4.2 regime — most lookups miss, inserts churn buckets).
void BM_GhostQueue(benchmark::State& state) {
  const uint64_t capacity = static_cast<uint64_t>(state.range(0));
  GhostQueue ghost(capacity);
  Rng rng(2);
  for (auto _ : state) {
    const uint64_t id = rng.NextBounded(5 * capacity);
    ghost.Insert(id);
    benchmark::DoNotOptimize(ghost.Contains(id ^ 1));
  }
}
BENCHMARK(BM_GhostQueue)->RangeMultiplier(8)->Range(1 << 10, 1 << 19);

void BM_GhostTable(benchmark::State& state) {
  const uint64_t capacity = static_cast<uint64_t>(state.range(0));
  GhostTable ghost(capacity);
  Rng rng(2);
  for (auto _ : state) {
    const uint64_t id = rng.NextBounded(5 * capacity);
    ghost.Insert(id);
    benchmark::DoNotOptimize(ghost.Contains(id ^ 1));
  }
}
BENCHMARK(BM_GhostTable)->RangeMultiplier(8)->Range(1 << 10, 1 << 19);

void BM_CountMinSketch(benchmark::State& state) {
  CountMinSketch sketch(1 << 16);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.Increment(rng.NextBounded(1 << 18)));
  }
}
BENCHMARK(BM_CountMinSketch);

void BM_MpmcQueue(benchmark::State& state) {
  MpmcQueue<uint64_t> q(1024);
  uint64_t v = 0;
  for (auto _ : state) {
    q.TryPush(v);
    q.TryPop(&v);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_MpmcQueue);

// FlatMap vs std::unordered_map on the S3-FIFO table access pattern: Zipf
// lookups (mostly hits), miss -> insert, FIFO-ordered erase at capacity —
// the exact find/emplace/erase mix the policies' hot path issues. The entry
// mirrors S3FifoCache::Entry (intrusive hook and all) so both tables move
// the same bytes.
struct ChurnEntry {
  uint64_t id = 0;
  uint64_t size = 1;
  uint32_t freq = 0;
  uint32_t hits = 0;
  bool in_small = true;
  uint64_t insert_time = 0;
  uint64_t stage_enter_time = 0;
  uint64_t last_access_time = 0;
  ListHook hook;
};

template <typename Table>
void HashChurn(benchmark::State& state, Table& table) {
  constexpr uint64_t kObjects = 1 << 16;
  constexpr size_t kCapacity = kObjects / 10;
  ZipfDistribution zipf(kObjects, 1.0);
  Rng rng(7);
  std::vector<uint64_t> fifo(kCapacity, 0);  // ring of resident ids, FIFO order
  size_t head = 0, resident = 0;
  uint64_t tick = 0;
  for (auto _ : state) {
    const uint64_t id = zipf.Sample(rng);
    ++tick;
    if constexpr (std::is_same_v<Table, FlatMap<ChurnEntry>>) {
      if (ChurnEntry* e = table.Find(id)) {
        ++e->freq;
        e->last_access_time = tick;
        continue;
      }
      if (resident == kCapacity) {
        table.Erase(fifo[head]);
        --resident;
      }
      ChurnEntry& e = *table.Emplace(id);
      e.id = id;
      e.insert_time = tick;
    } else {
      auto it = table.find(id);
      if (it != table.end()) {
        ++it->second.freq;
        it->second.last_access_time = tick;
        continue;
      }
      if (resident == kCapacity) {
        table.erase(fifo[head]);
        --resident;
      }
      ChurnEntry& e = table[id];
      e.id = id;
      e.insert_time = tick;
    }
    fifo[head] = id;
    head = (head + 1) % kCapacity;
    ++resident;
  }
  benchmark::DoNotOptimize(resident);
}

void BM_FlatMapChurn(benchmark::State& state) {
  FlatMap<ChurnEntry> table;
  HashChurn(state, table);
}
BENCHMARK(BM_FlatMapChurn);

// Pure probe cost across table sizes and load factors: a table of range(0)
// hash slots filled to range(1)% (Reserve pins the slot count so the load
// factor is exact, not wherever the growth policy landed), probed with a
// uniform stream of resident keys (FindHit) or absent keys (FindMiss).
// FindMiss is the probe-length stress: every lookup must walk to
// termination, which the group-probing layout answers with one 16-wide
// compare per group instead of a per-slot loop.
void FlatMapProbeArgs(benchmark::internal::Benchmark* b) {
  for (const int64_t slots : {1 << 12, 1 << 16, 1 << 20}) {
    for (const int64_t load_pct : {50, 70}) {
      b->Args({slots, load_pct});
    }
  }
}

void BM_FlatMapFindHit(benchmark::State& state) {
  const uint64_t slots = static_cast<uint64_t>(state.range(0));
  const uint64_t keys = slots * static_cast<uint64_t>(state.range(1)) / 100;
  FlatMap<ChurnEntry> table;
  table.Reserve(slots * 3 / 4);  // Reserve(3/4 * slots) allocates exactly `slots`
  for (uint64_t k = 1; k <= keys; ++k) {
    table.Emplace(k)->id = k;
  }
  Rng rng(11);
  uint64_t sum = 0;
  for (auto _ : state) {
    const uint64_t key = 1 + rng.NextBounded(keys);
    const ChurnEntry* e = table.Find(key);
    sum += e != nullptr ? e->id : 0;
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_FlatMapFindHit)->Apply(FlatMapProbeArgs);

void BM_FlatMapFindMiss(benchmark::State& state) {
  const uint64_t slots = static_cast<uint64_t>(state.range(0));
  const uint64_t keys = slots * static_cast<uint64_t>(state.range(1)) / 100;
  FlatMap<ChurnEntry> table;
  table.Reserve(slots * 3 / 4);
  for (uint64_t k = 1; k <= keys; ++k) {
    table.Emplace(k)->id = k;
  }
  Rng rng(13);
  for (auto _ : state) {
    const uint64_t key = (1ull << 40) + rng.NextBounded(1ull << 30);  // never inserted
    benchmark::DoNotOptimize(table.Find(key));
  }
}
BENCHMARK(BM_FlatMapFindMiss)->Apply(FlatMapProbeArgs);

void BM_UnorderedMapChurn(benchmark::State& state) {
  std::unordered_map<uint64_t, ChurnEntry> table;
  HashChurn(state, table);
}
BENCHMARK(BM_UnorderedMapChurn);

// Concurrent Get-hit path (§5.3): the index probe dominates a cache hit, so
// compare the seed's mutex-per-read StripedHashMap against the lock-free
// LockFreeHashMap on an identical all-hit Zipf probe stream, single-threaded
// (pure per-op cost) and at 4 threads (lock handoff / shared-line cost —
// on a box with fewer cores this measures contention overhead, not scaling).
struct IndexEntry {
  explicit IndexEntry(uint64_t k) : key(k) {}
  uint64_t key;
};
constexpr uint64_t kIndexObjects = 1 << 16;

void BM_StripedMapGetHit(benchmark::State& state) {
  static StripedHashMap<IndexEntry*>* map = [] {
    auto* m = new StripedHashMap<IndexEntry*>(64, kIndexObjects / 64 + 1);
    for (uint64_t k = 0; k < kIndexObjects; ++k) {
      m->InsertIfAbsent(k, new IndexEntry(k));
    }
    return m;
  }();
  ZipfDistribution zipf(kIndexObjects, 1.0);
  Rng rng(100 + state.thread_index());
  for (auto _ : state) {
    const uint64_t id = zipf.Sample(rng) - 1;  // zipf ranks are 1-based
    uint64_t key = 0;
    map->WithValue(id, [&](IndexEntry** slot) {
      if (slot != nullptr) {
        key = (*slot)->key;
      }
      return true;
    });
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_StripedMapGetHit)->Threads(1);
BENCHMARK(BM_StripedMapGetHit)->Threads(4);

void BM_LockFreeMapGetHit(benchmark::State& state) {
  static LockFreeHashMap<IndexEntry*>* map = [] {
    auto* m = new LockFreeHashMap<IndexEntry*>(kIndexObjects, 64);
    for (uint64_t k = 0; k < kIndexObjects; ++k) {
      m->InsertIfAbsent(k, new IndexEntry(k));
    }
    return m;
  }();
  ZipfDistribution zipf(kIndexObjects, 1.0);
  Rng rng(100 + state.thread_index());
  for (auto _ : state) {
    const uint64_t id = zipf.Sample(rng) - 1;
    EbrDomain::Guard guard;
    uint64_t key = 0;
    if (IndexEntry* e = map->Find(id)) {
      key = e->key;
    }
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_LockFreeMapGetHit)->Threads(1);
BENCHMARK(BM_LockFreeMapGetHit)->Threads(4);

// Full ConcurrentS3Fifo Get on a hit-dominated Zipf stream (cache = 10% of
// the universe, pre-warmed): the end-to-end cost the lock-free read path buys
// down — EBR pin, index probe, capped freq increment, payload touch.
void BM_ConcurrentS3FifoGet(benchmark::State& state) {
  static ConcurrentS3Fifo* cache = [] {
    ConcurrentCacheConfig config;
    config.capacity_objects = kIndexObjects / 10;
    config.value_size = 64;
    auto* c = new ConcurrentS3Fifo(config);
    ZipfDistribution zipf(kIndexObjects, 1.0);
    Rng rng(7);
    for (uint64_t i = 0; i < kIndexObjects * 4; ++i) {
      c->Get(zipf.Sample(rng));
    }
    return c;
  }();
  ZipfDistribution zipf(kIndexObjects, 1.0);
  Rng rng(100 + state.thread_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache->Get(zipf.Sample(rng)));
  }
}
BENCHMARK(BM_ConcurrentS3FifoGet)->Threads(1);
BENCHMARK(BM_ConcurrentS3FifoGet)->Threads(4);

// Per-request cost of each policy on a Zipf(1.0) stream, cache = 10% of the
// universe (≈90% hit ratio: dominated by the hit path, as in production).
void BM_PolicyGet(benchmark::State& state, const std::string& policy) {
  constexpr uint64_t kObjects = 1 << 16;
  CacheConfig config;
  config.capacity = kObjects / 10;
  auto cache = CreateCache(policy, config);
  ZipfDistribution zipf(kObjects, 1.0);
  Rng rng(7);
  Request req;
  for (auto _ : state) {
    req.id = zipf.Sample(rng);
    benchmark::DoNotOptimize(cache->Get(req));
  }
}
// Batched vs scalar access on one shared pre-built Zipf trace: per-request
// cost of Cache::GetBatch — the policies' devirtualized block loop plus
// batched eviction sweeps — next to the equivalent prefetch-ahead Get()
// loop (the pre-batching simulator hot path). Each iteration replays one
// 4096-request chunk and advances through the trace, so the cache sits at
// its steady-state resident set; counters report requests/s.
void BM_AccessBatch(benchmark::State& state, const std::string& policy, bool batched) {
  constexpr uint64_t kObjects = 1 << 16;
  constexpr uint64_t kChunk = 4096;
  static const Trace* trace = [] {
    auto* t = new Trace;
    ZipfDistribution zipf(kObjects, 1.0);
    Rng rng(7);
    Request req;
    for (uint64_t i = 0; i < (1u << 20); ++i) {
      req.id = zipf.Sample(rng);
      t->Append(req);
    }
    return t;
  }();
  const TraceView view = TraceView::Borrow(*trace);
  CacheConfig config;
  config.capacity = kObjects / 10;
  auto cache = CreateCache(policy, config);
  std::vector<uint8_t> hits(kChunk);
  cache->GetBatch(view, 0, kChunk, hits.data());  // warm past the cold start
  uint64_t begin = 0;
  for (auto _ : state) {
    const uint64_t end = begin + kChunk;
    if (batched) {
      cache->GetBatch(view, begin, end, hits.data());
    } else {
      for (uint64_t i = begin; i < end; ++i) {
        if (i + 16 < end) {
          cache->Prefetch(view.id(i + 16));
        }
        hits[i - begin] = cache->Get(view.At(i)) ? 1 : 0;
      }
    }
    benchmark::DoNotOptimize(hits.data());
    benchmark::ClobberMemory();
    begin = end < view.size() ? end : 0;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kChunk));
}
BENCHMARK_CAPTURE(BM_AccessBatch, fifo_scalar, "fifo", false);
BENCHMARK_CAPTURE(BM_AccessBatch, fifo_batched, "fifo", true);
BENCHMARK_CAPTURE(BM_AccessBatch, lru_scalar, "lru", false);
BENCHMARK_CAPTURE(BM_AccessBatch, lru_batched, "lru", true);
BENCHMARK_CAPTURE(BM_AccessBatch, clock_scalar, "clock", false);
BENCHMARK_CAPTURE(BM_AccessBatch, clock_batched, "clock", true);
BENCHMARK_CAPTURE(BM_AccessBatch, sieve_scalar, "sieve", false);
BENCHMARK_CAPTURE(BM_AccessBatch, sieve_batched, "sieve", true);
BENCHMARK_CAPTURE(BM_AccessBatch, s3fifo_scalar, "s3fifo", false);
BENCHMARK_CAPTURE(BM_AccessBatch, s3fifo_batched, "s3fifo", true);
BENCHMARK_CAPTURE(BM_AccessBatch, s3fifo_d_scalar, "s3fifo-d", false);
BENCHMARK_CAPTURE(BM_AccessBatch, s3fifo_d_batched, "s3fifo-d", true);

BENCHMARK_CAPTURE(BM_PolicyGet, fifo, "fifo");
BENCHMARK_CAPTURE(BM_PolicyGet, lru, "lru");
BENCHMARK_CAPTURE(BM_PolicyGet, clock, "clock");
BENCHMARK_CAPTURE(BM_PolicyGet, sieve, "sieve");
BENCHMARK_CAPTURE(BM_PolicyGet, s3fifo, "s3fifo");
BENCHMARK_CAPTURE(BM_PolicyGet, s3fifo_d, "s3fifo-d");
BENCHMARK_CAPTURE(BM_PolicyGet, tinylfu, "tinylfu");
BENCHMARK_CAPTURE(BM_PolicyGet, arc, "arc");
BENCHMARK_CAPTURE(BM_PolicyGet, lirs, "lirs");
BENCHMARK_CAPTURE(BM_PolicyGet, twoq, "2q");
BENCHMARK_CAPTURE(BM_PolicyGet, slru, "slru");
BENCHMARK_CAPTURE(BM_PolicyGet, lecar, "lecar");
BENCHMARK_CAPTURE(BM_PolicyGet, lhd, "lhd");
BENCHMARK_CAPTURE(BM_PolicyGet, fifo_merge, "fifo-merge");

}  // namespace
}  // namespace s3fifo

BENCHMARK_MAIN();
