// One-pass MRC engine speedup + error report (BENCH_mrc.json).
//
// For every policy the engine supports, computes the full miss-ratio curve
// twice on each trace — brute force (one simulation per grid size, the
// pre-engine default) and one-pass (a single traversal for the whole grid)
// — and reports the wall-clock speedup and the maximum absolute difference
// between the two curves. For the exact FIFO-family replicas the error
// column must print 0; it is the acceptance gate for --mrc=onepass being the
// bench default. A SHARDS row shows the streaming sampled estimator against
// brute force for a policy the engine does NOT support (lru), where sampling
// is the only one-pass option.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/sweep.h"
#include "bench/trace_source.h"
#include "src/analysis/mrc.h"
#include "src/analysis/mrc_engine.h"
#include "src/analysis/shards.h"
#include "src/trace/trace_view.h"
#include "src/workload/dataset_profiles.h"
#include "src/workload/zipf_workload.h"

namespace s3fifo {
namespace {

// The fig06 size grid: a geometric sweep between the fig06 SweepCapacity
// anchors (1% and 10% of the trace footprint), i.e. the size range the
// paper's Fig. 6 percentile plots are measured over, at MRC resolution.
std::vector<uint64_t> GeometricGrid(uint64_t footprint) {
  const uint64_t lo = std::max<uint64_t>(SweepCapacity(footprint, false), 4);
  const uint64_t hi = std::max<uint64_t>(SweepCapacity(footprint, true), lo + 1);
  const int points = 32;
  std::vector<uint64_t> grid;
  const double ratio = std::pow(static_cast<double>(hi) / lo, 1.0 / (points - 1));
  double v = static_cast<double>(lo);
  for (int i = 0; i < points; ++i, v *= ratio) {
    const uint64_t size = std::max<uint64_t>(static_cast<uint64_t>(v), 1);
    if (grid.empty() || size != grid.back()) {
      grid.push_back(size);
    }
  }
  return grid;
}

struct NamedTrace {
  std::string name;
  Trace trace;
};

void Run(const BenchOptions& opts) {
  PrintHeader("One-pass MRC engine: speedup and exactness vs brute force",
              "engine acceptance report (not a paper figure)");
  const double scale = BenchScale();

  std::vector<NamedTrace> traces;
  {
    ZipfWorkloadConfig zc;
    zc.num_objects = static_cast<uint64_t>(20000 * scale) + 1000;
    zc.num_requests = static_cast<uint64_t>(200000 * scale) + 10000;
    zc.alpha = 1.0;
    zc.write_fraction = 0.05;
    zc.delete_fraction = 0.01;
    zc.seed = 42;
    traces.push_back({"zipf1.0", GenerateZipfTrace(zc)});
  }
  BenchTraceSource source(opts);
  for (const char* name : {"cdn1", "msr"}) {
    traces.push_back({name, source.DatasetTrace(DatasetByName(name), 0, scale * 0.25)});
  }

  const std::vector<std::string> policies = {"fifo", "clock", "sieve", "s3fifo", "s3fifo-d"};
  std::vector<JsonFields> json_rows;
  double min_speedup = 1e300;
  double max_speedup = 0.0;
  double log_speedup_sum = 0.0;
  int exact_rows = 0;
  double max_abs_err_overall = 0.0;

  std::printf("%-10s %-9s %5s %10s %10s %8s %12s\n", "trace", "policy", "sizes", "brute_ms",
              "onepass_ms", "speedup", "max_abs_err");
  for (const NamedTrace& nt : traces) {
    const TraceView view = TraceView::Borrow(nt.trace);
    const uint64_t footprint = view.stats().num_objects;
    const std::vector<uint64_t> grid = GeometricGrid(footprint);
    CacheConfig config;
    config.capacity = 1;
    config.count_based = true;

    for (const std::string& policy : policies) {
      // Best-of-N on both sides: wall-clock noise on shared machines runs
      // +-20%, and min-of-reps is the standard noise-robust estimator.
      constexpr int kReps = 3;
      std::vector<SimResult> brute;
      double brute_ms = 1e300;
      for (int rep = 0; rep < kReps; ++rep) {
        const WallTimer brute_timer;
        std::vector<SimResult> r = ComputeMrcResults(view, policy, grid, config);
        brute_ms = std::min(brute_ms, brute_timer.ElapsedMs());
        if (rep == 0) {
          brute = std::move(r);
        }
      }

      MrcCurve onepass;
      double onepass_ms = 1e300;
      for (int rep = 0; rep < kReps; ++rep) {
        const WallTimer onepass_timer;
        MrcCurve c = OnePassMrc(view, policy, grid, config);
        onepass_ms = std::min(onepass_ms, onepass_timer.ElapsedMs());
        if (rep == 0) {
          onepass = std::move(c);
        }
      }

      double max_abs_err = 0.0;
      for (size_t i = 0; i < grid.size(); ++i) {
        max_abs_err =
            std::max(max_abs_err, std::fabs(onepass.miss_ratios[i] - brute[i].MissRatio()));
      }
      const double speedup = brute_ms / std::max(onepass_ms, 1e-6);
      min_speedup = std::min(min_speedup, speedup);
      max_speedup = std::max(max_speedup, speedup);
      log_speedup_sum += std::log(speedup);
      ++exact_rows;
      max_abs_err_overall = std::max(max_abs_err_overall, max_abs_err);
      std::printf("%-10s %-9s %5zu %10.1f %10.1f %7.1fx %12.3g\n", nt.name.c_str(),
                  policy.c_str(), grid.size(), brute_ms, onepass_ms, speedup, max_abs_err);
      json_rows.push_back(JsonFields()
                              .Add("trace", nt.name)
                              .Add("policy", policy)
                              .Add("mode", "onepass")
                              .Add("grid_points", static_cast<uint64_t>(grid.size()))
                              .Add("brute_ms", brute_ms)
                              .Add("onepass_ms", onepass_ms)
                              .Add("speedup", speedup)
                              .Add("max_abs_err", max_abs_err)
                              .Add("exact", onepass.exact));
    }

    // SHARDS: the sampled streaming estimator for a policy the exact engine
    // does not cover. Error is expected to be nonzero but small.
    {
      const double rate = 0.01;
      const WallTimer brute_timer;
      const std::vector<SimResult> brute = ComputeMrcResults(view, "lru", grid, config);
      const double brute_ms = brute_timer.ElapsedMs();
      const WallTimer shards_timer;
      const MrcCurve sampled = ShardsMrc(view, "lru", grid, rate, config);
      const double shards_ms = shards_timer.ElapsedMs();
      double max_abs_err = 0.0;
      for (size_t i = 0; i < grid.size(); ++i) {
        max_abs_err =
            std::max(max_abs_err, std::fabs(sampled.miss_ratios[i] - brute[i].MissRatio()));
      }
      std::printf("%-10s %-9s %5zu %10.1f %10.1f %7.1fx %12.3g  (shards rate=%.2f)\n",
                  nt.name.c_str(), "lru", grid.size(), brute_ms, shards_ms,
                  brute_ms / std::max(shards_ms, 1e-6), max_abs_err, rate);
      json_rows.push_back(JsonFields()
                              .Add("trace", nt.name)
                              .Add("policy", "lru")
                              .Add("mode", "shards")
                              .Add("rate", rate)
                              .Add("grid_points", static_cast<uint64_t>(grid.size()))
                              .Add("brute_ms", brute_ms)
                              .Add("onepass_ms", shards_ms)
                              .Add("speedup", brute_ms / std::max(shards_ms, 1e-6))
                              .Add("max_abs_err", max_abs_err)
                              .Add("exact", false));
    }
  }

  const double geomean_speedup = std::exp(log_speedup_sum / std::max(exact_rows, 1));
  std::printf(
      "\nexact-engine speedup on the fig06 size grid: %.1fx geometric mean "
      "(min %.1fx, max %.1fx); max |error| across exact rows: %g\n",
      geomean_speedup, min_speedup, max_speedup, max_abs_err_overall);
  WriteBenchJson("mrc",
                 JsonFields()
                     .Add("scale", scale)
                     .Add("speedup", geomean_speedup)
                     .Add("min_speedup", min_speedup)
                     .Add("max_speedup", max_speedup)
                     .Add("max_abs_err", max_abs_err_overall),
                 json_rows);
  source.WriteReport();
}

}  // namespace
}  // namespace s3fifo

int main(int argc, char** argv) {
  s3fifo::Run(s3fifo::ParseBenchArgs(argc, argv));
  return 0;
}
