// §5.2.3: byte miss ratio. Same sweep as Fig. 6 but with byte-capacity
// caches (10% / 1% of the trace footprint in bytes) and byte-weighted miss
// accounting. The paper reports results "not significantly different from
// the [request] miss ratio", with S3-FIFO ahead at almost all percentiles,
// and parity between S3-FIFO and LRB on CDN traces.
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "bench/trace_source.h"
#include "bench/sweep.h"
#include "src/core/cache_factory.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"

namespace s3fifo {
namespace {

void Run(const BenchOptions& opts) {
  PrintHeader("§5.2.3: byte miss ratio across traces", "§5.2.3 (text; figure omitted in paper)");
  const double scale = BenchScale() * 0.25;
  BenchTraceSource source(opts);

  const std::vector<std::string> policies = {"s3fifo", "tinylfu", "lirs", "2q",
                                             "arc",    "lru",     "lrb-lite"};
  std::map<std::string, std::vector<double>> red_large, red_small;

  ForEachSweepCase(scale, [&](const SweepCase& c) {
    const uint64_t footprint_bytes = c.trace.stats().footprint_bytes;
    for (const bool large : {true, false}) {
      CacheConfig config;
      config.capacity = std::max<uint64_t>(footprint_bytes / (large ? 10 : 100), 4096);
      config.count_based = false;
      auto fifo = CreateCache("fifo", config);
      const double mr_fifo = Simulate(c.trace, *fifo).ByteMissRatio();
      for (const std::string& policy : policies) {
        auto cache = CreateCache(policy, config);
        (large ? red_large : red_small)[policy].push_back(
            MissRatioReduction(Simulate(c.trace, *cache).ByteMissRatio(), mr_fifo));
      }
    }
  }, /*progress=*/true, source.cache());

  for (const bool large : {true, false}) {
    std::printf("\n--- %s cache (%s of footprint bytes) ---\n", large ? "large" : "small",
                large ? "10%" : "1%");
    for (const std::string& policy : policies) {
      std::printf("%s\n",
                  FormatPercentileRow(policy, Percentiles((large ? red_large : red_small)[policy]))
                      .c_str());
    }
  }
  std::printf("\npaper shape (§5.2.3): the byte-miss-ratio picture mirrors Fig. 6 —\n"
              "s3fifo presents larger reductions at almost all percentiles; s3fifo and\n"
              "the learned lrb-lite baseline have similar efficiency despite s3fifo\n"
              "being far simpler.\n");
  source.WriteReport();
}

}  // namespace
}  // namespace s3fifo

int main(int argc, char** argv) {
  s3fifo::Run(s3fifo::ParseBenchArgs(argc, argv));
  return 0;
}
