// End-to-end cache-as-a-service benchmark: the cache server (src/server/)
// behind the memcached text protocol, driven over loopback TCP by the
// in-process load generator. Sweeps the transport backend (epoll readiness
// loop vs io_uring completion ring), worker-thread counts, and pipelining
// depths in closed-loop mode (capacity: each connection keeps N requests in
// flight), then runs a fixed-rate open loop at half the measured closed-loop
// throughput, with latencies measured from intended send times
// (coordinated-omission safe). Each row carries the server-side kernel
// crossings per operation (from the transport counters), the metric the
// io_uring backend exists to shrink. Emits BENCH_server.json.
//
// NOTE: client and server share this machine's cores, so absolute numbers
// are loopback round-trip costs, not NIC-limited serving capacity; the
// meaningful signals are the pipelining-depth gain (per-connection batches
// amortize protocol and cache-probe cost through GetBatch) and the
// syscalls/op gap between the two transports at a fixed depth.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/server/cache_server.h"
#include "src/server/loadgen.h"
#include "src/server/transport.h"
#include "src/workload/zipf_workload.h"

namespace s3fifo {
namespace {

void Run() {
  PrintHeader("Cache server over loopback: throughput, latency, syscalls/op",
              "§5.3 methodology, served over the network front end");
  const double scale = BenchScale();
  const uint64_t closed_ops = static_cast<uint64_t>(200000 * scale);
  const double open_duration_s = 2.0 * (scale < 1 ? scale : 1.0);

  ZipfWorkloadConfig workload;
  workload.num_objects = 1 << 17;
  workload.num_requests = 1 << 20;
  workload.alpha = 1.0;
  workload.seed = 7;
  const Trace trace = GenerateZipfTrace(workload);

  std::vector<TransportKind> transports = {TransportKind::kEpoll};
  std::string why;
  if (IoUringAvailable(&why)) {
    transports.push_back(TransportKind::kUring);
  } else {
    std::printf("io_uring unavailable (%s): epoll-only grid\n", why.c_str());
  }

  JsonFields summary;
  summary.Add("zipf_objects", workload.num_objects)
      .Add("zipf_alpha", workload.alpha)
      .Add("capacity_objects", uint64_t{1} << 15)
      .Add("closed_ops", closed_ops)
      .Add("transports", transports.size() == 2 ? "epoll,uring" : "epoll");
  std::vector<JsonFields> rows;

  std::printf("%-7s %-6s %-8s %-6s %-6s %12s %10s %10s %10s %8s %9s\n",
              "mode", "trans", "workers", "conns", "depth", "rate(/s)",
              "p50(us)", "p99(us)", "p999(us)", "hit", "sysc/op");

  // The acceptance metric: depth-1 closed-loop syscalls/op per transport at
  // workers=1, where no pipelining hides the per-request kernel crossings.
  double depth1_syscalls_per_op_epoll = 0;
  double depth1_syscalls_per_op_uring = 0;
  double depth1_rate_epoll = 0;
  double depth1_rate_uring = 0;

  for (const TransportKind transport : transports) {
    const char* tname = TransportKindName(transport);
    for (const unsigned workers : {1u, 2u}) {
      ServerConfig sconfig;
      sconfig.workers = workers;
      sconfig.cache.capacity_objects = 1 << 15;
      sconfig.cache.value_size = 64;
      sconfig.transport = transport;
      CacheServer server(sconfig);
      std::string error;
      if (!server.Start(&error)) {
        std::fprintf(stderr, "server start failed: %s\n", error.c_str());
        return;
      }

      // Per-run syscall deltas: TotalStats accumulates across the sweep, so
      // snapshot around every loadgen run.
      ServerStats before = server.TotalStats();
      double closed_rate_depth_max = 0;
      for (const unsigned depth : {1u, 8u, 32u}) {
        LoadGenConfig lg;
        lg.port = server.port();
        lg.threads = workers;
        lg.connections = 2 * workers;
        lg.pipeline_depth = depth;
        lg.max_ops = closed_ops;
        lg.transport = transport;
        const LoadGenResult r = RunLoadGen(lg, trace);
        if (!r.ok) {
          std::fprintf(stderr, "loadgen failed: %s\n", r.error.c_str());
          server.Stop();
          return;
        }
        const ServerStats after = server.TotalStats();
        const uint64_t syscalls =
            after.transport_syscalls - before.transport_syscalls;
        before = after;
        if (r.achieved_rate > closed_rate_depth_max) {
          closed_rate_depth_max = r.achieved_rate;
        }
        const double hit =
            r.gets > 0 ? static_cast<double>(r.get_hits) / r.gets : 0;
        const double syscalls_per_op =
            r.ops > 0 ? static_cast<double>(syscalls) / r.ops : 0;
        if (depth == 1 && workers == 1) {
          if (transport == TransportKind::kEpoll) {
            depth1_syscalls_per_op_epoll = syscalls_per_op;
            depth1_rate_epoll = r.achieved_rate;
          } else {
            depth1_syscalls_per_op_uring = syscalls_per_op;
            depth1_rate_uring = r.achieved_rate;
          }
        }
        std::printf(
            "%-7s %-6s %-8u %-6u %-6u %12.0f %10.1f %10.1f %10.1f %8.4f %9.3f\n",
            "closed", tname, workers, lg.connections, depth, r.achieved_rate,
            r.latency.Percentile(50) / 1e3, r.latency.Percentile(99) / 1e3,
            r.latency.Percentile(99.9) / 1e3, hit, syscalls_per_op);
        rows.push_back(JsonFields()
                           .Add("mode", "closed")
                           .Add("transport", tname)
                           .Add("workers", workers)
                           .Add("connections", lg.connections)
                           .Add("depth", depth)
                           .Add("ops", r.ops)
                           .Add("seconds", r.seconds)
                           .Add("rate_ops_s", r.achieved_rate)
                           .Add("hit_ratio", hit)
                           .Add("server_syscalls", syscalls)
                           .Add("server_syscalls_per_op", syscalls_per_op)
                           .Add("p50_ns", r.latency.Percentile(50))
                           .Add("p99_ns", r.latency.Percentile(99))
                           .Add("p999_ns", r.latency.Percentile(99.9)));
      }

      // Open loop at ~50% of this worker count's best closed-loop
      // throughput: below saturation, so the tail reflects service jitter,
      // not queueing collapse.
      for (const unsigned depth : {8u, 32u}) {
        LoadGenConfig lg;
        lg.port = server.port();
        lg.threads = workers;
        lg.connections = 2 * workers;
        lg.pipeline_depth = depth;
        lg.target_rate = closed_rate_depth_max * 0.5;
        lg.duration_s = open_duration_s;
        lg.transport = transport;
        const LoadGenResult r = RunLoadGen(lg, trace);
        if (!r.ok) {
          std::fprintf(stderr, "loadgen failed: %s\n", r.error.c_str());
          server.Stop();
          return;
        }
        const ServerStats after = server.TotalStats();
        const uint64_t syscalls =
            after.transport_syscalls - before.transport_syscalls;
        before = after;
        const double hit =
            r.gets > 0 ? static_cast<double>(r.get_hits) / r.gets : 0;
        const double syscalls_per_op =
            r.ops > 0 ? static_cast<double>(syscalls) / r.ops : 0;
        std::printf(
            "%-7s %-6s %-8u %-6u %-6u %12.0f %10.1f %10.1f %10.1f %8.4f %9.3f\n",
            "open", tname, workers, lg.connections, depth, r.achieved_rate,
            r.latency.Percentile(50) / 1e3, r.latency.Percentile(99) / 1e3,
            r.latency.Percentile(99.9) / 1e3, hit, syscalls_per_op);
        rows.push_back(JsonFields()
                           .Add("mode", "open")
                           .Add("transport", tname)
                           .Add("workers", workers)
                           .Add("connections", lg.connections)
                           .Add("depth", depth)
                           .Add("target_rate_ops_s", lg.target_rate)
                           .Add("ops", r.ops)
                           .Add("seconds", r.seconds)
                           .Add("rate_ops_s", r.achieved_rate)
                           .Add("hit_ratio", hit)
                           .Add("server_syscalls", syscalls)
                           .Add("server_syscalls_per_op", syscalls_per_op)
                           .Add("p50_ns", r.latency.Percentile(50))
                           .Add("p99_ns", r.latency.Percentile(99))
                           .Add("p999_ns", r.latency.Percentile(99.9)));
      }

      const ServerStats stats = server.TotalStats();
      std::printf("  %s workers=%u server batches=%llu batched_gets=%llu "
                  "(avg batch %.1f) cqe/wait=%.2f\n",
                  tname, workers, (unsigned long long)stats.batches,
                  (unsigned long long)stats.batched_gets,
                  stats.batches > 0
                      ? static_cast<double>(stats.batched_gets) / stats.batches
                      : 0.0,
                  stats.transport_waits > 0
                      ? static_cast<double>(stats.transport_events) /
                            stats.transport_waits
                      : 0.0);
      server.Stop();
    }
  }

  if (depth1_syscalls_per_op_uring > 0 && depth1_syscalls_per_op_epoll > 0) {
    std::printf("\ndepth-1 syscalls/op: epoll=%.3f uring=%.3f (%.1fx fewer), "
                "rate epoll=%.0f/s uring=%.0f/s\n",
                depth1_syscalls_per_op_epoll, depth1_syscalls_per_op_uring,
                depth1_syscalls_per_op_epoll / depth1_syscalls_per_op_uring,
                depth1_rate_epoll, depth1_rate_uring);
  }

  WriteBenchJson("server", summary, rows);
  std::printf("\nexpected shape: closed-loop throughput grows with pipelining\n"
              "depth (deeper pipelines fuse more gets per GetBatch, amortizing\n"
              "syscalls and cache probes); at every depth the io_uring rows\n"
              "spend several-fold fewer server syscalls per op than epoll —\n"
              "at depth 1 the readiness loop pays wait+read+send per request\n"
              "while the ring batches them into one submit-and-wait. Open-loop\n"
              "p99/p999 below saturation stays in the low-millisecond range\n"
              "and includes scheduling jitter from client and server sharing\n"
              "cores.\n");
}

}  // namespace
}  // namespace s3fifo

int main() {
  s3fifo::Run();
  return 0;
}
