// End-to-end cache-as-a-service benchmark: the epoll server (src/server/)
// behind the memcached text protocol, driven over loopback TCP by the
// in-process load generator. Sweeps worker-thread counts and pipelining
// depths in closed-loop mode (capacity: each connection keeps N requests in
// flight), then runs a fixed-rate open loop at half the measured closed-loop
// throughput, with latencies measured from intended send times
// (coordinated-omission safe). Emits BENCH_server.json.
//
// NOTE: client and server share this machine's cores, so absolute numbers
// are loopback round-trip costs, not NIC-limited serving capacity; the
// meaningful signals are the pipelining-depth gain (per-connection batches
// amortize protocol and cache-probe cost through GetBatch) and the
// open-loop tail behaviour below saturation.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/server/cache_server.h"
#include "src/server/loadgen.h"
#include "src/workload/zipf_workload.h"

namespace s3fifo {
namespace {

struct RunSpec {
  const char* mode;  // "closed" | "open"
  unsigned workers;
  unsigned connections;
  unsigned depth;
  double rate;  // open loop only
};

void Run() {
  PrintHeader("Cache server over loopback: throughput and latency",
              "§5.3 methodology, served over the network front end");
  const double scale = BenchScale();
  const uint64_t closed_ops = static_cast<uint64_t>(200000 * scale);
  const double open_duration_s = 2.0 * (scale < 1 ? scale : 1.0);

  ZipfWorkloadConfig workload;
  workload.num_objects = 1 << 17;
  workload.num_requests = 1 << 20;
  workload.alpha = 1.0;
  workload.seed = 7;
  const Trace trace = GenerateZipfTrace(workload);

  JsonFields summary;
  summary.Add("zipf_objects", workload.num_objects)
      .Add("zipf_alpha", workload.alpha)
      .Add("capacity_objects", uint64_t{1} << 15)
      .Add("closed_ops", closed_ops);
  std::vector<JsonFields> rows;

  std::printf("%-7s %-8s %-6s %-6s %12s %10s %10s %10s %10s\n", "mode",
              "workers", "conns", "depth", "rate(/s)", "p50(us)", "p99(us)",
              "p999(us)", "hit");

  for (const unsigned workers : {1u, 2u}) {
    ServerConfig sconfig;
    sconfig.workers = workers;
    sconfig.cache.capacity_objects = 1 << 15;
    sconfig.cache.value_size = 64;
    CacheServer server(sconfig);
    std::string error;
    if (!server.Start(&error)) {
      std::fprintf(stderr, "server start failed: %s\n", error.c_str());
      return;
    }

    double closed_rate_depth_max = 0;
    for (const unsigned depth : {1u, 8u, 32u}) {
      LoadGenConfig lg;
      lg.port = server.port();
      lg.threads = workers;
      lg.connections = 2 * workers;
      lg.pipeline_depth = depth;
      lg.max_ops = closed_ops;
      const LoadGenResult r = RunLoadGen(lg, trace);
      if (!r.ok) {
        std::fprintf(stderr, "loadgen failed: %s\n", r.error.c_str());
        server.Stop();
        return;
      }
      if (r.achieved_rate > closed_rate_depth_max) {
        closed_rate_depth_max = r.achieved_rate;
      }
      const double hit =
          r.gets > 0 ? static_cast<double>(r.get_hits) / r.gets : 0;
      std::printf("%-7s %-8u %-6u %-6u %12.0f %10.1f %10.1f %10.1f %10.4f\n",
                  "closed", workers, lg.connections, depth, r.achieved_rate,
                  r.latency.Percentile(50) / 1e3, r.latency.Percentile(99) / 1e3,
                  r.latency.Percentile(99.9) / 1e3, hit);
      rows.push_back(JsonFields()
                         .Add("mode", "closed")
                         .Add("workers", workers)
                         .Add("connections", lg.connections)
                         .Add("depth", depth)
                         .Add("ops", r.ops)
                         .Add("seconds", r.seconds)
                         .Add("rate_ops_s", r.achieved_rate)
                         .Add("hit_ratio", hit)
                         .Add("p50_ns", r.latency.Percentile(50))
                         .Add("p99_ns", r.latency.Percentile(99))
                         .Add("p999_ns", r.latency.Percentile(99.9)));
    }

    // Open loop at ~50% of this worker count's best closed-loop throughput:
    // below saturation, so the tail reflects service jitter, not queueing
    // collapse.
    for (const unsigned depth : {8u, 32u}) {
      LoadGenConfig lg;
      lg.port = server.port();
      lg.threads = workers;
      lg.connections = 2 * workers;
      lg.pipeline_depth = depth;
      lg.target_rate = closed_rate_depth_max * 0.5;
      lg.duration_s = open_duration_s;
      const LoadGenResult r = RunLoadGen(lg, trace);
      if (!r.ok) {
        std::fprintf(stderr, "loadgen failed: %s\n", r.error.c_str());
        server.Stop();
        return;
      }
      const double hit =
          r.gets > 0 ? static_cast<double>(r.get_hits) / r.gets : 0;
      std::printf("%-7s %-8u %-6u %-6u %12.0f %10.1f %10.1f %10.1f %10.4f\n",
                  "open", workers, lg.connections, depth, r.achieved_rate,
                  r.latency.Percentile(50) / 1e3, r.latency.Percentile(99) / 1e3,
                  r.latency.Percentile(99.9) / 1e3, hit);
      rows.push_back(JsonFields()
                         .Add("mode", "open")
                         .Add("workers", workers)
                         .Add("connections", lg.connections)
                         .Add("depth", depth)
                         .Add("target_rate_ops_s", lg.target_rate)
                         .Add("ops", r.ops)
                         .Add("seconds", r.seconds)
                         .Add("rate_ops_s", r.achieved_rate)
                         .Add("hit_ratio", hit)
                         .Add("p50_ns", r.latency.Percentile(50))
                         .Add("p99_ns", r.latency.Percentile(99))
                         .Add("p999_ns", r.latency.Percentile(99.9)));
    }

    const ServerStats stats = server.TotalStats();
    std::printf("  workers=%u server batches=%llu batched_gets=%llu "
                "(avg batch %.1f)\n",
                workers, (unsigned long long)stats.batches,
                (unsigned long long)stats.batched_gets,
                stats.batches > 0
                    ? static_cast<double>(stats.batched_gets) / stats.batches
                    : 0.0);
    server.Stop();
  }

  WriteBenchJson("server", summary, rows);
  std::printf("\nexpected shape: closed-loop throughput grows with pipelining\n"
              "depth (deeper pipelines fuse more gets per GetBatch, amortizing\n"
              "syscalls and cache probes) until the loopback round trip is\n"
              "amortized away; open-loop p99/p999 below saturation stays in\n"
              "the low-millisecond range and includes scheduling jitter from\n"
              "client and server sharing cores.\n");
}

}  // namespace
}  // namespace s3fifo

int main() {
  s3fifo::Run();
  return 0;
}
