// Shared trace-sweep drivers for the miss-ratio figures (Fig. 6, 7, 11 and
// the ablations).
//
// Cache sizes: the paper uses 10% ("large") and 0.1% ("small") of the trace
// footprint, skipping traces where the small cache would hold under 1000
// objects. Our scaled-down footprints are ~1000x smaller than production
// traces, so we use 10% and 1% — keeping the small cache's *absolute* object
// count in the same regime as the paper's 0.1% of a production footprint.
//
// Two drivers:
//   * ForEachSweepCase — the original serial path: generates each trace and
//     hands it to the caller, which simulates one cache per pass. Kept as
//     the baseline the sweep-speedup bench measures against.
//   * RunMissRatioSweep — the sweep-engine path: every (trace, cache-size)
//     pair becomes one SweepUnit that streams the trace once through FIFO
//     plus all requested policy variants (MultiSimulate), units fan out over
//     the RunTasks thread pool, and each trace is generated once and shared.
//     Results are collected in deterministic case order regardless of the
//     thread count, and are bit-identical to the serial path.
#ifndef BENCH_SWEEP_H_
#define BENCH_SWEEP_H_

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/analysis/mrc_engine.h"
#include "src/core/cache_factory.h"
#include "src/sim/sweep_engine.h"
#include "src/workload/dataset_profiles.h"

namespace s3fifo {

struct SweepCase {
  const DatasetProfile* dataset;
  uint32_t trace_index;
  TraceView trace;  // heap-backed, or mmap'd when a TraceCache is supplied
  uint64_t large_capacity;  // 10% of footprint
  uint64_t small_capacity;  // 1% of footprint
};

inline uint64_t SweepCapacity(uint64_t footprint, bool large) {
  return std::max<uint64_t>(large ? footprint / 10 : footprint / 100, 10);
}

// Generates (or, given a cache, maps) one dataset trace instance as a view.
inline TraceView SweepTraceView(const DatasetProfile& d, uint32_t trace_index, double scale,
                                TraceCache* trace_cache) {
  if (trace_cache != nullptr) {
    return trace_cache->GetOrGenerate(
        DatasetTraceSpec(d, trace_index, scale),
        [&] { return GenerateDatasetTrace(d, trace_index, scale); });
  }
  auto trace = std::make_shared<Trace>(GenerateDatasetTrace(d, trace_index, scale));
  trace->Stats();  // pre-warm so later stats() calls are pure reads
  return TraceView::FromTrace(std::move(trace));
}

inline void ForEachSweepCase(double scale, const std::function<void(const SweepCase&)>& fn,
                             bool progress = true, TraceCache* trace_cache = nullptr) {
  for (const DatasetProfile& d : AllDatasetProfiles()) {
    for (uint32_t i = 0; i < d.num_traces; ++i) {
      SweepCase c{&d, i, SweepTraceView(d, i, scale, trace_cache), 0, 0};
      const uint64_t footprint = c.trace.stats().num_objects;
      c.large_capacity = SweepCapacity(footprint, true);
      c.small_capacity = SweepCapacity(footprint, false);
      fn(c);
    }
    if (progress) {
      std::fprintf(stderr, "  [sweep] %s done\n", d.name.c_str());
    }
  }
}

// One policy configuration simulated against the FIFO baseline.
struct PolicyVariant {
  std::string label;   // row label in the figure
  std::string policy;  // factory name
  std::string params;  // CacheConfig::params
};

inline std::vector<PolicyVariant> VariantsFromPolicyNames(const std::vector<std::string>& names) {
  std::vector<PolicyVariant> variants;
  for (const std::string& name : names) {
    variants.push_back({name, name, ""});
  }
  return variants;
}

// Results for one (dataset trace, cache size) cell of the sweep.
struct SweepCell {
  const DatasetProfile* dataset = nullptr;
  uint32_t trace_index = 0;
  bool large = true;
  uint64_t capacity = 0;
  SimResult fifo;                  // the FIFO baseline at this capacity
  std::vector<SimResult> results;  // index-aligned with the variant list
};

struct SweepSummary {
  double wall_ms = 0;
  uint64_t simulated_requests = 0;  // Σ trace length × caches per unit
  double requests_per_sec = 0;
  unsigned threads = 0;
  bool ok = true;  // false if any unit failed after retries
};

// Streams every dataset trace through FIFO + all variants on the sweep
// engine. `collect` runs on the calling thread after the sweep, once per
// (trace, size) cell, in deterministic dataset/trace/size order.
//
// MRC mode (the bench binaries' --mrc= flag): under kAuto (the default),
// each policy the one-pass engine supports becomes ONE unit per trace that
// computes the whole capacity grid in a single traversal (OnePassMrc);
// everything else keeps the per-size MultiSimulate units. Under kBrute every
// policy takes the per-size path. The two modes produce bit-identical cells
// — the one-pass engine is exact (tools/check_mrc_smoke.py asserts this on
// fig06 in CI) — so kBrute is purely the escape hatch / reference timing.
inline SweepSummary RunMissRatioSweep(double scale, const std::vector<PolicyVariant>& variants,
                                      bool include_small,
                                      const std::function<void(const SweepCell&)>& collect,
                                      unsigned threads = 0, bool progress = true,
                                      TraceCache* trace_cache = nullptr,
                                      MrcMode mrc_mode = MrcMode::kAuto) {
  const bool use_onepass = mrc_mode != MrcMode::kBrute;
  const std::vector<bool> size_flags =
      include_small ? std::vector<bool>{true, false} : std::vector<bool>{true};

  const auto onepass_supported = [use_onepass](const std::string& policy,
                                               const std::string& params) {
    if (!use_onepass) {
      return false;
    }
    CacheConfig config;  // the sweep simulates count-based caches
    config.params = params;
    return MrcEngineSupports(policy, config);
  };
  const bool fifo_onepass = onepass_supported("fifo", "");
  std::vector<char> variant_onepass(variants.size(), 0);
  for (size_t vi = 0; vi < variants.size(); ++vi) {
    variant_onepass[vi] = onepass_supported(variants[vi].policy, variants[vi].params) ? 1 : 0;
  }

  // Where each cell's per-policy results live after the run.
  struct Source {
    size_t unit = static_cast<size_t>(-1);
    size_t slot = 0;
  };
  struct CellMeta {
    const DatasetProfile* dataset;
    uint32_t trace_index;
    bool large;
    Source fifo;
    std::vector<Source> variant;  // index-aligned with `variants`
  };
  std::vector<SweepUnit> units;
  std::vector<CellMeta> cells;
  // Capacities are derived from trace stats on the workers; index-aligned
  // with `cells`, each slot written by exactly one designated unit (the
  // one-pass FIFO unit, or the brute unit carrying FIFO).
  auto capacities = std::make_shared<std::vector<uint64_t>>();

  for (const DatasetProfile& d : AllDatasetProfiles()) {
    for (uint32_t i = 0; i < d.num_traces; ++i) {
      SharedTracePtr shared = SweepEngine::MakeSharedDatasetTrace(d, i, scale, trace_cache);
      const size_t base_cell = cells.size();
      for (const bool large : size_flags) {
        CellMeta meta{&d, i, large, {}, {}};
        meta.variant.resize(variants.size());
        cells.push_back(std::move(meta));
      }
      const std::string trace_label = d.name + "/" + std::to_string(i);

      // One-pass units: one traversal per supported policy covering every
      // cell size of this trace.
      const auto add_onepass_unit = [&](const std::string& label, const std::string& policy,
                                        const std::string& params, bool record_capacities) {
        SweepUnit unit;
        unit.label = trace_label + "/" + label + "/mrc";
        unit.trace = shared;
        unit.run = [policy, params, size_flags, record_capacities, base_cell,
                    capacities](const TraceView& view) {
          std::vector<uint64_t> grid;
          grid.reserve(size_flags.size());
          for (const bool large : size_flags) {
            grid.push_back(SweepCapacity(view.stats().num_objects, large));
          }
          if (record_capacities) {
            for (size_t si = 0; si < grid.size(); ++si) {
              (*capacities)[base_cell + si] = grid[si];
            }
          }
          CacheConfig config;
          config.params = params;
          return OnePassMrc(view, policy, grid, config).results;
        };
        units.push_back(std::move(unit));
        return units.size() - 1;
      };

      if (fifo_onepass) {
        const size_t u = add_onepass_unit("fifo", "fifo", "", /*record_capacities=*/true);
        for (size_t si = 0; si < size_flags.size(); ++si) {
          cells[base_cell + si].fifo = {u, si};
        }
      }
      for (size_t vi = 0; vi < variants.size(); ++vi) {
        if (!variant_onepass[vi]) {
          continue;
        }
        const size_t u = add_onepass_unit(variants[vi].label, variants[vi].policy,
                                          variants[vi].params, /*record_capacities=*/false);
        for (size_t si = 0; si < size_flags.size(); ++si) {
          cells[base_cell + si].variant[vi] = {u, si};
        }
      }

      // Brute units: per (trace, size), carrying FIFO (when not one-pass)
      // plus every unsupported variant, streamed once through MultiSimulate.
      std::vector<size_t> brute_vis;
      for (size_t vi = 0; vi < variants.size(); ++vi) {
        if (!variant_onepass[vi]) {
          brute_vis.push_back(vi);
        }
      }
      const bool need_fifo = !fifo_onepass;
      if (need_fifo || !brute_vis.empty()) {
        for (size_t si = 0; si < size_flags.size(); ++si) {
          const bool large = size_flags[si];
          const size_t cell_index = base_cell + si;
          SweepUnit unit;
          unit.label = trace_label + (large ? "/large" : "/small");
          unit.trace = shared;
          unit.make_caches = [&variants, brute_vis, large, need_fifo, cell_index,
                              capacities](const TraceView& trace) {
            const uint64_t capacity = SweepCapacity(trace.stats().num_objects, large);
            if (need_fifo) {
              (*capacities)[cell_index] = capacity;
            }
            CacheConfig config;
            config.capacity = capacity;
            std::vector<std::unique_ptr<Cache>> caches;
            caches.reserve(brute_vis.size() + (need_fifo ? 1 : 0));
            if (need_fifo) {
              caches.push_back(CreateCache("fifo", config));
            }
            for (const size_t vi : brute_vis) {
              CacheConfig variant_config = config;
              variant_config.params = variants[vi].params;
              caches.push_back(CreateCache(variants[vi].policy, variant_config));
            }
            return caches;
          };
          const size_t u = units.size();
          size_t slot = 0;
          if (need_fifo) {
            cells[cell_index].fifo = {u, slot++};
          }
          for (const size_t vi : brute_vis) {
            cells[cell_index].variant[vi] = {u, slot++};
          }
          units.push_back(std::move(unit));
        }
      }
    }
  }
  capacities->resize(cells.size(), 0);

  RunnerOptions runner_options;
  runner_options.num_threads = threads;
  SweepEngine engine(runner_options);
  SweepSummary summary;
  summary.threads = threads != 0 ? threads : std::max(1u, std::thread::hardware_concurrency());
  if (progress) {
    std::fprintf(stderr, "  [sweep] %zu units (%zu policies, mrc=%s) on %u threads\n",
                 units.size(), variants.size() + 1, use_onepass ? "onepass" : "brute",
                 summary.threads);
  }
  WallTimer timer;
  const std::vector<SweepUnitResult> results = engine.Run(units);
  summary.wall_ms = timer.ElapsedMs();
  summary.simulated_requests = engine.last_simulated_requests();
  summary.requests_per_sec =
      summary.wall_ms > 0 ? summary.simulated_requests / (summary.wall_ms / 1000.0) : 0;

  for (const SweepUnitResult& r : results) {
    if (!r.ok) {
      std::fprintf(stderr, "  [sweep] unit %s FAILED after %u attempts: %s\n", r.label.c_str(),
                   r.attempts, r.error.c_str());
      summary.ok = false;
    }
  }
  for (size_t ci = 0; ci < cells.size(); ++ci) {
    const CellMeta& meta = cells[ci];
    const auto source_ok = [&results](const Source& s) {
      return s.unit != static_cast<size_t>(-1) && results[s.unit].ok;
    };
    bool cell_ok = source_ok(meta.fifo);
    for (const Source& s : meta.variant) {
      cell_ok = cell_ok && source_ok(s);
    }
    if (!cell_ok) {
      continue;  // summary.ok is already false via the unit loop above
    }
    SweepCell cell;
    cell.dataset = meta.dataset;
    cell.trace_index = meta.trace_index;
    cell.large = meta.large;
    cell.capacity = (*capacities)[ci];
    cell.fifo = results[meta.fifo.unit].results[meta.fifo.slot];
    cell.results.reserve(variants.size());
    for (const Source& s : meta.variant) {
      cell.results.push_back(results[s.unit].results[s.slot]);
    }
    collect(cell);
  }
  return summary;
}

inline void PrintSweepSummary(const SweepSummary& s) {
  std::printf("\nsweep: %.0f ms wall, %llu simulated requests, %.2fM req/s, %u threads%s\n",
              s.wall_ms, static_cast<unsigned long long>(s.simulated_requests),
              s.requests_per_sec / 1e6, s.threads, s.ok ? "" : "  [UNITS FAILED]");
}

}  // namespace s3fifo

#endif  // BENCH_SWEEP_H_
