// Shared trace-sweep drivers for the miss-ratio figures (Fig. 6, 7, 11 and
// the ablations).
//
// Cache sizes: the paper uses 10% ("large") and 0.1% ("small") of the trace
// footprint, skipping traces where the small cache would hold under 1000
// objects. Our scaled-down footprints are ~1000x smaller than production
// traces, so we use 10% and 1% — keeping the small cache's *absolute* object
// count in the same regime as the paper's 0.1% of a production footprint.
//
// Two drivers:
//   * ForEachSweepCase — the original serial path: generates each trace and
//     hands it to the caller, which simulates one cache per pass. Kept as
//     the baseline the sweep-speedup bench measures against.
//   * RunMissRatioSweep — the sweep-engine path: every (trace, cache-size)
//     pair becomes one SweepUnit that streams the trace once through FIFO
//     plus all requested policy variants (MultiSimulate), units fan out over
//     the RunTasks thread pool, and each trace is generated once and shared.
//     Results are collected in deterministic case order regardless of the
//     thread count, and are bit-identical to the serial path.
#ifndef BENCH_SWEEP_H_
#define BENCH_SWEEP_H_

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/cache_factory.h"
#include "src/sim/sweep_engine.h"
#include "src/workload/dataset_profiles.h"

namespace s3fifo {

struct SweepCase {
  const DatasetProfile* dataset;
  uint32_t trace_index;
  TraceView trace;  // heap-backed, or mmap'd when a TraceCache is supplied
  uint64_t large_capacity;  // 10% of footprint
  uint64_t small_capacity;  // 1% of footprint
};

inline uint64_t SweepCapacity(uint64_t footprint, bool large) {
  return std::max<uint64_t>(large ? footprint / 10 : footprint / 100, 10);
}

// Generates (or, given a cache, maps) one dataset trace instance as a view.
inline TraceView SweepTraceView(const DatasetProfile& d, uint32_t trace_index, double scale,
                                TraceCache* trace_cache) {
  if (trace_cache != nullptr) {
    return trace_cache->GetOrGenerate(
        DatasetTraceSpec(d, trace_index, scale),
        [&] { return GenerateDatasetTrace(d, trace_index, scale); });
  }
  auto trace = std::make_shared<Trace>(GenerateDatasetTrace(d, trace_index, scale));
  trace->Stats();  // pre-warm so later stats() calls are pure reads
  return TraceView::FromTrace(std::move(trace));
}

inline void ForEachSweepCase(double scale, const std::function<void(const SweepCase&)>& fn,
                             bool progress = true, TraceCache* trace_cache = nullptr) {
  for (const DatasetProfile& d : AllDatasetProfiles()) {
    for (uint32_t i = 0; i < d.num_traces; ++i) {
      SweepCase c{&d, i, SweepTraceView(d, i, scale, trace_cache), 0, 0};
      const uint64_t footprint = c.trace.stats().num_objects;
      c.large_capacity = SweepCapacity(footprint, true);
      c.small_capacity = SweepCapacity(footprint, false);
      fn(c);
    }
    if (progress) {
      std::fprintf(stderr, "  [sweep] %s done\n", d.name.c_str());
    }
  }
}

// One policy configuration simulated against the FIFO baseline.
struct PolicyVariant {
  std::string label;   // row label in the figure
  std::string policy;  // factory name
  std::string params;  // CacheConfig::params
};

inline std::vector<PolicyVariant> VariantsFromPolicyNames(const std::vector<std::string>& names) {
  std::vector<PolicyVariant> variants;
  for (const std::string& name : names) {
    variants.push_back({name, name, ""});
  }
  return variants;
}

// Results for one (dataset trace, cache size) cell of the sweep.
struct SweepCell {
  const DatasetProfile* dataset = nullptr;
  uint32_t trace_index = 0;
  bool large = true;
  uint64_t capacity = 0;
  SimResult fifo;                  // the FIFO baseline at this capacity
  std::vector<SimResult> results;  // index-aligned with the variant list
};

struct SweepSummary {
  double wall_ms = 0;
  uint64_t simulated_requests = 0;  // Σ trace length × caches per unit
  double requests_per_sec = 0;
  unsigned threads = 0;
  bool ok = true;  // false if any unit failed after retries
};

// Streams every dataset trace once per cache size through FIFO + all
// variants on the sweep engine. `collect` runs on the calling thread after
// the sweep, once per cell, in deterministic dataset/trace/size order.
inline SweepSummary RunMissRatioSweep(double scale, const std::vector<PolicyVariant>& variants,
                                      bool include_small,
                                      const std::function<void(const SweepCell&)>& collect,
                                      unsigned threads = 0, bool progress = true,
                                      TraceCache* trace_cache = nullptr) {
  struct UnitMeta {
    const DatasetProfile* dataset;
    uint32_t trace_index;
    bool large;
  };
  std::vector<SweepUnit> units;
  std::vector<UnitMeta> metas;
  // Capacities are derived from trace stats on the workers; this vector is
  // index-aligned with `units` and each slot is written by exactly one unit.
  auto capacities = std::make_shared<std::vector<uint64_t>>();
  std::vector<bool> sizes = include_small ? std::vector<bool>{true, false}
                                          : std::vector<bool>{true};
  for (const DatasetProfile& d : AllDatasetProfiles()) {
    for (uint32_t i = 0; i < d.num_traces; ++i) {
      SharedTracePtr shared = SweepEngine::MakeSharedDatasetTrace(d, i, scale, trace_cache);
      for (const bool large : sizes) {
        const size_t unit_index = units.size();
        SweepUnit unit;
        unit.label = d.name + "/" + std::to_string(i) + (large ? "/large" : "/small");
        unit.trace = shared;
        unit.make_caches = [&variants, large, unit_index, capacities](const TraceView& trace) {
          const uint64_t capacity = SweepCapacity(trace.stats().num_objects, large);
          (*capacities)[unit_index] = capacity;
          CacheConfig config;
          config.capacity = capacity;
          std::vector<std::unique_ptr<Cache>> caches;
          caches.reserve(variants.size() + 1);
          caches.push_back(CreateCache("fifo", config));
          for (const PolicyVariant& v : variants) {
            CacheConfig variant_config = config;
            variant_config.params = v.params;
            caches.push_back(CreateCache(v.policy, variant_config));
          }
          return caches;
        };
        units.push_back(std::move(unit));
        metas.push_back({&d, i, large});
      }
    }
  }
  capacities->resize(units.size(), 0);

  RunnerOptions runner_options;
  runner_options.num_threads = threads;
  SweepEngine engine(runner_options);
  SweepSummary summary;
  summary.threads = threads != 0 ? threads : std::max(1u, std::thread::hardware_concurrency());
  if (progress) {
    std::fprintf(stderr, "  [sweep] %zu units (%zu caches each) on %u threads\n", units.size(),
                 variants.size() + 1, summary.threads);
  }
  WallTimer timer;
  const std::vector<SweepUnitResult> results = engine.Run(units);
  summary.wall_ms = timer.ElapsedMs();
  summary.simulated_requests = engine.last_simulated_requests();
  summary.requests_per_sec =
      summary.wall_ms > 0 ? summary.simulated_requests / (summary.wall_ms / 1000.0) : 0;

  for (size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok) {
      std::fprintf(stderr, "  [sweep] unit %s FAILED after %u attempts: %s\n",
                   results[i].label.c_str(), results[i].attempts, results[i].error.c_str());
      summary.ok = false;
      continue;
    }
    SweepCell cell;
    cell.dataset = metas[i].dataset;
    cell.trace_index = metas[i].trace_index;
    cell.large = metas[i].large;
    cell.capacity = (*capacities)[i];
    cell.fifo = results[i].results.front();
    cell.results.assign(results[i].results.begin() + 1, results[i].results.end());
    collect(cell);
  }
  return summary;
}

inline void PrintSweepSummary(const SweepSummary& s) {
  std::printf("\nsweep: %.0f ms wall, %llu simulated requests, %.2fM req/s, %u threads%s\n",
              s.wall_ms, static_cast<unsigned long long>(s.simulated_requests),
              s.requests_per_sec / 1e6, s.threads, s.ok ? "" : "  [UNITS FAILED]");
}

}  // namespace s3fifo

#endif  // BENCH_SWEEP_H_
