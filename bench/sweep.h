// Shared trace-sweep driver for the miss-ratio figures (Fig. 6, 7, 11 and
// the ablations): iterates every trace of every dataset profile, handing the
// caller the trace plus the paper's two cache sizes.
//
// Cache sizes: the paper uses 10% ("large") and 0.1% ("small") of the trace
// footprint, skipping traces where the small cache would hold under 1000
// objects. Our scaled-down footprints are ~1000x smaller than production
// traces, so we use 10% and 1% — keeping the small cache's *absolute* object
// count in the same regime as the paper's 0.1% of a production footprint.
#ifndef BENCH_SWEEP_H_
#define BENCH_SWEEP_H_

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>

#include "src/workload/dataset_profiles.h"

namespace s3fifo {

struct SweepCase {
  const DatasetProfile* dataset;
  uint32_t trace_index;
  Trace trace;
  uint64_t large_capacity;  // 10% of footprint
  uint64_t small_capacity;  // 1% of footprint
};

inline void ForEachSweepCase(double scale, const std::function<void(const SweepCase&)>& fn,
                             bool progress = true) {
  for (const DatasetProfile& d : AllDatasetProfiles()) {
    for (uint32_t i = 0; i < d.num_traces; ++i) {
      SweepCase c{&d, i, GenerateDatasetTrace(d, i, scale), 0, 0};
      const uint64_t footprint = c.trace.Stats().num_objects;
      c.large_capacity = std::max<uint64_t>(footprint / 10, 10);
      c.small_capacity = std::max<uint64_t>(footprint / 100, 10);
      fn(c);
    }
    if (progress) {
      std::fprintf(stderr, "  [sweep] %s done\n", d.name.c_str());
    }
  }
}

}  // namespace s3fifo

#endif  // BENCH_SWEEP_H_
