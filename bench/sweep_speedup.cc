// End-to-end sweep speedup driver: runs the Fig. 7 policy sweep twice —
// once on the serial seed path (ForEachSweepCase + one Simulate per cache)
// and once on the sweep engine (shared traces, single-pass MultiSimulate,
// RunTasks fan-out) — verifies the miss-ratio outputs are bit-identical
// (hits/misses/bytes), and records speedup + throughput in BENCH_sweep.json.
//
// Usage: bench_sweep_speedup [--threads=N]   (N=8 is the acceptance setting;
// on hosts with fewer cores the parallel term shrinks accordingly and the
// remaining speedup comes from the shared-trace single-pass path.)
#include <cstdio>
#include <map>
#include <tuple>

#include "bench/bench_util.h"
#include "bench/sweep.h"
#include "bench/trace_source.h"
#include "src/sim/simulator.h"

namespace s3fifo {
namespace {

const std::vector<std::string>& SelectedPolicies() {
  static const std::vector<std::string>* p = new std::vector<std::string>{
      "s3fifo", "tinylfu", "lirs", "2q", "arc", "lru"};
  return *p;
}

// (dataset, trace_index, large, policy slot: 0=fifo, 1..=variants)
using CellKey = std::tuple<std::string, uint32_t, bool, size_t>;
using CellMap = std::map<CellKey, SimResult>;

bool SameResult(const SimResult& a, const SimResult& b) {
  return a.requests == b.requests && a.hits == b.hits && a.misses == b.misses &&
         a.bytes_requested == b.bytes_requested && a.bytes_missed == b.bytes_missed;
}

void Run(const BenchOptions& opts) {
  PrintHeader("Sweep speedup: serial seed path vs sweep engine", "§5.1.2 (evaluation harness)");
  const double scale = BenchScale() * 0.25;  // the Fig. 7 scale
  const std::vector<PolicyVariant> variants = VariantsFromPolicyNames(SelectedPolicies());

  // --- Serial seed path: regenerate each trace, one cache per pass. ---
  std::printf("\n[1/2] serial seed path...\n");
  CellMap serial;
  uint64_t serial_requests = 0;
  WallTimer serial_timer;
  ForEachSweepCase(scale, [&](const SweepCase& c) {
    for (const bool large : {true, false}) {
      CacheConfig config;
      config.capacity = large ? c.large_capacity : c.small_capacity;
      auto fifo = CreateCache("fifo", config);
      serial[{c.dataset->name, c.trace_index, large, 0}] = Simulate(c.trace, *fifo);
      serial_requests += c.trace.size();
      for (size_t vi = 0; vi < variants.size(); ++vi) {
        auto cache = CreateCache(variants[vi].policy, config);
        serial[{c.dataset->name, c.trace_index, large, vi + 1}] = Simulate(c.trace, *cache);
        serial_requests += c.trace.size();
      }
    }
  });
  const double serial_ms = serial_timer.ElapsedMs();

  // --- Sweep engine: shared traces, single pass, threaded fan-out. ---
  std::printf("[2/2] sweep engine...\n");
  CellMap engine;
  BenchTraceSource source(opts);
  const SweepSummary summary = RunMissRatioSweep(
      scale, variants, /*include_small=*/true,
      [&](const SweepCell& c) {
        engine[{c.dataset->name, c.trace_index, c.large, 0}] = c.fifo;
        for (size_t vi = 0; vi < c.results.size(); ++vi) {
          engine[{c.dataset->name, c.trace_index, c.large, vi + 1}] = c.results[vi];
        }
      },
      opts.threads, /*progress=*/true, source.cache());

  // --- Equivalence: every cell bit-identical. ---
  size_t mismatches = 0;
  for (const auto& [key, result] : serial) {
    auto it = engine.find(key);
    if (it == engine.end() || !SameResult(result, it->second)) {
      ++mismatches;
    }
  }
  if (engine.size() != serial.size()) {
    mismatches += engine.size() > serial.size() ? engine.size() - serial.size()
                                                : serial.size() - engine.size();
  }
  const bool identical = mismatches == 0;

  const double speedup = summary.wall_ms > 0 ? serial_ms / summary.wall_ms : 0;
  const double serial_rps = serial_ms > 0 ? serial_requests / (serial_ms / 1000.0) : 0;
  std::printf("\nserial:  %8.0f ms  %7.2fM req/s  (%llu simulated requests)\n", serial_ms,
              serial_rps / 1e6, static_cast<unsigned long long>(serial_requests));
  std::printf("engine:  %8.0f ms  %7.2fM req/s  (%llu simulated requests, %u threads)\n",
              summary.wall_ms, summary.requests_per_sec / 1e6,
              static_cast<unsigned long long>(summary.simulated_requests), summary.threads);
  std::printf("speedup: %.2fx   miss-ratio output identical: %s (%zu mismatching cells)\n",
              speedup, identical ? "YES" : "NO", mismatches);

  WriteBenchJson("sweep",
                 JsonFields()
                     .Add("scale", scale)
                     .Add("threads", summary.threads)
                     .Add("serial_wall_ms", serial_ms)
                     .Add("engine_wall_ms", summary.wall_ms)
                     .Add("speedup", speedup)
                     .Add("serial_requests_per_sec", serial_rps)
                     .Add("engine_requests_per_sec", summary.requests_per_sec)
                     .Add("simulated_requests", summary.simulated_requests)
                     .Add("identical_output", identical),
                 {});
  source.WriteReport();
}

}  // namespace
}  // namespace s3fifo

int main(int argc, char** argv) {
  s3fifo::Run(s3fifo::ParseBenchArgs(argc, argv));
  return 0;
}
