// Table 1: dataset statistics — requests, objects, op mix, and the
// one-hit-wonder ratio of the full trace and of 10% / 1% sub-sequences.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/trace_source.h"
#include "src/analysis/one_hit_wonder.h"
#include "src/workload/dataset_profiles.h"

namespace s3fifo {
namespace {

void Run(const BenchOptions& opts) {
  PrintHeader("Table 1: synthetic dataset inventory",
              "Table 1 (one-hit-wonder columns: full / 10% / 1%)");
  const double scale = BenchScale() * 0.5;
  BenchTraceSource source(opts);
  std::printf("%-14s %-7s %7s %10s %10s %7s %7s | %6s %6s %6s\n", "dataset", "type", "traces",
              "requests", "objects", "write%", "del%", "ohw", "ohw10", "ohw1");
  for (const DatasetProfile& d : AllDatasetProfiles()) {
    uint64_t requests = 0, objects = 0, sets = 0, deletes = 0;
    double ohw_full = 0, ohw_10 = 0, ohw_1 = 0;
    const uint32_t traces = std::max<uint32_t>(1, d.num_traces / 2);
    for (uint32_t i = 0; i < traces; ++i) {
      Trace t = source.DatasetTrace(d, i, scale);
      const TraceStats& s = t.Stats();
      requests += s.num_requests;
      objects += s.num_objects;
      sets += s.num_sets;
      deletes += s.num_deletes;
      ohw_full += s.one_hit_wonder_ratio;
      ohw_10 += SubSequenceOneHitWonderRatio(t, 0.10, 10, 7);
      ohw_1 += SubSequenceOneHitWonderRatio(t, 0.01, 10, 7);
    }
    std::printf("%-14s %-7s %7u %10lu %10lu %6.1f%% %6.1f%% | %6.2f %6.2f %6.2f\n",
                d.name.c_str(), d.cache_type.c_str(), traces, (unsigned long)requests,
                (unsigned long)objects, 100.0 * sets / std::max<uint64_t>(requests, 1),
                100.0 * deletes / std::max<uint64_t>(requests, 1), ohw_full / traces,
                ohw_10 / traces, ohw_1 / traces);
  }
  std::printf("\npaper (Table 1): one-hit-wonder rises sharply from the full trace to the\n"
              "10%% and 1%% sub-sequence columns for every dataset; KV datasets (twitter,\n"
              "socialnet) have the lowest ratios, CDN/object datasets the highest.\n");
  source.WriteReport();
}

}  // namespace
}  // namespace s3fifo

int main(int argc, char** argv) {
  s3fifo::Run(s3fifo::ParseBenchArgs(argc, argv));
  return 0;
}
