// BenchTraceSource: the one place bench binaries get their traces from.
//
// Without --trace-cache-dir it simply calls the generators. With a cache dir
// every generated trace is persisted in the v2 columnar format on first use
// and mmap'd (zero-copy) on every later use — across runs and processes — so
// warm figure regeneration skips the generation cost entirely.
//
// WriteReport() emits BENCH_trace_cache.json: per dataset-profile cold
// (generate+persist) vs warm (mmap) wall-clock, the concrete number behind
// the "warm runs are >= 2x faster" acceptance bar.
#ifndef BENCH_TRACE_SOURCE_H_
#define BENCH_TRACE_SOURCE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/trace/trace_cache.h"
#include "src/workload/dataset_profiles.h"
#include "src/workload/zipf_workload.h"

namespace s3fifo {

class BenchTraceSource {
 public:
  explicit BenchTraceSource(const BenchOptions& opts) {
    if (!opts.trace_cache_dir.empty()) {
      cache_.emplace(opts.trace_cache_dir);
      std::fprintf(stderr, "  [trace-cache] dir: %s\n", cache_->dir().c_str());
    }
  }

  // nullptr when caching is disabled — pass straight to the sweep drivers.
  TraceCache* cache() { return cache_.has_value() ? &*cache_ : nullptr; }

  // A dataset trace instance as a view (mmap-backed when cached).
  TraceView Dataset(const DatasetProfile& profile, uint32_t trace_index, double scale) {
    if (!cache_.has_value()) {
      auto trace = std::make_shared<Trace>(GenerateDatasetTrace(profile, trace_index, scale));
      trace->Stats();
      return TraceView::FromTrace(std::move(trace));
    }
    return cache_->GetOrGenerate(
        DatasetTraceSpec(profile, trace_index, scale),
        [&] { return GenerateDatasetTrace(profile, trace_index, scale); });
  }

  // Heap Trace variants for benches that need AoS requests or mutate the
  // trace (e.g. AnnotateNextAccess). Warm runs still skip generation: the
  // cached bytes are materialized, which is far cheaper than generating.
  Trace DatasetTrace(const DatasetProfile& profile, uint32_t trace_index, double scale) {
    if (!cache_.has_value()) {
      return GenerateDatasetTrace(profile, trace_index, scale);
    }
    return MaterializeTrace(Dataset(profile, trace_index, scale));
  }

  Trace ZipfTrace(const ZipfWorkloadConfig& config) {
    if (!cache_.has_value()) {
      return GenerateZipfTrace(config);
    }
    return MaterializeTrace(
        cache_->GetOrGenerate(ZipfTraceSpec(config), [&] { return GenerateZipfTrace(config); }));
  }

  // Emits BENCH_trace_cache.json (no-op when caching is disabled): one row
  // per trace group comparing the cost of resolving each of its distinct
  // traces cold (generate + persist — measured this run, or read back from
  // the populating run's sidecar) against warm (mmap). `warm_speedup` is the
  // acceptance number: how much faster this run got its traces than a
  // cache-less run would have.
  void WriteReport() const {
    if (!cache_.has_value() || cache_->events().empty()) {
      return;
    }
    // Collapse repeat acquisitions: per key, the cold cost and the (first,
    // i.e. most expensive) warm map cost. In-process re-hits cost ~0 and
    // would dilute the averages.
    struct KeyAgg {
      uint64_t requests = 0, cold_runs = 0, warm_runs = 0;
      double cold_ms = 0, warm_ms = 0;
    };
    std::map<std::string, std::map<std::string, KeyAgg>> groups;
    for (const TraceCacheEvent& e : cache_->events()) {
      KeyAgg& k = groups[e.group][e.key];
      k.requests = std::max(k.requests, e.requests);
      k.cold_ms = std::max(k.cold_ms, e.cold_ms_recorded);
      if (e.warm) {
        ++k.warm_runs;
        k.warm_ms = std::max(k.warm_ms, e.ms);
      } else {
        ++k.cold_runs;
        k.cold_ms = std::max(k.cold_ms, e.ms);
      }
    }
    double cold_total = 0, warm_total = 0;
    std::vector<JsonFields> rows;
    for (const auto& [group, keys] : groups) {
      KeyAgg g;
      for (const auto& [key, k] : keys) {
        g.requests += k.requests;
        g.cold_runs += k.cold_runs;
        g.warm_runs += k.warm_runs;
        g.cold_ms += k.cold_ms;
        g.warm_ms += k.warm_ms;
      }
      cold_total += g.cold_ms;
      warm_total += g.warm_ms;
      JsonFields row;
      row.Add("group", group)
          .Add("traces", static_cast<uint64_t>(keys.size()))
          .Add("requests", g.requests)
          .Add("cold_runs", g.cold_runs)
          .Add("warm_runs", g.warm_runs)
          .Add("cold_ms", g.cold_ms)
          .Add("warm_ms", g.warm_ms);
      if (g.warm_runs > 0 && g.warm_ms > 0 && g.cold_ms > 0) {
        row.Add("warm_speedup", g.cold_ms / g.warm_ms);
      }
      rows.push_back(std::move(row));
    }
    JsonFields summary;
    summary.Add("dir", cache_->dir())
        .Add("hits", cache_->hits())
        .Add("misses", cache_->misses())
        .Add("cold_ms_total", cold_total)
        .Add("warm_ms_total", warm_total);
    if (cache_->misses() == 0 && warm_total > 0 && cold_total > 0) {
      summary.Add("warm_speedup", cold_total / warm_total);
    }
    WriteBenchJson("trace_cache", summary, rows);
  }

 private:
  std::optional<TraceCache> cache_;
};

}  // namespace s3fifo

#endif  // BENCH_TRACE_SOURCE_H_
