file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_queue_type.dir/ablation_queue_type.cc.o"
  "CMakeFiles/bench_ablation_queue_type.dir/ablation_queue_type.cc.o.d"
  "bench_ablation_queue_type"
  "bench_ablation_queue_type.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_queue_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
