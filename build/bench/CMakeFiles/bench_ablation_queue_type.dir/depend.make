# Empty dependencies file for bench_ablation_queue_type.
# This may be replaced when dependencies are built.
