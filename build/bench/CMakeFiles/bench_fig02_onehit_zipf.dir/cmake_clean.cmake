file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_onehit_zipf.dir/fig02_onehit_zipf.cc.o"
  "CMakeFiles/bench_fig02_onehit_zipf.dir/fig02_onehit_zipf.cc.o.d"
  "bench_fig02_onehit_zipf"
  "bench_fig02_onehit_zipf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_onehit_zipf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
