# Empty compiler generated dependencies file for bench_fig02_onehit_zipf.
# This may be replaced when dependencies are built.
