file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_onehit_datasets.dir/fig03_onehit_datasets.cc.o"
  "CMakeFiles/bench_fig03_onehit_datasets.dir/fig03_onehit_datasets.cc.o.d"
  "bench_fig03_onehit_datasets"
  "bench_fig03_onehit_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_onehit_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
