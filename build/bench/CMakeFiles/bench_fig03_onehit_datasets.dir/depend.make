# Empty dependencies file for bench_fig03_onehit_datasets.
# This may be replaced when dependencies are built.
