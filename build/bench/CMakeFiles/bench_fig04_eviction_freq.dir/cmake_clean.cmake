file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_eviction_freq.dir/fig04_eviction_freq.cc.o"
  "CMakeFiles/bench_fig04_eviction_freq.dir/fig04_eviction_freq.cc.o.d"
  "bench_fig04_eviction_freq"
  "bench_fig04_eviction_freq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_eviction_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
