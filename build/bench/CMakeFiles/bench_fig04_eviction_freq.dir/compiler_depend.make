# Empty compiler generated dependencies file for bench_fig04_eviction_freq.
# This may be replaced when dependencies are built.
