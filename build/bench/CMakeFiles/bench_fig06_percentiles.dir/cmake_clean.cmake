file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_percentiles.dir/fig06_percentiles.cc.o"
  "CMakeFiles/bench_fig06_percentiles.dir/fig06_percentiles.cc.o.d"
  "bench_fig06_percentiles"
  "bench_fig06_percentiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_percentiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
