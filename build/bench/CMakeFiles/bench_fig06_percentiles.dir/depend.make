# Empty dependencies file for bench_fig06_percentiles.
# This may be replaced when dependencies are built.
