file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_per_dataset.dir/fig07_per_dataset.cc.o"
  "CMakeFiles/bench_fig07_per_dataset.dir/fig07_per_dataset.cc.o.d"
  "bench_fig07_per_dataset"
  "bench_fig07_per_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_per_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
