# Empty dependencies file for bench_fig07_per_dataset.
# This may be replaced when dependencies are built.
