file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_flash.dir/fig09_flash.cc.o"
  "CMakeFiles/bench_fig09_flash.dir/fig09_flash.cc.o.d"
  "bench_fig09_flash"
  "bench_fig09_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
