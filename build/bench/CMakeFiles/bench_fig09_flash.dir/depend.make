# Empty dependencies file for bench_fig09_flash.
# This may be replaced when dependencies are built.
