file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_demotion.dir/fig10_demotion.cc.o"
  "CMakeFiles/bench_fig10_demotion.dir/fig10_demotion.cc.o.d"
  "bench_fig10_demotion"
  "bench_fig10_demotion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_demotion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
