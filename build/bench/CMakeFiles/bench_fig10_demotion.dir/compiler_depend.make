# Empty compiler generated dependencies file for bench_fig10_demotion.
# This may be replaced when dependencies are built.
