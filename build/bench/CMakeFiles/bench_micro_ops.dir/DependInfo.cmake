
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_ops.cc" "bench/CMakeFiles/bench_micro_ops.dir/micro_ops.cc.o" "gcc" "bench/CMakeFiles/bench_micro_ops.dir/micro_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/s3fifo_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_concurrent.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
