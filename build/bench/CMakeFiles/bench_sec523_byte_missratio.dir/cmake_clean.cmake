file(REMOVE_RECURSE
  "CMakeFiles/bench_sec523_byte_missratio.dir/sec523_byte_missratio.cc.o"
  "CMakeFiles/bench_sec523_byte_missratio.dir/sec523_byte_missratio.cc.o.d"
  "bench_sec523_byte_missratio"
  "bench_sec523_byte_missratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec523_byte_missratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
