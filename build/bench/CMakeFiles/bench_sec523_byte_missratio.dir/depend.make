# Empty dependencies file for bench_sec523_byte_missratio.
# This may be replaced when dependencies are built.
