file(REMOVE_RECURSE
  "CMakeFiles/cachesim_cli.dir/cachesim_cli.cc.o"
  "CMakeFiles/cachesim_cli.dir/cachesim_cli.cc.o.d"
  "cachesim_cli"
  "cachesim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cachesim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
