# Empty compiler generated dependencies file for cachesim_cli.
# This may be replaced when dependencies are built.
