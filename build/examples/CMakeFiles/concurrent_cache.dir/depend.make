# Empty dependencies file for concurrent_cache.
# This may be replaced when dependencies are built.
