file(REMOVE_RECURSE
  "CMakeFiles/flash_admission.dir/flash_admission.cc.o"
  "CMakeFiles/flash_admission.dir/flash_admission.cc.o.d"
  "flash_admission"
  "flash_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flash_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
