# Empty dependencies file for flash_admission.
# This may be replaced when dependencies are built.
