file(REMOVE_RECURSE
  "CMakeFiles/mrc_profiler.dir/mrc_profiler.cc.o"
  "CMakeFiles/mrc_profiler.dir/mrc_profiler.cc.o.d"
  "mrc_profiler"
  "mrc_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrc_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
