# Empty dependencies file for mrc_profiler.
# This may be replaced when dependencies are built.
