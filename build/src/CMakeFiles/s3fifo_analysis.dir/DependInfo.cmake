
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/demotion.cc" "src/CMakeFiles/s3fifo_analysis.dir/analysis/demotion.cc.o" "gcc" "src/CMakeFiles/s3fifo_analysis.dir/analysis/demotion.cc.o.d"
  "/root/repo/src/analysis/eviction_age.cc" "src/CMakeFiles/s3fifo_analysis.dir/analysis/eviction_age.cc.o" "gcc" "src/CMakeFiles/s3fifo_analysis.dir/analysis/eviction_age.cc.o.d"
  "/root/repo/src/analysis/mrc.cc" "src/CMakeFiles/s3fifo_analysis.dir/analysis/mrc.cc.o" "gcc" "src/CMakeFiles/s3fifo_analysis.dir/analysis/mrc.cc.o.d"
  "/root/repo/src/analysis/one_hit_wonder.cc" "src/CMakeFiles/s3fifo_analysis.dir/analysis/one_hit_wonder.cc.o" "gcc" "src/CMakeFiles/s3fifo_analysis.dir/analysis/one_hit_wonder.cc.o.d"
  "/root/repo/src/analysis/shards.cc" "src/CMakeFiles/s3fifo_analysis.dir/analysis/shards.cc.o" "gcc" "src/CMakeFiles/s3fifo_analysis.dir/analysis/shards.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/s3fifo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
