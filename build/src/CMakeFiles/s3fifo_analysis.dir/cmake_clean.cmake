file(REMOVE_RECURSE
  "CMakeFiles/s3fifo_analysis.dir/analysis/demotion.cc.o"
  "CMakeFiles/s3fifo_analysis.dir/analysis/demotion.cc.o.d"
  "CMakeFiles/s3fifo_analysis.dir/analysis/eviction_age.cc.o"
  "CMakeFiles/s3fifo_analysis.dir/analysis/eviction_age.cc.o.d"
  "CMakeFiles/s3fifo_analysis.dir/analysis/mrc.cc.o"
  "CMakeFiles/s3fifo_analysis.dir/analysis/mrc.cc.o.d"
  "CMakeFiles/s3fifo_analysis.dir/analysis/one_hit_wonder.cc.o"
  "CMakeFiles/s3fifo_analysis.dir/analysis/one_hit_wonder.cc.o.d"
  "CMakeFiles/s3fifo_analysis.dir/analysis/shards.cc.o"
  "CMakeFiles/s3fifo_analysis.dir/analysis/shards.cc.o.d"
  "libs3fifo_analysis.a"
  "libs3fifo_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3fifo_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
