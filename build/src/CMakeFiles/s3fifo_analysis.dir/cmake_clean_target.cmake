file(REMOVE_RECURSE
  "libs3fifo_analysis.a"
)
