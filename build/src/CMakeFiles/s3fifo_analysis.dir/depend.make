# Empty dependencies file for s3fifo_analysis.
# This may be replaced when dependencies are built.
