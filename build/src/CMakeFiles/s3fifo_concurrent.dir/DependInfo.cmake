
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/concurrent/concurrent_clock.cc" "src/CMakeFiles/s3fifo_concurrent.dir/concurrent/concurrent_clock.cc.o" "gcc" "src/CMakeFiles/s3fifo_concurrent.dir/concurrent/concurrent_clock.cc.o.d"
  "/root/repo/src/concurrent/concurrent_lru.cc" "src/CMakeFiles/s3fifo_concurrent.dir/concurrent/concurrent_lru.cc.o" "gcc" "src/CMakeFiles/s3fifo_concurrent.dir/concurrent/concurrent_lru.cc.o.d"
  "/root/repo/src/concurrent/concurrent_s3fifo.cc" "src/CMakeFiles/s3fifo_concurrent.dir/concurrent/concurrent_s3fifo.cc.o" "gcc" "src/CMakeFiles/s3fifo_concurrent.dir/concurrent/concurrent_s3fifo.cc.o.d"
  "/root/repo/src/concurrent/concurrent_s3fifo_ring.cc" "src/CMakeFiles/s3fifo_concurrent.dir/concurrent/concurrent_s3fifo_ring.cc.o" "gcc" "src/CMakeFiles/s3fifo_concurrent.dir/concurrent/concurrent_s3fifo_ring.cc.o.d"
  "/root/repo/src/concurrent/concurrent_tinylfu.cc" "src/CMakeFiles/s3fifo_concurrent.dir/concurrent/concurrent_tinylfu.cc.o" "gcc" "src/CMakeFiles/s3fifo_concurrent.dir/concurrent/concurrent_tinylfu.cc.o.d"
  "/root/repo/src/concurrent/replay.cc" "src/CMakeFiles/s3fifo_concurrent.dir/concurrent/replay.cc.o" "gcc" "src/CMakeFiles/s3fifo_concurrent.dir/concurrent/replay.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/s3fifo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
