file(REMOVE_RECURSE
  "CMakeFiles/s3fifo_concurrent.dir/concurrent/concurrent_clock.cc.o"
  "CMakeFiles/s3fifo_concurrent.dir/concurrent/concurrent_clock.cc.o.d"
  "CMakeFiles/s3fifo_concurrent.dir/concurrent/concurrent_lru.cc.o"
  "CMakeFiles/s3fifo_concurrent.dir/concurrent/concurrent_lru.cc.o.d"
  "CMakeFiles/s3fifo_concurrent.dir/concurrent/concurrent_s3fifo.cc.o"
  "CMakeFiles/s3fifo_concurrent.dir/concurrent/concurrent_s3fifo.cc.o.d"
  "CMakeFiles/s3fifo_concurrent.dir/concurrent/concurrent_s3fifo_ring.cc.o"
  "CMakeFiles/s3fifo_concurrent.dir/concurrent/concurrent_s3fifo_ring.cc.o.d"
  "CMakeFiles/s3fifo_concurrent.dir/concurrent/concurrent_tinylfu.cc.o"
  "CMakeFiles/s3fifo_concurrent.dir/concurrent/concurrent_tinylfu.cc.o.d"
  "CMakeFiles/s3fifo_concurrent.dir/concurrent/replay.cc.o"
  "CMakeFiles/s3fifo_concurrent.dir/concurrent/replay.cc.o.d"
  "libs3fifo_concurrent.a"
  "libs3fifo_concurrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3fifo_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
