file(REMOVE_RECURSE
  "libs3fifo_concurrent.a"
)
