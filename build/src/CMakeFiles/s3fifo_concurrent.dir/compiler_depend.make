# Empty compiler generated dependencies file for s3fifo_concurrent.
# This may be replaced when dependencies are built.
