
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cache.cc" "src/CMakeFiles/s3fifo_core.dir/core/cache.cc.o" "gcc" "src/CMakeFiles/s3fifo_core.dir/core/cache.cc.o.d"
  "/root/repo/src/core/cache_factory.cc" "src/CMakeFiles/s3fifo_core.dir/core/cache_factory.cc.o" "gcc" "src/CMakeFiles/s3fifo_core.dir/core/cache_factory.cc.o.d"
  "/root/repo/src/policies/arc.cc" "src/CMakeFiles/s3fifo_core.dir/policies/arc.cc.o" "gcc" "src/CMakeFiles/s3fifo_core.dir/policies/arc.cc.o.d"
  "/root/repo/src/policies/belady.cc" "src/CMakeFiles/s3fifo_core.dir/policies/belady.cc.o" "gcc" "src/CMakeFiles/s3fifo_core.dir/policies/belady.cc.o.d"
  "/root/repo/src/policies/blru.cc" "src/CMakeFiles/s3fifo_core.dir/policies/blru.cc.o" "gcc" "src/CMakeFiles/s3fifo_core.dir/policies/blru.cc.o.d"
  "/root/repo/src/policies/cacheus.cc" "src/CMakeFiles/s3fifo_core.dir/policies/cacheus.cc.o" "gcc" "src/CMakeFiles/s3fifo_core.dir/policies/cacheus.cc.o.d"
  "/root/repo/src/policies/clock.cc" "src/CMakeFiles/s3fifo_core.dir/policies/clock.cc.o" "gcc" "src/CMakeFiles/s3fifo_core.dir/policies/clock.cc.o.d"
  "/root/repo/src/policies/fifo.cc" "src/CMakeFiles/s3fifo_core.dir/policies/fifo.cc.o" "gcc" "src/CMakeFiles/s3fifo_core.dir/policies/fifo.cc.o.d"
  "/root/repo/src/policies/fifo_merge.cc" "src/CMakeFiles/s3fifo_core.dir/policies/fifo_merge.cc.o" "gcc" "src/CMakeFiles/s3fifo_core.dir/policies/fifo_merge.cc.o.d"
  "/root/repo/src/policies/hyperbolic.cc" "src/CMakeFiles/s3fifo_core.dir/policies/hyperbolic.cc.o" "gcc" "src/CMakeFiles/s3fifo_core.dir/policies/hyperbolic.cc.o.d"
  "/root/repo/src/policies/lecar.cc" "src/CMakeFiles/s3fifo_core.dir/policies/lecar.cc.o" "gcc" "src/CMakeFiles/s3fifo_core.dir/policies/lecar.cc.o.d"
  "/root/repo/src/policies/lfu.cc" "src/CMakeFiles/s3fifo_core.dir/policies/lfu.cc.o" "gcc" "src/CMakeFiles/s3fifo_core.dir/policies/lfu.cc.o.d"
  "/root/repo/src/policies/lhd.cc" "src/CMakeFiles/s3fifo_core.dir/policies/lhd.cc.o" "gcc" "src/CMakeFiles/s3fifo_core.dir/policies/lhd.cc.o.d"
  "/root/repo/src/policies/lirs.cc" "src/CMakeFiles/s3fifo_core.dir/policies/lirs.cc.o" "gcc" "src/CMakeFiles/s3fifo_core.dir/policies/lirs.cc.o.d"
  "/root/repo/src/policies/lrb_lite.cc" "src/CMakeFiles/s3fifo_core.dir/policies/lrb_lite.cc.o" "gcc" "src/CMakeFiles/s3fifo_core.dir/policies/lrb_lite.cc.o.d"
  "/root/repo/src/policies/lru.cc" "src/CMakeFiles/s3fifo_core.dir/policies/lru.cc.o" "gcc" "src/CMakeFiles/s3fifo_core.dir/policies/lru.cc.o.d"
  "/root/repo/src/policies/lruk.cc" "src/CMakeFiles/s3fifo_core.dir/policies/lruk.cc.o" "gcc" "src/CMakeFiles/s3fifo_core.dir/policies/lruk.cc.o.d"
  "/root/repo/src/policies/random.cc" "src/CMakeFiles/s3fifo_core.dir/policies/random.cc.o" "gcc" "src/CMakeFiles/s3fifo_core.dir/policies/random.cc.o.d"
  "/root/repo/src/policies/s3fifo.cc" "src/CMakeFiles/s3fifo_core.dir/policies/s3fifo.cc.o" "gcc" "src/CMakeFiles/s3fifo_core.dir/policies/s3fifo.cc.o.d"
  "/root/repo/src/policies/s3fifo_d.cc" "src/CMakeFiles/s3fifo_core.dir/policies/s3fifo_d.cc.o" "gcc" "src/CMakeFiles/s3fifo_core.dir/policies/s3fifo_d.cc.o.d"
  "/root/repo/src/policies/sieve.cc" "src/CMakeFiles/s3fifo_core.dir/policies/sieve.cc.o" "gcc" "src/CMakeFiles/s3fifo_core.dir/policies/sieve.cc.o.d"
  "/root/repo/src/policies/slru.cc" "src/CMakeFiles/s3fifo_core.dir/policies/slru.cc.o" "gcc" "src/CMakeFiles/s3fifo_core.dir/policies/slru.cc.o.d"
  "/root/repo/src/policies/tinylfu.cc" "src/CMakeFiles/s3fifo_core.dir/policies/tinylfu.cc.o" "gcc" "src/CMakeFiles/s3fifo_core.dir/policies/tinylfu.cc.o.d"
  "/root/repo/src/policies/twoq.cc" "src/CMakeFiles/s3fifo_core.dir/policies/twoq.cc.o" "gcc" "src/CMakeFiles/s3fifo_core.dir/policies/twoq.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/s3fifo_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
