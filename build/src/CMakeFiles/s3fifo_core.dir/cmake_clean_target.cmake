file(REMOVE_RECURSE
  "libs3fifo_core.a"
)
