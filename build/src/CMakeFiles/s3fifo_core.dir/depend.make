# Empty dependencies file for s3fifo_core.
# This may be replaced when dependencies are built.
