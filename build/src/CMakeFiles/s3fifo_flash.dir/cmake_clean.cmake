file(REMOVE_RECURSE
  "CMakeFiles/s3fifo_flash.dir/flash/admission.cc.o"
  "CMakeFiles/s3fifo_flash.dir/flash/admission.cc.o.d"
  "CMakeFiles/s3fifo_flash.dir/flash/flash_cache.cc.o"
  "CMakeFiles/s3fifo_flash.dir/flash/flash_cache.cc.o.d"
  "libs3fifo_flash.a"
  "libs3fifo_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3fifo_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
