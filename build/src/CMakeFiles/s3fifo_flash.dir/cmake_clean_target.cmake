file(REMOVE_RECURSE
  "libs3fifo_flash.a"
)
