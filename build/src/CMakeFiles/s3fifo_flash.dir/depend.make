# Empty dependencies file for s3fifo_flash.
# This may be replaced when dependencies are built.
