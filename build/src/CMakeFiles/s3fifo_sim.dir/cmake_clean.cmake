file(REMOVE_RECURSE
  "CMakeFiles/s3fifo_sim.dir/sim/metrics.cc.o"
  "CMakeFiles/s3fifo_sim.dir/sim/metrics.cc.o.d"
  "CMakeFiles/s3fifo_sim.dir/sim/runner.cc.o"
  "CMakeFiles/s3fifo_sim.dir/sim/runner.cc.o.d"
  "CMakeFiles/s3fifo_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/s3fifo_sim.dir/sim/simulator.cc.o.d"
  "libs3fifo_sim.a"
  "libs3fifo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3fifo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
