file(REMOVE_RECURSE
  "libs3fifo_sim.a"
)
