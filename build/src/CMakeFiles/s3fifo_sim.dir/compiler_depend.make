# Empty compiler generated dependencies file for s3fifo_sim.
# This may be replaced when dependencies are built.
