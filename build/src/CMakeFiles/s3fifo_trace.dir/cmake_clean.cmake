file(REMOVE_RECURSE
  "CMakeFiles/s3fifo_trace.dir/trace/next_access.cc.o"
  "CMakeFiles/s3fifo_trace.dir/trace/next_access.cc.o.d"
  "CMakeFiles/s3fifo_trace.dir/trace/tenant_split.cc.o"
  "CMakeFiles/s3fifo_trace.dir/trace/tenant_split.cc.o.d"
  "CMakeFiles/s3fifo_trace.dir/trace/trace.cc.o"
  "CMakeFiles/s3fifo_trace.dir/trace/trace.cc.o.d"
  "CMakeFiles/s3fifo_trace.dir/trace/trace_io.cc.o"
  "CMakeFiles/s3fifo_trace.dir/trace/trace_io.cc.o.d"
  "libs3fifo_trace.a"
  "libs3fifo_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3fifo_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
