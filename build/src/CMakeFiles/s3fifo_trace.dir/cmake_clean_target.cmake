file(REMOVE_RECURSE
  "libs3fifo_trace.a"
)
