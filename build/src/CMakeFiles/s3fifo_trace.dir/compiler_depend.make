# Empty compiler generated dependencies file for s3fifo_trace.
# This may be replaced when dependencies are built.
