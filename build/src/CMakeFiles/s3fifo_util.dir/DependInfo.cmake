
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/bloom_filter.cc" "src/CMakeFiles/s3fifo_util.dir/util/bloom_filter.cc.o" "gcc" "src/CMakeFiles/s3fifo_util.dir/util/bloom_filter.cc.o.d"
  "/root/repo/src/util/count_min_sketch.cc" "src/CMakeFiles/s3fifo_util.dir/util/count_min_sketch.cc.o" "gcc" "src/CMakeFiles/s3fifo_util.dir/util/count_min_sketch.cc.o.d"
  "/root/repo/src/util/ghost_queue.cc" "src/CMakeFiles/s3fifo_util.dir/util/ghost_queue.cc.o" "gcc" "src/CMakeFiles/s3fifo_util.dir/util/ghost_queue.cc.o.d"
  "/root/repo/src/util/ghost_table.cc" "src/CMakeFiles/s3fifo_util.dir/util/ghost_table.cc.o" "gcc" "src/CMakeFiles/s3fifo_util.dir/util/ghost_table.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/CMakeFiles/s3fifo_util.dir/util/histogram.cc.o" "gcc" "src/CMakeFiles/s3fifo_util.dir/util/histogram.cc.o.d"
  "/root/repo/src/util/params.cc" "src/CMakeFiles/s3fifo_util.dir/util/params.cc.o" "gcc" "src/CMakeFiles/s3fifo_util.dir/util/params.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/CMakeFiles/s3fifo_util.dir/util/thread_pool.cc.o" "gcc" "src/CMakeFiles/s3fifo_util.dir/util/thread_pool.cc.o.d"
  "/root/repo/src/util/zipf.cc" "src/CMakeFiles/s3fifo_util.dir/util/zipf.cc.o" "gcc" "src/CMakeFiles/s3fifo_util.dir/util/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
