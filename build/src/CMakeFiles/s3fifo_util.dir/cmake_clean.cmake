file(REMOVE_RECURSE
  "CMakeFiles/s3fifo_util.dir/util/bloom_filter.cc.o"
  "CMakeFiles/s3fifo_util.dir/util/bloom_filter.cc.o.d"
  "CMakeFiles/s3fifo_util.dir/util/count_min_sketch.cc.o"
  "CMakeFiles/s3fifo_util.dir/util/count_min_sketch.cc.o.d"
  "CMakeFiles/s3fifo_util.dir/util/ghost_queue.cc.o"
  "CMakeFiles/s3fifo_util.dir/util/ghost_queue.cc.o.d"
  "CMakeFiles/s3fifo_util.dir/util/ghost_table.cc.o"
  "CMakeFiles/s3fifo_util.dir/util/ghost_table.cc.o.d"
  "CMakeFiles/s3fifo_util.dir/util/histogram.cc.o"
  "CMakeFiles/s3fifo_util.dir/util/histogram.cc.o.d"
  "CMakeFiles/s3fifo_util.dir/util/params.cc.o"
  "CMakeFiles/s3fifo_util.dir/util/params.cc.o.d"
  "CMakeFiles/s3fifo_util.dir/util/thread_pool.cc.o"
  "CMakeFiles/s3fifo_util.dir/util/thread_pool.cc.o.d"
  "CMakeFiles/s3fifo_util.dir/util/zipf.cc.o"
  "CMakeFiles/s3fifo_util.dir/util/zipf.cc.o.d"
  "libs3fifo_util.a"
  "libs3fifo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3fifo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
