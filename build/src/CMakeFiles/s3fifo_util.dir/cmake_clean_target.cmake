file(REMOVE_RECURSE
  "libs3fifo_util.a"
)
