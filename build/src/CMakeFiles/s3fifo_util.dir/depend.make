# Empty dependencies file for s3fifo_util.
# This may be replaced when dependencies are built.
