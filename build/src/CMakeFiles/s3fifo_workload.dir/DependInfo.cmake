
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/dataset_profiles.cc" "src/CMakeFiles/s3fifo_workload.dir/workload/dataset_profiles.cc.o" "gcc" "src/CMakeFiles/s3fifo_workload.dir/workload/dataset_profiles.cc.o.d"
  "/root/repo/src/workload/scan_workload.cc" "src/CMakeFiles/s3fifo_workload.dir/workload/scan_workload.cc.o" "gcc" "src/CMakeFiles/s3fifo_workload.dir/workload/scan_workload.cc.o.d"
  "/root/repo/src/workload/zipf_workload.cc" "src/CMakeFiles/s3fifo_workload.dir/workload/zipf_workload.cc.o" "gcc" "src/CMakeFiles/s3fifo_workload.dir/workload/zipf_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/s3fifo_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
