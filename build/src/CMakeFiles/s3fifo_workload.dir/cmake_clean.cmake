file(REMOVE_RECURSE
  "CMakeFiles/s3fifo_workload.dir/workload/dataset_profiles.cc.o"
  "CMakeFiles/s3fifo_workload.dir/workload/dataset_profiles.cc.o.d"
  "CMakeFiles/s3fifo_workload.dir/workload/scan_workload.cc.o"
  "CMakeFiles/s3fifo_workload.dir/workload/scan_workload.cc.o.d"
  "CMakeFiles/s3fifo_workload.dir/workload/zipf_workload.cc.o"
  "CMakeFiles/s3fifo_workload.dir/workload/zipf_workload.cc.o.d"
  "libs3fifo_workload.a"
  "libs3fifo_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3fifo_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
