file(REMOVE_RECURSE
  "libs3fifo_workload.a"
)
