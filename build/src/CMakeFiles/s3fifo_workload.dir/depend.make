# Empty dependencies file for s3fifo_workload.
# This may be replaced when dependencies are built.
