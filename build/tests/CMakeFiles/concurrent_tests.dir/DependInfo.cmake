
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/concurrent/concurrent_cache_test.cc" "tests/CMakeFiles/concurrent_tests.dir/concurrent/concurrent_cache_test.cc.o" "gcc" "tests/CMakeFiles/concurrent_tests.dir/concurrent/concurrent_cache_test.cc.o.d"
  "/root/repo/tests/concurrent/mpmc_queue_test.cc" "tests/CMakeFiles/concurrent_tests.dir/concurrent/mpmc_queue_test.cc.o" "gcc" "tests/CMakeFiles/concurrent_tests.dir/concurrent/mpmc_queue_test.cc.o.d"
  "/root/repo/tests/concurrent/replay_test.cc" "tests/CMakeFiles/concurrent_tests.dir/concurrent/replay_test.cc.o" "gcc" "tests/CMakeFiles/concurrent_tests.dir/concurrent/replay_test.cc.o.d"
  "/root/repo/tests/concurrent/striped_hash_map_test.cc" "tests/CMakeFiles/concurrent_tests.dir/concurrent/striped_hash_map_test.cc.o" "gcc" "tests/CMakeFiles/concurrent_tests.dir/concurrent/striped_hash_map_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/s3fifo_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_concurrent.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
