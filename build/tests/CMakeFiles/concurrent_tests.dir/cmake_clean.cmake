file(REMOVE_RECURSE
  "CMakeFiles/concurrent_tests.dir/concurrent/concurrent_cache_test.cc.o"
  "CMakeFiles/concurrent_tests.dir/concurrent/concurrent_cache_test.cc.o.d"
  "CMakeFiles/concurrent_tests.dir/concurrent/mpmc_queue_test.cc.o"
  "CMakeFiles/concurrent_tests.dir/concurrent/mpmc_queue_test.cc.o.d"
  "CMakeFiles/concurrent_tests.dir/concurrent/replay_test.cc.o"
  "CMakeFiles/concurrent_tests.dir/concurrent/replay_test.cc.o.d"
  "CMakeFiles/concurrent_tests.dir/concurrent/striped_hash_map_test.cc.o"
  "CMakeFiles/concurrent_tests.dir/concurrent/striped_hash_map_test.cc.o.d"
  "concurrent_tests"
  "concurrent_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
