# Empty compiler generated dependencies file for concurrent_tests.
# This may be replaced when dependencies are built.
