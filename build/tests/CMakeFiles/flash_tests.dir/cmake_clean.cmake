file(REMOVE_RECURSE
  "CMakeFiles/flash_tests.dir/flash/admission_test.cc.o"
  "CMakeFiles/flash_tests.dir/flash/admission_test.cc.o.d"
  "CMakeFiles/flash_tests.dir/flash/flash_cache_test.cc.o"
  "CMakeFiles/flash_tests.dir/flash/flash_cache_test.cc.o.d"
  "flash_tests"
  "flash_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flash_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
