
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/policies/arc_lirs_test.cc" "tests/CMakeFiles/policy_tests.dir/policies/arc_lirs_test.cc.o" "gcc" "tests/CMakeFiles/policy_tests.dir/policies/arc_lirs_test.cc.o.d"
  "/root/repo/tests/policies/belady_test.cc" "tests/CMakeFiles/policy_tests.dir/policies/belady_test.cc.o" "gcc" "tests/CMakeFiles/policy_tests.dir/policies/belady_test.cc.o.d"
  "/root/repo/tests/policies/fifo_lru_clock_test.cc" "tests/CMakeFiles/policy_tests.dir/policies/fifo_lru_clock_test.cc.o" "gcc" "tests/CMakeFiles/policy_tests.dir/policies/fifo_lru_clock_test.cc.o.d"
  "/root/repo/tests/policies/lrb_lite_test.cc" "tests/CMakeFiles/policy_tests.dir/policies/lrb_lite_test.cc.o" "gcc" "tests/CMakeFiles/policy_tests.dir/policies/lrb_lite_test.cc.o.d"
  "/root/repo/tests/policies/misc_policies_test.cc" "tests/CMakeFiles/policy_tests.dir/policies/misc_policies_test.cc.o" "gcc" "tests/CMakeFiles/policy_tests.dir/policies/misc_policies_test.cc.o.d"
  "/root/repo/tests/policies/policy_edge_test.cc" "tests/CMakeFiles/policy_tests.dir/policies/policy_edge_test.cc.o" "gcc" "tests/CMakeFiles/policy_tests.dir/policies/policy_edge_test.cc.o.d"
  "/root/repo/tests/policies/policy_properties_test.cc" "tests/CMakeFiles/policy_tests.dir/policies/policy_properties_test.cc.o" "gcc" "tests/CMakeFiles/policy_tests.dir/policies/policy_properties_test.cc.o.d"
  "/root/repo/tests/policies/s3fifo_d_test.cc" "tests/CMakeFiles/policy_tests.dir/policies/s3fifo_d_test.cc.o" "gcc" "tests/CMakeFiles/policy_tests.dir/policies/s3fifo_d_test.cc.o.d"
  "/root/repo/tests/policies/s3fifo_test.cc" "tests/CMakeFiles/policy_tests.dir/policies/s3fifo_test.cc.o" "gcc" "tests/CMakeFiles/policy_tests.dir/policies/s3fifo_test.cc.o.d"
  "/root/repo/tests/policies/sieve_slru_twoq_test.cc" "tests/CMakeFiles/policy_tests.dir/policies/sieve_slru_twoq_test.cc.o" "gcc" "tests/CMakeFiles/policy_tests.dir/policies/sieve_slru_twoq_test.cc.o.d"
  "/root/repo/tests/policies/tinylfu_test.cc" "tests/CMakeFiles/policy_tests.dir/policies/tinylfu_test.cc.o" "gcc" "tests/CMakeFiles/policy_tests.dir/policies/tinylfu_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/s3fifo_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_concurrent.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
