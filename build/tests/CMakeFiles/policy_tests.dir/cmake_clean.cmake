file(REMOVE_RECURSE
  "CMakeFiles/policy_tests.dir/policies/arc_lirs_test.cc.o"
  "CMakeFiles/policy_tests.dir/policies/arc_lirs_test.cc.o.d"
  "CMakeFiles/policy_tests.dir/policies/belady_test.cc.o"
  "CMakeFiles/policy_tests.dir/policies/belady_test.cc.o.d"
  "CMakeFiles/policy_tests.dir/policies/fifo_lru_clock_test.cc.o"
  "CMakeFiles/policy_tests.dir/policies/fifo_lru_clock_test.cc.o.d"
  "CMakeFiles/policy_tests.dir/policies/lrb_lite_test.cc.o"
  "CMakeFiles/policy_tests.dir/policies/lrb_lite_test.cc.o.d"
  "CMakeFiles/policy_tests.dir/policies/misc_policies_test.cc.o"
  "CMakeFiles/policy_tests.dir/policies/misc_policies_test.cc.o.d"
  "CMakeFiles/policy_tests.dir/policies/policy_edge_test.cc.o"
  "CMakeFiles/policy_tests.dir/policies/policy_edge_test.cc.o.d"
  "CMakeFiles/policy_tests.dir/policies/policy_properties_test.cc.o"
  "CMakeFiles/policy_tests.dir/policies/policy_properties_test.cc.o.d"
  "CMakeFiles/policy_tests.dir/policies/s3fifo_d_test.cc.o"
  "CMakeFiles/policy_tests.dir/policies/s3fifo_d_test.cc.o.d"
  "CMakeFiles/policy_tests.dir/policies/s3fifo_test.cc.o"
  "CMakeFiles/policy_tests.dir/policies/s3fifo_test.cc.o.d"
  "CMakeFiles/policy_tests.dir/policies/sieve_slru_twoq_test.cc.o"
  "CMakeFiles/policy_tests.dir/policies/sieve_slru_twoq_test.cc.o.d"
  "CMakeFiles/policy_tests.dir/policies/tinylfu_test.cc.o"
  "CMakeFiles/policy_tests.dir/policies/tinylfu_test.cc.o.d"
  "policy_tests"
  "policy_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
