file(REMOVE_RECURSE
  "CMakeFiles/sim_tests.dir/analysis/demotion_test.cc.o"
  "CMakeFiles/sim_tests.dir/analysis/demotion_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/analysis/eviction_age_test.cc.o"
  "CMakeFiles/sim_tests.dir/analysis/eviction_age_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/analysis/mrc_shards_test.cc.o"
  "CMakeFiles/sim_tests.dir/analysis/mrc_shards_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/analysis/one_hit_wonder_test.cc.o"
  "CMakeFiles/sim_tests.dir/analysis/one_hit_wonder_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/metrics_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/metrics_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/runner_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/runner_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/simulator_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/simulator_test.cc.o.d"
  "sim_tests"
  "sim_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
