
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/next_access_test.cc" "tests/CMakeFiles/trace_tests.dir/trace/next_access_test.cc.o" "gcc" "tests/CMakeFiles/trace_tests.dir/trace/next_access_test.cc.o.d"
  "/root/repo/tests/trace/tenant_split_test.cc" "tests/CMakeFiles/trace_tests.dir/trace/tenant_split_test.cc.o" "gcc" "tests/CMakeFiles/trace_tests.dir/trace/tenant_split_test.cc.o.d"
  "/root/repo/tests/trace/trace_io_test.cc" "tests/CMakeFiles/trace_tests.dir/trace/trace_io_test.cc.o" "gcc" "tests/CMakeFiles/trace_tests.dir/trace/trace_io_test.cc.o.d"
  "/root/repo/tests/trace/trace_test.cc" "tests/CMakeFiles/trace_tests.dir/trace/trace_test.cc.o" "gcc" "tests/CMakeFiles/trace_tests.dir/trace/trace_test.cc.o.d"
  "/root/repo/tests/workload/dataset_profiles_test.cc" "tests/CMakeFiles/trace_tests.dir/workload/dataset_profiles_test.cc.o" "gcc" "tests/CMakeFiles/trace_tests.dir/workload/dataset_profiles_test.cc.o.d"
  "/root/repo/tests/workload/scan_workload_test.cc" "tests/CMakeFiles/trace_tests.dir/workload/scan_workload_test.cc.o" "gcc" "tests/CMakeFiles/trace_tests.dir/workload/scan_workload_test.cc.o.d"
  "/root/repo/tests/workload/zipf_workload_test.cc" "tests/CMakeFiles/trace_tests.dir/workload/zipf_workload_test.cc.o" "gcc" "tests/CMakeFiles/trace_tests.dir/workload/zipf_workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/s3fifo_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_concurrent.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
