file(REMOVE_RECURSE
  "CMakeFiles/trace_tests.dir/trace/next_access_test.cc.o"
  "CMakeFiles/trace_tests.dir/trace/next_access_test.cc.o.d"
  "CMakeFiles/trace_tests.dir/trace/tenant_split_test.cc.o"
  "CMakeFiles/trace_tests.dir/trace/tenant_split_test.cc.o.d"
  "CMakeFiles/trace_tests.dir/trace/trace_io_test.cc.o"
  "CMakeFiles/trace_tests.dir/trace/trace_io_test.cc.o.d"
  "CMakeFiles/trace_tests.dir/trace/trace_test.cc.o"
  "CMakeFiles/trace_tests.dir/trace/trace_test.cc.o.d"
  "CMakeFiles/trace_tests.dir/workload/dataset_profiles_test.cc.o"
  "CMakeFiles/trace_tests.dir/workload/dataset_profiles_test.cc.o.d"
  "CMakeFiles/trace_tests.dir/workload/scan_workload_test.cc.o"
  "CMakeFiles/trace_tests.dir/workload/scan_workload_test.cc.o.d"
  "CMakeFiles/trace_tests.dir/workload/zipf_workload_test.cc.o"
  "CMakeFiles/trace_tests.dir/workload/zipf_workload_test.cc.o.d"
  "trace_tests"
  "trace_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
