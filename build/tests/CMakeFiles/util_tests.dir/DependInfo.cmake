
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/bloom_filter_test.cc" "tests/CMakeFiles/util_tests.dir/util/bloom_filter_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/bloom_filter_test.cc.o.d"
  "/root/repo/tests/util/count_min_sketch_test.cc" "tests/CMakeFiles/util_tests.dir/util/count_min_sketch_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/count_min_sketch_test.cc.o.d"
  "/root/repo/tests/util/ghost_queue_test.cc" "tests/CMakeFiles/util_tests.dir/util/ghost_queue_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/ghost_queue_test.cc.o.d"
  "/root/repo/tests/util/ghost_table_test.cc" "tests/CMakeFiles/util_tests.dir/util/ghost_table_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/ghost_table_test.cc.o.d"
  "/root/repo/tests/util/hash_test.cc" "tests/CMakeFiles/util_tests.dir/util/hash_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/hash_test.cc.o.d"
  "/root/repo/tests/util/histogram_test.cc" "tests/CMakeFiles/util_tests.dir/util/histogram_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/histogram_test.cc.o.d"
  "/root/repo/tests/util/intrusive_list_test.cc" "tests/CMakeFiles/util_tests.dir/util/intrusive_list_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/intrusive_list_test.cc.o.d"
  "/root/repo/tests/util/params_test.cc" "tests/CMakeFiles/util_tests.dir/util/params_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/params_test.cc.o.d"
  "/root/repo/tests/util/rng_test.cc" "tests/CMakeFiles/util_tests.dir/util/rng_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/rng_test.cc.o.d"
  "/root/repo/tests/util/thread_pool_test.cc" "tests/CMakeFiles/util_tests.dir/util/thread_pool_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/thread_pool_test.cc.o.d"
  "/root/repo/tests/util/zipf_test.cc" "tests/CMakeFiles/util_tests.dir/util/zipf_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/zipf_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/s3fifo_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_concurrent.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s3fifo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
