file(REMOVE_RECURSE
  "CMakeFiles/util_tests.dir/util/bloom_filter_test.cc.o"
  "CMakeFiles/util_tests.dir/util/bloom_filter_test.cc.o.d"
  "CMakeFiles/util_tests.dir/util/count_min_sketch_test.cc.o"
  "CMakeFiles/util_tests.dir/util/count_min_sketch_test.cc.o.d"
  "CMakeFiles/util_tests.dir/util/ghost_queue_test.cc.o"
  "CMakeFiles/util_tests.dir/util/ghost_queue_test.cc.o.d"
  "CMakeFiles/util_tests.dir/util/ghost_table_test.cc.o"
  "CMakeFiles/util_tests.dir/util/ghost_table_test.cc.o.d"
  "CMakeFiles/util_tests.dir/util/hash_test.cc.o"
  "CMakeFiles/util_tests.dir/util/hash_test.cc.o.d"
  "CMakeFiles/util_tests.dir/util/histogram_test.cc.o"
  "CMakeFiles/util_tests.dir/util/histogram_test.cc.o.d"
  "CMakeFiles/util_tests.dir/util/intrusive_list_test.cc.o"
  "CMakeFiles/util_tests.dir/util/intrusive_list_test.cc.o.d"
  "CMakeFiles/util_tests.dir/util/params_test.cc.o"
  "CMakeFiles/util_tests.dir/util/params_test.cc.o.d"
  "CMakeFiles/util_tests.dir/util/rng_test.cc.o"
  "CMakeFiles/util_tests.dir/util/rng_test.cc.o.d"
  "CMakeFiles/util_tests.dir/util/thread_pool_test.cc.o"
  "CMakeFiles/util_tests.dir/util/thread_pool_test.cc.o.d"
  "CMakeFiles/util_tests.dir/util/zipf_test.cc.o"
  "CMakeFiles/util_tests.dir/util/zipf_test.cc.o.d"
  "util_tests"
  "util_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
