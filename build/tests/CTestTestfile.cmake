# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(util_tests "/root/repo/build/tests/util_tests")
set_tests_properties(util_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;s3fifo_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(trace_tests "/root/repo/build/tests/trace_tests")
set_tests_properties(trace_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;23;s3fifo_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(policy_tests "/root/repo/build/tests/policy_tests")
set_tests_properties(policy_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;33;s3fifo_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_tests "/root/repo/build/tests/sim_tests")
set_tests_properties(sim_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;47;s3fifo_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(concurrent_tests "/root/repo/build/tests/concurrent_tests")
set_tests_properties(concurrent_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;57;s3fifo_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(flash_tests "/root/repo/build/tests/flash_tests")
set_tests_properties(flash_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;64;s3fifo_test;/root/repo/tests/CMakeLists.txt;0;")
