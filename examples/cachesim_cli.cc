// Command-line cache simulator (the libCacheSim-style entry point):
//
//   cachesim_cli --trace FILE --policy NAME --size N [options]
//   cachesim_cli --dataset NAME --policy NAME [--size-frac F]
//
// Options:
//   --trace FILE        binary (.bin) or CSV (.csv) trace
//   --dataset NAME      synthetic dataset profile instead of a file
//   --policy NAME       eviction policy (default s3fifo); "all" sweeps all
//   --size N            cache capacity in objects
//   --size-frac F       capacity as a fraction of the trace footprint (0.1)
//   --params STR        policy parameters, "k=v,k=v"
//   --bytes             byte-capacity mode (uses object sizes)
//   --warmup N          requests excluded from metrics
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/core/cache_factory.h"
#include "src/sim/simulator.h"
#include "src/trace/next_access.h"
#include "src/trace/trace_io.h"
#include "src/workload/dataset_profiles.h"

namespace {

using namespace s3fifo;

struct Options {
  std::string trace_path;
  std::string dataset;
  std::string policy = "s3fifo";
  std::string params;
  uint64_t size = 0;
  double size_frac = 0.1;
  bool bytes = false;
  uint64_t warmup = 0;
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--trace FILE | --dataset NAME) [--policy NAME|all] "
               "[--size N | --size-frac F] [--params K=V,..] [--bytes] [--warmup N]\n",
               argv0);
  std::exit(2);
}

Options Parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
      }
      return argv[++i];
    };
    if (arg == "--trace") {
      o.trace_path = next();
    } else if (arg == "--dataset") {
      o.dataset = next();
    } else if (arg == "--policy") {
      o.policy = next();
    } else if (arg == "--params") {
      o.params = next();
    } else if (arg == "--size") {
      o.size = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--size-frac") {
      o.size_frac = std::atof(next());
    } else if (arg == "--bytes") {
      o.bytes = true;
    } else if (arg == "--warmup") {
      o.warmup = std::strtoull(next(), nullptr, 10);
    } else {
      Usage(argv[0]);
    }
  }
  if (o.trace_path.empty() == o.dataset.empty()) {
    Usage(argv[0]);  // exactly one source required
  }
  return o;
}

void RunOne(const Trace& trace, const Options& o, const std::string& policy,
            uint64_t capacity) {
  CacheConfig config;
  config.capacity = capacity;
  config.count_based = !o.bytes;
  config.params = o.params;
  auto cache = CreateCache(policy, config);
  SimOptions sim_options;
  sim_options.warmup_requests = o.warmup;
  const SimResult r = Simulate(trace, *cache, sim_options);
  std::printf("%-14s capacity=%-12lu miss_ratio=%.4f byte_miss_ratio=%.4f "
              "requests=%lu hits=%lu\n",
              policy.c_str(), (unsigned long)capacity, r.MissRatio(), r.ByteMissRatio(),
              (unsigned long)r.requests, (unsigned long)r.hits);
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = Parse(argc, argv);
  try {
    Trace trace;
    if (!o.trace_path.empty()) {
      const bool csv =
          o.trace_path.size() > 4 && o.trace_path.substr(o.trace_path.size() - 4) == ".csv";
      trace = csv ? ReadCsvTrace(o.trace_path) : ReadBinaryTrace(o.trace_path);
    } else {
      trace = GenerateDatasetTrace(DatasetByName(o.dataset), 0, 1.0);
    }
    AnnotateNextAccess(trace);

    const TraceStats& stats = trace.Stats();
    const uint64_t footprint = o.bytes ? stats.footprint_bytes : stats.num_objects;
    const uint64_t capacity =
        o.size > 0 ? o.size
                   : std::max<uint64_t>(static_cast<uint64_t>(footprint * o.size_frac), 2);
    std::printf("trace: %lu requests, %lu objects, footprint %lu %s\n",
                (unsigned long)stats.num_requests, (unsigned long)stats.num_objects,
                (unsigned long)footprint, o.bytes ? "bytes" : "objects");

    if (o.policy == "all") {
      for (const std::string& name : AllCacheNames()) {
        RunOne(trace, o, name, capacity);
      }
    } else {
      RunOne(trace, o, o.policy, capacity);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
