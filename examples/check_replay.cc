// Reproducer tool for the differential correctness harness.
//
//   check_replay <file.repro>
//       Re-runs a saved reproducer (see src/check/replay_file.h) and prints
//       the divergence. Exit code 1 if the divergence still reproduces.
//
//   check_replay --fuzz <policy> [options]
//       Fuzzes the policy against its reference oracle. On divergence the
//       trace is shrunk and written next to the cwd as <policy>.repro.
//
//       --seed S        fuzzer seed (default 1)
//       --requests N    requests per run (default 100000)
//       --capacity C    cache capacity (default 64)
//       --bytes         byte-based instead of count-based
//       --params P      CacheConfig params string (default "")
//       --out FILE      reproducer path (default <policy>.repro)
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "src/check/differential.h"
#include "src/check/replay_file.h"
#include "src/check/shrinker.h"
#include "src/check/trace_fuzzer.h"

namespace {

using s3fifo::CacheConfig;
using s3fifo::Request;
using s3fifo::check::Divergence;
using s3fifo::check::FuzzConfig;
using s3fifo::check::GenerateFuzzRequests;
using s3fifo::check::ReplayCase;
using s3fifo::check::RunDifferential;
using s3fifo::check::ShrinkStats;
using s3fifo::check::ShrinkTrace;

int Replay(const std::string& path) {
  const ReplayCase replay = s3fifo::check::ReadReplayFile(path);
  std::cout << "replaying " << replay.requests.size() << " requests against '"
            << replay.policy << "' (capacity=" << replay.config.capacity
            << (replay.config.count_based ? ", objects" : ", bytes") << ")\n";
  const Divergence div = RunDifferential(replay.requests, replay.policy, replay.config);
  if (!div) {
    std::cout << "no divergence: the optimized policy matches its oracle.\n";
    return 0;
  }
  std::cout << "DIVERGENCE " << div.what << "\n";
  return 1;
}

int Fuzz(const std::string& policy, const FuzzConfig& fuzz, const CacheConfig& config,
         const std::string& out_path) {
  const std::vector<Request> requests = GenerateFuzzRequests(fuzz);
  std::cout << "fuzzing '" << policy << "': " << requests.size() << " requests, seed "
            << fuzz.seed << "\n";
  const Divergence div = RunDifferential(requests, policy, config);
  if (!div) {
    std::cout << "ok: no divergence.\n";
    return 0;
  }
  std::cout << "DIVERGENCE " << div.what << "\nshrinking...\n";

  // Only the prefix up to the divergence matters; shrink from there.
  std::vector<Request> prefix(requests.begin(), requests.begin() + div.index + 1);
  ShrinkStats stats;
  const std::vector<Request> shrunk = ShrinkTrace(
      prefix,
      [&](const std::vector<Request>& candidate) {
        return RunDifferential(candidate, policy, config).found;
      },
      20000, &stats);
  std::cout << "shrunk " << stats.initial_size << " -> " << stats.final_size << " requests in "
            << stats.probes << " probes\n";

  ReplayCase replay;
  replay.policy = policy;
  replay.config = config;
  replay.fuzz_seed = fuzz.seed;
  replay.requests = shrunk;
  s3fifo::check::WriteReplayFile(replay, out_path);
  std::cout << "reproducer written to " << out_path << "\n";
  std::cout << RunDifferential(shrunk, policy, config).what << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    std::cerr << "usage: check_replay <file.repro> | check_replay --fuzz <policy> [options]\n";
    return 2;
  }

  try {
    if (args[0] != "--fuzz") {
      return Replay(args[0]);
    }
    if (args.size() < 2) {
      std::cerr << "--fuzz requires a policy name\n";
      return 2;
    }
    const std::string policy = args[1];
    FuzzConfig fuzz;
    fuzz.num_requests = 100000;
    CacheConfig config;
    config.capacity = 64;
    std::string out_path = policy + ".repro";
    for (size_t i = 2; i < args.size(); ++i) {
      auto next = [&]() -> std::string {
        if (i + 1 >= args.size()) {
          throw std::invalid_argument(args[i] + " requires a value");
        }
        return args[++i];
      };
      if (args[i] == "--seed") {
        fuzz.seed = std::stoull(next());
      } else if (args[i] == "--requests") {
        fuzz.num_requests = std::stoull(next());
      } else if (args[i] == "--capacity") {
        config.capacity = std::stoull(next());
      } else if (args[i] == "--bytes") {
        config.count_based = false;
      } else if (args[i] == "--params") {
        config.params = next();
      } else if (args[i] == "--out") {
        out_path = next();
      } else {
        throw std::invalid_argument("unknown option: " + args[i]);
      }
    }
    fuzz.capacity = config.capacity;
    fuzz.count_based = config.count_based;
    return Fuzz(policy, fuzz, config, out_path);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
