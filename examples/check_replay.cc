// Reproducer tool for the differential correctness harness.
//
//   check_replay <file.repro>
//       Re-runs a saved reproducer (see src/check/replay_file.h) and prints
//       the divergence. Exit code 1 if the divergence still reproduces.
//
//   check_replay --fuzz <policy> [options]
//       Fuzzes the policy against its reference oracle. On divergence the
//       trace is shrunk and written next to the cwd as <policy>.repro.
//
//       --seed S        fuzzer seed (default 1)
//       --requests N    requests per run (default 100000)
//       --capacity C    cache capacity (default 64)
//       --bytes         byte-based instead of count-based
//       --params P      CacheConfig params string (default "")
//       --out FILE      reproducer path (default <policy>.repro)
//
//   check_replay --fuzz-flash [options]
//       Fuzzes LogStructuredFlashCache against the naive flash oracle.
//
//       --seed S         fuzzer seed (default 1)
//       --requests N     requests per run (default 100000)
//       --flash SPEC     LogFlashCacheConfig "k=v,..." string
//       --admission A    none|probabilistic|flashield|s3fifo (default s3fifo)
//       --horizon N      admission reuse horizon (default 1000)
//       --admission-seed S   (default 17)
//       --resizes P      resize the segment budget every P requests
//       --out FILE       reproducer path (default flash.repro)
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "src/check/differential.h"
#include "src/check/flash_oracle.h"
#include "src/check/replay_file.h"
#include "src/check/shrinker.h"
#include "src/check/trace_fuzzer.h"

namespace {

using s3fifo::CacheConfig;
using s3fifo::Request;
using s3fifo::check::Divergence;
using s3fifo::check::FuzzConfig;
using s3fifo::check::GenerateFuzzRequests;
using s3fifo::check::ReplayCase;
using s3fifo::check::RunDifferential;
using s3fifo::check::ShrinkStats;
using s3fifo::check::ShrinkTrace;

s3fifo::check::FlashResizeSchedule ScheduleOf(const ReplayCase& replay) {
  s3fifo::check::FlashResizeSchedule resizes;
  resizes.period = replay.resize_period;
  resizes.seed = replay.resize_seed;
  resizes.min_segments = replay.resize_min_segments;
  resizes.span = replay.resize_span;
  return resizes;
}

Divergence RunReplay(const ReplayCase& replay) {
  if (replay.mode == "flash") {
    return s3fifo::check::RunFlashDifferential(
        replay.requests, s3fifo::ParseLogFlashConfig(replay.flash_config), replay.admission,
        replay.reuse_horizon, replay.admission_seed, ScheduleOf(replay));
  }
  return RunDifferential(replay.requests, replay.policy, replay.config);
}

int Replay(const std::string& path) {
  const ReplayCase replay = s3fifo::check::ReadReplayFile(path);
  if (replay.mode == "flash") {
    std::cout << "replaying " << replay.requests.size() << " requests against the flash cache ("
              << replay.flash_config << ", admission=" << replay.admission << ")\n";
  } else {
    std::cout << "replaying " << replay.requests.size() << " requests against '"
              << replay.policy << "' (capacity=" << replay.config.capacity
              << (replay.config.count_based ? ", objects" : ", bytes") << ")\n";
  }
  const Divergence div = RunReplay(replay);
  if (!div) {
    std::cout << "no divergence: the optimized side matches its oracle.\n";
    return 0;
  }
  std::cout << "DIVERGENCE " << div.what << "\n";
  return 1;
}

int Fuzz(const std::string& policy, const FuzzConfig& fuzz, const CacheConfig& config,
         const std::string& out_path) {
  const std::vector<Request> requests = GenerateFuzzRequests(fuzz);
  std::cout << "fuzzing '" << policy << "': " << requests.size() << " requests, seed "
            << fuzz.seed << "\n";
  const Divergence div = RunDifferential(requests, policy, config);
  if (!div) {
    std::cout << "ok: no divergence.\n";
    return 0;
  }
  std::cout << "DIVERGENCE " << div.what << "\nshrinking...\n";

  // Only the prefix up to the divergence matters; shrink from there.
  std::vector<Request> prefix(requests.begin(), requests.begin() + div.index + 1);
  ShrinkStats stats;
  const std::vector<Request> shrunk = ShrinkTrace(
      prefix,
      [&](const std::vector<Request>& candidate) {
        return RunDifferential(candidate, policy, config).found;
      },
      20000, &stats);
  std::cout << "shrunk " << stats.initial_size << " -> " << stats.final_size << " requests in "
            << stats.probes << " probes\n";

  ReplayCase replay;
  replay.policy = policy;
  replay.config = config;
  replay.fuzz_seed = fuzz.seed;
  replay.requests = shrunk;
  s3fifo::check::WriteReplayFile(replay, out_path);
  std::cout << "reproducer written to " << out_path << "\n";
  std::cout << RunDifferential(shrunk, policy, config).what << "\n";
  return 1;
}

int FuzzFlash(ReplayCase replay, const s3fifo::check::FlashFuzzConfig& fuzz,
              const std::string& out_path) {
  const std::vector<Request> requests = s3fifo::check::GenerateFlashFuzzRequests(fuzz);
  std::cout << "fuzzing flash cache (" << replay.flash_config
            << ", admission=" << replay.admission << "): " << requests.size()
            << " requests, seed " << fuzz.seed << "\n";
  replay.requests = requests;
  const Divergence div = RunReplay(replay);
  if (!div) {
    std::cout << "ok: no divergence.\n";
    return 0;
  }
  std::cout << "DIVERGENCE " << div.what << "\nshrinking...\n";

  std::vector<Request> prefix(requests.begin(), requests.begin() + div.index + 1);
  ShrinkStats stats;
  const std::vector<Request> shrunk = ShrinkTrace(
      prefix,
      [&](const std::vector<Request>& candidate) {
        ReplayCase probe = replay;
        probe.requests = candidate;
        return RunReplay(probe).found;
      },
      20000, &stats);
  std::cout << "shrunk " << stats.initial_size << " -> " << stats.final_size << " requests in "
            << stats.probes << " probes\n";

  replay.requests = shrunk;
  s3fifo::check::WriteReplayFile(replay, out_path);
  std::cout << "reproducer written to " << out_path << "\n";
  std::cout << RunReplay(replay).what << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    std::cerr << "usage: check_replay <file.repro> | check_replay --fuzz <policy> [options]\n";
    return 2;
  }

  try {
    if (args[0] == "--fuzz-flash") {
      ReplayCase replay;
      replay.mode = "flash";
      s3fifo::LogFlashCacheConfig flash;
      flash.dram_capacity_bytes = 4096;
      flash.log.num_segments = 8;
      replay.flash_config = s3fifo::FormatLogFlashConfig(flash);
      replay.admission = "s3fifo";
      replay.reuse_horizon = 1000;
      replay.admission_seed = 17;
      s3fifo::check::FlashFuzzConfig fuzz;
      fuzz.num_requests = 100000;
      std::string out_path = "flash.repro";
      for (size_t i = 1; i < args.size(); ++i) {
        auto next = [&]() -> std::string {
          if (i + 1 >= args.size()) {
            throw std::invalid_argument(args[i] + " requires a value");
          }
          return args[++i];
        };
        if (args[i] == "--seed") {
          fuzz.seed = std::stoull(next());
        } else if (args[i] == "--requests") {
          fuzz.num_requests = std::stoull(next());
        } else if (args[i] == "--flash") {
          replay.flash_config = next();
        } else if (args[i] == "--admission") {
          replay.admission = next();
        } else if (args[i] == "--horizon") {
          replay.reuse_horizon = std::stoull(next());
        } else if (args[i] == "--admission-seed") {
          replay.admission_seed = std::stoull(next());
        } else if (args[i] == "--resizes") {
          replay.resize_period = std::stoull(next());
          replay.resize_seed = fuzz.seed * 2 + 1;
        } else if (args[i] == "--out") {
          out_path = next();
        } else {
          throw std::invalid_argument("unknown option: " + args[i]);
        }
      }
      const s3fifo::LogFlashCacheConfig parsed =
          s3fifo::ParseLogFlashConfig(replay.flash_config);
      replay.fuzz_seed = fuzz.seed;
      fuzz.small_object_threshold = parsed.small_object_threshold;
      fuzz.segment_bytes = parsed.log.segment_bytes;
      return FuzzFlash(replay, fuzz, out_path);
    }
    if (args[0] != "--fuzz") {
      return Replay(args[0]);
    }
    if (args.size() < 2) {
      std::cerr << "--fuzz requires a policy name\n";
      return 2;
    }
    const std::string policy = args[1];
    FuzzConfig fuzz;
    fuzz.num_requests = 100000;
    CacheConfig config;
    config.capacity = 64;
    std::string out_path = policy + ".repro";
    for (size_t i = 2; i < args.size(); ++i) {
      auto next = [&]() -> std::string {
        if (i + 1 >= args.size()) {
          throw std::invalid_argument(args[i] + " requires a value");
        }
        return args[++i];
      };
      if (args[i] == "--seed") {
        fuzz.seed = std::stoull(next());
      } else if (args[i] == "--requests") {
        fuzz.num_requests = std::stoull(next());
      } else if (args[i] == "--capacity") {
        config.capacity = std::stoull(next());
      } else if (args[i] == "--bytes") {
        config.count_based = false;
      } else if (args[i] == "--params") {
        config.params = next();
      } else if (args[i] == "--out") {
        out_path = next();
      } else {
        throw std::invalid_argument("unknown option: " + args[i]);
      }
    }
    fuzz.capacity = config.capacity;
    fuzz.count_based = config.count_based;
    return Fuzz(policy, fuzz, config, out_path);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
