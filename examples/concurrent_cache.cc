// Concurrent cache demo: closed-loop replay against the thread-safe caches
// (paper §5.3), printing throughput and hit ratio.
//
//   $ ./concurrent_cache [threads]   (default 4)
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/concurrent/concurrent_clock.h"
#include "src/concurrent/concurrent_lru.h"
#include "src/concurrent/concurrent_s3fifo.h"
#include "src/concurrent/concurrent_s3fifo_ring.h"
#include "src/concurrent/concurrent_tinylfu.h"
#include "src/concurrent/replay.h"

int main(int argc, char** argv) {
  using namespace s3fifo;
  const unsigned threads = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;

  ConcurrentCacheConfig config;
  config.capacity_objects = 1 << 16;
  config.value_size = 64;

  ReplayOptions options;
  options.num_threads = threads;
  options.requests_per_thread = 500000;
  options.num_objects = 1 << 18;
  options.zipf_alpha = 1.0;

  std::printf("replay: %u threads x %lu requests, Zipf(1.0) over %lu objects, cache %lu\n\n",
              threads, (unsigned long)options.requests_per_thread,
              (unsigned long)options.num_objects, (unsigned long)config.capacity_objects);
  std::printf("%-16s %12s %10s\n", "cache", "Mops/s", "hit-ratio");

  std::unique_ptr<ConcurrentCache> caches[] = {
      std::make_unique<ConcurrentLruStrict>(config),
      std::make_unique<ConcurrentLruOptimized>(config),
      std::make_unique<ConcurrentClock>(config),
      std::make_unique<ConcurrentTinyLfu>(config),
      std::make_unique<ConcurrentS3Fifo>(config),
      std::make_unique<ConcurrentS3FifoRing>(config),
  };
  for (auto& cache : caches) {
    const ReplayResult r = ReplayClosedLoop(*cache, options);
    std::printf("%-16s %12.2f %10.4f\n", cache->Name().c_str(), r.throughput_mops,
                r.hit_ratio);
  }
  return 0;
}
