// Flash-cache admission demo (paper §5.4): compare write bytes and miss
// ratio across admission policies on a CDN-like trace.
//
//   $ ./flash_admission
#include <cstdio>

#include "src/flash/flash_cache.h"
#include "src/workload/dataset_profiles.h"

int main() {
  using namespace s3fifo;

  Trace trace = GenerateDatasetTrace(DatasetByName("wiki"), 0, 1.0);
  const uint64_t footprint = trace.Stats().footprint_bytes;
  const uint64_t flash = footprint / 10;
  const uint64_t dram = flash / 100;  // 1% DRAM

  std::printf("wiki-like trace: %.1f MB footprint, flash %.1f MB, DRAM %.1f MB\n\n",
              footprint / 1048576.0, flash / 1048576.0, dram / 1048576.0);
  std::printf("%-16s %14s %12s %12s\n", "admission", "write-bytes(n)", "miss-ratio",
              "flash-hits");

  for (const char* scheme : {"none", "probabilistic", "flashield", "s3fifo"}) {
    FlashCacheConfig config;
    config.flash_capacity_bytes = flash;
    config.dram_capacity_bytes = dram;
    config.dram_discipline = std::string(scheme) == "s3fifo" ? DramDiscipline::kSmallFifo
                                                             : DramDiscipline::kLru;
    auto admission = CreateAdmissionPolicy(scheme, trace.size() / 10, 3);
    const FlashCacheStats stats = SimulateFlashCache(trace, config, std::move(admission));
    std::printf("%-16s %14.3f %12.4f %12lu\n", scheme,
                static_cast<double>(stats.flash_write_bytes) / static_cast<double>(footprint),
                stats.MissRatio(), (unsigned long)stats.flash_hits);
  }
  std::printf("\nthe s3fifo small-FIFO filter should cut write bytes vs 'none' while\n"
              "keeping the miss ratio at or below the other admission schemes.\n");
  return 0;
}
