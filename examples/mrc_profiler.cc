// Miss-ratio-curve profiler: exact curves for selected policies plus the
// SHARDS-sampled approximation (§6.2.3) with its speedup.
//
//   $ ./mrc_profiler [dataset-name]   (default: cloudphysics)
#include <chrono>
#include <cstdio>
#include <string>

#include "src/analysis/mrc.h"
#include "src/analysis/shards.h"
#include "src/workload/dataset_profiles.h"

int main(int argc, char** argv) {
  using namespace s3fifo;
  const std::string dataset = argc > 1 ? argv[1] : "cloudphysics";

  Trace trace = GenerateDatasetTrace(DatasetByName(dataset), 0, 1.0);
  const uint64_t footprint = trace.Stats().num_objects;
  std::vector<uint64_t> sizes;
  for (double f : {0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4}) {
    sizes.push_back(std::max<uint64_t>(static_cast<uint64_t>(footprint * f), 10));
  }

  std::printf("%s-like trace: %lu requests, %lu objects\n\n", dataset.c_str(),
              (unsigned long)trace.size(), (unsigned long)footprint);
  std::printf("%-10s", "size");
  for (uint64_t s : sizes) {
    std::printf(" %8lu", (unsigned long)s);
  }
  std::printf("\n");

  for (const char* policy : {"fifo", "lru", "s3fifo"}) {
    const auto curve = ComputeMrc(trace, policy, sizes);
    std::printf("%-10s", policy);
    for (const MrcPoint& p : curve) {
      std::printf(" %8.4f", p.miss_ratio);
    }
    std::printf("\n");
  }

  // SHARDS at 10% sampling: near-identical curve, ~10x faster.
  const auto t0 = std::chrono::steady_clock::now();
  std::printf("%-10s", "lru~shards");
  for (uint64_t s : sizes) {
    std::printf(" %8.4f", ShardsMissRatio(trace, "lru", s, 0.1));
  }
  const auto t1 = std::chrono::steady_clock::now();
  std::printf("  (%.0f ms)\n", std::chrono::duration<double, std::milli>(t1 - t0).count());
  return 0;
}
