// Miss-ratio-curve profiler: exact curves for selected policies plus the
// SHARDS-sampled approximation (§6.2.3) with its speedup.
//
// FIFO-family curves come from the one-pass MRC engine (the whole size grid
// in a single trace traversal); policies the engine does not cover fall back
// to one simulation per size, and the SHARDS row streams a spatial sample
// through scaled-down caches in one pass.
//
//   $ ./mrc_profiler [dataset-name]   (default: cloudphysics)
#include <chrono>
#include <cstdio>
#include <string>

#include "src/analysis/mrc.h"
#include "src/analysis/mrc_engine.h"
#include "src/analysis/shards.h"
#include "src/trace/trace_view.h"
#include "src/workload/dataset_profiles.h"

int main(int argc, char** argv) {
  using namespace s3fifo;
  const std::string dataset = argc > 1 ? argv[1] : "cloudphysics";

  Trace trace = GenerateDatasetTrace(DatasetByName(dataset), 0, 1.0);
  const TraceView view = TraceView::Borrow(trace);
  const uint64_t footprint = trace.Stats().num_objects;
  std::vector<uint64_t> sizes;
  for (double f : {0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4}) {
    sizes.push_back(std::max<uint64_t>(static_cast<uint64_t>(footprint * f), 10));
  }

  std::printf("%s-like trace: %lu requests, %lu objects\n\n", dataset.c_str(),
              (unsigned long)trace.size(), (unsigned long)footprint);
  std::printf("%-10s", "size");
  for (uint64_t s : sizes) {
    std::printf(" %8lu", (unsigned long)s);
  }
  std::printf("\n");

  CacheConfig config;
  config.capacity = 1;
  config.count_based = true;
  for (const char* policy : {"fifo", "sieve", "s3fifo", "lru"}) {
    const auto t0 = std::chrono::steady_clock::now();
    // kAuto: one pass over the trace for the FIFO family, per-size
    // simulations for lru.
    const MrcCurve curve = ComputeMrcCurve(view, policy, sizes, {MrcMode::kAuto, config});
    const auto t1 = std::chrono::steady_clock::now();
    std::printf("%-10s", policy);
    for (double mr : curve.miss_ratios) {
      std::printf(" %8.4f", mr);
    }
    std::printf("  (%s, %.0f ms)\n", MrcEngineSupports(policy, config) ? "one-pass" : "per-size",
                std::chrono::duration<double, std::milli>(t1 - t0).count());
  }

  // SHARDS at 10% sampling: near-identical lru curve from one pass over the
  // sampled stream.
  const auto t0 = std::chrono::steady_clock::now();
  const MrcCurve sampled = ShardsMrc(view, "lru", sizes, 0.1, config);
  const auto t1 = std::chrono::steady_clock::now();
  std::printf("%-10s", "lru~shards");
  for (double mr : sampled.miss_ratios) {
    std::printf(" %8.4f", mr);
  }
  std::printf("  (sampled, %.0f ms)\n",
              std::chrono::duration<double, std::milli>(t1 - t0).count());
  return 0;
}
