// Compare every registered eviction policy on one workload — the smallest
// version of the paper's Fig. 6 experiment.
//
//   $ ./policy_comparison [dataset-name]   (default: twitter)
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/cache_factory.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"
#include "src/trace/next_access.h"
#include "src/workload/dataset_profiles.h"

int main(int argc, char** argv) {
  using namespace s3fifo;
  const std::string dataset = argc > 1 ? argv[1] : "twitter";

  Trace trace = GenerateDatasetTrace(DatasetByName(dataset), 0, 0.5);
  AnnotateNextAccess(trace);  // lets the offline-optimal Belady run too
  const uint64_t capacity = std::max<uint64_t>(trace.Stats().num_objects / 10, 100);

  std::printf("dataset %s-like: %lu requests, %lu objects, cache %lu objects\n\n",
              dataset.c_str(), (unsigned long)trace.size(),
              (unsigned long)trace.Stats().num_objects, (unsigned long)capacity);

  CacheConfig config;
  config.capacity = capacity;
  const double mr_fifo = Simulate(trace, *CreateCache("fifo", config)).MissRatio();

  std::vector<std::pair<double, std::string>> rows;
  for (const std::string& name : AllCacheNames()) {
    auto cache = CreateCache(name, config);
    rows.emplace_back(Simulate(trace, *cache).MissRatio(), name);
  }
  std::sort(rows.begin(), rows.end());
  std::printf("%-14s %10s %12s\n", "policy", "miss-ratio", "vs-fifo");
  for (const auto& [mr, name] : rows) {
    std::printf("%-14s %10.4f %+11.2f%%\n", name.c_str(), mr,
                100.0 * MissRatioReduction(mr, mr_fifo));
  }
  return 0;
}
