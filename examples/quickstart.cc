// Quickstart: create an S3-FIFO cache, feed it requests, inspect results.
//
//   $ ./quickstart
//
// Shows the three core APIs: CacheConfig/CreateCache, Request/Get, and the
// workload generator + simulator for batch evaluation.
#include <cstdio>

#include "src/core/cache_factory.h"
#include "src/policies/s3fifo.h"
#include "src/sim/simulator.h"
#include "src/workload/zipf_workload.h"

int main() {
  using namespace s3fifo;

  // 1. A cache is a policy name plus a configuration.
  CacheConfig config;
  config.capacity = 1000;  // objects (count-based, the paper's slab model)
  config.params = "small_ratio=0.1";
  auto cache = CreateCache("s3fifo", config);

  // 2. Drive it request by request.
  Request req;
  req.id = 42;
  const bool first = cache->Get(req);   // miss: object admitted
  const bool second = cache->Get(req);  // hit
  std::printf("request 42: first=%s second=%s\n", first ? "hit" : "miss",
              second ? "hit" : "miss");

  // 3. Or simulate a whole synthetic workload.
  ZipfWorkloadConfig workload;
  workload.num_objects = 10000;
  workload.num_requests = 200000;
  workload.alpha = 1.0;
  workload.new_object_fraction = 0.1;  // CDN-style one-hit wonders
  Trace trace = GenerateZipfTrace(workload);

  const SimResult result = Simulate(trace, *cache);
  std::printf("zipf trace: %lu requests, miss ratio %.4f\n",
              (unsigned long)result.requests, result.MissRatio());

  // 4. S3-FIFO exposes its internal flow counters.
  auto* s3 = dynamic_cast<S3FifoCache*>(cache.get());
  const S3FifoCache::Stats& stats = s3->stats();
  std::printf("S3-FIFO internals: %lu inserted to S, %lu promoted to M, %lu quick-demoted,\n"
              "                   %lu ghost-hit inserts, %lu M reinsertions\n",
              (unsigned long)stats.inserted_to_small, (unsigned long)stats.moved_to_main,
              (unsigned long)stats.demoted_to_ghost, (unsigned long)stats.ghost_hit_inserts,
              (unsigned long)stats.main_reinsertions);
  return 0;
}
