// Trace analysis walkthrough: generate (or load) a trace, then run the
// paper's §3 analyses — one-hit-wonder curve and frequency-at-eviction —
// and write the trace to disk in both supported formats.
//
//   $ ./trace_analysis [trace.bin|trace.csv]   (default: synthetic msr-like)
#include <cstdio>
#include <string>

#include "src/analysis/eviction_age.h"
#include "src/analysis/one_hit_wonder.h"
#include "src/core/cache_factory.h"
#include "src/trace/next_access.h"
#include "src/trace/trace_io.h"
#include "src/workload/dataset_profiles.h"

int main(int argc, char** argv) {
  using namespace s3fifo;

  Trace trace;
  if (argc > 1) {
    const std::string path = argv[1];
    trace = path.size() > 4 && path.substr(path.size() - 4) == ".csv" ? ReadCsvTrace(path)
                                                                      : ReadBinaryTrace(path);
    std::printf("loaded %s: %lu requests\n", path.c_str(), (unsigned long)trace.size());
  } else {
    trace = GenerateDatasetTrace(DatasetByName("msr"), 0, 1.0);
    WriteBinaryTrace(trace, "/tmp/msr_like.bin");
    WriteCsvTrace(trace, "/tmp/msr_like.csv");
    std::printf("generated msr-like trace (%lu requests); wrote /tmp/msr_like.{bin,csv}\n",
                (unsigned long)trace.size());
  }

  const TraceStats& stats = trace.Stats();
  std::printf("\nobjects: %lu   gets: %lu   sets: %lu   deletes: %lu\n",
              (unsigned long)stats.num_objects, (unsigned long)stats.num_gets,
              (unsigned long)stats.num_sets, (unsigned long)stats.num_deletes);

  std::printf("\none-hit-wonder ratio vs sequence length (§3.1):\n");
  for (double f : {1.0, 0.5, 0.1, 0.01}) {
    std::printf("  %5.1f%% of objects: %.3f\n", f * 100,
                SubSequenceOneHitWonderRatio(trace, f, 15, 7));
  }

  AnnotateNextAccess(trace);
  const uint64_t capacity = std::max<uint64_t>(stats.num_objects / 10, 100);
  std::printf("\nfrequency at eviction, cache = 10%% of footprint (Fig. 4):\n");
  for (const char* policy : {"lru", "belady", "s3fifo"}) {
    CacheConfig config;
    config.capacity = capacity;
    auto cache = CreateCache(policy, config);
    const EvictionProfile p = CollectEvictionProfile(trace, *cache, 4);
    std::printf("  %-8s missr=%.4f  zero-reuse-evictions=%.1f%%\n", policy, p.miss_ratio,
                100.0 * (p.freq_at_eviction.empty() ? 0.0 : p.freq_at_eviction[0]));
  }
  return 0;
}
