#include "src/analysis/demotion.h"

#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "src/analysis/eviction_age.h"
#include "src/core/cache_factory.h"
#include "src/policies/arc.h"
#include "src/policies/s3fifo.h"
#include "src/policies/tinylfu.h"

namespace s3fifo {

bool TrySetDemotionListener(Cache& cache, DemotionListener listener) {
  if (auto* s3 = dynamic_cast<S3FifoCache*>(&cache)) {
    s3->set_demotion_listener(std::move(listener));
    return true;
  }
  if (auto* tl = dynamic_cast<TinyLfuCache*>(&cache)) {
    tl->set_demotion_listener(std::move(listener));
    return true;
  }
  if (auto* arc = dynamic_cast<ArcCache*>(&cache)) {
    arc->set_demotion_listener(std::move(listener));
    return true;
  }
  return false;
}

double LruEvictionAge(const Trace& trace, const CacheConfig& config) {
  auto lru = CreateCache("lru", config);
  const EvictionProfile profile = CollectEvictionProfile(trace, *lru);
  return profile.mean_last_access_age;
}

DemotionMetrics MeasureDemotion(const Trace& trace, Cache& cache, double lru_eviction_age) {
  if (!trace.annotated()) {
    throw std::invalid_argument("MeasureDemotion requires AnnotateNextAccess(trace)");
  }

  // next_reuse_of[id]: the next-access index carried by the most recent
  // request to id, maintained while replaying so it is current whenever the
  // demotion listener fires.
  std::unordered_map<uint64_t, uint64_t> next_reuse_of;
  next_reuse_of.reserve(trace.size() / 4 + 16);

  struct StageExit {
    uint64_t leave_time;
    uint64_t next_reuse;  // absolute request index; kNeverAccessed if none
    bool promoted;
  };
  std::vector<StageExit> exits;
  double stage_time_sum = 0.0;

  const bool supported = TrySetDemotionListener(cache, [&](const DemotionEvent& ev) {
    StageExit e;
    e.leave_time = ev.leave_time;
    auto it = next_reuse_of.find(ev.id);
    e.next_reuse = it == next_reuse_of.end() ? kNeverAccessed : it->second;
    e.promoted = ev.promoted;
    exits.push_back(e);
    stage_time_sum += static_cast<double>(ev.leave_time - ev.enter_time);
  });
  if (!supported) {
    throw std::invalid_argument("policy '" + cache.Name() + "' has no demotion events");
  }

  uint64_t hits = 0;
  uint64_t measured = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    const Request& req = trace[i];
    next_reuse_of[req.id] = req.next_access;
    const bool hit = cache.Get(req);
    if (req.op != OpType::kDelete) {
      ++measured;
      if (hit) {
        ++hits;
      }
    }
  }
  TrySetDemotionListener(cache, nullptr);

  DemotionMetrics m;
  m.miss_ratio =
      measured == 0 ? 0.0 : 1.0 - static_cast<double>(hits) / static_cast<double>(measured);
  const double reuse_threshold =
      m.miss_ratio > 0.0 ? static_cast<double>(cache.capacity()) / m.miss_ratio
                         : static_cast<double>(trace.size());
  uint64_t correct = 0;
  for (const StageExit& e : exits) {
    if (e.promoted) {
      ++m.promotions;
      continue;
    }
    ++m.demotions;
    const double dist = e.next_reuse == kNeverAccessed
                            ? static_cast<double>(trace.size())
                            : static_cast<double>(e.next_reuse - e.leave_time);
    if (dist > reuse_threshold) {
      ++correct;
    }
  }
  m.mean_time_in_stage =
      exits.empty() ? 0.0 : stage_time_sum / static_cast<double>(exits.size());
  m.normalized_speed =
      m.mean_time_in_stage > 0.0 ? lru_eviction_age / m.mean_time_in_stage : 0.0;
  m.precision =
      m.demotions == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(m.demotions);
  return m;
}

}  // namespace s3fifo
