// Quick-demotion speed & precision (paper §6.1, Fig. 10, Table 2).
//
// Speed: normalized as (LRU eviction age) / (mean time objects spend in the
// probationary stage), both in logical time (request count). The LRU
// eviction age baseline is the mean age since last access at eviction —
// i.e. how long LRU would have kept the object around.
//
// Precision: a demotion (object leaves the probationary stage without being
// promoted) is *correct* if the object's next reuse is farther away than
// cache_size / miss_ratio requests — the same criterion as prior work [126]
// (the object would not have survived to its reuse anyway).
//
// Supported policies: s3fifo (S), tinylfu (window), arc (T1) — they expose a
// DemotionListener. The trace must be annotated (AnnotateNextAccess).
#ifndef SRC_ANALYSIS_DEMOTION_H_
#define SRC_ANALYSIS_DEMOTION_H_

#include <memory>
#include <string>

#include "src/core/cache.h"
#include "src/core/demotion.h"
#include "src/trace/trace.h"

namespace s3fifo {

struct DemotionMetrics {
  uint64_t demotions = 0;   // left the stage without promotion
  uint64_t promotions = 0;  // moved to the main region
  double mean_time_in_stage = 0.0;
  double normalized_speed = 0.0;  // lru_eviction_age / mean_time_in_stage
  double precision = 0.0;         // fraction of demotions that were correct
  double miss_ratio = 0.0;
};

// Attaches a demotion listener if the concrete policy supports one.
// Returns false for unsupported policies.
bool TrySetDemotionListener(Cache& cache, DemotionListener listener);

// Mean age-since-last-access of LRU evictions on this trace — the speed
// baseline.
double LruEvictionAge(const Trace& trace, const CacheConfig& config);

// Runs `cache` over the annotated trace and computes the §6.1 metrics.
// Throws std::invalid_argument if the trace is not annotated or the policy
// exposes no demotion events.
DemotionMetrics MeasureDemotion(const Trace& trace, Cache& cache, double lru_eviction_age);

}  // namespace s3fifo

#endif  // SRC_ANALYSIS_DEMOTION_H_
