#include "src/analysis/eviction_age.h"

#include <algorithm>

#include "src/sim/simulator.h"

namespace s3fifo {

EvictionProfile CollectEvictionProfile(const Trace& trace, Cache& cache,
                                       uint32_t max_freq_bucket) {
  std::vector<uint64_t> freq_counts(max_freq_bucket + 1, 0);
  uint64_t evictions = 0;
  double insert_age_sum = 0.0;
  double access_age_sum = 0.0;

  cache.set_eviction_listener([&](const EvictionEvent& ev) {
    if (ev.explicit_delete) {
      return;
    }
    ++evictions;
    const uint32_t bucket = std::min(ev.access_count, max_freq_bucket);
    ++freq_counts[bucket];
    insert_age_sum += static_cast<double>(ev.evict_time - ev.insert_time);
    access_age_sum += static_cast<double>(ev.evict_time - ev.last_access_time);
  });

  const SimResult sim = Simulate(trace, cache);
  cache.set_eviction_listener(nullptr);

  EvictionProfile profile;
  profile.evictions = evictions;
  profile.freq_at_eviction.assign(max_freq_bucket + 1, 0.0);
  if (evictions > 0) {
    for (uint32_t i = 0; i <= max_freq_bucket; ++i) {
      profile.freq_at_eviction[i] =
          static_cast<double>(freq_counts[i]) / static_cast<double>(evictions);
    }
    profile.mean_insert_age = insert_age_sum / static_cast<double>(evictions);
    profile.mean_last_access_age = access_age_sum / static_cast<double>(evictions);
  }
  profile.miss_ratio = sim.MissRatio();
  return profile;
}

}  // namespace s3fifo
