// Eviction-time analyses built on Cache's eviction listener:
//  * frequency-at-eviction distribution (paper Fig. 4) — how many requests
//    an object served after insertion before being evicted;
//  * eviction age statistics (time from insertion, and from last access, to
//    eviction) — the LRU eviction age is the baseline of the quick-demotion
//    speed metric (§6.1).
#ifndef SRC_ANALYSIS_EVICTION_AGE_H_
#define SRC_ANALYSIS_EVICTION_AGE_H_

#include <cstdint>
#include <vector>

#include "src/core/cache.h"
#include "src/trace/trace.h"

namespace s3fifo {

struct EvictionProfile {
  uint64_t evictions = 0;
  // freq_at_eviction[k] = fraction of evictions whose object had exactly k
  // post-insertion requests; the last bucket aggregates ">= max".
  std::vector<double> freq_at_eviction;
  double mean_insert_age = 0.0;       // evict_time - insert_time
  double mean_last_access_age = 0.0;  // evict_time - last_access_time
  double miss_ratio = 0.0;
};

// Runs the trace through the cache, collecting the eviction profile.
// `max_freq_bucket` controls the histogram width (Fig. 4 uses 0..8+).
EvictionProfile CollectEvictionProfile(const Trace& trace, Cache& cache,
                                       uint32_t max_freq_bucket = 8);

}  // namespace s3fifo

#endif  // SRC_ANALYSIS_EVICTION_AGE_H_
