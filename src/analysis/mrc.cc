#include "src/analysis/mrc.h"

#include "src/core/cache_factory.h"
#include "src/sim/simulator.h"

namespace s3fifo {

std::vector<MrcPoint> ComputeMrc(const Trace& trace, const std::string& policy,
                                 const std::vector<uint64_t>& sizes,
                                 const CacheConfig& base_config) {
  std::vector<MrcPoint> curve;
  curve.reserve(sizes.size());
  for (uint64_t size : sizes) {
    CacheConfig config = base_config;
    config.capacity = size;
    auto cache = CreateCache(policy, config);
    const SimResult r = Simulate(trace, *cache);
    curve.push_back({size, r.MissRatio()});
  }
  return curve;
}

std::vector<SimResult> ComputeMrcResults(const TraceView& view, const std::string& policy,
                                         const std::vector<uint64_t>& sizes,
                                         const CacheConfig& base_config,
                                         uint64_t warmup_requests) {
  std::vector<SimResult> results;
  results.reserve(sizes.size());
  SimOptions options;
  options.warmup_requests = warmup_requests;
  for (uint64_t size : sizes) {
    CacheConfig config = base_config;
    config.capacity = size;
    auto cache = CreateCache(policy, config);
    results.push_back(Simulate(view, *cache, options));
  }
  return results;
}

}  // namespace s3fifo
