// Miss-ratio curves: miss ratio as a function of cache size for a given
// policy, either exact (one simulation per size) or approximated with
// SHARDS spatial sampling (paper §6.2.3: "downsized simulations using
// spatial sampling can be used").
//
// This header is the brute-force reference path: one full Simulate() per
// grid size. The FIFO-family fast path that computes the same counts in a
// single traversal lives in mrc_engine.h; the differential tests pin the
// two against each other.
#ifndef SRC_ANALYSIS_MRC_H_
#define SRC_ANALYSIS_MRC_H_

#include <string>
#include <vector>

#include "src/core/cache.h"
#include "src/sim/simulator.h"
#include "src/trace/trace.h"
#include "src/trace/trace_view.h"

namespace s3fifo {

struct MrcPoint {
  uint64_t cache_size = 0;
  double miss_ratio = 0.0;
};

// Exact curve: simulates the policy once per size.
std::vector<MrcPoint> ComputeMrc(const Trace& trace, const std::string& policy,
                                 const std::vector<uint64_t>& sizes,
                                 const CacheConfig& base_config = {1, true, "", 42});

// Same brute-force sweep, returning the full per-size counts (the reference
// the one-pass engine is verified against). Zero-copy over the view.
std::vector<SimResult> ComputeMrcResults(const TraceView& view, const std::string& policy,
                                         const std::vector<uint64_t>& sizes,
                                         const CacheConfig& base_config = {1, true, "", 42},
                                         uint64_t warmup_requests = 0);

}  // namespace s3fifo

#endif  // SRC_ANALYSIS_MRC_H_
