// Miss-ratio curves: miss ratio as a function of cache size for a given
// policy, either exact (one simulation per size) or approximated with
// SHARDS spatial sampling (paper §6.2.3: "downsized simulations using
// spatial sampling can be used").
#ifndef SRC_ANALYSIS_MRC_H_
#define SRC_ANALYSIS_MRC_H_

#include <string>
#include <vector>

#include "src/core/cache.h"
#include "src/trace/trace.h"

namespace s3fifo {

struct MrcPoint {
  uint64_t cache_size = 0;
  double miss_ratio = 0.0;
};

// Exact curve: simulates the policy once per size.
std::vector<MrcPoint> ComputeMrc(const Trace& trace, const std::string& policy,
                                 const std::vector<uint64_t>& sizes,
                                 const CacheConfig& base_config = {1, true, "", 42});

}  // namespace s3fifo

#endif  // SRC_ANALYSIS_MRC_H_
