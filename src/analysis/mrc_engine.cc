#include "src/analysis/mrc_engine.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <utility>

#include "src/analysis/mrc.h"
#include "src/analysis/shards.h"
#include "src/util/flat_map.h"
#include "src/util/params.h"

namespace s3fifo {
namespace {

constexpr size_t kMaxSizesPerPass = 64;  // one residency bit per grid size
constexpr uint32_t kPrefetchDistance = 16;

// FIFO queues as lazy-stale rings instead of doubly-linked lists: the paper's
// policies only ever insert at the head and pop (or reinsert) at the tail, so
// a circular buffer of (seq, object) with a strided sequence-stamp array gives
// the same order with sequential-memory pushes/pops — no per-miss pointer
// surgery into a K-strided link array, which is what blows the cache once the
// grid widens (eviction cost was dominated by DRAM misses on neighbor links).
// An entry is live iff the object is still in that queue AND its stamp for
// this size matches; deletes/moves just change the stamp or a membership bit
// and the dead entry is skipped (and eventually compacted) lazily — the same
// scheme util/ghost_queue.h uses to skip stale ids.
//
// The buffer is a power-of-two array addressed by monotone absolute indices
// (head/tail only ever advance; an entry's position is abs & mask). Callers
// compact before the stale fraction can outgrow the reserved capacity, so a
// push never overwrites a live entry.
class EntryRing {
 public:
  // Capacity for every compaction discipline used here: queues compact at
  // size > 2*live + 64 with live <= cap, ghosts drain at size > 2*cap + 16.
  void Reserve(uint64_t cap) {
    uint64_t n = 1;
    while (n < 2 * cap + 80) {
      n <<= 1;
    }
    buf_.resize(n);
    mask_ = n - 1;
  }

  bool empty() const { return head_ == tail_; }
  uint64_t size() const { return tail_ - head_; }
  uint64_t head_abs() const { return head_; }
  uint64_t tail_abs() const { return tail_; }

  const std::pair<uint32_t, uint32_t>& front() const { return buf_[head_ & mask_]; }
  const std::pair<uint32_t, uint32_t>& at_abs(uint64_t abs) const { return buf_[abs & mask_]; }

  void pop_front() { ++head_; }

  void push_back(uint32_t seq, uint32_t oi) {
    buf_[tail_ & mask_] = {seq, oi};
    ++tail_;
  }

  // Drops entries failing keep(), preserving order. Returns the new absolute
  // index of the first kept entry whose old absolute index was >= track (the
  // sentinel ~0 tracks nothing and maps to ~0) — used by SIEVE's hand.
  template <typename Keep>
  uint64_t Compact(const Keep& keep, uint64_t track = ~uint64_t{0}) {
    uint64_t mapped = ~uint64_t{0};
    uint64_t w = head_;
    for (uint64_t r = head_; r != tail_; ++r) {
      const auto e = buf_[r & mask_];
      if (keep(e.second, e.first)) {
        if (r >= track && mapped == ~uint64_t{0}) {
          mapped = w;
        }
        buf_[w & mask_] = e;
        ++w;
      }
    }
    tail_ = w;
    return mapped;
  }

 private:
  std::vector<std::pair<uint32_t, uint32_t>> buf_;
  uint64_t mask_ = 0;
  uint64_t head_ = 0;  // absolute index of the oldest entry
  uint64_t tail_ = 0;  // absolute index one past the newest entry
};

struct Ring {
  EntryRing q;
  uint64_t live = 0;
};

// Per-(object, size) state is ONE 32-bit word: bit 31 is the resident flag,
// policy metadata (clock's ref counter, SIEVE's visited bit, S3-FIFO's
// freq + small-vs-main bit) sits below it, and the live sequence stamp fills
// the low bits. An object's words for all K sizes of a pass are contiguous
// (seq_[oi * stride + k]), so the request path gathers the residency mask
// from their sign bits with one or two cache lines, the hit path updates
// metadata in those same already-warm lines, and the eviction loops decide
// liveness AND read metadata with a single scattered load per victim — the
// only cold line the per-size miss work touches. A ring entry is live iff
// the word's stamp field still equals the entry's stamp; everything that
// kills an object at one size either pops its entry outright or *bumps* the
// stamp (which also clears the resident flag and metadata). Stamp fields are
// >= 22 bits and wrap is safe: a dead entry is flushed by the next ring
// compaction, at most ~2*cap + 64 pushes away, which is far fewer than the
// 2^22+ pushes a stamp collision would need (grid capacities are nowhere
// near 2^22 objects).
constexpr uint32_t kResidentBit = 0x80000000u;

// Exact replica of util/ghost_queue.h's GhostQueue (seq-stamped FIFO with
// refresh-on-reinsert and lazy stale skipping) for ALL sizes of one pass,
// over dense object indices instead of an id hash map: membership is one
// bit per (object, size) and the live sequence stamp is a strided array, so
// the per-miss ghost probes — the dominant cost of a multi-size S3-FIFO
// pass — are bit tests instead of hash lookups. The live set after any
// operation history, and the order evictions happen in, are identical to
// GhostQueue's: both are determined purely by (id, seq) liveness.
//
// Sequence stamps are uint32: a pass would need > 4B ghost inserts into ONE
// size's queue to wrap, and ghost inserts are bounded by per-size misses.
class GhostDense {
 public:
  explicit GhostDense(size_t num_sizes) : stride_(num_sizes), per_(num_sizes) {}

  void SetCapacity(int k, uint64_t capacity) {
    per_[k].cap = std::max<uint64_t>(capacity, 1);
    per_[k].fifo.Reserve(per_[k].cap);
  }

  void SetNumObjects(uint32_t n) {
    bits_.assign(n, 0);
    seq_.assign(size_t{n} * stride_, 0);
  }

  bool Contains(uint32_t oi, int k) const { return (bits_[oi] >> k) & 1; }

  void PrefetchBits(uint32_t oi) const { __builtin_prefetch(&bits_[oi]); }

  void PrefetchSeq(uint32_t oi) const { __builtin_prefetch(&seq_[size_t{oi} * stride_]); }

  void Remove(uint32_t oi, int k) {
    if ((bits_[oi] >> k) & 1) {
      bits_[oi] &= ~(1ull << k);
      --per_[k].size;  // deque entries for oi go stale via the bit check
    }
  }

  bool HitAndErase(uint32_t oi, int k) {
    if (((bits_[oi] >> k) & 1) == 0) {
      return false;
    }
    Remove(oi, k);
    return true;
  }

  void Insert(uint32_t oi, int k) {
    PerSize& p = per_[k];
    if (((bits_[oi] >> k) & 1) == 0) {
      while (p.size >= p.cap) {
        EvictOldest(k);
      }
      bits_[oi] |= 1ull << k;
      ++p.size;
    }
    const uint32_t seq = p.next_seq++;  // refresh: any older entry goes stale
    seq_[size_t{oi} * stride_ + k] = seq;
    p.fifo.push_back(seq, oi);
    if (p.fifo.size() > 2 * p.cap + 16) {
      p.fifo.Compact([this, k](uint32_t v, uint32_t s) { return Live(s, v, k); });
    }
  }

 private:
  struct PerSize {
    uint64_t cap = 1;
    uint64_t size = 0;  // live entries
    uint32_t next_seq = 0;
    EntryRing fifo;  // (seq, oi), oldest first
  };

  bool Live(uint32_t seq, uint32_t oi, int k) const {
    return ((bits_[oi] >> k) & 1) != 0 && seq_[size_t{oi} * stride_ + k] == seq;
  }

  void EvictOldest(int k) {
    PerSize& p = per_[k];
    while (!p.fifo.empty()) {
      const auto [seq, oi] = p.fifo.front();
      p.fifo.pop_front();
      if (!p.fifo.empty()) {
        __builtin_prefetch(&seq_[size_t{p.fifo.front().second} * stride_ + k]);
        __builtin_prefetch(&bits_[p.fifo.front().second]);
      }
      if (Live(seq, oi, k)) {
        bits_[oi] &= ~(1ull << k);
        --p.size;
        return;
      }
    }
  }

  size_t stride_;
  std::vector<uint64_t> bits_;  // [oi] per-size membership
  std::vector<uint32_t> seq_;   // [oi * stride + k] live sequence stamp
  std::vector<PerSize> per_;
};

// The id -> dense-index mapping is policy- and size-independent, so it is
// built ONCE per curve (InternTrace below) instead of probed per request
// inside every pass. This matters on miss-heavy traces: brute force's
// per-size hash table is capacity-bounded and mostly cache-resident, while a
// one-pass intern map spans the whole footprint — probing it per request was
// the pass's dominant cold miss. With dense ids precomputed, the request
// path reads a sequential uint32 array (hardware-prefetched) and one
// perfectly predicted strided words line, and every engine can pre-size its
// state for the exact object count instead of growing incrementally.
class EngineCore {
 public:
  explicit EngineCore(size_t num_sizes)
      : grid_mask_(num_sizes >= 64 ? ~0ull : ((1ull << num_sizes) - 1)) {}

  uint64_t grid_mask() const { return grid_mask_; }

  // Residency mask over the pass's sizes: the sign bits of the object's
  // contiguous per-size words.
  static uint64_t GatherMask(const uint32_t* words, size_t n) {
    uint64_t mask = 0;
    for (size_t k = 0; k < n; ++k) {
      mask |= uint64_t{words[k] >> 31} << k;
    }
    return mask;
  }

 private:
  uint64_t grid_mask_;
};

// The trace's ids interned to dense [0, num_objects) in first-sight order.
struct DenseIds {
  std::vector<uint32_t> oi;  // [request index] -> dense object index
  uint32_t num_objects = 0;
};

DenseIds InternTrace(const TraceView& view) {
  DenseIds d;
  const uint64_t n = view.size();
  d.oi.resize(n);
  FlatMap<uint32_t> index;
  for (uint64_t i = 0; i < n; ++i) {
    if (i + kPrefetchDistance < n) {
      index.Prefetch(view.id(i + kPrefetchDistance));
    }
    bool inserted = false;
    uint32_t* slot = index.Emplace(view.id(i), &inserted);
    if (inserted) {
      *slot = d.num_objects++;
    }
    d.oi[i] = *slot;
  }
  return d;
}

// ---------------------------------------------------------------------------
// Per-policy multi-size engines. Each replicates the corresponding
// src/policies implementation for count-based configs: OnMiss(oi, k) is
// Access()'s miss path for size k (evict-until-free, then insert at the
// head), OnHit is the hit path applied to every resident size at once,
// OnDelete is Remove(). Hits are never materialized per size —
// hits_k = measured requests − misses_k.
// ---------------------------------------------------------------------------

class FifoEngine {
 public:
  FifoEngine(const std::vector<uint64_t>& caps, const CacheConfig& /*config*/,
             uint32_t num_objects)
      : core_(caps.size()),
        caps_(caps),
        stride_(caps.size()),
        next_seq_(caps.size(), 0),
        rings_(caps.size()) {
    seq_.assign(size_t{num_objects} * stride_, 0);
    for (size_t k = 0; k < caps.size(); ++k) {
      rings_[k].q.Reserve(caps[k]);
    }
  }

  EngineCore& core() { return core_; }

  uint64_t ResidentMask(uint32_t oi) const {
    return EngineCore::GatherMask(&seq_[size_t{oi} * stride_], stride_);
  }

  void PrefetchWords(uint32_t oi) const { __builtin_prefetch(&seq_[size_t{oi} * stride_]); }

  // Overlap the independent victim-word loads of this request's miss set:
  // DrivePass calls this for every missing size before running the evictions,
  // so the DRAM misses resolve in parallel instead of back to back.
  void PrefetchVictim(uint32_t /*oi*/, int k) const {
    const Ring& r = rings_[k];
    if (r.live >= caps_[k] && !r.q.empty()) {
      __builtin_prefetch(&seq_[size_t{r.q.front().second} * stride_ + k]);
    }
  }

  void OnHit(uint32_t /*oi*/, uint64_t /*mask*/) {}

  void OnMiss(uint32_t oi, int k) {
    Ring& r = rings_[k];
    while (r.live + 1 > caps_[k]) {
      const auto [s, v] = r.q.front();
      r.q.pop_front();
      if (!r.q.empty()) {
        __builtin_prefetch(&seq_[size_t{r.q.front().second} * stride_ + k]);
      }
      uint32_t& word = seq_[size_t{v} * stride_ + k];
      if ((word & kSeqMask) == s) {
        word = (s + 1) & kSeqMask;  // bump: evicted, entry would go stale
        --r.live;
      }
    }
    const uint32_t s = next_seq_[k];
    next_seq_[k] = (s + 1) & kSeqMask;
    seq_[size_t{oi} * stride_ + k] = s | kResidentBit;
    r.q.push_back(s, oi);
    ++r.live;
    if (r.q.size() > 2 * r.live + 64) {
      r.q.Compact([this, k](uint32_t v, uint32_t es) { return Live(v, k, es); });
    }
  }

  void OnDelete(uint32_t oi, uint64_t mask) {
    while (mask != 0) {
      const int k = std::countr_zero(mask);
      mask &= mask - 1;
      --rings_[k].live;
      uint32_t& word = seq_[size_t{oi} * stride_ + k];
      word = ((word & kSeqMask) + 1) & kSeqMask;  // bump: entry goes stale
    }
  }

 private:
  // Word layout: [resident : 1][stamp : 31]. Entries die only by being
  // popped or by a stamp bump, so the stamp alone decides liveness — the
  // per-size miss work touches exactly one cold line per victim.
  static constexpr uint32_t kSeqMask = 0x7fffffffu;

  bool Live(uint32_t oi, int k, uint32_t s) const {
    return (seq_[size_t{oi} * stride_ + k] & kSeqMask) == s;
  }

  EngineCore core_;
  std::vector<uint64_t> caps_;
  size_t stride_;
  std::vector<uint32_t> seq_;       // [oi * stride + k] packed resident | stamp
  std::vector<uint32_t> next_seq_;  // [k]
  std::vector<Ring> rings_;
};

class ClockEngine {
 public:
  ClockEngine(const std::vector<uint64_t>& caps, const CacheConfig& config, uint32_t num_objects)
      : core_(caps.size()),
        caps_(caps),
        stride_(caps.size()),
        next_seq_(caps.size(), 0),
        rings_(caps.size()) {
    seq_.assign(size_t{num_objects} * stride_, 0);
    const Params params(config.params);
    const uint64_t bits = std::clamp<uint64_t>(params.GetU64("bits", 1), 1, 8);
    max_ref_ = static_cast<uint32_t>((1u << bits) - 1);
    // Word layout: [resident : 1][ref : bits][stamp : 31 - bits].
    seq_bits_ = 31 - static_cast<uint32_t>(bits);
    seq_mask_ = (1u << seq_bits_) - 1;
    ref_one_ = 1u << seq_bits_;
    ref_field_ = max_ref_ << seq_bits_;
    for (size_t k = 0; k < caps.size(); ++k) {
      rings_[k].q.Reserve(caps[k]);
    }
  }

  EngineCore& core() { return core_; }

  uint64_t ResidentMask(uint32_t oi) const {
    return EngineCore::GatherMask(&seq_[size_t{oi} * stride_], stride_);
  }

  void PrefetchWords(uint32_t oi) const { __builtin_prefetch(&seq_[size_t{oi} * stride_]); }

  // Overlap the independent victim-word loads of this request's miss set:
  // DrivePass calls this for every missing size before running the evictions,
  // so the DRAM misses resolve in parallel instead of back to back.
  void PrefetchVictim(uint32_t /*oi*/, int k) const {
    const Ring& r = rings_[k];
    if (r.live >= caps_[k] && !r.q.empty()) {
      __builtin_prefetch(&seq_[size_t{r.q.front().second} * stride_ + k]);
    }
  }

  // Branchless over ALL K contiguous words (non-resident words contribute 0),
  // so the compiler vectorizes the saturating ref increment: resident (sign
  // bit) and not yet at max_ref (field compare is exact — max_ref_ fills its
  // field) gate a masked add of ref_one_.
  void OnHit(uint32_t oi, uint64_t /*mask*/) {
    uint32_t* word = &seq_[size_t{oi} * stride_];
    for (size_t k = 0; k < stride_; ++k) {
      const uint32_t gate = (word[k] >> 31) & ((word[k] & ref_field_) != ref_field_ ? 1u : 0u);
      word[k] += gate * ref_one_;
    }
  }

  void OnMiss(uint32_t oi, int k) {
    Ring& r = rings_[k];
    while (r.live + 1 > caps_[k]) {
      // ClockCache::EvictOne: reinsert referenced tails (decrementing),
      // evict the first unreferenced one. Reinsertion keeps the stamp: the
      // popped entry was the object's only live entry, so re-appending the
      // same (stamp, object) pair preserves uniqueness.
      const auto [s, v] = r.q.front();
      r.q.pop_front();
      if (!r.q.empty()) {
        __builtin_prefetch(&seq_[size_t{r.q.front().second} * stride_ + k]);
      }
      uint32_t& word = seq_[size_t{v} * stride_ + k];
      if ((word & seq_mask_) != s) {
        continue;  // stale
      }
      if ((word & ref_field_) != 0) {
        word -= ref_one_;
        r.q.push_back(s, v);
      } else {
        word = (s + 1) & seq_mask_;  // bump: evicted
        --r.live;
      }
    }
    const uint32_t s = next_seq_[k];
    next_seq_[k] = (s + 1) & seq_mask_;
    seq_[size_t{oi} * stride_ + k] = s | kResidentBit;  // ref bits reset to 0
    r.q.push_back(s, oi);
    ++r.live;
    if (r.q.size() > 2 * r.live + 64) {
      r.q.Compact([this, k](uint32_t v, uint32_t es) { return Live(v, k, es); });
    }
  }

  void OnDelete(uint32_t oi, uint64_t mask) {
    while (mask != 0) {
      const int k = std::countr_zero(mask);
      mask &= mask - 1;
      --rings_[k].live;
      uint32_t& word = seq_[size_t{oi} * stride_ + k];
      word = ((word & seq_mask_) + 1) & seq_mask_;  // bump: entry goes stale
    }
  }

 private:
  bool Live(uint32_t oi, int k, uint32_t s) const {
    return (seq_[size_t{oi} * stride_ + k] & seq_mask_) == s;
  }

  EngineCore core_;
  std::vector<uint64_t> caps_;
  size_t stride_;
  std::vector<uint32_t> seq_;       // [oi * stride + k] packed resident | ref | stamp
  std::vector<uint32_t> next_seq_;  // [k]
  std::vector<Ring> rings_;
  uint32_t max_ref_ = 1;
  uint32_t seq_bits_ = 30;
  uint32_t seq_mask_ = (1u << 30) - 1;
  uint32_t ref_one_ = 1u << 30;
  uint32_t ref_field_ = 1u << 30;
};

// SIEVE's hand walks the queue tail-to-head, so its ring keeps an absolute
// position per entry (base + offset; base advances when stale fronts pop) and
// the hand is an absolute position instead of an object. Entries never move
// (SIEVE has no reinsertion), which is what makes positions stable.
class SieveEngine {
 public:
  static constexpr uint64_t kNoHand = ~uint64_t{0};

  SieveEngine(const std::vector<uint64_t>& caps, const CacheConfig& /*config*/,
              uint32_t num_objects)
      : core_(caps.size()),
        caps_(caps),
        stride_(caps.size()),
        next_seq_(caps.size(), 0),
        rings_(caps.size()),
        hands_(caps.size(), kNoHand) {
    seq_.assign(size_t{num_objects} * stride_, 0);
    for (size_t k = 0; k < caps.size(); ++k) {
      rings_[k].q.Reserve(caps[k]);
    }
  }

  EngineCore& core() { return core_; }

  uint64_t ResidentMask(uint32_t oi) const {
    return EngineCore::GatherMask(&seq_[size_t{oi} * stride_], stride_);
  }

  void PrefetchWords(uint32_t oi) const { __builtin_prefetch(&seq_[size_t{oi} * stride_]); }

  // Prefetch the word of the entry the hand walk will inspect first.
  void PrefetchVictim(uint32_t /*oi*/, int k) const {
    const Ring& r = rings_[k];
    if (r.live < caps_[k] || r.q.empty()) {
      return;
    }
    const uint64_t base = r.q.head_abs();
    const uint64_t end = r.q.tail_abs();
    const uint64_t pos =
        (hands_[k] == kNoHand || hands_[k] < base || hands_[k] >= end) ? base : hands_[k];
    __builtin_prefetch(&seq_[size_t{r.q.at_abs(pos).second} * stride_ + k]);
  }

  // Branchless over ALL K contiguous words: set visited on resident words
  // (sign bit shifted into the visited position); vectorizes.
  void OnHit(uint32_t oi, uint64_t /*mask*/) {
    uint32_t* word = &seq_[size_t{oi} * stride_];
    for (size_t k = 0; k < stride_; ++k) {
      word[k] |= (word[k] >> 31) << 30;
    }
  }

  void OnMiss(uint32_t oi, int k) {
    Ring& r = rings_[k];
    while (r.live + 1 > caps_[k]) {
      // Drop stale fronts so a wrap lands on the true tail.
      while (!r.q.empty() && !Live(r.q.front().second, k, r.q.front().first)) {
        r.q.pop_front();
      }
      if (r.live == 0) {
        break;  // empty queue; unreachable while live >= cap >= 1
      }
      const uint64_t base = r.q.head_abs();
      const uint64_t end = r.q.tail_abs();
      // SieveCache::EvictOne: walk the hand toward the head clearing
      // visited bits, wrapping to the tail past the head.
      uint64_t pos =
          (hands_[k] == kNoHand || hands_[k] < base || hands_[k] >= end) ? base : hands_[k];
      for (;;) {
        if (pos >= end) {
          pos = base;
        }
        const auto [es, ev] = r.q.at_abs(pos);
        const uint64_t nxt = pos + 1 >= end ? base : pos + 1;
        __builtin_prefetch(&seq_[size_t{r.q.at_abs(nxt).second} * stride_ + k]);
        uint32_t& word = seq_[size_t{ev} * stride_ + k];
        if ((word & kSeqMask) != es) {
          ++pos;  // stale
          continue;
        }
        if ((word & kVisitedBit) != 0) {
          word &= ~kVisitedBit;
          ++pos;
          continue;
        }
        --r.live;
        word = (es + 1) & kSeqMask;  // bump: evicted, the in-ring entry dies
        // RemoveEntry advances the hand to the adjacent live entry toward
        // the head; parking on the (possibly stale) successor is equivalent
        // — stale entries never come back to life and the next walk skips
        // them with no side effects — and avoids a serial scan of cold
        // per-size words here.
        hands_[k] = pos + 1 < end ? pos + 1 : kNoHand;
        break;
      }
    }
    const uint32_t s = next_seq_[k];
    next_seq_[k] = (s + 1) & kSeqMask;
    seq_[size_t{oi} * stride_ + k] = s | kResidentBit;  // visited bit reset to 0
    r.q.push_back(s, oi);
    ++r.live;
    if (r.q.size() > 2 * r.live + 64) {
      hands_[k] = r.q.Compact([this, k](uint32_t v, uint32_t es) { return Live(v, k, es); },
                              hands_[k]);
    }
  }

  void OnDelete(uint32_t oi, uint64_t mask) {
    while (mask != 0) {
      const int k = std::countr_zero(mask);
      mask &= mask - 1;
      --rings_[k].live;
      uint32_t& word = seq_[size_t{oi} * stride_ + k];
      word = ((word & kSeqMask) + 1) & kSeqMask;  // bump: entry goes stale
    }
  }

 private:
  // Word layout: [resident : 1][visited : 1][stamp : 30]. Evictions bump the
  // stamp (the evicted entry stays in the ring until the hand or a
  // compaction passes it), so the walk's liveness test is the stamp compare
  // alone — one cold line per walk step.
  static constexpr uint32_t kVisitedBit = 0x40000000u;
  static constexpr uint32_t kSeqMask = 0x3fffffffu;

  bool Live(uint32_t oi, int k, uint32_t s) const {
    return (seq_[size_t{oi} * stride_ + k] & kSeqMask) == s;
  }

  EngineCore core_;
  std::vector<uint64_t> caps_;
  size_t stride_;
  std::vector<uint32_t> seq_;       // [oi * stride + k] packed visited | stamp
  std::vector<uint32_t> next_seq_;  // [k]
  std::vector<Ring> rings_;
  std::vector<uint64_t> hands_;  // [size] absolute position, kNoHand = "use tail"
};

// S3-FIFO (and, with adaptive=true, S3-FIFO-D): small/main/ghost per size.
// Replicates S3FifoCache::{Access, EnsureFree, EvictFromSmall, EvictFromMain,
// Remove} plus S3FifoDCache::{OnMissLookup, MaybeRebalance} for count-based
// configs with ghost_type=exact and plain FIFO queue types.
class S3FifoEngine {
 public:
  S3FifoEngine(const std::vector<uint64_t>& caps, const CacheConfig& config, bool adaptive,
               uint32_t num_objects)
      : core_(caps.size()),
        adaptive_(adaptive),
        stride_(caps.size()),
        next_seq_(caps.size(), 0),
        small_(caps.size()),
        main_(caps.size()),
        ghost_(caps.size()),
        small_ev_(caps.size()),
        main_ev_(caps.size()) {
    seq_.assign(size_t{num_objects} * stride_, 0);
    const Params params(config.params);
    const double small_ratio = std::clamp(params.GetDouble("small_ratio", 0.1), 0.001, 0.999);
    move_threshold_ = static_cast<uint32_t>(
        std::clamp<uint64_t>(params.GetU64("move_to_main_threshold", 2), 1, 16));
    max_freq_ =
        static_cast<uint32_t>(std::clamp<uint64_t>(params.GetU64("max_freq", 3), 1, 255));
    // Word layout: [resident : 1][in_small : 1][freq : fb][stamp : 30 - fb],
    // fb just wide enough for max_freq. One size's stamps are shared by its
    // small and main rings (a per-size counter), so the stamp compare alone
    // identifies which ring holds the object's live entry.
    const uint32_t fb = static_cast<uint32_t>(std::bit_width(max_freq_));
    seq_bits_ = 30 - fb;
    seq_mask_ = (1u << seq_bits_) - 1;
    freq_one_ = 1u << seq_bits_;
    freq_mask_ = (1u << fb) - 1;
    freq_field_ = freq_mask_ << seq_bits_;
    const double ghost_ratio = params.GetDouble("ghost_ratio", 0.9);
    const double adapt_ghost_ratio = params.GetDouble("adapt_ghost_ratio", 0.05);
    const uint64_t min_hits = params.GetU64("adapt_min_hits", 100);
    const double imbalance = params.GetDouble("adapt_imbalance", 2.0);
    const double step_ratio = params.GetDouble("adapt_step_ratio", 0.001);

    ghost_.SetNumObjects(num_objects);
    if (adaptive_) {
      small_ev_.SetNumObjects(num_objects);
      main_ev_.SetNumObjects(num_objects);
    }
    per_.resize(caps.size());
    for (size_t k = 0; k < caps.size(); ++k) {
      const uint64_t cap = caps[k];
      PerSize& s = per_[k];
      s.cap = cap;
      s.small_target = std::max<uint64_t>(static_cast<uint64_t>(cap * small_ratio), 1);
      if (s.small_target >= cap) {
        s.small_target = cap > 1 ? cap - 1 : 1;
      }
      s.main_target = cap - s.small_target;
      small_[k].q.Reserve(cap);
      main_[k].q.Reserve(cap);
      // Count-based config: ghost entries scale with the capacity itself.
      ghost_.SetCapacity(static_cast<int>(k),
                         std::max<uint64_t>(static_cast<uint64_t>(cap * ghost_ratio), 1));
      if (adaptive_) {
        const uint64_t shadow =
            std::max<uint64_t>(static_cast<uint64_t>(cap * adapt_ghost_ratio), 1);
        small_ev_.SetCapacity(static_cast<int>(k), shadow);
        main_ev_.SetCapacity(static_cast<int>(k), shadow);
        s.min_hits = min_hits;
        s.imbalance = imbalance;
        s.step = std::max<uint64_t>(static_cast<uint64_t>(cap * step_ratio), 1);
      }
    }
  }

  EngineCore& core() { return core_; }

  uint64_t ResidentMask(uint32_t oi) const {
    return EngineCore::GatherMask(&seq_[size_t{oi} * stride_], stride_);
  }

  void PrefetchWords(uint32_t oi) const {
    __builtin_prefetch(&seq_[size_t{oi} * stride_]);
    ghost_.PrefetchBits(oi);
  }

  // Prefetch the word of the queue head that EnsureFree would evict from
  // first (the ghost line is already covered by PrefetchWords).
  void PrefetchVictim(uint32_t /*oi*/, int k) const {
    const PerSize& s = per_[k];
    if (small_[k].live + main_[k].live < s.cap) {
      return;
    }
    const bool from_small =
        (small_[k].live > s.small_target && small_[k].live > 0) || main_[k].live == 0;
    const Ring& r = from_small ? small_[k] : main_[k];
    if (!r.q.empty()) {
      __builtin_prefetch(&seq_[size_t{r.q.front().second} * stride_ + k]);
      if (from_small) {
        ghost_.PrefetchSeq(r.q.front().second);  // a demotion writes its stamp
      }
    }
  }

  // Branchless over ALL K contiguous words; vectorizes. max_freq need not
  // fill the field (e.g. max_freq=5 in a 3-bit field), so the saturation
  // gate compares the value, not the field bits.
  void OnHit(uint32_t oi, uint64_t /*mask*/) {
    uint32_t* word = &seq_[size_t{oi} * stride_];
    for (size_t k = 0; k < stride_; ++k) {
      const uint32_t gate =
          (word[k] >> 31) & (((word[k] >> seq_bits_) & freq_mask_) < max_freq_ ? 1u : 0u);
      word[k] += gate * freq_one_;
    }
  }

  void OnMiss(uint32_t oi, int k) {
    PerSize& s = per_[k];
    if (adaptive_) {
      OnMissLookup(s, oi, k);  // fires before any eviction, as in Access()
    }
    EnsureFree(s, k);
    if (ghost_.HitAndErase(oi, k)) {
      Push(main_[k], oi, k, /*in_small=*/false);
    } else {
      Push(small_[k], oi, k, /*in_small=*/true);
    }
  }

  void OnDelete(uint32_t oi, uint64_t mask) {
    while (mask != 0) {
      const int k = std::countr_zero(mask);
      mask &= mask - 1;
      uint32_t& word = seq_[size_t{oi} * stride_ + k];
      if ((word & kInSmallBit) != 0) {
        --small_[k].live;
      } else {
        --main_[k].live;
      }
      word = ((word & seq_mask_) + 1) & seq_mask_;  // bump: entry goes stale
      // S3FifoCache::Remove never touches the ghost queues.
    }
  }

 private:
  struct PerSize {
    uint64_t cap = 0;
    uint64_t small_target = 0;
    uint64_t main_target = 0;
    // S3-FIFO-D adaptation state.
    uint64_t small_ghost_hits = 0;
    uint64_t main_ghost_hits = 0;
    uint64_t min_hits = 0;
    double imbalance = 2.0;
    uint64_t step = 1;
  };

  static constexpr uint32_t kInSmallBit = 0x40000000u;

  // An object is in at most one of small/main per size, and both rings draw
  // stamps from the same per-size counter, so a stamp match identifies the
  // object's unique live entry regardless of which ring it sits in. Entries
  // die only by being popped (eviction, promotion) or by a delete-bump.
  bool Live(uint32_t oi, int k, uint32_t s) const {
    return (seq_[size_t{oi} * stride_ + k] & seq_mask_) == s;
  }

  void Push(Ring& r, uint32_t oi, int k, bool in_small) {
    const uint32_t s = next_seq_[k];
    next_seq_[k] = (s + 1) & seq_mask_;
    // freq resets to 0
    seq_[size_t{oi} * stride_ + k] = s | kResidentBit | (in_small ? kInSmallBit : 0);
    r.q.push_back(s, oi);
    ++r.live;
    if (r.q.size() > 2 * r.live + 64) {
      r.q.Compact([this, k](uint32_t v, uint32_t es) { return Live(v, k, es); });
    }
  }

  void EnsureFree(PerSize& s, int k) {
    while (small_[k].live + main_[k].live + 1 > s.cap) {
      if ((small_[k].live > s.small_target && small_[k].live > 0) || main_[k].live == 0) {
        EvictFromSmall(s, k);
      } else {
        EvictFromMain(s, k);
      }
      if (small_[k].live == 0 && main_[k].live == 0) {
        return;
      }
    }
  }

  void EvictFromSmall(PerSize& s, int k) {
    Ring& r = small_[k];
    for (;;) {
      if (r.q.empty()) {
        return;  // mirrors the tail == end() guard
      }
      const auto [es, t] = r.q.front();
      r.q.pop_front();
      if (!r.q.empty()) {
        __builtin_prefetch(&seq_[size_t{r.q.front().second} * stride_ + k]);
      }
      uint32_t& word = seq_[size_t{t} * stride_ + k];
      if ((word & seq_mask_) != es) {
        continue;  // stale
      }
      --r.live;
      if (((word >> seq_bits_) & freq_mask_) >= move_threshold_) {
        // Promote to M; access bits are cleared during the move (§4.1).
        Push(main_[k], t, k, /*in_small=*/false);
        while (main_[k].live > s.main_target) {
          EvictFromMain(s, k);
        }
      } else {
        word = (es + 1) & seq_mask_;  // bump: demoted to ghost
        ghost_.Insert(t, k);
        if (adaptive_) {
          small_ev_.Insert(t, k);
        }
      }
      return;
    }
  }

  void EvictFromMain(PerSize& /*s*/, int k) {
    // FIFO-reinsertion: terminates because every reinsertion decrements freq.
    Ring& r = main_[k];
    for (;;) {
      if (r.q.empty()) {
        return;
      }
      const auto [es, t] = r.q.front();
      r.q.pop_front();
      if (!r.q.empty()) {
        __builtin_prefetch(&seq_[size_t{r.q.front().second} * stride_ + k]);
      }
      uint32_t& word = seq_[size_t{t} * stride_ + k];
      if ((word & seq_mask_) != es) {
        continue;  // stale
      }
      if ((word & freq_field_) != 0) {  // freq > 0
        word -= freq_one_;
        r.q.push_back(es, t);  // reinsertion keeps the stamp
      } else {
        --r.live;
        word = (es + 1) & seq_mask_;  // bump: evicted
        if (adaptive_) {
          main_ev_.Insert(t, k);
        }
        return;
      }
    }
  }

  void OnMissLookup(PerSize& s, uint32_t oi, int k) {
    if (small_ev_.HitAndErase(oi, k)) {
      ++s.small_ghost_hits;
    }
    if (main_ev_.HitAndErase(oi, k)) {
      ++s.main_ghost_hits;
    }
    MaybeRebalance(s);
  }

  void MaybeRebalance(PerSize& s) {
    if (s.small_ghost_hits + s.main_ghost_hits <= s.min_hits) {
      return;
    }
    const double hi = static_cast<double>(std::max(s.small_ghost_hits, s.main_ghost_hits));
    const double lo = static_cast<double>(std::min(s.small_ghost_hits, s.main_ghost_hits));
    if (hi < s.imbalance * std::max(lo, 1.0)) {
      return;
    }
    uint64_t target;
    if (s.small_ghost_hits > s.main_ghost_hits) {
      target = std::min<uint64_t>(s.small_target + s.step, s.cap - 1);
    } else {
      target = s.small_target > s.step ? s.small_target - s.step : 1;
    }
    // set_small_target's clamp; guarded for cap == 1, where the brute-force
    // path would clamp to an empty [1, 0] range (UB it never hits in the
    // committed configurations — the engine pins target = 1 there).
    s.small_target = s.cap > 1 ? std::clamp<uint64_t>(target, 1, s.cap - 1) : 1;
    s.main_target = s.cap - s.small_target;
    s.small_ghost_hits = 0;
    s.main_ghost_hits = 0;
  }

  EngineCore core_;
  bool adaptive_;
  uint32_t move_threshold_ = 2;
  uint32_t max_freq_ = 3;
  uint32_t seq_bits_ = 28;
  uint32_t seq_mask_ = (1u << 28) - 1;
  uint32_t freq_one_ = 1u << 28;
  uint32_t freq_mask_ = 3;
  uint32_t freq_field_ = 3u << 28;
  size_t stride_;
  std::vector<uint32_t> seq_;  // [oi * stride + k] packed resident | in_small | freq | stamp
  std::vector<uint32_t> next_seq_;  // [k], shared by both rings of a size
  std::vector<Ring> small_;
  std::vector<Ring> main_;
  GhostDense ghost_;
  GhostDense small_ev_;  // S3-FIFO-D shadow ghosts (empty unless adaptive)
  GhostDense main_ev_;
  std::vector<PerSize> per_;
};

// The shared traversal: per-size work only on the miss set, no hash probe
// at all (ids were interned up front by InternTrace). Mirrors simulator.cc's
// RunLoop metric rules exactly (deletes and warmup excluded from the counts).
// The dense-id array is read sequentially, so the only scattered line the
// request path touches — the object's per-size words — is prefetched
// kPrefetchDistance ahead with a perfectly known address.
template <typename Engine>
std::vector<SimResult> DrivePass(const TraceView& view, const uint32_t* dense, Engine& engine,
                                 const std::vector<uint64_t>& caps, uint64_t warmup_requests) {
  const size_t num_sizes = caps.size();
  std::vector<uint64_t> misses(num_sizes, 0);
  std::vector<uint64_t> bytes_missed(num_sizes, 0);
  uint64_t measured = 0;
  uint64_t bytes_requested = 0;
  const uint64_t grid_mask = engine.core().grid_mask();
  const uint64_t n = view.size();
  for (uint64_t i = 0; i < n; ++i) {
    if (i + kPrefetchDistance < n) {
      engine.PrefetchWords(dense[i + kPrefetchDistance]);
    }
    const uint32_t oi = dense[i];
    const uint64_t mask = engine.ResidentMask(oi);
    if (view.op(i) == OpType::kDelete) {
      if (mask != 0) {
        engine.OnDelete(oi, mask);
      }
      continue;
    }
    const bool measure = i >= warmup_requests;
    const uint32_t size = view.object_size(i);
    if (measure) {
      ++measured;
      bytes_requested += size;
    }
    if (mask != 0) {
      engine.OnHit(oi, mask);
    }
    uint64_t miss = ~mask & grid_mask;
    for (uint64_t m = miss; m != 0; m &= m - 1) {
      engine.PrefetchVictim(oi, std::countr_zero(m));
    }
    while (miss != 0) {
      const int k = std::countr_zero(miss);
      miss &= miss - 1;
      if (measure) {
        ++misses[k];
        bytes_missed[k] += size;
      }
      engine.OnMiss(oi, k);
    }
  }
  std::vector<SimResult> results(num_sizes);
  for (size_t k = 0; k < num_sizes; ++k) {
    results[k].requests = measured;
    results[k].misses = misses[k];
    results[k].hits = measured - misses[k];
    results[k].bytes_requested = bytes_requested;
    results[k].bytes_missed = bytes_missed[k];
  }
  return results;
}

std::vector<SimResult> RunChunk(const TraceView& view, const DenseIds& dense,
                                const std::string& policy, const std::vector<uint64_t>& caps,
                                const CacheConfig& config, uint64_t warmup_requests) {
  if (policy == "fifo") {
    FifoEngine engine(caps, config, dense.num_objects);
    return DrivePass(view, dense.oi.data(), engine, caps, warmup_requests);
  }
  if (policy == "clock") {
    ClockEngine engine(caps, config, dense.num_objects);
    return DrivePass(view, dense.oi.data(), engine, caps, warmup_requests);
  }
  if (policy == "sieve") {
    SieveEngine engine(caps, config, dense.num_objects);
    return DrivePass(view, dense.oi.data(), engine, caps, warmup_requests);
  }
  if (policy == "s3fifo" || policy == "s3fifo-d") {
    S3FifoEngine engine(caps, config, policy == "s3fifo-d", dense.num_objects);
    return DrivePass(view, dense.oi.data(), engine, caps, warmup_requests);
  }
  throw std::invalid_argument("one-pass MRC engine does not support policy '" + policy + "'");
}

}  // namespace

MrcMode ParseMrcMode(const std::string& name) {
  if (name == "auto" || name == "onepass") {
    return MrcMode::kAuto;
  }
  if (name == "brute") {
    return MrcMode::kBrute;
  }
  if (name == "shards") {
    return MrcMode::kShards;
  }
  throw std::invalid_argument("unknown MRC mode '" + name +
                              "' (expected auto|onepass|brute|shards)");
}

bool MrcEngineSupports(const std::string& policy, const CacheConfig& config) {
  if (!config.count_based) {
    return false;  // byte-sized objects break the one-slot-per-object layout
  }
  if (policy == "fifo" || policy == "clock" || policy == "sieve") {
    return true;
  }
  if (policy == "s3fifo" || policy == "s3fifo-d") {
    const Params params(config.params);
    return params.GetString("ghost_type", "exact") == "exact" &&
           !params.GetBool("small_lru", false) && !params.GetBool("main_lru", false) &&
           !params.GetBool("main_sieve", false);
  }
  return false;
}

MrcCurve OnePassMrc(const TraceView& view, const std::string& policy,
                    const std::vector<uint64_t>& sizes, const CacheConfig& base_config,
                    uint64_t warmup_requests) {
  if (!MrcEngineSupports(policy, base_config)) {
    throw std::invalid_argument("one-pass MRC engine does not support policy '" + policy +
                                "' with params '" + base_config.params + "'");
  }
  MrcCurve curve;
  curve.policy = policy;
  curve.exact = true;
  curve.sizes = sizes;
  if (sizes.empty()) {
    return curve;
  }
  for (const uint64_t size : sizes) {
    if (size == 0) {
      throw std::invalid_argument("MRC size grid entries must be > 0");
    }
  }

  // Deduplicate: each distinct capacity is simulated once per pass; the
  // requested order (and any duplicates) is restored from the result table.
  std::vector<uint64_t> unique_sizes = sizes;
  std::sort(unique_sizes.begin(), unique_sizes.end());
  unique_sizes.erase(std::unique(unique_sizes.begin(), unique_sizes.end()), unique_sizes.end());

  const DenseIds dense = InternTrace(view);
  std::vector<SimResult> by_unique;
  by_unique.reserve(unique_sizes.size());
  for (size_t start = 0; start < unique_sizes.size(); start += kMaxSizesPerPass) {
    const size_t end = std::min(unique_sizes.size(), start + kMaxSizesPerPass);
    const std::vector<uint64_t> chunk(unique_sizes.begin() + start, unique_sizes.begin() + end);
    std::vector<SimResult> chunk_results =
        RunChunk(view, dense, policy, chunk, base_config, warmup_requests);
    by_unique.insert(by_unique.end(), chunk_results.begin(), chunk_results.end());
  }

  curve.results.reserve(sizes.size());
  curve.miss_ratios.reserve(sizes.size());
  for (const uint64_t size : sizes) {
    const size_t at = static_cast<size_t>(
        std::lower_bound(unique_sizes.begin(), unique_sizes.end(), size) - unique_sizes.begin());
    curve.results.push_back(by_unique[at]);
    curve.miss_ratios.push_back(by_unique[at].MissRatio());
  }
  return curve;
}

MrcCurve ComputeMrcCurve(const TraceView& view, const std::string& policy,
                         const std::vector<uint64_t>& sizes, const MrcOptions& options) {
  switch (options.mode) {
    case MrcMode::kOnePass:
      return OnePassMrc(view, policy, sizes, options.base_config, options.warmup_requests);
    case MrcMode::kShards:
      return ShardsMrc(view, policy, sizes, options.shards_rate, options.base_config,
                       options.warmup_requests);
    case MrcMode::kAuto:
      if (MrcEngineSupports(policy, options.base_config)) {
        return OnePassMrc(view, policy, sizes, options.base_config, options.warmup_requests);
      }
      [[fallthrough]];
    case MrcMode::kBrute:
      break;
  }
  MrcCurve curve;
  curve.policy = policy;
  curve.exact = true;
  curve.sizes = sizes;
  curve.results =
      ComputeMrcResults(view, policy, sizes, options.base_config, options.warmup_requests);
  curve.miss_ratios.reserve(curve.results.size());
  for (const SimResult& r : curve.results) {
    curve.miss_ratios.push_back(r.MissRatio());
  }
  return curve;
}

}  // namespace s3fifo
