// One-pass miss-ratio-curve engine for the FIFO-inclusive family.
//
// FIFO is not a stack algorithm — the Belady anomaly is real for it, so an
// MRC cannot be read off a reuse-distance histogram the way LRU's can
// (Mattson et al.). What the FIFO family *does* admit is cheap simultaneous
// simulation: the per-request cost of a brute-force sweep is dominated by
// the hash lookup (one FlatMap probe per request per size — see ROADMAP
// PR 1), while the per-size queue mutations are a handful of array writes.
// This engine therefore simulates every size of the grid in a single trace
// traversal sharing ONE id lookup per request:
//
//   * objects are interned once into a dense index (id -> oi);
//   * residency per size is a bitmask word per object, so the hit set for
//     all sizes falls out of one load (grids wider than 64 sizes run in
//     chunks of 64, one traversal per chunk);
//   * each size's queues are array-backed doubly-linked lists over the
//     dense indices (prev = toward the head/newer, next = toward the
//     tail/older), replicating fifo/clock/sieve/s3fifo/s3fifo-d eviction
//     decision-for-decision — including clock's counter reinsertion,
//     sieve's hand walk, and S3-FIFO's small/main/ghost machinery with the
//     adaptive variant's shadow ghosts and rebalancing.
//
// The result is EXACT: per-size hit/miss/byte counts equal brute-force
// Simulate() for every supported policy (the differential test wall in
// tests/analysis/mrc_engine_test.cc pins this). Supported configurations
// are count-based caches of: fifo; clock (any `bits`); sieve; s3fifo and
// s3fifo-d with the exact ghost queue and FIFO queue types (ghost_type=table
// and the small_lru/main_lru/main_sieve ablations fall back to brute force).
//
// For policies outside the family, shards.h's streaming ShardsMrc provides
// an approximate curve from a spatial sample; ComputeMrcCurve dispatches.
#ifndef SRC_ANALYSIS_MRC_ENGINE_H_
#define SRC_ANALYSIS_MRC_ENGINE_H_

#include <string>
#include <vector>

#include "src/core/cache.h"
#include "src/sim/simulator.h"
#include "src/trace/trace_view.h"

namespace s3fifo {

// How a curve is computed. kAuto is the default everywhere: one-pass when
// the (policy, config) is supported, brute force otherwise — the bench
// binaries expose it as --mrc=onepass|brute.
enum class MrcMode {
  kAuto,     // one-pass when supported, else brute force
  kOnePass,  // one-pass only; throws if the policy is unsupported
  kBrute,    // one full simulation per size (the reference path)
  kShards,   // streaming SHARDS sample (approximate, any policy)
};

// Parses "auto"/"onepass"/"brute"/"shards"; throws std::invalid_argument on
// anything else.
MrcMode ParseMrcMode(const std::string& name);

struct MrcCurve {
  std::vector<uint64_t> sizes;      // as requested (order and duplicates kept)
  std::vector<SimResult> results;   // index-aligned full counts per size
  std::vector<double> miss_ratios;  // index-aligned; == results[i].MissRatio()
                                    // except for bias-corrected SHARDS curves
  bool exact = false;               // true for one-pass and brute curves
  std::string policy;
};

// True if OnePassMrc can reproduce `policy` under `config` exactly. The
// capacity field of `config` is ignored (the grid supplies capacities).
bool MrcEngineSupports(const std::string& policy, const CacheConfig& config);

// Computes the exact curve for all `sizes` in ceil(sizes/64) traversals of
// the view. Metrics follow Simulate(): deletes and the first
// `warmup_requests` requests warm the caches but are not measured. Throws
// std::invalid_argument if the policy/config is unsupported or a size is 0.
MrcCurve OnePassMrc(const TraceView& view, const std::string& policy,
                    const std::vector<uint64_t>& sizes,
                    const CacheConfig& base_config = {1, true, "", 42},
                    uint64_t warmup_requests = 0);

struct MrcOptions {
  MrcMode mode = MrcMode::kAuto;
  CacheConfig base_config{1, true, "", 42};
  uint64_t warmup_requests = 0;
  double shards_rate = 0.01;  // sampling rate for MrcMode::kShards
};

// Mode dispatcher: one-pass / brute / SHARDS per `options.mode`.
MrcCurve ComputeMrcCurve(const TraceView& view, const std::string& policy,
                         const std::vector<uint64_t>& sizes, const MrcOptions& options = {});

}  // namespace s3fifo

#endif  // SRC_ANALYSIS_MRC_ENGINE_H_
