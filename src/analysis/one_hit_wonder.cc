#include "src/analysis/one_hit_wonder.h"

#include <unordered_map>

#include "src/util/rng.h"

namespace s3fifo {

double OneHitWonderRatio(const Trace& trace, size_t begin, size_t end) {
  std::unordered_map<uint64_t, uint32_t> counts;
  end = std::min(end, trace.size());
  for (size_t i = begin; i < end; ++i) {
    const Request& r = trace[i];
    if (r.op != OpType::kDelete) {
      ++counts[r.id];
    }
  }
  if (counts.empty()) {
    return 0.0;
  }
  uint64_t one_hit = 0;
  for (const auto& [id, c] : counts) {
    if (c == 1) {
      ++one_hit;
    }
  }
  return static_cast<double>(one_hit) / static_cast<double>(counts.size());
}

double SubSequenceOneHitWonderRatio(const Trace& trace, double object_fraction,
                                    uint32_t samples, uint64_t seed) {
  if (trace.empty()) {
    return 0.0;
  }
  if (object_fraction >= 1.0) {
    return trace.Stats().one_hit_wonder_ratio;
  }
  const uint64_t total_objects = trace.Stats().num_objects;
  const uint64_t target =
      std::max<uint64_t>(static_cast<uint64_t>(object_fraction * total_objects), 1);

  Rng rng(seed);
  double sum = 0.0;
  uint32_t valid = 0;
  std::unordered_map<uint64_t, uint32_t> counts;
  for (uint32_t s = 0; s < samples; ++s) {
    counts.clear();
    const size_t start = rng.NextBounded(trace.size());
    uint64_t one_hit = 0;
    for (size_t i = start; i < trace.size() && counts.size() < target; ++i) {
      const Request& r = trace[i];
      if (r.op == OpType::kDelete) {
        continue;
      }
      uint32_t& c = counts[r.id];
      ++c;
      if (c == 1) {
        ++one_hit;
      } else if (c == 2) {
        --one_hit;
      }
    }
    if (counts.empty()) {
      continue;
    }
    sum += static_cast<double>(one_hit) / static_cast<double>(counts.size());
    ++valid;
  }
  return valid == 0 ? 0.0 : sum / valid;
}

std::vector<double> OneHitWonderCurve(const Trace& trace,
                                      const std::vector<double>& object_fractions,
                                      uint32_t samples, uint64_t seed) {
  std::vector<double> out;
  out.reserve(object_fractions.size());
  for (double f : object_fractions) {
    out.push_back(SubSequenceOneHitWonderRatio(trace, f, samples, seed));
  }
  return out;
}

}  // namespace s3fifo
