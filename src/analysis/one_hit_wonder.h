// One-hit-wonder analysis (paper §3.1, Figs. 1-3): the fraction of objects
// requested exactly once, both for the full trace and for random
// sub-sequences containing a given fraction of the trace's unique objects.
#ifndef SRC_ANALYSIS_ONE_HIT_WONDER_H_
#define SRC_ANALYSIS_ONE_HIT_WONDER_H_

#include <vector>

#include "src/trace/trace.h"

namespace s3fifo {

// One-hit-wonder ratio of requests [begin, end) of the trace.
double OneHitWonderRatio(const Trace& trace, size_t begin, size_t end);

// Mean one-hit-wonder ratio over `samples` random sub-sequences, each grown
// from a random start until it contains `object_fraction` of the trace's
// unique objects (the paper's Monte-Carlo methodology, repeated 100 times).
double SubSequenceOneHitWonderRatio(const Trace& trace, double object_fraction,
                                    uint32_t samples = 20, uint64_t seed = 1);

// Convenience: ratios at several fractions (e.g. {1.0, 0.5, 0.1, 0.01}).
std::vector<double> OneHitWonderCurve(const Trace& trace,
                                      const std::vector<double>& object_fractions,
                                      uint32_t samples = 20, uint64_t seed = 1);

}  // namespace s3fifo

#endif  // SRC_ANALYSIS_ONE_HIT_WONDER_H_
