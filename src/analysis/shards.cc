#include "src/analysis/shards.h"

#include <algorithm>

#include "src/core/cache_factory.h"
#include "src/sim/simulator.h"
#include "src/util/hash.h"

namespace s3fifo {
namespace {

constexpr uint64_t kModulus = 1 << 24;

}  // namespace

Trace ShardsSample(const Trace& trace, double rate) {
  rate = std::clamp(rate, 1e-6, 1.0);
  const uint64_t threshold = static_cast<uint64_t>(rate * kModulus);
  std::vector<Request> sampled;
  sampled.reserve(static_cast<size_t>(trace.size() * rate * 1.2) + 16);
  for (const Request& r : trace.requests()) {
    if ((HashId(r.id ^ 0x5bd1e9955bd1e995ULL) & (kModulus - 1)) < threshold) {
      sampled.push_back(r);
    }
  }
  Trace out(std::move(sampled), trace.name() + "/shards");
  return out;
}

double ShardsMissRatio(const Trace& trace, const std::string& policy, uint64_t cache_size,
                       double rate, const CacheConfig& base_config) {
  Trace sampled = ShardsSample(trace, rate);
  if (sampled.empty()) {
    return 0.0;
  }
  CacheConfig config = base_config;
  config.capacity = std::max<uint64_t>(static_cast<uint64_t>(cache_size * rate), 2);
  auto cache = CreateCache(policy, config);
  return Simulate(sampled, *cache).MissRatio();
}

}  // namespace s3fifo
