#include "src/analysis/shards.h"

#include <algorithm>
#include <stdexcept>

#include "src/core/cache_factory.h"
#include "src/sim/simulator.h"
#include "src/util/hash.h"

namespace s3fifo {
namespace {

constexpr uint64_t kModulus = 1 << 24;

// Expands the user seed into the xor-salt applied to ids before hashing.
// Mix64 decorrelates consecutive seeds; the constant keeps the sampling
// stream independent from FlatMap's placement hash of the same ids.
uint64_t ShardsSalt(uint64_t hash_seed) { return Mix64(hash_seed) ^ 0x5bd1e9955bd1e995ULL; }

bool Sampled(uint64_t id, uint64_t salt, uint64_t threshold) {
  return (HashId(id ^ salt) & (kModulus - 1)) < threshold;
}

// Downsized per-size capacity. The floor of 2 keeps tiny samples from
// degenerating, but never exceeds the full-size capacity so a rate-1.0 run
// is the exact simulation.
uint64_t ScaledCapacity(uint64_t cache_size, double rate) {
  return std::max<uint64_t>(static_cast<uint64_t>(cache_size * rate),
                            std::min<uint64_t>(cache_size, 2));
}

}  // namespace

Trace ShardsSample(const Trace& trace, double rate, uint64_t hash_seed) {
  rate = std::clamp(rate, 1e-6, 1.0);
  const uint64_t threshold = static_cast<uint64_t>(rate * kModulus);
  const uint64_t salt = ShardsSalt(hash_seed);
  std::vector<Request> sampled;
  sampled.reserve(static_cast<size_t>(trace.size() * rate * 1.2) + 16);
  for (const Request& r : trace.requests()) {
    if (Sampled(r.id, salt, threshold)) {
      sampled.push_back(r);
    }
  }
  Trace out(std::move(sampled), trace.name() + "/shards");
  return out;
}

double ShardsMissRatio(const Trace& trace, const std::string& policy, uint64_t cache_size,
                       double rate, const CacheConfig& base_config) {
  Trace sampled = ShardsSample(trace, rate, base_config.seed);
  if (sampled.empty()) {
    return 0.0;
  }
  CacheConfig config = base_config;
  config.capacity = ScaledCapacity(cache_size, std::clamp(rate, 1e-6, 1.0));
  auto cache = CreateCache(policy, config);
  return Simulate(sampled, *cache).MissRatio();
}

MrcCurve ShardsMrc(const TraceView& view, const std::string& policy,
                   const std::vector<uint64_t>& sizes, double rate,
                   const CacheConfig& base_config, uint64_t warmup_requests) {
  rate = std::clamp(rate, 1e-6, 1.0);
  const uint64_t threshold = static_cast<uint64_t>(rate * kModulus);
  const uint64_t salt = ShardsSalt(base_config.seed);

  MrcCurve curve;
  curve.policy = policy;
  curve.exact = false;
  curve.sizes = sizes;
  if (sizes.empty()) {
    return curve;
  }

  std::vector<std::unique_ptr<Cache>> caches;
  caches.reserve(sizes.size());
  for (const uint64_t size : sizes) {
    CacheConfig config = base_config;
    config.capacity = ScaledCapacity(size, rate);
    caches.push_back(CreateCache(policy, config));
    if (caches.back()->RequiresNextAccess() && !view.annotated()) {
      throw std::invalid_argument("policy '" + policy +
                                  "' requires AnnotateNextAccess() on the trace");
    }
  }

  const size_t num_sizes = sizes.size();
  std::vector<SimResult> results(num_sizes);
  // Full-trace measured requests (the N of the N*R expected sample size);
  // warmup and deletes are excluded exactly as in Simulate().
  uint64_t total_measured = 0;
  uint64_t sampled_measured = 0;
  const uint64_t n = view.size();
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t id = view.id(i);
    const bool is_delete = view.op(i) == OpType::kDelete;
    const bool measure = i >= warmup_requests && !is_delete;
    if (measure) {
      ++total_measured;
    }
    if (!Sampled(id, salt, threshold)) {
      continue;
    }
    const Request req = view.At(i);
    if (measure) {
      ++sampled_measured;
    }
    for (size_t k = 0; k < num_sizes; ++k) {
      const bool hit = caches[k]->Get(req);
      if (!measure) {
        continue;
      }
      SimResult& r = results[k];
      ++r.requests;
      r.bytes_requested += req.size;
      if (hit) {
        ++r.hits;
      } else {
        ++r.misses;
        r.bytes_missed += req.size;
      }
    }
  }

  // FAST'15 expected-error correction: treat the shortfall between the
  // expected sample size and the actual one as extra hits, i.e. estimate
  // misses / (N*R) instead of misses / n_sampled.
  const double expected = static_cast<double>(total_measured) * rate;
  curve.results = results;
  curve.miss_ratios.reserve(num_sizes);
  for (size_t k = 0; k < num_sizes; ++k) {
    double mr;
    if (expected > 0.0 && sampled_measured > 0) {
      mr = std::clamp(static_cast<double>(results[k].misses) / expected, 0.0, 1.0);
    } else {
      mr = results[k].MissRatio();  // degenerate sample: report the raw ratio
    }
    curve.miss_ratios.push_back(mr);
  }
  return curve;
}

}  // namespace s3fifo
