// SHARDS spatial sampling (Waldspurger et al., FAST'15; referenced by the
// paper in §6.2.3): simulate on a hash-sampled subset of objects with a
// proportionally downsized cache. Rate R keeps ids with hash(id) mod P < R*P
// — every request to a sampled object is kept, preserving per-object reuse
// behaviour.
//
// The hash salt is derived from an explicit seed (no hidden constant), so
// two samples are reproducible for equal seeds and draw disjoint-ish object
// subsets for different seeds; ShardsMissRatio and ShardsMrc propagate
// CacheConfig::seed into it.
#ifndef SRC_ANALYSIS_SHARDS_H_
#define SRC_ANALYSIS_SHARDS_H_

#include <string>
#include <vector>

#include "src/analysis/mrc_engine.h"
#include "src/core/cache.h"
#include "src/trace/trace.h"
#include "src/trace/trace_view.h"

namespace s3fifo {

// The seed the legacy entry points default to; matches CacheConfig's default
// seed so Trace-level and TraceView-level calls agree.
inline constexpr uint64_t kShardsDefaultSeed = 42;

// Returns the sampled sub-trace (deterministic in the id hash and the seed).
Trace ShardsSample(const Trace& trace, double rate, uint64_t hash_seed = kShardsDefaultSeed);

// Estimates the full-size miss ratio of `policy` at `cache_size` by
// simulating the sampled trace with a cache of size cache_size * rate.
// base_config.seed doubles as the sampling hash seed.
double ShardsMissRatio(const Trace& trace, const std::string& policy, uint64_t cache_size,
                       double rate, const CacheConfig& base_config = {1, true, "", 42});

// Streaming one-pass approximate MRC: a single traversal of the view feeds
// the hash-sampled request stream (~rate of the requests) into one downsized
// cache per grid size — no materialized sub-trace, any policy. Applies the
// FAST'15 expected-error correction: the shortfall between the expected
// sample size N*R and the actual sample is credited to the hit count before
// the ratio is formed, which removes most of the small-sample bias.
// miss_ratios holds the corrected estimates; results holds the raw sampled
// counts. base_config.seed doubles as the sampling hash seed. At rate 1.0
// the curve equals the exact brute-force curve.
MrcCurve ShardsMrc(const TraceView& view, const std::string& policy,
                   const std::vector<uint64_t>& sizes, double rate,
                   const CacheConfig& base_config = {1, true, "", 42},
                   uint64_t warmup_requests = 0);

}  // namespace s3fifo

#endif  // SRC_ANALYSIS_SHARDS_H_
