// SHARDS spatial sampling (Waldspurger et al., FAST'15; referenced by the
// paper in §6.2.3): simulate on a hash-sampled subset of objects with a
// proportionally downsized cache. Rate R keeps ids with hash(id) mod P < R*P
// — every request to a sampled object is kept, preserving per-object reuse
// behaviour.
#ifndef SRC_ANALYSIS_SHARDS_H_
#define SRC_ANALYSIS_SHARDS_H_

#include <string>

#include "src/core/cache.h"
#include "src/trace/trace.h"

namespace s3fifo {

// Returns the sampled sub-trace (deterministic in the id hash).
Trace ShardsSample(const Trace& trace, double rate);

// Estimates the full-size miss ratio of `policy` at `cache_size` by
// simulating the sampled trace with a cache of size cache_size * rate.
double ShardsMissRatio(const Trace& trace, const std::string& policy, uint64_t cache_size,
                       double rate, const CacheConfig& base_config = {1, true, "", 42});

}  // namespace s3fifo

#endif  // SRC_ANALYSIS_SHARDS_H_
