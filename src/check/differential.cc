#include "src/check/differential.h"

#include <algorithm>
#include <sstream>

#include "src/core/cache_factory.h"

namespace s3fifo {
namespace check {
namespace {

std::string IdList(const std::vector<uint64_t>& ids) {
  std::ostringstream out;
  out << "{";
  for (size_t i = 0; i < ids.size(); ++i) {
    out << (i == 0 ? "" : ",") << ids[i];
  }
  out << "}";
  return out.str();
}

std::string Describe(const Request& req) {
  std::ostringstream out;
  switch (req.op) {
    case OpType::kGet:
      out << "get";
      break;
    case OpType::kSet:
      out << "set";
      break;
    case OpType::kDelete:
      out << "del";
      break;
  }
  out << " id=" << req.id << " size=" << req.size;
  return out.str();
}

}  // namespace

Divergence RunDifferential(const std::vector<Request>& requests, Cache& cache,
                           ReferenceModel& oracle) {
  std::vector<uint64_t> cache_evicted;
  cache.set_eviction_listener(
      [&cache_evicted](const EvictionEvent& event) { cache_evicted.push_back(event.id); });

  Divergence div;
  for (uint64_t i = 0; i < requests.size(); ++i) {
    const Request& req = requests[i];
    cache_evicted.clear();
    const bool cache_hit = cache.Get(req);
    const StepOutcome oracle_out = oracle.Step(req);
    std::sort(cache_evicted.begin(), cache_evicted.end());

    std::ostringstream what;
    if (cache_hit != oracle_out.hit) {
      what << "hit: cache=" << cache_hit << " oracle=" << oracle_out.hit;
    } else if (cache_evicted != oracle_out.evicted) {
      what << "evicted: cache=" << IdList(cache_evicted)
           << " oracle=" << IdList(oracle_out.evicted);
    } else if (cache.occupied() != oracle_out.occupied) {
      what << "occupied: cache=" << cache.occupied() << " oracle=" << oracle_out.occupied;
    } else if (cache.Contains(req.id) != oracle.Contains(req.id)) {
      what << "contains(" << req.id << "): cache=" << cache.Contains(req.id)
           << " oracle=" << oracle.Contains(req.id);
    } else {
      continue;
    }
    div.found = true;
    div.index = i;
    div.request = req;
    what << " after request " << i << " (" << Describe(req) << ")";
    div.what = what.str();
    break;
  }

  cache.set_eviction_listener(nullptr);
  return div;
}

Divergence RunDifferential(const std::vector<Request>& requests, std::string_view policy,
                           const CacheConfig& config) {
  auto cache = CreateCache(policy, config);
  auto oracle = CreateReferenceModel(policy, config);
  return RunDifferential(requests, *cache, *oracle);
}

}  // namespace check
}  // namespace s3fifo
