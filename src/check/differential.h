// Differential driver: replays one request stream simultaneously through an
// optimized policy (src/policies/, via the Cache interface) and its naive
// reference oracle, comparing after every request:
//
//   * the hit/miss decision,
//   * the set of ids that left residency (collected from the cache's
//     eviction listener, order-insensitive),
//   * the occupied units, and
//   * residency of the requested id.
//
// The run stops at the first divergence, which records enough context (index,
// request, human-readable description) for the shrinker to minimize and the
// replay file to reproduce.
#ifndef SRC_CHECK_DIFFERENTIAL_H_
#define SRC_CHECK_DIFFERENTIAL_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/check/reference_model.h"
#include "src/core/cache.h"
#include "src/trace/request.h"

namespace s3fifo {
namespace check {

struct Divergence {
  bool found = false;
  uint64_t index = 0;  // request index of the first divergence
  Request request;
  std::string what;  // e.g. "occupied: cache=65 oracle=64"

  explicit operator bool() const { return found; }
};

// Low-level entry point: both sides are provided by the caller (the mutation
// smoke test pairs a sabotaged cache with a healthy oracle this way). The
// cache's eviction listener is claimed for the duration of the run and reset
// on return. Both sides must be freshly constructed.
Divergence RunDifferential(const std::vector<Request>& requests, Cache& cache,
                           ReferenceModel& oracle);

// Convenience: builds the optimized cache and the oracle from the factory
// name + config. Throws std::invalid_argument if the policy has no oracle.
Divergence RunDifferential(const std::vector<Request>& requests, std::string_view policy,
                           const CacheConfig& config);

}  // namespace check
}  // namespace s3fifo

#endif  // SRC_CHECK_DIFFERENTIAL_H_
