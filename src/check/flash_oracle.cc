#include "src/check/flash_oracle.h"

#include <algorithm>
#include <sstream>

#include "src/util/hash.h"

namespace s3fifo {
namespace check {
namespace {

uint64_t FlashCapacityBytes(const LogFlashCacheConfig& config) {
  uint64_t bytes = config.log.segment_bytes * config.log.num_segments;
  if (config.small_object_threshold > 0) {
    bytes += config.set_store.set_bytes * config.set_store.num_sets;
  }
  return bytes;
}

uint64_t AutoGhostEntries(const LogFlashCacheConfig& config) {
  if (config.ghost_entries > 0) {
    return config.ghost_entries;
  }
  return std::max<uint64_t>(FlashCapacityBytes(config) / 4096, 64);
}

LogFlashCacheConfig Clamped(LogFlashCacheConfig config) {
  if (config.small_object_threshold > 0) {
    config.small_object_threshold =
        std::min(config.small_object_threshold, config.set_store.set_bytes + 1);
  }
  return config;
}

uint8_t MaxPriority(const SegmentLogConfig& config) {
  if (config.ordering == LogOrdering::kRipq) {
    const uint32_t sections = std::max<uint32_t>(config.ripq_sections, 1);
    return static_cast<uint8_t>(std::min<uint32_t>(sections - 1, 255));
  }
  return config.gc_readmit ? 1 : 0;
}

}  // namespace

NaiveFlashModel::NaiveFlashModel(const LogFlashCacheConfig& config,
                                 std::unique_ptr<AdmissionPolicy> admission)
    : config_(Clamped(config)),
      admission_(std::move(admission)),
      rejected_bound_(4 * AutoGhostEntries(config_) + 1024),
      max_priority_(MaxPriority(config_.log)),
      ghost_(AutoGhostEntries(config_)) {
  // The optimized SegmentLog / SetAssocStore clamp their own configs; mirror
  // the clamps here without touching the ghost/rejected formulas above.
  config_.log.num_segments = std::max<uint64_t>(config_.log.num_segments, 1);
  config_.log.segment_bytes = std::max<uint64_t>(config_.log.segment_bytes, 1);
  config_.log.insert_priority = std::min<uint32_t>(config_.log.insert_priority, max_priority_);
  config_.set_store.num_sets = std::max<uint64_t>(config_.set_store.num_sets, 1);
  config_.set_store.set_bytes = std::max<uint64_t>(config_.set_store.set_bytes, 1);
  log_num_segments_ = config_.log.num_segments;
  sets_.resize(config_.set_store.num_sets);
}

// --- DRAM front (front of the vector = most recent) ----------------------

NaiveFlashModel::NDramEntry* NaiveFlashModel::FindDram(uint64_t id) {
  for (NDramEntry& e : dram_) {
    if (e.id == id) {
      return &e;
    }
  }
  return nullptr;
}

void NaiveFlashModel::EraseDram(uint64_t id) {
  for (size_t i = 0; i < dram_.size(); ++i) {
    if (dram_[i].id == id) {
      dram_.erase(dram_.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

uint64_t NaiveFlashModel::DramOccupied() const {
  uint64_t total = 0;
  for (const NDramEntry& e : dram_) {
    total += e.size;
  }
  return total;
}

void NaiveFlashModel::RecordRejection(uint64_t id) {
  if (rejected_at_.size() > rejected_bound_) {
    rejected_at_.clear();
  }
  for (auto& kv : rejected_at_) {
    if (kv.first == id) {
      kv.second = clock_;
      return;
    }
  }
  rejected_at_.emplace_back(id, clock_);
}

void NaiveFlashModel::InsertDram(uint64_t id, uint32_t size,
                                 std::vector<uint64_t>* evicted) {
  if (size > config_.dram_capacity_bytes) {
    AdmissionCandidate c;
    c.id = id;
    c.size = size;
    c.now = clock_;
    if (admission_->Admit(c)) {
      WriteFlash(id, size, evicted);
    } else {
      RecordRejection(id);
    }
    return;
  }
  while (DramOccupied() + size > config_.dram_capacity_bytes && !dram_.empty()) {
    EvictDramTail(evicted);
  }
  NDramEntry e;
  e.id = id;
  e.size = size;
  e.reads = 0;
  e.insert_time = clock_;
  dram_.insert(dram_.begin(), e);
}

void NaiveFlashModel::EvictDramTail(std::vector<uint64_t>* evicted) {
  if (dram_.empty()) {
    return;
  }
  const NDramEntry tail = dram_.back();
  dram_.pop_back();
  AdmissionCandidate c;
  c.id = tail.id;
  c.size = tail.size;
  c.dram_reads = tail.reads;
  c.dram_residency = clock_ - tail.insert_time;
  c.now = clock_;
  if (admission_->Admit(c)) {
    WriteFlash(tail.id, tail.size, evicted);
  } else {
    if (config_.dram_discipline == DramDiscipline::kSmallFifo) {
      ghost_.Insert(tail.id);
    }
    RecordRejection(tail.id);
  }
}

void NaiveFlashModel::WriteFlash(uint64_t id, uint32_t size,
                                 std::vector<uint64_t>* evicted) {
  if (config_.small_object_threshold > 0 && size < config_.small_object_threshold) {
    SetInsert(id, size, evicted);
  } else {
    LogInsert(id, size, evicted);
  }
}

// --- Segment log (flat) ---------------------------------------------------

uint64_t NaiveFlashModel::SegmentWriteOff(const NSegment& seg) const {
  uint64_t off = 0;
  for (const NLogEntry& e : seg.entries) {
    off += e.size;  // dead bytes still occupy their slot until GC
  }
  return off;
}

NaiveFlashModel::NLogEntry* NaiveFlashModel::FindLog(uint64_t id) {
  for (NSegment& seg : sealed_) {
    for (NLogEntry& e : seg.entries) {
      if (e.live && e.id == id) {
        return &e;
      }
    }
  }
  if (open_valid_) {
    for (NLogEntry& e : open_.entries) {
      if (e.live && e.id == id) {
        return &e;
      }
    }
  }
  return nullptr;
}

bool NaiveFlashModel::LogContains(uint64_t id) const {
  return const_cast<NaiveFlashModel*>(this)->FindLog(id) != nullptr;
}

uint64_t NaiveFlashModel::LogLiveBytes() const {
  uint64_t total = 0;
  for (const NSegment& seg : sealed_) {
    for (const NLogEntry& e : seg.entries) {
      if (e.live) {
        total += e.size;
      }
    }
  }
  if (open_valid_) {
    for (const NLogEntry& e : open_.entries) {
      if (e.live) {
        total += e.size;
      }
    }
  }
  return total;
}

uint64_t NaiveFlashModel::LogSegmentsInUse() const {
  return sealed_.size() + (open_valid_ ? 1 : 0);
}

void NaiveFlashModel::LogLookup(uint64_t id) {
  NLogEntry* e = FindLog(id);
  if (e != nullptr) {
    e->priority = static_cast<uint8_t>(std::min<uint32_t>(e->priority + 1, max_priority_));
  }
}

void NaiveFlashModel::LogErase(uint64_t id) {
  NLogEntry* e = FindLog(id);
  if (e != nullptr) {
    e->live = false;
  }
}

void NaiveFlashModel::LogInsert(uint64_t id, uint32_t size,
                                std::vector<uint64_t>* evicted) {
  if (size > config_.log.segment_bytes) {
    return;  // oversize reject (stats-only in the optimized log)
  }
  LogErase(id);  // overwrite dead-marks the old copy
  LogAppend(id, size, static_cast<uint8_t>(config_.log.insert_priority),
            /*is_rewrite=*/false, evicted);
  log_admitted_bytes_ += size;
  LogDrainPending(evicted);
}

void NaiveFlashModel::LogAppend(uint64_t id, uint32_t size, uint8_t priority,
                                bool is_rewrite, std::vector<uint64_t>* evicted) {
  if (open_valid_ && SegmentWriteOff(open_) + size > config_.log.segment_bytes) {
    open_.seal_seq = next_seal_seq_++;
    sealed_.push_back(open_);
    open_ = NSegment();
    open_valid_ = false;
  }
  if (!open_valid_) {
    while (sealed_.size() + 1 > log_num_segments_ && !sealed_.empty()) {
      LogGcOldest(evicted);
    }
    open_ = NSegment();
    open_valid_ = true;
  }
  NLogEntry e;
  e.id = id;
  e.size = size;
  e.priority = priority;
  e.live = true;
  open_.entries.push_back(e);
  log_device_bytes_ += size;
  if (is_rewrite) {
    gc_rewrite_bytes_ += size;
  }
}

void NaiveFlashModel::LogGcOldest(std::vector<uint64_t>* evicted) {
  const NSegment victim = sealed_.front();
  sealed_.erase(sealed_.begin());
  ++segments_gced_;
  for (const NLogEntry& e : victim.entries) {
    if (!e.live) {
      continue;
    }
    if (e.priority > 0) {
      NPending p;
      p.id = e.id;
      p.size = e.size;
      p.priority = static_cast<uint8_t>(e.priority - 1);
      pending_.push_back(p);
    } else if (evicted != nullptr) {
      evicted->push_back(e.id);
    }
  }
}

void NaiveFlashModel::LogDrainPending(std::vector<uint64_t>* evicted) {
  while (!pending_.empty()) {
    const NPending p = pending_.front();
    pending_.erase(pending_.begin());
    LogAppend(p.id, p.size, p.priority, /*is_rewrite=*/true, evicted);
  }
}

// --- Set store (flat) -----------------------------------------------------

uint64_t NaiveFlashModel::SetOf(uint64_t id) const {
  return Mix64(id ^ config_.set_store.hash_seed) % config_.set_store.num_sets;
}

bool NaiveFlashModel::SetContains(uint64_t id) const {
  for (const NSetEntry& e : sets_[SetOf(id)]) {
    if (e.id == id) {
      return true;
    }
  }
  return false;
}

uint64_t NaiveFlashModel::SetLiveBytes() const {
  uint64_t total = 0;
  for (const auto& set : sets_) {
    for (const NSetEntry& e : set) {
      total += e.size;
    }
  }
  return total;
}

void NaiveFlashModel::SetInsert(uint64_t id, uint32_t size,
                                std::vector<uint64_t>* evicted) {
  if (size > config_.set_store.set_bytes) {
    return;  // oversize reject
  }
  std::vector<NSetEntry>& set = sets_[SetOf(id)];
  for (size_t i = 0; i < set.size(); ++i) {
    if (set[i].id == id) {
      set.erase(set.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
  auto occupied = [&set]() {
    uint64_t total = 0;
    for (const NSetEntry& e : set) {
      total += e.size;
    }
    return total;
  };
  while (occupied() + size > config_.set_store.set_bytes && !set.empty()) {
    if (evicted != nullptr) {
      evicted->push_back(set.front().id);
    }
    set.erase(set.begin());
  }
  NSetEntry e;
  e.id = id;
  e.size = size;
  set.push_back(e);
  ++set_page_writes_;
}

void NaiveFlashModel::SetErase(uint64_t id) {
  std::vector<NSetEntry>& set = sets_[SetOf(id)];
  for (size_t i = 0; i < set.size(); ++i) {
    if (set[i].id == id) {
      set.erase(set.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

// --- Step / snapshot ------------------------------------------------------

bool NaiveFlashModel::Contains(uint64_t id) const {
  return const_cast<NaiveFlashModel*>(this)->FindDram(id) != nullptr || LogContains(id) ||
         SetContains(id);
}

std::string NaiveFlashModel::CheckByteConservation() const {
  if (log_device_bytes_ != log_admitted_bytes_ + gc_rewrite_bytes_) {
    std::ostringstream out;
    out << "oracle log conservation: device=" << log_device_bytes_
        << " admitted=" << log_admitted_bytes_ << " gc_rewrite=" << gc_rewrite_bytes_;
    return out.str();
  }
  return "";
}

FlashStepOutcome NaiveFlashModel::Snapshot(std::vector<uint64_t> evicted) const {
  FlashStepOutcome out;
  out.hit = last_hit_;
  out.tier = last_tier_;
  std::sort(evicted.begin(), evicted.end());
  out.flash_evicted = std::move(evicted);
  out.dram_occupied = DramOccupied();
  out.log_live_bytes = LogLiveBytes();
  out.set_live_bytes = SetLiveBytes();
  out.log_device_bytes = log_device_bytes_;
  out.log_admitted_bytes = log_admitted_bytes_;
  out.gc_rewrite_bytes = gc_rewrite_bytes_;
  out.segments_gced = segments_gced_;
  out.set_page_writes = set_page_writes_ * config_.set_store.set_bytes;
  return out;
}

FlashStepOutcome NaiveFlashModel::Step(const Request& req) {
  ++clock_;
  std::vector<uint64_t> evicted;

  if (req.op == OpType::kDelete) {
    EraseDram(req.id);
    LogErase(req.id);
    SetErase(req.id);
    last_hit_ = false;
    last_tier_ = -1;
    return Snapshot(std::move(evicted));
  }

  NDramEntry* dram_e = FindDram(req.id);
  if (dram_e != nullptr) {
    ++dram_e->reads;
    if (config_.dram_discipline == DramDiscipline::kLru) {
      const NDramEntry copy = *dram_e;
      EraseDram(req.id);
      dram_.insert(dram_.begin(), copy);
      dram_e = &dram_.front();
    }
    if (req.op == OpType::kSet) {
      EraseDram(req.id);
      InsertDram(req.id, req.size, &evicted);
    }
    last_hit_ = true;
    last_tier_ = 1;
    return Snapshot(std::move(evicted));
  }

  const bool in_log = LogContains(req.id);
  if (in_log || SetContains(req.id)) {
    if (req.op == OpType::kSet) {
      if (in_log) {
        LogErase(req.id);
      } else {
        SetErase(req.id);
      }
      WriteFlash(req.id, req.size, &evicted);
    } else if (in_log) {
      LogLookup(req.id);
    }
    last_hit_ = true;
    last_tier_ = in_log ? 2 : 3;
    return Snapshot(std::move(evicted));
  }

  // Miss.
  for (size_t i = 0; i < rejected_at_.size(); ++i) {
    if (rejected_at_[i].first == req.id) {
      admission_->OnRejectedReuse(req.id, clock_ - rejected_at_[i].second);
      rejected_at_.erase(rejected_at_.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
  last_hit_ = false;
  last_tier_ = 0;
  if (config_.dram_discipline == DramDiscipline::kSmallFifo && ghost_.Contains(req.id)) {
    ghost_.Remove(req.id);
    WriteFlash(req.id, req.size, &evicted);
    return Snapshot(std::move(evicted));
  }
  InsertDram(req.id, req.size, &evicted);
  return Snapshot(std::move(evicted));
}

FlashStepOutcome NaiveFlashModel::Resize(uint64_t num_segments) {
  std::vector<uint64_t> evicted;
  log_num_segments_ = std::max<uint64_t>(num_segments, 1);
  while (LogSegmentsInUse() > log_num_segments_ && !sealed_.empty()) {
    LogGcOldest(&evicted);
    LogDrainPending(&evicted);
  }
  last_hit_ = false;
  last_tier_ = -1;
  return Snapshot(std::move(evicted));
}

// --- Differential driver --------------------------------------------------

namespace {

std::string IdList(const std::vector<uint64_t>& ids) {
  std::ostringstream out;
  out << "{";
  for (size_t i = 0; i < ids.size(); ++i) {
    out << (i == 0 ? "" : ",") << ids[i];
  }
  out << "}";
  return out.str();
}

std::string DescribeFlashRequest(const Request& req) {
  std::ostringstream out;
  switch (req.op) {
    case OpType::kGet:
      out << "get";
      break;
    case OpType::kSet:
      out << "set";
      break;
    case OpType::kDelete:
      out << "del";
      break;
  }
  out << " id=" << req.id << " size=" << req.size;
  return out.str();
}

// Observes the optimized cache's step through its stats deltas and the
// last_flash_evicted() buffer, producing the same outcome shape.
FlashStepOutcome ObserveCache(const LogStructuredFlashCache& cache,
                              const LogFlashCacheStats& prev, bool hit) {
  const LogFlashCacheStats& now = cache.stats();
  FlashStepOutcome out;
  out.hit = hit;
  if (now.deletes > prev.deletes) {
    out.tier = -1;
  } else if (now.dram_hits > prev.dram_hits) {
    out.tier = 1;
  } else if (now.log_hits > prev.log_hits) {
    out.tier = 2;
  } else if (now.set_hits > prev.set_hits) {
    out.tier = 3;
  } else {
    out.tier = 0;
  }
  out.flash_evicted = cache.last_flash_evicted();
  std::sort(out.flash_evicted.begin(), out.flash_evicted.end());
  out.dram_occupied = cache.dram_occupied();
  out.log_live_bytes = cache.log().live_bytes();
  out.set_live_bytes = cache.sets().live_bytes();
  out.log_device_bytes = cache.log_stats().device_bytes_written;
  out.log_admitted_bytes = cache.log_stats().admitted_bytes;
  out.gc_rewrite_bytes = cache.log_stats().gc_rewrite_bytes;
  out.segments_gced = cache.log_stats().segments_gced;
  out.set_page_writes = cache.set_stats().device_bytes_written;
  return out;
}

std::string CompareOutcomes(const FlashStepOutcome& cache, const FlashStepOutcome& oracle) {
  std::ostringstream what;
  if (cache.hit != oracle.hit) {
    what << "hit: cache=" << cache.hit << " oracle=" << oracle.hit;
  } else if (cache.tier != oracle.tier) {
    what << "tier: cache=" << cache.tier << " oracle=" << oracle.tier;
  } else if (cache.flash_evicted != oracle.flash_evicted) {
    what << "flash evicted: cache=" << IdList(cache.flash_evicted)
         << " oracle=" << IdList(oracle.flash_evicted);
  } else if (cache.dram_occupied != oracle.dram_occupied) {
    what << "dram occupied: cache=" << cache.dram_occupied
         << " oracle=" << oracle.dram_occupied;
  } else if (cache.log_live_bytes != oracle.log_live_bytes) {
    what << "log live bytes: cache=" << cache.log_live_bytes
         << " oracle=" << oracle.log_live_bytes;
  } else if (cache.set_live_bytes != oracle.set_live_bytes) {
    what << "set live bytes: cache=" << cache.set_live_bytes
         << " oracle=" << oracle.set_live_bytes;
  } else if (cache.log_device_bytes != oracle.log_device_bytes) {
    what << "log device bytes: cache=" << cache.log_device_bytes
         << " oracle=" << oracle.log_device_bytes;
  } else if (cache.log_admitted_bytes != oracle.log_admitted_bytes) {
    what << "log admitted bytes: cache=" << cache.log_admitted_bytes
         << " oracle=" << oracle.log_admitted_bytes;
  } else if (cache.gc_rewrite_bytes != oracle.gc_rewrite_bytes) {
    what << "gc rewrite bytes: cache=" << cache.gc_rewrite_bytes
         << " oracle=" << oracle.gc_rewrite_bytes;
  } else if (cache.segments_gced != oracle.segments_gced) {
    what << "segments gced: cache=" << cache.segments_gced
         << " oracle=" << oracle.segments_gced;
  } else if (cache.set_page_writes != oracle.set_page_writes) {
    what << "set device bytes: cache=" << cache.set_page_writes
         << " oracle=" << oracle.set_page_writes;
  }
  return what.str();
}

// The invariant side of the wall: device bytes are conserved on the
// optimized cache (checked after every request, which subsumes "after every
// GC") — plus the oracle's own self-check.
std::string CheckConservation(const LogStructuredFlashCache& cache,
                              const NaiveFlashModel& oracle) {
  const SegmentLogStats& log = cache.log_stats();
  if (log.device_bytes_written != log.admitted_bytes + log.gc_rewrite_bytes) {
    std::ostringstream out;
    out << "log conservation: device=" << log.device_bytes_written
        << " admitted=" << log.admitted_bytes << " gc_rewrite=" << log.gc_rewrite_bytes;
    return out.str();
  }
  const SetStoreStats& set = cache.set_stats();
  if (set.device_bytes_written != set.page_writes * cache.sets().set_bytes()) {
    std::ostringstream out;
    out << "set conservation: device=" << set.device_bytes_written
        << " page_writes=" << set.page_writes << " set_bytes=" << cache.sets().set_bytes();
    return out.str();
  }
  return oracle.CheckByteConservation();
}

}  // namespace

Divergence RunFlashDifferential(const std::vector<Request>& requests,
                                const LogFlashCacheConfig& config,
                                const std::string& admission_name, uint64_t reuse_horizon,
                                uint64_t admission_seed,
                                const FlashResizeSchedule& resizes) {
  LogStructuredFlashCache cache(
      config, CreateAdmissionPolicy(admission_name, reuse_horizon, admission_seed));
  NaiveFlashModel oracle(config,
                         CreateAdmissionPolicy(admission_name, reuse_horizon, admission_seed));

  Divergence div;
  for (uint64_t i = 0; i < requests.size(); ++i) {
    if (resizes.period > 0 && i > 0 && i % resizes.period == 0) {
      const uint64_t segments =
          resizes.min_segments + Mix64(resizes.seed ^ i) % std::max<uint64_t>(resizes.span, 1);
      const LogFlashCacheStats prev = cache.stats();
      cache.ResizeFlash(segments);
      FlashStepOutcome cache_out = ObserveCache(cache, prev, /*hit=*/false);
      cache_out.tier = -1;  // resize is not a request; match the oracle's label
      const FlashStepOutcome oracle_out = oracle.Resize(segments);
      std::string what = CompareOutcomes(cache_out, oracle_out);
      if (what.empty()) {
        what = CheckConservation(cache, oracle);
      }
      if (!what.empty()) {
        div.found = true;
        div.index = i;
        div.request = requests[i];
        div.what = what + " after resize to " + std::to_string(segments) + " segments (index " +
                   std::to_string(i) + ")";
        return div;
      }
    }

    const Request& req = requests[i];
    const LogFlashCacheStats prev = cache.stats();
    const bool hit = cache.Get(req);
    const FlashStepOutcome cache_out = ObserveCache(cache, prev, hit);
    const FlashStepOutcome oracle_out = oracle.Step(req);
    std::string what = CompareOutcomes(cache_out, oracle_out);
    if (what.empty()) {
      what = CheckConservation(cache, oracle);
    }
    if (!what.empty()) {
      div.found = true;
      div.index = i;
      div.request = req;
      div.what = what + " after request " + std::to_string(i) + " (" +
                 DescribeFlashRequest(req) + ")";
      return div;
    }
  }
  return div;
}

}  // namespace check
}  // namespace s3fifo
