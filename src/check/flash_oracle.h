// Naive reference oracle for the log-structured flash cache, and the
// differential driver that pins LogStructuredFlashCache to it bit-for-bit.
//
// The oracle re-implements the full two-tier semantics — DRAM front (LRU or
// small-FIFO + ghost), admission gate, segment log with GC, set-associative
// small-object store — with deliberately flat structures: plain vectors
// scanned linearly, occupancy recomputed by summation, no index maps, no
// intrusive lists. Same philosophy as reference_model.h: the oracle is the
// side you trust when the optimized cache diverges.
//
// Both sides construct their own AdmissionPolicy from the same (name,
// horizon, seed); since the policies are deterministic functions of their
// candidate/feedback streams, any divergence in those streams surfaces as a
// later observable divergence instead of being masked.
//
// The driver compares, after every request (and every scheduled capacity
// resize): the hit decision and tier, the sorted set of ids that left the
// flash tier, DRAM / log / set occupancies, device-bytes-written, admitted
// bytes, GC rewrite bytes, set-page writes, segments GCed — and the byte-
// conservation invariant on both sides:
//
//   log: device_bytes_written == admitted_bytes + gc_rewrite_bytes
//   set: device_bytes_written == page_writes * set_bytes
#ifndef SRC_CHECK_FLASH_ORACLE_H_
#define SRC_CHECK_FLASH_ORACLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/check/differential.h"
#include "src/check/reference_model.h"
#include "src/flash/log_flash_cache.h"
#include "src/trace/request.h"

namespace s3fifo {
namespace check {

// Everything observable about one flash-cache step.
struct FlashStepOutcome {
  bool hit = false;
  int tier = 0;  // 0 = miss, 1 = dram, 2 = log, 3 = set, -1 = delete
  std::vector<uint64_t> flash_evicted;  // ids that left flash, ascending
  uint64_t dram_occupied = 0;
  uint64_t log_live_bytes = 0;
  uint64_t set_live_bytes = 0;
  uint64_t log_device_bytes = 0;
  uint64_t log_admitted_bytes = 0;
  uint64_t gc_rewrite_bytes = 0;
  uint64_t segments_gced = 0;
  uint64_t set_page_writes = 0;
};

class NaiveFlashModel {
 public:
  NaiveFlashModel(const LogFlashCacheConfig& config,
                  std::unique_ptr<AdmissionPolicy> admission);

  FlashStepOutcome Step(const Request& req);
  // Mirrors LogStructuredFlashCache::ResizeFlash; returns the outcome of the
  // resize (tier is -1, hit false).
  FlashStepOutcome Resize(uint64_t num_segments);

  bool Contains(uint64_t id) const;
  // "" when device == admitted + rewrites (log) and device == pages * bytes
  // (sets); else a description. The driver calls this after every step.
  std::string CheckByteConservation() const;

 private:
  struct NDramEntry {
    uint64_t id = 0;
    uint32_t size = 0;
    uint32_t reads = 0;
    uint64_t insert_time = 0;
  };
  struct NLogEntry {
    uint64_t id = 0;
    uint32_t size = 0;
    uint8_t priority = 0;
    bool live = false;
  };
  struct NSegment {
    uint64_t seal_seq = 0;
    std::vector<NLogEntry> entries;
  };
  struct NSetEntry {
    uint64_t id = 0;
    uint32_t size = 0;
  };
  struct NPending {
    uint64_t id = 0;
    uint32_t size = 0;
    uint8_t priority = 0;
  };

  // DRAM front.
  NDramEntry* FindDram(uint64_t id);
  void EraseDram(uint64_t id);
  void InsertDram(uint64_t id, uint32_t size, std::vector<uint64_t>* evicted);
  void EvictDramTail(std::vector<uint64_t>* evicted);
  uint64_t DramOccupied() const;  // summation
  void RecordRejection(uint64_t id);

  // Flash routing.
  void WriteFlash(uint64_t id, uint32_t size, std::vector<uint64_t>* evicted);

  // Segment log (flat).
  NLogEntry* FindLog(uint64_t id);
  bool LogContains(uint64_t id) const;
  void LogInsert(uint64_t id, uint32_t size, std::vector<uint64_t>* evicted);
  void LogErase(uint64_t id);
  void LogLookup(uint64_t id);
  void LogAppend(uint64_t id, uint32_t size, uint8_t priority, bool is_rewrite,
                 std::vector<uint64_t>* evicted);
  void LogGcOldest(std::vector<uint64_t>* evicted);
  void LogDrainPending(std::vector<uint64_t>* evicted);
  uint64_t LogSegmentsInUse() const;
  uint64_t LogLiveBytes() const;  // summation over every segment
  uint64_t SegmentWriteOff(const NSegment& seg) const;

  // Set store (flat).
  uint64_t SetOf(uint64_t id) const;
  bool SetContains(uint64_t id) const;
  void SetInsert(uint64_t id, uint32_t size, std::vector<uint64_t>* evicted);
  void SetErase(uint64_t id);
  uint64_t SetLiveBytes() const;  // summation

  FlashStepOutcome Snapshot(std::vector<uint64_t> evicted) const;

  LogFlashCacheConfig config_;
  std::unique_ptr<AdmissionPolicy> admission_;
  uint64_t clock_ = 0;
  uint64_t rejected_bound_ = 0;
  uint8_t max_priority_ = 0;

  std::vector<NDramEntry> dram_;  // front = most recent, back = eviction tail
  NaiveGhost ghost_;
  std::vector<std::pair<uint64_t, uint64_t>> rejected_at_;  // (id, clock)

  std::vector<NSegment> sealed_;  // oldest seal first
  NSegment open_;
  bool open_valid_ = false;
  uint64_t next_seal_seq_ = 1;
  std::vector<NPending> pending_;
  uint64_t log_num_segments_ = 0;
  uint64_t log_device_bytes_ = 0;
  uint64_t log_admitted_bytes_ = 0;
  uint64_t gc_rewrite_bytes_ = 0;
  uint64_t segments_gced_ = 0;

  std::vector<std::vector<NSetEntry>> sets_;
  uint64_t set_page_writes_ = 0;

  bool last_hit_ = false;
  int last_tier_ = 0;
};

// Deterministic mid-run segment-budget resizes for the fuzzer: at every
// multiple of `period` (and index > 0), both sides are resized to
// min_segments + Mix64(seed ^ index) % span. period == 0 disables.
struct FlashResizeSchedule {
  uint64_t period = 0;
  uint64_t seed = 0;
  uint64_t min_segments = 2;
  uint64_t span = 16;
};

// Replays the stream through LogStructuredFlashCache and NaiveFlashModel in
// lockstep; stops at the first divergence (or conservation violation).
Divergence RunFlashDifferential(const std::vector<Request>& requests,
                                const LogFlashCacheConfig& config,
                                const std::string& admission_name, uint64_t reuse_horizon,
                                uint64_t admission_seed,
                                const FlashResizeSchedule& resizes = {});

}  // namespace check
}  // namespace s3fifo

#endif  // SRC_CHECK_FLASH_ORACLE_H_
