#include "src/check/invariants.h"

#include <sstream>

#include "src/core/cache_factory.h"
#include "src/policies/s3fifo.h"
#include "src/sim/simulator.h"
#include "src/trace/next_access.h"
#include "src/trace/trace.h"

namespace s3fifo {
namespace check {
namespace {

std::string At(uint64_t index, const Request& req) {
  std::ostringstream out;
  out << " at request " << index << " (id=" << req.id << " size=" << req.size
      << " op=" << static_cast<int>(req.op) << ")";
  return out.str();
}

}  // namespace

InvariantReport CheckRequestInvariants(std::string_view policy, const CacheConfig& config,
                                       const std::vector<Request>& requests,
                                       uint64_t max_violations) {
  auto cache = CreateCache(policy, config);
  auto* s3 = dynamic_cast<S3FifoCache*>(cache.get());

  InvariantReport report;
  auto violate = [&](const std::string& message) {
    if (report.violations.size() < max_violations) {
      report.violations.push_back(message);
    }
  };

  for (uint64_t i = 0; i < requests.size(); ++i) {
    const Request& req = requests[i];
    const bool hit = cache->Get(req);

    if (req.op == OpType::kDelete) {
      if (hit) {
        violate("delete reported as hit" + At(i, req));
      }
      if (cache->Contains(req.id)) {
        violate("object resident after explicit delete" + At(i, req));
      }
    } else {
      ++report.requests;
      if (hit) {
        ++report.hits;
        // With uniform sizes a hit never triggers eviction, so the object
        // must still be resident. (Byte mode: a size change on hit may evict
        // anything, including the accessed object itself.)
        if (config.count_based && !cache->Contains(req.id)) {
          violate("object non-resident after count-based hit" + At(i, req));
        }
      } else {
        ++report.misses;
      }
    }

    if (cache->occupied() > cache->capacity()) {
      std::ostringstream out;
      out << "occupied " << cache->occupied() << " exceeds capacity " << cache->capacity()
          << At(i, req);
      violate(out.str());
    }
    if (s3 != nullptr && s3->ghost_size() > s3->ghost_capacity_entries()) {
      std::ostringstream out;
      out << "ghost entries " << s3->ghost_size() << " exceed bound "
          << s3->ghost_capacity_entries() << At(i, req);
      violate(out.str());
    }
  }

  if (report.hits + report.misses != report.requests) {
    violate("hit/miss conservation broken");  // unreachable by construction
  }
  return report;
}

std::string CheckDeterministicReplay(std::string_view policy, const CacheConfig& config,
                                     const std::vector<Request>& requests) {
  uint64_t occupied[2] = {0, 0};
  std::vector<bool> hits[2];
  for (int run = 0; run < 2; ++run) {
    auto cache = CreateCache(policy, config);
    hits[run].reserve(requests.size());
    for (const Request& req : requests) {
      hits[run].push_back(cache->Get(req));
    }
    occupied[run] = cache->occupied();
  }
  if (hits[0] != hits[1]) {
    for (uint64_t i = 0; i < requests.size(); ++i) {
      if (hits[0][i] != hits[1][i]) {
        return "replay diverged" + At(i, requests[i]);
      }
    }
  }
  if (occupied[0] != occupied[1]) {
    std::ostringstream out;
    out << "replay final occupancy differs: " << occupied[0] << " vs " << occupied[1];
    return out.str();
  }
  return "";
}

std::string CheckBeladyLowerBound(std::string_view policy, const CacheConfig& config,
                                  const std::vector<Request>& requests) {
  if (!config.count_based) {
    return "belady bound requires a count-based config";
  }
  for (const Request& req : requests) {
    if (req.op == OpType::kDelete) {
      return "belady bound requires a get/set-only trace";
    }
  }
  Trace trace(requests, "belady-bound");
  AnnotateNextAccess(trace);

  auto belady = CreateCache("belady", config);
  auto subject = CreateCache(policy, config);
  const SimResult opt = Simulate(trace, *belady);
  const SimResult got = Simulate(trace, *subject);
  if (opt.misses > got.misses) {
    std::ostringstream out;
    out << "belady missed more than " << policy << ": " << opt.misses << " > " << got.misses
        << " (optimality violated)";
    return out.str();
  }
  return "";
}

}  // namespace check
}  // namespace s3fifo
