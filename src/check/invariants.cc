#include "src/check/invariants.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/analysis/mrc.h"
#include "src/analysis/mrc_engine.h"
#include "src/analysis/shards.h"
#include "src/core/cache_factory.h"
#include "src/policies/s3fifo.h"
#include "src/sim/simulator.h"
#include "src/trace/next_access.h"
#include "src/trace/trace.h"
#include "src/trace/trace_view.h"

namespace s3fifo {
namespace check {
namespace {

std::string At(uint64_t index, const Request& req) {
  std::ostringstream out;
  out << " at request " << index << " (id=" << req.id << " size=" << req.size
      << " op=" << static_cast<int>(req.op) << ")";
  return out.str();
}

}  // namespace

InvariantReport CheckRequestInvariants(std::string_view policy, const CacheConfig& config,
                                       const std::vector<Request>& requests,
                                       uint64_t max_violations) {
  auto cache = CreateCache(policy, config);
  auto* s3 = dynamic_cast<S3FifoCache*>(cache.get());

  InvariantReport report;
  auto violate = [&](const std::string& message) {
    if (report.violations.size() < max_violations) {
      report.violations.push_back(message);
    }
  };

  for (uint64_t i = 0; i < requests.size(); ++i) {
    const Request& req = requests[i];
    const bool hit = cache->Get(req);

    if (req.op == OpType::kDelete) {
      if (hit) {
        violate("delete reported as hit" + At(i, req));
      }
      if (cache->Contains(req.id)) {
        violate("object resident after explicit delete" + At(i, req));
      }
    } else {
      ++report.requests;
      if (hit) {
        ++report.hits;
        // With uniform sizes a hit never triggers eviction, so the object
        // must still be resident. (Byte mode: a size change on hit may evict
        // anything, including the accessed object itself.)
        if (config.count_based && !cache->Contains(req.id)) {
          violate("object non-resident after count-based hit" + At(i, req));
        }
      } else {
        ++report.misses;
      }
    }

    if (cache->occupied() > cache->capacity()) {
      std::ostringstream out;
      out << "occupied " << cache->occupied() << " exceeds capacity " << cache->capacity()
          << At(i, req);
      violate(out.str());
    }
    if (s3 != nullptr && s3->ghost_size() > s3->ghost_capacity_entries()) {
      std::ostringstream out;
      out << "ghost entries " << s3->ghost_size() << " exceed bound "
          << s3->ghost_capacity_entries() << At(i, req);
      violate(out.str());
    }
  }

  if (report.hits + report.misses != report.requests) {
    violate("hit/miss conservation broken");  // unreachable by construction
  }
  return report;
}

std::string CheckDeterministicReplay(std::string_view policy, const CacheConfig& config,
                                     const std::vector<Request>& requests) {
  uint64_t occupied[2] = {0, 0};
  std::vector<bool> hits[2];
  for (int run = 0; run < 2; ++run) {
    auto cache = CreateCache(policy, config);
    hits[run].reserve(requests.size());
    for (const Request& req : requests) {
      hits[run].push_back(cache->Get(req));
    }
    occupied[run] = cache->occupied();
  }
  if (hits[0] != hits[1]) {
    for (uint64_t i = 0; i < requests.size(); ++i) {
      if (hits[0][i] != hits[1][i]) {
        return "replay diverged" + At(i, requests[i]);
      }
    }
  }
  if (occupied[0] != occupied[1]) {
    std::ostringstream out;
    out << "replay final occupancy differs: " << occupied[0] << " vs " << occupied[1];
    return out.str();
  }
  return "";
}

std::string CheckBeladyLowerBound(std::string_view policy, const CacheConfig& config,
                                  const std::vector<Request>& requests) {
  if (!config.count_based) {
    return "belady bound requires a count-based config";
  }
  for (const Request& req : requests) {
    if (req.op == OpType::kDelete) {
      return "belady bound requires a get/set-only trace";
    }
  }
  Trace trace(requests, "belady-bound");
  AnnotateNextAccess(trace);

  auto belady = CreateCache("belady", config);
  auto subject = CreateCache(policy, config);
  const SimResult opt = Simulate(trace, *belady);
  const SimResult got = Simulate(trace, *subject);
  if (opt.misses > got.misses) {
    std::ostringstream out;
    out << "belady missed more than " << policy << ": " << opt.misses << " > " << got.misses
        << " (optimality violated)";
    return out.str();
  }
  return "";
}

std::string CheckBatchedParity(std::string_view policy, const CacheConfig& config,
                               const std::vector<Request>& requests, uint32_t batch_size) {
  if (batch_size == 0) {
    return "batch_size must be non-zero";
  }
  const Trace trace(requests, "batched-parity");
  const TraceView view = TraceView::Borrow(trace);
  auto scalar = CreateCache(policy, config);
  auto batched = CreateCache(policy, config);
  std::vector<uint8_t> hits(batch_size);
  const uint64_t n = view.size();
  for (uint64_t begin = 0; begin < n; begin += batch_size) {
    const uint64_t end = std::min<uint64_t>(begin + batch_size, n);
    batched->GetBatch(view, begin, end, hits.data());
    for (uint64_t i = begin; i < end; ++i) {
      const Request& req = requests[i];
      const bool scalar_hit = scalar->Get(req);
      if ((hits[i - begin] != 0) != scalar_hit) {
        std::ostringstream out;
        out << policy << " batched hit bit " << (hits[i - begin] != 0 ? 1 : 0)
            << " != scalar " << (scalar_hit ? 1 : 0) << At(i, req);
        return out.str();
      }
    }
    // Both caches have now processed the same prefix; their residency sets
    // must agree on every id the chunk touched.
    for (uint64_t i = begin; i < end; ++i) {
      const Request& req = requests[i];
      if (batched->Contains(req.id) != scalar->Contains(req.id)) {
        std::ostringstream out;
        out << policy << " residency diverged at batch ending " << end << At(i, req);
        return out.str();
      }
    }
    if (batched->occupied() != scalar->occupied()) {
      std::ostringstream out;
      out << policy << " occupancy diverged after batch ending at " << end << ": batched "
          << batched->occupied() << " vs scalar " << scalar->occupied();
      return out.str();
    }
  }
  if (batched->clock() != scalar->clock()) {
    std::ostringstream out;
    out << policy << " clock diverged: batched " << batched->clock() << " vs scalar "
        << scalar->clock();
    return out.str();
  }
  return "";
}

std::string CheckMrcMatchesBruteForce(std::string_view policy, const CacheConfig& config,
                                      const std::vector<Request>& requests,
                                      const std::vector<uint64_t>& sizes) {
  const std::string name(policy);
  if (!MrcEngineSupports(name, config)) {
    return "one-pass MRC engine does not support '" + name + "'";
  }
  const Trace trace(requests, "mrc-differential");
  const TraceView view = TraceView::Borrow(trace);
  const MrcCurve onepass = OnePassMrc(view, name, sizes, config);
  const std::vector<SimResult> brute = ComputeMrcResults(view, name, sizes, config);
  for (size_t i = 0; i < sizes.size(); ++i) {
    const SimResult& a = onepass.results[i];
    const SimResult& b = brute[i];
    if (a.requests != b.requests || a.hits != b.hits || a.misses != b.misses ||
        a.bytes_requested != b.bytes_requested || a.bytes_missed != b.bytes_missed) {
      std::ostringstream out;
      out << name << " one-pass diverged from brute force at size " << sizes[i]
          << ": onepass(hits=" << a.hits << " misses=" << a.misses << ") vs brute(hits="
          << b.hits << " misses=" << b.misses << ")";
      return out.str();
    }
  }
  return "";
}

std::string CheckMrcMonotone(std::string_view policy, const CacheConfig& config,
                             const std::vector<Request>& requests,
                             const std::vector<uint64_t>& sizes, uint64_t slack) {
  const std::string name(policy);
  if (!MrcEngineSupports(name, config)) {
    return "one-pass MRC engine does not support '" + name + "'";
  }
  std::vector<uint64_t> sorted = sizes;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  const Trace trace(requests, "mrc-monotone");
  const TraceView view = TraceView::Borrow(trace);
  const MrcCurve curve = OnePassMrc(view, name, sorted, config);
  if (curve.results.empty()) {
    return "";
  }
  if (slack == UINT64_MAX) {
    slack = std::max<uint64_t>(8, curve.results.front().requests / 50);
  }
  for (size_t i = 1; i < sorted.size(); ++i) {
    const uint64_t prev = curve.results[i - 1].misses;
    const uint64_t cur = curve.results[i].misses;
    if (cur > prev + slack) {
      std::ostringstream out;
      out << name << " misses grew with cache size beyond the Belady-anomaly slack: size "
          << sorted[i - 1] << " -> " << sorted[i] << " took misses " << prev << " -> " << cur
          << " (slack " << slack << ")";
      return out.str();
    }
  }
  return "";
}

std::string CheckMrcGridRefinement(std::string_view policy, const CacheConfig& config,
                                   const std::vector<Request>& requests,
                                   const std::vector<uint64_t>& sizes) {
  const std::string name(policy);
  if (!MrcEngineSupports(name, config)) {
    return "one-pass MRC engine does not support '" + name + "'";
  }
  std::vector<uint64_t> base = sizes;
  std::sort(base.begin(), base.end());
  base.erase(std::unique(base.begin(), base.end()), base.end());
  // Refine: wedge a midpoint between every adjacent pair.
  std::vector<uint64_t> refined;
  for (size_t i = 0; i < base.size(); ++i) {
    refined.push_back(base[i]);
    if (i + 1 < base.size()) {
      const uint64_t mid = base[i] + (base[i + 1] - base[i]) / 2;
      if (mid != base[i] && mid != base[i + 1]) {
        refined.push_back(mid);
      }
    }
  }
  const Trace trace(requests, "mrc-refinement");
  const TraceView view = TraceView::Borrow(trace);
  const MrcCurve coarse = OnePassMrc(view, name, base, config);
  const MrcCurve fine = OnePassMrc(view, name, refined, config);
  size_t fi = 0;
  for (size_t i = 0; i < base.size(); ++i) {
    while (fi < refined.size() && refined[fi] != base[i]) {
      ++fi;
    }
    const SimResult& a = coarse.results[i];
    const SimResult& b = fine.results[fi];
    if (a.hits != b.hits || a.misses != b.misses || a.bytes_missed != b.bytes_missed) {
      std::ostringstream out;
      out << name << " grid refinement changed the result at size " << base[i] << ": coarse(hits="
          << a.hits << " misses=" << a.misses << ") vs refined(hits=" << b.hits
          << " misses=" << b.misses << ")";
      return out.str();
    }
  }
  return "";
}

std::string CheckShardsConvergence(std::string_view policy, const CacheConfig& config,
                                   const std::vector<Request>& requests,
                                   const std::vector<uint64_t>& sizes, double rate,
                                   double tolerance) {
  const std::string name(policy);
  const Trace trace(requests, "mrc-shards");
  const TraceView view = TraceView::Borrow(trace);
  MrcOptions exact_options;
  exact_options.mode = MrcMode::kAuto;  // one-pass when supported, else brute
  exact_options.base_config = config;
  const MrcCurve exact = ComputeMrcCurve(view, name, sizes, exact_options);
  const MrcCurve sampled = ShardsMrc(view, name, sizes, rate, config);
  for (size_t i = 0; i < sizes.size(); ++i) {
    const double err = std::fabs(sampled.miss_ratios[i] - exact.miss_ratios[i]);
    const bool violated = rate >= 1.0 ? sampled.miss_ratios[i] != exact.miss_ratios[i]
                                      : err > tolerance;
    if (violated) {
      std::ostringstream out;
      out << name << " SHARDS(rate=" << rate << ") off the exact curve at size " << sizes[i]
          << ": sampled " << sampled.miss_ratios[i] << " vs exact " << exact.miss_ratios[i]
          << " (|err| " << err << ", tolerance " << (rate >= 1.0 ? 0.0 : tolerance) << ")";
      return out.str();
    }
  }
  return "";
}

}  // namespace check
}  // namespace s3fifo
