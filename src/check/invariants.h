// Metamorphic invariants: properties that must hold for every policy on
// every trace, independent of any reference oracle. The fuzz tests run these
// alongside the differential comparison, and they are the only line of
// defense for the policies that have no naive oracle (arc, lirs, tinylfu,
// lecar, ...).
//
//   * occupancy never exceeds capacity after any request;
//   * an explicit delete leaves the object non-resident;
//   * a (count-based) hit leaves the object resident;
//   * hits + misses == measured requests (conservation, via SimResult);
//   * S3-FIFO's ghost queue never holds more than its configured entries;
//   * replaying the identical trace on a fresh cache is deterministic;
//   * Belady's MIN is a lower bound on the miss count (count-based,
//     get-only traces — the optimality argument needs uniform sizes and no
//     invalidation).
//
// MRC invariants (the one-pass engine's metamorphic contract):
//
//   * the one-pass curve equals the brute-force per-size simulations
//     count-for-count;
//   * miss counts are non-increasing in cache size up to a small slack
//     (FIFO-family policies lack the inclusion property, so Belady's anomaly
//     makes strict monotonicity genuinely false — the slack bounds it);
//   * refining the size grid never changes the results at the original
//     sizes (each size simulates independently; dedup/chunking must not
//     leak state across grid shapes);
//   * SHARDS converges to the exact curve as the sampling rate approaches
//     1 (and is exactly equal at rate == 1).
#ifndef SRC_CHECK_INVARIANTS_H_
#define SRC_CHECK_INVARIANTS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/cache.h"
#include "src/trace/request.h"

namespace s3fifo {
namespace check {

struct InvariantReport {
  std::vector<std::string> violations;  // empty == every invariant held
  uint64_t requests = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;

  bool ok() const { return violations.empty(); }
};

// Streams `requests` through a fresh cache of the given policy, checking the
// per-request invariants after every step. Stops collecting after
// `max_violations` (the run itself continues so the counts stay complete).
InvariantReport CheckRequestInvariants(std::string_view policy, const CacheConfig& config,
                                       const std::vector<Request>& requests,
                                       uint64_t max_violations = 10);

// Replays the trace twice on fresh caches; returns "" when both runs agree
// on every hit/miss decision and the final occupancy, else a description.
std::string CheckDeterministicReplay(std::string_view policy, const CacheConfig& config,
                                     const std::vector<Request>& requests);

// Runs Belady and the policy on the same trace; returns "" when
// belady_misses <= policy_misses. Requirements: count-based config, get-only
// requests. The trace is annotated internally.
std::string CheckBeladyLowerBound(std::string_view policy, const CacheConfig& config,
                                  const std::vector<Request>& requests);

// Replays the trace on two fresh caches — one through Get() per request, one
// through GetBatch() in batch_size chunks — and returns "" when every hit
// bit, the final occupancy, and the final clock agree, else a description.
// This pins the policies' devirtualized AccessBatch loops (and their batched
// eviction sweeps) to the scalar path bit-for-bit.
std::string CheckBatchedParity(std::string_view policy, const CacheConfig& config,
                               const std::vector<Request>& requests, uint32_t batch_size = 512);

// --- One-pass MRC engine invariants -------------------------------------
// All take a policy the engine supports (MrcEngineSupports), a count-based
// base config (capacity is overridden per grid size), and return "" on
// success or a violation description.

// Differential: the one-pass curve must equal brute-force per-size
// simulations on every count (requests/hits/misses/bytes).
std::string CheckMrcMatchesBruteForce(std::string_view policy, const CacheConfig& config,
                                      const std::vector<Request>& requests,
                                      const std::vector<uint64_t>& sizes);

// Metamorphic: a larger cache must not miss more, up to `slack` misses per
// size step (Belady's anomaly is real for FIFO-family policies but small;
// slack 0 disables the tolerance). Default slack: max(8, 2% of measured
// requests).
std::string CheckMrcMonotone(std::string_view policy, const CacheConfig& config,
                             const std::vector<Request>& requests,
                             const std::vector<uint64_t>& sizes, uint64_t slack = UINT64_MAX);

// Metamorphic: inserting midpoints into the grid must not change the results
// at the original sizes (sizes simulate independently; chunk/dedup logic
// must not leak state between grid shapes). Exact — no tolerance.
std::string CheckMrcGridRefinement(std::string_view policy, const CacheConfig& config,
                                   const std::vector<Request>& requests,
                                   const std::vector<uint64_t>& sizes);

// SHARDS: at rate == 1.0 the streamed curve must equal the exact one; at
// lower rates each point must be within `tolerance` of the exact miss
// ratio. Uses the one-pass engine for the exact reference when supported.
std::string CheckShardsConvergence(std::string_view policy, const CacheConfig& config,
                                   const std::vector<Request>& requests,
                                   const std::vector<uint64_t>& sizes, double rate,
                                   double tolerance);

}  // namespace check
}  // namespace s3fifo

#endif  // SRC_CHECK_INVARIANTS_H_
