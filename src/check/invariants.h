// Metamorphic invariants: properties that must hold for every policy on
// every trace, independent of any reference oracle. The fuzz tests run these
// alongside the differential comparison, and they are the only line of
// defense for the policies that have no naive oracle (arc, lirs, tinylfu,
// lecar, ...).
//
//   * occupancy never exceeds capacity after any request;
//   * an explicit delete leaves the object non-resident;
//   * a (count-based) hit leaves the object resident;
//   * hits + misses == measured requests (conservation, via SimResult);
//   * S3-FIFO's ghost queue never holds more than its configured entries;
//   * replaying the identical trace on a fresh cache is deterministic;
//   * Belady's MIN is a lower bound on the miss count (count-based,
//     get-only traces — the optimality argument needs uniform sizes and no
//     invalidation).
#ifndef SRC_CHECK_INVARIANTS_H_
#define SRC_CHECK_INVARIANTS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/cache.h"
#include "src/trace/request.h"

namespace s3fifo {
namespace check {

struct InvariantReport {
  std::vector<std::string> violations;  // empty == every invariant held
  uint64_t requests = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;

  bool ok() const { return violations.empty(); }
};

// Streams `requests` through a fresh cache of the given policy, checking the
// per-request invariants after every step. Stops collecting after
// `max_violations` (the run itself continues so the counts stay complete).
InvariantReport CheckRequestInvariants(std::string_view policy, const CacheConfig& config,
                                       const std::vector<Request>& requests,
                                       uint64_t max_violations = 10);

// Replays the trace twice on fresh caches; returns "" when both runs agree
// on every hit/miss decision and the final occupancy, else a description.
std::string CheckDeterministicReplay(std::string_view policy, const CacheConfig& config,
                                     const std::vector<Request>& requests);

// Runs Belady and the policy on the same trace; returns "" when
// belady_misses <= policy_misses. Requirements: count-based config, get-only
// requests. The trace is annotated internally.
std::string CheckBeladyLowerBound(std::string_view policy, const CacheConfig& config,
                                  const std::vector<Request>& requests);

}  // namespace check
}  // namespace s3fifo

#endif  // SRC_CHECK_INVARIANTS_H_
