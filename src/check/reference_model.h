// Reference oracles for differential testing (the harness's ground truth).
//
// Each oracle is a deliberately naive re-implementation of one eviction
// policy: plain std::vector queues scanned linearly, occupancy recomputed by
// summation on every step, no intrusive lists, no open addressing, no
// incremental counters. The point is to be *obviously* correct — close to a
// line-by-line transcription of the algorithm — so that when an optimized
// policy in src/policies/ diverges, the oracle is the side you trust.
//
// An oracle consumes the trace request-by-request and reports, per request,
// everything the differential driver compares: the hit/miss decision, the
// set of ids that left residency, and the occupied bytes afterwards.
//
// Covered policies (CreateReferenceModel / OracleCoveredPolicies):
//   fifo, lru, clock, sieve, lfu, 2q, s3fifo, s3fifo-d
//
// Scope: the oracles implement the policies' default queue disciplines (for
// s3fifo: FIFO S and M, exact ghost) plus the parameters the fuzzer varies
// (small_ratio, move_to_main_threshold, max_freq, ghost_ratio, bits,
// kin_ratio, kout_ratio, and the s3fifo-d adaptation knobs). The ablation
// variants (small_lru, main_sieve, ghost_type=table) are out of oracle scope
// and rejected with std::invalid_argument.
#ifndef SRC_CHECK_REFERENCE_MODEL_H_
#define SRC_CHECK_REFERENCE_MODEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/cache.h"
#include "src/trace/request.h"

namespace s3fifo {
namespace check {

// Everything observable about one request, for comparison against the
// optimized implementation.
struct StepOutcome {
  bool hit = false;
  std::vector<uint64_t> evicted;  // ids that left residency, ascending
  uint64_t occupied = 0;          // units (objects or bytes) after the step
};

class ReferenceModel {
 public:
  explicit ReferenceModel(const CacheConfig& config);
  virtual ~ReferenceModel() = default;

  ReferenceModel(const ReferenceModel&) = delete;
  ReferenceModel& operator=(const ReferenceModel&) = delete;

  // Processes one request; mirrors Cache::Get's op dispatch.
  StepOutcome Step(const Request& req);

  virtual bool Contains(uint64_t id) const = 0;
  virtual std::string Name() const = 0;

  uint64_t capacity() const { return capacity_; }
  uint64_t clock() const { return clock_; }

 protected:
  // Returns hit; appends every id leaving residency (any order).
  virtual bool Access(const Request& req, std::vector<uint64_t>* evicted) = 0;
  // kDelete path. Appends the id if it was resident.
  virtual void Delete(uint64_t id, std::vector<uint64_t>* evicted) = 0;
  // Recomputed from scratch (summation), never tracked incrementally.
  virtual uint64_t Occupied() const = 0;

  uint64_t SizeOf(const Request& req) const { return count_based_ ? 1 : req.size; }
  bool count_based() const { return count_based_; }

 private:
  uint64_t capacity_;
  bool count_based_;
  uint64_t clock_ = 0;
};

// Naive exact ghost queue (ids only, oldest first, linear scans). Insert
// refreshes an existing id's position; overflow drops the oldest — the same
// contract as util/ghost_queue.h, minus all the lazy-expiry machinery.
class NaiveGhost {
 public:
  explicit NaiveGhost(uint64_t capacity) : capacity_(capacity) {}

  void Insert(uint64_t id);
  bool Contains(uint64_t id) const;
  void Remove(uint64_t id);
  uint64_t size() const { return ids_.size(); }
  uint64_t capacity() const { return capacity_; }

 private:
  uint64_t capacity_;
  std::vector<uint64_t> ids_;  // oldest first
};

// Throws std::invalid_argument for a policy without an oracle or a config
// outside oracle scope.
std::unique_ptr<ReferenceModel> CreateReferenceModel(std::string_view name,
                                                     const CacheConfig& config);

// Canonical factory names of every oracle-covered policy.
const std::vector<std::string>& OracleCoveredPolicies();

}  // namespace check
}  // namespace s3fifo

#endif  // SRC_CHECK_REFERENCE_MODEL_H_
