#include "src/check/reference_model.h"

#include <algorithm>
#include <map>
#include <optional>
#include <stdexcept>

#include "src/util/params.h"

namespace s3fifo {
namespace check {
namespace {

constexpr size_t kNpos = ~size_t{0};

// One resident object. Queues are plain vectors, index 0 = oldest ("tail" of
// the intrusive lists in src/policies/), back = newest ("head").
struct RefEntry {
  uint64_t id = 0;
  uint64_t size = 1;
  uint64_t freq = 0;      // clock ref bits / s3fifo access counter
  bool visited = false;   // sieve
  uint64_t hits = 0;      // lfu frequency
  uint64_t last_access = 0;
};

using RefQueue = std::vector<RefEntry>;

size_t FindIn(const RefQueue& q, uint64_t id) {
  for (size_t i = 0; i < q.size(); ++i) {
    if (q[i].id == id) {
      return i;
    }
  }
  return kNpos;
}

uint64_t SumSizes(const RefQueue& q) {
  uint64_t total = 0;
  for (const RefEntry& e : q) {
    total += e.size;
  }
  return total;
}

// Pops the oldest entry and re-appends it as newest (clock/s3fifo
// reinsertion).
void RotateOldestToNewest(RefQueue& q) {
  RefEntry e = q.front();
  q.erase(q.begin());
  q.push_back(e);
}

// ---------------------------------------------------------------------------
// Single-queue policies: FIFO, LRU, CLOCK, SIEVE.

class SingleQueueModel : public ReferenceModel {
 public:
  using ReferenceModel::ReferenceModel;

  bool Contains(uint64_t id) const override { return FindIn(queue_, id) != kNpos; }

 protected:
  uint64_t Occupied() const override { return SumSizes(queue_); }

  RefQueue queue_;
};

class FifoModel : public SingleQueueModel {
 public:
  using SingleQueueModel::SingleQueueModel;
  std::string Name() const override { return "ref-fifo"; }

 protected:
  void Delete(uint64_t id, std::vector<uint64_t>* evicted) override {
    const size_t i = FindIn(queue_, id);
    if (i != kNpos) {
      evicted->push_back(id);
      queue_.erase(queue_.begin() + i);
    }
  }

  bool Access(const Request& req, std::vector<uint64_t>* evicted) override {
    const uint64_t need = SizeOf(req);
    const size_t i = FindIn(queue_, req.id);
    if (i != kNpos) {
      if (!count_based() && queue_[i].size != need) {
        queue_[i].size = need;
        while (Occupied() > capacity() && !queue_.empty()) {
          evicted->push_back(queue_.front().id);
          queue_.erase(queue_.begin());
        }
      }
      return true;
    }
    if (need > capacity()) {
      return false;  // bypass: cannot fit even when empty
    }
    while (Occupied() + need > capacity()) {
      evicted->push_back(queue_.front().id);
      queue_.erase(queue_.begin());
    }
    queue_.push_back(RefEntry{req.id, need, 0, false, 0, clock()});
    return false;
  }
};

class LruModel : public SingleQueueModel {
 public:
  using SingleQueueModel::SingleQueueModel;
  std::string Name() const override { return "ref-lru"; }

 protected:
  void Delete(uint64_t id, std::vector<uint64_t>* evicted) override {
    const size_t i = FindIn(queue_, id);
    if (i != kNpos) {
      evicted->push_back(id);
      queue_.erase(queue_.begin() + i);
    }
  }

  bool Access(const Request& req, std::vector<uint64_t>* evicted) override {
    const uint64_t need = SizeOf(req);
    const size_t i = FindIn(queue_, req.id);
    if (i != kNpos) {
      RefEntry e = queue_[i];
      queue_.erase(queue_.begin() + i);
      queue_.push_back(e);  // most recently used = newest
      if (!count_based() && queue_.back().size != need) {
        queue_.back().size = need;
        while (Occupied() > capacity() && !queue_.empty()) {
          evicted->push_back(queue_.front().id);
          queue_.erase(queue_.begin());
        }
      }
      return true;
    }
    if (need > capacity()) {
      return false;
    }
    while (Occupied() + need > capacity()) {
      evicted->push_back(queue_.front().id);
      queue_.erase(queue_.begin());
    }
    queue_.push_back(RefEntry{req.id, need, 0, false, 0, clock()});
    return false;
  }
};

class ClockModel : public SingleQueueModel {
 public:
  explicit ClockModel(const CacheConfig& config) : SingleQueueModel(config) {
    const uint64_t bits = std::clamp<uint64_t>(Params(config.params).GetU64("bits", 1), 1, 8);
    max_ref_ = (uint64_t{1} << bits) - 1;
  }
  std::string Name() const override { return "ref-clock"; }

 protected:
  void Delete(uint64_t id, std::vector<uint64_t>* evicted) override {
    const size_t i = FindIn(queue_, id);
    if (i != kNpos) {
      evicted->push_back(id);
      queue_.erase(queue_.begin() + i);
    }
  }

  void EvictOne(std::vector<uint64_t>* evicted) {
    while (!queue_.empty()) {
      if (queue_.front().freq > 0) {
        --queue_.front().freq;
        RotateOldestToNewest(queue_);  // second chance
      } else {
        evicted->push_back(queue_.front().id);
        queue_.erase(queue_.begin());
        return;
      }
    }
  }

  bool Access(const Request& req, std::vector<uint64_t>* evicted) override {
    const uint64_t need = SizeOf(req);
    const size_t i = FindIn(queue_, req.id);
    if (i != kNpos) {
      queue_[i].freq = std::min(queue_[i].freq + 1, max_ref_);
      if (!count_based() && queue_[i].size != need) {
        queue_[i].size = need;
        while (Occupied() > capacity() && !queue_.empty()) {
          EvictOne(evicted);
        }
      }
      return true;
    }
    if (need > capacity()) {
      return false;
    }
    while (Occupied() + need > capacity()) {
      EvictOne(evicted);
    }
    queue_.push_back(RefEntry{req.id, need, 0, false, 0, clock()});
    return false;
  }

 private:
  uint64_t max_ref_ = 1;
};

class SieveModel : public SingleQueueModel {
 public:
  using SingleQueueModel::SingleQueueModel;
  std::string Name() const override { return "ref-sieve"; }

 protected:
  // Next-newer neighbour (toward the back); nullopt past the newest.
  std::optional<uint64_t> NewerThan(uint64_t id) const {
    const size_t i = FindIn(queue_, id);
    return i + 1 < queue_.size() ? std::optional<uint64_t>(queue_[i + 1].id) : std::nullopt;
  }

  std::optional<uint64_t> OldestId() const {
    return queue_.empty() ? std::nullopt : std::optional<uint64_t>(queue_.front().id);
  }

  // Mirrors SieveCache::RemoveEntry: the hand advances to the next-newer
  // entry when it points at the one being removed.
  void EraseEntry(uint64_t id) {
    if (hand_ && *hand_ == id) {
      hand_ = NewerThan(id);
    }
    queue_.erase(queue_.begin() + FindIn(queue_, id));
  }

  void Delete(uint64_t id, std::vector<uint64_t>* evicted) override {
    if (FindIn(queue_, id) != kNpos) {
      evicted->push_back(id);
      EraseEntry(id);
    }
  }

  void EvictOne(std::vector<uint64_t>* evicted) {
    std::optional<uint64_t> obj = hand_ ? hand_ : OldestId();
    while (obj && queue_[FindIn(queue_, *obj)].visited) {
      queue_[FindIn(queue_, *obj)].visited = false;
      obj = NewerThan(*obj);
      if (!obj) {
        obj = OldestId();  // wrap: head passed, restart at the tail
      }
    }
    if (obj) {
      hand_ = obj;
      evicted->push_back(*obj);
      EraseEntry(*obj);
    }
  }

  bool Access(const Request& req, std::vector<uint64_t>* evicted) override {
    const uint64_t need = SizeOf(req);
    const size_t i = FindIn(queue_, req.id);
    if (i != kNpos) {
      queue_[i].visited = true;
      if (!count_based() && queue_[i].size != need) {
        queue_[i].size = need;
        while (Occupied() > capacity() && !queue_.empty()) {
          EvictOne(evicted);
        }
      }
      return true;
    }
    if (need > capacity()) {
      return false;
    }
    while (Occupied() + need > capacity()) {
      EvictOne(evicted);
    }
    queue_.push_back(RefEntry{req.id, need, 0, false, 0, clock()});
    return false;
  }

 private:
  std::optional<uint64_t> hand_;
};

// ---------------------------------------------------------------------------
// Perfect LFU: victim = smallest (hits, last_access, id), by linear scan.

class LfuModel : public ReferenceModel {
 public:
  using ReferenceModel::ReferenceModel;
  std::string Name() const override { return "ref-lfu"; }
  bool Contains(uint64_t id) const override { return table_.count(id) != 0; }

 protected:
  uint64_t Occupied() const override {
    uint64_t total = 0;
    for (const auto& [id, e] : table_) {
      total += e.size;
    }
    return total;
  }

  void Delete(uint64_t id, std::vector<uint64_t>* evicted) override {
    if (table_.erase(id) > 0) {
      evicted->push_back(id);
    }
  }

  uint64_t VictimId() const {
    auto best = table_.begin();
    for (auto it = std::next(table_.begin()); it != table_.end(); ++it) {
      const auto key = std::make_tuple(it->second.hits, it->second.last_access, it->first);
      const auto best_key =
          std::make_tuple(best->second.hits, best->second.last_access, best->first);
      if (key < best_key) {
        best = it;
      }
    }
    return best->first;
  }

  bool Access(const Request& req, std::vector<uint64_t>* evicted) override {
    const uint64_t need = SizeOf(req);
    auto it = table_.find(req.id);
    if (it != table_.end()) {
      ++it->second.hits;
      it->second.last_access = clock();
      if (!count_based() && it->second.size != need) {
        it->second.size = need;
      }
      while (Occupied() > capacity() && !table_.empty()) {
        const uint64_t victim = VictimId();
        evicted->push_back(victim);
        table_.erase(victim);
      }
      return true;
    }
    if (need > capacity()) {
      return false;
    }
    while (Occupied() + need > capacity()) {
      const uint64_t victim = VictimId();
      evicted->push_back(victim);
      table_.erase(victim);
    }
    table_.emplace(req.id, RefEntry{req.id, need, 0, false, 0, clock()});
    return false;
  }

 private:
  std::map<uint64_t, RefEntry> table_;
};

// ---------------------------------------------------------------------------
// 2Q: probationary A1in (FIFO), main Am (LRU), ghost A1out. A1in hits do not
// promote (the correlated-reference window); only an A1out ghost hit does.

class TwoQModel : public ReferenceModel {
 public:
  explicit TwoQModel(const CacheConfig& config)
      : ReferenceModel(config),
        a1out_(std::max<uint64_t>(
            static_cast<uint64_t>(
                (config.count_based ? config.capacity
                                    : std::max<uint64_t>(config.capacity / 4096, 16)) *
                Params(config.params).GetDouble("kout_ratio", 0.5)),
            1)) {
    const double kin_ratio = Params(config.params).GetDouble("kin_ratio", 0.25);
    kin_capacity_ = std::max<uint64_t>(static_cast<uint64_t>(capacity() * kin_ratio), 1);
  }

  std::string Name() const override { return "ref-2q"; }
  bool Contains(uint64_t id) const override {
    return FindIn(a1in_, id) != kNpos || FindIn(am_, id) != kNpos;
  }

 protected:
  uint64_t Occupied() const override { return SumSizes(a1in_) + SumSizes(am_); }

  void Delete(uint64_t id, std::vector<uint64_t>* evicted) override {
    size_t i = FindIn(a1in_, id);
    if (i != kNpos) {
      evicted->push_back(id);
      a1in_.erase(a1in_.begin() + i);  // explicit delete: not remembered
      return;
    }
    i = FindIn(am_, id);
    if (i != kNpos) {
      evicted->push_back(id);
      am_.erase(am_.begin() + i);
    }
  }

  void EvictOne(std::vector<uint64_t>* evicted) {
    // Reclaim from A1in while it exceeds its share (remembering the id in
    // A1out); otherwise evict the Am LRU tail.
    if (SumSizes(a1in_) > kin_capacity_ || am_.empty()) {
      if (!a1in_.empty()) {
        evicted->push_back(a1in_.front().id);
        a1out_.Insert(a1in_.front().id);
        a1in_.erase(a1in_.begin());
        return;
      }
    }
    if (!am_.empty()) {
      evicted->push_back(am_.front().id);
      am_.erase(am_.begin());
    }
  }

  bool Access(const Request& req, std::vector<uint64_t>* evicted) override {
    const uint64_t need = SizeOf(req);
    size_t i = FindIn(am_, req.id);
    if (i != kNpos) {
      RefEntry e = am_[i];
      am_.erase(am_.begin() + i);
      am_.push_back(e);
      if (!count_based() && am_.back().size != need) {
        am_.back().size = need;
        while (Occupied() > capacity()) {
          EvictOne(evicted);
        }
      }
      return true;
    }
    i = FindIn(a1in_, req.id);
    if (i != kNpos) {
      if (!count_based() && a1in_[i].size != need) {
        a1in_[i].size = need;
        while (Occupied() > capacity()) {
          EvictOne(evicted);
        }
      }
      return true;
    }
    if (need > capacity()) {
      return false;
    }
    while (Occupied() + need > capacity()) {
      EvictOne(evicted);
    }
    if (a1out_.Contains(req.id)) {
      a1out_.Remove(req.id);
      am_.push_back(RefEntry{req.id, need, 0, false, 0, clock()});
    } else {
      a1in_.push_back(RefEntry{req.id, need, 0, false, 0, clock()});
    }
    return false;
  }

 private:
  RefQueue a1in_;
  RefQueue am_;
  NaiveGhost a1out_;
  uint64_t kin_capacity_ = 1;
};

// ---------------------------------------------------------------------------
// S3-FIFO (Algorithm 1): small probationary S, main M, exact ghost G.

class S3FifoModel : public ReferenceModel {
 public:
  explicit S3FifoModel(const CacheConfig& config)
      : ReferenceModel(config), ghost_(GhostEntries(config)) {
    const Params params(config.params);
    if (params.GetBool("small_lru", false) || params.GetBool("main_lru", false) ||
        params.GetBool("main_sieve", false) ||
        params.GetString("ghost_type", "exact") != "exact") {
      throw std::invalid_argument("s3fifo oracle covers the default queue types only");
    }
    const double small_ratio = std::clamp(params.GetDouble("small_ratio", 0.1), 0.001, 0.999);
    small_target_ = std::max<uint64_t>(static_cast<uint64_t>(capacity() * small_ratio), 1);
    if (small_target_ >= capacity()) {
      small_target_ = capacity() > 1 ? capacity() - 1 : 1;
    }
    main_target_ = capacity() - small_target_;
    threshold_ =
        std::clamp<uint64_t>(params.GetU64("move_to_main_threshold", 2), 1, 16);
    max_freq_ = std::clamp<uint64_t>(params.GetU64("max_freq", 3), 1, 255);
  }

  std::string Name() const override { return "ref-s3fifo"; }
  bool Contains(uint64_t id) const override {
    return FindIn(small_, id) != kNpos || FindIn(main_, id) != kNpos;
  }

  uint64_t ghost_size() const { return ghost_.size(); }
  uint64_t small_target() const { return small_target_; }

 protected:
  static uint64_t GhostEntries(const CacheConfig& config) {
    const uint64_t entries = config.count_based
                                 ? config.capacity
                                 : std::max<uint64_t>(config.capacity / 4096, 16);
    const double ratio = Params(config.params).GetDouble("ghost_ratio", 0.9);
    return std::max<uint64_t>(static_cast<uint64_t>(entries * ratio), 1);
  }

  // Adaptation hooks, mirroring S3FifoCache's (used by the s3fifo-d oracle).
  virtual void OnMissLookup(uint64_t id) { (void)id; }
  virtual void OnDemotionToGhost(uint64_t id) { (void)id; }
  virtual void OnMainEviction(uint64_t id) { (void)id; }

  void set_small_target(uint64_t target) {
    small_target_ = std::clamp<uint64_t>(target, 1, capacity() - 1);
    main_target_ = capacity() - small_target_;
  }

  uint64_t Occupied() const override { return SumSizes(small_) + SumSizes(main_); }

  void Delete(uint64_t id, std::vector<uint64_t>* evicted) override {
    size_t i = FindIn(small_, id);
    if (i != kNpos) {
      evicted->push_back(id);
      small_.erase(small_.begin() + i);  // explicit delete: no ghost entry
      return;
    }
    i = FindIn(main_, id);
    if (i != kNpos) {
      evicted->push_back(id);
      main_.erase(main_.begin() + i);
    }
  }

  // One Algorithm-1 EVICTS step: the S tail moves to M if accessed at least
  // `threshold_` times, else it leaves the cache and its id enters G.
  void EvictFromSmall(std::vector<uint64_t>* evicted) {
    if (small_.empty()) {
      return;
    }
    RefEntry t = small_.front();
    small_.erase(small_.begin());
    if (t.freq >= threshold_) {
      t.freq = 0;  // access bits cleared in the move
      main_.push_back(t);
      while (SumSizes(main_) > main_target_) {
        EvictFromMain(evicted);
      }
    } else {
      ghost_.Insert(t.id);
      evicted->push_back(t.id);
      OnDemotionToGhost(t.id);
    }
  }

  // EVICTM: FIFO-reinsertion until one object is evicted.
  void EvictFromMain(std::vector<uint64_t>* evicted) {
    while (!main_.empty()) {
      if (main_.front().freq > 0) {
        --main_.front().freq;
        RotateOldestToNewest(main_);
      } else {
        const uint64_t id = main_.front().id;
        main_.erase(main_.begin());
        evicted->push_back(id);
        OnMainEviction(id);
        return;
      }
    }
  }

  void EnsureFree(uint64_t need, std::vector<uint64_t>* evicted) {
    while (Occupied() + need > capacity()) {
      if ((SumSizes(small_) > small_target_ && !small_.empty()) || main_.empty()) {
        EvictFromSmall(evicted);
      } else {
        EvictFromMain(evicted);
      }
      if (small_.empty() && main_.empty()) {
        return;
      }
    }
  }

  bool Access(const Request& req, std::vector<uint64_t>* evicted) override {
    const uint64_t need = SizeOf(req);
    size_t i = FindIn(small_, req.id);
    RefQueue* home = &small_;
    if (i == kNpos) {
      i = FindIn(main_, req.id);
      home = &main_;
    }
    if (i != kNpos) {
      RefEntry& e = (*home)[i];
      e.freq = std::min(e.freq + 1, max_freq_);  // lazy promotion: no move
      if (!count_based() && e.size != need) {
        e.size = need;
        EnsureFree(0, evicted);
      }
      return true;
    }
    OnMissLookup(req.id);
    if (need > capacity()) {
      return false;
    }
    EnsureFree(need, evicted);
    const bool ghost_hit = ghost_.Contains(req.id);
    if (ghost_hit) {
      ghost_.Remove(req.id);
      main_.push_back(RefEntry{req.id, need, 0, false, 0, clock()});
    } else {
      small_.push_back(RefEntry{req.id, need, 0, false, 0, clock()});
    }
    return false;
  }

 private:
  RefQueue small_;
  RefQueue main_;
  NaiveGhost ghost_;
  uint64_t small_target_ = 1;
  uint64_t main_target_ = 1;
  uint64_t threshold_ = 2;
  uint64_t max_freq_ = 3;
};

// S3-FIFO-D (§6.2.2): two adaptation ghosts balance the marginal hits on
// S-evicted vs M-evicted objects by shifting the S/M split.
class S3FifoDModel : public S3FifoModel {
 public:
  explicit S3FifoDModel(const CacheConfig& config)
      : S3FifoModel(config),
        small_evicted_(AdaptGhostEntries(config)),
        main_evicted_(AdaptGhostEntries(config)) {
    const Params params(config.params);
    min_hits_ = params.GetU64("adapt_min_hits", 100);
    imbalance_ = params.GetDouble("adapt_imbalance", 2.0);
    step_ = std::max<uint64_t>(
        static_cast<uint64_t>(capacity() * params.GetDouble("adapt_step_ratio", 0.001)), 1);
  }

  std::string Name() const override { return "ref-s3fifo-d"; }

 protected:
  static uint64_t AdaptGhostEntries(const CacheConfig& config) {
    const double ratio = Params(config.params).GetDouble("adapt_ghost_ratio", 0.05);
    const uint64_t entries = config.count_based
                                 ? config.capacity
                                 : std::max<uint64_t>(config.capacity / 4096, 16);
    return std::max<uint64_t>(static_cast<uint64_t>(entries * ratio), 1);
  }

  void OnDemotionToGhost(uint64_t id) override { small_evicted_.Insert(id); }
  void OnMainEviction(uint64_t id) override { main_evicted_.Insert(id); }

  void OnMissLookup(uint64_t id) override {
    if (small_evicted_.Contains(id)) {
      small_evicted_.Remove(id);
      ++small_ghost_hits_;
    }
    if (main_evicted_.Contains(id)) {
      main_evicted_.Remove(id);
      ++main_ghost_hits_;
    }
    MaybeRebalance();
  }

 private:
  void MaybeRebalance() {
    if (small_ghost_hits_ + main_ghost_hits_ <= min_hits_) {
      return;
    }
    const double hi = static_cast<double>(std::max(small_ghost_hits_, main_ghost_hits_));
    const double lo = static_cast<double>(std::min(small_ghost_hits_, main_ghost_hits_));
    if (hi < imbalance_ * std::max(lo, 1.0)) {
      return;
    }
    if (small_ghost_hits_ > main_ghost_hits_) {
      set_small_target(std::min<uint64_t>(small_target() + step_, capacity() - 1));
    } else {
      set_small_target(small_target() > step_ ? small_target() - step_ : 1);
    }
    small_ghost_hits_ = 0;
    main_ghost_hits_ = 0;
  }

  NaiveGhost small_evicted_;
  NaiveGhost main_evicted_;
  uint64_t small_ghost_hits_ = 0;
  uint64_t main_ghost_hits_ = 0;
  uint64_t min_hits_ = 100;
  double imbalance_ = 2.0;
  uint64_t step_ = 1;
};

}  // namespace

// ---------------------------------------------------------------------------

ReferenceModel::ReferenceModel(const CacheConfig& config)
    : capacity_(config.capacity), count_based_(config.count_based) {
  if (capacity_ == 0) {
    throw std::invalid_argument("reference model capacity must be > 0");
  }
}

StepOutcome ReferenceModel::Step(const Request& req) {
  ++clock_;  // mirrors Cache::Get: the logical clock ticks for every request
  StepOutcome out;
  if (req.op == OpType::kDelete) {
    Delete(req.id, &out.evicted);
  } else {
    out.hit = Access(req, &out.evicted);
  }
  std::sort(out.evicted.begin(), out.evicted.end());
  out.occupied = Occupied();
  return out;
}

void NaiveGhost::Insert(uint64_t id) {
  Remove(id);  // refresh: at most one live slot per id
  ids_.push_back(id);
  if (ids_.size() > capacity_) {
    ids_.erase(ids_.begin());
  }
}

bool NaiveGhost::Contains(uint64_t id) const {
  return std::find(ids_.begin(), ids_.end(), id) != ids_.end();
}

void NaiveGhost::Remove(uint64_t id) {
  auto it = std::find(ids_.begin(), ids_.end(), id);
  if (it != ids_.end()) {
    ids_.erase(it);
  }
}

std::unique_ptr<ReferenceModel> CreateReferenceModel(std::string_view name,
                                                     const CacheConfig& config) {
  const std::string n(name);
  if (n == "fifo") {
    return std::make_unique<FifoModel>(config);
  }
  if (n == "lru") {
    return std::make_unique<LruModel>(config);
  }
  if (n == "clock" || n == "fifo-reinsertion" || n == "second-chance") {
    return std::make_unique<ClockModel>(config);
  }
  if (n == "sieve") {
    return std::make_unique<SieveModel>(config);
  }
  if (n == "lfu") {
    return std::make_unique<LfuModel>(config);
  }
  if (n == "2q" || n == "twoq") {
    return std::make_unique<TwoQModel>(config);
  }
  if (n == "s3fifo") {
    return std::make_unique<S3FifoModel>(config);
  }
  if (n == "s3fifo-d") {
    return std::make_unique<S3FifoDModel>(config);
  }
  throw std::invalid_argument("no reference oracle for policy: " + n);
}

const std::vector<std::string>& OracleCoveredPolicies() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "fifo", "lru", "clock", "sieve", "lfu", "2q", "s3fifo", "s3fifo-d",
  };
  return *names;
}

}  // namespace check
}  // namespace s3fifo
