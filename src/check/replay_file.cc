#include "src/check/replay_file.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace s3fifo {
namespace check {
namespace {

std::string OpToken(OpType op) {
  switch (op) {
    case OpType::kGet:
      return "get";
    case OpType::kSet:
      return "set";
    case OpType::kDelete:
      return "del";
  }
  return "get";
}

OpType TokenToOp(const std::string& token) {
  if (token == "get") {
    return OpType::kGet;
  }
  if (token == "set") {
    return OpType::kSet;
  }
  if (token == "del") {
    return OpType::kDelete;
  }
  throw std::invalid_argument("replay: unknown op '" + token + "'");
}

}  // namespace

std::string FormatReplay(const ReplayCase& replay) {
  std::ostringstream out;
  out << "# differential reproducer (" << replay.requests.size() << " requests)\n";
  if (replay.mode == "flash") {
    out << "mode flash\n";
    out << "flash " << replay.flash_config << "\n";
    out << "admission " << replay.admission << "\n";
    out << "reuse_horizon " << replay.reuse_horizon << "\n";
    out << "admission_seed " << replay.admission_seed << "\n";
    if (replay.resize_period > 0) {
      out << "resizes " << replay.resize_period << " " << replay.resize_seed << " "
          << replay.resize_min_segments << " " << replay.resize_span << "\n";
    }
  } else {
    out << "policy " << replay.policy << "\n";
    out << "capacity " << replay.config.capacity << "\n";
    out << "count_based " << (replay.config.count_based ? 1 : 0) << "\n";
    if (!replay.config.params.empty()) {
      out << "params " << replay.config.params << "\n";
    }
    out << "seed " << replay.config.seed << "\n";
  }
  out << "fuzz_seed " << replay.fuzz_seed << "\n";
  for (const Request& r : replay.requests) {
    out << "req " << OpToken(r.op) << " " << r.id << " " << r.size << "\n";
  }
  return out.str();
}

ReplayCase ParseReplay(const std::string& text) {
  ReplayCase replay;
  bool saw_policy = false;
  bool saw_capacity = false;
  std::istringstream in(text);
  std::string line;
  uint64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream fields(line);
    std::string key;
    if (!(fields >> key) || key[0] == '#') {
      continue;
    }
    if (key == "mode") {
      fields >> replay.mode;
      if (replay.mode != "policy" && replay.mode != "flash") {
        throw std::invalid_argument("replay: unknown mode '" + replay.mode + "'");
      }
    } else if (key == "flash") {
      fields >> replay.flash_config;
    } else if (key == "admission") {
      fields >> replay.admission;
    } else if (key == "reuse_horizon") {
      fields >> replay.reuse_horizon;
    } else if (key == "admission_seed") {
      fields >> replay.admission_seed;
    } else if (key == "resizes") {
      if (!(fields >> replay.resize_period >> replay.resize_seed >>
            replay.resize_min_segments >> replay.resize_span)) {
        throw std::invalid_argument("replay: malformed resizes line");
      }
    } else if (key == "policy") {
      fields >> replay.policy;
      saw_policy = !replay.policy.empty();
    } else if (key == "capacity") {
      if (!(fields >> replay.config.capacity)) {
        throw std::invalid_argument("replay: bad capacity");
      }
      saw_capacity = true;
    } else if (key == "count_based") {
      int v = 1;
      fields >> v;
      replay.config.count_based = v != 0;
    } else if (key == "params") {
      fields >> replay.config.params;
    } else if (key == "seed") {
      fields >> replay.config.seed;
    } else if (key == "fuzz_seed") {
      fields >> replay.fuzz_seed;
    } else if (key == "req") {
      std::string op;
      Request r;
      if (!(fields >> op >> r.id >> r.size)) {
        std::ostringstream err;
        err << "replay: malformed req on line " << lineno;
        throw std::invalid_argument(err.str());
      }
      r.op = TokenToOp(op);
      r.time = replay.requests.size();
      replay.requests.push_back(r);
    } else {
      throw std::invalid_argument("replay: unknown key '" + key + "'");
    }
  }
  if (replay.mode == "flash") {
    if (replay.flash_config.empty()) {
      throw std::invalid_argument("replay: flash mode requires a 'flash' config line");
    }
  } else if (!saw_policy || !saw_capacity) {
    throw std::invalid_argument("replay: missing required 'policy' or 'capacity' line");
  }
  return replay;
}

void WriteReplayFile(const ReplayCase& replay, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("replay: cannot open for write: " + path);
  }
  out << FormatReplay(replay);
  if (!out) {
    throw std::runtime_error("replay: write failed: " + path);
  }
}

ReplayCase ReadReplayFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("replay: cannot open: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseReplay(buf.str());
}

}  // namespace check
}  // namespace s3fifo
