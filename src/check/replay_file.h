// Text format for differential-failure reproducers.
//
// A replay file pins everything needed to re-run one divergence: the policy
// name, the full CacheConfig, the fuzzer seed it came from (informational),
// and the (usually shrunk) request list. The harness writes one on failure;
// `check_replay <file>` re-runs it and prints the divergence.
//
// Format (line-oriented, '#' comments, whitespace-separated):
//
//   policy s3fifo
//   capacity 64
//   count_based 1
//   params small_ratio=0.1,ghost_ratio=0.9
//   seed 42
//   fuzz_seed 1337
//   req get 17 1
//   req set 9 4096
//   req del 17 0
//
// Flash-mode reproducers (the two-tier log-structured cache vs its oracle)
// replace `policy`/`capacity` with the flash config and admission tuple:
//
//   mode flash
//   flash dram=4096,segment=4096,segments=8,ordering=ripq,small=128
//   admission flashield
//   reuse_horizon 1000
//   admission_seed 17
//   resizes 500 99 1 12        # period seed min_segments span; omitted = none
//   fuzz_seed 1337
//   req set 9 4096
#ifndef SRC_CHECK_REPLAY_FILE_H_
#define SRC_CHECK_REPLAY_FILE_H_

#include <string>
#include <vector>

#include "src/core/cache.h"
#include "src/trace/request.h"

namespace s3fifo {
namespace check {

struct ReplayCase {
  // "policy": single-tier policy vs reference model (the original format).
  // "flash": LogStructuredFlashCache vs the naive flash oracle.
  std::string mode = "policy";

  // mode == "policy" (policy and capacity are required).
  std::string policy;
  CacheConfig config;

  // mode == "flash" (flash config spec is required).
  std::string flash_config;  // FormatLogFlashConfig round-trip
  std::string admission = "none";
  uint64_t reuse_horizon = 0;
  uint64_t admission_seed = 0;
  // Scheduled segment-budget resizes; period 0 = none.
  uint64_t resize_period = 0;
  uint64_t resize_seed = 0;
  uint64_t resize_min_segments = 2;
  uint64_t resize_span = 16;

  uint64_t fuzz_seed = 0;
  std::vector<Request> requests;
};

std::string FormatReplay(const ReplayCase& replay);
// Throws std::invalid_argument on malformed input.
ReplayCase ParseReplay(const std::string& text);

// Throws std::runtime_error on I/O failure.
void WriteReplayFile(const ReplayCase& replay, const std::string& path);
ReplayCase ReadReplayFile(const std::string& path);

}  // namespace check
}  // namespace s3fifo

#endif  // SRC_CHECK_REPLAY_FILE_H_
