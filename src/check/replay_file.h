// Text format for differential-failure reproducers.
//
// A replay file pins everything needed to re-run one divergence: the policy
// name, the full CacheConfig, the fuzzer seed it came from (informational),
// and the (usually shrunk) request list. The harness writes one on failure;
// `check_replay <file>` re-runs it and prints the divergence.
//
// Format (line-oriented, '#' comments, whitespace-separated):
//
//   policy s3fifo
//   capacity 64
//   count_based 1
//   params small_ratio=0.1,ghost_ratio=0.9
//   seed 42
//   fuzz_seed 1337
//   req get 17 1
//   req set 9 4096
//   req del 17 0
#ifndef SRC_CHECK_REPLAY_FILE_H_
#define SRC_CHECK_REPLAY_FILE_H_

#include <string>
#include <vector>

#include "src/core/cache.h"
#include "src/trace/request.h"

namespace s3fifo {
namespace check {

struct ReplayCase {
  std::string policy;
  CacheConfig config;
  uint64_t fuzz_seed = 0;
  std::vector<Request> requests;
};

std::string FormatReplay(const ReplayCase& replay);
// Throws std::invalid_argument on malformed input.
ReplayCase ParseReplay(const std::string& text);

// Throws std::runtime_error on I/O failure.
void WriteReplayFile(const ReplayCase& replay, const std::string& path);
ReplayCase ReadReplayFile(const std::string& path);

}  // namespace check
}  // namespace s3fifo

#endif  // SRC_CHECK_REPLAY_FILE_H_
