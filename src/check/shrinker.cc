#include "src/check/shrinker.h"

#include <algorithm>

namespace s3fifo {
namespace check {
namespace {

class Shrinker {
 public:
  Shrinker(const FailurePredicate& still_fails, uint64_t max_probes)
      : still_fails_(still_fails), max_probes_(max_probes) {}

  uint64_t probes() const { return probes_; }

  bool Probe(const std::vector<Request>& candidate) {
    if (probes_ >= max_probes_) {
      return false;  // budget exhausted: treat as "does not reproduce"
    }
    ++probes_;
    return still_fails_(candidate);
  }

  // One ddmin sweep: try removing chunks of `chunk` consecutive requests.
  // Returns true if anything was removed.
  bool RemoveChunks(std::vector<Request>& reqs, uint64_t chunk) {
    bool removed_any = false;
    size_t start = 0;
    while (start < reqs.size()) {
      const size_t len = std::min<size_t>(chunk, reqs.size() - start);
      std::vector<Request> candidate;
      candidate.reserve(reqs.size() - len);
      candidate.insert(candidate.end(), reqs.begin(), reqs.begin() + start);
      candidate.insert(candidate.end(), reqs.begin() + start + len, reqs.end());
      if (Probe(candidate)) {
        reqs = std::move(candidate);
        removed_any = true;
        // Keep `start` in place: the next chunk slid into this position.
      } else {
        start += len;
      }
    }
    return removed_any;
  }

  // In-place simplification of the survivors: writes become reads, odd sizes
  // become 1. Each accepted change keeps the failure alive.
  void SimplifyRequests(std::vector<Request>& reqs) {
    for (size_t i = 0; i < reqs.size(); ++i) {
      if (reqs[i].op == OpType::kSet) {
        std::vector<Request> candidate = reqs;
        candidate[i].op = OpType::kGet;
        if (Probe(candidate)) {
          reqs = std::move(candidate);
        }
      }
      if (reqs[i].size != 1) {
        std::vector<Request> candidate = reqs;
        candidate[i].size = 1;
        if (Probe(candidate)) {
          reqs = std::move(candidate);
        }
      }
    }
  }

 private:
  const FailurePredicate& still_fails_;
  uint64_t max_probes_;
  uint64_t probes_ = 0;
};

}  // namespace

std::vector<Request> ShrinkTrace(std::vector<Request> requests,
                                 const FailurePredicate& still_fails, uint64_t max_probes,
                                 ShrinkStats* stats) {
  Shrinker shrinker(still_fails, max_probes);
  const uint64_t initial_size = requests.size();

  // Repeat both phases until a full round removes nothing: simplification can
  // unlock removals (e.g. a set that only mattered for its size) and vice
  // versa, so a single pass leaves easy wins on the table.
  size_t before_round = requests.size() + 1;
  while (requests.size() < before_round) {
    before_round = requests.size();

    // Phase 1: exponentially shrinking chunk removal down to single requests.
    uint64_t chunk = std::max<uint64_t>(requests.size() / 2, 1);
    while (chunk >= 1) {
      while (shrinker.RemoveChunks(requests, chunk)) {
      }
      if (chunk == 1) {
        break;
      }
      chunk /= 2;
    }

    // Phase 2: simplify what survived, then re-try single-request removal.
    shrinker.SimplifyRequests(requests);
    while (shrinker.RemoveChunks(requests, 1)) {
    }
  }

  if (stats != nullptr) {
    stats->probes = shrinker.probes();
    stats->initial_size = initial_size;
    stats->final_size = requests.size();
  }
  return requests;
}

}  // namespace check
}  // namespace s3fifo
