// Trace shrinker: minimizes a failing request stream to a short reproducer.
//
// Delta-debugging (ddmin-style) over the request list: remove exponentially
// shrinking chunks, then single requests, then simplify the survivors in
// place (kSet -> kGet, sizes toward 1). The caller supplies the failure
// predicate — typically "RunDifferential on a fresh cache + oracle still
// diverges" — and the shrinker guarantees the returned trace satisfies it.
//
// The predicate must be deterministic (rebuild both sides from scratch on
// every probe); the probe budget bounds worst-case work on huge traces.
#ifndef SRC_CHECK_SHRINKER_H_
#define SRC_CHECK_SHRINKER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/trace/request.h"

namespace s3fifo {
namespace check {

// Returns true if the candidate trace still reproduces the failure.
using FailurePredicate = std::function<bool(const std::vector<Request>&)>;

struct ShrinkStats {
  uint64_t probes = 0;          // predicate invocations
  uint64_t initial_size = 0;
  uint64_t final_size = 0;
};

// `requests` must satisfy `still_fails`. Returns a (usually much) shorter
// trace that still satisfies it. `max_probes` caps predicate invocations.
std::vector<Request> ShrinkTrace(std::vector<Request> requests,
                                 const FailurePredicate& still_fails,
                                 uint64_t max_probes = 20000,
                                 ShrinkStats* stats = nullptr);

}  // namespace check
}  // namespace s3fifo

#endif  // SRC_CHECK_SHRINKER_H_
