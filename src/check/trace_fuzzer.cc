#include "src/check/trace_fuzzer.h"

#include <algorithm>

#include "src/util/hash.h"
#include "src/util/rng.h"
#include "src/util/zipf.h"

namespace s3fifo {
namespace check {
namespace {

// Scan keys live far above the hot universe so they never alias it.
constexpr uint64_t kScanBase = 1ULL << 40;

}  // namespace

std::vector<Request> GenerateFuzzRequests(const FuzzConfig& config) {
  Rng rng(config.seed);
  ZipfDistribution zipf(std::max<uint64_t>(config.key_space, 1), config.alpha);

  const uint32_t normal_max = static_cast<uint32_t>(
      std::clamp<uint64_t>(config.capacity / 8, 1, 0x7fffffff));
  const uint32_t oversize_span = static_cast<uint32_t>(
      std::clamp<uint64_t>(config.capacity, 1, 0x7fffffff));

  // The usual size of an object is a stable function of its id, like real
  // traces; resize events overwrite it with a fresh draw.
  auto base_size = [&](uint64_t id) {
    return static_cast<uint32_t>(1 + Mix64(id ^ (config.seed * 0x9e3779b97f4a7c15ULL)) %
                                         normal_max);
  };

  std::vector<Request> reqs;
  reqs.reserve(config.num_requests);
  uint64_t next_scan_key = kScanBase + (config.seed << 20);
  uint64_t scan_remaining = 0;

  while (reqs.size() < config.num_requests) {
    Request r;
    r.time = reqs.size();

    if (scan_remaining > 0) {
      --scan_remaining;
      r.id = next_scan_key++;
      r.size = base_size(r.id);
      reqs.push_back(r);
      continue;
    }
    if (rng.NextBool(config.p_scan) && config.scan_length > 0) {
      scan_remaining = config.scan_length;
      continue;
    }

    r.id = zipf.Sample(rng) - 1;  // rank 1..n -> [0, n)
    const double op_dice = rng.NextDouble();
    if (op_dice < config.p_delete) {
      r.op = OpType::kDelete;
    } else if (op_dice < config.p_delete + config.p_set) {
      r.op = OpType::kSet;
    }

    const double size_dice = rng.NextDouble();
    if (size_dice < config.p_zero_size) {
      r.size = 0;
    } else if (size_dice < config.p_zero_size + config.p_oversized) {
      r.size = static_cast<uint32_t>(
          std::min<uint64_t>(config.capacity + 1 + rng.NextBounded(oversize_span),
                             0xffffffffULL));
    } else if (size_dice < config.p_zero_size + config.p_oversized + config.p_resize) {
      r.size = 1 + static_cast<uint32_t>(rng.NextBounded(normal_max));
    } else {
      r.size = base_size(r.id);
    }
    reqs.push_back(r);
  }

  return reqs;
}

std::vector<Request> GenerateFlashFuzzRequests(const FlashFuzzConfig& config) {
  Rng rng(config.seed);
  ZipfDistribution zipf(std::max<uint64_t>(config.key_space, 1), config.alpha);

  const uint64_t segment_bytes = std::max<uint64_t>(config.segment_bytes, 1);
  // "Normal" log objects: a spread that packs several per segment but still
  // forces frequent seals.
  const uint32_t log_max = static_cast<uint32_t>(
      std::clamp<uint64_t>(segment_bytes / 4, 1, 0x7fffffff));
  const uint32_t small_max = static_cast<uint32_t>(std::clamp<uint64_t>(
      config.small_object_threshold > 0 ? config.small_object_threshold - 1 : 1, 1,
      0x7fffffff));

  auto draw_size = [&](uint64_t id, bool fresh) -> uint32_t {
    const double dice = rng.NextDouble();
    double edge = config.p_oversize;
    if (dice < edge) {
      return static_cast<uint32_t>(std::min<uint64_t>(
          segment_bytes + 1 + rng.NextBounded(segment_bytes), 0xffffffffULL));
    }
    edge += config.p_near_segment;
    if (dice < edge) {
      // Within 0..3 bytes of a full segment: exercises the seal boundary and,
      // with a small set store, whole-set evictions.
      const uint64_t slack = rng.NextBounded(4);
      return static_cast<uint32_t>(
          std::min<uint64_t>(segment_bytes - std::min(segment_bytes - 1, slack),
                             0xffffffffULL));
    }
    if (config.small_object_threshold > 0) {
      edge += config.p_small;
      if (dice < edge) {
        return 1 + static_cast<uint32_t>(Mix64(id * 3 + fresh) % small_max);
      }
    }
    if (fresh) {
      return 1 + static_cast<uint32_t>(rng.NextBounded(log_max));
    }
    // Stable per-id size, like real traces.
    return 1 + static_cast<uint32_t>(
                   Mix64(id ^ (config.seed * 0x9e3779b97f4a7c15ULL)) % log_max);
  };

  std::vector<Request> reqs;
  reqs.reserve(config.num_requests);
  for (uint64_t i = 0; i < config.num_requests; ++i) {
    Request r;
    r.time = i;
    r.id = zipf.Sample(rng) - 1;
    const double op_dice = rng.NextDouble();
    if (op_dice < config.p_delete) {
      r.op = OpType::kDelete;
    } else if (op_dice < config.p_delete + config.p_set) {
      r.op = OpType::kSet;
    }
    const bool fresh = rng.NextBool(config.p_resize_size);
    r.size = draw_size(r.id, fresh);
    reqs.push_back(r);
  }
  return reqs;
}

}  // namespace check
}  // namespace s3fifo
