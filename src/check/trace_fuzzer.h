// Seeded random request-stream generator for the differential harness.
//
// The generator deliberately concentrates probability mass on the situations
// that historically break eviction code rather than on realistic workloads:
// a small skewed key universe (so residency, ghost hits and re-insertion all
// fire constantly), explicit deletes, sequential scans, objects whose size
// changes on re-insert, zero-byte objects, and objects at or above the whole
// cache capacity.
//
// Everything is derived from FuzzConfig::seed through the in-repo Rng/Zipf
// samplers, so a (config, seed) pair reproduces the identical stream on every
// platform — a failing seed in CI is a local reproducer.
#ifndef SRC_CHECK_TRACE_FUZZER_H_
#define SRC_CHECK_TRACE_FUZZER_H_

#include <cstdint>
#include <vector>

#include "src/trace/request.h"

namespace s3fifo {
namespace check {

struct FuzzConfig {
  uint64_t seed = 1;
  uint64_t num_requests = 10000;

  // Mirror of the CacheConfig the stream will be replayed against; sizes are
  // scaled relative to `capacity` so evictions actually happen.
  uint64_t capacity = 64;
  bool count_based = true;

  // Hot key universe: ids in [0, key_space) drawn from a Zipf(alpha).
  uint64_t key_space = 256;
  double alpha = 1.0;

  // Operation mix (remainder is kGet).
  double p_set = 0.2;
  double p_delete = 0.05;

  // Sequential scan bursts over one-time keys (cold misses back to back).
  double p_scan = 0.005;
  uint64_t scan_length = 32;

  // Size edge cases, only meaningful for byte-based replays.
  double p_resize = 0.25;     // re-request with a fresh random size
  double p_zero_size = 0.01;  // size == 0
  double p_oversized = 0.01;  // size > capacity (admission bypass path)
};

std::vector<Request> GenerateFuzzRequests(const FuzzConfig& config);

// Flash-flavoured stream for the two-tier log-structured cache: skewed keys,
// deletes, and sizes drawn to straddle every routing boundary — sub-threshold
// objects (set store), log-sized objects, near-segment sizes (seal edges) and
// the occasional > segment_bytes oversize reject. Capacity resizes are NOT in
// the stream (OpType has no resize); the differential driver applies them via
// FlashResizeSchedule so shrinking and replay stay valid.
struct FlashFuzzConfig {
  uint64_t seed = 1;
  uint64_t num_requests = 10000;

  // Hot key universe, as in FuzzConfig.
  uint64_t key_space = 512;
  double alpha = 1.0;

  // Operation mix (remainder is kGet).
  double p_set = 0.2;
  double p_delete = 0.05;

  // Size classes. Mirror of the LogFlashCacheConfig the stream will be
  // replayed against.
  uint64_t small_object_threshold = 0;  // 0 = no set store, log-only sizes
  uint64_t segment_bytes = 4096;
  double p_small = 0.5;        // below threshold (set-store path)
  double p_near_segment = 0.05;  // within a few bytes of segment_bytes
  double p_oversize = 0.01;    // > segment_bytes (log oversize reject)
  double p_resize_size = 0.3;  // fresh random size on re-request
};

std::vector<Request> GenerateFlashFuzzRequests(const FlashFuzzConfig& config);

}  // namespace check
}  // namespace s3fifo

#endif  // SRC_CHECK_TRACE_FUZZER_H_
