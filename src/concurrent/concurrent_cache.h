// Interface of the in-memory concurrent caches used by the throughput /
// scalability benchmark (paper §5.3, Fig. 8). Get() is an on-demand-fill
// read: a miss admits the object (generating a payload), like the Cachelib
// trace-replay setup the paper uses.
#ifndef SRC_CONCURRENT_CONCURRENT_CACHE_H_
#define SRC_CONCURRENT_CONCURRENT_CACHE_H_

#include <cstdint>
#include <string>

namespace s3fifo {

struct ConcurrentCacheConfig {
  uint64_t capacity_objects = 1 << 16;
  uint32_t value_size = 64;  // bytes materialised per object
  // Writer-lock shards inside each sub-cache's hash index (reads are
  // lock-free and unaffected).
  unsigned hash_shards = 64;
  // Sub-cache partitions: each owns an independent index, queues, ghost
  // state and eviction lock. Clamped against capacity (PickCacheShards);
  // 1 reproduces the unsharded seed semantics exactly.
  unsigned cache_shards = 8;
};

// Cache-side request counters, aggregated from per-thread stripes at read
// time; approximate only while requests are in flight.
struct ConcurrentCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
};

class ConcurrentCache {
 public:
  virtual ~ConcurrentCache() = default;

  // Returns true on hit. Thread-safe.
  virtual bool Get(uint64_t id) = 0;
  virtual std::string Name() const = 0;
  // Approximate resident object count (for tests).
  virtual uint64_t ApproxSize() const = 0;
  virtual ConcurrentCacheStats Stats() const { return {}; }
};

}  // namespace s3fifo

#endif  // SRC_CONCURRENT_CONCURRENT_CACHE_H_
