// Interface of the in-memory concurrent caches used by the throughput /
// scalability benchmark (paper §5.3, Fig. 8). Get() is an on-demand-fill
// read: a miss admits the object (generating a payload), like the Cachelib
// trace-replay setup the paper uses.
#ifndef SRC_CONCURRENT_CONCURRENT_CACHE_H_
#define SRC_CONCURRENT_CONCURRENT_CACHE_H_

#include <cstdint>
#include <string>

namespace s3fifo {

struct ConcurrentCacheConfig {
  uint64_t capacity_objects = 1 << 16;
  uint32_t value_size = 64;  // bytes materialised per object
  unsigned hash_shards = 64;
};

class ConcurrentCache {
 public:
  virtual ~ConcurrentCache() = default;

  // Returns true on hit. Thread-safe.
  virtual bool Get(uint64_t id) = 0;
  virtual std::string Name() const = 0;
  // Approximate resident object count (for tests).
  virtual uint64_t ApproxSize() const = 0;
};

}  // namespace s3fifo

#endif  // SRC_CONCURRENT_CONCURRENT_CACHE_H_
