// Interface of the in-memory concurrent caches used by the throughput /
// scalability benchmark (paper §5.3, Fig. 8) and by the network front end
// (src/server/). Get() is an on-demand-fill read: a miss admits the object
// (generating a payload), like the Cachelib trace-replay setup the paper
// uses. GetBatch() is the software-pipelined entry point the replay loop and
// the server's per-connection batching both drive — the concurrent analogue
// of Cache::GetBatch on the simulator policies.
#ifndef SRC_CONCURRENT_CONCURRENT_CACHE_H_
#define SRC_CONCURRENT_CONCURRENT_CACHE_H_

#include <cstdint>
#include <string>

namespace s3fifo {

struct ConcurrentCacheConfig {
  uint64_t capacity_objects = 1 << 16;
  uint32_t value_size = 64;  // bytes materialised per on-demand-filled object
  // Writer-lock shards inside each sub-cache's hash index (reads are
  // lock-free and unaffected).
  unsigned hash_shards = 64;
  // Sub-cache partitions: each owns an independent index, queues, ghost
  // state and eviction lock. Clamped against capacity (PickCacheShards);
  // 1 reproduces the unsharded seed semantics exactly.
  unsigned cache_shards = 8;
};

// Cache-side request counters, aggregated from per-thread stripes at read
// time; approximate only while requests are in flight.
struct ConcurrentCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
};

// Receives the resident value of each batched hit while the bytes are safe
// to read (the cache holds its internal read guard for the duration of the
// callback). `index` is the request's position within the batch.
class ValueSink {
 public:
  virtual ~ValueSink() = default;
  virtual void OnValue(uint32_t index, const char* data, uint32_t size) = 0;
};

class ConcurrentCache {
 public:
  virtual ~ConcurrentCache() = default;

  // Returns true on hit; a miss admits the object (on-demand fill).
  // Thread-safe.
  virtual bool Get(uint64_t id) = 0;

  // Processes `count` on-demand-fill gets, writing one byte per request into
  // `hits` (1 = hit). The contract is BIT-IDENTICAL outcomes to calling
  // Get() once per id, in order — batching only changes the instruction
  // schedule (index slots for upcoming ids are prefetched while the current
  // id is handled, and the read guard is pinned once per batch instead of
  // once per request). If `sink` is non-null, caches that store readable
  // values invoke it once per hit, in batch order; the default
  // implementation (payload caches without a value-aware override) never
  // invokes it. Thread-safe.
  virtual void GetBatch(const uint64_t* ids, uint32_t count, uint8_t* hits,
                        ValueSink* sink = nullptr) {
    (void)sink;
    for (uint32_t i = 0; i < count; ++i) {
      hits[i] = Get(ids[i]) ? 1 : 0;
    }
  }

  // Insert-or-replace with caller-provided bytes (the server's `set` verb).
  // Counts as a hit when the object was resident (in-place value swap) and
  // as a miss when it was admitted, mirroring the simulator's kSet
  // semantics. Returns false when the cache cannot store explicit values
  // (default). Thread-safe.
  virtual bool Set(uint64_t id, const char* data, uint32_t size) {
    (void)id;
    (void)data;
    (void)size;
    return false;
  }

  // Removes the object if resident (the server's `delete` verb). Returns
  // true if this call removed it; false if absent or unsupported (default).
  // Thread-safe.
  virtual bool Delete(uint64_t id) {
    (void)id;
    return false;
  }

  virtual std::string Name() const = 0;
  // Approximate resident object count (for tests).
  virtual uint64_t ApproxSize() const = 0;
  virtual ConcurrentCacheStats Stats() const { return {}; }
};

}  // namespace s3fifo

#endif  // SRC_CONCURRENT_CONCURRENT_CACHE_H_
