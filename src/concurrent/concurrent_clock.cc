#include "src/concurrent/concurrent_clock.h"

#include <cstring>
#include <vector>

namespace s3fifo {
namespace {

std::unique_ptr<char[]> MakeValue(uint64_t id, uint32_t size) {
  auto value = std::make_unique<char[]>(size);
  std::memset(value.get(), static_cast<int>(id & 0xFF), size);
  return value;
}

uint64_t ReadValue(const char* value) {
  uint64_t v = 0;
  std::memcpy(&v, value, sizeof(v));
  return v;
}

}  // namespace

ConcurrentClock::ConcurrentClock(const ConcurrentCacheConfig& config)
    : config_(config),
      index_(config.hash_shards, config.capacity_objects / config.hash_shards + 1) {}

ConcurrentClock::~ConcurrentClock() {
  std::lock_guard<std::mutex> lock(list_mu_);
  while (Entry* e = list_.PopBack()) {
    delete e;
  }
}

bool ConcurrentClock::Get(uint64_t id) {
  const bool hit = index_.WithValue(id, [&](Entry** slot) {
    if (slot == nullptr) {
      return false;
    }
    Entry* e = *slot;
    // The whole hit path: one relaxed store.
    e->ref.store(1, std::memory_order_relaxed);
    (void)ReadValue(e->value.get());
    return true;
  });
  if (hit) {
    return true;
  }

  Entry* e = new Entry;
  e->id = id;
  e->value = MakeValue(id, config_.value_size);
  if (!index_.InsertIfAbsent(id, e)) {
    delete e;
    return false;
  }

  std::vector<Entry*> victims;
  {
    std::lock_guard<std::mutex> lock(list_mu_);
    list_.PushFront(e);
    uint64_t resident = resident_.fetch_add(1, std::memory_order_relaxed) + 1;
    while (resident > config_.capacity_objects && !list_.empty()) {
      Entry* hand = list_.Back();
      if (hand == nullptr || hand == e) {
        break;
      }
      if (hand->ref.exchange(0, std::memory_order_relaxed) != 0) {
        list_.MoveToFront(hand);  // second chance
        continue;
      }
      list_.Remove(hand);
      victims.push_back(hand);
      resident = resident_.fetch_sub(1, std::memory_order_relaxed) - 1;
    }
  }
  for (Entry* victim : victims) {
    index_.EraseIf(victim->id, [victim](Entry* v) { return v == victim; });
    delete victim;
  }
  return false;
}

uint64_t ConcurrentClock::ApproxSize() const {
  return resident_.load(std::memory_order_relaxed);
}

}  // namespace s3fifo
