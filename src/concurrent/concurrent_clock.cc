#include "src/concurrent/concurrent_clock.h"

#include <algorithm>

#include "src/concurrent/value_payload.h"

namespace s3fifo {

ConcurrentClock::ConcurrentClock(const ConcurrentCacheConfig& config)
    : config_(config),
      num_shards_(PickCacheShards(config.cache_shards, config.capacity_objects)) {
  const unsigned index_shards = std::max(1u, config.hash_shards / num_shards_);
  shards_.reserve(num_shards_);
  for (unsigned i = 0; i < num_shards_; ++i) {
    const uint64_t capacity = config.capacity_objects / num_shards_ +
                              (i < config.capacity_objects % num_shards_ ? 1 : 0);
    shards_.push_back(std::make_unique<Shard>(capacity, index_shards,
                                              /*pending_capacity=*/256));
  }
}

ConcurrentClock::~ConcurrentClock() {
  for (auto& sp : shards_) {
    Shard& s = *sp;
    s.gate.WithLock([&s] {
      Entry* e = nullptr;
      while (s.gate.pending().TryPop(&e)) {
        delete e;
      }
      while (Entry* x = s.list.PopBack()) {
        delete x;
      }
    });
  }
}

void ConcurrentClock::RetireEntry(Entry* e) {
  EbrDomain::Instance().Retire(e, [](void* p) { delete static_cast<Entry*>(p); });
}

bool ConcurrentClock::Get(uint64_t id) {
  Shard& s = ShardFor(id);
  EbrDomain::Guard guard;
  if (Entry* e = s.index.Find(id)) {
    // The whole hit path: one wait-free probe and one relaxed store.
    e->ref.store(1, std::memory_order_relaxed);
    (void)ReadValuePayload(e->value.get(), config_.value_size);
    hits_.Add(1);
    return true;
  }

  Entry* e = new Entry;
  e->id = id;
  e->value = MakeValuePayload(id, config_.value_size);
  if (!s.index.InsertIfAbsent(id, e)) {
    delete e;
    misses_.Add(1);
    return false;
  }
  s.resident.fetch_add(1, std::memory_order_relaxed);
  misses_.Add(1);

  std::vector<Entry*> victims;
  s.gate.Submit(e, [this, &s, &victims] { DrainLocked(s, victims); });
  for (Entry* victim : victims) {
    s.index.EraseIf(victim->id, [victim](Entry* v) { return v == victim; });
    RetireEntry(victim);
  }
  return false;
}

void ConcurrentClock::DrainLocked(Shard& s, std::vector<Entry*>& victims) {
  Entry* e = nullptr;
  while (s.gate.pending().TryPop(&e)) {
    s.list.PushFront(e);
    ++s.linked;
    while (s.linked > s.capacity_objects && !s.list.empty()) {
      Entry* hand = s.list.Back();
      if (hand == nullptr || hand == e) {
        break;  // pathological capacity-1 shard
      }
      if (hand->ref.exchange(0, std::memory_order_relaxed) != 0) {
        s.list.MoveToFront(hand);  // second chance
        continue;
      }
      s.list.Remove(hand);
      --s.linked;
      s.resident.fetch_sub(1, std::memory_order_relaxed);
      victims.push_back(hand);
    }
  }
}

uint64_t ConcurrentClock::ApproxSize() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->resident.load(std::memory_order_relaxed);
  }
  return total;
}

ConcurrentCacheStats ConcurrentClock::Stats() const {
  return {static_cast<uint64_t>(hits_.Sum()), static_cast<uint64_t>(misses_.Sum())};
}

}  // namespace s3fifo
