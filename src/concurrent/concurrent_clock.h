// Concurrent CLOCK (the MemC3 / RocksDB HyperClockCache approach, paper
// §2.2/§7): hits only set an atomic reference bit — no lock, no queue
// mutation; misses advance the clock hand under a single eviction mutex.
#ifndef SRC_CONCURRENT_CONCURRENT_CLOCK_H_
#define SRC_CONCURRENT_CONCURRENT_CLOCK_H_

#include <atomic>
#include <memory>
#include <mutex>

#include "src/concurrent/concurrent_cache.h"
#include "src/concurrent/striped_hash_map.h"
#include "src/util/intrusive_list.h"

namespace s3fifo {

class ConcurrentClock : public ConcurrentCache {
 public:
  explicit ConcurrentClock(const ConcurrentCacheConfig& config);
  ~ConcurrentClock() override;

  bool Get(uint64_t id) override;
  std::string Name() const override { return "clock"; }
  uint64_t ApproxSize() const override;

 private:
  struct Entry {
    uint64_t id = 0;
    std::atomic<uint8_t> ref{0};
    std::unique_ptr<char[]> value;
    ListHook hook;
  };

  const ConcurrentCacheConfig config_;
  StripedHashMap<Entry*> index_;
  std::mutex list_mu_;
  IntrusiveList<Entry, &Entry::hook> list_;  // FIFO order; back = oldest
  std::atomic<uint64_t> resident_{0};
};

}  // namespace s3fifo

#endif  // SRC_CONCURRENT_CONCURRENT_CLOCK_H_
