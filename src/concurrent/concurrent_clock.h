// Concurrent CLOCK (the MemC3 / RocksDB HyperClockCache approach, paper
// §2.2/§7), sharded + lock-free read path: hits are a wait-free index probe
// plus one relaxed ref-bit store — no lock; misses touch only the owning
// sub-cache's clock list through its try-lock-and-delegate eviction gate.
#ifndef SRC_CONCURRENT_CONCURRENT_CLOCK_H_
#define SRC_CONCURRENT_CONCURRENT_CLOCK_H_

#include <atomic>
#include <memory>
#include <vector>

#include "src/concurrent/concurrent_cache.h"
#include "src/concurrent/lockfree_hash_map.h"
#include "src/concurrent/sharded_cache.h"
#include "src/concurrent/striped_counter.h"
#include "src/util/intrusive_list.h"

namespace s3fifo {

class ConcurrentClock : public ConcurrentCache {
 public:
  explicit ConcurrentClock(const ConcurrentCacheConfig& config);
  ~ConcurrentClock() override;

  bool Get(uint64_t id) override;
  std::string Name() const override { return "clock"; }
  uint64_t ApproxSize() const override;
  ConcurrentCacheStats Stats() const override;

 private:
  struct Entry {
    uint64_t id = 0;
    std::atomic<uint8_t> ref{0};
    std::unique_ptr<char[]> value;
    ListHook hook;
  };
  using Queue = IntrusiveList<Entry, &Entry::hook>;

  struct alignas(64) Shard {
    Shard(uint64_t capacity, unsigned index_shards, uint64_t pending_capacity)
        : capacity_objects(capacity), index(capacity, index_shards), gate(pending_capacity) {}

    const uint64_t capacity_objects;
    LockFreeHashMap<Entry*> index;
    EvictionGate<Entry*> gate;
    Queue list;  // guarded by the gate lock; FIFO order, back = oldest
    uint64_t linked = 0;
    std::atomic<uint64_t> resident{0};
  };

  Shard& ShardFor(uint64_t id) { return *shards_[CacheShardFor(id, num_shards_)]; }
  void DrainLocked(Shard& s, std::vector<Entry*>& victims);
  static void RetireEntry(Entry* e);

  const ConcurrentCacheConfig config_;
  unsigned num_shards_;
  std::vector<std::unique_ptr<Shard>> shards_;
  StripedCounter hits_;
  StripedCounter misses_;
};

}  // namespace s3fifo

#endif  // SRC_CONCURRENT_CONCURRENT_CLOCK_H_
