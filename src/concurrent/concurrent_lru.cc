#include "src/concurrent/concurrent_lru.h"

#include <cstring>

namespace s3fifo {
namespace {

std::unique_ptr<char[]> MakeValue(uint64_t id, uint32_t size) {
  auto value = std::make_unique<char[]>(size);
  std::memset(value.get(), static_cast<int>(id & 0xFF), size);
  return value;
}

// Touch the payload so the compiler cannot elide the "use" of a hit.
uint64_t ReadValue(const char* value) {
  uint64_t v = 0;
  std::memcpy(&v, value, sizeof(v));
  return v;
}

}  // namespace

ConcurrentLruStrict::ConcurrentLruStrict(const ConcurrentCacheConfig& config)
    : config_(config) {
  table_.reserve(config.capacity_objects * 2);
}

ConcurrentLruStrict::~ConcurrentLruStrict() = default;

bool ConcurrentLruStrict::Get(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(id);
  if (it != table_.end()) {
    list_.MoveToFront(&it->second);
    (void)ReadValue(it->second.value.get());
    return true;
  }
  while (table_.size() >= config_.capacity_objects && !list_.empty()) {
    Entry* victim = list_.PopBack();
    table_.erase(victim->id);
  }
  Entry& e = table_[id];
  e.id = id;
  e.value = MakeValue(id, config_.value_size);
  list_.PushFront(&e);
  return false;
}

uint64_t ConcurrentLruStrict::ApproxSize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_.size();
}

ConcurrentLruOptimized::ConcurrentLruOptimized(const ConcurrentCacheConfig& config,
                                               uint64_t refresh_ops)
    : config_(config),
      refresh_ops_(refresh_ops),
      index_(config.hash_shards, config.capacity_objects / config.hash_shards + 1) {}

ConcurrentLruOptimized::~ConcurrentLruOptimized() {
  std::lock_guard<std::mutex> lock(list_mu_);
  while (Entry* e = list_.PopBack()) {
    delete e;
  }
}

bool ConcurrentLruOptimized::Get(uint64_t id) {
  const uint64_t now = op_counter_.fetch_add(1, std::memory_order_relaxed);

  const bool hit = index_.WithValue(id, [&](Entry** slot) {
    if (slot == nullptr) {
      return false;
    }
    Entry* e = *slot;
    (void)ReadValue(e->value.get());
    // Delayed promotion: refresh at most once per refresh_ops_ accesses, and
    // only if the list lock is immediately available (try-lock promotion).
    const uint64_t last = e->last_promote.load(std::memory_order_relaxed);
    if (now - last >= refresh_ops_) {
      if (list_mu_.try_lock()) {
        if (e->hook.linked()) {  // not concurrently evicted
          list_.MoveToFront(e);
          e->last_promote.store(now, std::memory_order_relaxed);
        }
        list_mu_.unlock();
      }
    }
    return true;
  });
  if (hit) {
    return true;
  }

  // Miss: publish to the index first (so a racing inserter of the same id
  // loses cleanly while its entry is still private), then link into the list
  // and shed victims.
  Entry* e = new Entry;
  e->id = id;
  e->last_promote.store(now, std::memory_order_relaxed);
  e->value = MakeValue(id, config_.value_size);
  if (!index_.InsertIfAbsent(id, e)) {
    delete e;  // another thread admitted this id concurrently
    return false;
  }

  std::vector<Entry*> victims;
  {
    std::lock_guard<std::mutex> lock(list_mu_);
    list_.PushFront(e);
    uint64_t resident = resident_.fetch_add(1, std::memory_order_relaxed) + 1;
    while (resident > config_.capacity_objects && !list_.empty()) {
      Entry* victim = list_.PopBack();
      if (victim == e) {  // pathological capacity=1 case
        list_.PushBack(victim);
        break;
      }
      victims.push_back(victim);
      resident = resident_.fetch_sub(1, std::memory_order_relaxed) - 1;
    }
  }
  for (Entry* victim : victims) {
    // EraseIf: never remove a same-id successor raced in by another thread.
    index_.EraseIf(victim->id, [victim](Entry* v) { return v == victim; });
    delete victim;
  }
  return false;
}

uint64_t ConcurrentLruOptimized::ApproxSize() const {
  return resident_.load(std::memory_order_relaxed);
}

}  // namespace s3fifo
