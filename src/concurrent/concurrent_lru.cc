#include "src/concurrent/concurrent_lru.h"

#include <algorithm>

#include "src/concurrent/value_payload.h"

namespace s3fifo {

ConcurrentLruStrict::ConcurrentLruStrict(const ConcurrentCacheConfig& config)
    : config_(config) {
  table_.reserve(config.capacity_objects * 2);
}

ConcurrentLruStrict::~ConcurrentLruStrict() = default;

bool ConcurrentLruStrict::Get(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(id);
  if (it != table_.end()) {
    list_.MoveToFront(&it->second);
    (void)ReadValuePayload(it->second.value.get(), config_.value_size);
    ++hits_;
    return true;
  }
  while (table_.size() >= config_.capacity_objects && !list_.empty()) {
    Entry* victim = list_.PopBack();
    table_.erase(victim->id);
  }
  Entry& e = table_[id];
  e.id = id;
  e.value = MakeValuePayload(id, config_.value_size);
  list_.PushFront(&e);
  ++misses_;
  return false;
}

uint64_t ConcurrentLruStrict::ApproxSize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_.size();
}

ConcurrentCacheStats ConcurrentLruStrict::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {hits_, misses_};
}

ConcurrentLruOptimized::ConcurrentLruOptimized(const ConcurrentCacheConfig& config,
                                               uint64_t refresh_ops)
    : config_(config),
      refresh_ops_(refresh_ops),
      num_shards_(PickCacheShards(config.cache_shards, config.capacity_objects)) {
  const unsigned index_shards = std::max(1u, config.hash_shards / num_shards_);
  shards_.reserve(num_shards_);
  for (unsigned i = 0; i < num_shards_; ++i) {
    const uint64_t capacity = config.capacity_objects / num_shards_ +
                              (i < config.capacity_objects % num_shards_ ? 1 : 0);
    shards_.push_back(std::make_unique<Shard>(capacity, index_shards,
                                              /*pending_capacity=*/256));
  }
}

ConcurrentLruOptimized::~ConcurrentLruOptimized() {
  for (auto& sp : shards_) {
    Shard& s = *sp;
    s.gate.WithLock([&s] {
      Entry* e = nullptr;
      while (s.gate.pending().TryPop(&e)) {
        delete e;
      }
      while (Entry* x = s.list.PopBack()) {
        delete x;
      }
    });
  }
}

void ConcurrentLruOptimized::RetireEntry(Entry* e) {
  EbrDomain::Instance().Retire(e, [](void* p) { delete static_cast<Entry*>(p); });
}

bool ConcurrentLruOptimized::Get(uint64_t id) {
  Shard& s = ShardFor(id);
  EbrDomain::Guard guard;
  if (Entry* e = s.index.Find(id)) {
    (void)ReadValuePayload(e->value.get(), config_.value_size);
    // Delayed promotion: at most once per refresh_ops_ accesses to this
    // entry, and only if the list lock is immediately available (try-lock
    // promotion — skipped outright under contention).
    if (e->accesses.fetch_add(1, std::memory_order_relaxed) + 1 >= refresh_ops_) {
      s.gate.TryWithLock([&s, e] {
        if (e->hook.linked()) {  // not concurrently evicted
          s.list.MoveToFront(e);
          e->accesses.store(0, std::memory_order_relaxed);
        }
      });
    }
    hits_.Add(1);
    return true;
  }

  Entry* e = new Entry;
  e->id = id;
  e->value = MakeValuePayload(id, config_.value_size);
  if (!s.index.InsertIfAbsent(id, e)) {
    delete e;  // another thread admitted this id concurrently
    misses_.Add(1);
    return false;
  }
  s.resident.fetch_add(1, std::memory_order_relaxed);
  misses_.Add(1);

  std::vector<Entry*> victims;
  s.gate.Submit(e, [this, &s, &victims] { DrainLocked(s, victims); });
  for (Entry* victim : victims) {
    s.index.EraseIf(victim->id, [victim](Entry* v) { return v == victim; });
    RetireEntry(victim);
  }
  return false;
}

void ConcurrentLruOptimized::DrainLocked(Shard& s, std::vector<Entry*>& victims) {
  Entry* e = nullptr;
  while (s.gate.pending().TryPop(&e)) {
    s.list.PushFront(e);
    ++s.linked;
    while (s.linked > s.capacity_objects && !s.list.empty()) {
      Entry* victim = s.list.Back();
      if (victim == nullptr || victim == e) {
        break;  // pathological capacity-1 shard
      }
      s.list.Remove(victim);
      --s.linked;
      s.resident.fetch_sub(1, std::memory_order_relaxed);
      victims.push_back(victim);
    }
  }
}

uint64_t ConcurrentLruOptimized::ApproxSize() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->resident.load(std::memory_order_relaxed);
  }
  return total;
}

ConcurrentCacheStats ConcurrentLruOptimized::Stats() const {
  return {static_cast<uint64_t>(hits_.Sum()), static_cast<uint64_t>(misses_.Sum())};
}

}  // namespace s3fifo
