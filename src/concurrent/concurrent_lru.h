// Two concurrent LRU variants for the scalability study (paper §5.3):
//
//  * ConcurrentLruStrict — textbook LRU: one mutex guards the index and the
//    list; every hit takes the lock to promote. The paper's "(strict) LRU".
//  * ConcurrentLruOptimized — the Cachelib-style optimized LRU: sharded
//    index lookups, *try-lock* promotion that is simply skipped under
//    contention, and a per-entry promotion-refresh window so hot objects are
//    promoted at most once per refresh_ops accesses (Cachelib's
//    lruRefreshTime / delayed-promotion tricks).
#ifndef SRC_CONCURRENT_CONCURRENT_LRU_H_
#define SRC_CONCURRENT_CONCURRENT_LRU_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "src/concurrent/concurrent_cache.h"
#include "src/concurrent/striped_hash_map.h"
#include "src/util/intrusive_list.h"

namespace s3fifo {

class ConcurrentLruStrict : public ConcurrentCache {
 public:
  explicit ConcurrentLruStrict(const ConcurrentCacheConfig& config);
  ~ConcurrentLruStrict() override;

  bool Get(uint64_t id) override;
  std::string Name() const override { return "lru-strict"; }
  uint64_t ApproxSize() const override;

 private:
  struct Entry {
    uint64_t id = 0;
    std::unique_ptr<char[]> value;
    ListHook hook;
  };

  const ConcurrentCacheConfig config_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Entry> table_;
  IntrusiveList<Entry, &Entry::hook> list_;
};

class ConcurrentLruOptimized : public ConcurrentCache {
 public:
  explicit ConcurrentLruOptimized(const ConcurrentCacheConfig& config,
                                  uint64_t refresh_ops = 16);
  ~ConcurrentLruOptimized() override;

  bool Get(uint64_t id) override;
  std::string Name() const override { return "lru-optimized"; }
  uint64_t ApproxSize() const override;

 private:
  struct Entry {
    uint64_t id = 0;
    std::atomic<uint64_t> last_promote{0};
    std::unique_ptr<char[]> value;
    ListHook hook;
  };

  const ConcurrentCacheConfig config_;
  const uint64_t refresh_ops_;
  std::atomic<uint64_t> op_counter_{0};
  StripedHashMap<Entry*> index_;
  std::mutex list_mu_;
  IntrusiveList<Entry, &Entry::hook> list_;
  std::atomic<uint64_t> resident_{0};
};

}  // namespace s3fifo

#endif  // SRC_CONCURRENT_CONCURRENT_LRU_H_
