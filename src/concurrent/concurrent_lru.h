// Two concurrent LRU variants for the scalability study (paper §5.3):
//
//  * ConcurrentLruStrict — textbook LRU: one mutex guards the index and the
//    list; every hit takes the lock to promote. The paper's "(strict) LRU".
//    Kept unsharded on purpose as the strawman baseline.
//  * ConcurrentLruOptimized — the Cachelib-style optimized LRU, now sharded
//    with a lock-free read path: hits are a wait-free index probe plus one
//    relaxed per-entry access counter; promotion happens at most once per
//    refresh_ops accesses and only via try-lock (skipped under contention) —
//    Cachelib's lruRefreshTime / delayed-promotion tricks without the shared
//    global op counter the seed used.
#ifndef SRC_CONCURRENT_CONCURRENT_LRU_H_
#define SRC_CONCURRENT_CONCURRENT_LRU_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/concurrent/concurrent_cache.h"
#include "src/concurrent/lockfree_hash_map.h"
#include "src/concurrent/sharded_cache.h"
#include "src/concurrent/striped_counter.h"
#include "src/util/intrusive_list.h"

namespace s3fifo {

class ConcurrentLruStrict : public ConcurrentCache {
 public:
  explicit ConcurrentLruStrict(const ConcurrentCacheConfig& config);
  ~ConcurrentLruStrict() override;

  bool Get(uint64_t id) override;
  std::string Name() const override { return "lru-strict"; }
  uint64_t ApproxSize() const override;
  ConcurrentCacheStats Stats() const override;

 private:
  struct Entry {
    uint64_t id = 0;
    std::unique_ptr<char[]> value;
    ListHook hook;
  };

  const ConcurrentCacheConfig config_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Entry> table_;
  IntrusiveList<Entry, &Entry::hook> list_;
  uint64_t hits_ = 0;    // guarded by mu_
  uint64_t misses_ = 0;  // guarded by mu_
};

class ConcurrentLruOptimized : public ConcurrentCache {
 public:
  explicit ConcurrentLruOptimized(const ConcurrentCacheConfig& config,
                                  uint64_t refresh_ops = 16);
  ~ConcurrentLruOptimized() override;

  bool Get(uint64_t id) override;
  std::string Name() const override { return "lru-optimized"; }
  uint64_t ApproxSize() const override;
  ConcurrentCacheStats Stats() const override;

 private:
  struct Entry {
    uint64_t id = 0;
    // Accesses since the last successful promotion; promotion is attempted
    // once this reaches refresh_ops_ (per-entry, no shared op counter).
    std::atomic<uint64_t> accesses{0};
    std::unique_ptr<char[]> value;
    ListHook hook;
  };
  using Queue = IntrusiveList<Entry, &Entry::hook>;

  struct alignas(64) Shard {
    Shard(uint64_t capacity, unsigned index_shards, uint64_t pending_capacity)
        : capacity_objects(capacity), index(capacity, index_shards), gate(pending_capacity) {}

    const uint64_t capacity_objects;
    LockFreeHashMap<Entry*> index;
    EvictionGate<Entry*> gate;
    Queue list;  // guarded by the gate lock; back = least recently used
    uint64_t linked = 0;
    std::atomic<uint64_t> resident{0};
  };

  Shard& ShardFor(uint64_t id) { return *shards_[CacheShardFor(id, num_shards_)]; }
  void DrainLocked(Shard& s, std::vector<Entry*>& victims);
  static void RetireEntry(Entry* e);

  const ConcurrentCacheConfig config_;
  const uint64_t refresh_ops_;
  unsigned num_shards_;
  std::vector<std::unique_ptr<Shard>> shards_;
  StripedCounter hits_;
  StripedCounter misses_;
};

}  // namespace s3fifo

#endif  // SRC_CONCURRENT_CONCURRENT_LRU_H_
