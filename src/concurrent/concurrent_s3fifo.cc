#include "src/concurrent/concurrent_s3fifo.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace s3fifo {
namespace {

std::unique_ptr<char[]> MakeValue(uint64_t id, uint32_t size) {
  auto value = std::make_unique<char[]>(size);
  std::memset(value.get(), static_cast<int>(id & 0xFF), size);
  return value;
}

uint64_t ReadValue(const char* value) {
  uint64_t v = 0;
  std::memcpy(&v, value, sizeof(v));
  return v;
}

}  // namespace

ConcurrentS3Fifo::ConcurrentS3Fifo(const ConcurrentCacheConfig& config, double small_ratio,
                                   uint32_t move_threshold, uint32_t max_freq)
    : config_(config),
      small_target_(std::max<uint64_t>(
          static_cast<uint64_t>(config.capacity_objects * small_ratio), 1)),
      move_threshold_(move_threshold),
      max_freq_(max_freq),
      index_(config.hash_shards, config.capacity_objects / config.hash_shards + 1),
      ghost_(std::max<uint64_t>(config.capacity_objects - small_target_, 1)) {}

ConcurrentS3Fifo::~ConcurrentS3Fifo() {
  std::lock_guard<std::mutex> lock(evict_mu_);
  while (Entry* e = small_.PopBack()) {
    delete e;
  }
  while (Entry* e = main_.PopBack()) {
    delete e;
  }
}

bool ConcurrentS3Fifo::Get(uint64_t id) {
  const bool hit = index_.WithValue(id, [&](Entry** slot) {
    if (slot == nullptr) {
      return false;
    }
    Entry* e = *slot;
    // Lock-free hit path: capped increment; popular objects (freq already at
    // the cap) need no store at all (§4.3.1).
    uint8_t f = e->freq.load(std::memory_order_relaxed);
    while (f < max_freq_ &&
           !e->freq.compare_exchange_weak(f, f + 1, std::memory_order_relaxed)) {
    }
    (void)ReadValue(e->value.get());
    return true;
  });
  if (hit) {
    return true;
  }

  Entry* e = new Entry;
  e->id = id;
  e->value = MakeValue(id, config_.value_size);
  if (!index_.InsertIfAbsent(id, e)) {
    delete e;
    return false;
  }

  std::vector<Entry*> victims;
  {
    std::lock_guard<std::mutex> lock(evict_mu_);
    if (resident_.load(std::memory_order_relaxed) >= config_.capacity_objects) {
      MakeRoom(victims);
    }
    if (ghost_.Contains(id)) {
      ghost_.Remove(id);
      e->in_small = false;
      main_.PushFront(e);
      ++main_count_;
    } else {
      e->in_small = true;
      small_.PushFront(e);
      ++small_count_;
    }
    resident_.fetch_add(1, std::memory_order_relaxed);
  }
  for (Entry* victim : victims) {
    index_.EraseIf(victim->id, [victim](Entry* v) { return v == victim; });
    delete victim;
  }
  return false;
}

void ConcurrentS3Fifo::MakeRoom(std::vector<Entry*>& victims) {
  const size_t before = victims.size();
  while (victims.size() == before &&
         resident_.load(std::memory_order_relaxed) >= config_.capacity_objects) {
    if ((small_count_ > small_target_ && !small_.empty()) || main_.empty()) {
      EvictFromSmall(victims);
    } else {
      EvictFromMain(victims);
    }
    if (small_.empty() && main_.empty()) {
      return;
    }
  }
}

void ConcurrentS3Fifo::EvictFromSmall(std::vector<Entry*>& victims) {
  Entry* t = small_.Back();
  if (t == nullptr) {
    return;
  }
  if (t->freq.load(std::memory_order_relaxed) >= move_threshold_) {
    small_.Remove(t);
    --small_count_;
    t->in_small = false;
    t->freq.store(0, std::memory_order_relaxed);
    main_.PushFront(t);
    ++main_count_;
    while (main_count_ > config_.capacity_objects - small_target_) {
      EvictFromMain(victims);
      if (main_.empty()) {
        break;
      }
    }
  } else {
    small_.Remove(t);
    --small_count_;
    ghost_.Insert(t->id);
    resident_.fetch_sub(1, std::memory_order_relaxed);
    victims.push_back(t);
  }
}

void ConcurrentS3Fifo::EvictFromMain(std::vector<Entry*>& victims) {
  while (Entry* t = main_.Back()) {
    uint8_t f = t->freq.load(std::memory_order_relaxed);
    if (f > 0) {
      t->freq.store(f - 1, std::memory_order_relaxed);
      main_.MoveToFront(t);
    } else {
      main_.Remove(t);
      --main_count_;
      resident_.fetch_sub(1, std::memory_order_relaxed);
      victims.push_back(t);
      return;
    }
  }
}

uint64_t ConcurrentS3Fifo::ApproxSize() const {
  return resident_.load(std::memory_order_relaxed);
}

}  // namespace s3fifo
