#include "src/concurrent/concurrent_s3fifo.h"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <new>

#include "src/concurrent/value_payload.h"

namespace s3fifo {

namespace {
// How far ahead of the current request GetBatch prefetches the index slot.
constexpr uint32_t kBatchPrefetch = 8;
}  // namespace

ConcurrentS3Fifo::ValueBuf* ConcurrentS3Fifo::MakeBuf(const char* data, uint32_t size) {
  void* mem = ::operator new(offsetof(ValueBuf, data) + std::max<uint32_t>(size, 1));
  auto* buf = new (mem) ValueBuf;
  buf->size = size;
  if (size > 0) {
    std::memcpy(buf->data, data, size);
  }
  return buf;
}

ConcurrentS3Fifo::ValueBuf* ConcurrentS3Fifo::MakeFillBuf(uint64_t id, uint32_t size) {
  void* mem = ::operator new(offsetof(ValueBuf, data) + std::max<uint32_t>(size, 1));
  auto* buf = new (mem) ValueBuf;
  buf->size = size;
  std::memset(buf->data, static_cast<int>(id & 0xFF), size);
  return buf;
}

void ConcurrentS3Fifo::FreeBuf(ValueBuf* buf) { ::operator delete(buf); }

ConcurrentS3Fifo::Entry::~Entry() { FreeBuf(value.load(std::memory_order_relaxed)); }

ConcurrentS3Fifo::ConcurrentS3Fifo(const ConcurrentCacheConfig& config, double small_ratio,
                                   uint32_t move_threshold, uint32_t max_freq)
    : config_(config),
      move_threshold_(move_threshold),
      max_freq_(max_freq),
      num_shards_(PickCacheShards(config.cache_shards, config.capacity_objects)) {
  const unsigned index_shards = std::max(1u, config.hash_shards / num_shards_);
  shards_.reserve(num_shards_);
  for (unsigned i = 0; i < num_shards_; ++i) {
    const uint64_t capacity = config.capacity_objects / num_shards_ +
                              (i < config.capacity_objects % num_shards_ ? 1 : 0);
    const uint64_t small_target = std::max<uint64_t>(
        static_cast<uint64_t>(capacity * small_ratio), 1);
    shards_.push_back(std::make_unique<Shard>(capacity, small_target, index_shards,
                                              /*pending_capacity=*/256));
  }
}

ConcurrentS3Fifo::~ConcurrentS3Fifo() {
  for (auto& sp : shards_) {
    Shard& s = *sp;
    s.gate.WithLock([&s] {
      Entry* e = nullptr;
      while (s.gate.pending().TryPop(&e)) {
        delete e;
      }
      while (Entry* x = s.small.PopBack()) {
        delete x;
      }
      while (Entry* x = s.main.PopBack()) {
        delete x;
      }
    });
  }
}

void ConcurrentS3Fifo::RetireEntry(Entry* e) {
  EbrDomain::Instance().Retire(e, [](void* p) { delete static_cast<Entry*>(p); });
}

bool ConcurrentS3Fifo::AccessPinned(uint64_t id, const char* set_data, uint32_t set_size,
                                    uint32_t batch_index, ValueSink* sink) {
  Shard& s = ShardFor(id);
  if (Entry* e = s.index.Find(id)) {
    // Lock-free hit path: capped increment; popular objects (freq already at
    // the cap) need no store at all (§4.3.1).
    uint8_t f = e->freq.load(std::memory_order_relaxed);
    while (f < max_freq_ &&
           !e->freq.compare_exchange_weak(f, f + 1, std::memory_order_relaxed)) {
    }
    if (set_data != nullptr) {
      // In-place value replacement: publish the new buffer, retire the old
      // one so concurrent readers mid-copy stay safe.
      ValueBuf* old = e->value.exchange(MakeBuf(set_data, set_size), std::memory_order_acq_rel);
      EbrDomain::Instance().Retire(old, [](void* p) { FreeBuf(static_cast<ValueBuf*>(p)); });
    } else {
      const ValueBuf* v = e->value.load(std::memory_order_acquire);
      if (sink != nullptr) {
        sink->OnValue(batch_index, v->data, v->size);
      } else {
        (void)ReadValuePayload(v->data, v->size);
      }
    }
    hits_.Add(1);
    return true;
  }

  Entry* e = new Entry;
  e->id = id;
  e->value.store(set_data != nullptr ? MakeBuf(set_data, set_size)
                                     : MakeFillBuf(id, config_.value_size),
                 std::memory_order_relaxed);
  if (!s.index.InsertIfAbsent(id, e)) {
    delete e;  // another thread admitted this id concurrently
    misses_.Add(1);
    return false;
  }
  s.resident.fetch_add(1, std::memory_order_relaxed);
  misses_.Add(1);

  std::vector<Entry*> victims;
  s.gate.Submit(e, [this, &s, &victims] { DrainLocked(s, victims); });
  for (Entry* victim : victims) {
    s.index.EraseIf(victim->id, [victim](Entry* v) { return v == victim; });
    RetireEntry(victim);
  }
  return false;
}

bool ConcurrentS3Fifo::Get(uint64_t id) {
  EbrDomain::Guard guard;
  return AccessPinned(id, nullptr, 0, 0, nullptr);
}

void ConcurrentS3Fifo::GetBatch(const uint64_t* ids, uint32_t count, uint8_t* hits,
                                ValueSink* sink) {
  EbrDomain::Guard guard;
  for (uint32_t i = 0; i < count; ++i) {
    if (i + kBatchPrefetch < count) {
      const uint64_t ahead = ids[i + kBatchPrefetch];
      ShardFor(ahead).index.Prefetch(ahead);
    }
    hits[i] = AccessPinned(ids[i], nullptr, 0, i, sink) ? 1 : 0;
  }
}

bool ConcurrentS3Fifo::Set(uint64_t id, const char* data, uint32_t size) {
  static constexpr char kEmpty = '\0';
  EbrDomain::Guard guard;
  AccessPinned(id, data != nullptr ? data : &kEmpty, data != nullptr ? size : 0, 0, nullptr);
  return true;
}

bool ConcurrentS3Fifo::Delete(uint64_t id) {
  Shard& s = ShardFor(id);
  EbrDomain::Guard guard;
  Entry* e = s.index.Find(id);
  if (e == nullptr) {
    return false;
  }
  // Winning the unpublish race makes this thread the entry's sole remover.
  if (!s.index.EraseIf(id, [e](Entry* v) { return v == e; })) {
    return false;
  }
  bool unlinked = false;
  s.gate.WithLock([&] {
    if (e->hook.linked()) {
      if (e->in_small) {
        s.small.Remove(e);
        --s.small_count;
      } else {
        s.main.Remove(e);
        --s.main_count;
      }
      unlinked = true;
    } else {
      // Either still pending in the gate ring (DrainLocked discards dead
      // entries) or a concurrent evictor already unlinked it and owns the
      // retire; the flag is harmless in the latter case.
      e->dead = true;
    }
  });
  if (unlinked) {
    s.resident.fetch_sub(1, std::memory_order_relaxed);
    RetireEntry(e);
  }
  return true;
}

// Under the gate lock: link every pending entry, making room first so the
// Algorithm-1 transition order (evict, then ghost-check, then insert) matches
// the unsharded seed exactly — at cache_shards=1 the replayed decision
// sequence is identical to the seed implementation's.
void ConcurrentS3Fifo::DrainLocked(Shard& s, std::vector<Entry*>& victims) {
  Entry* e = nullptr;
  while (s.gate.pending().TryPop(&e)) {
    if (e->dead) {
      // Deleted before it was ever linked; it is already unpublished.
      s.resident.fetch_sub(1, std::memory_order_relaxed);
      RetireEntry(e);
      continue;
    }
    while (s.small_count + s.main_count >= s.capacity_objects) {
      if ((s.small_count > s.small_target && !s.small.empty()) || s.main.empty()) {
        EvictFromSmall(s, victims);
      } else {
        EvictFromMain(s, victims);
      }
      if (s.small.empty() && s.main.empty()) {
        break;
      }
    }
    if (s.ghost.Contains(e->id)) {
      s.ghost.Remove(e->id);
      e->in_small = false;
      s.main.PushFront(e);
      ++s.main_count;
    } else {
      e->in_small = true;
      s.small.PushFront(e);
      ++s.small_count;
    }
  }
}

void ConcurrentS3Fifo::EvictFromSmall(Shard& s, std::vector<Entry*>& victims) {
  Entry* t = s.small.Back();
  if (t == nullptr) {
    return;
  }
  if (t->freq.load(std::memory_order_relaxed) >= move_threshold_) {
    s.small.Remove(t);
    --s.small_count;
    t->in_small = false;
    t->freq.store(0, std::memory_order_relaxed);
    s.main.PushFront(t);
    ++s.main_count;
    while (s.main_count > s.capacity_objects - s.small_target) {
      EvictFromMain(s, victims);
      if (s.main.empty()) {
        break;
      }
    }
  } else {
    s.small.Remove(t);
    --s.small_count;
    s.ghost.Insert(t->id);
    s.resident.fetch_sub(1, std::memory_order_relaxed);
    victims.push_back(t);
  }
}

void ConcurrentS3Fifo::EvictFromMain(Shard& s, std::vector<Entry*>& victims) {
  while (Entry* t = s.main.Back()) {
    const uint8_t f = t->freq.load(std::memory_order_relaxed);
    if (f > 0) {
      t->freq.store(f - 1, std::memory_order_relaxed);
      s.main.MoveToFront(t);
    } else {
      s.main.Remove(t);
      --s.main_count;
      s.resident.fetch_sub(1, std::memory_order_relaxed);
      victims.push_back(t);
      return;
    }
  }
}

uint64_t ConcurrentS3Fifo::ApproxSize() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->resident.load(std::memory_order_relaxed);
  }
  return total;
}

ConcurrentCacheStats ConcurrentS3Fifo::Stats() const {
  return {static_cast<uint64_t>(hits_.Sum()), static_cast<uint64_t>(misses_.Sum())};
}

}  // namespace s3fifo
