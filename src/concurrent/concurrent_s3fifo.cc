#include "src/concurrent/concurrent_s3fifo.h"

#include <algorithm>

#include "src/concurrent/value_payload.h"

namespace s3fifo {

ConcurrentS3Fifo::ConcurrentS3Fifo(const ConcurrentCacheConfig& config, double small_ratio,
                                   uint32_t move_threshold, uint32_t max_freq)
    : config_(config),
      move_threshold_(move_threshold),
      max_freq_(max_freq),
      num_shards_(PickCacheShards(config.cache_shards, config.capacity_objects)) {
  const unsigned index_shards = std::max(1u, config.hash_shards / num_shards_);
  shards_.reserve(num_shards_);
  for (unsigned i = 0; i < num_shards_; ++i) {
    const uint64_t capacity = config.capacity_objects / num_shards_ +
                              (i < config.capacity_objects % num_shards_ ? 1 : 0);
    const uint64_t small_target = std::max<uint64_t>(
        static_cast<uint64_t>(capacity * small_ratio), 1);
    shards_.push_back(std::make_unique<Shard>(capacity, small_target, index_shards,
                                              /*pending_capacity=*/256));
  }
}

ConcurrentS3Fifo::~ConcurrentS3Fifo() {
  for (auto& sp : shards_) {
    Shard& s = *sp;
    s.gate.WithLock([&s] {
      Entry* e = nullptr;
      while (s.gate.pending().TryPop(&e)) {
        delete e;
      }
      while (Entry* x = s.small.PopBack()) {
        delete x;
      }
      while (Entry* x = s.main.PopBack()) {
        delete x;
      }
    });
  }
}

void ConcurrentS3Fifo::RetireEntry(Entry* e) {
  EbrDomain::Instance().Retire(e, [](void* p) { delete static_cast<Entry*>(p); });
}

bool ConcurrentS3Fifo::Get(uint64_t id) {
  Shard& s = ShardFor(id);
  EbrDomain::Guard guard;
  if (Entry* e = s.index.Find(id)) {
    // Lock-free hit path: capped increment; popular objects (freq already at
    // the cap) need no store at all (§4.3.1).
    uint8_t f = e->freq.load(std::memory_order_relaxed);
    while (f < max_freq_ &&
           !e->freq.compare_exchange_weak(f, f + 1, std::memory_order_relaxed)) {
    }
    (void)ReadValuePayload(e->value.get(), config_.value_size);
    hits_.Add(1);
    return true;
  }

  Entry* e = new Entry;
  e->id = id;
  e->value = MakeValuePayload(id, config_.value_size);
  if (!s.index.InsertIfAbsent(id, e)) {
    delete e;  // another thread admitted this id concurrently
    misses_.Add(1);
    return false;
  }
  s.resident.fetch_add(1, std::memory_order_relaxed);
  misses_.Add(1);

  std::vector<Entry*> victims;
  s.gate.Submit(e, [this, &s, &victims] { DrainLocked(s, victims); });
  for (Entry* victim : victims) {
    s.index.EraseIf(victim->id, [victim](Entry* v) { return v == victim; });
    RetireEntry(victim);
  }
  return false;
}

// Under the gate lock: link every pending entry, making room first so the
// Algorithm-1 transition order (evict, then ghost-check, then insert) matches
// the unsharded seed exactly — at cache_shards=1 the replayed decision
// sequence is identical to the seed implementation's.
void ConcurrentS3Fifo::DrainLocked(Shard& s, std::vector<Entry*>& victims) {
  Entry* e = nullptr;
  while (s.gate.pending().TryPop(&e)) {
    while (s.small_count + s.main_count >= s.capacity_objects) {
      if ((s.small_count > s.small_target && !s.small.empty()) || s.main.empty()) {
        EvictFromSmall(s, victims);
      } else {
        EvictFromMain(s, victims);
      }
      if (s.small.empty() && s.main.empty()) {
        break;
      }
    }
    if (s.ghost.Contains(e->id)) {
      s.ghost.Remove(e->id);
      e->in_small = false;
      s.main.PushFront(e);
      ++s.main_count;
    } else {
      e->in_small = true;
      s.small.PushFront(e);
      ++s.small_count;
    }
  }
}

void ConcurrentS3Fifo::EvictFromSmall(Shard& s, std::vector<Entry*>& victims) {
  Entry* t = s.small.Back();
  if (t == nullptr) {
    return;
  }
  if (t->freq.load(std::memory_order_relaxed) >= move_threshold_) {
    s.small.Remove(t);
    --s.small_count;
    t->in_small = false;
    t->freq.store(0, std::memory_order_relaxed);
    s.main.PushFront(t);
    ++s.main_count;
    while (s.main_count > s.capacity_objects - s.small_target) {
      EvictFromMain(s, victims);
      if (s.main.empty()) {
        break;
      }
    }
  } else {
    s.small.Remove(t);
    --s.small_count;
    s.ghost.Insert(t->id);
    s.resident.fetch_sub(1, std::memory_order_relaxed);
    victims.push_back(t);
  }
}

void ConcurrentS3Fifo::EvictFromMain(Shard& s, std::vector<Entry*>& victims) {
  while (Entry* t = s.main.Back()) {
    const uint8_t f = t->freq.load(std::memory_order_relaxed);
    if (f > 0) {
      t->freq.store(f - 1, std::memory_order_relaxed);
      s.main.MoveToFront(t);
    } else {
      s.main.Remove(t);
      --s.main_count;
      s.resident.fetch_sub(1, std::memory_order_relaxed);
      victims.push_back(t);
      return;
    }
  }
}

uint64_t ConcurrentS3Fifo::ApproxSize() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->resident.load(std::memory_order_relaxed);
  }
  return total;
}

ConcurrentCacheStats ConcurrentS3Fifo::Stats() const {
  return {static_cast<uint64_t>(hits_.Sum()), static_cast<uint64_t>(misses_.Sum())};
}

}  // namespace s3fifo
