// Concurrent S3-FIFO (paper §5.3): the hit path performs one capped atomic
// frequency increment — no lock, no queue mutation (and for already-hot
// objects not even a store). Misses take a single eviction mutex to run the
// Algorithm-1 queue transitions; the ghost queue is the §4.2 fingerprint
// table. Because skewed workloads are hit-dominated, the miss-path lock is
// off the critical path — this asymmetry is the entire scalability argument
// of the paper.
#ifndef SRC_CONCURRENT_CONCURRENT_S3FIFO_H_
#define SRC_CONCURRENT_CONCURRENT_S3FIFO_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "src/concurrent/concurrent_cache.h"
#include "src/concurrent/striped_hash_map.h"
#include "src/util/ghost_table.h"
#include "src/util/intrusive_list.h"

namespace s3fifo {

class ConcurrentS3Fifo : public ConcurrentCache {
 public:
  explicit ConcurrentS3Fifo(const ConcurrentCacheConfig& config, double small_ratio = 0.1,
                            uint32_t move_threshold = 2, uint32_t max_freq = 3);
  ~ConcurrentS3Fifo() override;

  bool Get(uint64_t id) override;
  std::string Name() const override { return "s3fifo"; }
  uint64_t ApproxSize() const override;

 private:
  struct Entry {
    uint64_t id = 0;
    std::atomic<uint8_t> freq{0};
    bool in_small = true;  // guarded by evict_mu_
    std::unique_ptr<char[]> value;
    ListHook hook;
  };
  using Queue = IntrusiveList<Entry, &Entry::hook>;

  // All three run under evict_mu_. Victims are collected for out-of-lock
  // index erase + delete.
  void EvictFromSmall(std::vector<Entry*>& victims);
  void EvictFromMain(std::vector<Entry*>& victims);
  void MakeRoom(std::vector<Entry*>& victims);

  const ConcurrentCacheConfig config_;
  const uint64_t small_target_;
  const uint32_t move_threshold_;
  const uint32_t max_freq_;

  StripedHashMap<Entry*> index_;
  std::mutex evict_mu_;
  Queue small_;
  Queue main_;
  uint64_t small_count_ = 0;  // guarded by evict_mu_
  uint64_t main_count_ = 0;
  GhostTable ghost_;  // guarded by evict_mu_
  std::atomic<uint64_t> resident_{0};
};

}  // namespace s3fifo

#endif  // SRC_CONCURRENT_CONCURRENT_S3FIFO_H_
