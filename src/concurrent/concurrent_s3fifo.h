// Concurrent S3-FIFO (paper §5.3), sharded + lock-free read path:
//
//  * Hits touch no lock at all: a wait-free probe of the LockFreeHashMap
//    index plus one capped relaxed frequency increment (for already-hot
//    objects not even a store) — entry lifetime is protected by EBR, not by
//    a shard mutex as in the seed implementation.
//  * Misses touch only per-shard state: the cache is hash-partitioned into
//    independent sub-caches, each with its own small/main queues, ghost
//    fingerprint table and eviction lock. The miss path publishes the new
//    entry to the index, then submits link+evict work through a
//    try-lock-and-delegate EvictionGate — a thread that loses the lock race
//    queues its work instead of blocking, and the winning thread drains the
//    whole batch under one lock acquisition (batched eviction).
//
// Because skewed workloads are hit-dominated, this removes every shared
// cache line from the critical path — the scalability argument of the paper,
// now actually realized instead of bottlenecked on a global evict_mu_.
#ifndef SRC_CONCURRENT_CONCURRENT_S3FIFO_H_
#define SRC_CONCURRENT_CONCURRENT_S3FIFO_H_

#include <atomic>
#include <memory>
#include <vector>

#include "src/concurrent/concurrent_cache.h"
#include "src/concurrent/lockfree_hash_map.h"
#include "src/concurrent/sharded_cache.h"
#include "src/concurrent/striped_counter.h"
#include "src/util/ghost_table.h"
#include "src/util/intrusive_list.h"

namespace s3fifo {

class ConcurrentS3Fifo : public ConcurrentCache {
 public:
  explicit ConcurrentS3Fifo(const ConcurrentCacheConfig& config, double small_ratio = 0.1,
                            uint32_t move_threshold = 2, uint32_t max_freq = 3);
  ~ConcurrentS3Fifo() override;

  bool Get(uint64_t id) override;
  // Software-pipelined batch: one EBR pin for the whole block, index slots
  // prefetched kBatchPrefetch ids ahead; outcome bit-identical to Get() per
  // id. Hits report their value bytes through `sink` (server data path).
  void GetBatch(const uint64_t* ids, uint32_t count, uint8_t* hits,
                ValueSink* sink = nullptr) override;
  // Insert-or-replace with explicit bytes. A resident object's value is
  // swapped via an atomic pointer exchange (old buffer EBR-retired so
  // lock-free readers finish safely); a miss admits through the normal
  // S3-FIFO miss path carrying the provided bytes.
  bool Set(uint64_t id, const char* data, uint32_t size) override;
  // Unpublishes from the index, unlinks from its queue under the gate lock
  // (or marks a still-pending entry dead for DrainLocked to discard), and
  // EBR-retires the entry. No ghost insertion — matches the simulator's
  // explicit-delete semantics.
  bool Delete(uint64_t id) override;
  std::string Name() const override { return "s3fifo"; }
  uint64_t ApproxSize() const override;
  ConcurrentCacheStats Stats() const override;

 private:
  // Heap block holding one value; entries point at it through an atomic so
  // `set` on a resident object can republish without disturbing concurrent
  // lock-free readers (the old block is EBR-retired).
  struct ValueBuf {
    uint32_t size = 0;
    char data[1];  // over-allocated to `size` bytes
  };
  static ValueBuf* MakeBuf(const char* data, uint32_t size);
  static ValueBuf* MakeFillBuf(uint64_t id, uint32_t size);
  static void FreeBuf(ValueBuf* buf);

  struct Entry {
    ~Entry();
    uint64_t id = 0;
    std::atomic<uint8_t> freq{0};
    bool in_small = true;   // guarded by the shard's gate lock
    bool dead = false;      // guarded by the gate lock: Delete'd while pending
    std::atomic<ValueBuf*> value{nullptr};
    ListHook hook;  // hook.linked() (under the gate lock) <=> on small/main
  };
  using Queue = IntrusiveList<Entry, &Entry::hook>;

  struct alignas(64) Shard {
    Shard(uint64_t capacity, uint64_t small_target, unsigned index_shards,
          uint64_t pending_capacity)
        : capacity_objects(capacity),
          small_target(small_target),
          index(capacity, index_shards),
          gate(pending_capacity),
          ghost(std::max<uint64_t>(capacity - small_target, 1)) {}

    const uint64_t capacity_objects;
    const uint64_t small_target;
    LockFreeHashMap<Entry*> index;
    EvictionGate<Entry*> gate;
    // Everything below is guarded by the gate lock.
    Queue small, main;
    uint64_t small_count = 0;
    uint64_t main_count = 0;
    GhostTable ghost;
    // Published entries (linked + still pending); aggregated by ApproxSize.
    std::atomic<uint64_t> resident{0};
  };

  Shard& ShardFor(uint64_t id) { return *shards_[CacheShardFor(id, num_shards_)]; }

  // One request, caller already pinned (EBR guard held). `set_data` non-null
  // makes it a `set` (value stored/replaced); null is an on-demand-fill get.
  bool AccessPinned(uint64_t id, const char* set_data, uint32_t set_size, uint32_t batch_index,
                    ValueSink* sink);

  // All three run under the shard's gate lock. Victims are collected for
  // out-of-lock index unpublish + EBR retire.
  void DrainLocked(Shard& s, std::vector<Entry*>& victims);
  void EvictFromSmall(Shard& s, std::vector<Entry*>& victims);
  void EvictFromMain(Shard& s, std::vector<Entry*>& victims);

  static void RetireEntry(Entry* e);

  const ConcurrentCacheConfig config_;
  const uint32_t move_threshold_;
  const uint32_t max_freq_;
  unsigned num_shards_;
  std::vector<std::unique_ptr<Shard>> shards_;
  StripedCounter hits_;
  StripedCounter misses_;
};

}  // namespace s3fifo

#endif  // SRC_CONCURRENT_CONCURRENT_S3FIFO_H_
