#include "src/concurrent/concurrent_s3fifo_ring.h"

#include <algorithm>

#include "src/concurrent/ebr.h"
#include "src/concurrent/value_payload.h"

namespace s3fifo {

ConcurrentS3FifoRing::ConcurrentS3FifoRing(const ConcurrentCacheConfig& config,
                                           double small_ratio, uint32_t move_threshold,
                                           uint32_t max_freq)
    : config_(config),
      small_target_(std::max<uint64_t>(
          static_cast<uint64_t>(config.capacity_objects * small_ratio), 1)),
      move_threshold_(move_threshold),
      max_freq_(max_freq),
      index_(config.capacity_objects, config.hash_shards),
      // Rings sized to the full capacity: transient over-occupancy during
      // racing inserts stays bounded by the thread count.
      small_(config.capacity_objects + 64),
      main_(config.capacity_objects + 64),
      ghost_(std::max<uint64_t>(config.capacity_objects - small_target_, 1)) {}

ConcurrentS3FifoRing::~ConcurrentS3FifoRing() {
  Entry* e = nullptr;
  while (small_.TryPop(&e)) {
    delete e;
  }
  while (main_.TryPop(&e)) {
    delete e;
  }
}

bool ConcurrentS3FifoRing::Get(uint64_t id) {
  EbrDomain::Guard guard;
  if (Entry* e = index_.Find(id)) {
    uint8_t f = e->freq.load(std::memory_order_relaxed);
    while (f < max_freq_ &&
           !e->freq.compare_exchange_weak(f, f + 1, std::memory_order_relaxed)) {
    }
    (void)ReadValuePayload(e->value.get(), config_.value_size);
    hits_.Add(1);
    return true;
  }

  Entry* e = new Entry;
  e->id = id;
  e->value = MakeValuePayload(id, config_.value_size);
  if (!index_.InsertIfAbsent(id, e)) {
    delete e;
    misses_.Add(1);
    return false;
  }
  misses_.Add(1);

  while (resident_.load(std::memory_order_relaxed) >= config_.capacity_objects) {
    EvictOne();
  }

  bool ghost_hit = false;
  {
    std::lock_guard<std::mutex> lock(ghost_mu_);
    if (ghost_.Contains(id)) {
      ghost_.Remove(id);
      ghost_hit = true;
    }
  }
  resident_.fetch_add(1, std::memory_order_relaxed);
  if (ghost_hit) {
    PushMain(e);
  } else {
    while (!small_.TryPush(e)) {
      EvictFromSmallOnce();  // ring full: make room (bumps the tail pointer)
    }
    small_count_.fetch_add(1, std::memory_order_relaxed);
  }
  return false;
}

void ConcurrentS3FifoRing::EvictOne() {
  if (small_count_.load(std::memory_order_relaxed) > small_target_ ||
      main_count_.load(std::memory_order_relaxed) == 0) {
    EvictFromSmallOnce();
  } else {
    EvictFromMainOnce();
  }
}

void ConcurrentS3FifoRing::Discard(Entry* e) {
  index_.EraseIf(e->id, [e](Entry* v) { return v == e; });
  resident_.fetch_sub(1, std::memory_order_relaxed);
  EbrDomain::Instance().Retire(e, [](void* p) { delete static_cast<Entry*>(p); });
}

void ConcurrentS3FifoRing::EvictFromSmallOnce() {
  Entry* t = nullptr;
  if (!small_.TryPop(&t)) {
    EvictFromMainOnce();  // S drained by a racing evictor
    return;
  }
  small_count_.fetch_sub(1, std::memory_order_relaxed);
  if (t->freq.load(std::memory_order_relaxed) >= move_threshold_) {
    t->freq.store(0, std::memory_order_relaxed);
    PushMain(t);
  } else {
    {
      std::lock_guard<std::mutex> lock(ghost_mu_);
      ghost_.Insert(t->id);
    }
    Discard(t);
  }
}

void ConcurrentS3FifoRing::PushMain(Entry* e) {
  while (main_count_.load(std::memory_order_relaxed) >
         config_.capacity_objects - small_target_) {
    EvictFromMainOnce();
  }
  while (!main_.TryPush(e)) {
    EvictFromMainOnce();
  }
  main_count_.fetch_add(1, std::memory_order_relaxed);
}

void ConcurrentS3FifoRing::EvictFromMainOnce() {
  // FIFO-reinsertion over the ring; bounded by the total frequency mass.
  for (int spins = 0; spins < 1 << 20; ++spins) {
    Entry* t = nullptr;
    if (!main_.TryPop(&t)) {
      return;
    }
    main_count_.fetch_sub(1, std::memory_order_relaxed);
    uint8_t f = t->freq.load(std::memory_order_relaxed);
    if (f > 0) {
      t->freq.store(f - 1, std::memory_order_relaxed);
      if (main_.TryPush(t)) {
        main_count_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      // Racing pushes filled the ring: fall back to evicting this entry.
    }
    Discard(t);
    return;
  }
}

uint64_t ConcurrentS3FifoRing::ApproxSize() const {
  return resident_.load(std::memory_order_relaxed);
}

ConcurrentCacheStats ConcurrentS3FifoRing::Stats() const {
  return {static_cast<uint64_t>(hits_.Sum()), static_cast<uint64_t>(misses_.Sum())};
}

}  // namespace s3fifo
