#include "src/concurrent/concurrent_s3fifo_ring.h"

#include <algorithm>
#include <cstring>

namespace s3fifo {
namespace {

std::unique_ptr<char[]> MakeValue(uint64_t id, uint32_t size) {
  auto value = std::make_unique<char[]>(size);
  std::memset(value.get(), static_cast<int>(id & 0xFF), size);
  return value;
}

uint64_t ReadValue(const char* value) {
  uint64_t v = 0;
  std::memcpy(&v, value, sizeof(v));
  return v;
}

}  // namespace

ConcurrentS3FifoRing::ConcurrentS3FifoRing(const ConcurrentCacheConfig& config,
                                           double small_ratio, uint32_t move_threshold,
                                           uint32_t max_freq)
    : config_(config),
      small_target_(std::max<uint64_t>(
          static_cast<uint64_t>(config.capacity_objects * small_ratio), 1)),
      move_threshold_(move_threshold),
      max_freq_(max_freq),
      index_(config.hash_shards, config.capacity_objects / config.hash_shards + 1),
      // Rings sized to the full capacity: transient over-occupancy during
      // racing inserts stays bounded by the thread count.
      small_(config.capacity_objects + 64),
      main_(config.capacity_objects + 64),
      ghost_(std::max<uint64_t>(config.capacity_objects - small_target_, 1)) {}

ConcurrentS3FifoRing::~ConcurrentS3FifoRing() {
  Entry* e = nullptr;
  while (small_.TryPop(&e)) {
    delete e;
  }
  while (main_.TryPop(&e)) {
    delete e;
  }
}

bool ConcurrentS3FifoRing::Get(uint64_t id) {
  const bool hit = index_.WithValue(id, [&](Entry** slot) {
    if (slot == nullptr) {
      return false;
    }
    Entry* e = *slot;
    uint8_t f = e->freq.load(std::memory_order_relaxed);
    while (f < max_freq_ &&
           !e->freq.compare_exchange_weak(f, f + 1, std::memory_order_relaxed)) {
    }
    (void)ReadValue(e->value.get());
    return true;
  });
  if (hit) {
    return true;
  }

  Entry* e = new Entry;
  e->id = id;
  e->value = MakeValue(id, config_.value_size);
  if (!index_.InsertIfAbsent(id, e)) {
    delete e;
    return false;
  }

  while (resident_.load(std::memory_order_relaxed) >= config_.capacity_objects) {
    EvictOne();
  }

  bool ghost_hit = false;
  {
    std::lock_guard<std::mutex> lock(ghost_mu_);
    if (ghost_.Contains(id)) {
      ghost_.Remove(id);
      ghost_hit = true;
    }
  }
  resident_.fetch_add(1, std::memory_order_relaxed);
  if (ghost_hit) {
    PushMain(e);
  } else {
    while (!small_.TryPush(e)) {
      EvictFromSmallOnce();  // ring full: make room (bumps the tail pointer)
    }
    small_count_.fetch_add(1, std::memory_order_relaxed);
  }
  return false;
}

void ConcurrentS3FifoRing::EvictOne() {
  if (small_count_.load(std::memory_order_relaxed) > small_target_ ||
      main_count_.load(std::memory_order_relaxed) == 0) {
    EvictFromSmallOnce();
  } else {
    EvictFromMainOnce();
  }
}

void ConcurrentS3FifoRing::Discard(Entry* e) {
  index_.EraseIf(e->id, [e](Entry* v) { return v == e; });
  resident_.fetch_sub(1, std::memory_order_relaxed);
  delete e;
}

void ConcurrentS3FifoRing::EvictFromSmallOnce() {
  Entry* t = nullptr;
  if (!small_.TryPop(&t)) {
    EvictFromMainOnce();  // S drained by a racing evictor
    return;
  }
  small_count_.fetch_sub(1, std::memory_order_relaxed);
  if (t->freq.load(std::memory_order_relaxed) >= move_threshold_) {
    t->freq.store(0, std::memory_order_relaxed);
    PushMain(t);
  } else {
    {
      std::lock_guard<std::mutex> lock(ghost_mu_);
      ghost_.Insert(t->id);
    }
    Discard(t);
  }
}

void ConcurrentS3FifoRing::PushMain(Entry* e) {
  while (main_count_.load(std::memory_order_relaxed) >
         config_.capacity_objects - small_target_) {
    EvictFromMainOnce();
  }
  while (!main_.TryPush(e)) {
    EvictFromMainOnce();
  }
  main_count_.fetch_add(1, std::memory_order_relaxed);
}

void ConcurrentS3FifoRing::EvictFromMainOnce() {
  // FIFO-reinsertion over the ring; bounded by the total frequency mass.
  for (int spins = 0; spins < 1 << 20; ++spins) {
    Entry* t = nullptr;
    if (!main_.TryPop(&t)) {
      return;
    }
    main_count_.fetch_sub(1, std::memory_order_relaxed);
    uint8_t f = t->freq.load(std::memory_order_relaxed);
    if (f > 0) {
      t->freq.store(f - 1, std::memory_order_relaxed);
      if (main_.TryPush(t)) {
        main_count_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      // Racing pushes filled the ring: fall back to evicting this entry.
    }
    Discard(t);
    return;
  }
}

uint64_t ConcurrentS3FifoRing::ApproxSize() const {
  return resident_.load(std::memory_order_relaxed);
}

}  // namespace s3fifo
