// Ring-buffer concurrent S3-FIFO — the implementation §4.2 recommends for
// scalability: S and M are lock-free bounded MPMC rings ("eviction requires
// bumping the tail pointer in the ring buffer"), so the miss path needs no
// queue mutex either; the only lock left is a short mutex around the ghost
// fingerprint table. Hits are a wait-free probe of the lock-free index plus
// a capped atomic increment; entry lifetime is protected by EBR.
//
// Compared to ConcurrentS3Fifo (sharded linked lists behind eviction gates),
// the ring variant trades exactness for concurrency:
//   * eviction dispatch reads approximate queue counters;
//   * a reinsertion whose push races against a full ring falls back to
//     eviction (bounded, rare).
// Both are faithful to the paper's discussion of the two implementations.
#ifndef SRC_CONCURRENT_CONCURRENT_S3FIFO_RING_H_
#define SRC_CONCURRENT_CONCURRENT_S3FIFO_RING_H_

#include <atomic>
#include <memory>
#include <mutex>

#include "src/concurrent/concurrent_cache.h"
#include "src/concurrent/lockfree_hash_map.h"
#include "src/concurrent/mpmc_queue.h"
#include "src/concurrent/striped_counter.h"
#include "src/util/ghost_table.h"

namespace s3fifo {

class ConcurrentS3FifoRing : public ConcurrentCache {
 public:
  explicit ConcurrentS3FifoRing(const ConcurrentCacheConfig& config, double small_ratio = 0.1,
                                uint32_t move_threshold = 2, uint32_t max_freq = 3);
  ~ConcurrentS3FifoRing() override;

  bool Get(uint64_t id) override;
  std::string Name() const override { return "s3fifo-ring"; }
  uint64_t ApproxSize() const override;
  ConcurrentCacheStats Stats() const override;

 private:
  struct Entry {
    uint64_t id = 0;
    std::atomic<uint8_t> freq{0};
    std::unique_ptr<char[]> value;
  };

  void EvictOne();
  void EvictFromSmallOnce();
  void EvictFromMainOnce();
  // Pushes into M, evicting from M as needed to make room. Takes ownership.
  void PushMain(Entry* e);
  // Erase from index + EBR-retire (popper-owned entry; racing readers may
  // still hold the pointer, so the free is epoch-deferred).
  void Discard(Entry* e);

  const ConcurrentCacheConfig config_;
  const uint64_t small_target_;
  const uint32_t move_threshold_;
  const uint32_t max_freq_;

  LockFreeHashMap<Entry*> index_;
  MpmcQueue<Entry*> small_;
  MpmcQueue<Entry*> main_;
  std::atomic<uint64_t> small_count_{0};
  std::atomic<uint64_t> main_count_{0};
  std::atomic<uint64_t> resident_{0};

  std::mutex ghost_mu_;
  GhostTable ghost_;

  StripedCounter hits_;
  StripedCounter misses_;
};

}  // namespace s3fifo

#endif  // SRC_CONCURRENT_CONCURRENT_S3FIFO_RING_H_
