#include "src/concurrent/concurrent_tinylfu.h"

#include <algorithm>

#include "src/concurrent/value_payload.h"
#include "src/util/hash.h"

namespace s3fifo {
namespace {

constexpr uint64_t kRowSeeds[4] = {0x9e3779b97f4a7c15ULL, 0xc2b2ae3d27d4eb4fULL,
                                   0x165667b19e3779f9ULL, 0xd6e8feb86659fd93ULL};

uint64_t NextPow2(uint64_t x) {
  uint64_t p = 1;
  while (p < x) {
    p <<= 1;
  }
  return p;
}

}  // namespace

ConcurrentTinyLfu::ConcurrentTinyLfu(const ConcurrentCacheConfig& config, double window_ratio)
    : config_(config),
      num_shards_(PickCacheShards(config.cache_shards, config.capacity_objects)),
      sketch_(NextPow2(std::max<uint64_t>(config.capacity_objects * 4, 64)) * 4) {
  sketch_mask_ = sketch_.size() / 4 - 1;
  sample_period_ = std::max<uint64_t>(config.capacity_objects * 10, 64);
  next_age_at_.store(sample_period_, std::memory_order_relaxed);

  const unsigned index_shards = std::max(1u, config.hash_shards / num_shards_);
  shards_.reserve(num_shards_);
  for (unsigned i = 0; i < num_shards_; ++i) {
    const uint64_t capacity = config.capacity_objects / num_shards_ +
                              (i < config.capacity_objects % num_shards_ ? 1 : 0);
    const uint64_t window_capacity = std::max<uint64_t>(
        static_cast<uint64_t>(capacity * window_ratio), 1);
    const uint64_t main_capacity = std::max<uint64_t>(capacity - window_capacity, 2);
    const uint64_t probation_capacity = std::max<uint64_t>(main_capacity / 5, 1);
    const uint64_t protected_capacity =
        std::max<uint64_t>(main_capacity - probation_capacity, 1);
    shards_.push_back(std::make_unique<Shard>(window_capacity, probation_capacity,
                                              protected_capacity, capacity, index_shards,
                                              /*pending_capacity=*/256));
  }
}

ConcurrentTinyLfu::~ConcurrentTinyLfu() {
  for (auto& sp : shards_) {
    Shard& s = *sp;
    s.gate.WithLock([&s] {
      Entry* e = nullptr;
      while (s.gate.pending().TryPop(&e)) {
        delete e;
      }
      for (Queue* q : {&s.window, &s.probation, &s.protected_q}) {
        while (Entry* x = q->PopBack()) {
          delete x;
        }
      }
    });
  }
}

void ConcurrentTinyLfu::RetireEntry(Entry* e) {
  EbrDomain::Instance().Retire(e, [](void* p) { delete static_cast<Entry*>(p); });
}

void ConcurrentTinyLfu::SketchIncrement(uint64_t id) {
  for (int row = 0; row < 4; ++row) {
    auto& counter = sketch_[static_cast<uint64_t>(row) * (sketch_mask_ + 1) +
                            (Mix64(id ^ kRowSeeds[row]) & sketch_mask_)];
    uint32_t v = counter.load(std::memory_order_relaxed);
    if (v < 0xFFFFFFFFu) {
      counter.fetch_add(1, std::memory_order_relaxed);
    }
  }
  accesses_.Add(1);
  // Sampled aging check: only every 64th local access reads the striped sum,
  // and a CAS elects the single thread that halves the sketch. No per-access
  // shared counter remains on the hot path.
  thread_local uint32_t tick = 0;
  if ((++tick & 63u) == 0) {
    const uint64_t n = static_cast<uint64_t>(accesses_.Sum());
    uint64_t expected = next_age_at_.load(std::memory_order_relaxed);
    if (n >= expected &&
        next_age_at_.compare_exchange_strong(expected, n + sample_period_,
                                             std::memory_order_relaxed)) {
      // Relaxed halving races with increments but the estimate only needs to
      // be approximate.
      for (auto& counter : sketch_) {
        counter.store(counter.load(std::memory_order_relaxed) / 2,
                      std::memory_order_relaxed);
      }
    }
  }
}

uint32_t ConcurrentTinyLfu::SketchEstimate(uint64_t id) const {
  uint32_t m = 0xFFFFFFFFu;
  for (int row = 0; row < 4; ++row) {
    m = std::min(m, sketch_[static_cast<uint64_t>(row) * (sketch_mask_ + 1) +
                            (Mix64(id ^ kRowSeeds[row]) & sketch_mask_)]
                        .load(std::memory_order_relaxed));
  }
  return m;
}

bool ConcurrentTinyLfu::Get(uint64_t id) {
  SketchIncrement(id);

  Shard& s = ShardFor(id);
  EbrDomain::Guard guard;
  if (Entry* e = s.index.Find(id)) {
    (void)ReadValuePayload(e->value.get(), config_.value_size);
    // Hits need the list lock for SLRU promotions — the cost the paper calls
    // out; sharding shrinks the critical section's scope but not its nature.
    s.gate.WithLock([this, &s, e] {
      if (e->hook.linked()) {  // not concurrently evicted
        PromoteLocked(s, e);
      }
    });
    hits_.Add(1);
    return true;
  }

  Entry* e = new Entry;
  e->id = id;
  e->value = MakeValuePayload(id, config_.value_size);
  if (!s.index.InsertIfAbsent(id, e)) {
    delete e;
    misses_.Add(1);
    return false;
  }
  s.resident.fetch_add(1, std::memory_order_relaxed);
  misses_.Add(1);

  std::vector<Entry*> victims;
  s.gate.Submit(e, [this, &s, &victims] { DrainLocked(s, victims); });
  for (Entry* victim : victims) {
    s.index.EraseIf(victim->id, [victim](Entry* v) { return v == victim; });
    RetireEntry(victim);
  }
  return false;
}

void ConcurrentTinyLfu::PromoteLocked(Shard& s, Entry* e) {
  switch (e->where) {
    case Where::kWindow:
      s.window.MoveToFront(e);
      break;
    case Where::kProbation:
      s.probation.Remove(e);
      --s.probation_count;
      e->where = Where::kProtected;
      s.protected_q.PushFront(e);
      ++s.protected_count;
      while (s.protected_count > s.protected_capacity) {
        Entry* tail = s.protected_q.PopBack();
        if (tail == nullptr) {
          break;
        }
        --s.protected_count;
        tail->where = Where::kProbation;
        s.probation.PushFront(tail);
        ++s.probation_count;
      }
      break;
    case Where::kProtected:
      s.protected_q.MoveToFront(e);
      break;
  }
}

void ConcurrentTinyLfu::DrainLocked(Shard& s, std::vector<Entry*>& victims) {
  Entry* e = nullptr;
  while (s.gate.pending().TryPop(&e)) {
    e->where = Where::kWindow;
    s.window.PushFront(e);
    ++s.window_count;
    HandleOverflowLocked(s, victims);
  }
}

void ConcurrentTinyLfu::HandleOverflowLocked(Shard& s, std::vector<Entry*>& victims) {
  while (s.window_count > s.window_capacity) {
    Entry* candidate = s.window.Back();
    if (candidate == nullptr) {
      return;
    }
    s.window.Remove(candidate);
    --s.window_count;
    if (s.probation_count + s.protected_count <
        s.probation_capacity + s.protected_capacity) {
      candidate->where = Where::kProbation;
      s.probation.PushFront(candidate);
      ++s.probation_count;
      continue;
    }
    Entry* victim = s.probation.Back();
    if (victim == nullptr) {
      victim = s.protected_q.Back();
    }
    if (victim == nullptr) {
      s.resident.fetch_sub(1, std::memory_order_relaxed);
      victims.push_back(candidate);
      continue;
    }
    if (SketchEstimate(candidate->id) > SketchEstimate(victim->id)) {
      if (victim->where == Where::kProbation) {
        s.probation.Remove(victim);
        --s.probation_count;
      } else {
        s.protected_q.Remove(victim);
        --s.protected_count;
      }
      s.resident.fetch_sub(1, std::memory_order_relaxed);
      victims.push_back(victim);
      candidate->where = Where::kProbation;
      s.probation.PushFront(candidate);
      ++s.probation_count;
    } else {
      s.resident.fetch_sub(1, std::memory_order_relaxed);
      victims.push_back(candidate);
    }
  }
}

uint64_t ConcurrentTinyLfu::ApproxSize() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->resident.load(std::memory_order_relaxed);
  }
  return total;
}

ConcurrentCacheStats ConcurrentTinyLfu::Stats() const {
  return {static_cast<uint64_t>(hits_.Sum()), static_cast<uint64_t>(misses_.Sum())};
}

}  // namespace s3fifo
