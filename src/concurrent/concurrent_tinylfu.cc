#include "src/concurrent/concurrent_tinylfu.h"

#include <algorithm>
#include <cstring>

#include "src/util/hash.h"

namespace s3fifo {
namespace {

constexpr uint64_t kRowSeeds[4] = {0x9e3779b97f4a7c15ULL, 0xc2b2ae3d27d4eb4fULL,
                                   0x165667b19e3779f9ULL, 0xd6e8feb86659fd93ULL};

std::unique_ptr<char[]> MakeValue(uint64_t id, uint32_t size) {
  auto value = std::make_unique<char[]>(size);
  std::memset(value.get(), static_cast<int>(id & 0xFF), size);
  return value;
}

uint64_t ReadValue(const char* value) {
  uint64_t v = 0;
  std::memcpy(&v, value, sizeof(v));
  return v;
}

uint64_t NextPow2(uint64_t x) {
  uint64_t p = 1;
  while (p < x) {
    p <<= 1;
  }
  return p;
}

}  // namespace

ConcurrentTinyLfu::ConcurrentTinyLfu(const ConcurrentCacheConfig& config, double window_ratio)
    : config_(config),
      sketch_(NextPow2(std::max<uint64_t>(config.capacity_objects * 4, 64)) * 4),
      index_(config.hash_shards, config.capacity_objects / config.hash_shards + 1) {
  window_capacity_ = std::max<uint64_t>(
      static_cast<uint64_t>(config.capacity_objects * window_ratio), 1);
  const uint64_t main_capacity =
      std::max<uint64_t>(config.capacity_objects - window_capacity_, 2);
  probation_capacity_ = std::max<uint64_t>(main_capacity / 5, 1);
  protected_capacity_ = std::max<uint64_t>(main_capacity - probation_capacity_, 1);
  sketch_mask_ = sketch_.size() / 4 - 1;
  sample_period_ = std::max<uint64_t>(config.capacity_objects * 10, 64);
}

ConcurrentTinyLfu::~ConcurrentTinyLfu() {
  std::lock_guard<std::mutex> lock(list_mu_);
  for (Queue* q : {&window_, &probation_, &protected_}) {
    while (Entry* e = q->PopBack()) {
      delete e;
    }
  }
}

void ConcurrentTinyLfu::SketchIncrement(uint64_t id) {
  for (int row = 0; row < 4; ++row) {
    auto& counter = sketch_[static_cast<uint64_t>(row) * (sketch_mask_ + 1) +
                            (Mix64(id ^ kRowSeeds[row]) & sketch_mask_)];
    uint32_t v = counter.load(std::memory_order_relaxed);
    if (v < 0xFFFFFFFFu) {
      counter.fetch_add(1, std::memory_order_relaxed);
    }
  }
  const uint64_t n = accesses_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n % sample_period_ == 0) {
    // Aging: halve all counters. Relaxed halving races with increments but
    // the estimate only needs to be approximate.
    for (auto& counter : sketch_) {
      counter.store(counter.load(std::memory_order_relaxed) / 2, std::memory_order_relaxed);
    }
  }
}

uint32_t ConcurrentTinyLfu::SketchEstimate(uint64_t id) const {
  uint32_t m = 0xFFFFFFFFu;
  for (int row = 0; row < 4; ++row) {
    m = std::min(m, sketch_[static_cast<uint64_t>(row) * (sketch_mask_ + 1) +
                            (Mix64(id ^ kRowSeeds[row]) & sketch_mask_)]
                        .load(std::memory_order_relaxed));
  }
  return m;
}

bool ConcurrentTinyLfu::Get(uint64_t id) {
  SketchIncrement(id);

  // Hits need the list lock for SLRU promotions — the cost the paper calls
  // out. Resolve presence and promote atomically under the shard+list locks.
  const bool hit = index_.WithValue(id, [&](Entry** slot) {
    if (slot == nullptr) {
      return false;
    }
    Entry* e = *slot;
    (void)ReadValue(e->value.get());
    std::lock_guard<std::mutex> lock(list_mu_);
    if (!e->hook.linked()) {
      return true;  // being evicted concurrently; still a hit for the caller
    }
    switch (e->where) {
      case Where::kWindow:
        window_.MoveToFront(e);
        break;
      case Where::kProbation:
        probation_.Remove(e);
        --probation_count_;
        e->where = Where::kProtected;
        protected_.PushFront(e);
        ++protected_count_;
        while (protected_count_ > protected_capacity_) {
          Entry* tail = protected_.PopBack();
          if (tail == nullptr) {
            break;
          }
          --protected_count_;
          tail->where = Where::kProbation;
          probation_.PushFront(tail);
          ++probation_count_;
        }
        break;
      case Where::kProtected:
        protected_.MoveToFront(e);
        break;
    }
    return true;
  });
  if (hit) {
    return true;
  }

  Entry* e = new Entry;
  e->id = id;
  e->value = MakeValue(id, config_.value_size);
  if (!index_.InsertIfAbsent(id, e)) {
    delete e;
    return false;
  }

  std::vector<Entry*> victims;
  {
    std::lock_guard<std::mutex> lock(list_mu_);
    e->where = Where::kWindow;
    window_.PushFront(e);
    ++window_count_;
    resident_.fetch_add(1, std::memory_order_relaxed);
    HandleOverflow(victims);
  }
  for (Entry* victim : victims) {
    index_.EraseIf(victim->id, [victim](Entry* v) { return v == victim; });
    delete victim;
  }
  return false;
}

void ConcurrentTinyLfu::HandleOverflow(std::vector<Entry*>& victims) {
  while (window_count_ > window_capacity_) {
    Entry* candidate = window_.Back();
    if (candidate == nullptr) {
      return;
    }
    window_.Remove(candidate);
    --window_count_;
    if (probation_count_ + protected_count_ <
        probation_capacity_ + protected_capacity_) {
      candidate->where = Where::kProbation;
      probation_.PushFront(candidate);
      ++probation_count_;
      continue;
    }
    Entry* victim = probation_.Back();
    if (victim == nullptr) {
      victim = protected_.Back();
    }
    if (victim == nullptr) {
      resident_.fetch_sub(1, std::memory_order_relaxed);
      victims.push_back(candidate);
      continue;
    }
    if (SketchEstimate(candidate->id) > SketchEstimate(victim->id)) {
      if (victim->where == Where::kProbation) {
        probation_.Remove(victim);
        --probation_count_;
      } else {
        protected_.Remove(victim);
        --protected_count_;
      }
      resident_.fetch_sub(1, std::memory_order_relaxed);
      victims.push_back(victim);
      candidate->where = Where::kProbation;
      probation_.PushFront(candidate);
      ++probation_count_;
    } else {
      resident_.fetch_sub(1, std::memory_order_relaxed);
      victims.push_back(candidate);
    }
  }
}

uint64_t ConcurrentTinyLfu::ApproxSize() const {
  return resident_.load(std::memory_order_relaxed);
}

}  // namespace s3fifo
