// Concurrent W-TinyLFU, modelled on the Cachelib implementation the paper
// benchmarks against (§5.3): every access updates the count-min sketch, and
// hits must take the list lock to run the window/probation/protected
// promotions — which is why its throughput trails even optimized LRU.
#ifndef SRC_CONCURRENT_CONCURRENT_TINYLFU_H_
#define SRC_CONCURRENT_CONCURRENT_TINYLFU_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "src/concurrent/concurrent_cache.h"
#include "src/concurrent/striped_hash_map.h"
#include "src/util/intrusive_list.h"

namespace s3fifo {

class ConcurrentTinyLfu : public ConcurrentCache {
 public:
  explicit ConcurrentTinyLfu(const ConcurrentCacheConfig& config, double window_ratio = 0.01);
  ~ConcurrentTinyLfu() override;

  bool Get(uint64_t id) override;
  std::string Name() const override { return "tinylfu"; }
  uint64_t ApproxSize() const override;

 private:
  enum class Where : uint8_t { kWindow, kProbation, kProtected };

  struct Entry {
    uint64_t id = 0;
    Where where = Where::kWindow;  // guarded by list_mu_
    std::unique_ptr<char[]> value;
    ListHook hook;
  };
  using Queue = IntrusiveList<Entry, &Entry::hook>;

  void SketchIncrement(uint64_t id);
  uint32_t SketchEstimate(uint64_t id) const;
  void HandleOverflow(std::vector<Entry*>& victims);  // under list_mu_

  const ConcurrentCacheConfig config_;
  uint64_t window_capacity_;
  uint64_t probation_capacity_;
  uint64_t protected_capacity_;

  // Plain atomic-counter count-min sketch (4 rows).
  std::vector<std::atomic<uint32_t>> sketch_;
  uint64_t sketch_mask_;
  std::atomic<uint64_t> accesses_{0};
  uint64_t sample_period_;

  StripedHashMap<Entry*> index_;
  std::mutex list_mu_;
  Queue window_, probation_, protected_;
  uint64_t window_count_ = 0, probation_count_ = 0, protected_count_ = 0;
  std::atomic<uint64_t> resident_{0};
};

}  // namespace s3fifo

#endif  // SRC_CONCURRENT_CONCURRENT_TINYLFU_H_
