// Concurrent W-TinyLFU, modelled on the Cachelib implementation the paper
// benchmarks against (§5.3), now hash-partitioned into sub-caches: lookups
// are a wait-free probe of the shard's lock-free index, but hits must still
// take the shard's list lock to run the window/probation/protected
// promotions — the structural cost the paper calls out, now per-shard
// instead of global. The count-min sketch stays shared (relaxed atomic
// counters); the aging trigger is sampled so no per-access shared counter
// remains on the hot path.
#ifndef SRC_CONCURRENT_CONCURRENT_TINYLFU_H_
#define SRC_CONCURRENT_CONCURRENT_TINYLFU_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "src/concurrent/concurrent_cache.h"
#include "src/concurrent/lockfree_hash_map.h"
#include "src/concurrent/sharded_cache.h"
#include "src/concurrent/striped_counter.h"
#include "src/util/intrusive_list.h"

namespace s3fifo {

class ConcurrentTinyLfu : public ConcurrentCache {
 public:
  explicit ConcurrentTinyLfu(const ConcurrentCacheConfig& config, double window_ratio = 0.01);
  ~ConcurrentTinyLfu() override;

  bool Get(uint64_t id) override;
  std::string Name() const override { return "tinylfu"; }
  uint64_t ApproxSize() const override;
  ConcurrentCacheStats Stats() const override;

 private:
  enum class Where : uint8_t { kWindow, kProbation, kProtected };

  struct Entry {
    uint64_t id = 0;
    Where where = Where::kWindow;  // guarded by the shard's gate lock
    std::unique_ptr<char[]> value;
    ListHook hook;
  };
  using Queue = IntrusiveList<Entry, &Entry::hook>;

  struct alignas(64) Shard {
    Shard(uint64_t window_capacity, uint64_t probation_capacity, uint64_t protected_capacity,
          uint64_t index_capacity, unsigned index_shards, uint64_t pending_capacity)
        : window_capacity(window_capacity),
          probation_capacity(probation_capacity),
          protected_capacity(protected_capacity),
          index(index_capacity, index_shards),
          gate(pending_capacity) {}

    const uint64_t window_capacity;
    const uint64_t probation_capacity;
    const uint64_t protected_capacity;
    LockFreeHashMap<Entry*> index;
    EvictionGate<Entry*> gate;
    // Everything below is guarded by the gate lock.
    Queue window, probation, protected_q;
    uint64_t window_count = 0, probation_count = 0, protected_count = 0;
    std::atomic<uint64_t> resident{0};
  };

  Shard& ShardFor(uint64_t id) { return *shards_[CacheShardFor(id, num_shards_)]; }

  void SketchIncrement(uint64_t id);
  uint32_t SketchEstimate(uint64_t id) const;
  void PromoteLocked(Shard& s, Entry* e);
  void DrainLocked(Shard& s, std::vector<Entry*>& victims);
  void HandleOverflowLocked(Shard& s, std::vector<Entry*>& victims);
  static void RetireEntry(Entry* e);

  const ConcurrentCacheConfig config_;
  unsigned num_shards_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Plain atomic-counter count-min sketch (4 rows), shared by all shards so
  // frequency estimates see the full access stream.
  std::vector<std::atomic<uint32_t>> sketch_;
  uint64_t sketch_mask_;
  StripedCounter accesses_;
  std::atomic<uint64_t> next_age_at_;
  uint64_t sample_period_;

  StripedCounter hits_;
  StripedCounter misses_;
};

}  // namespace s3fifo

#endif  // SRC_CONCURRENT_CONCURRENT_TINYLFU_H_
