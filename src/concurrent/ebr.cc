#include "src/concurrent/ebr.h"

#include <cstdio>
#include <cstdlib>

namespace s3fifo {

struct EbrDomain::ThreadRec {
  int slot = -1;
  int depth = 0;
  unsigned retires_since_reclaim = 0;
  std::vector<Retired> retired;
};

// Thread-exit hook: returns the slot to the pool and hands any not-yet-freed
// garbage to the orphan list.
struct ThreadRecHolder {
  EbrDomain::ThreadRec rec;
  ~ThreadRecHolder() {
    EbrDomain& d = EbrDomain::Instance();
    if (!rec.retired.empty()) {
      std::lock_guard<std::mutex> lock(d.orphan_mu_);
      d.orphans_.insert(d.orphans_.end(), rec.retired.begin(), rec.retired.end());
      rec.retired.clear();
    }
    d.ReleaseSlot(rec);
  }
};

EbrDomain& EbrDomain::Instance() {
  static EbrDomain* domain = new EbrDomain();  // leaked: see header
  return *domain;
}

EbrDomain::ThreadRec& EbrDomain::LocalRec() {
  thread_local ThreadRecHolder holder;
  return holder.rec;
}

int EbrDomain::AcquireSlot() {
  for (int i = 0; i < kMaxThreads; ++i) {
    bool expected = false;
    if (!slots_[i].in_use.load(std::memory_order_relaxed) &&
        slots_[i].in_use.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
      slots_[i].epoch.store(kIdle, std::memory_order_seq_cst);
      return i;
    }
  }
  std::fprintf(stderr, "EbrDomain: more than %d concurrent threads\n", kMaxThreads);
  std::abort();
}

void EbrDomain::ReleaseSlot(ThreadRec& rec) {
  if (rec.slot < 0) {
    return;
  }
  slots_[rec.slot].epoch.store(kIdle, std::memory_order_seq_cst);
  slots_[rec.slot].in_use.store(false, std::memory_order_release);
  rec.slot = -1;
}

void EbrDomain::Pin(ThreadRec& rec) {
  if (rec.depth++ > 0) {
    return;
  }
  if (rec.slot < 0) {
    rec.slot = AcquireSlot();
  }
  // seq_cst RMW: the pin is globally ordered before this thread's subsequent
  // index reads, and extends the slot's release sequence across slot reuse.
  slots_[rec.slot].epoch.exchange(global_epoch_.load(std::memory_order_seq_cst),
                                  std::memory_order_seq_cst);
}

void EbrDomain::Unpin(ThreadRec& rec) {
  if (--rec.depth > 0) {
    return;
  }
  slots_[rec.slot].epoch.store(kIdle, std::memory_order_seq_cst);
}

EbrDomain::Guard::Guard() { Instance().Pin(LocalRec()); }
EbrDomain::Guard::~Guard() { Instance().Unpin(LocalRec()); }

void EbrDomain::Retire(void* p, void (*deleter)(void*)) {
  ThreadRec& rec = LocalRec();
  rec.retired.push_back(Retired{p, deleter, global_epoch_.load(std::memory_order_seq_cst)});
  limbo_count_.fetch_add(1, std::memory_order_relaxed);
  if (++rec.retires_since_reclaim >= kReclaimPeriod) {
    rec.retires_since_reclaim = 0;
    Reclaim(rec);
  }
}

uint64_t EbrDomain::AdvanceAndCollectFloor() {
  uint64_t g = global_epoch_.load(std::memory_order_seq_cst);
  bool can_advance = true;
  for (int i = 0; i < kMaxThreads; ++i) {
    if (!slots_[i].in_use.load(std::memory_order_acquire)) {
      continue;
    }
    const uint64_t e = slots_[i].epoch.load(std::memory_order_seq_cst);
    if (e != kIdle && e != g) {
      can_advance = false;  // a reader is still pinned in the previous epoch
    }
  }
  if (can_advance) {
    if (global_epoch_.compare_exchange_strong(g, g + 1, std::memory_order_seq_cst)) {
      g = g + 1;
    }
  }
  // A node retired at epoch e is unreachable for readers pinned at >= e + 1;
  // the epoch can only have advanced to e + 2 once no reader was left at
  // e + 1 or below, so everything retired before g - 1 is free-able.
  return g - 1;
}

void EbrDomain::FreeEligible(std::vector<Retired>& list, uint64_t safe_before) {
  size_t kept = 0;
  for (size_t i = 0; i < list.size(); ++i) {
    if (list[i].epoch < safe_before) {
      list[i].deleter(list[i].p);
    } else {
      list[kept++] = list[i];
    }
  }
  list.resize(kept);
}

void EbrDomain::Reclaim(ThreadRec& rec) {
  const uint64_t safe_before = AdvanceAndCollectFloor();
  const size_t before = rec.retired.size();
  FreeEligible(rec.retired, safe_before);
  uint64_t freed = before - rec.retired.size();
  // Opportunistically drain garbage from exited threads.
  if (orphan_mu_.try_lock()) {
    const size_t orphans_before = orphans_.size();
    FreeEligible(orphans_, safe_before);
    freed += orphans_before - orphans_.size();
    orphan_mu_.unlock();
  }
  limbo_count_.fetch_sub(freed, std::memory_order_relaxed);
}

void EbrDomain::ReclaimAll(bool force) {
  ThreadRec& rec = LocalRec();
  const uint64_t safe_before = force ? ~0ull : AdvanceAndCollectFloor();
  std::lock_guard<std::mutex> lock(orphan_mu_);
  const size_t before = rec.retired.size() + orphans_.size();
  FreeEligible(rec.retired, safe_before);
  FreeEligible(orphans_, safe_before);
  limbo_count_.fetch_sub(before - rec.retired.size() - orphans_.size(),
                         std::memory_order_relaxed);
}

uint64_t EbrDomain::ApproxLimboSize() const {
  return limbo_count_.load(std::memory_order_relaxed);
}

}  // namespace s3fifo
