// Epoch-based reclamation (EBR) for the lock-free read path: readers pin the
// global epoch around each access to index-published entries; evictors retire
// entries instead of deleting them, and retired memory is freed only once the
// global epoch has advanced twice past the retire epoch — by which point no
// pinned reader can still hold a reference. This is the standard scheme
// (Fraser's EBR; crossbeam-epoch; Cachelib's delayed-destruction readers) that
// lets Get() hits dereference entries without taking any lock.
//
// Design notes:
//   * A fixed pool of cache-line-padded thread slots (kMaxThreads); each
//     thread lazily claims a slot on first use and releases it at thread exit.
//   * Pinning is a single seq_cst exchange on the thread's own slot — no
//     shared cache line is written, so pins scale with cores.
//   * Retired nodes accumulate in a per-thread list (no lock on the retire
//     path); every kReclaimPeriod retires the owning thread tries to advance
//     the epoch and frees its eligible nodes. Threads that exit with garbage
//     hand it to a mutex-protected orphan list drained by later reclaims.
//   * All synchronization is via atomics (no standalone fences), so the
//     scheme is exactly modeled by TSan.
#ifndef SRC_CONCURRENT_EBR_H_
#define SRC_CONCURRENT_EBR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace s3fifo {

class EbrDomain {
 public:
  static constexpr int kMaxThreads = 256;

  // Process-wide domain shared by all concurrent caches. Intentionally leaked
  // (function-local static pointer) so thread-exit hooks never race static
  // destruction; remaining garbage stays reachable for LeakSanitizer.
  static EbrDomain& Instance();

  // RAII pin. Cheap enough for the per-Get hot path; nests.
  class Guard {
   public:
    Guard();
    ~Guard();
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
  };

  // Defers destruction of `p` until no pinned reader can reference it. The
  // caller must have already unpublished `p` (no new reader can find it).
  void Retire(void* p, void (*deleter)(void*));

  // Testing / shutdown aid: drain every retired node whose epoch allows it;
  // with `force`, frees everything (caller asserts no concurrent readers).
  void ReclaimAll(bool force = false);

  uint64_t ApproxLimboSize() const;

 private:
  struct Retired {
    void* p;
    void (*deleter)(void*);
    uint64_t epoch;
  };
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{kIdle};
    std::atomic<bool> in_use{false};
  };
  struct ThreadRec;
  static constexpr uint64_t kIdle = ~0ull;
  static constexpr int kReclaimPeriod = 64;

  EbrDomain() = default;
  friend struct ThreadRecHolder;

  static ThreadRec& LocalRec();
  int AcquireSlot();
  void ReleaseSlot(ThreadRec& rec);
  void Pin(ThreadRec& rec);
  void Unpin(ThreadRec& rec);

  // Returns the epoch below which retired nodes are safe to free.
  uint64_t AdvanceAndCollectFloor();
  void Reclaim(ThreadRec& rec);
  static void FreeEligible(std::vector<Retired>& list, uint64_t safe_before);

  std::atomic<uint64_t> global_epoch_{2};  // start >= lag so floor never wraps
  Slot slots_[kMaxThreads];

  mutable std::mutex orphan_mu_;
  std::vector<Retired> orphans_;
  std::atomic<uint64_t> limbo_count_{0};
};

}  // namespace s3fifo

#endif  // SRC_CONCURRENT_EBR_H_
