// Concurrent open-addressing hash index with lock-free reads — the Get-hit
// path replacement for the mutex-per-read StripedHashMap. Layout follows
// src/util/flat_map.h (power-of-two slot array, linear probing, Mix64
// placement) adapted for concurrency:
//
//   * Readers never lock: a probe is a short walk over a contiguous slot
//     array using acquire loads. Publication order (key, then value with
//     release) makes a (key, value) pair read value-first consistent; a
//     reader can never observe key A paired with B's value.
//   * Writers (insert/erase — the miss/evict path only) serialize on a
//     per-shard mutex. Shards are independent sub-tables, so two misses in
//     different shards never contend.
//   * Erase leaves a tombstone (value = null, slot stays "used") so reader
//     probe chains are never broken mid-walk. Tombstones are purged by
//     rebuilding the shard's table when occupancy crosses 3/4; the old table
//     is retired through EBR so in-flight readers finish safely.
//
// V must be a pointer type. Values returned by Find() may be concurrently
// unpublished and retired: callers must hold an EbrDomain::Guard across
// Find() and every dereference of the result, and must retire (not delete)
// values after EraseIf.
#ifndef SRC_CONCURRENT_LOCKFREE_HASH_MAP_H_
#define SRC_CONCURRENT_LOCKFREE_HASH_MAP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/concurrent/ebr.h"
#include "src/util/hash.h"

namespace s3fifo {

template <typename V>
class LockFreeHashMap {
  static_assert(std::is_pointer_v<V>, "LockFreeHashMap stores pointers");

 public:
  // `expected_entries` sizes each shard's table for ~1/2 load at the expected
  // population (rebuilds handle transient growth); `num_shards` bounds writer
  // concurrency and is rounded up to a power of two.
  explicit LockFreeHashMap(uint64_t expected_entries, unsigned num_shards = 8) {
    unsigned shards = 1;
    while (shards < num_shards) {
      shards <<= 1;
    }
    shard_mask_ = shards - 1;
    const uint64_t per_shard = expected_entries / shards + 1;
    uint64_t slots = kMinSlots;
    while (per_shard * 2 > slots) {
      slots <<= 1;
    }
    shards_.reserve(shards);
    for (unsigned i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>(slots));
    }
  }

  ~LockFreeHashMap() {
    for (auto& s : shards_) {
      delete s->table.load(std::memory_order_relaxed);
    }
  }

  LockFreeHashMap(const LockFreeHashMap&) = delete;
  LockFreeHashMap& operator=(const LockFreeHashMap&) = delete;

  // Lock-free. Returns the published value or nullptr. Caller must be pinned
  // (EbrDomain::Guard) and must stay pinned while using the result.
  V Find(uint64_t key) const {
    const Shard& s = ShardFor(key);
    const Table* t = s.table.load(std::memory_order_acquire);
    uint64_t pos = Mix64(key) & t->mask;
    for (uint64_t probes = 0; probes <= t->mask; ++probes) {
      const Slot& slot = t->slots[pos];
      if (slot.state.load(std::memory_order_acquire) == kNever) {
        return nullptr;
      }
      // Value before key: the writer publishes value last (release), so a
      // non-null value pins the matching key in place (acquire pairs them);
      // a mismatched key simply means the slot was reused — probe on.
      const V v = slot.value.load(std::memory_order_acquire);
      if (v != nullptr && slot.key.load(std::memory_order_relaxed) == key) {
        return v;
      }
      pos = (pos + 1) & t->mask;
    }
    return nullptr;
  }

  // Pulls the home slot of `key`'s probe chain toward the CPU cache — the
  // batched access paths call this a fixed distance ahead of the probe so
  // table misses overlap across a block. Pure hint: no observable effect.
  void Prefetch(uint64_t key) const {
    const Shard& s = ShardFor(key);
    const Table* t = s.table.load(std::memory_order_acquire);
    __builtin_prefetch(&t->slots[Mix64(key) & t->mask], 0, 1);
  }

  // Inserts only if no live entry for `key` exists. Returns true if this call
  // inserted. Takes the shard writer lock.
  bool InsertIfAbsent(uint64_t key, V value) {
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    Table* t = s.table.load(std::memory_order_relaxed);
    if ((t->used + 1) * 4 > (t->mask + 1) * 3) {
      t = Rebuild(s, t);
    }
    uint64_t pos = Mix64(key) & t->mask;
    Slot* reuse = nullptr;
    while (true) {
      Slot& slot = t->slots[pos];
      if (slot.state.load(std::memory_order_relaxed) == kNever) {
        Slot* target = reuse != nullptr ? reuse : &slot;
        if (target == &slot) {
          ++t->used;
        }
        target->key.store(key, std::memory_order_relaxed);
        target->state.store(kUsed, std::memory_order_relaxed);
        target->value.store(value, std::memory_order_release);  // publish
        ++s.size;
        return true;
      }
      if (slot.value.load(std::memory_order_relaxed) != nullptr) {
        if (slot.key.load(std::memory_order_relaxed) == key) {
          return false;  // live entry already present
        }
      } else if (reuse == nullptr) {
        reuse = &slot;  // first tombstone on the probe path
      }
      pos = (pos + 1) & t->mask;
    }
  }

  // Unpublishes `key` only if pred(value) holds, so an evictor removes
  // exactly the entry it owns. Returns true if erased; the caller must then
  // retire the value via EBR.
  template <typename Pred>
  bool EraseIf(uint64_t key, Pred&& pred) {
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    Table* t = s.table.load(std::memory_order_relaxed);
    uint64_t pos = Mix64(key) & t->mask;
    for (uint64_t probes = 0; probes <= t->mask; ++probes) {
      Slot& slot = t->slots[pos];
      if (slot.state.load(std::memory_order_relaxed) == kNever) {
        return false;
      }
      const V v = slot.value.load(std::memory_order_relaxed);
      if (v != nullptr && slot.key.load(std::memory_order_relaxed) == key) {
        if (!pred(v)) {
          return false;
        }
        slot.value.store(nullptr, std::memory_order_release);  // tombstone
        --s.size;
        return true;
      }
      pos = (pos + 1) & t->mask;
    }
    return false;
  }

  bool Erase(uint64_t key) {
    return EraseIf(key, [](V) { return true; });
  }

  // Exact count of live entries (takes every shard lock; not for hot paths).
  size_t Size() const {
    size_t total = 0;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mu);
      total += s->size;
    }
    return total;
  }

 private:
  static constexpr uint64_t kMinSlots = 16;
  static constexpr uint8_t kNever = 0;  // slot never claimed: probe stop
  static constexpr uint8_t kUsed = 1;   // claimed; tombstone iff value null

  struct Slot {
    std::atomic<uint64_t> key{0};
    std::atomic<V> value{nullptr};
    std::atomic<uint8_t> state{kNever};
  };

  struct Table {
    explicit Table(uint64_t n) : mask(n - 1), slots(n) {}
    const uint64_t mask;
    uint64_t used = 0;  // claimed slots (live + tombstones); writer-lock only
    std::vector<Slot> slots;
  };

  struct alignas(64) Shard {
    explicit Shard(uint64_t slots) : table(new Table(slots)) {}
    mutable std::mutex mu;
    std::atomic<Table*> table;
    uint64_t size = 0;  // live entries; guarded by mu
  };

  // Shard selection uses the high hash bits; in-table probing uses the low
  // bits, so the two are independent.
  Shard& ShardFor(uint64_t key) { return *shards_[(Mix64(key) >> 48) & shard_mask_]; }
  const Shard& ShardFor(uint64_t key) const {
    return *shards_[(Mix64(key) >> 48) & shard_mask_];
  }

  // Copies live entries into a fresh table (purging tombstones; doubling if
  // legitimately full) and publishes it; the old table is EBR-retired so
  // concurrent readers mid-probe stay safe. Called under the shard lock.
  Table* Rebuild(Shard& s, Table* old) {
    const uint64_t old_slots = old->mask + 1;
    const uint64_t new_slots = (s.size + 1) * 4 > old_slots * 2 ? old_slots * 2 : old_slots;
    Table* t = new Table(new_slots);
    for (uint64_t i = 0; i < old_slots; ++i) {
      const Slot& from = old->slots[i];
      if (from.state.load(std::memory_order_relaxed) == kNever) {
        continue;
      }
      const V v = from.value.load(std::memory_order_relaxed);
      if (v == nullptr) {
        continue;  // tombstone: dropped
      }
      const uint64_t key = from.key.load(std::memory_order_relaxed);
      uint64_t pos = Mix64(key) & t->mask;
      while (t->slots[pos].state.load(std::memory_order_relaxed) != kNever) {
        pos = (pos + 1) & t->mask;
      }
      Slot& to = t->slots[pos];
      to.key.store(key, std::memory_order_relaxed);
      to.state.store(kUsed, std::memory_order_relaxed);
      to.value.store(v, std::memory_order_relaxed);
      ++t->used;
    }
    s.table.store(t, std::memory_order_release);
    EbrDomain::Instance().Retire(old, [](void* p) { delete static_cast<Table*>(p); });
    return t;
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  uint64_t shard_mask_ = 0;
};

}  // namespace s3fifo

#endif  // SRC_CONCURRENT_LOCKFREE_HASH_MAP_H_
