// Bounded multi-producer multi-consumer FIFO ring (Vyukov's algorithm):
// per-cell sequence numbers, two atomic cursors, no locks. This is the
// ring-buffer building block §4.2 describes for fully lock-free S3-FIFO
// queues ("eviction requires bumping the tail pointer in the ring buffer").
#ifndef SRC_CONCURRENT_MPMC_QUEUE_H_
#define SRC_CONCURRENT_MPMC_QUEUE_H_

#include <atomic>
#include <cstdint>
#include <memory>

namespace s3fifo {

template <typename T>
class MpmcQueue {
 public:
  // Capacity is rounded up to a power of two.
  explicit MpmcQueue(uint64_t capacity) {
    uint64_t cap = 2;
    while (cap < capacity) {
      cap <<= 1;
    }
    cells_ = std::make_unique<Cell[]>(cap);
    for (uint64_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
    mask_ = cap - 1;
  }

  // Non-blocking; returns false when full.
  bool TryPush(const T& value) {
    uint64_t pos = head_.load(std::memory_order_relaxed);
    while (true) {
      Cell& cell = cells_[pos & mask_];
      const uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const int64_t diff = static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          cell.value = value;
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  // Non-blocking; returns false when empty.
  bool TryPop(T* out) {
    uint64_t pos = tail_.load(std::memory_order_relaxed);
    while (true) {
      Cell& cell = cells_[pos & mask_];
      const uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const int64_t diff = static_cast<int64_t>(seq) - static_cast<int64_t>(pos + 1);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          *out = cell.value;
          cell.seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  uint64_t ApproxSize() const {
    const uint64_t h = head_.load(std::memory_order_relaxed);
    const uint64_t t = tail_.load(std::memory_order_relaxed);
    return h >= t ? h - t : 0;
  }

  uint64_t capacity() const { return mask_ + 1; }

 private:
  struct Cell {
    std::atomic<uint64_t> seq{0};
    T value{};
  };

  alignas(64) std::atomic<uint64_t> head_{0};
  alignas(64) std::atomic<uint64_t> tail_{0};
  std::unique_ptr<Cell[]> cells_;
  uint64_t mask_ = 0;
};

}  // namespace s3fifo

#endif  // SRC_CONCURRENT_MPMC_QUEUE_H_
