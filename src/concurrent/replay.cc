#include "src/concurrent/replay.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "src/util/rng.h"
#include "src/util/zipf.h"

namespace s3fifo {

ReplayResult ReplayClosedLoop(ConcurrentCache& cache, const ReplayOptions& options) {
  const unsigned threads = std::max(1u, options.num_threads);
  std::atomic<uint64_t> total_hits{0};
  std::atomic<bool> start{false};
  std::vector<std::thread> workers;
  workers.reserve(threads);

  const ZipfDistribution zipf(options.num_objects, options.zipf_alpha);

  ReplayResult result;
  std::mutex merge_mu;

  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(options.seed * 0x9e3779b97f4a7c15ULL + t);
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      uint64_t hits = 0;
      if (options.batch_size == 0) {
        // Scalar reference loop: one virtual call per request.
        for (uint64_t i = 0; i < options.requests_per_thread; ++i) {
          if (cache.Get(zipf.Sample(rng))) {
            ++hits;
          }
        }
        total_hits.fetch_add(hits, std::memory_order_relaxed);
        return;
      }
      const uint32_t batch = options.batch_size;
      std::vector<uint64_t> ids(batch);
      std::vector<uint8_t> hit_bits(batch);
      LatencyHistogram local;
      uint64_t remaining = options.requests_per_thread;
      while (remaining > 0) {
        const uint32_t n = static_cast<uint32_t>(
            std::min<uint64_t>(batch, remaining));
        for (uint32_t i = 0; i < n; ++i) {
          ids[i] = zipf.Sample(rng);
        }
        const auto b0 = std::chrono::steady_clock::now();
        cache.GetBatch(ids.data(), n, hit_bits.data());
        const auto b1 = std::chrono::steady_clock::now();
        local.Add(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(b1 - b0).count() / n));
        for (uint32_t i = 0; i < n; ++i) {
          hits += hit_bits[i];
        }
        remaining -= n;
      }
      total_hits.fetch_add(hits, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(merge_mu);
      result.latency.Merge(local);
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  start.store(true, std::memory_order_release);
  for (auto& w : workers) {
    w.join();
  }
  const auto t1 = std::chrono::steady_clock::now();

  result.total_requests = static_cast<uint64_t>(threads) * options.requests_per_thread;
  result.elapsed_seconds = std::chrono::duration<double>(t1 - t0).count();
  result.throughput_mops = result.elapsed_seconds > 0
                               ? static_cast<double>(result.total_requests) / 1e6 /
                                     result.elapsed_seconds
                               : 0.0;
  result.hit_ratio = result.total_requests > 0
                         ? static_cast<double>(total_hits.load()) /
                               static_cast<double>(result.total_requests)
                         : 0.0;
  return result;
}

}  // namespace s3fifo
