#include "src/concurrent/replay.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/util/rng.h"
#include "src/util/zipf.h"

namespace s3fifo {

ReplayResult ReplayClosedLoop(ConcurrentCache& cache, const ReplayOptions& options) {
  const unsigned threads = std::max(1u, options.num_threads);
  std::atomic<uint64_t> total_hits{0};
  std::atomic<bool> start{false};
  std::vector<std::thread> workers;
  workers.reserve(threads);

  const ZipfDistribution zipf(options.num_objects, options.zipf_alpha);

  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(options.seed * 0x9e3779b97f4a7c15ULL + t);
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      uint64_t hits = 0;
      for (uint64_t i = 0; i < options.requests_per_thread; ++i) {
        const uint64_t id = zipf.Sample(rng);
        if (cache.Get(id)) {
          ++hits;
        }
      }
      total_hits.fetch_add(hits, std::memory_order_relaxed);
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  start.store(true, std::memory_order_release);
  for (auto& w : workers) {
    w.join();
  }
  const auto t1 = std::chrono::steady_clock::now();

  ReplayResult result;
  result.total_requests = static_cast<uint64_t>(threads) * options.requests_per_thread;
  result.elapsed_seconds = std::chrono::duration<double>(t1 - t0).count();
  result.throughput_mops = result.elapsed_seconds > 0
                               ? static_cast<double>(result.total_requests) / 1e6 /
                                     result.elapsed_seconds
                               : 0.0;
  result.hit_ratio = result.total_requests > 0
                         ? static_cast<double>(total_hits.load()) /
                               static_cast<double>(result.total_requests)
                         : 0.0;
  return result;
}

}  // namespace s3fifo
