// Closed-loop trace replay against a ConcurrentCache — the prototype
// benchmark methodology of §5.3: each thread issues back-to-back batches of
// requests drawn from a Zipf distribution; misses are filled on demand with
// pre-generated data; throughput is aggregated over all threads.
//
// Requests are routed through ConcurrentCache::GetBatch in blocks of
// `batch_size` — the same software-pipelined path the network front end
// (src/server/) drives per connection — and each batch's wall time is
// recorded into a per-thread LatencyHistogram (as per-request service time:
// batch nanoseconds / batch size), merged into ReplayResult::latency.
#ifndef SRC_CONCURRENT_REPLAY_H_
#define SRC_CONCURRENT_REPLAY_H_

#include <cstdint>

#include "src/concurrent/concurrent_cache.h"
#include "src/sim/metrics.h"

namespace s3fifo {

struct ReplayOptions {
  unsigned num_threads = 1;
  uint64_t requests_per_thread = 1000000;
  uint64_t num_objects = 1 << 20;  // Zipf universe
  double zipf_alpha = 1.0;
  uint64_t seed = 7;
  // Requests per GetBatch call. 0 = the scalar reference loop (one Get per
  // request, no latency recording). Results are bit-identical either way.
  uint32_t batch_size = 64;
};

struct ReplayResult {
  double throughput_mops = 0.0;  // million requests / second, all threads
  double hit_ratio = 0.0;
  double elapsed_seconds = 0.0;
  uint64_t total_requests = 0;
  // Per-request service time in nanoseconds, sampled at batch granularity
  // and merged across threads. Empty when batch_size == 0.
  LatencyHistogram latency;
};

ReplayResult ReplayClosedLoop(ConcurrentCache& cache, const ReplayOptions& options);

}  // namespace s3fifo

#endif  // SRC_CONCURRENT_REPLAY_H_
