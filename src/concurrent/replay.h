// Closed-loop trace replay against a ConcurrentCache — the prototype
// benchmark methodology of §5.3: each thread issues back-to-back requests
// drawn from a Zipf distribution; misses are filled on demand with
// pre-generated data; throughput is aggregated over all threads.
#ifndef SRC_CONCURRENT_REPLAY_H_
#define SRC_CONCURRENT_REPLAY_H_

#include <cstdint>

#include "src/concurrent/concurrent_cache.h"

namespace s3fifo {

struct ReplayOptions {
  unsigned num_threads = 1;
  uint64_t requests_per_thread = 1000000;
  uint64_t num_objects = 1 << 20;  // Zipf universe
  double zipf_alpha = 1.0;
  uint64_t seed = 7;
};

struct ReplayResult {
  double throughput_mops = 0.0;  // million requests / second, all threads
  double hit_ratio = 0.0;
  double elapsed_seconds = 0.0;
  uint64_t total_requests = 0;
};

ReplayResult ReplayClosedLoop(ConcurrentCache& cache, const ReplayOptions& options);

}  // namespace s3fifo

#endif  // SRC_CONCURRENT_REPLAY_H_
