// Building blocks for the sharded concurrent prototypes: every cache is
// hash-partitioned into independent sub-caches (each with its own index,
// queues, ghost state and eviction lock), and each sub-cache's miss-path
// mutations go through a try-lock-and-delegate EvictionGate so no thread
// ever blocks on another shard-mate's eviction.
#ifndef SRC_CONCURRENT_SHARDED_CACHE_H_
#define SRC_CONCURRENT_SHARDED_CACHE_H_

#include <cstdint>
#include <mutex>

#include "src/concurrent/mpmc_queue.h"
#include "src/util/hash.h"

namespace s3fifo {

// How many sub-caches to create: the requested count, clamped so each shard
// keeps a meaningful population (tiny test caches degenerate to one shard,
// which preserves the seed's exact single-queue semantics). Power of two.
inline unsigned PickCacheShards(unsigned requested, uint64_t capacity_objects) {
  constexpr uint64_t kMinObjectsPerShard = 32;
  uint64_t limit = capacity_objects / kMinObjectsPerShard;
  unsigned shards = 1;
  while (shards * 2 <= requested && static_cast<uint64_t>(shards) * 2 <= limit) {
    shards <<= 1;
  }
  return shards;
}

// Sub-cache id for an object: high hash bits, independent from both the index
// probe position (low bits) and the index's internal shard pick (bits 48+).
inline unsigned CacheShardFor(uint64_t id, unsigned num_shards) {
  return static_cast<unsigned>((Mix64(id) >> 32) & (num_shards - 1));
}

// Try-lock-and-delegate work gate (one per sub-cache). A missing thread
// enqueues its link/evict work and only processes it if the shard's eviction
// lock is free; a thread that loses the try_lock race returns immediately —
// the current lock holder re-checks the queue after unlocking, so queued work
// is always drained by *somebody* without anyone blocking. Misses therefore
// batch naturally: one lock acquisition links and evicts for every request
// that arrived while the previous holder was inside.
template <typename Work>
class EvictionGate {
 public:
  explicit EvictionGate(uint64_t pending_capacity) : pending_(pending_capacity) {}

  // Enqueues `w`; `drain()` is invoked under the gate lock and must pop and
  // process everything in pending(). Never blocks unless the ring is full
  // (pathological backlog), in which case it helps by draining synchronously.
  template <typename DrainFn>
  void Submit(const Work& w, DrainFn&& drain) {
    while (!pending_.TryPush(w)) {
      std::lock_guard<std::mutex> lock(mu_);
      drain();
    }
    while (mu_.try_lock()) {
      drain();
      mu_.unlock();
      if (pending_.ApproxSize() == 0) {
        return;
      }
    }
    // try_lock failed: the current holder's post-unlock re-check owns our work.
  }

  // Runs fn under the gate lock (destructors, maintenance).
  template <typename Fn>
  void WithLock(Fn&& fn) {
    std::lock_guard<std::mutex> lock(mu_);
    fn();
  }

  // Non-blocking promotion attempt (optimized-LRU style): runs fn only if the
  // lock is immediately available. Returns whether fn ran.
  template <typename Fn>
  bool TryWithLock(Fn&& fn) {
    if (!mu_.try_lock()) {
      return false;
    }
    fn();
    mu_.unlock();
    return true;
  }

  MpmcQueue<Work>& pending() { return pending_; }

 private:
  std::mutex mu_;
  MpmcQueue<Work> pending_;
};

}  // namespace s3fifo

#endif  // SRC_CONCURRENT_SHARDED_CACHE_H_
