// Per-thread striped counter: increments go to a cache-line-padded stripe
// picked by thread identity, reads sum all stripes. Replaces shared
// fetch-add counters (hit/miss stats, resident counts) whose cache line
// would otherwise bounce between every core on every request.
#ifndef SRC_CONCURRENT_STRIPED_COUNTER_H_
#define SRC_CONCURRENT_STRIPED_COUNTER_H_

#include <atomic>
#include <cstdint>
#include <thread>

namespace s3fifo {

class StripedCounter {
 public:
  static constexpr unsigned kStripes = 64;

  void Add(int64_t delta) {
    cells_[ThreadStripe()].v.fetch_add(delta, std::memory_order_relaxed);
  }

  int64_t Sum() const {
    int64_t total = 0;
    for (const Cell& c : cells_) {
      total += c.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<int64_t> v{0};
  };

  // Stable per-thread stripe; distinct live threads land on distinct stripes
  // with high probability (collisions only cost contention, not correctness).
  static unsigned ThreadStripe() {
    static std::atomic<unsigned> next{0};
    thread_local const unsigned stripe =
        next.fetch_add(1, std::memory_order_relaxed) & (kStripes - 1);
    return stripe;
  }

  Cell cells_[kStripes];
};

}  // namespace s3fifo

#endif  // SRC_CONCURRENT_STRIPED_COUNTER_H_
