// Lock-striped hash map: N independently locked shards, the standard
// concurrent-cache index structure (Cachelib, memcached). Values must be
// cheap to copy or be pointers.
#ifndef SRC_CONCURRENT_STRIPED_HASH_MAP_H_
#define SRC_CONCURRENT_STRIPED_HASH_MAP_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/util/hash.h"

namespace s3fifo {

template <typename V>
class StripedHashMap {
 public:
  explicit StripedHashMap(unsigned num_shards = 64, uint64_t reserve_per_shard = 0) {
    unsigned shards = 1;
    while (shards < num_shards) {
      shards <<= 1;
    }
    shards_.reserve(shards);
    for (unsigned i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
      if (reserve_per_shard > 0) {
        shards_.back()->map.reserve(reserve_per_shard);
      }
    }
  }

  // Returns true and copies the value if present.
  bool Find(uint64_t key, V* out) const {
    const Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) {
      return false;
    }
    *out = it->second;
    return true;
  }

  bool Contains(uint64_t key) const {
    const Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    return s.map.count(key) != 0;
  }

  // Inserts or overwrites. Returns true if the key was new.
  bool Insert(uint64_t key, const V& value) {
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    return s.map.insert_or_assign(key, value).second;
  }

  // Inserts only if absent. Returns true if this call inserted.
  bool InsertIfAbsent(uint64_t key, const V& value) {
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    return s.map.emplace(key, value).second;
  }

  bool Erase(uint64_t key) {
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    return s.map.erase(key) != 0;
  }

  // Erases only if pred(value) holds — lets an evictor remove exactly the
  // entry it owns, never a same-key successor inserted concurrently.
  template <typename Pred>
  bool EraseIf(uint64_t key, Pred&& pred) {
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end() || !pred(it->second)) {
      return false;
    }
    s.map.erase(it);
    return true;
  }

  // Runs fn(value*) under the shard lock; value* is nullptr if absent.
  // fn's return value is passed through.
  template <typename Fn>
  auto WithValue(uint64_t key, Fn&& fn) {
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(key);
    return fn(it == s.map.end() ? nullptr : &it->second);
  }

  size_t Size() const {
    size_t total = 0;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mu);
      total += s->map.size();
    }
    return total;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, V> map;
  };

  Shard& ShardFor(uint64_t key) { return *shards_[HashId(key) & (shards_.size() - 1)]; }
  const Shard& ShardFor(uint64_t key) const {
    return *shards_[HashId(key) & (shards_.size() - 1)];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace s3fifo

#endif  // SRC_CONCURRENT_STRIPED_HASH_MAP_H_
