// On-demand-fill payload helpers shared by every concurrent prototype. The
// read side is careful to copy at most `size` bytes: the old per-cache copies
// unconditionally memcpy'd 8 bytes, reading out of bounds whenever
// ConcurrentCacheConfig::value_size < 8.
#ifndef SRC_CONCURRENT_VALUE_PAYLOAD_H_
#define SRC_CONCURRENT_VALUE_PAYLOAD_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>

namespace s3fifo {

inline std::unique_ptr<char[]> MakeValuePayload(uint64_t id, uint32_t size) {
  auto value = std::make_unique<char[]>(size);
  std::memset(value.get(), static_cast<int>(id & 0xFF), size);
  return value;
}

// Touch the payload so the compiler cannot elide the "use" of a hit.
inline uint64_t ReadValuePayload(const char* value, uint32_t size) {
  uint64_t v = 0;
  std::memcpy(&v, value, std::min<size_t>(sizeof(v), size));
  return v;
}

}  // namespace s3fifo

#endif  // SRC_CONCURRENT_VALUE_PAYLOAD_H_
