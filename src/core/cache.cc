#include "src/core/cache.h"

#include <stdexcept>

namespace s3fifo {

Cache::Cache(const CacheConfig& config)
    : capacity_(config.capacity), count_based_(config.count_based) {
  if (capacity_ == 0) {
    throw std::invalid_argument("CacheConfig.capacity must be > 0");
  }
}

bool Cache::Get(const Request& req) {
  ++clock_;
  if (req.op == OpType::kDelete) {
    Remove(req.id);
    return false;
  }
  return Access(req);
}

void Cache::GetBatch(const TraceView& view, uint64_t begin, uint64_t end, uint8_t* hits,
                     uint32_t prefetch_distance) {
  AccessBatch(view, begin, end, hits, prefetch_distance);
}

void Cache::AccessBatch(const TraceView& view, uint64_t begin, uint64_t end, uint8_t* hits,
                        uint32_t prefetch_distance) {
  const Request* aos = view.AsRequests();
  for (uint64_t i = begin; i < end; ++i) {
    if (prefetch_distance != 0 && i + prefetch_distance < end) {
      Prefetch(view.id(i + prefetch_distance));
    }
    const Request req = aos != nullptr ? aos[i] : view.At(i);
    hits[i - begin] = Get(req) ? 1 : 0;
  }
}

}  // namespace s3fifo
