#include "src/core/cache.h"

#include <stdexcept>

namespace s3fifo {

Cache::Cache(const CacheConfig& config)
    : capacity_(config.capacity), count_based_(config.count_based) {
  if (capacity_ == 0) {
    throw std::invalid_argument("CacheConfig.capacity must be > 0");
  }
}

bool Cache::Get(const Request& req) {
  ++clock_;
  if (req.op == OpType::kDelete) {
    Remove(req.id);
    return false;
  }
  return Access(req);
}

}  // namespace s3fifo
