// The eviction-policy interface all algorithms implement, mirroring the
// plugin architecture of libCacheSim (§5.1.2).
//
// A policy processes one request at a time through Get(), or a block of
// requests through GetBatch() — the batched entry point the simulators (and
// any future network front end) drive so the probe→update sequence can be
// software-pipelined per policy. The base class owns capacity accounting (in
// objects for slab-style simulation, or in bytes), the logical clock, and an
// optional eviction listener used by the analysis layer
// (frequency-at-eviction, eviction age, demotion studies).
#ifndef SRC_CORE_CACHE_H_
#define SRC_CORE_CACHE_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/trace/request.h"
#include "src/trace/trace_view.h"

namespace s3fifo {

struct CacheConfig {
  // Capacity in objects (count_based) or bytes (!count_based). Must be > 0.
  uint64_t capacity = 0;
  // Count-based simulation ignores object sizes — the paper's default, since
  // slab allocators evict within a size class (§5.1.2).
  bool count_based = true;
  // Policy-specific parameters, "key=value,key=value".
  std::string params;
  uint64_t seed = 42;
};

// Emitted whenever a policy removes a resident object from the cache
// (not for ghost-queue expiry, and not for moves between internal queues).
struct EvictionEvent {
  uint64_t id = 0;
  uint64_t size = 1;
  // Number of requests served for the object after (and excluding) the
  // insertion request. 0 => one-hit wonder at eviction (§3.1, Fig. 4).
  uint32_t access_count = 0;
  uint64_t insert_time = 0;
  uint64_t last_access_time = 0;
  uint64_t evict_time = 0;
  bool explicit_delete = false;  // removed by a kDelete request
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config);
  virtual ~Cache() = default;

  Cache(const Cache&) = delete;
  Cache& operator=(const Cache&) = delete;

  // Processes one request. Returns true on a cache hit. kDelete requests
  // remove the object and always return false.
  bool Get(const Request& req);

  // Processes requests [begin, end) of `view` in order, writing one byte per
  // request into `hits` (1 = hit, 0 = miss; kDelete requests write 0). The
  // contract is BIT-IDENTICAL results to calling Get() once per request —
  // batching only changes the instruction schedule, never a decision. The
  // default implementation is that scalar loop with the probe slot for
  // request i + prefetch_distance prefetched while request i is handled;
  // the hot policies (fifo/lru/clock/sieve/s3fifo) override AccessBatch to
  // run the same pipeline devirtualized, with the policy's Access inlined
  // into the block loop. `hits` must hold end - begin bytes.
  void GetBatch(const TraceView& view, uint64_t begin, uint64_t end, uint8_t* hits,
                uint32_t prefetch_distance = 16);

  // Best-effort hint that `id` will be requested shortly. The prefetch-
  // batched simulation loops call this a fixed distance ahead of the request
  // being processed; FlatMap-backed policies pull the hash probe slot into
  // CPU cache. Must not change observable state or results.
  virtual void Prefetch(uint64_t id) const { (void)id; }

  // True if the object currently resides in the cache (would be a hit).
  virtual bool Contains(uint64_t id) const = 0;
  // Removes the object if resident (used for kDelete ops).
  virtual void Remove(uint64_t id) = 0;
  virtual std::string Name() const = 0;

  // Policies needing Request::next_access (Belady) override this; the
  // simulator checks it against Trace::annotated().
  virtual bool RequiresNextAccess() const { return false; }

  uint64_t capacity() const { return capacity_; }
  uint64_t occupied() const { return occupied_; }
  // Logical clock: number of requests processed so far.
  uint64_t clock() const { return clock_; }

  using EvictionListener = std::function<void(const EvictionEvent&)>;
  void set_eviction_listener(EvictionListener listener) {
    eviction_listener_ = std::move(listener);
  }

 protected:
  // The policy's access path: lookup, metadata update, insert + evictions on
  // miss. Returns true on hit. kGet and kSet both route here (a kSet miss
  // admits the object, a kSet hit updates it in place).
  virtual bool Access(const Request& req) = 0;

  // The batched access path behind GetBatch. Overrides must replicate Get()
  // request-for-request: tick the clock once per request (TickClock), route
  // kDelete to Remove, and report the same hit bits — see the specialized
  // policies for the canonical shape. The base implementation loops Get().
  virtual void AccessBatch(const TraceView& view, uint64_t begin, uint64_t end, uint8_t* hits,
                           uint32_t prefetch_distance);

  // Advances the logical clock exactly as Get() does — AccessBatch
  // overrides call this once per request before touching any state.
  uint64_t TickClock() { return ++clock_; }

  // Shared body for specialized AccessBatch overrides: the same per-request
  // pipeline as the default, but with Derived's Prefetch/Remove/Access
  // statically bound (the qualified calls devirtualize, so Access inlines
  // into the block loop) and only the three request fields the policies
  // consume materialized from the view — no per-request virtual dispatch,
  // no six-field gather on mmap backings. A Derived whose subclass
  // overrides Access/Remove/Prefetch must give that subclass its own
  // AccessBatch (the qualified calls bypass further overrides; virtual
  // hooks *inside* Access still dispatch normally).
  template <typename Derived>
  void BatchLoop(const TraceView& view, uint64_t begin, uint64_t end, uint8_t* hits,
                 uint32_t prefetch_distance) {
    Derived* self = static_cast<Derived*>(this);
    for (uint64_t i = begin; i < end; ++i) {
      if (prefetch_distance != 0 && i + prefetch_distance < end) {
        self->Derived::Prefetch(view.id(i + prefetch_distance));
      }
      TickClock();
      Request req;
      req.id = view.id(i);
      req.size = view.object_size(i);
      req.op = view.op(i);
      if (req.op == OpType::kDelete) {
        self->Derived::Remove(req.id);
        hits[i - begin] = 0;
        continue;
      }
      hits[i - begin] = self->Derived::Access(req) ? 1 : 0;
    }
  }

  uint64_t SizeOf(const Request& req) const { return count_based_ ? 1 : req.size; }
  bool count_based() const { return count_based_; }

  void AddOccupied(uint64_t amount) { occupied_ += amount; }
  void SubOccupied(uint64_t amount) { occupied_ -= amount; }

  void NotifyEviction(const EvictionEvent& event) {
    if (eviction_listener_) {
      eviction_listener_(event);
    }
  }

 private:
  uint64_t capacity_;
  bool count_based_;
  uint64_t occupied_ = 0;
  uint64_t clock_ = 0;
  EvictionListener eviction_listener_;
};

}  // namespace s3fifo

#endif  // SRC_CORE_CACHE_H_
