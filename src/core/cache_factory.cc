#include "src/core/cache_factory.h"

#include <stdexcept>

#include "src/policies/arc.h"
#include "src/policies/belady.h"
#include "src/policies/blru.h"
#include "src/policies/cacheus.h"
#include "src/policies/clock.h"
#include "src/policies/fifo.h"
#include "src/policies/fifo_merge.h"
#include "src/policies/hyperbolic.h"
#include "src/policies/lecar.h"
#include "src/policies/lfu.h"
#include "src/policies/lhd.h"
#include "src/policies/lirs.h"
#include "src/policies/lrb_lite.h"
#include "src/policies/lru.h"
#include "src/policies/lruk.h"
#include "src/policies/random.h"
#include "src/policies/s3fifo.h"
#include "src/policies/s3fifo_d.h"
#include "src/policies/sieve.h"
#include "src/policies/slru.h"
#include "src/policies/tinylfu.h"
#include "src/policies/twoq.h"

namespace s3fifo {
namespace {

CacheConfig WithParams(const CacheConfig& config, const std::string& extra) {
  CacheConfig c = config;
  c.params = c.params.empty() ? extra : extra + "," + c.params;
  return c;
}

}  // namespace

std::unique_ptr<Cache> CreateCache(std::string_view name, const CacheConfig& config) {
  const std::string n(name);
  if (n == "fifo") {
    return std::make_unique<FifoCache>(config);
  }
  if (n == "lru") {
    return std::make_unique<LruCache>(config);
  }
  if (n == "clock" || n == "fifo-reinsertion" || n == "second-chance") {
    return std::make_unique<ClockCache>(config);
  }
  if (n == "sieve") {
    return std::make_unique<SieveCache>(config);
  }
  if (n == "slru") {
    return std::make_unique<SlruCache>(config);
  }
  if (n == "2q" || n == "twoq") {
    return std::make_unique<TwoQCache>(config);
  }
  if (n == "arc") {
    return std::make_unique<ArcCache>(config);
  }
  if (n == "lirs") {
    return std::make_unique<LirsCache>(config);
  }
  if (n == "tinylfu") {
    return std::make_unique<TinyLfuCache>(config);
  }
  if (n == "tinylfu-0.1") {
    // The paper's larger-window variant (§5.2).
    return std::make_unique<TinyLfuCache>(WithParams(config, "window_ratio=0.1"));
  }
  if (n == "lruk" || n == "lru-2") {
    return std::make_unique<LruKCache>(config);
  }
  if (n == "lfu") {
    return std::make_unique<LfuCache>(config);
  }
  if (n == "blru" || n == "b-lru") {
    return std::make_unique<BLruCache>(config);
  }
  if (n == "lecar") {
    return std::make_unique<LeCarCache>(config);
  }
  if (n == "cacheus") {
    return std::make_unique<CacheusCache>(config);
  }
  if (n == "lhd") {
    return std::make_unique<LhdCache>(config);
  }
  if (n == "hyperbolic") {
    return std::make_unique<HyperbolicCache>(config);
  }
  if (n == "lrb-lite" || n == "lrb") {
    return std::make_unique<LrbLiteCache>(config);
  }
  if (n == "fifo-merge" || n == "segcache") {
    return std::make_unique<FifoMergeCache>(config);
  }
  if (n == "belady" || n == "opt") {
    return std::make_unique<BeladyCache>(config);
  }
  if (n == "random") {
    return std::make_unique<RandomCache>(config);
  }
  if (n == "s3fifo") {
    return std::make_unique<S3FifoCache>(config);
  }
  if (n == "s3fifo-d") {
    return std::make_unique<S3FifoDCache>(config);
  }
  throw std::invalid_argument("unknown cache policy: " + n);
}

const std::vector<std::string>& AllCacheNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "fifo",    "lru",     "clock",  "sieve",      "slru",       "2q",
      "arc",     "lirs",    "tinylfu", "tinylfu-0.1", "lruk",      "lfu",
      "blru",    "lecar",   "cacheus", "lhd",        "hyperbolic", "lrb-lite",
      "fifo-merge", "belady",  "random",  "s3fifo", "s3fifo-d",
  };
  return *names;
}

}  // namespace s3fifo
