// Central registry mapping policy names to constructors so benches, tests
// and examples can sweep algorithms by string name.
#ifndef SRC_CORE_CACHE_FACTORY_H_
#define SRC_CORE_CACHE_FACTORY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/cache.h"

namespace s3fifo {

// Known names (aliases in parentheses):
//   fifo, lru, clock (fifo-reinsertion), sieve, slru, 2q, arc, lirs,
//   tinylfu, tinylfu-0.1, lruk, lfu, blru, lecar, cacheus, lhd, hyperbolic,
//   fifo-merge, belady, random, s3fifo, s3fifo-d
// Throws std::invalid_argument for unknown names.
std::unique_ptr<Cache> CreateCache(std::string_view name, const CacheConfig& config);

// All canonical policy names, in a stable presentation order.
const std::vector<std::string>& AllCacheNames();

}  // namespace s3fifo

#endif  // SRC_CORE_CACHE_FACTORY_H_
