// Quick-demotion instrumentation (paper §6.1, Fig. 10).
//
// Policies with a probationary stage (S3-FIFO's small queue, TinyLFU's
// window, ARC's T1) report when an object leaves that stage: either promoted
// into the main region or demoted out of the cache. The analysis layer turns
// these events into the paper's demotion *speed* (LRU eviction age / time in
// stage) and *precision* (fraction of demoted objects whose next reuse is
// farther than cache_size / miss_ratio).
#ifndef SRC_CORE_DEMOTION_H_
#define SRC_CORE_DEMOTION_H_

#include <cstdint>
#include <functional>

namespace s3fifo {

struct DemotionEvent {
  uint64_t id = 0;
  uint64_t enter_time = 0;  // logical clock at entry into the probationary stage
  uint64_t leave_time = 0;  // logical clock at departure
  bool promoted = false;    // true: moved to the main region; false: demoted out
};

using DemotionListener = std::function<void(const DemotionEvent&)>;

}  // namespace s3fifo

#endif  // SRC_CORE_DEMOTION_H_
