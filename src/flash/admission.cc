#include "src/flash/admission.h"

#include <cmath>
#include <stdexcept>

namespace s3fifo {

FlashieldAdmission::FlashieldAdmission(uint64_t reuse_horizon, uint64_t seed)
    : reuse_horizon_(reuse_horizon), rng_(seed) {}

double FlashieldAdmission::Score(const AdmissionCandidate& c) const {
  const double reads = std::log1p(static_cast<double>(c.dram_reads));
  const double residency =
      static_cast<double>(c.dram_residency) / static_cast<double>(reuse_horizon_ + 1);
  const double z = w0_ + w1_ * reads + w2_ * residency;
  return 1.0 / (1.0 + std::exp(-z));
}

void FlashieldAdmission::Train(double reads_feature, double residency_feature, double label) {
  const double z = w0_ + w1_ * reads_feature + w2_ * residency_feature;
  const double p = 1.0 / (1.0 + std::exp(-z));
  const double grad = p - label;
  w0_ -= learning_rate_ * grad;
  w1_ -= learning_rate_ * grad * reads_feature;
  w2_ -= learning_rate_ * grad * residency_feature;
}

bool FlashieldAdmission::Admit(const AdmissionCandidate& c) {
  const double reads = std::log1p(static_cast<double>(c.dram_reads));
  const double residency =
      static_cast<double>(c.dram_residency) / static_cast<double>(reuse_horizon_ + 1);
  // Self-supervised label from the DRAM observation window — Flashield's
  // "flashiness": an object that accumulated reads in DRAM is predicted to
  // see reads on flash. With a tiny DRAM no object accumulates reads, all
  // labels collapse to 0, and the model cannot discriminate — reproducing
  // the paper's DRAM-size dependence (§5.4).
  Train(reads, residency, c.dram_reads > 0 ? 1.0 : 0.0);
  const bool admit = Score(c) >= 0.5;
  if (!admit) {
    // Remember the rejection; OnRejectedReuse supplies the error signal.
    // Capped to avoid unbounded growth.
    if (rejected_.size() < 4 * (reuse_horizon_ + 64)) {
      Sample* s = rejected_.Emplace(c.id);
      s->reads = reads;
      s->residency = residency;
    }
  }
  return admit;
}

void FlashieldAdmission::OnRejectedReuse(uint64_t id, uint64_t delay) {
  const Sample* s = rejected_.Find(id);
  if (s == nullptr) {
    return;
  }
  if (delay <= reuse_horizon_) {
    // The rejected object was flashy: penalise the rejection.
    Train(s->reads, s->residency, 1.0);
  }
  rejected_.Erase(id);
}

std::unique_ptr<AdmissionPolicy> CreateAdmissionPolicy(const std::string& name,
                                                       uint64_t reuse_horizon, uint64_t seed) {
  if (name == "none" || name == "fifo" || name == "all") {
    return std::make_unique<AdmitAll>();
  }
  if (name == "probabilistic") {
    return std::make_unique<ProbabilisticAdmission>(0.2, seed);
  }
  if (name == "flashield") {
    return std::make_unique<FlashieldAdmission>(reuse_horizon, seed);
  }
  if (name == "s3fifo") {
    return std::make_unique<S3FifoAdmission>(1);
  }
  throw std::invalid_argument("unknown admission policy: " + name);
}

}  // namespace s3fifo
