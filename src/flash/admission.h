// Flash admission policies (paper §5.4, Fig. 9): decide which objects
// evicted from the DRAM tier are worth writing to flash.
//
//  * AdmitAll          — "FIFO": no admission control, write everything.
//  * ProbabilisticAdmission — admit with fixed probability (20% in Fig. 9).
//  * FlashieldAdmission — stand-in for Flashield's learned admission
//    (Eisenman et al., NSDI'19): an online logistic model over the features
//    Flashield uses — reads accumulated while in DRAM and DRAM residency
//    time — trained by observing whether rejected/evicted objects are
//    re-requested soon ("flashiness"). Reproduces Flashield's DRAM-size
//    dependence: with a tiny DRAM, objects accumulate no reads, the features
//    are uninformative, and precision collapses (the paper's §5.4 point).
//  * S3FifoAdmission   — the paper's proposal: DRAM is the small FIFO queue;
//    objects requested at least `threshold` times while in DRAM are admitted.
#ifndef SRC_FLASH_ADMISSION_H_
#define SRC_FLASH_ADMISSION_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/util/flat_map.h"
#include "src/util/rng.h"

namespace s3fifo {

// Everything the policy may inspect about a DRAM-evicted object.
struct AdmissionCandidate {
  uint64_t id = 0;
  uint32_t size = 1;
  uint32_t dram_reads = 0;       // hits while resident in DRAM
  uint64_t dram_residency = 0;   // logical time spent in DRAM
  uint64_t now = 0;              // logical clock at eviction
};

class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;
  virtual bool Admit(const AdmissionCandidate& candidate) = 0;
  // Feedback: the object was requested again `delay` requests after a
  // rejection (used by learned policies).
  virtual void OnRejectedReuse(uint64_t id, uint64_t delay) { (void)id, (void)delay; }
  virtual std::string Name() const = 0;
};

class AdmitAll : public AdmissionPolicy {
 public:
  bool Admit(const AdmissionCandidate&) override { return true; }
  std::string Name() const override { return "fifo(no-admission)"; }
};

class ProbabilisticAdmission : public AdmissionPolicy {
 public:
  explicit ProbabilisticAdmission(double probability, uint64_t seed = 11)
      : probability_(probability), rng_(seed) {}
  bool Admit(const AdmissionCandidate&) override { return rng_.NextBool(probability_); }
  std::string Name() const override { return "probabilistic"; }

 private:
  double probability_;
  Rng rng_;
};

class S3FifoAdmission : public AdmissionPolicy {
 public:
  explicit S3FifoAdmission(uint32_t threshold = 1) : threshold_(threshold) {}
  bool Admit(const AdmissionCandidate& c) override { return c.dram_reads >= threshold_; }
  std::string Name() const override { return "s3fifo"; }

 private:
  uint32_t threshold_;
};

class FlashieldAdmission : public AdmissionPolicy {
 public:
  // reuse_horizon: a rejected object re-requested within this many requests
  // counts as a training error (it was "flashy" after all).
  explicit FlashieldAdmission(uint64_t reuse_horizon, uint64_t seed = 13);

  bool Admit(const AdmissionCandidate& candidate) override;
  void OnRejectedReuse(uint64_t id, uint64_t delay) override;
  std::string Name() const override { return "flashield"; }

 private:
  double Score(const AdmissionCandidate& c) const;
  void Train(double reads_feature, double residency_feature, double label);

  uint64_t reuse_horizon_;
  // Logistic model: sigmoid(w0 + w1*log(1+reads) + w2*residency_norm).
  double w0_ = 0.0;
  double w1_ = 0.0;
  double w2_ = 0.0;
  double learning_rate_ = 0.05;
  Rng rng_;
  // Features of recent rejections, for negative/positive feedback.
  struct Sample {
    double reads = 0;
    double residency = 0;
  };
  FlatMap<Sample> rejected_;
};

std::unique_ptr<AdmissionPolicy> CreateAdmissionPolicy(const std::string& name,
                                                       uint64_t reuse_horizon, uint64_t seed);

}  // namespace s3fifo

#endif  // SRC_FLASH_ADMISSION_H_
