#include "src/flash/flash_cache.h"

#include <algorithm>

namespace s3fifo {
namespace {

uint64_t AutoGhostEntries(const FlashCacheConfig& config) {
  if (config.ghost_entries > 0) {
    return config.ghost_entries;
  }
  return std::max<uint64_t>(config.flash_capacity_bytes / 4096, 64);
}

}  // namespace

FlashCacheSim::FlashCacheSim(const FlashCacheConfig& config,
                             std::unique_ptr<AdmissionPolicy> admission)
    : config_(config), admission_(std::move(admission)), ghost_(AutoGhostEntries(config)) {}

bool FlashCacheSim::Get(const Request& req) {
  ++clock_;
  ++stats_.requests;
  stats_.bytes_requested += req.size;

  DramEntry* dram_e = dram_.Find(req.id);
  if (dram_e != nullptr) {
    ++stats_.dram_hits;
    ++dram_e->reads;
    if (config_.dram_discipline == DramDiscipline::kLru) {
      dram_queue_.MoveToFront(dram_e);
    }
    return true;
  }
  if (flash_.Contains(req.id)) {
    // Flash tier is FIFO: hits update no ordering state.
    ++stats_.flash_hits;
    return true;
  }

  ++stats_.misses;
  stats_.bytes_missed += req.size;

  // Learned-admission feedback: a rejected object came back.
  uint64_t* rej = rejected_at_.Find(req.id);
  if (rej != nullptr) {
    admission_->OnRejectedReuse(req.id, clock_ - *rej);
    rejected_at_.Erase(req.id);
  }

  if (config_.dram_discipline == DramDiscipline::kSmallFifo && ghost_.Contains(req.id)) {
    // S -> G -> M path: a ghost hit goes straight to flash.
    ghost_.Remove(req.id);
    InsertFlash(req.id, req.size);
    return false;
  }
  InsertDram(req.id, req.size);
  return false;
}

void FlashCacheSim::InsertDram(uint64_t id, uint32_t size) {
  if (size > config_.dram_capacity_bytes) {
    // Object larger than DRAM: consult admission directly.
    AdmissionCandidate c;
    c.id = id;
    c.size = size;
    c.now = clock_;
    if (admission_->Admit(c)) {
      InsertFlash(id, size);
    } else {
      RecordRejection(id);
    }
    return;
  }
  while (dram_occ_ + size > config_.dram_capacity_bytes && !dram_queue_.empty()) {
    EvictDramTail();
  }
  DramEntry* e = dram_.Emplace(id);
  e->id = id;
  e->size = size;
  e->reads = 0;
  e->insert_time = clock_;
  dram_queue_.PushFront(e);
  dram_occ_ += size;
}

void FlashCacheSim::EvictDramTail() {
  DramEntry* tail = dram_queue_.Back();
  if (tail == nullptr) {
    return;
  }
  AdmissionCandidate c;
  c.id = tail->id;
  c.size = tail->size;
  c.dram_reads = tail->reads;
  c.dram_residency = clock_ - tail->insert_time;
  c.now = clock_;
  const uint64_t id = tail->id;
  const uint32_t size = tail->size;
  dram_queue_.Remove(tail);
  dram_occ_ -= size;
  dram_.Erase(id);

  if (admission_->Admit(c)) {
    InsertFlash(id, size);
  } else {
    if (config_.dram_discipline == DramDiscipline::kSmallFifo) {
      ghost_.Insert(id);
    }
    RecordRejection(id);
  }
}

void FlashCacheSim::RecordRejection(uint64_t id) {
  if (rejected_at_.size() > 4 * AutoGhostEntries(config_) + 1024) {
    rejected_at_.Clear();  // cheap bound; feedback is best-effort
  }
  *rejected_at_.Emplace(id) = clock_;
}

void FlashCacheSim::InsertFlash(uint64_t id, uint32_t size) {
  if (size > config_.flash_capacity_bytes) {
    return;
  }
  while (flash_occ_ + size > config_.flash_capacity_bytes && !flash_queue_.empty()) {
    FlashEntry* victim = flash_queue_.Back();
    flash_occ_ -= victim->size;
    flash_queue_.Remove(victim);
    flash_.Erase(victim->id);
  }
  FlashEntry* e = flash_.Emplace(id);
  e->id = id;
  e->size = size;
  flash_queue_.PushFront(e);
  flash_occ_ += size;
  stats_.flash_write_bytes += size;
  ++stats_.flash_writes;
}

FlashCacheStats SimulateFlashCache(const Trace& trace, const FlashCacheConfig& config,
                                   std::unique_ptr<AdmissionPolicy> admission) {
  FlashCacheSim sim(config, std::move(admission));
  for (const Request& req : trace.requests()) {
    if (req.op == OpType::kDelete) {
      continue;
    }
    sim.Get(req);
  }
  return sim.stats();
}

}  // namespace s3fifo
