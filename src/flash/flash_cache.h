// Two-tier DRAM + flash cache simulator (paper §5.4, Fig. 9).
//
// The flash tier is a FIFO queue (the eviction algorithm production flash
// caches use, §2.1); the DRAM tier buffers new objects and the admission
// policy decides which DRAM-evicted objects are written to flash. Metrics:
// request/byte miss ratio and flash write bytes (normalised to the trace's
// unique bytes by the caller).
//
// Two DRAM disciplines:
//  * kLru        — DRAM is an LRU front cache (the setup for no-admission,
//                  probabilistic, and Flashield schemes);
//  * kSmallFifo  — the paper's S3-FIFO scheme: DRAM is the small FIFO queue
//                  with a ghost queue of DRAM-evicted ids; a request for a
//                  ghost id is written straight to flash (S->G->M path).
#ifndef SRC_FLASH_FLASH_CACHE_H_
#define SRC_FLASH_FLASH_CACHE_H_

#include <memory>

#include "src/flash/admission.h"
#include "src/trace/trace.h"
#include "src/util/flat_map.h"
#include "src/util/ghost_queue.h"
#include "src/util/intrusive_list.h"

namespace s3fifo {

enum class DramDiscipline { kLru, kSmallFifo };

struct FlashCacheConfig {
  uint64_t flash_capacity_bytes = 0;
  uint64_t dram_capacity_bytes = 0;
  DramDiscipline dram_discipline = DramDiscipline::kLru;
  // Ghost entries for kSmallFifo (0 = auto: flash capacity / 4KB).
  uint64_t ghost_entries = 0;
  uint64_t seed = 42;
};

struct FlashCacheStats {
  uint64_t requests = 0;
  uint64_t dram_hits = 0;
  uint64_t flash_hits = 0;
  uint64_t misses = 0;
  uint64_t bytes_requested = 0;
  uint64_t bytes_missed = 0;
  uint64_t flash_write_bytes = 0;
  uint64_t flash_writes = 0;

  double MissRatio() const {
    return requests == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(requests);
  }
  double ByteMissRatio() const {
    return bytes_requested == 0
               ? 0.0
               : static_cast<double>(bytes_missed) / static_cast<double>(bytes_requested);
  }
};

class FlashCacheSim {
 public:
  FlashCacheSim(const FlashCacheConfig& config, std::unique_ptr<AdmissionPolicy> admission);

  // Processes one request; returns true on a hit in either tier.
  bool Get(const Request& req);
  const FlashCacheStats& stats() const { return stats_; }
  const std::string AdmissionName() const { return admission_->Name(); }
  uint64_t dram_occupied() const { return dram_occ_; }
  uint64_t flash_occupied() const { return flash_occ_; }

 private:
  struct DramEntry {
    uint64_t id = 0;
    uint32_t size = 1;
    uint32_t reads = 0;
    uint64_t insert_time = 0;
    ListHook hook;
  };
  struct FlashEntry {
    uint64_t id = 0;
    uint32_t size = 1;
    ListHook hook;
  };

  void InsertDram(uint64_t id, uint32_t size);
  void InsertFlash(uint64_t id, uint32_t size);
  void EvictDramTail();
  void RecordRejection(uint64_t id);

  FlashCacheConfig config_;
  std::unique_ptr<AdmissionPolicy> admission_;
  uint64_t clock_ = 0;

  // Hot-path maps are FlatMap (stable value addresses, so the intrusive
  // hooks survive rehashing) — the same migration the policies got in PR 1.
  FlatMap<DramEntry> dram_;
  IntrusiveList<DramEntry, &DramEntry::hook> dram_queue_;
  uint64_t dram_occ_ = 0;

  FlatMap<FlashEntry> flash_;
  IntrusiveList<FlashEntry, &FlashEntry::hook> flash_queue_;
  uint64_t flash_occ_ = 0;

  GhostQueue ghost_;  // used by kSmallFifo
  FlatMap<uint64_t> rejected_at_;  // id -> clock of rejection

  FlashCacheStats stats_;
};

// Convenience: run a full trace, returning the stats.
FlashCacheStats SimulateFlashCache(const Trace& trace, const FlashCacheConfig& config,
                                   std::unique_ptr<AdmissionPolicy> admission);

}  // namespace s3fifo

#endif  // SRC_FLASH_FLASH_CACHE_H_
