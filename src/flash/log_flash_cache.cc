#include "src/flash/log_flash_cache.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "src/util/params.h"

namespace s3fifo {
namespace {

uint64_t FlashCapacityBytes(const LogFlashCacheConfig& config) {
  uint64_t bytes = config.log.segment_bytes * config.log.num_segments;
  if (config.small_object_threshold > 0) {
    bytes += config.set_store.set_bytes * config.set_store.num_sets;
  }
  return bytes;
}

uint64_t AutoGhostEntries(const LogFlashCacheConfig& config) {
  if (config.ghost_entries > 0) {
    return config.ghost_entries;
  }
  return std::max<uint64_t>(FlashCapacityBytes(config) / 4096, 64);
}

LogFlashCacheConfig Clamped(LogFlashCacheConfig config) {
  if (config.small_object_threshold > 0) {
    config.small_object_threshold =
        std::min(config.small_object_threshold, config.set_store.set_bytes + 1);
  }
  return config;
}

}  // namespace

LogStructuredFlashCache::LogStructuredFlashCache(const LogFlashCacheConfig& config,
                                                 std::unique_ptr<AdmissionPolicy> admission)
    : config_(Clamped(config)),
      admission_(std::move(admission)),
      rejected_bound_(4 * AutoGhostEntries(config_) + 1024),
      log_(config_.log),
      sets_(config_.set_store),
      ghost_(AutoGhostEntries(config_)) {}

bool LogStructuredFlashCache::Get(const Request& req) {
  ++clock_;
  flash_evicted_.clear();

  if (req.op == OpType::kDelete) {
    ++stats_.deletes;
    DramEntry* e = dram_.Find(req.id);
    if (e != nullptr) {
      dram_occ_ -= e->size;
      dram_queue_.Remove(e);
      dram_.Erase(req.id);
    }
    log_.Erase(req.id);
    sets_.Erase(req.id);
    return false;
  }

  ++stats_.requests;
  stats_.bytes_requested += req.size;

  DramEntry* dram_e = dram_.Find(req.id);
  if (dram_e != nullptr) {
    ++stats_.dram_hits;
    ++dram_e->reads;
    if (config_.dram_discipline == DramDiscipline::kLru) {
      dram_queue_.MoveToFront(dram_e);
    }
    if (req.op == OpType::kSet) {
      // Overwrite: re-insert with the new size and fresh read/residency
      // state (the new content has no observed history).
      dram_occ_ -= dram_e->size;
      dram_queue_.Remove(dram_e);
      dram_.Erase(req.id);
      InsertDram(req.id, req.size);
    }
    return true;
  }
  const bool in_log = log_.Contains(req.id);
  if (in_log || sets_.Contains(req.id)) {
    if (in_log) {
      ++stats_.log_hits;
    } else {
      ++stats_.set_hits;
    }
    if (req.op == OpType::kSet) {
      // Overwrite on flash: dead-mark the old copy, admit the new bytes.
      if (in_log) {
        log_.Erase(req.id);
      } else {
        sets_.Erase(req.id);
      }
      WriteFlash(req.id, req.size);
    } else if (in_log) {
      log_.Lookup(req.id);  // RIPQ virtual promotion / FIFO readmit bit
    }
    return true;
  }

  ++stats_.misses;
  stats_.bytes_missed += req.size;

  // Learned-admission feedback: a rejected object came back.
  uint64_t* rej = rejected_at_.Find(req.id);
  if (rej != nullptr) {
    admission_->OnRejectedReuse(req.id, clock_ - *rej);
    rejected_at_.Erase(req.id);
  }

  if (config_.dram_discipline == DramDiscipline::kSmallFifo && ghost_.Contains(req.id)) {
    // S -> G -> M path: a ghost hit goes straight to flash.
    ghost_.Remove(req.id);
    WriteFlash(req.id, req.size);
    return false;
  }
  InsertDram(req.id, req.size);
  return false;
}

void LogStructuredFlashCache::ResizeFlash(uint64_t num_segments) {
  flash_evicted_.clear();
  const size_t before = flash_evicted_.size();
  log_.Resize(num_segments, &flash_evicted_);
  stats_.flash_evictions += flash_evicted_.size() - before;
}

void LogStructuredFlashCache::InsertDram(uint64_t id, uint32_t size) {
  if (size > config_.dram_capacity_bytes) {
    // Object larger than DRAM: consult admission directly.
    AdmissionCandidate c;
    c.id = id;
    c.size = size;
    c.now = clock_;
    if (admission_->Admit(c)) {
      WriteFlash(id, size);
    } else {
      RecordRejection(id);
    }
    return;
  }
  while (dram_occ_ + size > config_.dram_capacity_bytes && !dram_queue_.empty()) {
    EvictDramTail();
  }
  DramEntry* e = dram_.Emplace(id);
  e->id = id;
  e->size = size;
  e->reads = 0;
  e->insert_time = clock_;
  dram_queue_.PushFront(e);
  dram_occ_ += size;
}

void LogStructuredFlashCache::EvictDramTail() {
  DramEntry* tail = dram_queue_.Back();
  if (tail == nullptr) {
    return;
  }
  AdmissionCandidate c;
  c.id = tail->id;
  c.size = tail->size;
  c.dram_reads = tail->reads;
  c.dram_residency = clock_ - tail->insert_time;
  c.now = clock_;
  const uint64_t id = tail->id;
  const uint32_t size = tail->size;
  dram_queue_.Remove(tail);
  dram_occ_ -= size;
  dram_.Erase(id);

  if (admission_->Admit(c)) {
    WriteFlash(id, size);
  } else {
    if (config_.dram_discipline == DramDiscipline::kSmallFifo) {
      ghost_.Insert(id);
    }
    RecordRejection(id);
  }
}

void LogStructuredFlashCache::WriteFlash(uint64_t id, uint32_t size) {
  const size_t before = flash_evicted_.size();
  if (config_.small_object_threshold > 0 && size < config_.small_object_threshold) {
    sets_.Insert(id, size, &flash_evicted_);
  } else {
    log_.Insert(id, size, &flash_evicted_);
  }
  stats_.flash_evictions += flash_evicted_.size() - before;
}

void LogStructuredFlashCache::RecordRejection(uint64_t id) {
  if (rejected_at_.size() > rejected_bound_) {
    rejected_at_.Clear();  // cheap bound; feedback is best-effort
  }
  *rejected_at_.Emplace(id) = clock_;
}

LogFlashCacheStats SimulateLogFlashCache(const Trace& trace, const LogFlashCacheConfig& config,
                                         std::unique_ptr<AdmissionPolicy> admission) {
  LogStructuredFlashCache cache(config, std::move(admission));
  for (const Request& req : trace.requests()) {
    cache.Get(req);
  }
  return cache.stats();
}

std::string FormatLogFlashConfig(const LogFlashCacheConfig& config) {
  std::ostringstream out;
  out << "dram=" << config.dram_capacity_bytes
      << ",discipline=" << (config.dram_discipline == DramDiscipline::kLru ? "lru" : "smallfifo")
      << ",ghost=" << config.ghost_entries << ",segment=" << config.log.segment_bytes
      << ",segments=" << config.log.num_segments
      << ",ordering=" << (config.log.ordering == LogOrdering::kFifo ? "fifo" : "ripq")
      << ",readmit=" << (config.log.gc_readmit ? 1 : 0)
      << ",sections=" << config.log.ripq_sections
      << ",insert_prio=" << config.log.insert_priority
      << ",small=" << config.small_object_threshold
      << ",set_bytes=" << config.set_store.set_bytes << ",sets=" << config.set_store.num_sets;
  return out.str();
}

LogFlashCacheConfig ParseLogFlashConfig(const std::string& spec) {
  const Params p(spec);
  LogFlashCacheConfig config;
  config.dram_capacity_bytes = p.GetU64("dram", config.dram_capacity_bytes);
  const std::string discipline = p.GetString("discipline", "lru");
  if (discipline == "lru") {
    config.dram_discipline = DramDiscipline::kLru;
  } else if (discipline == "smallfifo") {
    config.dram_discipline = DramDiscipline::kSmallFifo;
  } else {
    throw std::invalid_argument("log-flash config: unknown discipline '" + discipline + "'");
  }
  config.ghost_entries = p.GetU64("ghost", config.ghost_entries);
  config.log.segment_bytes = p.GetU64("segment", config.log.segment_bytes);
  config.log.num_segments = p.GetU64("segments", config.log.num_segments);
  const std::string ordering = p.GetString("ordering", "fifo");
  if (ordering == "fifo") {
    config.log.ordering = LogOrdering::kFifo;
  } else if (ordering == "ripq") {
    config.log.ordering = LogOrdering::kRipq;
  } else {
    throw std::invalid_argument("log-flash config: unknown ordering '" + ordering + "'");
  }
  config.log.gc_readmit = p.GetBool("readmit", config.log.gc_readmit);
  config.log.ripq_sections = static_cast<uint32_t>(p.GetU64("sections", config.log.ripq_sections));
  config.log.insert_priority =
      static_cast<uint32_t>(p.GetU64("insert_prio", config.log.insert_priority));
  config.small_object_threshold = p.GetU64("small", config.small_object_threshold);
  config.set_store.set_bytes = p.GetU64("set_bytes", config.set_store.set_bytes);
  config.set_store.num_sets = p.GetU64("sets", config.set_store.num_sets);
  return config;
}

}  // namespace s3fifo
