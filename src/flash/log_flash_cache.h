// Two-tier DRAM + log-structured flash cache: the drop-in "real backend"
// alternative to FlashCacheSim (ROADMAP item 2).
//
// The DRAM front and admission gate are the same as flash_cache.h — kLru or
// the paper's kSmallFifo discipline with a ghost queue, every DRAM eviction
// passing through an AdmissionPolicy — but the flash tier is no longer an
// abstract byte-counted FIFO. Admitted objects route by size:
//
//   size <  small_object_threshold  ->  SetAssocStore (Kangaroo-style sets)
//   size >= small_object_threshold  ->  SegmentLog (segment log + GC)
//
// so every run reports the metric the abstract simulator could not see:
// device bytes written and write amplification, with GC rewrite bytes and
// set-page writes broken out per component.
//
// Operation semantics (mirrored exactly by the naive oracle in src/check/):
//   kGet    — hit in DRAM (LRU move under kLru) or flash; on a miss, the
//             ghost path / DRAM insert / admission flow of FlashCacheSim.
//   kSet    — insert-or-overwrite. A DRAM-resident object is re-inserted
//             with the new size (fresh read/residency state); a
//             flash-resident object is dead-marked and re-admitted with the
//             new size. Both count as hits; an absent id takes the miss path.
//   kDelete — removes residency in every tier (metadata-only on flash);
//             counted separately, not as a request.
#ifndef SRC_FLASH_LOG_FLASH_CACHE_H_
#define SRC_FLASH_LOG_FLASH_CACHE_H_

#include <memory>
#include <string>

#include "src/flash/admission.h"
#include "src/flash/flash_cache.h"
#include "src/flash/segment_log.h"
#include "src/flash/set_store.h"
#include "src/trace/trace.h"
#include "src/util/flat_map.h"
#include "src/util/ghost_queue.h"
#include "src/util/intrusive_list.h"

namespace s3fifo {

struct LogFlashCacheConfig {
  uint64_t dram_capacity_bytes = 0;
  DramDiscipline dram_discipline = DramDiscipline::kLru;
  // Ghost entries for kSmallFifo (0 = auto: flash capacity / 4KB).
  uint64_t ghost_entries = 0;

  SegmentLogConfig log;
  // Objects strictly smaller than this go to the set store; 0 disables it.
  // Clamped to set_store.set_bytes + 1 so routed objects always fit a set.
  uint64_t small_object_threshold = 0;
  SetStoreConfig set_store;
};

struct LogFlashCacheStats {
  uint64_t requests = 0;
  uint64_t dram_hits = 0;
  uint64_t log_hits = 0;
  uint64_t set_hits = 0;
  uint64_t misses = 0;
  uint64_t deletes = 0;
  uint64_t bytes_requested = 0;
  uint64_t bytes_missed = 0;
  uint64_t flash_evictions = 0;  // objects dropped from flash (GC / set FIFO)

  double MissRatio() const {
    return requests == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(requests);
  }
  double ByteMissRatio() const {
    return bytes_requested == 0
               ? 0.0
               : static_cast<double>(bytes_missed) / static_cast<double>(bytes_requested);
  }
};

class LogStructuredFlashCache {
 public:
  LogStructuredFlashCache(const LogFlashCacheConfig& config,
                          std::unique_ptr<AdmissionPolicy> admission);

  // Processes one request; returns true on a hit in either tier. Ids that
  // left the flash tier during this request are in last_flash_evicted().
  bool Get(const Request& req);
  // Resizes the segment-log budget mid-run (the fuzzer's capacity resizes).
  void ResizeFlash(uint64_t num_segments);

  const LogFlashCacheStats& stats() const { return stats_; }
  const SegmentLogStats& log_stats() const { return log_.stats(); }
  const SetStoreStats& set_stats() const { return sets_.stats(); }
  const std::string AdmissionName() const { return admission_->Name(); }

  uint64_t dram_occupied() const { return dram_occ_; }
  uint64_t flash_live_bytes() const { return log_.live_bytes() + sets_.live_bytes(); }
  const SegmentLog& log() const { return log_; }
  const SetAssocStore& sets() const { return sets_; }
  const std::vector<uint64_t>& last_flash_evicted() const { return flash_evicted_; }

  // Combined device accounting across both flash components.
  uint64_t DeviceBytesWritten() const {
    return log_.stats().device_bytes_written + sets_.stats().device_bytes_written;
  }
  uint64_t AdmittedBytes() const {
    return log_.stats().admitted_bytes + sets_.stats().admitted_bytes;
  }
  double WriteAmplification() const {
    const uint64_t admitted = AdmittedBytes();
    return admitted == 0
               ? 0.0
               : static_cast<double>(DeviceBytesWritten()) / static_cast<double>(admitted);
  }

 private:
  struct DramEntry {
    uint64_t id = 0;
    uint32_t size = 1;
    uint32_t reads = 0;
    uint64_t insert_time = 0;
    ListHook hook;
  };

  void InsertDram(uint64_t id, uint32_t size);
  void EvictDramTail();
  void WriteFlash(uint64_t id, uint32_t size);
  void RecordRejection(uint64_t id);

  LogFlashCacheConfig config_;
  std::unique_ptr<AdmissionPolicy> admission_;
  uint64_t clock_ = 0;
  uint64_t rejected_bound_ = 0;

  FlatMap<DramEntry> dram_;
  IntrusiveList<DramEntry, &DramEntry::hook> dram_queue_;
  uint64_t dram_occ_ = 0;

  SegmentLog log_;
  SetAssocStore sets_;
  GhostQueue ghost_;  // used by kSmallFifo
  FlatMap<uint64_t> rejected_at_;  // id -> clock of rejection
  std::vector<uint64_t> flash_evicted_;

  LogFlashCacheStats stats_;
};

// Convenience: run a full trace (deletes included), returning the stats.
LogFlashCacheStats SimulateLogFlashCache(const Trace& trace, const LogFlashCacheConfig& config,
                                         std::unique_ptr<AdmissionPolicy> admission);

// "key=value,..." round-trip of LogFlashCacheConfig for replay files
// (see src/check/replay_file.h). Keys: dram, discipline (lru|smallfifo),
// ghost, segment, segments, ordering (fifo|ripq), readmit, sections,
// insert_prio, small, set_bytes, sets.
std::string FormatLogFlashConfig(const LogFlashCacheConfig& config);
LogFlashCacheConfig ParseLogFlashConfig(const std::string& spec);

}  // namespace s3fifo

#endif  // SRC_FLASH_LOG_FLASH_CACHE_H_
