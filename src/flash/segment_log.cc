#include "src/flash/segment_log.h"

#include <algorithm>

namespace s3fifo {
namespace {

uint8_t MaxPriority(const SegmentLogConfig& config) {
  if (config.ordering == LogOrdering::kRipq) {
    const uint32_t sections = std::max<uint32_t>(config.ripq_sections, 1);
    return static_cast<uint8_t>(std::min<uint32_t>(sections - 1, 255));
  }
  return config.gc_readmit ? 1 : 0;
}

}  // namespace

SegmentLog::SegmentLog(const SegmentLogConfig& config)
    : config_(config), max_priority_(MaxPriority(config)) {
  config_.num_segments = std::max<uint64_t>(config_.num_segments, 1);
  config_.segment_bytes = std::max<uint64_t>(config_.segment_bytes, 1);
  config_.insert_priority = std::min<uint32_t>(config_.insert_priority, max_priority_);
}

bool SegmentLog::Contains(uint64_t id) const { return index_.Find(id) != nullptr; }

uint32_t SegmentLog::SizeOf(uint64_t id) const {
  const Locator* loc = index_.Find(id);
  return loc == nullptr ? 0 : slots_[loc->slot].entries[loc->idx].size;
}

bool SegmentLog::Lookup(uint64_t id) {
  Locator* loc = index_.Find(id);
  if (loc == nullptr) {
    return false;
  }
  SegEntry& e = slots_[loc->slot].entries[loc->idx];
  e.priority = static_cast<uint8_t>(std::min<uint32_t>(e.priority + 1, max_priority_));
  return true;
}

bool SegmentLog::Insert(uint64_t id, uint32_t size, std::vector<uint64_t>* evicted) {
  if (size > config_.segment_bytes) {
    ++stats_.oversize_rejects;
    return false;
  }
  Locator* old = index_.Find(id);
  if (old != nullptr) {
    DeadMark(*old);
    index_.Erase(id);
  }
  AppendRaw(id, size, static_cast<uint8_t>(config_.insert_priority), /*is_rewrite=*/false,
            evicted);
  stats_.admitted_bytes += size;
  ++stats_.admitted_objects;
  DrainPending(evicted);
  return true;
}

bool SegmentLog::Erase(uint64_t id) {
  Locator* loc = index_.Find(id);
  if (loc == nullptr) {
    return false;
  }
  DeadMark(*loc);
  index_.Erase(id);
  return true;
}

void SegmentLog::Resize(uint64_t num_segments, std::vector<uint64_t>* evicted) {
  config_.num_segments = std::max<uint64_t>(num_segments, 1);
  // Shrink: collect oldest sealed segments until the budget holds again.
  while (segments_in_use() > config_.num_segments && !sealed_.empty()) {
    GcOldest(evicted);
    DrainPending(evicted);
  }
}

void SegmentLog::DeadMark(const Locator& loc) {
  SegEntry& e = slots_[loc.slot].entries[loc.idx];
  e.live = false;
  live_bytes_ -= e.size;
}

void SegmentLog::AppendRaw(uint64_t id, uint32_t size, uint8_t priority, bool is_rewrite,
                           std::vector<uint64_t>* evicted) {
  if (open_slot_ == kNoSlot) {
    AcquireOpen(evicted);
  } else if (slots_[open_slot_].write_off + size > config_.segment_bytes) {
    Seal();
    AcquireOpen(evicted);
  }
  Segment& open = slots_[open_slot_];
  Locator loc;
  loc.slot = open_slot_;
  loc.idx = static_cast<uint32_t>(open.entries.size());
  SegEntry e;
  e.id = id;
  e.size = size;
  e.priority = priority;
  e.live = true;
  open.entries.push_back(e);
  open.write_off += size;
  *index_.Emplace(id) = loc;
  live_bytes_ += size;
  stats_.device_bytes_written += size;
  if (is_rewrite) {
    stats_.gc_rewrite_bytes += size;
    ++stats_.gc_rewrite_objects;
  }
}

void SegmentLog::Seal() {
  slots_[open_slot_].seal_seq = next_seal_seq_++;
  sealed_.push_back(open_slot_);
  open_slot_ = kNoSlot;
  ++stats_.segments_sealed;
}

void SegmentLog::AcquireOpen(std::vector<uint64_t>* evicted) {
  // Opening a segment must keep open + sealed within the budget; reclaim the
  // oldest sealed segments until it does.
  while (sealed_.size() + 1 > config_.num_segments && !sealed_.empty()) {
    GcOldest(evicted);
  }
  if (free_slots_.empty()) {
    slots_.emplace_back();
    free_slots_.push_back(static_cast<uint32_t>(slots_.size() - 1));
  }
  open_slot_ = free_slots_.back();
  free_slots_.pop_back();
}

void SegmentLog::GcOldest(std::vector<uint64_t>* evicted) {
  const uint32_t victim_slot = sealed_.front();
  sealed_.pop_front();
  Segment& victim = slots_[victim_slot];
  last_gc_victim_seq_ = victim.seal_seq;
  ++stats_.segments_gced;
  for (const SegEntry& e : victim.entries) {
    if (!e.live) {
      continue;
    }
    index_.Erase(e.id);
    live_bytes_ -= e.size;
    if (e.priority > 0) {
      // Still hot: survives this pass, rewritten one section colder.
      PendingRewrite p;
      p.id = e.id;
      p.size = e.size;
      p.priority = static_cast<uint8_t>(e.priority - 1);
      pending_.push_back(p);
    } else {
      ++stats_.dropped_objects;
      stats_.dropped_bytes += e.size;
      if (evicted != nullptr) {
        evicted->push_back(e.id);
      }
    }
  }
  victim.entries.clear();
  victim.write_off = 0;
  victim.seal_seq = 0;
  free_slots_.push_back(victim_slot);
}

void SegmentLog::DrainPending(std::vector<uint64_t>* evicted) {
  // Survivor rewrites can seal the open segment and trigger further GC,
  // which appends more survivors; priorities decay on every pass, so the
  // queue drains in bounded work even when everything is hot.
  while (!pending_.empty()) {
    const PendingRewrite p = pending_.front();
    pending_.pop_front();
    AppendRaw(p.id, p.size, p.priority, /*is_rewrite=*/true, evicted);
  }
}

}  // namespace s3fifo
