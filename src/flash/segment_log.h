// Append-only segment log: the on-device layout production flash caches use
// (ROADMAP item 2; RIPQ, FAST'15; Kangaroo, SOSP'21).
//
// The device is divided into fixed-size segments. Writes append into one
// open segment (the open-segment buffer); when it fills it is sealed and a
// fresh segment is opened. When opening would exceed the segment budget the
// log reclaims space at segment granularity: the oldest sealed segment is
// garbage-collected as a unit. Live objects in the victim that are still hot
// are re-admitted — rewritten into the open segment, which is the write
// amplification production systems fight — and the rest leave the cache.
//
// Ordering disciplines:
//  * kFifo — one logical queue. With gc_readmit, an object hit since it was
//    written survives exactly one extra log pass (it is rewritten once, then
//    must be hit again); without, eviction is pure segment-granularity FIFO.
//  * kRipq — RIPQ-style insertion-point ordering: each object carries a
//    priority in [0, ripq_sections). A flash hit virtually promotes the
//    object one section; GC physically rewrites any object with priority
//    > 0 at the head (decaying its priority — the rewrite IS the move to
//    its insertion point) and drops priority-0 objects. A fresh admission
//    enters at insert_priority.
//
// Overwriting a resident id dead-marks the old copy in place (the bytes stay
// in the segment until GC) and appends a new copy. Deletes dead-mark only.
//
// Byte accounting (the invariant the differential wall checks after every
// GC): device_bytes_written == admitted_bytes + gc_rewrite_bytes — every
// byte the device absorbs is either a fresh admission or a GC rewrite.
// Write amplification = device_bytes_written / admitted_bytes.
//
// Deterministic: victim selection is by seal order, survivor rewrite order
// is entry order within the victim. No randomness anywhere.
#ifndef SRC_FLASH_SEGMENT_LOG_H_
#define SRC_FLASH_SEGMENT_LOG_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/util/flat_map.h"

namespace s3fifo {

enum class LogOrdering { kFifo, kRipq };

struct SegmentLogConfig {
  uint64_t segment_bytes = 256 * 1024;
  uint64_t num_segments = 16;  // device capacity = segment_bytes * num_segments
  LogOrdering ordering = LogOrdering::kFifo;
  // kFifo: rewrite objects hit since their last write on GC (one extra pass).
  bool gc_readmit = true;
  // kRipq: number of priority sections (>= 1) and the section a fresh
  // admission enters at (clamped to ripq_sections - 1).
  uint32_t ripq_sections = 4;
  uint32_t insert_priority = 0;
};

struct SegmentLogStats {
  uint64_t admitted_bytes = 0;  // fresh admissions (user bytes)
  uint64_t admitted_objects = 0;
  uint64_t gc_rewrite_bytes = 0;  // GC re-admissions (device-only bytes)
  uint64_t gc_rewrite_objects = 0;
  uint64_t device_bytes_written = 0;  // every byte appended to any segment
  uint64_t segments_sealed = 0;
  uint64_t segments_gced = 0;
  uint64_t dropped_objects = 0;  // left the cache during GC
  uint64_t dropped_bytes = 0;
  uint64_t oversize_rejects = 0;  // object larger than one segment

  double WriteAmplification() const {
    return admitted_bytes == 0 ? 0.0
                               : static_cast<double>(device_bytes_written) /
                                     static_cast<double>(admitted_bytes);
  }
};

class SegmentLog {
 public:
  explicit SegmentLog(const SegmentLogConfig& config);

  // Read path. Lookup marks the hit for the ordering discipline (RIPQ
  // virtual promotion / FIFO readmit bit); Contains is side-effect free.
  bool Contains(uint64_t id) const;
  bool Lookup(uint64_t id);
  // Size of the live copy; 0 if absent (and for live zero-byte objects).
  uint32_t SizeOf(uint64_t id) const;

  // Appends a fresh admission, sealing/GCing as needed. Ids that leave the
  // cache during GC are appended to `evicted` (may be null). Returns false
  // (and counts an oversize reject) when size > segment_bytes.
  bool Insert(uint64_t id, uint32_t size, std::vector<uint64_t>* evicted);
  // Dead-marks the live copy. Returns false if absent.
  bool Erase(uint64_t id);

  // Changes the segment budget; shrinking GCs the oldest sealed segments
  // immediately (survivor rewrites and drops count as usual).
  void Resize(uint64_t num_segments, std::vector<uint64_t>* evicted);

  uint64_t live_bytes() const { return live_bytes_; }
  uint64_t live_objects() const { return index_.size(); }
  uint64_t segments_in_use() const {
    return sealed_.size() + (open_slot_ == kNoSlot ? 0 : 1);
  }
  uint64_t num_segments() const { return config_.num_segments; }
  uint64_t segment_bytes() const { return config_.segment_bytes; }
  uint64_t capacity_bytes() const { return config_.segment_bytes * config_.num_segments; }
  // Seal sequence of the most recently collected victim (determinism hook).
  uint64_t last_gc_victim_seq() const { return last_gc_victim_seq_; }
  const SegmentLogStats& stats() const { return stats_; }

 private:
  struct SegEntry {
    uint64_t id = 0;
    uint32_t size = 0;
    uint8_t priority = 0;
    bool live = false;
  };
  struct Segment {
    uint64_t seal_seq = 0;  // 0 while open
    uint64_t write_off = 0;
    std::vector<SegEntry> entries;
  };
  struct Locator {
    uint32_t slot = 0;
    uint32_t idx = 0;
  };
  struct PendingRewrite {
    uint64_t id = 0;
    uint32_t size = 0;
    uint8_t priority = 0;
  };

  static constexpr uint32_t kNoSlot = ~0u;

  void AppendRaw(uint64_t id, uint32_t size, uint8_t priority, bool is_rewrite,
                 std::vector<uint64_t>* evicted);
  void AcquireOpen(std::vector<uint64_t>* evicted);
  void Seal();
  void GcOldest(std::vector<uint64_t>* evicted);
  void DrainPending(std::vector<uint64_t>* evicted);
  void DeadMark(const Locator& loc);

  SegmentLogConfig config_;
  uint8_t max_priority_;

  std::vector<Segment> slots_;
  std::vector<uint32_t> free_slots_;
  std::deque<uint32_t> sealed_;  // slot ids, oldest seal first
  uint32_t open_slot_ = kNoSlot;
  uint64_t next_seal_seq_ = 1;
  uint64_t last_gc_victim_seq_ = 0;

  FlatMap<Locator> index_;  // id -> live copy
  uint64_t live_bytes_ = 0;
  std::deque<PendingRewrite> pending_;  // survivors awaiting re-append

  SegmentLogStats stats_;
};

}  // namespace s3fifo

#endif  // SRC_FLASH_SEGMENT_LOG_H_
