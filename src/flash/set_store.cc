#include "src/flash/set_store.h"

#include <algorithm>

#include "src/util/hash.h"

namespace s3fifo {

SetAssocStore::SetAssocStore(const SetStoreConfig& config) : config_(config) {
  config_.num_sets = std::max<uint64_t>(config_.num_sets, 1);
  config_.set_bytes = std::max<uint64_t>(config_.set_bytes, 1);
  sets_.resize(config_.num_sets);
  set_occupied_.assign(config_.num_sets, 0);
}

uint64_t SetAssocStore::SetOf(uint64_t id) const {
  return Mix64(id ^ config_.hash_seed) % config_.num_sets;
}

bool SetAssocStore::Contains(uint64_t id) const { return index_.Find(id) != nullptr; }

uint32_t SetAssocStore::SizeOf(uint64_t id) const {
  const uint32_t* set_idx = index_.Find(id);
  if (set_idx == nullptr) {
    return 0;
  }
  for (const SetEntry& e : sets_[*set_idx]) {
    if (e.id == id) {
      return e.size;
    }
  }
  return 0;
}

bool SetAssocStore::Insert(uint64_t id, uint32_t size, std::vector<uint64_t>* evicted) {
  if (size > config_.set_bytes) {
    ++stats_.oversize_rejects;
    return false;
  }
  const uint64_t set_idx = SetOf(id);
  std::vector<SetEntry>& set = sets_[set_idx];
  // Overwrite: drop the old copy, keep the others' FIFO order.
  if (index_.Find(id) != nullptr) {
    for (size_t i = 0; i < set.size(); ++i) {
      if (set[i].id == id) {
        set_occupied_[set_idx] -= set[i].size;
        live_bytes_ -= set[i].size;
        set.erase(set.begin() + static_cast<ptrdiff_t>(i));
        break;
      }
    }
    index_.Erase(id);
  }
  while (set_occupied_[set_idx] + size > config_.set_bytes && !set.empty()) {
    const SetEntry oldest = set.front();
    set.erase(set.begin());
    set_occupied_[set_idx] -= oldest.size;
    live_bytes_ -= oldest.size;
    index_.Erase(oldest.id);
    ++stats_.dropped_objects;
    stats_.dropped_bytes += oldest.size;
    if (evicted != nullptr) {
      evicted->push_back(oldest.id);
    }
  }
  SetEntry e;
  e.id = id;
  e.size = size;
  set.push_back(e);
  set_occupied_[set_idx] += size;
  live_bytes_ += size;
  *index_.Emplace(id) = static_cast<uint32_t>(set_idx);
  stats_.admitted_bytes += size;
  ++stats_.admitted_objects;
  ++stats_.page_writes;
  stats_.device_bytes_written += config_.set_bytes;
  return true;
}

bool SetAssocStore::Erase(uint64_t id) {
  const uint32_t* set_idx = index_.Find(id);
  if (set_idx == nullptr) {
    return false;
  }
  std::vector<SetEntry>& set = sets_[*set_idx];
  for (size_t i = 0; i < set.size(); ++i) {
    if (set[i].id == id) {
      set_occupied_[*set_idx] -= set[i].size;
      live_bytes_ -= set[i].size;
      set.erase(set.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
  index_.Erase(id);
  return true;
}

}  // namespace s3fifo
