// Kangaroo-style set-associative small-object store (SOSP'21).
//
// Sub-block objects are too small to justify a whole log entry's index
// overhead; Kangaroo hashes them into fixed-size on-flash sets (one device
// page each) instead. The cost this makes visible — and the reason the store
// reports its own device-byte accounting — is that flash writes whole pages:
// inserting a 100-byte object rewrites its entire set, so small-object write
// amplification is set_bytes / object_size per insert unless admission
// filters aggressively.
//
// Within a set the discipline is FIFO: an insert that overflows the set
// evicts the set's oldest objects until the new one fits. Overwrites drop
// the old copy and append. Deletes are metadata-only (the tombstone is
// folded into the set's next page write, so no device bytes are charged).
//
// Byte accounting: device_bytes_written == page_writes * set_bytes — every
// insert rewrites exactly one set page. Deterministic: set choice is a hash
// of the id, eviction order is FIFO within the set.
#ifndef SRC_FLASH_SET_STORE_H_
#define SRC_FLASH_SET_STORE_H_

#include <cstdint>
#include <vector>

#include "src/util/flat_map.h"

namespace s3fifo {

struct SetStoreConfig {
  uint64_t set_bytes = 4096;  // one device page per set
  uint64_t num_sets = 64;
  uint64_t hash_seed = 0x5e7a550cULL;
};

struct SetStoreStats {
  uint64_t admitted_bytes = 0;
  uint64_t admitted_objects = 0;
  uint64_t device_bytes_written = 0;  // page_writes * set_bytes
  uint64_t page_writes = 0;
  uint64_t dropped_objects = 0;  // FIFO-evicted from a full set
  uint64_t dropped_bytes = 0;
  uint64_t oversize_rejects = 0;  // object larger than one set

  double WriteAmplification() const {
    return admitted_bytes == 0 ? 0.0
                               : static_cast<double>(device_bytes_written) /
                                     static_cast<double>(admitted_bytes);
  }
};

class SetAssocStore {
 public:
  explicit SetAssocStore(const SetStoreConfig& config);

  bool Contains(uint64_t id) const;
  // FIFO sets: a hit updates no ordering state.
  bool Lookup(uint64_t id) const { return Contains(id); }
  uint32_t SizeOf(uint64_t id) const;

  // Inserts (or overwrites) id, FIFO-evicting from its set as needed; the
  // evicted ids are appended to `evicted` (may be null). Returns false (and
  // counts an oversize reject) when size > set_bytes.
  bool Insert(uint64_t id, uint32_t size, std::vector<uint64_t>* evicted);
  // Metadata-only delete. Returns false if absent.
  bool Erase(uint64_t id);

  uint64_t live_bytes() const { return live_bytes_; }
  uint64_t live_objects() const { return index_.size(); }
  uint64_t num_sets() const { return config_.num_sets; }
  uint64_t set_bytes() const { return config_.set_bytes; }
  uint64_t capacity_bytes() const { return config_.set_bytes * config_.num_sets; }
  uint64_t SetOf(uint64_t id) const;
  const SetStoreStats& stats() const { return stats_; }

 private:
  struct SetEntry {
    uint64_t id = 0;
    uint32_t size = 0;
  };

  SetStoreConfig config_;
  std::vector<std::vector<SetEntry>> sets_;  // oldest first within each set
  std::vector<uint64_t> set_occupied_;
  FlatMap<uint32_t> index_;  // id -> set index
  uint64_t live_bytes_ = 0;
  SetStoreStats stats_;
};

}  // namespace s3fifo

#endif  // SRC_FLASH_SET_STORE_H_
