#include "src/policies/arc.h"

#include <algorithm>

namespace s3fifo {

ArcCache::ArcCache(const CacheConfig& config) : Cache(config) {}

bool ArcCache::Contains(uint64_t id) const {
  auto it = table_.find(id);
  return it != table_.end() && IsResident(it->second);
}

ArcCache::Queue& ArcCache::QueueOf(Where where) {
  switch (where) {
    case Where::kT1:
      return t1_;
    case Where::kT2:
      return t2_;
    case Where::kB1:
      return b1_;
    case Where::kB2:
      return b2_;
  }
  return t1_;
}

uint64_t& ArcCache::OccupiedOf(Where where) {
  switch (where) {
    case Where::kT1:
      return t1_occ_;
    case Where::kT2:
      return t2_occ_;
    case Where::kB1:
      return b1_occ_;
    case Where::kB2:
      return b2_occ_;
  }
  return t1_occ_;
}

void ArcCache::NotifyDemotion(const Entry& entry, bool promoted) {
  if (demotion_listener_) {
    DemotionEvent ev;
    ev.id = entry.id;
    ev.enter_time = entry.stage_enter_time;
    ev.leave_time = clock();
    ev.promoted = promoted;
    demotion_listener_(ev);
  }
}

void ArcCache::Remove(uint64_t id) {
  auto it = table_.find(id);
  if (it == table_.end()) {
    return;
  }
  Entry& e = it->second;
  if (IsResident(e)) {
    EvictResident(&e, /*ghost=*/nullptr, /*explicit_delete=*/true);
  } else {
    DropGhost(&e);
  }
}

void ArcCache::EvictResident(Entry* entry, Queue* ghost, bool explicit_delete) {
  EvictionEvent ev;
  ev.id = entry->id;
  ev.size = entry->size;
  ev.access_count = entry->hits;
  ev.insert_time = entry->insert_time;
  ev.last_access_time = entry->last_access_time;
  ev.evict_time = clock();
  ev.explicit_delete = explicit_delete;
  QueueOf(entry->where).Remove(entry);
  OccupiedOf(entry->where) -= entry->size;
  SubOccupied(entry->size);
  if (entry->where == Where::kT1) {
    NotifyDemotion(*entry, /*promoted=*/false);
  }
  if (ghost != nullptr) {
    const Where ghost_where = ghost == &b1_ ? Where::kB1 : Where::kB2;
    entry->where = ghost_where;
    ghost->PushFront(entry);
    OccupiedOf(ghost_where) += entry->size;
  } else {
    table_.erase(entry->id);
  }
  NotifyEviction(ev);
}

void ArcCache::DropGhost(Entry* entry) {
  QueueOf(entry->where).Remove(entry);
  OccupiedOf(entry->where) -= entry->size;
  table_.erase(entry->id);
}

void ArcCache::Replace(bool requested_in_b2) {
  const bool demote_t1 =
      !t1_.empty() &&
      (static_cast<double>(t1_occ_) > p_ ||
       (requested_in_b2 && static_cast<double>(t1_occ_) >= p_ && p_ > 0.0) || t2_.empty());
  if (demote_t1 && !t1_.empty()) {
    EvictResident(t1_.Back(), &b1_, /*explicit_delete=*/false);
  } else if (!t2_.empty()) {
    EvictResident(t2_.Back(), &b2_, /*explicit_delete=*/false);
  } else if (!t1_.empty()) {
    EvictResident(t1_.Back(), &b1_, /*explicit_delete=*/false);
  }
}

bool ArcCache::Access(const Request& req) {
  const uint64_t need = SizeOf(req);
  const double c = static_cast<double>(capacity());
  auto it = table_.find(req.id);

  if (it != table_.end() && IsResident(it->second)) {
    Entry& e = it->second;
    ++e.hits;
    e.last_access_time = clock();
    if (e.where == Where::kT1) {
      NotifyDemotion(e, /*promoted=*/true);
      t1_.Remove(&e);
      t1_occ_ -= e.size;
      e.where = Where::kT2;
      t2_.PushFront(&e);
      t2_occ_ += e.size;
    } else {
      t2_.MoveToFront(&e);
    }
    if (!count_based() && e.size != need) {
      t2_occ_ -= e.size;
      SubOccupied(e.size);
      e.size = need;
      t2_occ_ += e.size;
      AddOccupied(e.size);
      while (occupied() > capacity() && (!t1_.empty() || !t2_.empty())) {
        Replace(false);
      }
    }
    return true;
  }

  if (need > capacity()) {
    return false;
  }

  bool into_t2 = false;
  if (it != table_.end() && it->second.where == Where::kB1) {
    // Ghost hit in B1: the recency side was too small — grow p.
    const double delta =
        std::max(1.0, static_cast<double>(b2_occ_) / std::max<double>(b1_occ_, 1.0));
    p_ = std::min(p_ + delta, c);
    DropGhost(&it->second);
    while (occupied() + need > capacity()) {
      Replace(/*requested_in_b2=*/false);
    }
    into_t2 = true;
  } else if (it != table_.end() && it->second.where == Where::kB2) {
    const double delta =
        std::max(1.0, static_cast<double>(b1_occ_) / std::max<double>(b2_occ_, 1.0));
    p_ = std::max(p_ - delta, 0.0);
    DropGhost(&it->second);
    while (occupied() + need > capacity()) {
      Replace(/*requested_in_b2=*/true);
    }
    into_t2 = true;
  } else {
    // Complete miss: Case IV of the ARC paper.
    const uint64_t l1 = t1_occ_ + b1_occ_;
    const uint64_t total = l1 + t2_occ_ + b2_occ_;
    if (l1 + need > capacity()) {
      if (t1_occ_ + need <= capacity()) {
        while (!b1_.empty() && t1_occ_ + b1_occ_ + need > capacity()) {
          DropGhost(b1_.Back());
        }
        while (occupied() + need > capacity()) {
          Replace(false);
        }
      } else {
        // B1 is empty and T1 fills the cache: evict T1 LRU outright.
        while (occupied() + need > capacity() && !t1_.empty()) {
          EvictResident(t1_.Back(), /*ghost=*/nullptr, /*explicit_delete=*/false);
        }
      }
    } else if (total + need > capacity()) {
      // The directory (T1+T2+B1+B2) is capped at 2c entries of history.
      while (!b2_.empty() &&
             t1_occ_ + t2_occ_ + b1_occ_ + b2_occ_ + need > 2 * capacity()) {
        DropGhost(b2_.Back());
      }
      while (occupied() + need > capacity()) {
        Replace(false);
      }
    }
  }

  Entry& e = table_[req.id];
  e.id = req.id;
  e.size = need;
  e.hits = 0;
  e.insert_time = clock();
  e.stage_enter_time = clock();
  e.last_access_time = clock();
  if (into_t2) {
    e.where = Where::kT2;
    t2_.PushFront(&e);
    t2_occ_ += need;
  } else {
    e.where = Where::kT1;
    t1_.PushFront(&e);
    t1_occ_ += need;
  }
  AddOccupied(need);
  return false;
}

}  // namespace s3fifo
