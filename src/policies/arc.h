// ARC (Megiddo & Modha, FAST'03): two resident LRU queues (T1 recency, T2
// frequency) and two ghost LRU queues (B1, B2) remembering recently evicted
// ids; the T1/T2 target split p adapts on ghost hits. The four queues and
// the REPLACE rule follow the original paper's Figure 4 pseudocode.
#ifndef SRC_POLICIES_ARC_H_
#define SRC_POLICIES_ARC_H_

#include <unordered_map>

#include "src/core/cache.h"
#include "src/core/demotion.h"
#include "src/util/intrusive_list.h"

namespace s3fifo {

class ArcCache : public Cache {
 public:
  explicit ArcCache(const CacheConfig& config);

  bool Contains(uint64_t id) const override;
  void Remove(uint64_t id) override;
  std::string Name() const override { return "arc"; }

  // Demotion instrumentation (§6.1): entering T1 starts the probationary
  // stage; promoted=true on a T1 hit (move to T2), false on T1 -> B1.
  void set_demotion_listener(DemotionListener listener) {
    demotion_listener_ = std::move(listener);
  }

  // Current adaptive T1 target, in units (§6.1 discusses the value ARC picks).
  double target_t1() const { return p_; }

 private:
  enum class Where : uint8_t { kT1, kT2, kB1, kB2 };

  struct Entry {
    uint64_t id = 0;
    uint64_t size = 1;
    uint32_t hits = 0;
    Where where = Where::kT1;
    uint64_t insert_time = 0;
    uint64_t stage_enter_time = 0;  // when it entered T1 (for demotion events)
    uint64_t last_access_time = 0;
    ListHook hook;
  };
  using Queue = IntrusiveList<Entry, &Entry::hook>;

  bool Access(const Request& req) override;
  bool IsResident(const Entry& e) const {
    return e.where == Where::kT1 || e.where == Where::kT2;
  }
  // The REPLACE rule: demote T1 LRU to B1, or T2 LRU to B2.
  void Replace(bool requested_in_b2);
  // Moves a resident entry to a ghost queue (fires the eviction event) or
  // drops it entirely (ghost == nullptr).
  void EvictResident(Entry* entry, Queue* ghost, bool explicit_delete);
  void DropGhost(Entry* entry);
  void NotifyDemotion(const Entry& entry, bool promoted);

  Queue& QueueOf(Where where);
  uint64_t& OccupiedOf(Where where);

  std::unordered_map<uint64_t, Entry> table_;
  Queue t1_, t2_, b1_, b2_;
  uint64_t t1_occ_ = 0, t2_occ_ = 0, b1_occ_ = 0, b2_occ_ = 0;  // in units
  double p_ = 0.0;
  DemotionListener demotion_listener_;
};

}  // namespace s3fifo

#endif  // SRC_POLICIES_ARC_H_
