#include "src/policies/belady.h"

#include "src/util/params.h"

namespace s3fifo {

BeladyCache::BeladyCache(const CacheConfig& config) : Cache(config) {
  bypass_never_ = Params(config.params).GetBool("bypass_never", false);
}

bool BeladyCache::Contains(uint64_t id) const { return table_.count(id) != 0; }

void BeladyCache::Remove(uint64_t id) { RemoveById(id, /*explicit_delete=*/true); }

void BeladyCache::RemoveById(uint64_t id, bool explicit_delete) {
  auto it = table_.find(id);
  if (it == table_.end()) {
    return;
  }
  const Entry& e = it->second;
  EvictionEvent ev;
  ev.id = id;
  ev.size = e.size;
  ev.access_count = e.hits;
  ev.insert_time = e.insert_time;
  ev.last_access_time = e.last_access_time;
  ev.evict_time = clock();
  ev.explicit_delete = explicit_delete;
  order_.erase({e.next_access, id});
  SubOccupied(e.size);
  table_.erase(it);
  NotifyEviction(ev);
}

void BeladyCache::EvictFarthest() {
  if (order_.empty()) {
    return;
  }
  RemoveById(std::prev(order_.end())->second, /*explicit_delete=*/false);
}

bool BeladyCache::Access(const Request& req) {
  const uint64_t need = SizeOf(req);
  auto it = table_.find(req.id);
  if (it != table_.end()) {
    Entry& e = it->second;
    order_.erase({e.next_access, req.id});
    ++e.hits;
    e.last_access_time = clock();
    e.next_access = req.next_access;
    if (!count_based() && e.size != need) {
      SubOccupied(e.size);
      e.size = need;
      AddOccupied(e.size);
    }
    order_.insert({e.next_access, req.id});
    while (occupied() > capacity() && !order_.empty()) {
      EvictFarthest();
    }
    return true;
  }
  if (need > capacity()) {
    return false;
  }
  // Optional refinement (bypass_never): an object never requested again need
  // not be admitted (it cannot produce a hit). Off by default — classic OPT
  // admits on every miss, which is what the frequency-at-eviction analysis
  // of Fig. 4 assumes.
  if (bypass_never_ && req.next_access == kNeverAccessed) {
    return false;
  }
  while (occupied() + need > capacity()) {
    EvictFarthest();
  }
  Entry e;
  e.size = need;
  e.insert_time = clock();
  e.last_access_time = clock();
  e.next_access = req.next_access;
  table_.emplace(req.id, e);
  order_.insert({e.next_access, req.id});
  AddOccupied(need);
  return false;
}

}  // namespace s3fifo
