// Belady / OPT / MIN: the offline-optimal policy that evicts the resident
// object whose next request is farthest in the future. Requires the trace to
// be annotated with next-access indices (AnnotateNextAccess); the simulator
// enforces this via RequiresNextAccess().
//
// Used by the paper for the frequency-at-eviction analysis (Fig. 4) and as
// the efficiency upper bound in tests.
#ifndef SRC_POLICIES_BELADY_H_
#define SRC_POLICIES_BELADY_H_

#include <set>
#include <unordered_map>

#include "src/core/cache.h"

namespace s3fifo {

class BeladyCache : public Cache {
 public:
  explicit BeladyCache(const CacheConfig& config);

  bool Contains(uint64_t id) const override;
  void Remove(uint64_t id) override;
  std::string Name() const override { return "belady"; }
  bool RequiresNextAccess() const override { return true; }

 private:
  struct Entry {
    uint64_t size = 1;
    uint32_t hits = 0;
    uint64_t insert_time = 0;
    uint64_t last_access_time = 0;
    uint64_t next_access = kNeverAccessed;
  };
  // (next_access, id): rbegin() = farthest-future victim.
  using VictimKey = std::pair<uint64_t, uint64_t>;

  bool Access(const Request& req) override;
  void EvictFarthest();
  void RemoveById(uint64_t id, bool explicit_delete);

  bool bypass_never_ = false;  // param bypass_never: skip admission of
                               // never-reused objects (Belady with admission)
  std::unordered_map<uint64_t, Entry> table_;
  std::set<VictimKey> order_;
};

}  // namespace s3fifo

#endif  // SRC_POLICIES_BELADY_H_
