#include "src/policies/blru.h"

#include <algorithm>

#include "src/util/params.h"

namespace s3fifo {
namespace {

uint64_t FilterPeriod(const CacheConfig& config) {
  const Params params(config.params);
  const double ratio = params.GetDouble("filter_ratio", 1.0);
  const uint64_t entries =
      config.count_based ? config.capacity : std::max<uint64_t>(config.capacity / 4096, 16);
  return std::max<uint64_t>(static_cast<uint64_t>(entries * ratio), 16);
}

}  // namespace

BLruCache::BLruCache(const CacheConfig& config)
    : Cache(config),
      filter_(FilterPeriod(config), Params(config.params).GetDouble("fp_rate", 0.001)) {}

bool BLruCache::Contains(uint64_t id) const { return table_.count(id) != 0; }

void BLruCache::Remove(uint64_t id) {
  auto it = table_.find(id);
  if (it != table_.end()) {
    RemoveEntry(&it->second, /*explicit_delete=*/true);
  }
}

void BLruCache::RemoveEntry(Entry* entry, bool explicit_delete) {
  EvictionEvent ev;
  ev.id = entry->id;
  ev.size = entry->size;
  ev.access_count = entry->hits;
  ev.insert_time = entry->insert_time;
  ev.last_access_time = entry->last_access_time;
  ev.evict_time = clock();
  ev.explicit_delete = explicit_delete;
  queue_.Remove(entry);
  SubOccupied(entry->size);
  table_.erase(entry->id);
  NotifyEviction(ev);
}

void BLruCache::EvictOne() {
  if (Entry* victim = queue_.Back()) {
    RemoveEntry(victim, /*explicit_delete=*/false);
  }
}

bool BLruCache::Access(const Request& req) {
  const uint64_t need = SizeOf(req);
  auto it = table_.find(req.id);
  if (it != table_.end()) {
    Entry& e = it->second;
    ++e.hits;
    e.last_access_time = clock();
    queue_.MoveToFront(&e);
    if (!count_based() && e.size != need) {
      SubOccupied(e.size);
      e.size = need;
      AddOccupied(e.size);
      while (occupied() > capacity() && !queue_.empty()) {
        EvictOne();
      }
    }
    return true;
  }
  // Admission: only ids seen before (still remembered by the filter) are
  // cached; first-timers are merely recorded.
  if (!filter_.Contains(req.id)) {
    filter_.Insert(req.id);
    return false;
  }
  if (need > capacity()) {
    return false;
  }
  while (occupied() + need > capacity()) {
    EvictOne();
  }
  Entry& e = table_[req.id];
  e.id = req.id;
  e.size = need;
  e.insert_time = clock();
  e.last_access_time = clock();
  queue_.PushFront(&e);
  AddOccupied(need);
  return false;
}

}  // namespace s3fifo
