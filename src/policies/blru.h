// B-LRU: Bloom-filter-admission LRU (paper §5.2). The first request to an
// object only records it in a rotating Bloom filter; the object is cached
// only when requested again while still remembered. Rejects all one-hit
// wonders — at the cost of every object's second request missing, which is
// why the paper finds it worse than LRU on most traces.
//
// Params: filter_ratio=1.0 (filter rotation period as a multiple of the
// cache's object capacity), fp_rate=0.001.
#ifndef SRC_POLICIES_BLRU_H_
#define SRC_POLICIES_BLRU_H_

#include <unordered_map>

#include "src/core/cache.h"
#include "src/util/bloom_filter.h"
#include "src/util/intrusive_list.h"

namespace s3fifo {

class BLruCache : public Cache {
 public:
  explicit BLruCache(const CacheConfig& config);

  bool Contains(uint64_t id) const override;
  void Remove(uint64_t id) override;
  std::string Name() const override { return "blru"; }

 private:
  struct Entry {
    uint64_t id = 0;
    uint64_t size = 1;
    uint32_t hits = 0;
    uint64_t insert_time = 0;
    uint64_t last_access_time = 0;
    ListHook hook;
  };

  bool Access(const Request& req) override;
  void EvictOne();
  void RemoveEntry(Entry* entry, bool explicit_delete);

  RotatingBloomFilter filter_;
  std::unordered_map<uint64_t, Entry> table_;
  IntrusiveList<Entry, &Entry::hook> queue_;
};

}  // namespace s3fifo

#endif  // SRC_POLICIES_BLRU_H_
