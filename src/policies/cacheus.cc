#include "src/policies/cacheus.h"

#include <algorithm>
#include <cmath>

namespace s3fifo {

CacheusCache::CacheusCache(const CacheConfig& config)
    : LeCarCache(config), adapt_rng_(config.seed ^ 0x5bd1e995) {
  const uint64_t entries =
      config.count_based ? config.capacity : std::max<uint64_t>(config.capacity / 4096, 16);
  window_ = std::max<uint64_t>(entries, 64);
  // CACHEUS starts from a learning rate tied to the cache size.
  learning_rate_ = std::sqrt(2.0 * std::log(2.0) / static_cast<double>(window_));
  prev_learning_rate_ = learning_rate_;
}

bool CacheusCache::Access(const Request& req) {
  const bool hit = LeCarCache::Access(req);
  ++requests_in_window_;
  if (hit) {
    ++hits_in_window_;
  }
  if (requests_in_window_ >= window_) {
    MaybeAdaptLearningRate();
    requests_in_window_ = 0;
    hits_in_window_ = 0;
  }
  return hit;
}

void CacheusCache::MaybeAdaptLearningRate() {
  const double hit_rate =
      static_cast<double>(hits_in_window_) / static_cast<double>(requests_in_window_);
  const double delta_hr = hit_rate - prev_hit_rate_;
  const double delta_lr = learning_rate_ - prev_learning_rate_;
  prev_learning_rate_ = learning_rate_;

  if (delta_lr != 0.0 && delta_hr != 0.0) {
    // Sign-of-gradient step: keep moving the learning rate in the direction
    // that improved the hit rate.
    lr_direction_ = (delta_hr / delta_lr) > 0 ? 1.0 : -1.0;
    learning_rate_ += lr_direction_ * std::abs(learning_rate_ * delta_hr / hit_rate);
    stagnant_windows_ = 0;
  } else if (hit_rate <= prev_hit_rate_) {
    if (++stagnant_windows_ >= 10) {
      // Plateaued at a poor rate: random restart (CACHEUS §4.3).
      learning_rate_ = adapt_rng_.NextDouble();
      stagnant_windows_ = 0;
    }
  }
  learning_rate_ = std::clamp(learning_rate_, 1e-3, 1.0);
  prev_hit_rate_ = hit_rate;
}

}  // namespace s3fifo
