// CACHEUS (Rodriguez et al., FAST'21), simplified: LeCaR's two-expert regret
// framework with CACHEUS's key improvement — a self-tuning, hit-rate-driven
// learning rate — instead of LeCaR's fixed 0.45.
//
// Simplification (documented in DESIGN.md): the full CACHEUS uses SR-LRU and
// CR-LFU experts; we keep plain LRU/LFU experts. The paper under
// reproduction finds CACHEUS "often less competitive than the traditional
// [algorithms]" (§5.2), a conclusion this variant preserves.
//
// The adaptive schedule follows the CACHEUS paper: the learning rate is
// reconsidered every `window` requests (window = cache size in objects); if
// the hit rate improved, keep direction and magnitude; if it degraded,
// reverse or randomise; if unchanged for too long, reset.
#ifndef SRC_POLICIES_CACHEUS_H_
#define SRC_POLICIES_CACHEUS_H_

#include "src/policies/lecar.h"

namespace s3fifo {

class CacheusCache : public LeCarCache {
 public:
  explicit CacheusCache(const CacheConfig& config);

  std::string Name() const override { return "cacheus"; }

 protected:
  bool Access(const Request& req) override;

 private:
  void MaybeAdaptLearningRate();

  uint64_t window_;
  uint64_t requests_in_window_ = 0;
  uint64_t hits_in_window_ = 0;
  double prev_hit_rate_ = 0.0;
  double prev_learning_rate_ = 0.45;
  double lr_direction_ = 1.0;
  uint32_t stagnant_windows_ = 0;
  Rng adapt_rng_;
};

}  // namespace s3fifo

#endif  // SRC_POLICIES_CACHEUS_H_
