#include "src/policies/clock.h"

#include <algorithm>

#include "src/util/params.h"

namespace s3fifo {

ClockCache::ClockCache(const CacheConfig& config) : Cache(config) {
  const Params params(config.params);
  const uint64_t bits = std::clamp<uint64_t>(params.GetU64("bits", 1), 1, 8);
  max_ref_ = (1u << bits) - 1;
}

bool ClockCache::Contains(uint64_t id) const { return table_.Contains(id); }

void ClockCache::Remove(uint64_t id) {
  if (Entry* e = table_.Find(id)) {
    RemoveEntry(e, /*explicit_delete=*/true);
  }
}

void ClockCache::RemoveEntry(Entry* entry, bool explicit_delete) {
  EvictionEvent ev;
  ev.id = entry->id;
  ev.size = entry->size;
  ev.access_count = entry->hits;
  ev.insert_time = entry->insert_time;
  ev.last_access_time = entry->last_access_time;
  ev.evict_time = clock();
  ev.explicit_delete = explicit_delete;
  queue_.Remove(entry);
  SubOccupied(entry->size);
  table_.Erase(entry->id);
  NotifyEviction(ev);
}

void ClockCache::EvictOne() {
  // Reinsert referenced victims (decrementing), evict the first unreferenced
  // one. Terminates: every reinsertion decrements a counter.
  while (Entry* victim = queue_.Back()) {
    if (victim->ref > 0) {
      --victim->ref;
      queue_.MoveToFront(victim);
    } else {
      RemoveEntry(victim, /*explicit_delete=*/false);
      return;
    }
  }
}

bool ClockCache::Access(const Request& req) {
  const uint64_t need = SizeOf(req);
  if (Entry* found = table_.Find(req.id)) {
    Entry& e = *found;
    ++e.hits;
    e.ref = std::min(e.ref + 1, max_ref_);
    e.last_access_time = clock();
    if (!count_based() && e.size != need) {
      SubOccupied(e.size);
      e.size = need;
      AddOccupied(e.size);
      while (occupied() > capacity() && !queue_.empty()) {
        EvictOne();
      }
    }
    return true;
  }
  if (need > capacity()) {
    return false;
  }
  while (occupied() + need > capacity()) {
    EvictOne();
  }
  Entry& e = *table_.Emplace(req.id);
  e.id = req.id;
  e.size = need;
  e.insert_time = clock();
  e.last_access_time = clock();
  queue_.PushFront(&e);
  AddOccupied(need);
  return false;
}

}  // namespace s3fifo
