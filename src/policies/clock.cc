#include "src/policies/clock.h"

#include <algorithm>

#include "src/util/params.h"

namespace s3fifo {

namespace {
// Tail entries examined per gather in the batched eviction sweep. 16 keeps
// the survivor mask in one register and the entry pointers in one stack line.
constexpr int kSweepBatch = 16;
}  // namespace

ClockCache::ClockCache(const CacheConfig& config) : Cache(config) {
  const Params params(config.params);
  const uint64_t bits = std::clamp<uint64_t>(params.GetU64("bits", 1), 1, 8);
  max_ref_ = (1u << bits) - 1;
}

bool ClockCache::Contains(uint64_t id) const { return table_.Contains(id); }

void ClockCache::Remove(uint64_t id) {
  if (Entry* e = table_.Find(id)) {
    RemoveEntry(e, /*explicit_delete=*/true);
  }
}

void ClockCache::RemoveEntry(Entry* entry, bool explicit_delete) {
  EvictionEvent ev;
  ev.id = entry->id;
  ev.size = entry->size;
  ev.access_count = entry->hits;
  ev.insert_time = entry->insert_time;
  ev.last_access_time = entry->last_access_time;
  ev.evict_time = clock();
  ev.explicit_delete = explicit_delete;
  queue_.Remove(entry);
  SubOccupied(entry->size);
  table_.Erase(entry->id);
  NotifyEviction(ev);
}

void ClockCache::EvictOne() {
  // Reinsert referenced victims (decrementing), evict the first unreferenced
  // one. Terminates: every reinsertion decrements a counter.
  //
  // The sweep is batched: gather the referenced bits of up to kSweepBatch
  // tail entries into a mask (reads only), find the first unreferenced entry
  // with ctz, then decrement the survivors before it and rotate them to the
  // head with one segment splice. Decision-for-decision identical to moving
  // entries one at a time.
  while (!queue_.empty()) {
    Entry* chain[kSweepBatch];
    uint32_t referenced = 0;
    int n = 0;
    for (Entry* e = queue_.Back(); e != nullptr && n < kSweepBatch; e = queue_.Newer(e)) {
      chain[n] = e;
      referenced |= static_cast<uint32_t>(e->ref > 0) << n;
      ++n;
      // The victim is the first unreferenced entry, so bits past it can never
      // matter to the ctz below — stop gathering. Keeps the common case (tail
      // immediately evictable) at one node visit instead of kSweepBatch hops.
      if (e->ref == 0) {
        break;
      }
    }
    const uint32_t zeros = ~referenced & ((1u << n) - 1u);
    const int victim = zeros != 0 ? __builtin_ctz(zeros) : n;
    for (int k = 0; k < victim; ++k) {
      --chain[k]->ref;
    }
    if (victim > 0) {
      queue_.MoveSegmentToFront(chain[victim - 1], chain[0]);
    }
    if (victim < n) {
      RemoveEntry(chain[victim], /*explicit_delete=*/false);
      return;
    }
  }
}

bool ClockCache::Access(const Request& req) {
  const uint64_t need = SizeOf(req);
  if (Entry* found = table_.Find(req.id)) {
    Entry& e = *found;
    ++e.hits;
    e.ref = std::min(e.ref + 1, max_ref_);
    e.last_access_time = clock();
    if (!count_based() && e.size != need) {
      SubOccupied(e.size);
      e.size = need;
      AddOccupied(e.size);
      while (occupied() > capacity() && !queue_.empty()) {
        EvictOne();
      }
    }
    return true;
  }
  if (need > capacity()) {
    return false;
  }
  while (occupied() + need > capacity()) {
    EvictOne();
  }
  Entry& e = *table_.Emplace(req.id);
  e.id = req.id;
  e.size = need;
  e.insert_time = clock();
  e.last_access_time = clock();
  queue_.PushFront(&e);
  AddOccupied(need);
  return false;
}

void ClockCache::AccessBatch(const TraceView& view, uint64_t begin, uint64_t end, uint8_t* hits,
                             uint32_t prefetch_distance) {
  BatchLoop<ClockCache>(view, begin, end, hits, prefetch_distance);
}

}  // namespace s3fifo
