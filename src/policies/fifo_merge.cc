#include "src/policies/fifo_merge.h"

#include <algorithm>

#include "src/util/params.h"

namespace s3fifo {

FifoMergeCache::FifoMergeCache(const CacheConfig& config) : Cache(config) {
  const Params params(config.params);
  segment_objects_ = params.GetU64("segment_objects", 0);
  if (segment_objects_ == 0) {
    const uint64_t entries =
        config.count_based ? capacity() : std::max<uint64_t>(capacity() / 4096, 64);
    segment_objects_ = std::max<uint64_t>(entries / 64, 8);
  }
  merge_factor_ =
      static_cast<uint32_t>(std::clamp<uint64_t>(params.GetU64("merge_factor", 4), 2, 16));
}

bool FifoMergeCache::Contains(uint64_t id) const {
  auto it = table_.find(id);
  return it != table_.end() && !it->second->dead;
}

void FifoMergeCache::FireEviction(const Entry& e, bool explicit_delete) {
  EvictionEvent ev;
  ev.id = e.id;
  ev.size = e.size;
  ev.access_count = e.hits;
  ev.insert_time = e.insert_time;
  ev.last_access_time = e.last_access_time;
  ev.evict_time = clock();
  ev.explicit_delete = explicit_delete;
  NotifyEviction(ev);
}

void FifoMergeCache::Remove(uint64_t id) {
  auto it = table_.find(id);
  if (it == table_.end() || it->second->dead) {
    return;
  }
  Entry* e = it->second;
  // Log-structured store: the slot is tombstoned; space is reclaimed when
  // the segment is merged (paper §4.2 makes the same point about deletions
  // in ring buffers).
  e->dead = true;
  SubOccupied(e->size);
  FireEviction(*e, /*explicit_delete=*/true);
  table_.erase(it);
}

void FifoMergeCache::AppendToActive(std::unique_ptr<Entry> entry) {
  if (segments_.empty() || segments_.back().size() >= segment_objects_) {
    segments_.emplace_back();
    segments_.back().reserve(segment_objects_);
  }
  table_[entry->id] = entry.get();
  segments_.back().push_back(std::move(entry));
}

void FifoMergeCache::MergeEvict() {
  if (segments_.empty()) {
    return;
  }
  const uint32_t merge_n =
      static_cast<uint32_t>(std::min<size_t>(merge_factor_, segments_.size()));
  // Gather live entries from the oldest merge_n segments.
  std::vector<std::unique_ptr<Entry>> live;
  for (uint32_t s = 0; s < merge_n; ++s) {
    for (auto& e : segments_.front()) {
      if (!e->dead) {
        live.push_back(std::move(e));
      }
    }
    segments_.pop_front();
  }
  // Retain the top 1/merge_factor by frequency (recency as tie break).
  std::sort(live.begin(), live.end(), [](const auto& a, const auto& b) {
    if (a->freq != b->freq) {
      return a->freq > b->freq;
    }
    return a->last_access_time > b->last_access_time;
  });
  size_t keep = std::min<size_t>(live.size() / merge_factor_, segment_objects_);
  if (merge_n < merge_factor_) {
    keep = 0;  // cannot retain anything when there is nothing to merge into
  }
  Segment retained;
  retained.reserve(keep);
  for (size_t i = 0; i < live.size(); ++i) {
    if (i < keep) {
      live[i]->freq = 0;  // frequency decays across merges
      retained.push_back(std::move(live[i]));
    } else {
      SubOccupied(live[i]->size);
      FireEviction(*live[i], /*explicit_delete=*/false);
      table_.erase(live[i]->id);
    }
  }
  if (!retained.empty()) {
    segments_.push_front(std::move(retained));
  }
}

bool FifoMergeCache::Access(const Request& req) {
  const uint64_t need = SizeOf(req);
  auto it = table_.find(req.id);
  if (it != table_.end() && !it->second->dead) {
    Entry& e = *it->second;
    ++e.freq;
    ++e.hits;
    e.last_access_time = clock();
    if (!count_based() && e.size != need) {
      SubOccupied(e.size);
      e.size = need;
      AddOccupied(e.size);
      while (occupied() > capacity() && !segments_.empty()) {
        MergeEvict();
      }
    }
    return true;
  }
  if (need > capacity()) {
    return false;
  }
  while (occupied() + need > capacity()) {
    MergeEvict();
  }
  auto e = std::make_unique<Entry>();
  e->id = req.id;
  e->size = need;
  e->insert_time = clock();
  e->last_access_time = clock();
  AddOccupied(need);
  AppendToActive(std::move(e));
  return false;
}

}  // namespace s3fifo
