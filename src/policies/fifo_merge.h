// FIFO-Merge (Segcache, Yang, Yue & Vinayak, NSDI'21): objects are appended
// to fixed-size segments in FIFO order. When space is needed, the
// `merge_factor` oldest segments are merged into one retained segment: the
// most frequently referenced ~1/merge_factor of their live objects survive
// (frequencies then reset), the rest are evicted. No ghost queue, no
// per-hit queue mutation — and, as the paper notes (§5.2/§5.3), no quick
// demotion and no scan resistance.
//
// Params: segment_objects=0 (0 = capacity/64, min 8), merge_factor=4.
#ifndef SRC_POLICIES_FIFO_MERGE_H_
#define SRC_POLICIES_FIFO_MERGE_H_

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/cache.h"

namespace s3fifo {

class FifoMergeCache : public Cache {
 public:
  explicit FifoMergeCache(const CacheConfig& config);

  bool Contains(uint64_t id) const override;
  void Remove(uint64_t id) override;
  std::string Name() const override { return "fifo-merge"; }

 private:
  struct Entry {
    uint64_t id = 0;
    uint64_t size = 1;
    uint32_t freq = 0;  // references since (re)insertion into a segment
    uint32_t hits = 0;
    bool dead = false;  // tombstoned by Remove()
    uint64_t insert_time = 0;
    uint64_t last_access_time = 0;
  };
  using Segment = std::vector<std::unique_ptr<Entry>>;

  bool Access(const Request& req) override;
  // Merges the oldest merge_factor segments, freeing space.
  void MergeEvict();
  void FireEviction(const Entry& e, bool explicit_delete);
  void AppendToActive(std::unique_ptr<Entry> entry);

  uint64_t segment_objects_;
  uint32_t merge_factor_;
  std::deque<Segment> segments_;  // front = oldest
  std::unordered_map<uint64_t, Entry*> table_;
};

}  // namespace s3fifo

#endif  // SRC_POLICIES_FIFO_MERGE_H_
