#include "src/policies/hyperbolic.h"

#include <algorithm>

#include "src/util/params.h"

namespace s3fifo {

HyperbolicCache::HyperbolicCache(const CacheConfig& config) : Cache(config), rng_(config.seed) {
  const Params params(config.params);
  assoc_ = static_cast<uint32_t>(std::clamp<uint64_t>(params.GetU64("assoc", 32), 2, 256));
}

double HyperbolicCache::Priority(const Entry& e) const {
  const double age = static_cast<double>(clock() - e.insert_time) + 1.0;
  return static_cast<double>(e.refs) / (age * static_cast<double>(e.size));
}

bool HyperbolicCache::Contains(uint64_t id) const { return table_.count(id) != 0; }

void HyperbolicCache::Remove(uint64_t id) { RemoveById(id, /*explicit_delete=*/true); }

void HyperbolicCache::RemoveById(uint64_t id, bool explicit_delete) {
  auto it = table_.find(id);
  if (it == table_.end()) {
    return;
  }
  Entry& e = it->second;
  EvictionEvent ev;
  ev.id = id;
  ev.size = e.size;
  ev.access_count = e.hits;
  ev.insert_time = e.insert_time;
  ev.last_access_time = e.last_access_time;
  ev.evict_time = clock();
  ev.explicit_delete = explicit_delete;
  const size_t slot = e.slot;
  ids_[slot] = ids_.back();
  table_[ids_[slot]].slot = slot;
  ids_.pop_back();
  SubOccupied(e.size);
  table_.erase(id);
  NotifyEviction(ev);
}

void HyperbolicCache::EvictOne() {
  if (ids_.empty()) {
    return;
  }
  uint64_t victim = ids_[rng_.NextBounded(ids_.size())];
  double victim_priority = Priority(table_.at(victim));
  for (uint32_t i = 1; i < assoc_ && i < ids_.size(); ++i) {
    const uint64_t cand = ids_[rng_.NextBounded(ids_.size())];
    const double p = Priority(table_.at(cand));
    if (p < victim_priority) {
      victim = cand;
      victim_priority = p;
    }
  }
  RemoveById(victim, /*explicit_delete=*/false);
}

bool HyperbolicCache::Access(const Request& req) {
  const uint64_t need = SizeOf(req);
  auto it = table_.find(req.id);
  if (it != table_.end()) {
    Entry& e = it->second;
    ++e.refs;
    ++e.hits;
    e.last_access_time = clock();
    if (!count_based() && e.size != need) {
      SubOccupied(e.size);
      e.size = need;
      AddOccupied(e.size);
      while (occupied() > capacity() && !ids_.empty()) {
        EvictOne();
      }
    }
    return true;
  }
  if (need > capacity()) {
    return false;
  }
  while (occupied() + need > capacity()) {
    EvictOne();
  }
  Entry e;
  e.size = need;
  e.insert_time = clock();
  e.last_access_time = clock();
  e.slot = ids_.size();
  ids_.push_back(req.id);
  table_.emplace(req.id, e);
  AddOccupied(need);
  return false;
}

}  // namespace s3fifo
