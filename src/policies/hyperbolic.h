// Hyperbolic caching (Blankstein, Sen & Freedman, ATC'17): sampled eviction
// by lowest priority = total_references / time_in_cache (per byte in byte
// mode). An additional recency-free baseline in the comparison suite.
//
// Params: assoc=32.
#ifndef SRC_POLICIES_HYPERBOLIC_H_
#define SRC_POLICIES_HYPERBOLIC_H_

#include <unordered_map>
#include <vector>

#include "src/core/cache.h"
#include "src/util/rng.h"

namespace s3fifo {

class HyperbolicCache : public Cache {
 public:
  explicit HyperbolicCache(const CacheConfig& config);

  bool Contains(uint64_t id) const override;
  void Remove(uint64_t id) override;
  std::string Name() const override { return "hyperbolic"; }

 private:
  struct Entry {
    uint64_t size = 1;
    uint32_t refs = 1;
    uint32_t hits = 0;
    uint64_t insert_time = 0;
    uint64_t last_access_time = 0;
    size_t slot = 0;
  };

  bool Access(const Request& req) override;
  void EvictOne();
  void RemoveById(uint64_t id, bool explicit_delete);
  double Priority(const Entry& e) const;

  uint32_t assoc_;
  Rng rng_;
  std::unordered_map<uint64_t, Entry> table_;
  std::vector<uint64_t> ids_;
};

}  // namespace s3fifo

#endif  // SRC_POLICIES_HYPERBOLIC_H_
