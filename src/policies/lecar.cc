#include "src/policies/lecar.h"

#include <algorithm>
#include <cmath>

#include "src/util/params.h"

namespace s3fifo {
namespace {

uint64_t HistoryEntries(const CacheConfig& config) {
  return config.count_based ? std::max<uint64_t>(config.capacity, 1)
                            : std::max<uint64_t>(config.capacity / 4096, 16);
}

}  // namespace

LeCarCache::LeCarCache(const CacheConfig& config)
    : Cache(config),
      rng_(config.seed),
      h_lru_(HistoryEntries(config)),
      h_lfu_(HistoryEntries(config)) {
  const Params params(config.params);
  learning_rate_ = params.GetDouble("learning_rate", 0.45);
  const double base = params.GetDouble("discount_base", 0.005);
  discount_ = std::pow(base, 1.0 / static_cast<double>(HistoryEntries(config)));
}

bool LeCarCache::Contains(uint64_t id) const { return table_.count(id) != 0; }

void LeCarCache::Remove(uint64_t id) {
  auto it = table_.find(id);
  if (it != table_.end()) {
    RemoveEntry(&it->second, /*explicit_delete=*/true, /*history=*/-1);
  }
}

void LeCarCache::RemoveEntry(Entry* entry, bool explicit_delete, int history) {
  EvictionEvent ev;
  ev.id = entry->id;
  ev.size = entry->size;
  ev.access_count = entry->hits;
  ev.insert_time = entry->insert_time;
  ev.last_access_time = entry->last_access_time;
  ev.evict_time = clock();
  ev.explicit_delete = explicit_delete;
  lru_.Remove(entry);
  lfu_order_.erase(KeyOf(*entry));
  SubOccupied(entry->size);
  if (history >= 0) {
    History& h = history == 0 ? h_lru_ : h_lfu_;
    h.ids.Insert(entry->id);
    h.evict_time[entry->id] = clock();
    // The ghost queue expires ids silently; compact the timestamp map when
    // stale entries accumulate.
    if (h.evict_time.size() > 2 * h.ids.capacity() + 64) {
      for (auto iter = h.evict_time.begin(); iter != h.evict_time.end();) {
        iter = h.ids.Contains(iter->first) ? std::next(iter) : h.evict_time.erase(iter);
      }
    }
  }
  table_.erase(entry->id);
  NotifyEviction(ev);
}

void LeCarCache::EvictOne() {
  if (table_.empty()) {
    return;
  }
  const bool use_lru = rng_.NextDouble() < w_lru_;
  Entry* lru_victim = lru_.Back();
  Entry* lfu_victim =
      lfu_order_.empty() ? nullptr : &table_.at(std::get<2>(*lfu_order_.begin()));
  Entry* victim = use_lru ? lru_victim : lfu_victim;
  if (victim == nullptr) {
    victim = use_lru ? lfu_victim : lru_victim;
  }
  if (victim == nullptr) {
    return;
  }
  // If both experts would pick the same victim, no history attribution is
  // meaningful — record under the sampled expert anyway (as the reference
  // implementation does).
  RemoveEntry(victim, /*explicit_delete=*/false, use_lru ? 0 : 1);
}

void LeCarCache::ApplyPenalty(double& w_penalised, double& w_other, uint64_t evict_time) {
  const double age = static_cast<double>(clock() - evict_time);
  const double regret = std::pow(discount_, age);
  w_penalised *= std::exp(-learning_rate_ * regret);
  const double total = w_penalised + w_other;
  w_penalised /= total;
  w_other /= total;
  OnGhostPenalty();
}

bool LeCarCache::Access(const Request& req) {
  const uint64_t need = SizeOf(req);
  auto it = table_.find(req.id);
  if (it != table_.end()) {
    Entry& e = it->second;
    lfu_order_.erase(KeyOf(e));
    ++e.freq;
    ++e.hits;
    e.last_access_time = clock();
    lru_.MoveToFront(&e);
    if (!count_based() && e.size != need) {
      SubOccupied(e.size);
      e.size = need;
      AddOccupied(e.size);
    }
    lfu_order_.insert(KeyOf(e));
    while (occupied() > capacity() && !table_.empty()) {
      EvictOne();
    }
    return true;
  }

  // Ghost hits adjust expert weights before the insert.
  if (h_lru_.ids.Contains(req.id)) {
    ApplyPenalty(w_lru_, w_lfu_, h_lru_.evict_time[req.id]);
    h_lru_.ids.Remove(req.id);
    h_lru_.evict_time.erase(req.id);
  } else if (h_lfu_.ids.Contains(req.id)) {
    ApplyPenalty(w_lfu_, w_lru_, h_lfu_.evict_time[req.id]);
    h_lfu_.ids.Remove(req.id);
    h_lfu_.evict_time.erase(req.id);
  }

  if (need > capacity()) {
    return false;
  }
  while (occupied() + need > capacity()) {
    EvictOne();
  }
  Entry& e = table_[req.id];
  e.id = req.id;
  e.size = need;
  e.freq = 1;
  e.insert_time = clock();
  e.last_access_time = clock();
  lru_.PushFront(&e);
  lfu_order_.insert(KeyOf(e));
  AddOccupied(need);
  return false;
}

}  // namespace s3fifo
