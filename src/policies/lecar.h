// LeCaR (Vietri et al., HotStorage'18): regret-minimisation over two expert
// policies, LRU and LFU. Eviction draws an expert proportionally to learned
// weights; the victim's id enters that expert's ghost history, and a later
// miss on a ghost id applies a time-discounted multiplicative penalty to the
// expert that evicted it.
//
// Params: learning_rate=0.45, discount_base=0.005 (discount =
// discount_base^(1/N) per the original implementation).
#ifndef SRC_POLICIES_LECAR_H_
#define SRC_POLICIES_LECAR_H_

#include <set>
#include <unordered_map>

#include "src/core/cache.h"
#include "src/util/ghost_queue.h"
#include "src/util/intrusive_list.h"
#include "src/util/rng.h"

namespace s3fifo {

class LeCarCache : public Cache {
 public:
  explicit LeCarCache(const CacheConfig& config);

  bool Contains(uint64_t id) const override;
  void Remove(uint64_t id) override;
  std::string Name() const override { return "lecar"; }

  double weight_lru() const { return w_lru_; }

 protected:
  bool Access(const Request& req) override;

  // Hook for CACHEUS's adaptive learning rate.
  virtual void OnGhostPenalty() {}

  double learning_rate_ = 0.45;

 private:
  struct Entry {
    uint64_t id = 0;
    uint64_t size = 1;
    uint32_t freq = 1;  // total references (insert counts as 1), LFU metric
    uint32_t hits = 0;
    uint64_t insert_time = 0;
    uint64_t last_access_time = 0;
    ListHook lru_hook;
  };
  using VictimKey = std::tuple<uint32_t, uint64_t, uint64_t>;  // (freq, last, id)

  void EvictOne();
  void RemoveEntry(Entry* entry, bool explicit_delete, int history);  // -1 none, 0 lru, 1 lfu
  void ApplyPenalty(double& w_penalised, double& w_other, uint64_t evict_time);
  VictimKey KeyOf(const Entry& e) const { return {e.freq, e.last_access_time, e.id}; }

  double w_lru_ = 0.5;
  double w_lfu_ = 0.5;
  double discount_;
  Rng rng_;

  std::unordered_map<uint64_t, Entry> table_;
  IntrusiveList<Entry, &Entry::lru_hook> lru_;
  std::set<VictimKey> lfu_order_;

  struct History {
    GhostQueue ids;
    std::unordered_map<uint64_t, uint64_t> evict_time;
    explicit History(uint64_t cap) : ids(cap) {}
  };
  History h_lru_;
  History h_lfu_;
};

}  // namespace s3fifo

#endif  // SRC_POLICIES_LECAR_H_
