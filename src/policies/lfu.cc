#include "src/policies/lfu.h"

namespace s3fifo {

LfuCache::LfuCache(const CacheConfig& config) : Cache(config) {}

bool LfuCache::Contains(uint64_t id) const { return table_.count(id) != 0; }

void LfuCache::Remove(uint64_t id) { RemoveById(id, /*explicit_delete=*/true); }

void LfuCache::RemoveById(uint64_t id, bool explicit_delete) {
  auto it = table_.find(id);
  if (it == table_.end()) {
    return;
  }
  const Entry& e = it->second;
  EvictionEvent ev;
  ev.id = id;
  ev.size = e.size;
  ev.access_count = e.hits;
  ev.insert_time = e.insert_time;
  ev.last_access_time = e.last_access_time;
  ev.evict_time = clock();
  ev.explicit_delete = explicit_delete;
  order_.erase(KeyOf(id, e));
  SubOccupied(e.size);
  table_.erase(it);
  NotifyEviction(ev);
}

void LfuCache::EvictOne() {
  if (order_.empty()) {
    return;
  }
  const uint64_t victim = std::get<2>(*order_.begin());
  RemoveById(victim, /*explicit_delete=*/false);
}

bool LfuCache::Access(const Request& req) {
  const uint64_t need = SizeOf(req);
  auto it = table_.find(req.id);
  if (it != table_.end()) {
    Entry& e = it->second;
    order_.erase(KeyOf(req.id, e));
    ++e.hits;
    e.last_access_time = clock();
    if (!count_based() && e.size != need) {
      SubOccupied(e.size);
      e.size = need;
      AddOccupied(e.size);
    }
    order_.insert(KeyOf(req.id, e));
    while (occupied() > capacity() && !order_.empty()) {
      EvictOne();
    }
    return true;
  }
  if (need > capacity()) {
    return false;
  }
  while (occupied() + need > capacity()) {
    EvictOne();
  }
  Entry e;
  e.size = need;
  e.insert_time = clock();
  e.last_access_time = clock();
  table_.emplace(req.id, e);
  order_.insert(KeyOf(req.id, e));
  AddOccupied(need);
  return false;
}

}  // namespace s3fifo
