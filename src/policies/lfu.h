// Perfect LFU (no aging): evicts the least-frequently-used object, breaking
// ties by least recent access. O(log n) per miss via an ordered victim set.
#ifndef SRC_POLICIES_LFU_H_
#define SRC_POLICIES_LFU_H_

#include <set>
#include <unordered_map>

#include "src/core/cache.h"

namespace s3fifo {

class LfuCache : public Cache {
 public:
  explicit LfuCache(const CacheConfig& config);

  bool Contains(uint64_t id) const override;
  void Remove(uint64_t id) override;
  std::string Name() const override { return "lfu"; }

 protected:
  bool Access(const Request& req) override;

 private:
  struct Entry {
    uint64_t size = 1;
    uint32_t hits = 0;
    uint64_t insert_time = 0;
    uint64_t last_access_time = 0;
  };
  // (frequency, last_access, id): begin() is the eviction victim.
  using VictimKey = std::tuple<uint32_t, uint64_t, uint64_t>;

  void EvictOne();
  void RemoveById(uint64_t id, bool explicit_delete);
  VictimKey KeyOf(uint64_t id, const Entry& e) const {
    return {e.hits, e.last_access_time, id};
  }

  std::unordered_map<uint64_t, Entry> table_;
  std::set<VictimKey> order_;
};

}  // namespace s3fifo

#endif  // SRC_POLICIES_LFU_H_
