#include "src/policies/lhd.h"

#include <algorithm>

#include "src/util/params.h"

namespace s3fifo {

LhdCache::LhdCache(const CacheConfig& config) : Cache(config), rng_(config.seed) {
  const Params params(config.params);
  assoc_ = static_cast<uint32_t>(std::clamp<uint64_t>(params.GetU64("assoc", 32), 2, 256));
  num_classes_ =
      static_cast<uint32_t>(std::clamp<uint64_t>(params.GetU64("age_classes", 128), 8, 1024));
  ewma_ = std::clamp(params.GetDouble("ewma", 0.9), 0.0, 0.999);

  const uint64_t entries =
      config.count_based ? config.capacity : std::max<uint64_t>(config.capacity / 4096, 64);
  // Age classes linearly cover ~8x the nominal object lifetime (capacity
  // requests); ages beyond that saturate in the last class.
  uint64_t span = std::max<uint64_t>(8 * entries / num_classes_, 1);
  age_shift_ = 0;
  while ((1ULL << age_shift_) < span) {
    ++age_shift_;
  }
  reconfigure_period_ =
      std::max<uint64_t>(params.GetU64("reconfigure_factor", 16) * entries, 1024);

  hit_events_.assign(num_classes_, 0.0);
  evict_events_.assign(num_classes_, 0.0);
  // Optimistic initial densities favour young objects, mimicking LHD's
  // "explore" phase before statistics accumulate.
  density_.assign(num_classes_, 0.0);
  for (uint32_t i = 0; i < num_classes_; ++i) {
    density_[i] = 1.0 / static_cast<double>(i + 1);
  }
}

uint32_t LhdCache::AgeClassOf(uint64_t age) const {
  const uint64_t c = age >> age_shift_;
  return static_cast<uint32_t>(std::min<uint64_t>(c, num_classes_ - 1));
}

double LhdCache::HitDensity(const Entry& e) const {
  return density_[AgeClassOf(clock() - e.last_access_time)] / static_cast<double>(e.size);
}

void LhdCache::Reconfigure() {
  // hitDensity(a) = P(hit at age >= a) / E[remaining lifetime | age >= a],
  // computed as a suffix scan over the event counts (one bucket == one unit
  // of coarsened time).
  double cum_hits = 0.0;
  double cum_events = 0.0;
  double cum_lifetime = 0.0;
  for (uint32_t b = num_classes_; b-- > 0;) {
    cum_hits += hit_events_[b];
    cum_events += hit_events_[b] + evict_events_[b];
    cum_lifetime += cum_events;  // every event at age >= b lives through bucket b
    density_[b] = cum_lifetime > 0.0 ? cum_hits / cum_lifetime : 0.0;
  }
  for (uint32_t b = 0; b < num_classes_; ++b) {
    hit_events_[b] *= ewma_;
    evict_events_[b] *= ewma_;
  }
}

bool LhdCache::Contains(uint64_t id) const { return table_.count(id) != 0; }

void LhdCache::Remove(uint64_t id) { RemoveById(id, /*explicit_delete=*/true); }

void LhdCache::RemoveById(uint64_t id, bool explicit_delete) {
  auto it = table_.find(id);
  if (it == table_.end()) {
    return;
  }
  Entry& e = it->second;
  evict_events_[AgeClassOf(clock() - e.last_access_time)] += 1.0;
  EvictionEvent ev;
  ev.id = id;
  ev.size = e.size;
  ev.access_count = e.hits;
  ev.insert_time = e.insert_time;
  ev.last_access_time = e.last_access_time;
  ev.evict_time = clock();
  ev.explicit_delete = explicit_delete;
  const size_t slot = e.slot;
  ids_[slot] = ids_.back();
  table_[ids_[slot]].slot = slot;
  ids_.pop_back();
  SubOccupied(e.size);
  table_.erase(id);
  NotifyEviction(ev);
}

void LhdCache::EvictOne() {
  if (ids_.empty()) {
    return;
  }
  uint64_t victim = ids_[rng_.NextBounded(ids_.size())];
  double victim_density = HitDensity(table_.at(victim));
  for (uint32_t i = 1; i < assoc_ && i < ids_.size(); ++i) {
    const uint64_t cand = ids_[rng_.NextBounded(ids_.size())];
    const double d = HitDensity(table_.at(cand));
    if (d < victim_density) {
      victim = cand;
      victim_density = d;
    }
  }
  RemoveById(victim, /*explicit_delete=*/false);
}

bool LhdCache::Access(const Request& req) {
  if (++accesses_since_reconfigure_ >= reconfigure_period_) {
    Reconfigure();
    accesses_since_reconfigure_ = 0;
  }
  const uint64_t need = SizeOf(req);
  auto it = table_.find(req.id);
  if (it != table_.end()) {
    Entry& e = it->second;
    hit_events_[AgeClassOf(clock() - e.last_access_time)] += 1.0;
    ++e.hits;
    e.last_access_time = clock();
    if (!count_based() && e.size != need) {
      SubOccupied(e.size);
      e.size = need;
      AddOccupied(e.size);
      while (occupied() > capacity() && !ids_.empty()) {
        EvictOne();
      }
    }
    return true;
  }
  if (need > capacity()) {
    return false;
  }
  while (occupied() + need > capacity()) {
    EvictOne();
  }
  Entry e;
  e.size = need;
  e.insert_time = clock();
  e.last_access_time = clock();
  e.slot = ids_.size();
  ids_.push_back(req.id);
  table_.emplace(req.id, e);
  AddOccupied(need);
  return false;
}

}  // namespace s3fifo
