// LHD (Beckmann, Chen & Cidon, NSDI'18): Least Hit Density, implemented in
// the paper's sampled form. Each object's "hit density" — expected hits per
// unit of cache space-time if kept — is estimated from coarsened-age event
// statistics (hits and evictions per age class, decayed across reconfigure
// intervals); eviction samples `assoc` random residents and removes the one
// with the lowest hit density at its current age.
//
// Params: assoc=32, age_classes=128, reconfigure_factor=16 (reconfigure
// every reconfigure_factor * capacity accesses), ewma=0.9.
#ifndef SRC_POLICIES_LHD_H_
#define SRC_POLICIES_LHD_H_

#include <unordered_map>
#include <vector>

#include "src/core/cache.h"
#include "src/util/rng.h"

namespace s3fifo {

class LhdCache : public Cache {
 public:
  explicit LhdCache(const CacheConfig& config);

  bool Contains(uint64_t id) const override;
  void Remove(uint64_t id) override;
  std::string Name() const override { return "lhd"; }

 private:
  struct Entry {
    uint64_t size = 1;
    uint32_t hits = 0;
    uint64_t insert_time = 0;
    uint64_t last_access_time = 0;
    size_t slot = 0;
  };

  bool Access(const Request& req) override;
  void EvictOne();
  void RemoveById(uint64_t id, bool explicit_delete);
  uint32_t AgeClassOf(uint64_t age) const;
  double HitDensity(const Entry& e) const;
  void Reconfigure();

  uint32_t assoc_;
  uint32_t num_classes_;
  uint32_t age_shift_;
  uint64_t reconfigure_period_;
  uint64_t accesses_since_reconfigure_ = 0;
  double ewma_;

  std::vector<double> hit_events_;
  std::vector<double> evict_events_;
  std::vector<double> density_;

  Rng rng_;
  std::unordered_map<uint64_t, Entry> table_;
  std::vector<uint64_t> ids_;
};

}  // namespace s3fifo

#endif  // SRC_POLICIES_LHD_H_
