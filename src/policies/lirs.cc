#include "src/policies/lirs.h"

#include <algorithm>

#include "src/util/params.h"

namespace s3fifo {

LirsCache::LirsCache(const CacheConfig& config) : Cache(config) {
  const Params params(config.params);
  const double hir_ratio = params.GetDouble("hir_ratio", 0.01);
  hir_capacity_ = std::max<uint64_t>(static_cast<uint64_t>(capacity() * hir_ratio), 1);
  if (hir_capacity_ >= capacity()) {
    hir_capacity_ = capacity() > 1 ? capacity() - 1 : 1;
  }
  lir_capacity_ = capacity() - hir_capacity_;
  if (lir_capacity_ == 0) {
    lir_capacity_ = 1;
  }
  const double nr_ratio = params.GetDouble("nonresident_ratio", 3.0);
  max_nonresident_ = std::max<uint64_t>(static_cast<uint64_t>(capacity() * nr_ratio), 8);
}

bool LirsCache::Contains(uint64_t id) const {
  auto it = table_.find(id);
  return it != table_.end() && IsResident(it->second);
}

void LirsCache::FireEviction(const Entry& e, bool explicit_delete) {
  EvictionEvent ev;
  ev.id = e.id;
  ev.size = e.size;
  ev.access_count = e.hits;
  ev.insert_time = e.insert_time;
  ev.last_access_time = e.last_access_time;
  ev.evict_time = clock();
  ev.explicit_delete = explicit_delete;
  NotifyEviction(ev);
}

void LirsCache::EraseEntry(Entry* entry) {
  if (entry->stack_hook.linked()) {
    stack_.Remove(entry);
  }
  if (entry->queue_hook.linked()) {
    queue_.Remove(entry);
  }
  if (entry->state == State::kHirNonResident) {
    --nonresident_count_;
  }
  table_.erase(entry->id);
}

void LirsCache::PruneStack() {
  // Invariant after pruning: the stack bottom (if any) is a LIR block.
  while (Entry* bottom = stack_.Back()) {
    if (bottom->state == State::kLir) {
      return;
    }
    if (bottom->state == State::kHirResident) {
      stack_.Remove(bottom);  // stays resident in Q, just loses stack history
    } else {
      stack_.Remove(bottom);
      --nonresident_count_;
      table_.erase(bottom->id);
    }
  }
}

void LirsCache::DemoteLirBottom() {
  Entry* bottom = stack_.Back();
  if (bottom == nullptr) {
    return;
  }
  // By the pruning invariant the bottom is LIR.
  stack_.Remove(bottom);
  bottom->state = State::kHirResident;
  lir_occ_ -= bottom->size;
  hir_occ_ += bottom->size;
  queue_.PushBack(bottom);
  PruneStack();
}

void LirsCache::EvictFromQueue() {
  if (queue_.empty()) {
    DemoteLirBottom();
  }
  Entry* victim = queue_.PopFront();
  if (victim == nullptr) {
    return;
  }
  hir_occ_ -= victim->size;
  SubOccupied(victim->size);
  FireEviction(*victim, /*explicit_delete=*/false);
  if (victim->stack_hook.linked()) {
    victim->state = State::kHirNonResident;
    ++nonresident_count_;
    EnforceNonResidentBound();
  } else {
    table_.erase(victim->id);
  }
}

void LirsCache::EnforceNonResidentBound() {
  // Drop the deepest non-resident entries when the stack carries too much
  // history. Walking from the bottom is amortised O(1): each entry is
  // removed at most once.
  while (nonresident_count_ > max_nonresident_) {
    Entry* e = stack_.Back();
    while (e != nullptr && e->state != State::kHirNonResident) {
      e = stack_.Newer(e);
    }
    if (e == nullptr) {
      return;
    }
    stack_.Remove(e);
    --nonresident_count_;
    table_.erase(e->id);
  }
}

void LirsCache::Remove(uint64_t id) {
  auto it = table_.find(id);
  if (it == table_.end()) {
    return;
  }
  Entry& e = it->second;
  if (IsResident(e)) {
    if (e.state == State::kLir) {
      lir_occ_ -= e.size;
    } else {
      hir_occ_ -= e.size;
    }
    SubOccupied(e.size);
    FireEviction(e, /*explicit_delete=*/true);
  }
  EraseEntry(&e);
  PruneStack();
}

bool LirsCache::Access(const Request& req) {
  const uint64_t need = SizeOf(req);
  auto it = table_.find(req.id);

  if (it != table_.end() && IsResident(it->second)) {
    Entry& e = it->second;
    ++e.hits;
    e.last_access_time = clock();
    if (e.state == State::kLir) {
      stack_.MoveToFront(&e);
      PruneStack();
    } else if (e.stack_hook.linked()) {
      // Resident HIR with stack history: its inter-reference recency is
      // lower than some LIR block — promote.
      stack_.MoveToFront(&e);
      queue_.Remove(&e);
      e.state = State::kLir;
      hir_occ_ -= e.size;
      lir_occ_ += e.size;
      while (lir_occ_ > lir_capacity_ && stack_.size() > 1) {
        DemoteLirBottom();
      }
      PruneStack();
    } else {
      // Resident HIR without stack history: refresh both structures.
      stack_.PushFront(&e);
      queue_.MoveToBack(&e);
    }
    return true;
  }

  if (need > capacity()) {
    return false;
  }

  while (occupied() + need > capacity()) {
    EvictFromQueue();
  }
  // Eviction can prune non-resident stack entries — including req.id's own
  // ghost entry — so the pre-eviction iterator must be re-resolved.
  it = table_.find(req.id);

  const bool was_nonresident = it != table_.end();
  Entry& e = was_nonresident ? it->second : table_[req.id];
  if (!was_nonresident) {
    e.id = req.id;
    e.insert_time = clock();
  } else {
    --nonresident_count_;
    e.insert_time = clock();
    e.hits = 0;
  }
  e.size = need;
  e.last_access_time = clock();

  if (was_nonresident) {
    // Non-resident HIR in the stack: low inter-reference recency — enters as
    // LIR (the scan-resistance core of LIRS).
    e.state = State::kLir;
    stack_.MoveToFront(&e);
    lir_occ_ += e.size;
    AddOccupied(e.size);
    while (lir_occ_ > lir_capacity_ && stack_.size() > 1) {
      DemoteLirBottom();
    }
    PruneStack();
  } else if (lir_occ_ + need <= lir_capacity_) {
    // Cold cache: fill the LIR partition first.
    e.state = State::kLir;
    stack_.PushFront(&e);
    lir_occ_ += e.size;
    AddOccupied(e.size);
  } else {
    e.state = State::kHirResident;
    stack_.PushFront(&e);
    queue_.PushBack(&e);
    hir_occ_ += e.size;
    AddOccupied(e.size);
  }
  return false;
}

}  // namespace s3fifo
