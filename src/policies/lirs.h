// LIRS (Jiang & Zhang, SIGMETRICS'02): Low Inter-reference Recency Set.
//
// Residents are split into LIR (low inter-reference recency, ~99% of the
// cache) and HIR blocks (~1%, the quick-demotion queue the paper credits as
// "the secret source of LIRS's high efficiency", §5.2). Structure:
//   * stack S — recency stack holding LIR, resident-HIR, and a bounded
//     number of non-resident-HIR entries; pruned so its bottom is LIR;
//   * queue Q — FIFO of resident HIR blocks (the eviction source).
//
// Params: hir_ratio=0.01 (HIR share), nonresident_ratio=3.0 (cap on
// non-resident stack entries as a multiple of the cache size — bounds S).
#ifndef SRC_POLICIES_LIRS_H_
#define SRC_POLICIES_LIRS_H_

#include <unordered_map>

#include "src/core/cache.h"
#include "src/util/intrusive_list.h"

namespace s3fifo {

class LirsCache : public Cache {
 public:
  explicit LirsCache(const CacheConfig& config);

  bool Contains(uint64_t id) const override;
  void Remove(uint64_t id) override;
  std::string Name() const override { return "lirs"; }

 private:
  enum class State : uint8_t { kLir, kHirResident, kHirNonResident };

  struct Entry {
    uint64_t id = 0;
    uint64_t size = 1;
    uint32_t hits = 0;
    State state = State::kHirResident;
    uint64_t insert_time = 0;
    uint64_t last_access_time = 0;
    ListHook stack_hook;  // membership in S
    ListHook queue_hook;  // membership in Q
  };
  using Stack = IntrusiveList<Entry, &Entry::stack_hook>;
  using Queue = IntrusiveList<Entry, &Entry::queue_hook>;

  bool Access(const Request& req) override;
  bool IsResident(const Entry& e) const { return e.state != State::kHirNonResident; }
  // Removes HIR entries from the stack bottom until a LIR entry is at the
  // bottom (the LIRS "stack pruning" operation).
  void PruneStack();
  // Evicts the front of Q (the oldest resident HIR block).
  void EvictFromQueue();
  // Demotes the LIR block at the stack bottom to resident-HIR (tail of Q).
  void DemoteLirBottom();
  void FireEviction(const Entry& e, bool explicit_delete);
  void EraseEntry(Entry* entry);
  void EnforceNonResidentBound();

  uint64_t lir_capacity_;   // units reserved for LIR blocks
  uint64_t hir_capacity_;   // units for resident HIR blocks
  uint64_t max_nonresident_;
  uint64_t lir_occ_ = 0;
  uint64_t hir_occ_ = 0;
  uint64_t nonresident_count_ = 0;
  std::unordered_map<uint64_t, Entry> table_;
  Stack stack_;
  Queue queue_;
};

}  // namespace s3fifo

#endif  // SRC_POLICIES_LIRS_H_
