#include "src/policies/lrb_lite.h"

#include <algorithm>
#include <cmath>

#include "src/util/params.h"

namespace s3fifo {

LrbLiteCache::LrbLiteCache(const CacheConfig& config) : Cache(config), rng_(config.seed) {
  const Params params(config.params);
  assoc_ = static_cast<uint32_t>(std::clamp<uint64_t>(params.GetU64("assoc", 32), 2, 256));
  const double factor = params.GetDouble("boundary_factor", 4.0);
  const uint64_t entries =
      config.count_based ? capacity() : std::max<uint64_t>(capacity() / 4096, 64);
  boundary_ = factor * static_cast<double>(entries);
  learning_rate_ = params.GetDouble("learning_rate", 0.01);
}

LrbLiteCache::Features LrbLiteCache::FeaturesOf(const Entry& e) const {
  // All features log-compressed and scaled to O(1) so plain SGD is stable.
  constexpr double kScale = 0.1;
  Features f{};
  f[0] = kScale * std::log1p(static_cast<double>(clock() - e.insert_time));  // lifetime
  f[1] = kScale * std::log1p(static_cast<double>(e.hits));                   // frequency
  for (int i = 0; i < kNumDeltas; ++i) {
    // Missing deltas default to the boundary ("no evidence of reuse").
    f[2 + i] = kScale * std::log1p(e.deltas[i] > 0 ? static_cast<double>(e.deltas[i])
                                                   : boundary_);
  }
  f[6] = kScale * std::log1p(static_cast<double>(e.size));
  return f;
}

double LrbLiteCache::Predict(const Features& f) const {
  double z = bias_;
  for (int i = 0; i < kNumFeatures; ++i) {
    z += weights_[i] * f[i];
  }
  return z;
}

void LrbLiteCache::Train(const Features& f, double log_distance) {
  // SGD on squared error of the log-distance; feature values are O(10), so
  // clip the gradient to keep the online model stable.
  const double error = std::clamp(Predict(f) - log_distance, -10.0, 10.0);
  bias_ -= learning_rate_ * error;
  for (int i = 0; i < kNumFeatures; ++i) {
    weights_[i] -= learning_rate_ * error * f[i];
  }
  ++training_samples_;
}

bool LrbLiteCache::Contains(uint64_t id) const { return table_.count(id) != 0; }

void LrbLiteCache::Remove(uint64_t id) {
  RemoveById(id, /*explicit_delete=*/true, /*censored_label=*/false);
}

void LrbLiteCache::RemoveById(uint64_t id, bool explicit_delete, bool censored_label) {
  auto it = table_.find(id);
  if (it == table_.end()) {
    return;
  }
  Entry& e = it->second;
  if (censored_label && e.hits == 0) {
    // Evicted unreferenced: the true next access lies beyond what the cache
    // observed — a censored sample at (past) the Belady boundary.
    Train(e.snapshot, std::log1p(2.0 * boundary_));
  }
  EvictionEvent ev;
  ev.id = id;
  ev.size = e.size;
  ev.access_count = e.hits;
  ev.insert_time = e.insert_time;
  ev.last_access_time = e.last_access_time;
  ev.evict_time = clock();
  ev.explicit_delete = explicit_delete;
  const size_t slot = e.slot;
  ids_[slot] = ids_.back();
  table_[ids_[slot]].slot = slot;
  ids_.pop_back();
  SubOccupied(e.size);
  table_.erase(id);
  NotifyEviction(ev);
}

void LrbLiteCache::EvictOne() {
  if (ids_.empty()) {
    return;
  }
  // Rank by the predicted *remaining* time to next access: the distance
  // predicted from the last-access snapshot minus the time already elapsed.
  // For objects past their prediction the elapsed silence itself is the
  // estimate (mean-residual-life floor, appropriate for the heavy-tailed
  // reuse distributions of cache workloads) — so a briefly-late hot object
  // still ranks far better than never-reused cold data.
  auto score = [&](const Entry& e) {
    const double elapsed = static_cast<double>(clock() - e.last_access_time);
    const double remaining = std::expm1(Predict(e.snapshot)) - elapsed;
    return std::max(remaining, elapsed);
  };
  uint64_t victim = ids_[rng_.NextBounded(ids_.size())];
  double victim_score = score(table_.at(victim));
  for (uint32_t i = 1; i < assoc_ && i < ids_.size(); ++i) {
    const uint64_t cand = ids_[rng_.NextBounded(ids_.size())];
    const double s = score(table_.at(cand));
    if (s > victim_score) {
      victim = cand;
      victim_score = s;
    }
  }
  RemoveById(victim, /*explicit_delete=*/false, /*censored_label=*/true);
}

bool LrbLiteCache::Access(const Request& req) {
  const uint64_t need = SizeOf(req);
  auto it = table_.find(req.id);
  if (it != table_.end()) {
    Entry& e = it->second;
    // The realised distance labels the snapshot taken at the last access.
    const uint64_t distance = clock() - e.last_access_time;
    Train(e.snapshot, std::log1p(static_cast<double>(distance)));
    // Shift the delta history.
    for (int i = kNumDeltas - 1; i > 0; --i) {
      e.deltas[i] = e.deltas[i - 1];
    }
    e.deltas[0] = distance;
    ++e.hits;
    e.last_access_time = clock();
    if (!count_based() && e.size != need) {
      SubOccupied(e.size);
      e.size = need;
      AddOccupied(e.size);
      while (occupied() > capacity() && !ids_.empty()) {
        EvictOne();
      }
      // The sampled eviction above may have picked the grown entry itself;
      // only refresh the snapshot if it survived.
      auto survived = table_.find(req.id);
      if (survived != table_.end()) {
        survived->second.snapshot = FeaturesOf(survived->second);
      }
      return true;
    }
    e.snapshot = FeaturesOf(e);
    return true;
  }
  if (need > capacity()) {
    return false;
  }
  while (occupied() + need > capacity()) {
    EvictOne();
  }
  Entry e;
  e.size = need;
  e.insert_time = clock();
  e.last_access_time = clock();
  e.slot = ids_.size();
  ids_.push_back(req.id);
  auto [inserted_it, ok] = table_.emplace(req.id, std::move(e));
  inserted_it->second.snapshot = FeaturesOf(inserted_it->second);
  AddOccupied(need);
  return false;
}

}  // namespace s3fifo
