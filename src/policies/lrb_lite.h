// LRB-lite: a scoped-down Learning Relaxed Belady (Song et al., NSDI'20),
// the learned baseline the paper compares byte miss ratios against
// (§5.2.3). The full LRB trains a gradient-boosted tree on 127 features;
// this reproduction keeps the *architecture* — learn to predict the time to
// next access, evict sampled objects predicted beyond the Belady boundary —
// with an online linear model on LRB's core feature groups:
//
//   * recency   (log age since last access)
//   * frequency (log reference count)
//   * deltas    (log of the last 4 inter-access gaps)
//   * size      (log object size)
//
// Training is self-supervised: each access labels the feature snapshot taken
// at the object's previous access with the realised log-distance; objects
// evicted unreferenced provide censored labels at the Belady boundary.
//
// Params: assoc=32, boundary_factor=4 (Belady boundary = factor * capacity
// in requests), learning_rate=0.01.
#ifndef SRC_POLICIES_LRB_LITE_H_
#define SRC_POLICIES_LRB_LITE_H_

#include <array>
#include <unordered_map>
#include <vector>

#include "src/core/cache.h"
#include "src/util/rng.h"

namespace s3fifo {

class LrbLiteCache : public Cache {
 public:
  explicit LrbLiteCache(const CacheConfig& config);

  bool Contains(uint64_t id) const override;
  void Remove(uint64_t id) override;
  std::string Name() const override { return "lrb-lite"; }

 private:
  static constexpr int kNumFeatures = 7;
  static constexpr int kNumDeltas = 4;
  using Features = std::array<double, kNumFeatures>;

  struct Entry {
    uint64_t size = 1;
    uint32_t hits = 0;
    uint64_t insert_time = 0;
    uint64_t last_access_time = 0;
    std::array<uint64_t, kNumDeltas> deltas{};  // most recent first; 0 = none
    Features snapshot{};                        // features at last access
    size_t slot = 0;
  };

  bool Access(const Request& req) override;
  void EvictOne();
  void RemoveById(uint64_t id, bool explicit_delete, bool censored_label);
  Features FeaturesOf(const Entry& e) const;
  double Predict(const Features& f) const;
  void Train(const Features& f, double log_distance);

  uint32_t assoc_;
  double boundary_;  // requests
  double learning_rate_;
  std::array<double, kNumFeatures> weights_{};
  double bias_ = 0.0;
  uint64_t training_samples_ = 0;

  Rng rng_;
  std::unordered_map<uint64_t, Entry> table_;
  std::vector<uint64_t> ids_;
};

}  // namespace s3fifo

#endif  // SRC_POLICIES_LRB_LITE_H_
