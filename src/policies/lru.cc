#include "src/policies/lru.h"

namespace s3fifo {

LruCache::LruCache(const CacheConfig& config) : Cache(config) {}

bool LruCache::Contains(uint64_t id) const { return table_.Contains(id); }

void LruCache::Remove(uint64_t id) {
  if (Entry* e = table_.Find(id)) {
    RemoveEntry(e, /*explicit_delete=*/true);
  }
}

void LruCache::RemoveEntry(Entry* entry, bool explicit_delete) {
  EvictionEvent ev;
  ev.id = entry->id;
  ev.size = entry->size;
  ev.access_count = entry->hits;
  ev.insert_time = entry->insert_time;
  ev.last_access_time = entry->last_access_time;
  ev.evict_time = clock();
  ev.explicit_delete = explicit_delete;
  queue_.Remove(entry);
  SubOccupied(entry->size);
  table_.Erase(entry->id);
  NotifyEviction(ev);
}

void LruCache::EvictOne() {
  Entry* victim = queue_.Back();
  if (victim != nullptr) {
    RemoveEntry(victim, /*explicit_delete=*/false);
  }
}

bool LruCache::Access(const Request& req) {
  const uint64_t need = SizeOf(req);
  if (Entry* found = table_.Find(req.id)) {
    Entry& e = *found;
    ++e.hits;
    e.last_access_time = clock();
    queue_.MoveToFront(&e);
    if (!count_based() && e.size != need) {
      SubOccupied(e.size);
      e.size = need;
      AddOccupied(e.size);
      while (occupied() > capacity() && !queue_.empty()) {
        EvictOne();
      }
    }
    return true;
  }
  if (need > capacity()) {
    return false;
  }
  while (occupied() + need > capacity()) {
    EvictOne();
  }
  Entry& e = *table_.Emplace(req.id);
  e.id = req.id;
  e.size = need;
  e.insert_time = clock();
  e.last_access_time = clock();
  queue_.PushFront(&e);
  AddOccupied(need);
  return false;
}

void LruCache::AccessBatch(const TraceView& view, uint64_t begin, uint64_t end, uint8_t* hits,
                           uint32_t prefetch_distance) {
  BatchLoop<LruCache>(view, begin, end, hits, prefetch_distance);
}

}  // namespace s3fifo
