// LRU eviction: every hit promotes the object to the queue head.
#ifndef SRC_POLICIES_LRU_H_
#define SRC_POLICIES_LRU_H_

#include "src/core/cache.h"
#include "src/util/flat_map.h"
#include "src/util/intrusive_list.h"

namespace s3fifo {

class LruCache : public Cache {
 public:
  explicit LruCache(const CacheConfig& config);

  bool Contains(uint64_t id) const override;
  void Remove(uint64_t id) override;
  std::string Name() const override { return "lru"; }
  void Prefetch(uint64_t id) const override { table_.Prefetch(id); }

 protected:
  bool Access(const Request& req) override;
  void AccessBatch(const TraceView& view, uint64_t begin, uint64_t end, uint8_t* hits,
                   uint32_t prefetch_distance) override;

 private:
  friend class Cache;  // BatchLoop statically binds the protected Access
  struct Entry {
    uint64_t id = 0;
    uint64_t size = 1;
    uint32_t hits = 0;
    uint64_t insert_time = 0;
    uint64_t last_access_time = 0;
    ListHook hook;
  };

  void EvictOne();
  void RemoveEntry(Entry* entry, bool explicit_delete);

  FlatMap<Entry> table_;
  IntrusiveList<Entry, &Entry::hook> queue_;
};

}  // namespace s3fifo

#endif  // SRC_POLICIES_LRU_H_
