#include "src/policies/lruk.h"

#include <algorithm>

#include "src/util/params.h"

namespace s3fifo {

LruKCache::LruKCache(const CacheConfig& config) : Cache(config) {
  const Params params(config.params);
  k_ = static_cast<uint32_t>(std::clamp<uint64_t>(params.GetU64("k", 2), 1, 8));
  const double history_ratio = params.GetDouble("history_ratio", 1.0);
  const uint64_t entries =
      config.count_based ? capacity() : std::max<uint64_t>(capacity() / 4096, 16);
  history_capacity_ = std::max<uint64_t>(static_cast<uint64_t>(entries * history_ratio), 1);
}

bool LruKCache::Contains(uint64_t id) const { return table_.count(id) != 0; }

void LruKCache::PushHistory(std::deque<uint64_t>& history, uint64_t now) const {
  history.push_back(now);
  while (history.size() > k_) {
    history.pop_front();
  }
}

void LruKCache::RememberHistory(uint64_t id, const std::deque<uint64_t>& history) {
  if (!retained_.count(id)) {
    retained_fifo_.push_back(id);
  }
  retained_[id] = history;
  while (retained_.size() > history_capacity_ && !retained_fifo_.empty()) {
    retained_.erase(retained_fifo_.front());
    retained_fifo_.pop_front();
  }
}

void LruKCache::Remove(uint64_t id) { RemoveById(id, /*explicit_delete=*/true); }

void LruKCache::RemoveById(uint64_t id, bool explicit_delete) {
  auto it = table_.find(id);
  if (it == table_.end()) {
    return;
  }
  Entry& e = it->second;
  EvictionEvent ev;
  ev.id = id;
  ev.size = e.size;
  ev.access_count = e.hits;
  ev.insert_time = e.insert_time;
  ev.last_access_time = e.last_access_time;
  ev.evict_time = clock();
  ev.explicit_delete = explicit_delete;
  order_.erase(KeyOf(id, e));
  SubOccupied(e.size);
  RememberHistory(id, e.history);
  table_.erase(it);
  NotifyEviction(ev);
}

void LruKCache::EvictOne() {
  if (order_.empty()) {
    return;
  }
  RemoveById(std::get<2>(*order_.begin()), /*explicit_delete=*/false);
}

bool LruKCache::Access(const Request& req) {
  const uint64_t need = SizeOf(req);
  const uint64_t now = clock();
  auto it = table_.find(req.id);
  if (it != table_.end()) {
    Entry& e = it->second;
    order_.erase(KeyOf(req.id, e));
    ++e.hits;
    PushHistory(e.history, now);
    e.last_access_time = now;
    e.kth_time = e.history.size() >= k_ ? e.history.front() : 0;
    if (!count_based() && e.size != need) {
      SubOccupied(e.size);
      e.size = need;
      AddOccupied(e.size);
    }
    order_.insert(KeyOf(req.id, e));
    while (occupied() > capacity() && !order_.empty()) {
      EvictOne();
    }
    return true;
  }
  if (need > capacity()) {
    return false;
  }
  while (occupied() + need > capacity()) {
    EvictOne();
  }
  Entry e;
  e.size = need;
  e.insert_time = now;
  e.last_access_time = now;
  auto retained_it = retained_.find(req.id);
  if (retained_it != retained_.end()) {
    e.history = retained_it->second;
    retained_.erase(retained_it);
  }
  PushHistory(e.history, now);
  e.kth_time = e.history.size() >= k_ ? e.history.front() : 0;
  order_.insert(KeyOf(req.id, e));
  table_.emplace(req.id, std::move(e));
  AddOccupied(need);
  return false;
}

}  // namespace s3fifo
