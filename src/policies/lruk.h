// LRU-K (O'Neil, O'Neil & Weikum, SIGMOD'93), K=2 by default: evicts the
// object whose K-th most recent reference is oldest ("maximum backward
// K-distance"). Objects with fewer than K references have infinite backward
// distance and are evicted first, in LRU order among themselves. Reference
// history is retained for recently evicted ids so a returning object gets
// credit for pre-eviction accesses.
//
// Params: k=2, history_ratio=1.0 (retained-history ids as a fraction of
// capacity).
#ifndef SRC_POLICIES_LRUK_H_
#define SRC_POLICIES_LRUK_H_

#include <deque>
#include <set>
#include <unordered_map>

#include "src/core/cache.h"

namespace s3fifo {

class LruKCache : public Cache {
 public:
  explicit LruKCache(const CacheConfig& config);

  bool Contains(uint64_t id) const override;
  void Remove(uint64_t id) override;
  std::string Name() const override { return "lruk"; }

 private:
  struct Entry {
    uint64_t size = 1;
    uint32_t hits = 0;
    uint64_t insert_time = 0;
    uint64_t last_access_time = 0;
    uint64_t kth_time = 0;  // K-th most recent access; 0 = fewer than K refs
    std::deque<uint64_t> history;  // most recent K access times
  };
  // (kth_time, last_access, id): begin() = victim (0 kth_time first).
  using VictimKey = std::tuple<uint64_t, uint64_t, uint64_t>;

  bool Access(const Request& req) override;
  void EvictOne();
  void RemoveById(uint64_t id, bool explicit_delete);
  void PushHistory(std::deque<uint64_t>& history, uint64_t now) const;
  VictimKey KeyOf(uint64_t id, const Entry& e) const {
    return {e.kth_time, e.last_access_time, id};
  }
  void RememberHistory(uint64_t id, const std::deque<uint64_t>& history);

  uint32_t k_;
  uint64_t history_capacity_;
  std::unordered_map<uint64_t, Entry> table_;
  std::set<VictimKey> order_;
  // Retained (non-resident) reference history, bounded FIFO.
  std::unordered_map<uint64_t, std::deque<uint64_t>> retained_;
  std::deque<uint64_t> retained_fifo_;
};

}  // namespace s3fifo

#endif  // SRC_POLICIES_LRUK_H_
