#include "src/policies/random.h"

namespace s3fifo {

RandomCache::RandomCache(const CacheConfig& config) : Cache(config), rng_(config.seed) {}

bool RandomCache::Contains(uint64_t id) const { return table_.count(id) != 0; }

void RandomCache::Remove(uint64_t id) { RemoveById(id, /*explicit_delete=*/true); }

void RandomCache::RemoveById(uint64_t id, bool explicit_delete) {
  auto it = table_.find(id);
  if (it == table_.end()) {
    return;
  }
  Entry& e = it->second;
  EvictionEvent ev;
  ev.id = id;
  ev.size = e.size;
  ev.access_count = e.hits;
  ev.insert_time = e.insert_time;
  ev.last_access_time = e.last_access_time;
  ev.evict_time = clock();
  ev.explicit_delete = explicit_delete;
  // Swap-remove from the sampling vector.
  const size_t slot = e.slot;
  ids_[slot] = ids_.back();
  table_[ids_[slot]].slot = slot;
  ids_.pop_back();
  SubOccupied(e.size);
  table_.erase(id);  // invalidates e
  NotifyEviction(ev);
}

void RandomCache::EvictOne() {
  if (ids_.empty()) {
    return;
  }
  RemoveById(ids_[rng_.NextBounded(ids_.size())], /*explicit_delete=*/false);
}

bool RandomCache::Access(const Request& req) {
  const uint64_t need = SizeOf(req);
  auto it = table_.find(req.id);
  if (it != table_.end()) {
    Entry& e = it->second;
    ++e.hits;
    e.last_access_time = clock();
    if (!count_based() && e.size != need) {
      SubOccupied(e.size);
      e.size = need;
      AddOccupied(e.size);
      while (occupied() > capacity() && !ids_.empty()) {
        EvictOne();
      }
    }
    return true;
  }
  if (need > capacity()) {
    return false;
  }
  while (occupied() + need > capacity()) {
    EvictOne();
  }
  Entry e;
  e.size = need;
  e.insert_time = clock();
  e.last_access_time = clock();
  e.slot = ids_.size();
  ids_.push_back(req.id);
  table_.emplace(req.id, e);
  AddOccupied(need);
  return false;
}

}  // namespace s3fifo
