// Random eviction: a uniformly random resident object is evicted on each
// miss. O(1) via index-map + swap-remove.
#ifndef SRC_POLICIES_RANDOM_H_
#define SRC_POLICIES_RANDOM_H_

#include <unordered_map>
#include <vector>

#include "src/core/cache.h"
#include "src/util/rng.h"

namespace s3fifo {

class RandomCache : public Cache {
 public:
  explicit RandomCache(const CacheConfig& config);

  bool Contains(uint64_t id) const override;
  void Remove(uint64_t id) override;
  std::string Name() const override { return "random"; }

 protected:
  bool Access(const Request& req) override;

 private:
  struct Entry {
    uint64_t size = 1;
    uint32_t hits = 0;
    uint64_t insert_time = 0;
    uint64_t last_access_time = 0;
    size_t slot = 0;  // index into ids_
  };

  void EvictOne();
  void RemoveById(uint64_t id, bool explicit_delete);

  Rng rng_;
  std::unordered_map<uint64_t, Entry> table_;
  std::vector<uint64_t> ids_;
};

}  // namespace s3fifo

#endif  // SRC_POLICIES_RANDOM_H_
