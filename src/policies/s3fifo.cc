#include "src/policies/s3fifo.h"

#include <algorithm>

#include "src/util/params.h"

namespace s3fifo {

namespace {
// Tail entries examined per gather in the batched FIFO-reinsertion sweep.
constexpr int kSweepBatch = 16;
}  // namespace

S3FifoCache::S3FifoCache(const CacheConfig& config) : Cache(config) {
  const Params params(config.params);
  const double small_ratio = std::clamp(params.GetDouble("small_ratio", 0.1), 0.001, 0.999);
  small_target_ = std::max<uint64_t>(static_cast<uint64_t>(capacity() * small_ratio), 1);
  if (small_target_ >= capacity()) {
    small_target_ = capacity() > 1 ? capacity() - 1 : 1;
  }
  main_target_ = capacity() - small_target_;
  move_threshold_ = static_cast<uint32_t>(
      std::clamp<uint64_t>(params.GetU64("move_to_main_threshold", 2), 1, 16));
  max_freq_ = static_cast<uint32_t>(std::clamp<uint64_t>(params.GetU64("max_freq", 3), 1, 255));
  small_lru_ = params.GetBool("small_lru", false);
  main_lru_ = params.GetBool("main_lru", false);
  main_sieve_ = params.GetBool("main_sieve", false);

  const double ghost_ratio = params.GetDouble("ghost_ratio", 0.9);
  const uint64_t entries = count_based()
                               ? capacity()
                               : std::max<uint64_t>(capacity() / 4096, 16);
  const uint64_t ghost_entries =
      std::max<uint64_t>(static_cast<uint64_t>(entries * ghost_ratio), 1);
  const std::string ghost_type = params.GetString("ghost_type", "exact");
  if (ghost_type == "table") {
    ghost_table_ = std::make_unique<GhostTable>(ghost_entries);
  } else {
    ghost_exact_ = std::make_unique<GhostQueue>(ghost_entries);
  }
}

void S3FifoCache::set_small_target(uint64_t target) {
  small_target_ = std::clamp<uint64_t>(target, 1, capacity() - 1);
  main_target_ = capacity() - small_target_;
}

bool S3FifoCache::Contains(uint64_t id) const { return table_.Contains(id); }

bool S3FifoCache::GhostContains(uint64_t id) const {
  return ghost_exact_ ? ghost_exact_->Contains(id) : ghost_table_->Contains(id);
}

uint64_t S3FifoCache::ghost_size() const {
  return ghost_exact_ ? ghost_exact_->size() : ghost_table_->CountLive();
}

uint64_t S3FifoCache::GhostCapacityEntries() const {
  return ghost_exact_ ? ghost_exact_->capacity() : ghost_table_->capacity();
}

void S3FifoCache::GhostInsert(uint64_t id) {
  if (ghost_exact_) {
    ghost_exact_->Insert(id);
  } else {
    ghost_table_->Insert(id);
  }
}

bool S3FifoCache::GhostHitAndErase(uint64_t id) {
  if (ghost_exact_) {
    if (ghost_exact_->Contains(id)) {
      ghost_exact_->Remove(id);
      return true;
    }
    return false;
  }
  if (ghost_table_->Contains(id)) {
    ghost_table_->Remove(id);
    return true;
  }
  return false;
}

void S3FifoCache::FireEviction(const Entry& e, bool explicit_delete) {
  EvictionEvent ev;
  ev.id = e.id;
  ev.size = e.size;
  ev.access_count = e.hits;
  ev.insert_time = e.insert_time;
  ev.last_access_time = e.last_access_time;
  ev.evict_time = clock();
  ev.explicit_delete = explicit_delete;
  NotifyEviction(ev);
}

void S3FifoCache::NotifyDemotion(const Entry& e, bool promoted) {
  if (demotion_listener_) {
    DemotionEvent ev;
    ev.id = e.id;
    ev.enter_time = e.stage_enter_time;
    ev.leave_time = clock();
    ev.promoted = promoted;
    demotion_listener_(ev);
  }
}

void S3FifoCache::Remove(uint64_t id) {
  Entry* found = table_.Find(id);
  if (found == nullptr) {
    return;
  }
  Entry& e = *found;
  if (e.in_small) {
    small_.Remove(&e);
    small_occ_ -= e.size;
  } else {
    if (sieve_hand_ == &e) {
      sieve_hand_ = main_.Newer(&e);
    }
    main_.Remove(&e);
    main_occ_ -= e.size;
  }
  SubOccupied(e.size);
  FireEviction(e, /*explicit_delete=*/true);
  table_.Erase(id);
}

void S3FifoCache::EvictFromSmall() {
  Entry* t = small_.Back();
  if (t == nullptr) {
    return;
  }
  if (t->freq >= move_threshold_) {
    // Promote to M; the access bits are cleared during the move (§4.1).
    NotifyDemotion(*t, /*promoted=*/true);
    small_.Remove(t);
    small_occ_ -= t->size;
    t->in_small = false;
    t->freq = 0;
    main_.PushFront(t);
    main_occ_ += t->size;
    ++stats_.moved_to_main;
    while (main_occ_ > main_target_) {
      EvictFromMain();
    }
  } else {
    NotifyDemotion(*t, /*promoted=*/false);
    small_.Remove(t);
    small_occ_ -= t->size;
    SubOccupied(t->size);
    GhostInsert(t->id);
    ++stats_.demoted_to_ghost;
    FireEviction(*t, /*explicit_delete=*/false);
    OnDemotionToGhost(t->id);
    table_.Erase(t->id);
  }
}

void S3FifoCache::EvictFromMain() {
  if (main_sieve_) {
    // §7 extension: SIEVE eviction — walk the hand from the tail toward the
    // head, decrementing counters in place; survivors keep their position.
    Entry* t = sieve_hand_ != nullptr ? sieve_hand_ : main_.Back();
    while (t != nullptr && t->freq > 0) {
      --t->freq;
      ++stats_.main_reinsertions;  // a "spare", SIEVE-style
      t = main_.Newer(t);
      if (t == nullptr) {
        t = main_.Back();
      }
    }
    if (t == nullptr) {
      return;
    }
    sieve_hand_ = main_.Newer(t);
    main_.Remove(t);
    main_occ_ -= t->size;
    SubOccupied(t->size);
    ++stats_.main_evictions;
    FireEviction(*t, /*explicit_delete=*/false);
    OnMainEviction(t->id);
    table_.Erase(t->id);
    return;
  }
  // FIFO-reinsertion: terminates because every reinsertion decrements freq.
  //
  // The sweep is batched like ClockCache::EvictOne: gather the freq bits of
  // up to kSweepBatch tail entries into a mask, find the first zero-freq
  // victim with ctz, then decrement the survivors before it and rotate them
  // to the head with one segment splice.
  while (!main_.empty()) {
    Entry* chain[kSweepBatch];
    uint32_t referenced = 0;
    int n = 0;
    for (Entry* t = main_.Back(); t != nullptr && n < kSweepBatch; t = main_.Newer(t)) {
      chain[n] = t;
      referenced |= static_cast<uint32_t>(t->freq > 0) << n;
      ++n;
      // The victim is the first zero-freq entry — later bits never reach the
      // ctz. Keeps the common case (tail immediately evictable) at one visit.
      if (t->freq == 0) {
        break;
      }
    }
    const uint32_t zeros = ~referenced & ((1u << n) - 1u);
    const int victim = zeros != 0 ? __builtin_ctz(zeros) : n;
    for (int k = 0; k < victim; ++k) {
      --chain[k]->freq;
    }
    stats_.main_reinsertions += static_cast<uint64_t>(victim);
    if (victim > 0) {
      main_.MoveSegmentToFront(chain[victim - 1], chain[0]);
    }
    if (victim < n) {
      Entry* t = chain[victim];
      main_.Remove(t);
      main_occ_ -= t->size;
      SubOccupied(t->size);
      ++stats_.main_evictions;
      FireEviction(*t, /*explicit_delete=*/false);
      OnMainEviction(t->id);
      table_.Erase(t->id);
      return;
    }
  }
}

void S3FifoCache::EnsureFree(uint64_t need) {
  while (occupied() + need > capacity()) {
    if ((small_occ_ > small_target_ && !small_.empty()) || main_.empty()) {
      EvictFromSmall();
    } else {
      EvictFromMain();
    }
    if (small_.empty() && main_.empty()) {
      return;
    }
  }
}

bool S3FifoCache::Access(const Request& req) {
  const uint64_t need = SizeOf(req);
  if (Entry* found = table_.Find(req.id)) {
    Entry& e = *found;
    e.freq = std::min(e.freq + 1, max_freq_);
    ++e.hits;
    e.last_access_time = clock();
    if (small_lru_ && e.in_small) {
      small_.MoveToFront(&e);
    } else if (main_lru_ && !e.in_small) {
      main_.MoveToFront(&e);
    }
    if (!count_based() && e.size != need) {
      SubOccupied(e.size);
      if (e.in_small) {
        small_occ_ += need;
        small_occ_ -= e.size;
      } else {
        main_occ_ += need;
        main_occ_ -= e.size;
      }
      e.size = need;
      AddOccupied(e.size);
      EnsureFree(0);
    }
    return true;
  }

  OnMissLookup(req.id);
  if (need > capacity()) {
    return false;
  }
  EnsureFree(need);
  const bool ghost_hit = GhostHitAndErase(req.id);
  Entry& e = *table_.Emplace(req.id);
  e.id = req.id;
  e.size = need;
  e.freq = 0;
  e.insert_time = clock();
  e.stage_enter_time = clock();
  e.last_access_time = clock();
  if (ghost_hit) {
    e.in_small = false;
    main_.PushFront(&e);
    main_occ_ += need;
    ++stats_.ghost_hit_inserts;
  } else {
    e.in_small = true;
    small_.PushFront(&e);
    small_occ_ += need;
    ++stats_.inserted_to_small;
  }
  AddOccupied(need);
  return false;
}

void S3FifoCache::AccessBatch(const TraceView& view, uint64_t begin, uint64_t end, uint8_t* hits,
                              uint32_t prefetch_distance) {
  BatchLoop<S3FifoCache>(view, begin, end, hits, prefetch_distance);
}

}  // namespace s3fifo
