// S3-FIFO — the paper's contribution (§4, Algorithm 1).
//
// Three static FIFO queues: a small probationary queue S (10% of the cache),
// a main queue M (90%), and a ghost queue G holding as many ghost entries
// (ids only) as M holds objects. Two access bits per object cap the
// frequency at 3.
//
//   * read hit: freq = min(freq + 1, 3); no queue mutation (lazy promotion);
//   * miss: insert to M's head if the id is in G, else to S's head;
//   * S eviction: tail moves to M if freq >= move_to_main_threshold (access
//     bits cleared in the move), else its id enters G and the object leaves
//     the cache — the quick-demotion step;
//   * M eviction: FIFO-reinsertion — tails with freq > 0 re-enter at the
//     head with freq - 1, others are evicted (not remembered in G).
//
// Algorithm-1 notes, reflected here and in DESIGN.md:
//   * line 34 reads "remove t from S" — a typo for "remove t from M";
//   * line 18 moves on "freq > 1" (two accesses after insertion) while the
//     abstract says "whether it has been accessed"; we default to the
//     literal pseudocode (threshold 2) and expose the knob
//     (bench_ablation_threshold sweeps it);
//   * when S is empty but the cache is full, eviction falls through to M.
//
// Params:
//   small_ratio=0.1            — S share of the capacity
//   ghost_ratio=0.9            — ghost entries as a fraction of the capacity
//                                (0.9 == "same number of entries as M")
//   move_to_main_threshold=2   — minimum freq for the S->M move
//   max_freq=3                 — two-bit counter cap
//   ghost_type=exact           — exact | table (§4.2 fingerprint table)
//   small_lru=0, main_lru=0    — §6.3 ablation: run S / M as LRU queues
//   main_sieve=0               — §7 extension: evict M with SIEVE (a moving
//                                hand + visited bit; survivors keep their
//                                position) instead of FIFO-reinsertion
#ifndef SRC_POLICIES_S3FIFO_H_
#define SRC_POLICIES_S3FIFO_H_

#include <memory>

#include "src/core/cache.h"
#include "src/core/demotion.h"
#include "src/util/flat_map.h"
#include "src/util/ghost_queue.h"
#include "src/util/ghost_table.h"
#include "src/util/intrusive_list.h"

namespace s3fifo {

class S3FifoCache : public Cache {
 public:
  struct Stats {
    uint64_t inserted_to_small = 0;
    uint64_t ghost_hit_inserts = 0;   // misses admitted straight to M
    uint64_t moved_to_main = 0;       // S tail promoted to M
    uint64_t demoted_to_ghost = 0;    // S tail evicted (quick demotion)
    uint64_t main_reinsertions = 0;   // M tail given a second chance
    uint64_t main_evictions = 0;
  };

  explicit S3FifoCache(const CacheConfig& config);

  bool Contains(uint64_t id) const override;
  void Remove(uint64_t id) override;
  std::string Name() const override { return "s3fifo"; }
  // Pulls both structures a miss will touch: the entry table's probe group
  // and — when the fingerprint ghost is active — the ghost bucket the
  // admission check reads.
  void Prefetch(uint64_t id) const override {
    table_.Prefetch(id);
    if (ghost_table_) {
      ghost_table_->Prefetch(id);
    }
  }

  const Stats& stats() const { return stats_; }
  uint64_t small_occupied() const { return small_occ_; }
  uint64_t main_occupied() const { return main_occ_; }
  uint64_t small_target() const { return small_target_; }
  // True if the id is remembered by the ghost queue (test/analysis hook).
  bool GhostContains(uint64_t id) const;
  // Live ghost entries and their configured bound (invariant-check hooks).
  uint64_t ghost_size() const;
  uint64_t ghost_capacity_entries() const { return GhostCapacityEntries(); }

  // Demotion instrumentation (§6.1): S is the probationary stage.
  void set_demotion_listener(DemotionListener listener) {
    demotion_listener_ = std::move(listener);
  }

 protected:
  struct Entry {
    uint64_t id = 0;
    uint64_t size = 1;
    uint32_t freq = 0;  // capped counter (the "two bits")
    uint32_t hits = 0;  // uncapped, for instrumentation only
    bool in_small = true;
    uint64_t insert_time = 0;
    uint64_t stage_enter_time = 0;
    uint64_t last_access_time = 0;
    ListHook hook;
  };
  using Queue = IntrusiveList<Entry, &Entry::hook>;

  bool Access(const Request& req) override;
  // Inherited unchanged by S3FifoD: the adaptation hooks it overrides are
  // dispatched virtually inside Access, which BatchLoop's qualified calls
  // do not bypass.
  void AccessBatch(const TraceView& view, uint64_t begin, uint64_t end, uint8_t* hits,
                   uint32_t prefetch_distance) override;
  void EnsureFree(uint64_t need);
  // Pops one S tail and routes it to M or G (one Algorithm-1 EVICTS step).
  void EvictFromSmall();
  // Reinserts accessed M tails until one object is evicted (EVICTM).
  void EvictFromMain();

  // Adaptation hooks for S3-FIFO-D.
  virtual void OnMissLookup(uint64_t id) { (void)id; }
  virtual void OnDemotionToGhost(uint64_t id) { (void)id; }
  virtual void OnMainEviction(uint64_t id) { (void)id; }

  void set_small_target(uint64_t target);

 private:
  friend class Cache;  // BatchLoop statically binds the protected Access

  void FireEviction(const Entry& e, bool explicit_delete);
  void NotifyDemotion(const Entry& e, bool promoted);
  void GhostInsert(uint64_t id);
  bool GhostHitAndErase(uint64_t id);
  uint64_t GhostCapacityEntries() const;

  uint64_t small_target_;      // units reserved for S
  uint64_t main_target_;       // capacity - small_target_
  uint32_t move_threshold_;
  uint32_t max_freq_;
  bool small_lru_;
  bool main_lru_;
  bool main_sieve_;
  Entry* sieve_hand_ = nullptr;  // M's hand when main_sieve_ is set

  FlatMap<Entry> table_;
  Queue small_;
  Queue main_;
  uint64_t small_occ_ = 0;
  uint64_t main_occ_ = 0;

  // Exactly one of the two ghost representations is active.
  std::unique_ptr<GhostQueue> ghost_exact_;
  std::unique_ptr<GhostTable> ghost_table_;

  Stats stats_;
  DemotionListener demotion_listener_;
};

}  // namespace s3fifo

#endif  // SRC_POLICIES_S3FIFO_H_
