#include "src/policies/s3fifo_d.h"

#include <algorithm>

#include "src/util/params.h"

namespace s3fifo {
namespace {

uint64_t AdaptGhostEntries(const CacheConfig& config) {
  const Params params(config.params);
  const double ratio = params.GetDouble("adapt_ghost_ratio", 0.05);
  const uint64_t entries =
      config.count_based ? config.capacity : std::max<uint64_t>(config.capacity / 4096, 16);
  return std::max<uint64_t>(static_cast<uint64_t>(entries * ratio), 1);
}

}  // namespace

S3FifoDCache::S3FifoDCache(const CacheConfig& config)
    : S3FifoCache(config),
      small_evicted_(AdaptGhostEntries(config)),
      main_evicted_(AdaptGhostEntries(config)) {
  const Params params(config.params);
  min_hits_ = params.GetU64("adapt_min_hits", 100);
  imbalance_ = params.GetDouble("adapt_imbalance", 2.0);
  step_ = std::max<uint64_t>(
      static_cast<uint64_t>(capacity() * params.GetDouble("adapt_step_ratio", 0.001)), 1);
}

void S3FifoDCache::OnDemotionToGhost(uint64_t id) { small_evicted_.Insert(id); }

void S3FifoDCache::OnMainEviction(uint64_t id) { main_evicted_.Insert(id); }

void S3FifoDCache::OnMissLookup(uint64_t id) {
  if (small_evicted_.Contains(id)) {
    small_evicted_.Remove(id);
    ++small_ghost_hits_;
  }
  if (main_evicted_.Contains(id)) {
    main_evicted_.Remove(id);
    ++main_ghost_hits_;
  }
  MaybeRebalance();
}

void S3FifoDCache::MaybeRebalance() {
  if (small_ghost_hits_ + main_ghost_hits_ <= min_hits_) {
    return;
  }
  const double hi = static_cast<double>(std::max(small_ghost_hits_, main_ghost_hits_));
  const double lo = static_cast<double>(std::min(small_ghost_hits_, main_ghost_hits_));
  if (hi < imbalance_ * std::max(lo, 1.0)) {
    return;
  }
  // Hits on S-evicted objects mean S evicts too eagerly: grow S (and vice
  // versa). Minimising the marginal-hit gradient, per §6.2.2.
  if (small_ghost_hits_ > main_ghost_hits_) {
    set_small_target(std::min<uint64_t>(small_target() + step_, capacity() - 1));
  } else {
    set_small_target(small_target() > step_ ? small_target() - step_ : 1);
  }
  ++adaptations_;
  small_ghost_hits_ = 0;
  main_ghost_hits_ = 0;
}

}  // namespace s3fifo
