// S3-FIFO-D (paper §6.2.2): S3-FIFO with dynamic queue sizes. Two small
// adaptation ghost queues (5% of the cached objects each) track objects
// evicted from S and from M. Whenever the two have accumulated more than 100
// hits in total and one side has 2x the hits of the other, 0.1% of the cache
// capacity moves toward the queue whose evicted objects are being
// re-requested — balancing the marginal hits on evicted objects.
//
// Params (on top of s3fifo's): adapt_ghost_ratio=0.05, adapt_min_hits=100,
// adapt_imbalance=2.0, adapt_step_ratio=0.001.
#ifndef SRC_POLICIES_S3FIFO_D_H_
#define SRC_POLICIES_S3FIFO_D_H_

#include "src/policies/s3fifo.h"

namespace s3fifo {

class S3FifoDCache : public S3FifoCache {
 public:
  explicit S3FifoDCache(const CacheConfig& config);

  std::string Name() const override { return "s3fifo-d"; }

  uint64_t adaptations() const { return adaptations_; }

 protected:
  void OnMissLookup(uint64_t id) override;
  void OnDemotionToGhost(uint64_t id) override;
  void OnMainEviction(uint64_t id) override;

 private:
  void MaybeRebalance();

  GhostQueue small_evicted_;
  GhostQueue main_evicted_;
  uint64_t small_ghost_hits_ = 0;
  uint64_t main_ghost_hits_ = 0;
  uint64_t min_hits_;
  double imbalance_;
  uint64_t step_;
  uint64_t adaptations_ = 0;
};

}  // namespace s3fifo

#endif  // SRC_POLICIES_S3FIFO_D_H_
