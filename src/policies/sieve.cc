#include "src/policies/sieve.h"

#include <algorithm>

namespace s3fifo {

namespace {
// Entries examined per gather in the batched hand sweep. 16 keeps the
// visited mask in one register and the entry pointers in one stack line.
constexpr int kSweepBatch = 16;
}  // namespace

SieveCache::SieveCache(const CacheConfig& config) : Cache(config) {}

bool SieveCache::Contains(uint64_t id) const { return table_.Contains(id); }

void SieveCache::Remove(uint64_t id) {
  if (Entry* e = table_.Find(id)) {
    RemoveEntry(e, /*explicit_delete=*/true);
  }
}

void SieveCache::RemoveEntry(Entry* entry, bool explicit_delete) {
  if (hand_ == entry) {
    hand_ = queue_.Newer(entry);  // hand advances toward the head
  }
  EvictionEvent ev;
  ev.id = entry->id;
  ev.size = entry->size;
  ev.access_count = entry->hits;
  ev.insert_time = entry->insert_time;
  ev.last_access_time = entry->last_access_time;
  ev.evict_time = clock();
  ev.explicit_delete = explicit_delete;
  queue_.Remove(entry);
  SubOccupied(entry->size);
  table_.Erase(entry->id);
  NotifyEviction(ev);
}

void SieveCache::EvictOne() {
  // Walk from the hand toward the head, clearing visited bits; wrap to the
  // tail when the head is passed. Terminates within two passes: the first
  // pass clears every visited bit on its path.
  //
  // The walk is batched: gather the visited bits of a chunk of entries into
  // a mask (reads only), find the first unvisited entry with ctz, and clear
  // the bits before it. The chunk is capped at the queue size so the
  // wrapping walk never reads the same entry twice within a chunk — a
  // duplicate would see the pre-clear visited bit and diverge from the
  // one-at-a-time walk.
  Entry* obj = hand_ != nullptr ? hand_ : queue_.Back();
  while (obj != nullptr) {
    const int limit = static_cast<int>(std::min<size_t>(kSweepBatch, queue_.size()));
    Entry* chain[kSweepBatch];
    uint32_t visited = 0;
    int n = 0;
    Entry* e = obj;
    while (n < limit) {
      chain[n] = e;
      visited |= static_cast<uint32_t>(e->visited) << n;
      ++n;
      // The victim is the first unvisited entry — later bits can never matter
      // to the ctz below. Stopping here keeps the common case (hand already
      // on an unvisited entry) at one node visit.
      if (!e->visited) {
        break;
      }
      e = queue_.Newer(e);
      if (e == nullptr) {
        e = queue_.Back();
      }
    }
    const uint32_t unvisited = ~visited & ((1u << n) - 1u);
    if (unvisited == 0) {
      for (int k = 0; k < n; ++k) {
        chain[k]->visited = false;
      }
      obj = e;  // resume the walk where the gather stopped (already wrapped)
      continue;
    }
    const int victim = __builtin_ctz(unvisited);
    for (int k = 0; k < victim; ++k) {
      chain[k]->visited = false;
    }
    hand_ = chain[victim];  // RemoveEntry advances the hand to the next-newer entry
    RemoveEntry(chain[victim], /*explicit_delete=*/false);
    return;
  }
}

bool SieveCache::Access(const Request& req) {
  const uint64_t need = SizeOf(req);
  if (Entry* found = table_.Find(req.id)) {
    Entry& e = *found;
    ++e.hits;
    e.visited = true;
    e.last_access_time = clock();
    if (!count_based() && e.size != need) {
      SubOccupied(e.size);
      e.size = need;
      AddOccupied(e.size);
      while (occupied() > capacity() && !queue_.empty()) {
        EvictOne();
      }
    }
    return true;
  }
  if (need > capacity()) {
    return false;
  }
  while (occupied() + need > capacity()) {
    EvictOne();
  }
  Entry& e = *table_.Emplace(req.id);
  e.id = req.id;
  e.size = need;
  e.insert_time = clock();
  e.last_access_time = clock();
  queue_.PushFront(&e);
  AddOccupied(need);
  return false;
}

void SieveCache::AccessBatch(const TraceView& view, uint64_t begin, uint64_t end, uint8_t* hits,
                             uint32_t prefetch_distance) {
  BatchLoop<SieveCache>(view, begin, end, hits, prefetch_distance);
}

}  // namespace s3fifo
