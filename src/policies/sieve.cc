#include "src/policies/sieve.h"

namespace s3fifo {

SieveCache::SieveCache(const CacheConfig& config) : Cache(config) {}

bool SieveCache::Contains(uint64_t id) const { return table_.Contains(id); }

void SieveCache::Remove(uint64_t id) {
  if (Entry* e = table_.Find(id)) {
    RemoveEntry(e, /*explicit_delete=*/true);
  }
}

void SieveCache::RemoveEntry(Entry* entry, bool explicit_delete) {
  if (hand_ == entry) {
    hand_ = queue_.Newer(entry);  // hand advances toward the head
  }
  EvictionEvent ev;
  ev.id = entry->id;
  ev.size = entry->size;
  ev.access_count = entry->hits;
  ev.insert_time = entry->insert_time;
  ev.last_access_time = entry->last_access_time;
  ev.evict_time = clock();
  ev.explicit_delete = explicit_delete;
  queue_.Remove(entry);
  SubOccupied(entry->size);
  table_.Erase(entry->id);
  NotifyEviction(ev);
}

void SieveCache::EvictOne() {
  Entry* obj = hand_ != nullptr ? hand_ : queue_.Back();
  // Walk from the hand toward the head, clearing visited bits; wrap to the
  // tail when the head is passed. Terminates within two passes: the first
  // pass clears every visited bit on its path.
  while (obj != nullptr && obj->visited) {
    obj->visited = false;
    obj = queue_.Newer(obj);
    if (obj == nullptr) {
      obj = queue_.Back();
    }
  }
  if (obj != nullptr) {
    hand_ = obj;  // RemoveEntry advances the hand to the next-newer entry
    RemoveEntry(obj, /*explicit_delete=*/false);
  }
}

bool SieveCache::Access(const Request& req) {
  const uint64_t need = SizeOf(req);
  if (Entry* found = table_.Find(req.id)) {
    Entry& e = *found;
    ++e.hits;
    e.visited = true;
    e.last_access_time = clock();
    if (!count_based() && e.size != need) {
      SubOccupied(e.size);
      e.size = need;
      AddOccupied(e.size);
      while (occupied() > capacity() && !queue_.empty()) {
        EvictOne();
      }
    }
    return true;
  }
  if (need > capacity()) {
    return false;
  }
  while (occupied() + need > capacity()) {
    EvictOne();
  }
  Entry& e = *table_.Emplace(req.id);
  e.id = req.id;
  e.size = need;
  e.insert_time = clock();
  e.last_access_time = clock();
  queue_.PushFront(&e);
  AddOccupied(need);
  return false;
}

}  // namespace s3fifo
