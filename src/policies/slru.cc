#include "src/policies/slru.h"

#include <algorithm>

#include "src/util/params.h"

namespace s3fifo {

SlruCache::SlruCache(const CacheConfig& config) : Cache(config) {
  const Params params(config.params);
  num_segments_ =
      static_cast<uint32_t>(std::clamp<uint64_t>(params.GetU64("segments", 4), 1, 16));
  seg_capacity_ = std::max<uint64_t>(capacity() / num_segments_, 1);
  segments_.reserve(num_segments_);
  for (uint32_t i = 0; i < num_segments_; ++i) {
    segments_.push_back(std::make_unique<Segment>());
  }
  seg_occupied_.assign(num_segments_, 0);
}

bool SlruCache::Contains(uint64_t id) const { return table_.count(id) != 0; }

void SlruCache::Remove(uint64_t id) {
  auto it = table_.find(id);
  if (it != table_.end()) {
    RemoveEntry(&it->second, /*explicit_delete=*/true);
  }
}

void SlruCache::RemoveEntry(Entry* entry, bool explicit_delete) {
  EvictionEvent ev;
  ev.id = entry->id;
  ev.size = entry->size;
  ev.access_count = entry->hits;
  ev.insert_time = entry->insert_time;
  ev.last_access_time = entry->last_access_time;
  ev.evict_time = clock();
  ev.explicit_delete = explicit_delete;
  segments_[entry->segment]->Remove(entry);
  seg_occupied_[entry->segment] -= entry->size;
  SubOccupied(entry->size);
  table_.erase(entry->id);
  NotifyEviction(ev);
}

void SlruCache::Cascade(uint32_t segment) {
  // Demote LRU tails downward while a segment exceeds its share. Overflow of
  // segment 0 is handled by EvictOne.
  for (uint32_t s = segment; s > 0; --s) {
    while (seg_occupied_[s] > seg_capacity_) {
      Entry* tail = segments_[s]->PopBack();
      if (tail == nullptr) {
        break;
      }
      seg_occupied_[s] -= tail->size;
      tail->segment = s - 1;
      segments_[s - 1]->PushFront(tail);
      seg_occupied_[s - 1] += tail->size;
    }
  }
}

void SlruCache::EvictOne() {
  for (uint32_t s = 0; s < num_segments_; ++s) {
    if (Entry* tail = segments_[s]->Back()) {
      RemoveEntry(tail, /*explicit_delete=*/false);
      return;
    }
  }
}

bool SlruCache::Access(const Request& req) {
  const uint64_t need = SizeOf(req);
  auto it = table_.find(req.id);
  if (it != table_.end()) {
    Entry& e = it->second;
    ++e.hits;
    e.last_access_time = clock();
    const uint32_t target = std::min(e.segment + 1, num_segments_ - 1);
    segments_[e.segment]->Remove(&e);
    seg_occupied_[e.segment] -= e.size;
    if (!count_based() && e.size != need) {
      SubOccupied(e.size);
      e.size = need;
      AddOccupied(e.size);
    }
    e.segment = target;
    segments_[target]->PushFront(&e);
    seg_occupied_[target] += e.size;
    Cascade(target);
    while (occupied() > capacity()) {
      EvictOne();
    }
    return true;
  }
  if (need > capacity()) {
    return false;
  }
  while (occupied() + need > capacity()) {
    EvictOne();
  }
  Entry& e = table_[req.id];
  e.id = req.id;
  e.size = need;
  e.segment = 0;
  e.insert_time = clock();
  e.last_access_time = clock();
  segments_[0]->PushFront(&e);
  seg_occupied_[0] += need;
  AddOccupied(need);
  return false;
}

}  // namespace s3fifo
