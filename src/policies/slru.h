// Segmented LRU (Karedla et al. '94), generalised to N equal segments
// (paper §5.2 uses four). New objects enter segment 0; a hit promotes one
// segment up; overflow of segment k demotes its LRU tail to segment k-1;
// evictions leave from the tail of the lowest non-empty segment. No ghost
// queue — which is exactly why SLRU is not scan-resistant (§5.2).
//
// Params: segments=<n> (default 4).
#ifndef SRC_POLICIES_SLRU_H_
#define SRC_POLICIES_SLRU_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/cache.h"
#include "src/util/intrusive_list.h"

namespace s3fifo {

class SlruCache : public Cache {
 public:
  explicit SlruCache(const CacheConfig& config);

  bool Contains(uint64_t id) const override;
  void Remove(uint64_t id) override;
  std::string Name() const override { return "slru"; }

 protected:
  bool Access(const Request& req) override;

 private:
  struct Entry {
    uint64_t id = 0;
    uint64_t size = 1;
    uint32_t hits = 0;
    uint32_t segment = 0;
    uint64_t insert_time = 0;
    uint64_t last_access_time = 0;
    ListHook hook;
  };
  using Segment = IntrusiveList<Entry, &Entry::hook>;

  void EvictOne();
  void RemoveEntry(Entry* entry, bool explicit_delete);
  // Pushes overflow of segment k down the hierarchy (k -> k-1 -> ...).
  void Cascade(uint32_t segment);
  uint64_t SegmentOccupied(uint32_t segment) const { return seg_occupied_[segment]; }

  uint32_t num_segments_;
  uint64_t seg_capacity_;
  std::unordered_map<uint64_t, Entry> table_;
  std::vector<std::unique_ptr<Segment>> segments_;
  std::vector<uint64_t> seg_occupied_;
};

}  // namespace s3fifo

#endif  // SRC_POLICIES_SLRU_H_
