#include "src/policies/tinylfu.h"

#include <algorithm>

#include "src/util/params.h"

namespace s3fifo {
namespace {

uint64_t SketchEntries(const CacheConfig& config) {
  // Size the sketch to the number of objects the cache can hold; byte mode
  // approximates entries with the paper's 4KB reference object.
  return config.count_based ? config.capacity
                            : std::max<uint64_t>(config.capacity / 4096, 64);
}

}  // namespace

TinyLfuCache::TinyLfuCache(const CacheConfig& config)
    : Cache(config),
      sketch_(SketchEntries(config) * 4),
      doorkeeper_(SketchEntries(config) * 4, 0.01) {
  const Params params(config.params);
  const double window_ratio = params.GetDouble("window_ratio", 0.01);
  const double probation_ratio = params.GetDouble("probation_ratio", 0.2);
  const uint64_t sample_factor = params.GetU64("sample_factor", 10);

  window_capacity_ = std::max<uint64_t>(static_cast<uint64_t>(capacity() * window_ratio), 1);
  if (window_capacity_ > capacity()) {
    window_capacity_ = capacity();
  }
  const uint64_t main_capacity = capacity() - window_capacity_;
  if (main_capacity == 0) {
    probation_capacity_ = 0;  // degenerate tiny cache: window only
    protected_capacity_ = 0;
  } else {
    probation_capacity_ = std::min<uint64_t>(
        std::max<uint64_t>(static_cast<uint64_t>(main_capacity * probation_ratio), 1),
        main_capacity);
    protected_capacity_ = main_capacity - probation_capacity_;
  }
  sample_period_ = std::max<uint64_t>(SketchEntries(config) * sample_factor, 64);
  name_ = window_ratio >= 0.05 ? "tinylfu-0.1" : "tinylfu";
}

TinyLfuCache::Queue& TinyLfuCache::QueueOf(Where where) {
  switch (where) {
    case Where::kWindow:
      return window_;
    case Where::kProbation:
      return probation_;
    case Where::kProtected:
      return protected_;
  }
  return window_;
}

uint64_t& TinyLfuCache::OccupiedOf(Where where) {
  switch (where) {
    case Where::kWindow:
      return window_occ_;
    case Where::kProbation:
      return probation_occ_;
    case Where::kProtected:
      return protected_occ_;
  }
  return window_occ_;
}

void TinyLfuCache::RecordFrequency(uint64_t id) {
  if (!doorkeeper_.Contains(id)) {
    doorkeeper_.Insert(id);
  } else {
    sketch_.Increment(id);
  }
  if (++accesses_since_age_ >= sample_period_) {
    sketch_.Age();
    doorkeeper_.Clear();
    accesses_since_age_ = 0;
  }
}

uint32_t TinyLfuCache::EstimateFrequency(uint64_t id) const {
  return sketch_.Estimate(id) + (doorkeeper_.Contains(id) ? 1 : 0);
}

bool TinyLfuCache::Contains(uint64_t id) const { return table_.count(id) != 0; }

void TinyLfuCache::NotifyDemotion(const Entry& entry, bool promoted) {
  if (demotion_listener_) {
    DemotionEvent ev;
    ev.id = entry.id;
    ev.enter_time = entry.stage_enter_time;
    ev.leave_time = clock();
    ev.promoted = promoted;
    demotion_listener_(ev);
  }
}

void TinyLfuCache::EvictEntry(Entry* entry, bool explicit_delete) {
  EvictionEvent ev;
  ev.id = entry->id;
  ev.size = entry->size;
  ev.access_count = entry->hits;
  ev.insert_time = entry->insert_time;
  ev.last_access_time = entry->last_access_time;
  ev.evict_time = clock();
  ev.explicit_delete = explicit_delete;
  if (entry->where == Where::kWindow) {
    NotifyDemotion(*entry, /*promoted=*/false);
  }
  QueueOf(entry->where).Remove(entry);
  OccupiedOf(entry->where) -= entry->size;
  SubOccupied(entry->size);
  table_.erase(entry->id);
  NotifyEviction(ev);
}

void TinyLfuCache::Remove(uint64_t id) {
  auto it = table_.find(id);
  if (it != table_.end()) {
    EvictEntry(&it->second, /*explicit_delete=*/true);
  }
}

void TinyLfuCache::RebalanceMain() {
  // Protected overflow demotes to probation MRU.
  while (protected_occ_ > protected_capacity_) {
    Entry* tail = protected_.PopBack();
    if (tail == nullptr) {
      break;
    }
    protected_occ_ -= tail->size;
    tail->where = Where::kProbation;
    probation_.PushFront(tail);
    probation_occ_ += tail->size;
  }
}

void TinyLfuCache::HandleWindowOverflow() {
  while (window_occ_ > window_capacity_) {
    Entry* candidate = window_.Back();
    if (candidate == nullptr) {
      return;
    }
    const uint64_t main_occ = probation_occ_ + protected_occ_;
    const uint64_t main_cap = probation_capacity_ + protected_capacity_;
    if (main_occ + candidate->size <= main_cap) {
      // Room in main: admit without a duel.
      NotifyDemotion(*candidate, /*promoted=*/true);
      window_.Remove(candidate);
      window_occ_ -= candidate->size;
      candidate->where = Where::kProbation;
      candidate->stage_enter_time = clock();
      probation_.PushFront(candidate);
      probation_occ_ += candidate->size;
      continue;
    }
    Entry* victim = probation_.Back();
    if (victim == nullptr) {
      victim = protected_.Back();
    }
    if (victim == nullptr) {
      // No main victim: evict the candidate.
      EvictEntry(candidate, /*explicit_delete=*/false);
      continue;
    }
    // The TinyLFU duel: the less frequently used of candidate and main
    // victim is evicted (§5.2).
    if (EstimateFrequency(candidate->id) > EstimateFrequency(victim->id)) {
      EvictEntry(victim, /*explicit_delete=*/false);
      NotifyDemotion(*candidate, /*promoted=*/true);
      window_.Remove(candidate);
      window_occ_ -= candidate->size;
      candidate->where = Where::kProbation;
      probation_.PushFront(candidate);
      probation_occ_ += candidate->size;
      // Byte mode: a large candidate may still overflow main after one
      // victim; shed further tails until it fits.
      while (probation_occ_ + protected_occ_ > main_cap) {
        Entry* extra = probation_.Back();
        if (extra == nullptr) {
          extra = protected_.Back();
        }
        if (extra == nullptr) {
          break;
        }
        EvictEntry(extra, /*explicit_delete=*/false);
        if (extra == candidate) {
          break;  // candidate itself was oversized for main
        }
      }
    } else {
      EvictEntry(candidate, /*explicit_delete=*/false);
    }
  }
}

bool TinyLfuCache::Access(const Request& req) {
  const uint64_t need = SizeOf(req);
  RecordFrequency(req.id);

  auto it = table_.find(req.id);
  if (it != table_.end()) {
    Entry& e = it->second;
    ++e.hits;
    e.last_access_time = clock();
    if (!count_based() && e.size != need) {
      OccupiedOf(e.where) -= e.size;
      SubOccupied(e.size);
      e.size = need;
      OccupiedOf(e.where) += e.size;
      AddOccupied(e.size);
    }
    switch (e.where) {
      case Where::kWindow:
        window_.MoveToFront(&e);
        break;
      case Where::kProbation:
        // Probation hit promotes to protected.
        probation_.Remove(&e);
        probation_occ_ -= e.size;
        e.where = Where::kProtected;
        protected_.PushFront(&e);
        protected_occ_ += e.size;
        RebalanceMain();
        break;
      case Where::kProtected:
        protected_.MoveToFront(&e);
        break;
    }
    // Byte mode: a resident that grew in place can overflow main without
    // touching the window; shed main tails until it fits again.
    const uint64_t main_cap = probation_capacity_ + protected_capacity_;
    while (probation_occ_ + protected_occ_ > main_cap) {
      Entry* extra = probation_.Back();
      if (extra == nullptr) {
        extra = protected_.Back();
      }
      if (extra == nullptr) {
        break;
      }
      EvictEntry(extra, /*explicit_delete=*/false);
    }
    HandleWindowOverflow();
    return true;
  }

  if (need > capacity()) {
    return false;
  }
  Entry& e = table_[req.id];
  e.id = req.id;
  e.size = need;
  e.where = Where::kWindow;
  e.insert_time = clock();
  e.stage_enter_time = clock();
  e.last_access_time = clock();
  window_.PushFront(&e);
  window_occ_ += need;
  AddOccupied(need);
  HandleWindowOverflow();
  return false;
}

}  // namespace s3fifo
