// W-TinyLFU (Einziger, Friedman & Manes, ToS'17): a small window LRU in
// front of a main SLRU (20% probation / 80% protected), with admission
// decided by a count-min-sketch frequency estimate plus a doorkeeper Bloom
// filter; counters are halved every sample_factor * capacity accesses.
//
// The paper evaluates two window sizes: 1% (default, "tinylfu") and 10%
// ("tinylfu-0.1", §5.2).
//
// Params: window_ratio=0.01, sample_factor=10, probation_ratio=0.2.
#ifndef SRC_POLICIES_TINYLFU_H_
#define SRC_POLICIES_TINYLFU_H_

#include <unordered_map>

#include "src/core/cache.h"
#include "src/core/demotion.h"
#include "src/util/bloom_filter.h"
#include "src/util/count_min_sketch.h"
#include "src/util/intrusive_list.h"

namespace s3fifo {

class TinyLfuCache : public Cache {
 public:
  explicit TinyLfuCache(const CacheConfig& config);

  bool Contains(uint64_t id) const override;
  void Remove(uint64_t id) override;
  std::string Name() const override { return name_; }

  // Demotion instrumentation (§6.1): the window is the probationary stage.
  void set_demotion_listener(DemotionListener listener) {
    demotion_listener_ = std::move(listener);
  }

 private:
  enum class Where : uint8_t { kWindow, kProbation, kProtected };

  struct Entry {
    uint64_t id = 0;
    uint64_t size = 1;
    uint32_t hits = 0;
    Where where = Where::kWindow;
    uint64_t insert_time = 0;
    uint64_t stage_enter_time = 0;
    uint64_t last_access_time = 0;
    ListHook hook;
  };
  using Queue = IntrusiveList<Entry, &Entry::hook>;

  bool Access(const Request& req) override;
  void RecordFrequency(uint64_t id);
  uint32_t EstimateFrequency(uint64_t id) const;
  // Window overflow: candidate vs main victim, evict the less frequent one.
  void HandleWindowOverflow();
  void EvictEntry(Entry* entry, bool explicit_delete);
  void RebalanceMain();
  void NotifyDemotion(const Entry& entry, bool promoted);

  Queue& QueueOf(Where where);
  uint64_t& OccupiedOf(Where where);

  std::string name_;
  uint64_t window_capacity_;
  uint64_t probation_capacity_;
  uint64_t protected_capacity_;
  uint64_t sample_period_;
  uint64_t accesses_since_age_ = 0;

  CountMinSketch sketch_;
  BloomFilter doorkeeper_;

  std::unordered_map<uint64_t, Entry> table_;
  Queue window_, probation_, protected_;
  uint64_t window_occ_ = 0, probation_occ_ = 0, protected_occ_ = 0;
  DemotionListener demotion_listener_;
};

}  // namespace s3fifo

#endif  // SRC_POLICIES_TINYLFU_H_
