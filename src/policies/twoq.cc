#include "src/policies/twoq.h"

#include <algorithm>

#include "src/util/params.h"

namespace s3fifo {
namespace {

uint64_t GhostEntries(const CacheConfig& config, double kout_ratio) {
  // A1out holds ids, not data; size it in entries. In byte mode approximate
  // entries by capacity / 4KB, the paper's reference object size.
  const uint64_t units = config.count_based ? config.capacity
                                            : std::max<uint64_t>(config.capacity / 4096, 16);
  return std::max<uint64_t>(static_cast<uint64_t>(units * kout_ratio), 1);
}

}  // namespace

TwoQCache::TwoQCache(const CacheConfig& config)
    : Cache(config), a1out_(GhostEntries(config, Params(config.params).GetDouble("kout_ratio", 0.5))) {
  const Params params(config.params);
  const double kin_ratio = params.GetDouble("kin_ratio", 0.25);
  kin_capacity_ = std::max<uint64_t>(static_cast<uint64_t>(capacity() * kin_ratio), 1);
}

bool TwoQCache::Contains(uint64_t id) const { return table_.count(id) != 0; }

void TwoQCache::Remove(uint64_t id) {
  auto it = table_.find(id);
  if (it != table_.end()) {
    RemoveEntry(&it->second, /*explicit_delete=*/true, /*to_ghost=*/false);
  }
}

void TwoQCache::RemoveEntry(Entry* entry, bool explicit_delete, bool to_ghost) {
  EvictionEvent ev;
  ev.id = entry->id;
  ev.size = entry->size;
  ev.access_count = entry->hits;
  ev.insert_time = entry->insert_time;
  ev.last_access_time = entry->last_access_time;
  ev.evict_time = clock();
  ev.explicit_delete = explicit_delete;
  if (entry->where == Where::kA1In) {
    a1in_.Remove(entry);
    a1in_occupied_ -= entry->size;
  } else {
    am_.Remove(entry);
  }
  SubOccupied(entry->size);
  if (to_ghost) {
    a1out_.Insert(entry->id);
  }
  table_.erase(entry->id);
  NotifyEviction(ev);
}

void TwoQCache::EvictOne() {
  // Reclaim from A1in while it exceeds its share (remembering the id in
  // A1out); otherwise evict the Am LRU tail.
  if (a1in_occupied_ > kin_capacity_ || am_.empty()) {
    if (Entry* tail = a1in_.Back()) {
      RemoveEntry(tail, /*explicit_delete=*/false, /*to_ghost=*/true);
      return;
    }
  }
  if (Entry* tail = am_.Back()) {
    RemoveEntry(tail, /*explicit_delete=*/false, /*to_ghost=*/false);
  }
}

bool TwoQCache::Access(const Request& req) {
  const uint64_t need = SizeOf(req);
  auto it = table_.find(req.id);
  if (it != table_.end()) {
    Entry& e = it->second;
    ++e.hits;
    e.last_access_time = clock();
    if (e.where == Where::kAm) {
      am_.MoveToFront(&e);
    }
    // A1in hits leave the object in place (2Q's "correlated reference"
    // window): only a re-request after demotion promotes to Am.
    if (!count_based() && e.size != need) {
      SubOccupied(e.size);
      if (e.where == Where::kA1In) {
        a1in_occupied_ -= e.size;
        a1in_occupied_ += need;
      }
      e.size = need;
      AddOccupied(e.size);
      while (occupied() > capacity()) {
        EvictOne();
      }
    }
    return true;
  }
  if (need > capacity()) {
    return false;
  }
  while (occupied() + need > capacity()) {
    EvictOne();
  }
  Entry& e = table_[req.id];
  e.id = req.id;
  e.size = need;
  e.insert_time = clock();
  e.last_access_time = clock();
  if (a1out_.Contains(req.id)) {
    a1out_.Remove(req.id);
    e.where = Where::kAm;
    am_.PushFront(&e);
  } else {
    e.where = Where::kA1In;
    a1in_.PushFront(&e);
    a1in_occupied_ += need;
  }
  AddOccupied(need);
  return false;
}

}  // namespace s3fifo
