// 2Q (Johnson & Shasha, VLDB'94): a probationary FIFO (A1in, 25% of the
// cache), a main LRU (Am), and a ghost queue of recently demoted ids (A1out,
// ids for 50% of the capacity). Objects evicted from A1in are remembered in
// A1out but NOT moved to Am; only a re-request of an A1out id enters Am
// (paper §5.2 contrasts this with S3-FIFO's eviction-time move).
//
// Params: kin_ratio=0.25, kout_ratio=0.5.
#ifndef SRC_POLICIES_TWOQ_H_
#define SRC_POLICIES_TWOQ_H_

#include <unordered_map>

#include "src/core/cache.h"
#include "src/util/ghost_queue.h"
#include "src/util/intrusive_list.h"

namespace s3fifo {

class TwoQCache : public Cache {
 public:
  explicit TwoQCache(const CacheConfig& config);

  bool Contains(uint64_t id) const override;
  void Remove(uint64_t id) override;
  std::string Name() const override { return "2q"; }

 protected:
  bool Access(const Request& req) override;

 private:
  enum class Where : uint8_t { kA1In, kAm };

  struct Entry {
    uint64_t id = 0;
    uint64_t size = 1;
    uint32_t hits = 0;
    Where where = Where::kA1In;
    uint64_t insert_time = 0;
    uint64_t last_access_time = 0;
    ListHook hook;
  };

  void EvictOne();
  void RemoveEntry(Entry* entry, bool explicit_delete, bool to_ghost);

  uint64_t kin_capacity_;
  std::unordered_map<uint64_t, Entry> table_;
  IntrusiveList<Entry, &Entry::hook> a1in_;
  IntrusiveList<Entry, &Entry::hook> am_;
  uint64_t a1in_occupied_ = 0;
  GhostQueue a1out_;
};

}  // namespace s3fifo

#endif  // SRC_POLICIES_TWOQ_H_
