#include "src/server/cache_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <unordered_map>

#include "src/concurrent/concurrent_s3fifo.h"
#include "src/server/protocol.h"
#include "src/server/ring_buffer.h"
#include "src/server/transport.h"

namespace s3fifo {

namespace {

constexpr const char* kVersionLine = "VERSION s3fifo-server 1.0\r\n";

void AppendU64(std::vector<char>& out, uint64_t v) {
  char buf[20];
  int n = 0;
  do {
    buf[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0) {
    out.push_back(buf[--n]);
  }
}

void AppendStr(std::vector<char>& out, std::string_view s) {
  out.insert(out.end(), s.begin(), s.end());
}

void AppendStat(std::vector<char>& out, std::string_view name, uint64_t v) {
  AppendStr(out, "STAT ");
  AppendStr(out, name);
  out.push_back(' ');
  AppendU64(out, v);
  AppendStr(out, "\r\n");
}

// Copies each batched hit's value bytes into the connection's arena while
// the cache's read guard protects them; response rendering then references
// the arena, never cache memory.
struct ArenaSink final : public ValueSink {
  std::vector<char>* arena = nullptr;
  // offset in arena per batch index; kNoValue = miss or value-less cache.
  std::vector<std::pair<uint32_t, uint32_t>>* slots = nullptr;
  static constexpr uint32_t kNoValue = ~uint32_t{0};

  void OnValue(uint32_t index, const char* data, uint32_t size) override {
    (*slots)[index] = {static_cast<uint32_t>(arena->size()), size};
    arena->insert(arena->end(), data, data + size);
  }
};

struct Connection {
  Transport::Conn* tconn = nullptr;
  RingBuffer in;
  std::vector<char> out;  // response bytes not yet handed to the transport
  bool want_close = false;     // close once everything queued has drained
  bool parse_blocked = false;  // backpressure: unsent output above watermark
  bool read_paused = false;    // we returned false from GetReadBuffer
  bool pumping = false;        // re-entrancy guard (ResumeRead -> OnData)
  ParseOutput parsed;

  // Scratch for the fused get batch (reused every flush).
  std::vector<uint64_t> batch_ids;
  std::vector<std::string_view> batch_keys;
  std::vector<uint8_t> batch_hits;
  std::vector<std::pair<uint32_t, uint32_t>> batch_slots;
  std::vector<char> value_arena;
  // (op index, keys in that op) for END placement when rendering.
  std::vector<uint32_t> batch_op_key_counts;
};

}  // namespace

// ---------------------------------------------------------------------------
// Per-worker state: one transport, one listener, the protocol handler.
// ---------------------------------------------------------------------------

struct CacheServer::Worker final : public Transport::Handler {
  CacheServer* server = nullptr;
  unsigned index = 0;
  int listen_fd = -1;
  std::unique_ptr<Transport> transport;
  std::unordered_map<Connection*, std::unique_ptr<Connection>> conns;

  // Relaxed striped counters; folded by TotalStats().
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> cmd_get{0};
  std::atomic<uint64_t> cmd_set{0};
  std::atomic<uint64_t> cmd_delete{0};
  std::atomic<uint64_t> get_hits{0};
  std::atomic<uint64_t> get_misses{0};
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> batched_gets{0};
  std::atomic<uint64_t> parse_errors{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
  // Snapshots of the transport's (thread-local) counters, published after
  // every Poll so stats served by other workers stay near-exact.
  std::atomic<uint64_t> t_syscalls{0};
  std::atomic<uint64_t> t_waits{0};
  std::atomic<uint64_t> t_events{0};
  std::atomic<uint64_t> t_sqes{0};
  std::atomic<uint64_t> t_sqe_batches{0};
  std::atomic<uint64_t> t_recv_merges{0};

  void Bump(std::atomic<uint64_t>& c, uint64_t v = 1) {
    c.store(c.load(std::memory_order_relaxed) + v, std::memory_order_relaxed);
  }

  void PublishTransportCounters() {
    if (transport == nullptr) {
      return;
    }
    const TransportCounters& tc = transport->counters();
    t_syscalls.store(tc.syscalls, std::memory_order_relaxed);
    t_waits.store(tc.waits, std::memory_order_relaxed);
    t_events.store(tc.events, std::memory_order_relaxed);
    t_sqes.store(tc.sqes, std::memory_order_relaxed);
    t_sqe_batches.store(tc.sqe_batches, std::memory_order_relaxed);
    t_recv_merges.store(tc.recv_merges, std::memory_order_relaxed);
  }

  // --- Transport::Handler --------------------------------------------------

  void* OnAccept(Transport::Conn* tconn) override {
    Bump(connections_accepted);
    auto conn = std::make_unique<Connection>();
    conn->tconn = tconn;
    Connection* c = conn.get();
    conns.emplace(c, std::move(conn));
    return c;
  }

  bool GetReadBuffer(Transport::Conn* /*tconn*/, void* ud, char** buf,
                     size_t* cap) override {
    auto* c = static_cast<Connection*>(ud);
    if (!c->in.EnsureWritable(4096)) {
      if (!c->parse_blocked) {
        // Buffer at capacity yet the parser is not backpressured: a single
        // frame fills the whole buffer without parsing fatal. Cannot happen
        // with the current limits (kMaxLineLen, kMaxValueBytes are both well
        // under the buffer cap); drop the connection to bound memory if a
        // future limit change breaks that.
        CloseConn(c);
        return false;
      }
      // Full of commands we may not execute yet: pause reading. The next
      // drain unblocks the parser, frees space, and resumes (ResumeRead).
      c->read_paused = true;
      return false;
    }
    *buf = c->in.WritePtr();
    *cap = c->in.WriteCapacity();
    return true;
  }

  void OnData(Transport::Conn* /*tconn*/, void* ud, size_t n) override {
    auto* c = static_cast<Connection*>(ud);
    c->in.CommitWrite(n);
    Bump(bytes_read, static_cast<uint64_t>(n));
    Pump(c);
  }

  void OnWritable(Transport::Conn* /*tconn*/, void* ud) override {
    auto* c = static_cast<Connection*>(ud);
    if (c->want_close) {
      CloseConn(c);
      return;
    }
    if (c->parse_blocked && OutPending(c) <= server->config_.out_high_watermark) {
      c->parse_blocked = false;
      Pump(c);
    }
  }

  void OnClose(Transport::Conn* /*tconn*/, void* ud) override {
    conns.erase(static_cast<Connection*>(ud));
  }

  // --- protocol pump -------------------------------------------------------

  size_t OutPending(const Connection* c) const {
    return c->out.size() + transport->SendQueueBytes(c->tconn);
  }

  // Server-initiated close: the transport never calls OnClose for these.
  void CloseConn(Connection* c) {
    transport->Close(c->tconn);
    conns.erase(c);
  }

  // Hands the rendered output to the transport. False if the connection was
  // closed (want_close with nothing left queued).
  bool FlushOut(Connection* c) {
    if (!c->out.empty()) {
      Bump(bytes_written, static_cast<uint64_t>(c->out.size()));
      transport->Send(c->tconn, &c->out);  // comes back empty
    }
    if (c->want_close && transport->SendQueueBytes(c->tconn) == 0) {
      CloseConn(c);
      return false;
    }
    return true;
  }

  // Alternates parse and flush until neither can make progress: parsing
  // stops at the out high watermark, and room freed by a drain re-enables
  // parsing (OnWritable re-enters here). Resumes paused reads once the
  // parser catches up.
  void Pump(Connection* c) {
    if (c->pumping) {
      return;  // ResumeRead below re-entered OnData; outer loop continues
    }
    c->pumping = true;
    for (;;) {
      ProcessInput(c);
      if (!FlushOut(c)) {
        return;  // connection freed
      }
      if (c->parse_blocked &&
          OutPending(c) <= server->config_.out_high_watermark) {
        c->parse_blocked = false;
        continue;
      }
      if (c->read_paused && !c->parse_blocked && c->in.EnsureWritable(4096)) {
        c->read_paused = false;
        transport->ResumeRead(c->tconn);  // may push more bytes via OnData
        if (c->in.size() > 0) {
          continue;
        }
      }
      break;
    }
    c->pumping = false;
  }

  // Executes the fused get batch through the cache's pipelined path and
  // renders one "VALUE…/END" group per original get command, in order.
  void FlushGetBatch(Connection& c) {
    ConcurrentCache& cache = *server->cache_;
    const uint32_t n = static_cast<uint32_t>(c.batch_ids.size());
    if (n == 0) {
      return;
    }
    c.batch_hits.assign(n, 0);
    c.batch_slots.assign(n, {ArenaSink::kNoValue, 0});
    c.value_arena.clear();
    ArenaSink sink;
    sink.arena = &c.value_arena;
    sink.slots = &c.batch_slots;
    cache.GetBatch(c.batch_ids.data(), n, c.batch_hits.data(), &sink);

    uint64_t hits = 0;
    uint32_t idx = 0;
    for (uint32_t key_count : c.batch_op_key_counts) {
      for (uint32_t k = 0; k < key_count; ++k, ++idx) {
        if (c.batch_hits[idx] == 0 ||
            c.batch_slots[idx].first == ArenaSink::kNoValue) {
          continue;
        }
        ++hits;
        const auto [off, size] = c.batch_slots[idx];
        AppendStr(c.out, "VALUE ");
        AppendStr(c.out, c.batch_keys[idx]);
        AppendStr(c.out, " 0 ");
        AppendU64(c.out, size);
        AppendStr(c.out, "\r\n");
        c.out.insert(c.out.end(), c.value_arena.data() + off,
                     c.value_arena.data() + off + size);
        AppendStr(c.out, "\r\n");
      }
      AppendStr(c.out, "END\r\n");
    }
    Bump(batches);
    Bump(batched_gets, n);
    Bump(get_hits, hits);
    Bump(get_misses, n - hits);
    c.batch_ids.clear();
    c.batch_keys.clear();
    c.batch_op_key_counts.clear();
  }

  // Parses and executes everything buffered on the connection. Respects the
  // out-buffer high watermark (backpressure) and the batch cap.
  void ProcessInput(Connection* c) {
    ConcurrentCache& cache = *server->cache_;
    const ServerConfig& config = server->config_;
    c->parsed.Clear();
    while (!c->want_close) {
      if (OutPending(c) > config.out_high_watermark) {
        c->parse_blocked = true;  // resume after the next drain
        break;
      }
      const size_t op_watermark = c->parsed.ops.size();
      const ParseResult r = ParseCommand(c->in.view(), c->parsed);
      if (r.status == ParseStatus::kNeedMore) {
        break;
      }
      if (r.status == ParseStatus::kError || r.status == ParseStatus::kFatal) {
        FlushGetBatch(*c);
        AppendStr(c->out, r.error);
        Bump(parse_errors);
        c->in.Consume(r.consumed);
        if (r.status == ParseStatus::kFatal) {
          c->want_close = true;
        }
        continue;
      }
      const ParsedOp op = c->parsed.ops[op_watermark];
      c->in.Consume(r.consumed);
      switch (op.type) {
        case CmdType::kGet: {
          Bump(cmd_get, op.key_count);
          for (uint32_t k = 0; k < op.key_count; ++k) {
            const std::string_view key = c->parsed.keys[op.key_begin + k];
            c->batch_ids.push_back(KeyToId(key));
            c->batch_keys.push_back(key);
          }
          c->batch_op_key_counts.push_back(op.key_count);
          if (c->batch_ids.size() >= config.max_batch) {
            FlushGetBatch(*c);
          }
          break;
        }
        case CmdType::kSet: {
          FlushGetBatch(*c);
          Bump(cmd_set);
          const std::string_view key = c->parsed.keys[op.key_begin];
          const bool stored = cache.Set(KeyToId(key), op.value.data(),
                                        static_cast<uint32_t>(op.value.size()));
          if (!op.noreply) {
            AppendStr(c->out,
                      stored ? "STORED\r\n" : "SERVER_ERROR not supported\r\n");
          }
          break;
        }
        case CmdType::kDelete: {
          FlushGetBatch(*c);
          Bump(cmd_delete);
          const std::string_view key = c->parsed.keys[op.key_begin];
          const bool removed = cache.Delete(KeyToId(key));
          if (!op.noreply) {
            AppendStr(c->out, removed ? "DELETED\r\n" : "NOT_FOUND\r\n");
          }
          break;
        }
        case CmdType::kStats: {
          FlushGetBatch(*c);
          // Fold in this worker's own transport counters first; the other
          // workers' snapshots lag by at most one Poll iteration.
          PublishTransportCounters();
          const ServerStats s = server->TotalStats();
          AppendStat(c->out, "cmd_get", s.cmd_get);
          AppendStat(c->out, "cmd_set", s.cmd_set);
          AppendStat(c->out, "cmd_delete", s.cmd_delete);
          AppendStat(c->out, "get_hits", s.get_hits);
          AppendStat(c->out, "get_misses", s.get_misses);
          AppendStat(c->out, "batches", s.batches);
          AppendStat(c->out, "batched_gets", s.batched_gets);
          AppendStat(c->out, "parse_errors", s.parse_errors);
          AppendStat(c->out, "bytes_read", s.bytes_read);
          AppendStat(c->out, "bytes_written", s.bytes_written);
          AppendStat(c->out, "total_connections", s.connections_accepted);
          AppendStat(c->out, "threads", config.workers);
          AppendStat(c->out, "curr_items", cache.ApproxSize());
          {
            const ConcurrentCacheStats cs = cache.Stats();
            AppendStat(c->out, "cache_hits", cs.hits);
            AppendStat(c->out, "cache_misses", cs.misses);
          }
          AppendStr(c->out, "STAT transport ");
          AppendStr(c->out, server->transport_name_);
          AppendStr(c->out, "\r\n");
          AppendStat(c->out, "transport_syscalls", s.transport_syscalls);
          AppendStat(c->out, "transport_waits", s.transport_waits);
          AppendStat(c->out, "transport_events", s.transport_events);
          AppendStat(c->out, "transport_sqes", s.transport_sqes);
          AppendStat(c->out, "transport_sqe_batches", s.transport_sqe_batches);
          AppendStat(c->out, "transport_cqe_per_wait_x100",
                     s.transport_waits == 0
                         ? 0
                         : s.transport_events * 100 / s.transport_waits);
          AppendStat(c->out, "transport_recv_merges", s.transport_recv_merges);
          AppendStr(c->out, "END\r\n");
          break;
        }
        case CmdType::kVersion:
          FlushGetBatch(*c);
          AppendStr(c->out, kVersionLine);
          break;
        case CmdType::kQuit:
          FlushGetBatch(*c);
          c->want_close = true;
          break;
      }
    }
    FlushGetBatch(*c);
  }
};

// ---------------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------------

CacheServer::CacheServer(const ServerConfig& config, ConcurrentCache* cache)
    : config_(config), cache_(cache) {
  config_.workers = std::max(1u, config_.workers);
}

CacheServer::CacheServer(const ServerConfig& config)
    : CacheServer(config, nullptr) {
  owned_cache_ = std::make_unique<ConcurrentS3Fifo>(config_.cache);
  cache_ = owned_cache_.get();
}

CacheServer::~CacheServer() { Stop(); }

bool CacheServer::BindListener(Worker& w, std::string* error) {
  auto fail = [&](const char* what) {
    if (error != nullptr) {
      *error = std::string(what) + ": " + strerror(errno);
    }
    return false;
  };
  w.listen_fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (w.listen_fd < 0) {
    return fail("socket");
  }
  const int one = 1;
  setsockopt(w.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (setsockopt(w.listen_fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
    return fail("setsockopt(SO_REUSEPORT)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);  // worker 0 binds config port (possibly 0)
  if (inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return fail("inet_pton");
  }
  if (bind(w.listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return fail("bind");
  }
  if (listen(w.listen_fd, config_.listen_backlog) != 0) {
    return fail("listen");
  }
  if (port_ == 0) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (getsockname(w.listen_fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      return fail("getsockname");
    }
    port_ = ntohs(bound.sin_port);
  }
  return true;
}

bool CacheServer::SetupWorkers(TransportKind kind, std::string* error) {
  port_ = config_.port;
  for (unsigned i = 0; i < config_.workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->server = this;
    w->index = i;
    if (!BindListener(*w, error)) {
      workers_.push_back(std::move(w));  // so teardown closes the partial fds
      return false;
    }
    std::string note;
    w->transport = MakeTransport(kind, &note);
    if (w->transport == nullptr) {
      if (error != nullptr) {
        *error = note;
      }
      workers_.push_back(std::move(w));
      return false;
    }
    std::string terr;
    if (!w->transport->Init(w.get(), w->listen_fd, &terr)) {
      if (error != nullptr) {
        *error = std::string(w->transport->name()) + " init: " + terr;
      }
      workers_.push_back(std::move(w));
      return false;
    }
    workers_.push_back(std::move(w));
  }
  return true;
}

void CacheServer::TeardownWorkers() {
  for (auto& w : workers_) {
    w->transport.reset();  // closes connection fds, the ring, the eventfd
    w->conns.clear();
    if (w->listen_fd >= 0) {
      close(w->listen_fd);
      w->listen_fd = -1;
    }
  }
  workers_.clear();
}

bool CacheServer::Start(std::string* error) {
  if (running_.exchange(true)) {
    return true;
  }
  stop_.store(false);
  workers_.clear();
  transport_note_.clear();

  TransportKind kind = config_.transport;
  if (kind == TransportKind::kAuto) {
    std::string why;
    if (MakeUringTransport() != nullptr && IoUringAvailable(&why)) {
      kind = TransportKind::kUring;
    } else {
      kind = TransportKind::kEpoll;
      transport_note_ =
          "transport=auto: io_uring unavailable (" + why +
          "), falling back to epoll";
    }
  }
  std::string setup_error;
  if (!SetupWorkers(kind, &setup_error)) {
    if (kind == TransportKind::kUring &&
        config_.transport == TransportKind::kAuto) {
      // The probe passed but a full ring init failed (e.g. locked-memory
      // limits): redo every worker on epoll so the fleet is homogeneous.
      TeardownWorkers();
      transport_note_ = "transport=auto: io_uring init failed (" + setup_error +
                        "), falling back to epoll";
      kind = TransportKind::kEpoll;
      if (!SetupWorkers(kind, &setup_error)) {
        if (error != nullptr) {
          *error = setup_error;
        }
        Stop();
        return false;
      }
    } else {
      if (error != nullptr) {
        *error = setup_error;
      }
      Stop();
      return false;
    }
  }
  transport_name_ = TransportKindName(kind);
  threads_.reserve(workers_.size());
  for (auto& w : workers_) {
    threads_.emplace_back([this, worker = w.get()] { RunWorker(*worker); });
  }
  return true;
}

void CacheServer::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  stop_.store(true);
  for (auto& w : workers_) {
    if (w->transport != nullptr) {
      w->transport->Wake();
    }
  }
  for (auto& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
  threads_.clear();
  // Keep the workers (their final counters back TotalStats after Stop), but
  // release every kernel resource.
  for (auto& w : workers_) {
    w->transport.reset();
    w->conns.clear();
    if (w->listen_fd >= 0) {
      close(w->listen_fd);
      w->listen_fd = -1;
    }
  }
}

ServerStats CacheServer::TotalStats() const {
  ServerStats s;
  for (const auto& w : workers_) {
    s.connections_accepted += w->connections_accepted.load(std::memory_order_relaxed);
    s.cmd_get += w->cmd_get.load(std::memory_order_relaxed);
    s.cmd_set += w->cmd_set.load(std::memory_order_relaxed);
    s.cmd_delete += w->cmd_delete.load(std::memory_order_relaxed);
    s.get_hits += w->get_hits.load(std::memory_order_relaxed);
    s.get_misses += w->get_misses.load(std::memory_order_relaxed);
    s.batches += w->batches.load(std::memory_order_relaxed);
    s.batched_gets += w->batched_gets.load(std::memory_order_relaxed);
    s.parse_errors += w->parse_errors.load(std::memory_order_relaxed);
    s.bytes_read += w->bytes_read.load(std::memory_order_relaxed);
    s.bytes_written += w->bytes_written.load(std::memory_order_relaxed);
    s.transport_syscalls += w->t_syscalls.load(std::memory_order_relaxed);
    s.transport_waits += w->t_waits.load(std::memory_order_relaxed);
    s.transport_events += w->t_events.load(std::memory_order_relaxed);
    s.transport_sqes += w->t_sqes.load(std::memory_order_relaxed);
    s.transport_sqe_batches += w->t_sqe_batches.load(std::memory_order_relaxed);
    s.transport_recv_merges += w->t_recv_merges.load(std::memory_order_relaxed);
  }
  return s;
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

void CacheServer::RunWorker(Worker& w) {
  while (!stop_.load(std::memory_order_acquire)) {
    if (!w.transport->Poll(-1)) {
      break;
    }
    w.PublishTransportCounters();
  }
  w.PublishTransportCounters();
}

}  // namespace s3fifo
