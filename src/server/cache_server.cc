#include "src/server/cache_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <unordered_map>

#include "src/concurrent/concurrent_s3fifo.h"
#include "src/server/protocol.h"
#include "src/server/ring_buffer.h"

namespace s3fifo {

namespace {

constexpr const char* kVersionLine = "VERSION s3fifo-server 1.0\r\n";

void AppendU64(std::vector<char>& out, uint64_t v) {
  char buf[20];
  int n = 0;
  do {
    buf[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0) {
    out.push_back(buf[--n]);
  }
}

void AppendStr(std::vector<char>& out, std::string_view s) {
  out.insert(out.end(), s.begin(), s.end());
}

void AppendStat(std::vector<char>& out, std::string_view name, uint64_t v) {
  AppendStr(out, "STAT ");
  AppendStr(out, name);
  out.push_back(' ');
  AppendU64(out, v);
  AppendStr(out, "\r\n");
}

}  // namespace

// ---------------------------------------------------------------------------
// Per-connection and per-worker state
// ---------------------------------------------------------------------------

namespace {

// Copies each batched hit's value bytes into the connection's arena while
// the cache's read guard protects them; response rendering then references
// the arena, never cache memory.
struct ArenaSink final : public ValueSink {
  std::vector<char>* arena = nullptr;
  // offset in arena per batch index; kNoValue = miss or value-less cache.
  std::vector<std::pair<uint32_t, uint32_t>>* slots = nullptr;
  static constexpr uint32_t kNoValue = ~uint32_t{0};

  void OnValue(uint32_t index, const char* data, uint32_t size) override {
    (*slots)[index] = {static_cast<uint32_t>(arena->size()), size};
    arena->insert(arena->end(), data, data + size);
  }
};

struct Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}
  int fd;
  RingBuffer in;
  std::vector<char> out;
  size_t out_sent = 0;
  bool want_close = false;       // close once the out buffer drains
  bool parse_blocked = false;    // backpressure: out above high watermark
  ParseOutput parsed;

  // Scratch for the fused get batch (reused every flush).
  std::vector<uint64_t> batch_ids;
  std::vector<std::string_view> batch_keys;
  std::vector<uint8_t> batch_hits;
  std::vector<std::pair<uint32_t, uint32_t>> batch_slots;
  std::vector<char> value_arena;
  // (op index, keys in that op) for END placement when rendering.
  std::vector<uint32_t> batch_op_key_counts;

  size_t OutPending() const { return out.size() - out_sent; }
};

}  // namespace

struct CacheServer::Worker {
  CacheServer* server = nullptr;
  unsigned index = 0;
  int listen_fd = -1;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::unordered_map<int, std::unique_ptr<Connection>> conns;

  // Relaxed striped counters; folded by TotalStats().
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> cmd_get{0};
  std::atomic<uint64_t> cmd_set{0};
  std::atomic<uint64_t> cmd_delete{0};
  std::atomic<uint64_t> get_hits{0};
  std::atomic<uint64_t> get_misses{0};
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> batched_gets{0};
  std::atomic<uint64_t> parse_errors{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};

  void Bump(std::atomic<uint64_t>& c, uint64_t v = 1) {
    c.store(c.load(std::memory_order_relaxed) + v, std::memory_order_relaxed);
  }
};

// ---------------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------------

CacheServer::CacheServer(const ServerConfig& config, ConcurrentCache* cache)
    : config_(config), cache_(cache) {
  config_.workers = std::max(1u, config_.workers);
}

CacheServer::CacheServer(const ServerConfig& config)
    : CacheServer(config, nullptr) {
  owned_cache_ = std::make_unique<ConcurrentS3Fifo>(config_.cache);
  cache_ = owned_cache_.get();
}

CacheServer::~CacheServer() { Stop(); }

bool CacheServer::BindListener(Worker& w, std::string* error) {
  auto fail = [&](const char* what) {
    if (error != nullptr) {
      *error = std::string(what) + ": " + strerror(errno);
    }
    return false;
  };
  w.listen_fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (w.listen_fd < 0) {
    return fail("socket");
  }
  const int one = 1;
  setsockopt(w.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (setsockopt(w.listen_fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
    return fail("setsockopt(SO_REUSEPORT)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);  // worker 0 binds config port (possibly 0)
  if (inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return fail("inet_pton");
  }
  if (bind(w.listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return fail("bind");
  }
  if (listen(w.listen_fd, config_.listen_backlog) != 0) {
    return fail("listen");
  }
  if (port_ == 0) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (getsockname(w.listen_fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      return fail("getsockname");
    }
    port_ = ntohs(bound.sin_port);
  }
  return true;
}

bool CacheServer::Start(std::string* error) {
  if (running_.exchange(true)) {
    return true;
  }
  stop_.store(false);
  port_ = config_.port;
  workers_.clear();
  for (unsigned i = 0; i < config_.workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->server = this;
    w->index = i;
    if (!BindListener(*w, error)) {
      workers_.push_back(std::move(w));  // so Stop() closes the partial fds
      Stop();
      return false;
    }
    w->epoll_fd = epoll_create1(EPOLL_CLOEXEC);
    w->wake_fd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (w->epoll_fd < 0 || w->wake_fd < 0) {
      if (error != nullptr) {
        *error = std::string("epoll/eventfd: ") + strerror(errno);
      }
      workers_.push_back(std::move(w));
      Stop();
      return false;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = 0;  // tag: listener
    epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, w->listen_fd, &ev);
    ev.events = EPOLLIN;
    ev.data.u64 = 1;  // tag: wakeup
    epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, w->wake_fd, &ev);
    workers_.push_back(std::move(w));
  }
  threads_.reserve(workers_.size());
  for (auto& w : workers_) {
    threads_.emplace_back([this, worker = w.get()] { RunWorker(*worker); });
  }
  return true;
}

void CacheServer::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  stop_.store(true);
  for (auto& w : workers_) {
    if (w->wake_fd >= 0) {
      const uint64_t one = 1;
      [[maybe_unused]] ssize_t n = write(w->wake_fd, &one, sizeof(one));
    }
  }
  for (auto& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
  threads_.clear();
  for (auto& w : workers_) {
    for (auto& [fd, conn] : w->conns) {
      close(fd);
    }
    w->conns.clear();
    if (w->listen_fd >= 0) {
      close(w->listen_fd);
    }
    if (w->epoll_fd >= 0) {
      close(w->epoll_fd);
    }
    if (w->wake_fd >= 0) {
      close(w->wake_fd);
    }
    w->listen_fd = w->epoll_fd = w->wake_fd = -1;
  }
}

ServerStats CacheServer::TotalStats() const {
  ServerStats s;
  for (const auto& w : workers_) {
    s.connections_accepted += w->connections_accepted.load(std::memory_order_relaxed);
    s.cmd_get += w->cmd_get.load(std::memory_order_relaxed);
    s.cmd_set += w->cmd_set.load(std::memory_order_relaxed);
    s.cmd_delete += w->cmd_delete.load(std::memory_order_relaxed);
    s.get_hits += w->get_hits.load(std::memory_order_relaxed);
    s.get_misses += w->get_misses.load(std::memory_order_relaxed);
    s.batches += w->batches.load(std::memory_order_relaxed);
    s.batched_gets += w->batched_gets.load(std::memory_order_relaxed);
    s.parse_errors += w->parse_errors.load(std::memory_order_relaxed);
    s.bytes_read += w->bytes_read.load(std::memory_order_relaxed);
    s.bytes_written += w->bytes_written.load(std::memory_order_relaxed);
  }
  return s;
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

void CacheServer::RunWorker(Worker& w) {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];

  // Executes the fused get batch through the cache's pipelined path and
  // renders one "VALUE…/END" group per original get command, in order.
  auto flush_get_batch = [&](Connection& c) {
    ConcurrentCache& cache = *cache_;
    const uint32_t n = static_cast<uint32_t>(c.batch_ids.size());
  if (n == 0) {
    return;
  }
  c.batch_hits.assign(n, 0);
  c.batch_slots.assign(n, {ArenaSink::kNoValue, 0});
  c.value_arena.clear();
  ArenaSink sink;
  sink.arena = &c.value_arena;
  sink.slots = &c.batch_slots;
  cache.GetBatch(c.batch_ids.data(), n, c.batch_hits.data(), &sink);

  uint64_t hits = 0;
  uint32_t idx = 0;
  for (uint32_t key_count : c.batch_op_key_counts) {
    for (uint32_t k = 0; k < key_count; ++k, ++idx) {
      if (c.batch_hits[idx] == 0 || c.batch_slots[idx].first == ArenaSink::kNoValue) {
        continue;
      }
      ++hits;
      const auto [off, size] = c.batch_slots[idx];
      AppendStr(c.out, "VALUE ");
      AppendStr(c.out, c.batch_keys[idx]);
      AppendStr(c.out, " 0 ");
      AppendU64(c.out, size);
      AppendStr(c.out, "\r\n");
      c.out.insert(c.out.end(), c.value_arena.data() + off, c.value_arena.data() + off + size);
      AppendStr(c.out, "\r\n");
    }
    AppendStr(c.out, "END\r\n");
  }
  w.Bump(w.batches);
  w.Bump(w.batched_gets, n);
  w.Bump(w.get_hits, hits);
  w.Bump(w.get_misses, n - hits);
  c.batch_ids.clear();
  c.batch_keys.clear();
  c.batch_op_key_counts.clear();
  };

  auto close_conn = [&](Connection* c) {
    epoll_ctl(w.epoll_fd, EPOLL_CTL_DEL, c->fd, nullptr);
    close(c->fd);
    w.conns.erase(c->fd);
  };

  // Writes until EAGAIN; returns false if the connection died (already
  // closed) or was close-after-flush and drained.
  auto flush_out = [&](Connection* c) -> bool {
    while (c->out_sent < c->out.size()) {
      // MSG_NOSIGNAL: a client that vanished mid-response must surface as
      // EPIPE (we close the connection), not SIGPIPE the whole server.
      const ssize_t n = send(c->fd, c->out.data() + c->out_sent,
                             c->out.size() - c->out_sent, MSG_NOSIGNAL);
      if (n > 0) {
        c->out_sent += static_cast<size_t>(n);
        w.Bump(w.bytes_written, static_cast<uint64_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return true;  // EPOLLOUT will resume
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      close_conn(c);
      return false;
    }
    c->out.clear();
    c->out_sent = 0;
    if (c->want_close) {
      close_conn(c);
      return false;
    }
    return true;
  };

  // Parses and executes everything buffered on the connection. Respects the
  // out-buffer high watermark (backpressure) and the batch cap.
  auto process_input = [&](Connection* c) {
    ConcurrentCache& cache = *cache_;
    c->parsed.Clear();
    while (!c->want_close) {
      if (c->OutPending() > config_.out_high_watermark) {
        c->parse_blocked = true;  // resume after the next successful flush
        break;
      }
      const size_t op_watermark = c->parsed.ops.size();
      const ParseResult r = ParseCommand(c->in.view(), c->parsed);
      if (r.status == ParseStatus::kNeedMore) {
        break;
      }
      if (r.status == ParseStatus::kError || r.status == ParseStatus::kFatal) {
        flush_get_batch(*c);
        AppendStr(c->out, r.error);
        w.Bump(w.parse_errors);
        c->in.Consume(r.consumed);
        if (r.status == ParseStatus::kFatal) {
          c->want_close = true;
        }
        continue;
      }
      const ParsedOp op = c->parsed.ops[op_watermark];
      c->in.Consume(r.consumed);
      switch (op.type) {
        case CmdType::kGet: {
          w.Bump(w.cmd_get, op.key_count);
          for (uint32_t k = 0; k < op.key_count; ++k) {
            const std::string_view key = c->parsed.keys[op.key_begin + k];
            c->batch_ids.push_back(KeyToId(key));
            c->batch_keys.push_back(key);
          }
          c->batch_op_key_counts.push_back(op.key_count);
          if (c->batch_ids.size() >= config_.max_batch) {
            flush_get_batch(*c);
          }
          break;
        }
        case CmdType::kSet: {
          flush_get_batch(*c);
          w.Bump(w.cmd_set);
          const std::string_view key = c->parsed.keys[op.key_begin];
          const bool stored = cache.Set(KeyToId(key), op.value.data(),
                                        static_cast<uint32_t>(op.value.size()));
          if (!op.noreply) {
            AppendStr(c->out, stored ? "STORED\r\n" : "SERVER_ERROR not supported\r\n");
          }
          break;
        }
        case CmdType::kDelete: {
          flush_get_batch(*c);
          w.Bump(w.cmd_delete);
          const std::string_view key = c->parsed.keys[op.key_begin];
          const bool removed = cache.Delete(KeyToId(key));
          if (!op.noreply) {
            AppendStr(c->out, removed ? "DELETED\r\n" : "NOT_FOUND\r\n");
          }
          break;
        }
        case CmdType::kStats: {
          flush_get_batch(*c);
          const ServerStats s = TotalStats();
          AppendStat(c->out, "cmd_get", s.cmd_get);
          AppendStat(c->out, "cmd_set", s.cmd_set);
          AppendStat(c->out, "cmd_delete", s.cmd_delete);
          AppendStat(c->out, "get_hits", s.get_hits);
          AppendStat(c->out, "get_misses", s.get_misses);
          AppendStat(c->out, "batches", s.batches);
          AppendStat(c->out, "batched_gets", s.batched_gets);
          AppendStat(c->out, "parse_errors", s.parse_errors);
          AppendStat(c->out, "bytes_read", s.bytes_read);
          AppendStat(c->out, "bytes_written", s.bytes_written);
          AppendStat(c->out, "total_connections", s.connections_accepted);
          AppendStat(c->out, "threads", config_.workers);
          AppendStat(c->out, "curr_items", cache.ApproxSize());
          {
            const ConcurrentCacheStats cs = cache.Stats();
            AppendStat(c->out, "cache_hits", cs.hits);
            AppendStat(c->out, "cache_misses", cs.misses);
          }
          AppendStr(c->out, "END\r\n");
          break;
        }
        case CmdType::kVersion:
          flush_get_batch(*c);
          AppendStr(c->out, kVersionLine);
          break;
        case CmdType::kQuit:
          flush_get_batch(*c);
          c->want_close = true;
          break;
      }
    }
    flush_get_batch(*c);
  };

  // Alternates parse and flush until neither can make progress: parsing
  // stops at the out high watermark, flushing stops at EAGAIN, and room
  // freed by a complete flush re-enables parsing within the same call (an
  // EPOLLOUT edge never comes if the kernel buffer was never full).
  auto pump = [&](Connection* c) -> bool {
    for (;;) {
      process_input(c);
      if (!flush_out(c)) {
        return false;
      }
      if (c->parse_blocked && c->OutPending() <= config_.out_high_watermark) {
        c->parse_blocked = false;
        continue;
      }
      return true;
    }
  };

  // Reads until EAGAIN (or until the in-buffer is at capacity with the
  // parser backpressured — then reading simply pauses and TCP flow control
  // takes over), interleaving pump() so buffered commands are executed and
  // their buffer space reclaimed.
  auto handle_conn_io = [&](Connection* c) -> bool {
    for (;;) {
      bool in_full = false;
      while (true) {
        if (!c->in.EnsureWritable(4096)) {
          in_full = true;
          break;
        }
        const ssize_t n = read(c->fd, c->in.WritePtr(), c->in.WriteCapacity());
        if (n > 0) {
          c->in.CommitWrite(static_cast<size_t>(n));
          w.Bump(w.bytes_read, static_cast<uint64_t>(n));
          continue;
        }
        if (n == 0) {
          close_conn(c);
          return false;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          break;
        }
        if (errno == EINTR) {
          continue;
        }
        close_conn(c);
        return false;
      }
      if (!pump(c)) {
        return false;
      }
      if (!in_full) {
        return true;  // socket drained to EAGAIN
      }
      if (c->parse_blocked) {
        // Buffer full of commands we may not execute yet: stop reading.
        // The next EPOLLOUT flush unblocks the parser and re-enters here.
        return true;
      }
      if (c->in.size() + 4096 > c->in.max_capacity()) {
        // pump() freed nothing and parsing is not backpressured: a single
        // frame fills the whole buffer without parsing fatal. Cannot
        // happen with the current limits (kMaxLineLen, kMaxValueBytes are
        // both well under the buffer cap); drop the connection to bound
        // memory if a future limit change breaks that.
        close_conn(c);
        return false;
      }
    }
  };

  auto handle_accept = [&] {
    while (true) {
      const int fd = accept4(w.listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        return;  // EAGAIN or transient error: nothing more to accept now
      }
      const int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto conn = std::make_unique<Connection>(fd);
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
      ev.data.ptr = conn.get();
      if (epoll_ctl(w.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        close(fd);
        continue;
      }
      w.Bump(w.connections_accepted);
      w.conns.emplace(fd, std::move(conn));
    }
  };

  while (!stop_.load(std::memory_order_acquire)) {
    const int n = epoll_wait(w.epoll_fd, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[i];
      if (ev.data.u64 == 0) {
        handle_accept();
        continue;
      }
      if (ev.data.u64 == 1) {
        uint64_t drain = 0;
        [[maybe_unused]] ssize_t r = read(w.wake_fd, &drain, sizeof(drain));
        continue;  // stop_ checked at loop top
      }
      auto* c = static_cast<Connection*>(ev.data.ptr);
      if (w.conns.find(c->fd) == w.conns.end()) {
        continue;  // closed earlier in this event block
      }
      if ((ev.events & (EPOLLHUP | EPOLLERR)) != 0) {
        close_conn(c);
        continue;
      }
      if ((ev.events & EPOLLOUT) != 0) {
        if (!flush_out(c)) {
          continue;
        }
        if (c->parse_blocked && c->OutPending() <= config_.out_high_watermark) {
          c->parse_blocked = false;
          // Also resumes reads paused while the in-buffer sat full behind
          // the blocked parser (no EPOLLIN edge will announce that data).
          if (!handle_conn_io(c)) {
            continue;
          }
        }
      }
      if ((ev.events & (EPOLLIN | EPOLLRDHUP)) != 0) {
        handle_conn_io(c);
      }
    }
  }
}

}  // namespace s3fifo
