// Cache-as-a-service front end: a multi-threaded epoll event loop serving
// the memcached text subset (src/server/protocol.h) on top of the sharded
// lock-free concurrent caches.
//
// Architecture (one box per worker):
//
//   [SO_REUSEPORT listener]──accept──┐        per-connection state
//   [epoll, edge-triggered]          ▼
//     EPOLLIN ──read until EAGAIN──▶ RingBuffer ──ParseCommand*──▶ ops
//        consecutive get keys fuse into one batch ──▶ ConcurrentCache::
//        GetBatch (software-pipelined lock-free probes, values copied out
//        under the EBR read guard) ──▶ responses appended to out buffer
//     EPOLLOUT ──write until EAGAIN; backpressure: parsing pauses while
//        more than out_high_watermark bytes are queued unsent.
//
// Every worker owns its own listening socket bound with SO_REUSEPORT to the
// same port, so the kernel spreads connections across workers with no shared
// accept lock; a connection lives on one worker for its lifetime, which
// keeps all its buffers single-threaded. The cache itself is the only shared
// state, and its read path is lock-free (src/concurrent/).
#ifndef SRC_SERVER_CACHE_SERVER_H_
#define SRC_SERVER_CACHE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/concurrent/concurrent_cache.h"

namespace s3fifo {

struct ServerConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;     // 0 = pick an ephemeral port (read back via port())
  unsigned workers = 1;  // event loops == SO_REUSEPORT listeners
  ConcurrentCacheConfig cache;  // sharded lock-free S3-FIFO underneath
  // Consecutive pipelined gets fused into one GetBatch call.
  uint32_t max_batch = 256;
  // Parsing pauses while this many response bytes are queued unsent.
  size_t out_high_watermark = 4 << 20;
  int listen_backlog = 256;
};

// Aggregated across workers; counters are relaxed atomics, exact once the
// connections are quiescent.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t cmd_get = 0;       // keys requested via get/gets/mget
  uint64_t cmd_set = 0;
  uint64_t cmd_delete = 0;
  uint64_t get_hits = 0;
  uint64_t get_misses = 0;
  uint64_t batches = 0;       // GetBatch calls issued
  uint64_t batched_gets = 0;  // keys routed through GetBatch
  uint64_t parse_errors = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
};

class CacheServer {
 public:
  // Serves `cache` (not owned) — the loopback parity tests hand in a
  // shards=1 cache and inspect it afterwards.
  CacheServer(const ServerConfig& config, ConcurrentCache* cache);
  // Owns a ConcurrentS3Fifo built from config.cache.
  explicit CacheServer(const ServerConfig& config);
  ~CacheServer();

  CacheServer(const CacheServer&) = delete;
  CacheServer& operator=(const CacheServer&) = delete;

  // Binds all listeners and spawns the worker threads. Returns false with
  // `*error` set on socket failures.
  bool Start(std::string* error = nullptr);
  // Wakes every worker, closes all sockets, joins the threads. Idempotent.
  void Stop();

  // The bound port (after Start); useful with config.port = 0.
  uint16_t port() const { return port_; }
  ServerStats TotalStats() const;
  ConcurrentCache& cache() { return *cache_; }

 private:
  struct Worker;

  bool BindListener(Worker& w, std::string* error);
  void RunWorker(Worker& w);

  ServerConfig config_;
  std::unique_ptr<ConcurrentCache> owned_cache_;
  ConcurrentCache* cache_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  uint16_t port_ = 0;
};

}  // namespace s3fifo

#endif  // SRC_SERVER_CACHE_SERVER_H_
