// Cache-as-a-service front end: a multi-threaded event loop serving the
// memcached text subset (src/server/protocol.h) on top of the sharded
// lock-free concurrent caches.
//
// Architecture (one box per worker):
//
//   [SO_REUSEPORT listener]──accept──┐        per-connection state
//   [Transport: epoll or io_uring]   ▼
//     incoming bytes ──pushed──▶ RingBuffer ──ParseCommand*──▶ ops
//        consecutive get keys fuse into one batch ──▶ ConcurrentCache::
//        GetBatch (software-pipelined lock-free probes, values copied out
//        under the EBR read guard) ──▶ responses appended to out buffer
//     outgoing bytes ──Send()──▶ transport send queue; backpressure:
//        parsing pauses while more than out_high_watermark bytes are queued
//        unsent, and reading pauses once the in-buffer fills behind the
//        blocked parser.
//
// The event loop mechanics live behind the Transport interface
// (src/server/transport.h): the epoll backend is the PR-8 readiness loop,
// the io_uring backend batches the whole loop iteration into one
// submit-and-wait syscall. `ServerConfig::transport` picks the backend;
// kAuto probes io_uring and falls back to epoll when the kernel denies it.
//
// Every worker owns its own listening socket bound with SO_REUSEPORT to the
// same port, so the kernel spreads connections across workers with no shared
// accept lock; a connection lives on one worker for its lifetime, which
// keeps all its buffers single-threaded. The cache itself is the only shared
// state, and its read path is lock-free (src/concurrent/).
#ifndef SRC_SERVER_CACHE_SERVER_H_
#define SRC_SERVER_CACHE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/concurrent/concurrent_cache.h"
#include "src/server/transport.h"

namespace s3fifo {

struct ServerConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;     // 0 = pick an ephemeral port (read back via port())
  unsigned workers = 1;  // event loops == SO_REUSEPORT listeners
  ConcurrentCacheConfig cache;  // sharded lock-free S3-FIFO underneath
  // Data-plane backend; kAuto probes io_uring and falls back to epoll.
  TransportKind transport = TransportKind::kAuto;
  // Consecutive pipelined gets fused into one GetBatch call.
  uint32_t max_batch = 256;
  // Parsing pauses while this many response bytes are queued unsent.
  size_t out_high_watermark = 4 << 20;
  int listen_backlog = 256;
};

// Aggregated across workers; counters are relaxed atomics, exact once the
// connections are quiescent.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t cmd_get = 0;       // keys requested via get/gets/mget
  uint64_t cmd_set = 0;
  uint64_t cmd_delete = 0;
  uint64_t get_hits = 0;
  uint64_t get_misses = 0;
  uint64_t batches = 0;       // GetBatch calls issued
  uint64_t batched_gets = 0;  // keys routed through GetBatch
  uint64_t parse_errors = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  // Data-plane efficiency (summed TransportCounters across workers): how
  // many kernel crossings the serving path cost, and how well the io_uring
  // backend batched them. syscalls/cmd and events/wait are the headline
  // ratios; recv_merges counts multishot recv completions that needed no
  // re-arm SQE.
  uint64_t transport_syscalls = 0;
  uint64_t transport_waits = 0;
  uint64_t transport_events = 0;
  uint64_t transport_sqes = 0;
  uint64_t transport_sqe_batches = 0;
  uint64_t transport_recv_merges = 0;
};

class CacheServer {
 public:
  // Serves `cache` (not owned) — the loopback parity tests hand in a
  // shards=1 cache and inspect it afterwards.
  CacheServer(const ServerConfig& config, ConcurrentCache* cache);
  // Owns a ConcurrentS3Fifo built from config.cache.
  explicit CacheServer(const ServerConfig& config);
  ~CacheServer();

  CacheServer(const CacheServer&) = delete;
  CacheServer& operator=(const CacheServer&) = delete;

  // Binds all listeners, resolves the transport backend, and spawns the
  // worker threads. With transport=kAuto an io_uring failure falls back to
  // epoll (see transport_note()); with an explicit kUring it fails instead,
  // with *error naming the denial (e.g. "io_uring_setup: EPERM ...").
  bool Start(std::string* error = nullptr);
  // Wakes every worker, closes all sockets, joins the threads. Idempotent.
  void Stop();

  // The bound port (after Start); useful with config.port = 0.
  uint16_t port() const { return port_; }
  // Resolved backend after Start(): "epoll" or "uring".
  const char* transport_name() const { return transport_name_; }
  // Non-empty when kAuto fell back to epoll; one log-worthy line.
  const std::string& transport_note() const { return transport_note_; }
  ServerStats TotalStats() const;
  ConcurrentCache& cache() { return *cache_; }

 private:
  struct Worker;

  bool BindListener(Worker& w, std::string* error);
  bool SetupWorkers(TransportKind kind, std::string* error);
  void TeardownWorkers();
  void RunWorker(Worker& w);

  ServerConfig config_;
  std::unique_ptr<ConcurrentCache> owned_cache_;
  ConcurrentCache* cache_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  uint16_t port_ = 0;
  const char* transport_name_ = "?";
  std::string transport_note_;
};

}  // namespace s3fifo

#endif  // SRC_SERVER_CACHE_SERVER_H_
