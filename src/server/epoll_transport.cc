// Readiness-model transport: edge-triggered epoll + per-fd nonblocking
// read/send syscalls. This is the seed PR-8 event loop factored behind the
// Transport interface, byte-for-byte identical on the wire; it is always
// available and serves as the fallback when io_uring is denied.
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <deque>
#include <memory>
#include <vector>

#include "src/server/transport.h"

namespace s3fifo {

namespace {

class EpollTransport final : public Transport {
 public:
  struct EConn {
    int fd = -1;
    void* ud = nullptr;
    // Owned outgoing buffers; front() is partially sent up to front_off.
    std::deque<std::vector<char>> sendq;
    size_t front_off = 0;
    size_t queued_bytes = 0;
    bool read_paused = false;  // handler returned false from GetReadBuffer
    bool read_ready = false;   // an unconsumed EPOLLIN edge while paused
    bool dead = false;         // close deferred to the end of the dispatch
  };

  ~EpollTransport() override {
    for (EConn* c : conns_) {
      if (c->fd >= 0) {
        close(c->fd);
      }
      delete c;
    }
    for (auto& [c, notify] : dead_) {
      delete c;  // destruction never notifies
    }
    if (epoll_fd_ >= 0) {
      close(epoll_fd_);
    }
    if (wake_fd_ >= 0) {
      close(wake_fd_);
    }
  }

  bool Init(Handler* handler, int listen_fd, std::string* error) override {
    handler_ = handler;
    listen_fd_ = listen_fd;
    epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
    wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (epoll_fd_ < 0 || wake_fd_ < 0) {
      if (error != nullptr) {
        *error = std::string("epoll/eventfd: ") + strerror(errno);
      }
      return false;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = &wake_tag_;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
    if (listen_fd_ >= 0) {
      ev.events = EPOLLIN;
      ev.data.ptr = &listen_tag_;
      epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
    }
    return true;
  }

  bool Poll(int timeout_ms) override {
    constexpr int kMaxEvents = 64;
    epoll_event events[kMaxEvents];
    int n;
    do {
      n = epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
      counters_.syscalls++;
      counters_.waits++;
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      return false;
    }
    counters_.events += static_cast<uint64_t>(n);
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[i];
      if (ev.data.ptr == &wake_tag_) {
        uint64_t drain = 0;
        [[maybe_unused]] ssize_t r = read(wake_fd_, &drain, sizeof(drain));
        counters_.syscalls++;
        continue;
      }
      if (ev.data.ptr == &listen_tag_) {
        HandleAccept();
        continue;
      }
      auto* c = static_cast<EConn*>(ev.data.ptr);
      if (c->dead) {
        continue;  // closed earlier in this event block
      }
      if ((ev.events & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseInternal(c, /*notify=*/true);
        continue;
      }
      if ((ev.events & EPOLLOUT) != 0) {
        if (!FlushSendQueue(c)) {
          continue;
        }
        if (c->queued_bytes == 0) {
          handler_->OnWritable(AsConn(c), c->ud);
          if (c->dead) {
            continue;
          }
        }
      }
      if ((ev.events & (EPOLLIN | EPOLLRDHUP)) != 0) {
        c->read_ready = true;
        ReadReady(c);
      }
    }
    DeliverClosures();
    return true;
  }

  void Wake() override {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
  }

  Conn* Adopt(int fd, void* ud) override {
    auto* c = new EConn;
    c->fd = fd;
    c->ud = ud;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
    ev.data.ptr = c;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      counters_.syscalls++;
      close(fd);
      delete c;
      return nullptr;
    }
    counters_.syscalls++;
    conns_.push_back(c);
    return AsConn(c);
  }

  void Send(Conn* conn, std::vector<char>* data) override {
    EConn* c = FromConn(conn);
    if (data->empty() || c->dead) {
      return;
    }
    c->queued_bytes += data->size();
    c->sendq.push_back(TakeBuffer(data));
    // Try immediately: with edge-triggered EPOLLOUT, the writable edge for a
    // never-full socket never fires — flush eagerly, fall back to the edge
    // only on EAGAIN.
    FlushSendQueue(c);
  }

  size_t SendQueueBytes(const Conn* conn) const override {
    return FromConn(conn)->queued_bytes;
  }

  void ResumeRead(Conn* conn) override {
    EConn* c = FromConn(conn);
    if (!c->read_paused || c->dead) {
      return;
    }
    c->read_paused = false;
    if (c->read_ready) {
      // The edge already fired while paused; re-enter the read loop now, no
      // new EPOLLIN will announce the buffered data.
      ReadReady(c);
    }
  }

  void Close(Conn* conn) override {
    CloseInternal(FromConn(conn), /*notify=*/false);
  }

  const TransportCounters& counters() const override { return counters_; }
  const char* name() const override { return "epoll"; }

 private:
  static Conn* AsConn(EConn* c) { return reinterpret_cast<Conn*>(c); }
  static EConn* FromConn(Conn* c) { return reinterpret_cast<EConn*>(c); }
  static const EConn* FromConn(const Conn* c) {
    return reinterpret_cast<const EConn*>(c);
  }

  std::vector<char> TakeBuffer(std::vector<char>* data) {
    std::vector<char> owned;
    if (!free_bufs_.empty()) {
      owned = std::move(free_bufs_.back());
      free_bufs_.pop_back();
    }
    owned.swap(*data);
    data->clear();
    return owned;
  }

  void RecycleBuffer(std::vector<char>&& buf) {
    if (free_bufs_.size() < 16) {
      buf.clear();
      free_bufs_.push_back(std::move(buf));
    }
  }

  void HandleAccept() {
    while (true) {
      const int fd =
          accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      counters_.syscalls++;
      if (fd < 0) {
        return;  // EAGAIN or transient error: nothing more to accept now
      }
      const int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      counters_.syscalls++;
      Conn* conn = Adopt(fd, nullptr);
      if (conn == nullptr) {
        continue;
      }
      counters_.accepts++;
      FromConn(conn)->ud = handler_->OnAccept(conn);
    }
  }

  // Sends until EAGAIN or the queue drains. False if the connection died
  // (already closed and OnClose delivered).
  bool FlushSendQueue(EConn* c) {
    while (!c->sendq.empty()) {
      std::vector<char>& front = c->sendq.front();
      // MSG_NOSIGNAL: a client that vanished mid-response must surface as
      // EPIPE (we close the connection), not SIGPIPE the whole process.
      const ssize_t n = send(c->fd, front.data() + c->front_off,
                             front.size() - c->front_off, MSG_NOSIGNAL);
      counters_.syscalls++;
      if (n > 0) {
        c->front_off += static_cast<size_t>(n);
        c->queued_bytes -= static_cast<size_t>(n);
        if (c->front_off == front.size()) {
          RecycleBuffer(std::move(front));
          c->sendq.pop_front();
          c->front_off = 0;
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return true;  // the EPOLLOUT edge will resume
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      CloseInternal(c, /*notify=*/true);
      return false;
    }
    return true;
  }

  // Reads until EAGAIN, pushing bytes through the handler as they land (the
  // handler parses and may Send/Close re-entrantly).
  void ReadReady(EConn* c) {
    while (!c->dead) {
      char* buf = nullptr;
      size_t cap = 0;
      if (!handler_->GetReadBuffer(AsConn(c), c->ud, &buf, &cap)) {
        c->read_paused = true;  // read_ready stays set for ResumeRead
        return;
      }
      const ssize_t n = read(c->fd, buf, cap);
      counters_.syscalls++;
      if (n > 0) {
        handler_->OnData(AsConn(c), c->ud, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) {
        CloseInternal(c, /*notify=*/true);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        c->read_ready = false;
        return;
      }
      if (errno == EINTR) {
        continue;
      }
      CloseInternal(c, /*notify=*/true);
      return;
    }
  }

  void CloseInternal(EConn* c, bool notify) {
    if (c->dead) {
      return;
    }
    c->dead = true;
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c->fd, nullptr);
    close(c->fd);
    counters_.syscalls += 2;
    c->fd = -1;
    // The EConn stays allocated until the dispatch batch ends (later events
    // in the same epoll_wait return may still point at it), and OnClose is
    // deferred with it: a death detected inside a handler-initiated Send()
    // must not re-enter the handler while it still holds the connection.
    dead_.push_back({c, notify});
    for (size_t i = 0; i < conns_.size(); ++i) {
      if (conns_[i] == c) {
        conns_[i] = conns_.back();
        conns_.pop_back();
        break;
      }
    }
  }

  void DeliverClosures() {
    // OnClose may Close() other conns, growing dead_; index loop, no iterators.
    for (size_t i = 0; i < dead_.size(); ++i) {
      if (dead_[i].second) {
        handler_->OnClose(AsConn(dead_[i].first), dead_[i].first->ud);
      }
    }
    for (auto& [c, notify] : dead_) {
      delete c;
    }
    dead_.clear();
  }

  Handler* handler_ = nullptr;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  // Distinct addresses used as epoll_event tags for non-connection fds.
  char listen_tag_ = 0;
  char wake_tag_ = 0;
  std::vector<EConn*> conns_;
  std::vector<std::pair<EConn*, bool>> dead_;  // (conn, deliver OnClose)
  std::vector<std::vector<char>> free_bufs_;
  TransportCounters counters_;
};

}  // namespace

std::unique_ptr<Transport> MakeEpollTransport() {
  return std::make_unique<EpollTransport>();
}

}  // namespace s3fifo
