#include "src/server/loadgen.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "src/server/protocol.h"
#include "src/server/ring_buffer.h"
#include "src/server/transport.h"

namespace s3fifo {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

void AppendU64(std::vector<char>& out, uint64_t v) {
  char buf[20];
  int n = 0;
  do {
    buf[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0) {
    out.push_back(buf[--n]);
  }
}

void AppendStr(std::vector<char>& out, std::string_view s) {
  out.insert(out.end(), s.begin(), s.end());
}

// What the next response on the wire must look like.
enum class RespKind : uint8_t { kGet, kLine };

struct Pending {
  RespKind kind;
  uint64_t intended_ns;  // schedule time (open loop) or send time (closed)
};

struct ClientConn {
  int fd = -1;                        // until adopted by the transport
  Transport::Conn* tconn = nullptr;   // null after the server closed it
  std::vector<char> out;              // encoded requests awaiting Send()
  RingBuffer in{64 * 1024};
  std::deque<Pending> pending;
  // Replay cursor: requests trace[cursor], trace[cursor + stride], ...
  uint64_t cursor = 0;
  uint64_t stride = 1;
  uint64_t issued = 0;
  uint64_t budget = 0;       // requests this connection may issue
  uint64_t next_due_ns = 0;  // open loop only
  uint64_t stride_interval_ns = 0;  // open loop: gap between this conn's sends
  // Mid-response state: bytes of a VALUE body (plus trailing \r\n) still to
  // skip before line parsing resumes.
  uint64_t skip_bytes = 0;

  uint64_t ops = 0;
  uint64_t gets = 0;
  uint64_t get_hits = 0;
  LatencyHistogram latency;

  bool done_issuing() const { return issued >= budget; }
  bool drained() const { return done_issuing() && pending.empty(); }
};

// Appends the memcached encoding of trace request `r` and its expected
// response to the connection.
void EncodeRequest(ClientConn& c, const Request& r, uint32_t set_value_bytes,
                   uint64_t intended_ns) {
  switch (r.op) {
    case OpType::kGet:
      AppendStr(c.out, "get ");
      AppendU64(c.out, r.id);
      AppendStr(c.out, "\r\n");
      c.pending.push_back({RespKind::kGet, intended_ns});
      break;
    case OpType::kSet: {
      const uint32_t bytes =
          std::min(set_value_bytes, static_cast<uint32_t>(kMaxValueBytes));
      AppendStr(c.out, "set ");
      AppendU64(c.out, r.id);
      AppendStr(c.out, " 0 0 ");
      AppendU64(c.out, bytes);
      AppendStr(c.out, "\r\n");
      c.out.insert(c.out.end(), bytes, 'x');
      AppendStr(c.out, "\r\n");
      c.pending.push_back({RespKind::kLine, intended_ns});
      break;
    }
    case OpType::kDelete:
      AppendStr(c.out, "delete ");
      AppendU64(c.out, r.id);
      AppendStr(c.out, "\r\n");
      c.pending.push_back({RespKind::kLine, intended_ns});
      break;
  }
}

// Consumes completed responses from the connection's in-buffer, recording a
// latency sample per completed request. Returns false on protocol confusion
// (an error line while a get was expected still completes that get).
bool ConsumeResponses(ClientConn& c, uint64_t now_ns) {
  for (;;) {
    if (c.skip_bytes > 0) {
      const uint64_t take = std::min<uint64_t>(c.skip_bytes, c.in.size());
      c.in.Consume(take);
      c.skip_bytes -= take;
      if (c.skip_bytes > 0) {
        return true;  // body still arriving
      }
    }
    const std::string_view buf = c.in.view();
    const size_t nl = buf.find('\n');
    if (nl == std::string_view::npos) {
      return true;
    }
    std::string_view line = buf.substr(0, nl);
    if (!line.empty() && line.back() == '\r') {
      line.remove_suffix(1);
    }
    if (c.pending.empty()) {
      return false;  // response with no request outstanding
    }
    const Pending& p = c.pending.front();
    if (p.kind == RespKind::kGet && line.substr(0, 6) == "VALUE ") {
      // "VALUE <key> <flags> <bytes>": trailing token is the body length.
      const size_t sp = line.rfind(' ');
      uint64_t bytes = 0;
      for (char ch : line.substr(sp + 1)) {
        if (ch < '0' || ch > '9') {
          return false;
        }
        bytes = bytes * 10 + static_cast<uint64_t>(ch - '0');
      }
      c.get_hits++;
      c.in.Consume(nl + 1);
      c.skip_bytes = bytes + 2;  // body + \r\n
      continue;
    }
    c.in.Consume(nl + 1);
    if (p.kind == RespKind::kGet) {
      c.gets++;
    }
    c.ops++;
    c.latency.Add(now_ns > p.intended_ns ? now_ns - p.intended_ns : 0);
    c.pending.pop_front();
  }
}

bool ConnectLoopback(ClientConn& c, const std::string& host, uint16_t port,
                     std::string* error) {
  c.fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (c.fd < 0) {
    *error = std::string("socket: ") + strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "bad host " + host;
    return false;
  }
  if (connect(c.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    // EINTR leaves the connect completing asynchronously (an in-process
    // io_uring peer's task-work can interrupt us): wait for writability and
    // read the final status instead of failing.
    bool ok = false;
    if (errno == EINTR) {
      pollfd pfd{c.fd, POLLOUT, 0};
      int pr;
      do {
        pr = poll(&pfd, 1, 5000);
      } while (pr < 0 && errno == EINTR);
      int soerr = 0;
      socklen_t slen = sizeof(soerr);
      if (pr == 1 &&
          getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &soerr, &slen) == 0 &&
          soerr == 0) {
        ok = true;
      } else {
        errno = soerr != 0 ? soerr : ETIMEDOUT;
      }
    }
    if (!ok) {
      *error = std::string("connect: ") + strerror(errno);
      return false;
    }
  }
  const int one = 1;
  setsockopt(c.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Nonblocking from here on; the transport multiplexes connections.
  const int flags = fcntl(c.fd, F_GETFL, 0);
  fcntl(c.fd, F_SETFL, flags | O_NONBLOCK);
  return true;
}

struct ThreadOutcome {
  uint64_t ops = 0, gets = 0, get_hits = 0;
  LatencyHistogram latency;
  bool ok = true;
  std::string error;
};

// One client thread: owns a transport instance (listener-less) and the
// connections adopted into it. Requests are encoded into each connection's
// out buffer and handed to the transport; completed responses arrive through
// the Handler callbacks.
class ClientThread final : public Transport::Handler {
 public:
  ClientThread(const LoadGenConfig& cfg, const Trace& trace,
               std::vector<ClientConn>* conns, uint64_t deadline_ns,
               ThreadOutcome* outcome)
      : cfg_(cfg),
        reqs_(trace.requests()),
        conns_(conns),
        deadline_ns_(deadline_ns),
        outcome_(outcome),
        open_loop_(cfg.target_rate > 0) {}

  void Run(TransportKind kind) {
    std::string note;
    auto transport = MakeTransport(kind, &note);
    std::string err;
    if (transport == nullptr || !transport->Init(this, -1, &err)) {
      for (auto& c : *conns_) {
        if (c.fd >= 0) {
          close(c.fd);
          c.fd = -1;
        }
      }
      Fail("transport init: " + (transport == nullptr ? note : err));
      return;
    }
    transport_ = transport.get();
    for (auto& c : *conns_) {
      c.tconn = transport_->Adopt(c.fd, &c);
      c.fd = -1;  // the transport owns it now
      if (c.tconn == nullptr) {
        Fail("transport adopt failed");
        return;
      }
    }

    // Closed loop: prime every connection's pipeline.
    if (!open_loop_) {
      const uint64_t now = NowNs();
      for (auto& c : *conns_) {
        for (unsigned d = 0; d < cfg_.pipeline_depth && !c.done_issuing();
             ++d) {
          IssueOne(c, now);
        }
        FlushOut(c);
      }
    }

    while (!failed()) {
      uint64_t now = NowNs();
      bool all_drained = true;
      for (auto& c : *conns_) {
        if (open_loop_ && c.tconn != nullptr) {
          // Issue everything the schedule says is due, independent of
          // completions (the burst cap only bounds one iteration's work; the
          // schedule itself never slips).
          unsigned burst = 0;
          while (!c.done_issuing() && now >= c.next_due_ns &&
                 (deadline_ns_ == 0 || c.next_due_ns < deadline_ns_) &&
                 burst < 4096) {
            IssueOne(c, c.next_due_ns);
            c.next_due_ns += c.stride_interval_ns;
            burst++;
          }
          if (deadline_ns_ != 0 && c.next_due_ns >= deadline_ns_) {
            c.budget = c.issued;  // deadline reached: stop issuing
          }
          FlushOut(c);
        }
        if (!c.drained()) {
          all_drained = false;
        }
      }
      if (all_drained || failed()) {
        break;
      }

      int timeout_ms = 100;
      if (open_loop_) {
        uint64_t next_due = ~uint64_t{0};
        for (auto& c : *conns_) {
          if (!c.done_issuing()) {
            next_due = std::min(next_due, c.next_due_ns);
          }
        }
        if (next_due != ~uint64_t{0}) {
          now = NowNs();
          timeout_ms =
              next_due <= now
                  ? 0
                  : static_cast<int>(std::min<uint64_t>(
                        (next_due - now) / 1000000, 100));
        }
      }
      if (!transport_->Poll(timeout_ms)) {
        Fail("transport poll failed");
        break;
      }
    }

    for (auto& c : *conns_) {
      outcome_->ops += c.ops;
      outcome_->gets += c.gets;
      outcome_->get_hits += c.get_hits;
      outcome_->latency.Merge(c.latency);
    }
    transport_ = nullptr;  // `transport` destruction closes the fds
  }

  // --- Transport::Handler --------------------------------------------------

  void* OnAccept(Transport::Conn* /*conn*/) override {
    return nullptr;  // client-only transport: no listener, never called
  }

  bool GetReadBuffer(Transport::Conn* /*conn*/, void* ud, char** buf,
                     size_t* cap) override {
    auto* c = static_cast<ClientConn*>(ud);
    if (!c->in.EnsureWritable(4096)) {
      // Drain parsed responses to reclaim buffer space before giving up —
      // an open-loop backlog can exceed the buffer in one burst.
      if (!ConsumeResponses(*c, NowNs())) {
        Fail("malformed response from server");
        return false;
      }
      if (!c->in.EnsureWritable(4096)) {
        Fail("client in-buffer overflow");
        return false;
      }
    }
    *buf = c->in.WritePtr();
    *cap = c->in.WriteCapacity();
    return true;
  }

  void OnData(Transport::Conn* /*conn*/, void* ud, size_t n) override {
    auto* c = static_cast<ClientConn*>(ud);
    c->in.CommitWrite(n);
    const uint64_t now = NowNs();
    if (!ConsumeResponses(*c, now)) {
      Fail("malformed response from server");
      return;
    }
    if (!open_loop_) {
      // Closed loop: refill the pipeline to depth.
      while (!c->done_issuing() && c->pending.size() < cfg_.pipeline_depth) {
        IssueOne(*c, now);
      }
      FlushOut(*c);
    }
  }

  void OnWritable(Transport::Conn* /*conn*/, void* /*ud*/) override {}

  void OnClose(Transport::Conn* /*conn*/, void* ud) override {
    auto* c = static_cast<ClientConn*>(ud);
    c->tconn = nullptr;
    if (!c->drained()) {
      Fail("server closed connection");
    }
  }

 private:
  void Fail(std::string msg) {
    if (outcome_->ok) {
      outcome_->ok = false;
      outcome_->error = std::move(msg);
    }
  }
  bool failed() const { return !outcome_->ok; }

  void IssueOne(ClientConn& c, uint64_t intended_ns) {
    EncodeRequest(c, reqs_[c.cursor % reqs_.size()], cfg_.set_value_bytes,
                  intended_ns);
    c.cursor += c.stride;
    c.issued++;
  }

  void FlushOut(ClientConn& c) {
    if (!c.out.empty() && c.tconn != nullptr) {
      transport_->Send(c.tconn, &c.out);  // comes back empty
    }
  }

  const LoadGenConfig& cfg_;
  const std::vector<Request>& reqs_;
  std::vector<ClientConn>* conns_;
  const uint64_t deadline_ns_;
  ThreadOutcome* outcome_;
  const bool open_loop_;
  Transport* transport_ = nullptr;
};

}  // namespace

LoadGenResult RunLoadGen(const LoadGenConfig& config, const Trace& trace) {
  LoadGenResult result;
  if (trace.empty()) {
    result.error = "empty trace";
    return result;
  }
  const unsigned nthreads = std::max(1u, config.threads);
  const unsigned nconns = std::max(nthreads, config.connections);
  const bool open_loop = config.target_rate > 0;

  // Resolve the backend once so every thread runs the same one.
  TransportKind kind = config.transport;
  if (kind == TransportKind::kAuto) {
    std::string why;
    kind = (MakeUringTransport() != nullptr && IoUringAvailable(&why))
               ? TransportKind::kUring
               : TransportKind::kEpoll;
  } else if (kind == TransportKind::kUring) {
    std::string why;
    if (MakeUringTransport() == nullptr || !IoUringAvailable(&why)) {
      result.error = "transport=uring: io_uring unavailable (" + why + ")";
      return result;
    }
  }
  result.transport_used = TransportKindName(kind);

  uint64_t total_ops = config.max_ops == 0 ? trace.size() : config.max_ops;
  if (open_loop && config.duration_s > 0) {
    total_ops = ~uint64_t{0};  // the deadline is the stop condition
  }

  // Connections share the trace by stride so the merged request stream
  // covers it; per-connection order stays deterministic.
  std::vector<std::vector<ClientConn>> per_thread(nthreads);
  const uint64_t per_conn_interval_ns =
      open_loop ? static_cast<uint64_t>(1e9 * nconns / config.target_rate) : 0;
  const uint64_t start_ns = NowNs();
  for (unsigned i = 0; i < nconns; ++i) {
    ClientConn c;
    std::string err;
    if (!ConnectLoopback(c, config.host, config.port, &err)) {
      result.error = err;
      if (c.fd >= 0) {
        close(c.fd);
      }
      for (auto& tconns : per_thread) {
        for (auto& cc : tconns) {
          close(cc.fd);
        }
      }
      return result;
    }
    c.cursor = i;
    c.stride = nconns;
    c.budget = total_ops == ~uint64_t{0}
                   ? total_ops
                   : total_ops / nconns + (i < total_ops % nconns ? 1 : 0);
    c.stride_interval_ns = per_conn_interval_ns;
    // Stagger the schedules so the aggregate rate is smooth, not n-bursty.
    c.next_due_ns =
        start_ns + (open_loop ? per_conn_interval_ns * i / nconns : 0);
    per_thread[i % nthreads].push_back(std::move(c));
  }

  const uint64_t deadline_ns =
      open_loop && config.duration_s > 0
          ? start_ns + static_cast<uint64_t>(config.duration_s * 1e9)
          : 0;

  std::vector<ThreadOutcome> outcomes(nthreads);
  std::vector<std::unique_ptr<ClientThread>> drivers;
  std::vector<std::thread> threads;
  drivers.reserve(nthreads);
  threads.reserve(nthreads);
  for (unsigned t = 0; t < nthreads; ++t) {
    drivers.push_back(std::make_unique<ClientThread>(
        config, trace, &per_thread[t], deadline_ns, &outcomes[t]));
    threads.emplace_back([driver = drivers.back().get(), kind] {
      driver->Run(kind);  // the transport (and every adopted fd) dies here
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const uint64_t end_ns = NowNs();

  for (const auto& o : outcomes) {
    if (!o.ok) {
      result.error = o.error;
      return result;
    }
    result.ops += o.ops;
    result.gets += o.gets;
    result.get_hits += o.get_hits;
    result.latency.Merge(o.latency);
  }
  result.seconds = static_cast<double>(end_ns - start_ns) / 1e9;
  result.achieved_rate =
      result.seconds > 0 ? static_cast<double>(result.ops) / result.seconds : 0;
  result.ok = true;
  return result;
}

}  // namespace s3fifo
