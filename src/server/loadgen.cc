#include "src/server/loadgen.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/server/protocol.h"
#include "src/server/ring_buffer.h"

namespace s3fifo {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

void AppendU64(std::string& out, uint64_t v) {
  char buf[20];
  int n = 0;
  do {
    buf[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0) {
    out.push_back(buf[--n]);
  }
}

// What the next response on the wire must look like.
enum class RespKind : uint8_t { kGet, kLine };

struct Pending {
  RespKind kind;
  uint64_t intended_ns;  // schedule time (open loop) or send time (closed)
};

struct ClientConn {
  int fd = -1;
  std::string out;
  size_t out_sent = 0;
  RingBuffer in{64 * 1024};
  std::deque<Pending> pending;
  // Replay cursor: requests trace[cursor], trace[cursor + stride], ...
  uint64_t cursor = 0;
  uint64_t stride = 1;
  uint64_t issued = 0;
  uint64_t budget = 0;       // requests this connection may issue
  uint64_t next_due_ns = 0;  // open loop only
  uint64_t stride_interval_ns = 0;  // open loop: gap between this conn's sends
  // Mid-response state: bytes of a VALUE body (plus trailing \r\n) still to
  // skip before line parsing resumes.
  uint64_t skip_bytes = 0;

  uint64_t ops = 0;
  uint64_t gets = 0;
  uint64_t get_hits = 0;
  LatencyHistogram latency;

  bool done_issuing() const { return issued >= budget; }
  bool drained() const { return done_issuing() && pending.empty(); }
};

// Appends the memcached encoding of trace request `r` and its expected
// response to the connection.
void EncodeRequest(ClientConn& c, const Request& r, uint32_t set_value_bytes,
                   uint64_t intended_ns) {
  switch (r.op) {
    case OpType::kGet:
      c.out += "get ";
      AppendU64(c.out, r.id);
      c.out += "\r\n";
      c.pending.push_back({RespKind::kGet, intended_ns});
      break;
    case OpType::kSet: {
      const uint32_t bytes =
          std::min(set_value_bytes, static_cast<uint32_t>(kMaxValueBytes));
      c.out += "set ";
      AppendU64(c.out, r.id);
      c.out += " 0 0 ";
      AppendU64(c.out, bytes);
      c.out += "\r\n";
      c.out.append(bytes, 'x');
      c.out += "\r\n";
      c.pending.push_back({RespKind::kLine, intended_ns});
      break;
    }
    case OpType::kDelete:
      c.out += "delete ";
      AppendU64(c.out, r.id);
      c.out += "\r\n";
      c.pending.push_back({RespKind::kLine, intended_ns});
      break;
  }
}

// Consumes completed responses from the connection's in-buffer, recording a
// latency sample per completed request. Returns false on protocol confusion
// (an error line while a get was expected still completes that get).
bool ConsumeResponses(ClientConn& c, uint64_t now_ns) {
  for (;;) {
    if (c.skip_bytes > 0) {
      const uint64_t take = std::min<uint64_t>(c.skip_bytes, c.in.size());
      c.in.Consume(take);
      c.skip_bytes -= take;
      if (c.skip_bytes > 0) {
        return true;  // body still arriving
      }
    }
    const std::string_view buf = c.in.view();
    const size_t nl = buf.find('\n');
    if (nl == std::string_view::npos) {
      return true;
    }
    std::string_view line = buf.substr(0, nl);
    if (!line.empty() && line.back() == '\r') {
      line.remove_suffix(1);
    }
    if (c.pending.empty()) {
      return false;  // response with no request outstanding
    }
    const Pending& p = c.pending.front();
    if (p.kind == RespKind::kGet && line.substr(0, 6) == "VALUE ") {
      // "VALUE <key> <flags> <bytes>": trailing token is the body length.
      const size_t sp = line.rfind(' ');
      uint64_t bytes = 0;
      for (char ch : line.substr(sp + 1)) {
        if (ch < '0' || ch > '9') {
          return false;
        }
        bytes = bytes * 10 + static_cast<uint64_t>(ch - '0');
      }
      c.get_hits++;
      c.in.Consume(nl + 1);
      c.skip_bytes = bytes + 2;  // body + \r\n
      continue;
    }
    c.in.Consume(nl + 1);
    if (p.kind == RespKind::kGet && line != "END") {
      // Error line aborts the get response; treat it as completed.
    }
    if (p.kind == RespKind::kGet) {
      c.gets++;
    }
    c.ops++;
    c.latency.Add(now_ns > p.intended_ns ? now_ns - p.intended_ns : 0);
    c.pending.pop_front();
  }
}

bool ConnectLoopback(ClientConn& c, const std::string& host, uint16_t port,
                     std::string* error) {
  c.fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (c.fd < 0) {
    *error = std::string("socket: ") + strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "bad host " + host;
    return false;
  }
  if (connect(c.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = std::string("connect: ") + strerror(errno);
    return false;
  }
  const int one = 1;
  setsockopt(c.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Nonblocking from here on; the poll loop multiplexes connections.
  const int flags = fcntl(c.fd, F_GETFL, 0);
  fcntl(c.fd, F_SETFL, flags | O_NONBLOCK);
  return true;
}

struct ThreadOutcome {
  uint64_t ops = 0, gets = 0, get_hits = 0;
  LatencyHistogram latency;
  bool ok = true;
  std::string error;
};

// One client thread: owns `conns` connections and drives them with poll().
void RunClientThread(const LoadGenConfig& cfg, const Trace& trace,
                     std::vector<ClientConn>* conns, uint64_t deadline_ns,
                     ThreadOutcome* outcome) {
  const bool open_loop = cfg.target_rate > 0;
  const auto& reqs = trace.requests();
  std::vector<pollfd> pfds(conns->size());

  auto issue_one = [&](ClientConn& c, uint64_t intended_ns) {
    EncodeRequest(c, reqs[c.cursor % reqs.size()], cfg.set_value_bytes,
                  intended_ns);
    c.cursor += c.stride;
    c.issued++;
  };

  // Closed loop: prime every connection's pipeline.
  if (!open_loop) {
    for (auto& c : *conns) {
      for (unsigned d = 0; d < cfg.pipeline_depth && !c.done_issuing(); ++d) {
        issue_one(c, NowNs());
      }
    }
  }

  for (;;) {
    bool all_drained = true;
    uint64_t now = NowNs();

    for (auto& c : *conns) {
      if (open_loop) {
        // Issue everything the schedule says is due, independent of
        // completions (the burst cap only bounds one iteration's work; the
        // schedule itself never slips).
        unsigned burst = 0;
        while (!c.done_issuing() && now >= c.next_due_ns &&
               (deadline_ns == 0 || c.next_due_ns < deadline_ns) &&
               burst < 4096) {
          issue_one(c, c.next_due_ns);
          c.next_due_ns += c.stride_interval_ns;
          burst++;
        }
        if (deadline_ns != 0 && c.next_due_ns >= deadline_ns) {
          c.budget = c.issued;  // deadline reached: stop issuing
        }
      }
      if (!c.drained()) {
        all_drained = false;
      }
    }
    if (all_drained) {
      break;
    }

    for (size_t i = 0; i < conns->size(); ++i) {
      auto& c = (*conns)[i];
      pfds[i].fd = c.fd;
      pfds[i].events = static_cast<short>(
          POLLIN | (c.out_sent < c.out.size() ? POLLOUT : 0));
      pfds[i].revents = 0;
    }

    int timeout_ms = 100;
    if (open_loop) {
      uint64_t next_due = ~uint64_t{0};
      for (auto& c : *conns) {
        if (!c.done_issuing()) {
          next_due = std::min(next_due, c.next_due_ns);
        }
      }
      if (next_due != ~uint64_t{0}) {
        now = NowNs();
        timeout_ms = next_due <= now
                         ? 0
                         : static_cast<int>(
                               std::min<uint64_t>((next_due - now) / 1000000, 100));
      }
    }
    const int pr = poll(pfds.data(), pfds.size(), timeout_ms);
    if (pr < 0 && errno != EINTR) {
      outcome->ok = false;
      outcome->error = std::string("poll: ") + strerror(errno);
      return;
    }

    now = NowNs();
    for (size_t i = 0; i < conns->size(); ++i) {
      auto& c = (*conns)[i];
      const short re = pfds[i].revents;
      if ((re & (POLLERR | POLLHUP | POLLNVAL)) != 0 && (re & POLLIN) == 0) {
        outcome->ok = false;
        outcome->error = "connection reset by server";
        return;
      }
      if ((re & POLLOUT) != 0 || c.out_sent < c.out.size()) {
        while (c.out_sent < c.out.size()) {
          // MSG_NOSIGNAL: a reset connection must surface as EPIPE here,
          // not kill the process.
          const ssize_t n = send(c.fd, c.out.data() + c.out_sent,
                                 c.out.size() - c.out_sent, MSG_NOSIGNAL);
          if (n > 0) {
            c.out_sent += static_cast<size_t>(n);
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            break;
          }
          if (n < 0 && errno == EINTR) {
            continue;
          }
          outcome->ok = false;
          outcome->error = std::string("write: ") + strerror(errno);
          return;
        }
        if (c.out_sent == c.out.size()) {
          c.out.clear();
          c.out_sent = 0;
        }
      }
      if ((re & POLLIN) != 0) {
        for (;;) {
          if (!c.in.EnsureWritable(4096)) {
            // Drain parsed responses to reclaim buffer space before giving
            // up — an open-loop backlog can exceed the buffer in one burst.
            if (!ConsumeResponses(c, NowNs())) {
              outcome->ok = false;
              outcome->error = "malformed response from server";
              return;
            }
            if (!c.in.EnsureWritable(4096)) {
              outcome->ok = false;
              outcome->error = "client in-buffer overflow";
              return;
            }
          }
          const ssize_t n = read(c.fd, c.in.WritePtr(), c.in.WriteCapacity());
          if (n > 0) {
            c.in.CommitWrite(static_cast<size_t>(n));
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            break;
          }
          if (n < 0 && errno == EINTR) {
            continue;
          }
          outcome->ok = false;
          outcome->error = n == 0 ? "server closed connection"
                                  : std::string("read: ") + strerror(errno);
          return;
        }
        if (!ConsumeResponses(c, now)) {
          outcome->ok = false;
          outcome->error = "malformed response from server";
          return;
        }
        if (!open_loop) {
          // Closed loop: refill the pipeline to depth.
          while (!c.done_issuing() && c.pending.size() < cfg.pipeline_depth) {
            issue_one(c, now);
          }
        }
      }
    }
  }

  for (auto& c : *conns) {
    outcome->ops += c.ops;
    outcome->gets += c.gets;
    outcome->get_hits += c.get_hits;
    outcome->latency.Merge(c.latency);
  }
}

}  // namespace

LoadGenResult RunLoadGen(const LoadGenConfig& config, const Trace& trace) {
  LoadGenResult result;
  if (trace.empty()) {
    result.error = "empty trace";
    return result;
  }
  const unsigned nthreads = std::max(1u, config.threads);
  const unsigned nconns = std::max(nthreads, config.connections);
  const bool open_loop = config.target_rate > 0;

  uint64_t total_ops = config.max_ops == 0 ? trace.size() : config.max_ops;
  if (open_loop && config.duration_s > 0) {
    total_ops = ~uint64_t{0};  // the deadline is the stop condition
  }

  // Connections share the trace by stride so the merged request stream
  // covers it; per-connection order stays deterministic.
  std::vector<std::vector<ClientConn>> per_thread(nthreads);
  const uint64_t per_conn_interval_ns =
      open_loop ? static_cast<uint64_t>(1e9 * nconns / config.target_rate) : 0;
  const uint64_t start_ns = NowNs();
  for (unsigned i = 0; i < nconns; ++i) {
    ClientConn c;
    std::string err;
    if (!ConnectLoopback(c, config.host, config.port, &err)) {
      result.error = err;
      for (auto& tconns : per_thread) {
        for (auto& cc : tconns) {
          close(cc.fd);
        }
      }
      return result;
    }
    c.cursor = i;
    c.stride = nconns;
    c.budget = total_ops == ~uint64_t{0}
                   ? total_ops
                   : total_ops / nconns + (i < total_ops % nconns ? 1 : 0);
    c.stride_interval_ns = per_conn_interval_ns;
    // Stagger the schedules so the aggregate rate is smooth, not n-bursty.
    c.next_due_ns =
        start_ns + (open_loop ? per_conn_interval_ns * i / nconns : 0);
    per_thread[i % nthreads].push_back(std::move(c));
  }

  const uint64_t deadline_ns =
      open_loop && config.duration_s > 0
          ? start_ns + static_cast<uint64_t>(config.duration_s * 1e9)
          : 0;

  std::vector<ThreadOutcome> outcomes(nthreads);
  std::vector<std::thread> threads;
  threads.reserve(nthreads);
  for (unsigned t = 0; t < nthreads; ++t) {
    threads.emplace_back(RunClientThread, std::cref(config), std::cref(trace),
                         &per_thread[t], deadline_ns, &outcomes[t]);
  }
  for (auto& t : threads) {
    t.join();
  }
  const uint64_t end_ns = NowNs();

  for (auto& tconns : per_thread) {
    for (auto& c : tconns) {
      close(c.fd);
    }
  }
  for (const auto& o : outcomes) {
    if (!o.ok) {
      result.error = o.error;
      return result;
    }
    result.ops += o.ops;
    result.gets += o.gets;
    result.get_hits += o.get_hits;
    result.latency.Merge(o.latency);
  }
  result.seconds = static_cast<double>(end_ns - start_ns) / 1e9;
  result.achieved_rate =
      result.seconds > 0 ? static_cast<double>(result.ops) / result.seconds : 0;
  result.ok = true;
  return result;
}

}  // namespace s3fifo
