// Loopback load generator for the cache server (src/server/cache_server.h).
//
// Replays a src/workload/ trace (get/set/delete requests) over TCP in the
// memcached text protocol, with configurable connection count and pipelining
// depth, and records a log-bucketed latency histogram (src/sim/metrics.h).
//
// Two driving modes:
//
//  * closed loop — every connection keeps `pipeline_depth` requests in
//    flight; a completion immediately triggers the next send. Measures the
//    server's capacity; latency is request service time under saturation.
//
//  * open loop — requests are issued on a fixed-rate schedule
//    (`target_rate` ops/s spread across the connections) regardless of
//    completions, and each latency sample is measured from the request's
//    INTENDED send time, not the actual one. A stalled server therefore
//    penalizes every request behind the stall — the standard fix for
//    coordinated omission, where closed-loop measurement silently stops
//    sampling exactly when the server is slow.
#ifndef SRC_SERVER_LOADGEN_H_
#define SRC_SERVER_LOADGEN_H_

#include <cstdint>
#include <string>

#include "src/server/transport.h"
#include "src/sim/metrics.h"
#include "src/trace/trace.h"

namespace s3fifo {

struct LoadGenConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  unsigned threads = 1;      // client event-loop threads
  unsigned connections = 8;  // total TCP connections, spread across threads
  // Client-side data plane (same backends as the server); kAuto probes
  // io_uring and falls back to epoll.
  TransportKind transport = TransportKind::kAuto;
  // Closed loop: requests kept in flight per connection.
  unsigned pipeline_depth = 8;
  // > 0 switches to open loop at this many ops/second (all connections
  // combined); pipeline_depth then only caps the per-connection burst drained
  // from the schedule in one poll iteration.
  double target_rate = 0.0;
  // Closed loop stops after the trace is exhausted or `max_ops` requests,
  // whichever is first; open loop additionally stops at `duration_s`.
  uint64_t max_ops = 0;  // 0 = trace length
  double duration_s = 0.0;
  // Value bytes attached to replayed kSet requests (capped by the protocol's
  // kMaxValueBytes).
  uint32_t set_value_bytes = 64;
};

struct LoadGenResult {
  uint64_t ops = 0;          // responses received
  uint64_t get_hits = 0;     // VALUE blocks seen
  uint64_t gets = 0;         // get responses (END-terminated)
  double seconds = 0.0;      // wall time of the measurement
  double achieved_rate = 0;  // ops / seconds
  LatencyHistogram latency;  // nanoseconds per request
  std::string transport_used;  // resolved client backend ("epoll"/"uring")
  bool ok = false;
  std::string error;
};

// Connects, replays `trace` (each connection walks a disjoint stride), and
// blocks until every issued request has a response. The server must already
// be listening.
LoadGenResult RunLoadGen(const LoadGenConfig& config, const Trace& trace);

}  // namespace s3fifo

#endif  // SRC_SERVER_LOADGEN_H_
