// Loopback load generator:
//
//   s3fifo_loadgen --port N [--host H] [--threads N] [--connections N]
//                  [--depth N] [--ops N] [--rate OPS/S] [--duration S]
//                  [--objects N] [--alpha A] [--seed N]
//                  [--transport auto|uring|epoll] [--latency-csv PATH]
//
// Replays a Zipf workload against a running s3fifo_server in the memcached
// text protocol. Default is closed-loop (each connection keeps --depth
// requests in flight); --rate switches to a fixed-rate open loop whose
// latencies are measured from intended send times (coordinated-omission
// safe). Prints throughput and p50/p99/p999. --transport picks the client
// data plane (same backends as the server); --latency-csv dumps the HDR
// histogram buckets for offline plotting, in both modes.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/server/loadgen.h"
#include "src/workload/zipf_workload.h"

namespace {

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port N [--host H] [--threads N] [--connections N] "
               "[--depth N] [--ops N] [--rate OPS/S] [--duration S] "
               "[--objects N] [--alpha A] [--seed N] "
               "[--transport auto|uring|epoll] [--latency-csv PATH]\n",
               argv0);
  std::exit(2);
}

// One row per non-empty bucket: inclusive upper edge (ns), count, and the
// running cumulative count — enough to rebuild the CDF offline.
bool WriteLatencyCsv(const std::string& path,
                     const s3fifo::LatencyHistogram& hist) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  std::fprintf(f, "bucket_upper_ns,count,cumulative\n");
  uint64_t cumulative = 0;
  const auto& buckets = hist.buckets();
  for (int i = 0; i < static_cast<int>(buckets.size()); ++i) {
    if (buckets[i] == 0) {
      continue;
    }
    cumulative += buckets[i];
    std::fprintf(f, "%llu,%llu,%llu\n",
                 static_cast<unsigned long long>(
                     s3fifo::LatencyHistogram::BucketEdge(i)),
                 static_cast<unsigned long long>(buckets[i]),
                 static_cast<unsigned long long>(cumulative));
  }
  const bool ok = std::fclose(f) == 0;
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  s3fifo::LoadGenConfig config;
  s3fifo::ZipfWorkloadConfig workload;
  std::string latency_csv;
  workload.num_objects = 1 << 17;
  workload.num_requests = 1 << 20;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      config.port = static_cast<uint16_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--host") {
      config.host = next();
    } else if (arg == "--threads") {
      config.threads = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--connections") {
      config.connections =
          static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--depth") {
      config.pipeline_depth =
          static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--ops") {
      config.max_ops = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--rate") {
      config.target_rate = std::atof(next());
    } else if (arg == "--duration") {
      config.duration_s = std::atof(next());
    } else if (arg == "--objects") {
      workload.num_objects = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--alpha") {
      workload.alpha = std::atof(next());
    } else if (arg == "--seed") {
      workload.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--transport") {
      if (!s3fifo::ParseTransportKind(next(), &config.transport)) {
        Usage(argv[0]);
      }
    } else if (arg == "--latency-csv") {
      latency_csv = next();
    } else if (arg.rfind("--latency-csv=", 0) == 0) {
      latency_csv = arg.substr(strlen("--latency-csv="));
    } else {
      Usage(argv[0]);
    }
  }
  if (config.port == 0) {
    Usage(argv[0]);
  }

  const s3fifo::Trace trace = s3fifo::GenerateZipfTrace(workload);
  const s3fifo::LoadGenResult r = s3fifo::RunLoadGen(config, trace);
  if (!r.ok) {
    std::fprintf(stderr, "loadgen failed: %s\n", r.error.c_str());
    return 1;
  }
  const char* mode = config.target_rate > 0 ? "open" : "closed";
  std::printf("mode=%s transport=%s conns=%u depth=%u ops=%llu secs=%.3f "
              "rate=%.0f/s hit_ratio=%.4f\n",
              mode, r.transport_used.c_str(), config.connections,
              config.pipeline_depth, static_cast<unsigned long long>(r.ops),
              r.seconds, r.achieved_rate,
              r.gets > 0 ? static_cast<double>(r.get_hits) / r.gets : 0.0);
  std::printf("%s\n", r.latency.FormatLatencyUs("latency").c_str());
  if (!latency_csv.empty()) {
    if (!WriteLatencyCsv(latency_csv, r.latency)) {
      std::fprintf(stderr, "failed to write %s\n", latency_csv.c_str());
      return 1;
    }
    std::printf("latency histogram written to %s (%llu samples)\n",
                latency_csv.c_str(),
                static_cast<unsigned long long>(r.latency.count()));
  }
  return 0;
}
