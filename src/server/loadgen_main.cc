// Loopback load generator:
//
//   s3fifo_loadgen --port N [--host H] [--threads N] [--connections N]
//                  [--depth N] [--ops N] [--rate OPS/S] [--duration S]
//                  [--objects N] [--alpha A] [--seed N]
//
// Replays a Zipf workload against a running s3fifo_server in the memcached
// text protocol. Default is closed-loop (each connection keeps --depth
// requests in flight); --rate switches to a fixed-rate open loop whose
// latencies are measured from intended send times (coordinated-omission
// safe). Prints throughput and p50/p99/p999.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/server/loadgen.h"
#include "src/workload/zipf_workload.h"

namespace {

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port N [--host H] [--threads N] [--connections N] "
               "[--depth N] [--ops N] [--rate OPS/S] [--duration S] "
               "[--objects N] [--alpha A] [--seed N]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  s3fifo::LoadGenConfig config;
  s3fifo::ZipfWorkloadConfig workload;
  workload.num_objects = 1 << 17;
  workload.num_requests = 1 << 20;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      config.port = static_cast<uint16_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--host") {
      config.host = next();
    } else if (arg == "--threads") {
      config.threads = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--connections") {
      config.connections =
          static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--depth") {
      config.pipeline_depth =
          static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--ops") {
      config.max_ops = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--rate") {
      config.target_rate = std::atof(next());
    } else if (arg == "--duration") {
      config.duration_s = std::atof(next());
    } else if (arg == "--objects") {
      workload.num_objects = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--alpha") {
      workload.alpha = std::atof(next());
    } else if (arg == "--seed") {
      workload.seed = std::strtoull(next(), nullptr, 10);
    } else {
      Usage(argv[0]);
    }
  }
  if (config.port == 0) {
    Usage(argv[0]);
  }

  const s3fifo::Trace trace = s3fifo::GenerateZipfTrace(workload);
  const s3fifo::LoadGenResult r = s3fifo::RunLoadGen(config, trace);
  if (!r.ok) {
    std::fprintf(stderr, "loadgen failed: %s\n", r.error.c_str());
    return 1;
  }
  const char* mode = config.target_rate > 0 ? "open" : "closed";
  std::printf("mode=%s conns=%u depth=%u ops=%llu secs=%.3f rate=%.0f/s "
              "hit_ratio=%.4f\n",
              mode, config.connections, config.pipeline_depth,
              static_cast<unsigned long long>(r.ops), r.seconds,
              r.achieved_rate,
              r.gets > 0 ? static_cast<double>(r.get_hits) / r.gets : 0.0);
  std::printf("%s\n", r.latency.FormatLatencyUs("latency").c_str());
  return 0;
}
