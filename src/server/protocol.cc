#include "src/server/protocol.h"

#include <algorithm>

namespace s3fifo {

namespace {

constexpr const char* kErrUnknownCommand = "ERROR\r\n";
constexpr const char* kErrBadLineEnding = "CLIENT_ERROR bad line ending\r\n";
constexpr const char* kErrBadKey = "CLIENT_ERROR bad key\r\n";
constexpr const char* kErrBadArgs = "CLIENT_ERROR bad command line format\r\n";
constexpr const char* kErrBadChunk = "CLIENT_ERROR bad data chunk\r\n";
constexpr const char* kErrLineTooLong = "CLIENT_ERROR line too long\r\n";
constexpr const char* kErrTooLarge = "SERVER_ERROR object too large for cache\r\n";

bool ValidKey(std::string_view key) {
  if (key.empty() || key.size() > kMaxKeyLen) {
    return false;
  }
  for (char c : key) {
    const auto u = static_cast<unsigned char>(c);
    if (u <= 0x20 || u == 0x7F) {
      return false;
    }
  }
  return true;
}

// Strict decimal u64; false on empty/overflow/non-digit.
bool ParseU64(std::string_view s, uint64_t* out) {
  if (s.empty() || s.size() > 20) {
    return false;
  }
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (~uint64_t{0} - digit) / 10) {
      return false;
    }
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

// Splits `line` into at most kMaxTokens whitespace-separated tokens.
// Returns -1 (malformed, never silently truncates keys) on overflow.
constexpr int kMaxTokens = 66;  // verb + 64 keys + noreply

int Tokenize(std::string_view line, std::string_view* tokens) {
  int n = 0;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') {
      ++i;
    }
    const size_t start = i;
    while (i < line.size() && line[i] != ' ') {
      ++i;
    }
    if (i > start) {
      if (n == kMaxTokens) {
        return -1;
      }
      tokens[n++] = line.substr(start, i - start);
    }
  }
  return n;
}

ParseResult Error(const char* msg, size_t consumed) {
  return {ParseStatus::kError, consumed, msg};
}

ParseResult Fatal(const char* msg, size_t consumed) {
  return {ParseStatus::kFatal, consumed, msg};
}

}  // namespace

ParseResult ParseCommand(std::string_view data, ParseOutput& out) {
  if (data.empty()) {
    return {ParseStatus::kNeedMore, 0, nullptr};
  }
  const size_t scan_limit = std::min(data.size(), kMaxLineLen + 2);
  const size_t nl = data.substr(0, scan_limit).find('\n');
  if (nl == std::string_view::npos) {
    if (data.size() > kMaxLineLen) {
      // The rest of the stream cannot be re-synchronized once one frame is
      // unboundedly long; drain what we have and close.
      return Fatal(kErrLineTooLong, data.size());
    }
    return {ParseStatus::kNeedMore, 0, nullptr};
  }
  const size_t line_end = nl + 1;  // bytes including '\n'
  if (nl == 0 || data[nl - 1] != '\r') {
    return Error(kErrBadLineEnding, line_end);
  }
  const std::string_view line = data.substr(0, nl - 1);

  std::string_view tokens[kMaxTokens];
  const int ntok = Tokenize(line, tokens);
  if (ntok < 0) {
    return Error(kErrBadArgs, line_end);
  }
  if (ntok == 0) {
    return Error(kErrUnknownCommand, line_end);
  }
  const std::string_view verb = tokens[0];

  if (verb == "get" || verb == "gets" || verb == "mget") {
    if (ntok < 2) {
      return Error(kErrBadArgs, line_end);
    }
    for (int i = 1; i < ntok; ++i) {
      if (!ValidKey(tokens[i])) {
        return Error(kErrBadKey, line_end);
      }
    }
    ParsedOp op;
    op.type = CmdType::kGet;
    op.key_begin = static_cast<uint32_t>(out.keys.size());
    op.key_count = static_cast<uint32_t>(ntok - 1);
    for (int i = 1; i < ntok; ++i) {
      out.keys.push_back(tokens[i]);
    }
    out.ops.push_back(op);
    return {ParseStatus::kOk, line_end, nullptr};
  }

  if (verb == "set") {
    const bool noreply = ntok == 6 && tokens[5] == "noreply";
    if (ntok != 5 && !noreply) {
      return Error(kErrBadArgs, line_end);
    }
    if (!ValidKey(tokens[1])) {
      return Error(kErrBadKey, line_end);
    }
    uint64_t flags = 0, exptime = 0, bytes = 0;
    if (!ParseU64(tokens[2], &flags) || !ParseU64(tokens[3], &exptime) ||
        !ParseU64(tokens[4], &bytes)) {
      return Error(kErrBadArgs, line_end);
    }
    if (bytes > kMaxValueBytes) {
      // The body length is trusted for framing; a body we refuse to buffer
      // means we can no longer delimit the stream. Respond and close.
      return Fatal(kErrTooLarge, line_end);
    }
    const size_t frame = line_end + static_cast<size_t>(bytes) + 2;
    if (data.size() < frame) {
      return {ParseStatus::kNeedMore, 0, nullptr};
    }
    if (data[frame - 2] != '\r' || data[frame - 1] != '\n') {
      return Error(kErrBadChunk, frame);
    }
    ParsedOp op;
    op.type = CmdType::kSet;
    op.key_begin = static_cast<uint32_t>(out.keys.size());
    op.key_count = 1;
    op.set_flags = static_cast<uint32_t>(flags);
    op.value = data.substr(line_end, bytes);
    op.noreply = noreply;
    out.keys.push_back(tokens[1]);
    out.ops.push_back(op);
    return {ParseStatus::kOk, frame, nullptr};
  }

  if (verb == "delete") {
    const bool noreply = ntok == 3 && tokens[2] == "noreply";
    if (ntok != 2 && !noreply) {
      return Error(kErrBadArgs, line_end);
    }
    if (!ValidKey(tokens[1])) {
      return Error(kErrBadKey, line_end);
    }
    ParsedOp op;
    op.type = CmdType::kDelete;
    op.key_begin = static_cast<uint32_t>(out.keys.size());
    op.key_count = 1;
    op.noreply = noreply;
    out.keys.push_back(tokens[1]);
    out.ops.push_back(op);
    return {ParseStatus::kOk, line_end, nullptr};
  }

  if (verb == "stats" || verb == "version" || verb == "quit") {
    if (ntok != 1) {
      return Error(kErrBadArgs, line_end);
    }
    ParsedOp op;
    op.type = verb == "stats" ? CmdType::kStats
                              : (verb == "version" ? CmdType::kVersion : CmdType::kQuit);
    out.ops.push_back(op);
    return {ParseStatus::kOk, line_end, nullptr};
  }

  return Error(kErrUnknownCommand, line_end);
}

uint64_t KeyToId(std::string_view key) {
  uint64_t decimal = 0;
  if (ParseU64(key, &decimal)) {
    return decimal;
  }
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace s3fifo
