// Incremental, zero-copy parser for the memcached text subset the cache
// server speaks: get/gets/mget (multi-key), set, delete, stats, version,
// quit. Designed for pipelined connections: the caller feeds the readable
// region of the connection's RingBuffer and pulls out one command at a time
// until kNeedMore; every key and set-body in the output is a string_view
// aliasing the input buffer, valid until the buffer is compacted.
//
// Framing rules (a practical memcached-text subset):
//   * command lines end in \r\n and may not exceed kMaxLineLen bytes;
//   * keys are 1..kMaxKeyLen bytes, no whitespace or control characters;
//   * `set <key> <flags> <exptime> <bytes> [noreply]` is followed by exactly
//     <bytes> body bytes and \r\n; bodies above kMaxValueBytes are rejected;
//   * torn frames (header or body split at any byte) return kNeedMore and
//     consume nothing — the parser re-runs when more bytes arrive;
//   * malformed input consumes through the end of the offending line and
//     reports a protocol error string to send, so one bad command never
//     desynchronizes a pipelined connection more than memcached would;
//   * unrecoverable framing (over-long line, oversized body) is kFatal: the
//     server responds and closes, because the remaining stream can no longer
//     be delimited reliably.
#ifndef SRC_SERVER_PROTOCOL_H_
#define SRC_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace s3fifo {

inline constexpr size_t kMaxKeyLen = 250;
inline constexpr size_t kMaxLineLen = 8192;
inline constexpr uint32_t kMaxValueBytes = 1u << 20;

enum class CmdType : uint8_t { kGet, kSet, kDelete, kStats, kVersion, kQuit };

// One parsed command. Keys live in ParseOutput::keys[key_begin, key_begin +
// key_count); get/gets/mget carry 1..N keys, set/delete exactly one.
struct ParsedOp {
  CmdType type = CmdType::kGet;
  uint32_t key_begin = 0;
  uint32_t key_count = 0;
  uint32_t set_flags = 0;
  std::string_view value;  // set body (aliases the input buffer)
  bool noreply = false;
};

// Reused across parse calls; Clear() once per event-loop iteration.
struct ParseOutput {
  std::vector<ParsedOp> ops;
  std::vector<std::string_view> keys;

  void Clear() {
    ops.clear();
    keys.clear();
  }
};

enum class ParseStatus : uint8_t { kOk, kNeedMore, kError, kFatal };

struct ParseResult {
  ParseStatus status = ParseStatus::kNeedMore;
  // Bytes of input this command (or malformed line) occupied; 0 for
  // kNeedMore.
  size_t consumed = 0;
  // For kError/kFatal: the protocol error line to send, including \r\n.
  const char* error = nullptr;
};

// Parses ONE command from the front of `data`; on kOk appends exactly one
// ParsedOp (plus its keys) to `out`.
ParseResult ParseCommand(std::string_view data, ParseOutput& out);

// Key -> object id. Decimal keys (<= 20 digits, fitting uint64) map to their
// exact integer value — the load generator and the server-vs-simulator
// parity tests rely on this round-trip; any other key is FNV-1a-64 hashed
// (collisions alias cache slots, acceptable for a cache).
uint64_t KeyToId(std::string_view key);

}  // namespace s3fifo

#endif  // SRC_SERVER_PROTOCOL_H_
