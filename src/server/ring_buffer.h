// Per-connection byte buffer backing the zero-copy incremental parser.
//
// The readable region is always contiguous, so the parser and the batched
// request pipeline hold string_views straight into it — no per-command copy.
// Consume() only advances the read cursor (views handed out this event-loop
// iteration stay valid); the consumed prefix is reclaimed by sliding the
// unread tail to the front the next time write space is needed, which is
// after the views have been executed and dropped. Capacity grows on demand
// up to `max_capacity`, bounding what one connection can make the server
// buffer (a single over-long frame is a protocol error before that).
#ifndef SRC_SERVER_RING_BUFFER_H_
#define SRC_SERVER_RING_BUFFER_H_

#include <cstddef>
#include <cstring>
#include <string_view>
#include <vector>

namespace s3fifo {

class RingBuffer {
 public:
  explicit RingBuffer(size_t initial_capacity = 16 * 1024,
                      size_t max_capacity = (1 << 20) + 64 * 1024)
      : buf_(initial_capacity), max_capacity_(max_capacity) {}

  // Readable region (parsed commands view into this).
  const char* data() const { return buf_.data() + begin_; }
  size_t size() const { return end_ - begin_; }
  std::string_view view() const { return {data(), size()}; }

  // Marks `n` readable bytes as processed. Views already taken remain valid
  // until the next EnsureWritable() call.
  void Consume(size_t n) {
    begin_ += n;
    if (begin_ == end_) {
      begin_ = end_ = 0;
    }
  }

  // Makes room for at least `want` writable bytes (compacting, then growing
  // up to max_capacity). Returns false if the unread data leaves no room.
  bool EnsureWritable(size_t want) {
    if (WriteCapacity() >= want) {
      return true;
    }
    // Slide the unread tail to the front: cheap because begin_ only moves
    // forward by whole parsed commands.
    if (begin_ > 0) {
      std::memmove(buf_.data(), buf_.data() + begin_, size());
      end_ -= begin_;
      begin_ = 0;
    }
    while (buf_.size() - end_ < want && buf_.size() < max_capacity_) {
      buf_.resize(std::min(max_capacity_, buf_.size() * 2));
    }
    return WriteCapacity() >= want;
  }

  char* WritePtr() { return buf_.data() + end_; }
  size_t WriteCapacity() const { return buf_.size() - end_; }
  void CommitWrite(size_t n) { end_ += n; }

  size_t max_capacity() const { return max_capacity_; }

 private:
  std::vector<char> buf_;
  size_t begin_ = 0;  // first unread byte
  size_t end_ = 0;    // one past the last written byte
  size_t max_capacity_;
};

}  // namespace s3fifo

#endif  // SRC_SERVER_RING_BUFFER_H_
