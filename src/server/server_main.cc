// Standalone cache server:
//
//   s3fifo_server [--port N] [--workers N] [--capacity N] [--value-bytes N]
//                 [--cache-shards N] [--max-batch N]
//                 [--transport auto|uring|epoll]
//
// Serves the memcached text subset (get/gets/mget/set/delete/stats/version/
// quit) on top of the sharded lock-free concurrent S3-FIFO. Prints the bound
// port on stdout (useful with --port 0) and runs until SIGINT/SIGTERM.
// --transport picks the data plane: io_uring (batched submit-and-wait) or
// epoll (per-fd readiness); auto probes io_uring and falls back to epoll,
// logging the reason.
#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "src/server/cache_server.h"

namespace {

std::atomic<bool> g_stop{false};

void OnSignal(int) { g_stop.store(true); }

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--workers N] [--capacity N] "
               "[--value-bytes N] [--cache-shards N] [--max-batch N] "
               "[--transport auto|uring|epoll]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  s3fifo::ServerConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      config.port = static_cast<uint16_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--workers") {
      config.workers = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--capacity") {
      config.cache.capacity_objects = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--value-bytes") {
      config.cache.value_size =
          static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--cache-shards") {
      config.cache.cache_shards =
          static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--max-batch") {
      config.max_batch = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--transport") {
      if (!s3fifo::ParseTransportKind(next(), &config.transport)) {
        Usage(argv[0]);
      }
    } else {
      Usage(argv[0]);
    }
  }

  s3fifo::CacheServer server(config);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "failed to start: %s\n", error.c_str());
    return 1;
  }
  if (!server.transport_note().empty()) {
    std::fprintf(stderr, "%s\n", server.transport_note().c_str());
  }
  std::printf("listening on %s:%u (workers=%u capacity=%llu shards=%u "
              "transport=%s)\n",
              config.host.c_str(), server.port(), config.workers,
              static_cast<unsigned long long>(config.cache.capacity_objects),
              config.cache.cache_shards, server.transport_name());
  std::fflush(stdout);

  signal(SIGINT, OnSignal);
  signal(SIGTERM, OnSignal);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();

  const s3fifo::ServerStats s = server.TotalStats();
  std::printf("shutdown: conns=%llu gets=%llu sets=%llu hits=%llu misses=%llu "
              "batches=%llu\n",
              static_cast<unsigned long long>(s.connections_accepted),
              static_cast<unsigned long long>(s.cmd_get),
              static_cast<unsigned long long>(s.cmd_set),
              static_cast<unsigned long long>(s.get_hits),
              static_cast<unsigned long long>(s.get_misses),
              static_cast<unsigned long long>(s.batches));
  return 0;
}
