#include "src/server/transport.h"

namespace s3fifo {

bool ParseTransportKind(std::string_view name, TransportKind* out) {
  if (name == "auto") {
    *out = TransportKind::kAuto;
    return true;
  }
  if (name == "epoll") {
    *out = TransportKind::kEpoll;
    return true;
  }
  if (name == "uring" || name == "io_uring") {
    *out = TransportKind::kUring;
    return true;
  }
  return false;
}

const char* TransportKindName(TransportKind kind) {
  switch (kind) {
    case TransportKind::kAuto:
      return "auto";
    case TransportKind::kEpoll:
      return "epoll";
    case TransportKind::kUring:
      return "uring";
  }
  return "?";
}

std::unique_ptr<Transport> MakeTransport(TransportKind kind,
                                         std::string* note) {
  std::string why;
  switch (kind) {
    case TransportKind::kEpoll:
      return MakeEpollTransport();
    case TransportKind::kUring: {
      auto t = MakeUringTransport();
      if (t == nullptr) {
        if (note != nullptr) {
          *note = "transport=uring: io_uring support not compiled in";
        }
        return nullptr;
      }
      if (!IoUringAvailable(&why)) {
        if (note != nullptr) {
          *note = "transport=uring: io_uring unavailable (" + why + ")";
        }
        return nullptr;
      }
      return t;
    }
    case TransportKind::kAuto:
      break;
  }
  if (auto t = MakeUringTransport(); t != nullptr && IoUringAvailable(&why)) {
    return t;
  }
  if (note != nullptr) {
    *note = "transport=auto: io_uring unavailable (" +
            (why.empty() ? std::string("not compiled in") : why) +
            "), falling back to epoll";
  }
  return MakeEpollTransport();
}

}  // namespace s3fifo
