// Pluggable data plane for the cache server and the load generator.
//
// A Transport owns the event loop mechanics of one worker thread — accepting
// connections, moving bytes between sockets and the protocol layer, and
// waking up for shutdown — behind one interface with two backends:
//
//  * epoll (src/server/epoll_transport.cc): the readiness model. Per-fd
//    nonblocking read/write syscalls driven by edge-triggered epoll. Always
//    available; the default-on-failure path.
//
//  * io_uring (src/server/uring_transport.cc): the completion model. One
//    multishot accept per listener, one multishot recv per connection
//    delivering into a registered provided-buffer ring, sends queued as
//    SQEs, and one io_uring_submit_and_wait per loop iteration replacing the
//    per-fd syscall storm. Probed at runtime (io_uring_setup may be denied
//    by the kernel or a seccomp sandbox) and cleanly replaced by epoll.
//
// The protocol layer implements Transport::Handler. The contract is
// completion-shaped because epoll can emulate completions cheaply while the
// reverse (readiness on top of io_uring) would forfeit the batching:
//
//  * incoming bytes are pushed: the transport asks the handler for writable
//    space (GetReadBuffer) and commits bytes into it (OnData). The handler
//    parses during OnData; views into its own buffer stay valid. Returning
//    false from GetReadBuffer pauses reading (backpressure) until
//    ResumeRead().
//
//  * outgoing bytes are owned by the transport: Send() swaps the caller's
//    buffer into the transport's per-connection send queue (no copy, and the
//    bytes stay stable while the kernel may still be reading them — an
//    io_uring send SQE references them asynchronously). OnWritable fires
//    when the queue fully drains.
//
// Threading: a Transport instance belongs to one thread. Only Wake() may be
// called from other threads.
#ifndef SRC_SERVER_TRANSPORT_H_
#define SRC_SERVER_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace s3fifo {

enum class TransportKind : uint8_t { kAuto, kEpoll, kUring };

// "auto" | "epoll" | "uring" (also accepts "io_uring").
bool ParseTransportKind(std::string_view name, TransportKind* out);
const char* TransportKindName(TransportKind kind);

// Data-plane efficiency counters, maintained by the owning thread (plain
// fields — publish through atomics to read them from elsewhere). Together
// they make syscalls/op and batching observable without perf(1).
struct TransportCounters {
  uint64_t syscalls = 0;     // every kernel crossing made by the data plane
  uint64_t waits = 0;        // blocking waits (epoll_wait / enter+GETEVENTS)
  uint64_t events = 0;       // readiness events or CQEs dispatched
  uint64_t sqes = 0;         // io_uring: SQEs submitted
  uint64_t sqe_batches = 0;  // io_uring: enter calls that submitted >=1 SQE
  uint64_t recv_merges = 0;  // io_uring: multishot recv CQEs that kept the
                             // recv armed (no re-arm SQE needed)
  uint64_t accepts = 0;      // connections accepted by the transport

  void Merge(const TransportCounters& o) {
    syscalls += o.syscalls;
    waits += o.waits;
    events += o.events;
    sqes += o.sqes;
    sqe_batches += o.sqe_batches;
    recv_merges += o.recv_merges;
    accepts += o.accepts;
  }
};

class Transport {
 public:
  // Opaque per-connection handle owned by the transport.
  struct Conn;

  class Handler {
   public:
    virtual ~Handler() = default;
    // A connection was accepted. Returns the opaque state (`ud`) passed to
    // every later callback for this connection; may not be null.
    virtual void* OnAccept(Conn* conn) = 0;
    // The transport has incoming bytes. Return >=1 byte of writable space,
    // or false to pause reading until ResumeRead() (the transport buffers or
    // defers the data; TCP flow control eventually takes over).
    virtual bool GetReadBuffer(Conn* conn, void* ud, char** buf,
                               size_t* cap) = 0;
    // `n` bytes were written into the space returned by the immediately
    // preceding GetReadBuffer call. Parse and execute here; calling Send()
    // and Close() on any conn of this transport is allowed.
    virtual void OnData(Conn* conn, void* ud, size_t n) = 0;
    // The send queue drained to empty (all queued output reached the
    // kernel). Check close-after-flush and backpressure watermarks here.
    virtual void OnWritable(Conn* conn, void* ud) = 0;
    // Peer closed or the connection errored; the transport already closed
    // the fd and will free its Conn. Release `ud`.
    virtual void OnClose(Conn* conn, void* ud) = 0;
  };

  virtual ~Transport() = default;

  // `listen_fd`: a bound, listening, nonblocking socket (caller keeps
  // ownership), or -1 for a client-only transport. Creates the wake eventfd
  // and (io_uring) the ring + provided-buffer pool. False on failure with
  // *error set; an io_uring transport failing here is the cue to fall back
  // to epoll.
  virtual bool Init(Handler* handler, int listen_fd, std::string* error) = 0;

  // One event-loop iteration: waits up to `timeout_ms` (-1 = forever) for
  // work if none is pending, dispatches a batch of events through the
  // handler. Returns false only on unrecoverable transport failure.
  virtual bool Poll(int timeout_ms) = 0;

  // Thread-safe: interrupts a concurrent (or the next) Poll().
  virtual void Wake() = 0;

  // Adopts a connected nonblocking fd (load-generator client connections).
  // The transport owns the fd from here on.
  virtual Conn* Adopt(int fd, void* ud) = 0;

  // Queues `*data` for sending, swapping it into the transport (it comes
  // back empty, possibly with recycled capacity). The transport flushes as
  // the socket allows; OnWritable fires when everything queued has drained.
  virtual void Send(Conn* conn, std::vector<char>* data) = 0;

  // Bytes queued but not yet accepted by the kernel (watermark checks).
  virtual size_t SendQueueBytes(const Conn* conn) const = 0;

  // Re-enables reading after GetReadBuffer returned false.
  virtual void ResumeRead(Conn* conn) = 0;

  // Closes the connection now (pending unsent output is dropped — callers
  // drain via OnWritable first if they care). Does NOT call OnClose: the
  // caller initiated it and cleans up its own state.
  virtual void Close(Conn* conn) = 0;

  virtual const TransportCounters& counters() const = 0;
  virtual const char* name() const = 0;
};

std::unique_ptr<Transport> MakeEpollTransport();
// Null when io_uring support is compiled out (non-Linux).
std::unique_ptr<Transport> MakeUringTransport();

// Runtime probe: io_uring_setup + provided-buffer-ring registration. False
// with *why naming the errno (e.g. "io_uring_setup: EPERM (Operation not
// permitted)") when the kernel or a seccomp sandbox denies it.
bool IoUringAvailable(std::string* why);

// Resolves kAuto to uring-if-available (else epoll). On fallback, appends a
// human-readable note to *note (one line, already newline-free). Returns
// null only for kUring when io_uring is unavailable, with *note set.
std::unique_ptr<Transport> MakeTransport(TransportKind kind, std::string* note);

}  // namespace s3fifo

#endif  // SRC_SERVER_TRANSPORT_H_
