// Completion-model transport on raw io_uring syscalls (no liburing):
//
//  * one multishot ACCEPT per listener — accepted fds arrive as CQEs, no
//    accept4 loop;
//  * one multishot RECV per connection, delivering into a registered
//    provided-buffer ring (IORING_REGISTER_PBUF_RING) — received bytes show
//    up in CQEs tagged with a buffer id, no per-fd read syscalls and no
//    buffer pinned per idle connection;
//  * sends queued as SQEs referencing the transport-owned send queue (the
//    Send() ownership transfer exists exactly so these bytes stay stable
//    while the kernel reads them asynchronously);
//  * the shutdown eventfd armed as an IORING_OP_READ on the ring, so Wake()
//    is just an eventfd write and the wake costs no extra wait primitives;
//  * one io_uring_enter(GETEVENTS) per loop iteration submits every SQE
//    queued since the last one AND waits — the per-fd syscall storm of the
//    readiness model collapses into a single batched crossing.
//
// Loopback sends usually complete inline during submission, which would
// bounce the combined submit-and-wait right back with only our own send
// CQEs. When the enter carries K send SQEs we therefore wait for K+1
// completions with a 1ms cap: the send CQEs are counted, and the enter keeps
// sleeping until real work (the next recv) arrives. The cap only delays
// internal bookkeeping (OnWritable); the response bytes themselves were
// already handed to the kernel by then.
//
// Close protocol: a connection may have up to two operations in flight (the
// multishot recv and one send). Closing shuts the socket down to provoke
// their completions and frees the state only after the last CQE referencing
// it has drained — user_data always stays valid.
#include "src/server/transport.h"

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#define S3FIFO_HAVE_IO_URING 1
#else
#define S3FIFO_HAVE_IO_URING 0
#endif

#if S3FIFO_HAVE_IO_URING

#include <errno.h>
#include <linux/io_uring.h>
#include <linux/time_types.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/eventfd.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <vector>

namespace s3fifo {

namespace {

int SysUringSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, p));
}

int SysUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                  unsigned flags, const void* arg, size_t argsz) {
  return static_cast<int>(syscall(__NR_io_uring_enter, fd, to_submit,
                                  min_complete, flags, arg, argsz));
}

int SysUringRegister(int fd, unsigned opcode, void* arg, unsigned nr_args) {
  return static_cast<int>(syscall(__NR_io_uring_register, fd, opcode, arg,
                                  nr_args));
}

const char* ErrnoName(int err) {
  switch (err) {
    case EPERM: return "EPERM";
    case ENOSYS: return "ENOSYS";
    case EACCES: return "EACCES";
    case EINVAL: return "EINVAL";
    case ENOMEM: return "ENOMEM";
    default: return "errno";
  }
}

class UringTransport final : public Transport {
 public:
  // Provided-buffer pool: enough that a full pipelining burst never starves
  // the multishot recvs, small enough to keep per-worker memory modest.
  static constexpr unsigned kBufCount = 32;  // power of two
  static constexpr unsigned kBufSize = 4 * 1024;
  static constexpr unsigned kSqEntries = 1024;
  static constexpr unsigned kCqEntries = 4096;
  static constexpr unsigned kBufGroup = 0;

  // user_data encoding: connection ops carry the UConn* with the op kind in
  // the low bits (allocations are >= 8-byte aligned); singleton ops use
  // small sentinel values no pointer can alias.
  static constexpr uint64_t kTagMask = 7;
  static constexpr uint64_t kTagRecv = 0;
  static constexpr uint64_t kTagSend = 1;
  static constexpr uint64_t kUdAccept = 2;
  static constexpr uint64_t kUdWake = 3;

  struct Holdover {
    uint16_t bid;
    uint32_t off;
    uint32_t len;
  };

  struct UConn {
    int fd = -1;
    void* ud = nullptr;
    std::deque<std::vector<char>> sendq;
    size_t front_off = 0;
    size_t queued_bytes = 0;
    bool send_inflight = false;  // a send SQE is queued or submitted
    bool recv_armed = false;     // the multishot recv is live
    bool recv_starved = false;   // recv died with ENOBUFS; re-arm on recycle
    bool read_paused = false;    // handler backpressure
    bool closing = false;        // waiting for in-flight CQEs to drain
    bool dead = false;           // fd closed; queued for delete + OnClose
    bool notify = false;         // deliver OnClose once dead
    // Received provided buffers not yet accepted by the handler, in arrival
    // order; retained (not recycled) until consumed.
    std::deque<Holdover> holdover;
  };

  ~UringTransport() override {
    for (UConn* c : conns_) {
      if (c->fd >= 0) {
        close(c->fd);
      }
      delete c;
    }
    for (auto& [c, notify] : dead_) {
      delete c;
    }
    if (ring_fd_ >= 0) {
      close(ring_fd_);
    }
    if (wake_fd_ >= 0) {
      close(wake_fd_);
    }
    if (sq_ring_ptr_ != nullptr) {
      munmap(sq_ring_ptr_, sq_ring_bytes_);
    }
    if (cq_ring_ptr_ != nullptr && cq_ring_ptr_ != sq_ring_ptr_) {
      munmap(cq_ring_ptr_, cq_ring_bytes_);
    }
    if (sqes_ != nullptr) {
      munmap(sqes_, sqes_bytes_);
    }
    if (buf_ring_ != nullptr) {
      munmap(buf_ring_, buf_ring_bytes_);
    }
    if (buf_base_ != nullptr) {
      munmap(buf_base_, kBufCount * static_cast<size_t>(kBufSize));
    }
  }

  bool Init(Handler* handler, int listen_fd, std::string* error) override {
    handler_ = handler;
    listen_fd_ = listen_fd;
    auto fail = [&](const char* what) {
      if (error != nullptr) {
        *error = std::string(what) + ": " + ErrnoName(errno) + " (" +
                 strerror(errno) + ")";
      }
      return false;
    };

    io_uring_params p{};
    p.flags = IORING_SETUP_CQSIZE | IORING_SETUP_CLAMP;
    p.cq_entries = kCqEntries;
#if defined(IORING_SETUP_DEFER_TASKRUN) && defined(IORING_SETUP_SINGLE_ISSUER)
    // Deferred task-work is the difference between a readiness-loop-grade
    // ping-pong latency and a slow one: without it every completion is
    // posted by interrupting the submitter (TWA_SIGNAL IPIs, which also
    // make sibling threads' syscalls EINTR), with it completions are
    // processed inside our own io_uring_enter. SINGLE_ISSUER pins the ring
    // to one task, so create the ring disabled here and enable it from the
    // polling thread on its first Poll — the enabling task becomes the
    // issuer.
    p.flags |= IORING_SETUP_SINGLE_ISSUER | IORING_SETUP_DEFER_TASKRUN |
               IORING_SETUP_R_DISABLED;
    ring_fd_ = SysUringSetup(kSqEntries, &p);
    if (ring_fd_ < 0 && errno == EINVAL) {
      // Pre-6.1 kernel: fall back to signal-delivered task-work.
      p.flags = IORING_SETUP_CQSIZE | IORING_SETUP_CLAMP;
      ring_fd_ = SysUringSetup(kSqEntries, &p);
    } else {
      needs_enable_ = ring_fd_ >= 0;
    }
#else
    ring_fd_ = SysUringSetup(kSqEntries, &p);
#endif
    if (ring_fd_ < 0) {
      return fail("io_uring_setup");
    }
    features_ = p.features;
    // The timed-wait path needs EXT_ARG; any kernel with provided-buffer
    // rings (5.19) has it (5.11). Refuse odd kernels: the caller falls back.
    if ((features_ & IORING_FEAT_EXT_ARG) == 0 ||
        (features_ & IORING_FEAT_NODROP) == 0) {
      errno = ENOSYS;
      return fail("io_uring features");
    }

    // Map the rings. With FEAT_SINGLE_MMAP the SQ and CQ rings share one
    // mapping.
    sq_ring_bytes_ = p.sq_off.array + p.sq_entries * sizeof(unsigned);
    cq_ring_bytes_ = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
    if ((features_ & IORING_FEAT_SINGLE_MMAP) != 0) {
      sq_ring_bytes_ = cq_ring_bytes_ =
          sq_ring_bytes_ > cq_ring_bytes_ ? sq_ring_bytes_ : cq_ring_bytes_;
    }
    sq_ring_ptr_ = mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ring_ptr_ == MAP_FAILED) {
      sq_ring_ptr_ = nullptr;
      return fail("mmap(sq_ring)");
    }
    if ((features_ & IORING_FEAT_SINGLE_MMAP) != 0) {
      cq_ring_ptr_ = sq_ring_ptr_;
    } else {
      cq_ring_ptr_ = mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                          MAP_SHARED | MAP_POPULATE, ring_fd_,
                          IORING_OFF_CQ_RING);
      if (cq_ring_ptr_ == MAP_FAILED) {
        cq_ring_ptr_ = nullptr;
        return fail("mmap(cq_ring)");
      }
    }
    sqes_bytes_ = p.sq_entries * sizeof(io_uring_sqe);
    sqes_ = static_cast<io_uring_sqe*>(mmap(nullptr, sqes_bytes_,
                                            PROT_READ | PROT_WRITE,
                                            MAP_SHARED | MAP_POPULATE, ring_fd_,
                                            IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED) {
      sqes_ = nullptr;
      return fail("mmap(sqes)");
    }
    auto* sq_base = static_cast<char*>(sq_ring_ptr_);
    sq_head_ = reinterpret_cast<unsigned*>(sq_base + p.sq_off.head);
    sq_tail_ = reinterpret_cast<unsigned*>(sq_base + p.sq_off.tail);
    sq_mask_ = *reinterpret_cast<unsigned*>(sq_base + p.sq_off.ring_mask);
    sq_entries_ = *reinterpret_cast<unsigned*>(sq_base + p.sq_off.ring_entries);
    sq_array_ = reinterpret_cast<unsigned*>(sq_base + p.sq_off.array);
    auto* cq_base = static_cast<char*>(cq_ring_ptr_);
    cq_head_ = reinterpret_cast<unsigned*>(cq_base + p.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(cq_base + p.cq_off.tail);
    cq_mask_ = *reinterpret_cast<unsigned*>(cq_base + p.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq_base + p.cq_off.cqes);

    // Provided-buffer ring + the buffer pool it indexes.
    buf_ring_bytes_ = kBufCount * sizeof(io_uring_buf);
    buf_ring_ = static_cast<io_uring_buf*>(
        mmap(nullptr, buf_ring_bytes_, PROT_READ | PROT_WRITE,
             MAP_ANONYMOUS | MAP_PRIVATE, -1, 0));
    if (buf_ring_ == MAP_FAILED) {
      buf_ring_ = nullptr;
      return fail("mmap(buf_ring)");
    }
    buf_base_ = static_cast<char*>(mmap(nullptr,
                                        kBufCount * static_cast<size_t>(kBufSize),
                                        PROT_READ | PROT_WRITE,
                                        MAP_ANONYMOUS | MAP_PRIVATE, -1, 0));
    if (buf_base_ == MAP_FAILED) {
      buf_base_ = nullptr;
      return fail("mmap(buffers)");
    }
    io_uring_buf_reg reg{};
    reg.ring_addr = reinterpret_cast<uint64_t>(buf_ring_);
    reg.ring_entries = kBufCount;
    reg.bgid = kBufGroup;
    if (SysUringRegister(ring_fd_, IORING_REGISTER_PBUF_RING, &reg, 1) < 0) {
      return fail("io_uring_register(PBUF_RING)");
    }
    buf_tail_ = 0;
    for (unsigned bid = 0; bid < kBufCount; ++bid) {
      PushBufferEntry(static_cast<uint16_t>(bid));
    }
    PublishBufferTail();
    free_bufs_ = kBufCount;

    wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (wake_fd_ < 0) {
      return fail("eventfd");
    }
    ArmWakeRead();
    if (listen_fd_ >= 0) {
      ArmAccept();
    }
    return true;
  }

  bool Poll(int timeout_ms) override {
#if defined(IORING_SETUP_DEFER_TASKRUN) && defined(IORING_SETUP_SINGLE_ISSUER)
    if (needs_enable_) {
      // First Poll: this thread claims the ring (see Init). Every
      // io_uring_enter afterwards must come from here — and does: one
      // thread owns each transport's event loop by contract.
      needs_enable_ = false;
      if (SysUringRegister(ring_fd_, IORING_REGISTER_ENABLE_RINGS, nullptr,
                           0) < 0) {
        return false;
      }
      counters_.syscalls++;
    }
#endif
    static const bool debug = getenv("S3FIFO_URING_DEBUG") != nullptr;
    unsigned n = DispatchCompletions();
    if (n == 0) {
      int tmo = timeout_ms;
      if (debug && (tmo < 0 || tmo > 2000)) {
        tmo = 2000;
      }
      if (!EnterAndWait(tmo)) {
        return false;
      }
      const unsigned got = DispatchCompletions();
      if (debug) {
        if (got == 0) {
          if (++idle_waits_ >= 2) {
            DumpState();
          }
        } else {
          idle_waits_ = 0;
        }
      }
    } else if (debug) {
      idle_waits_ = 0;
    }
    // SQEs queued by this batch's handlers ride along with the next Poll's
    // combined submit-and-wait — no flush syscall here.
    DeliverClosures();
    return true;
  }

  void Wake() override {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
  }

  Conn* Adopt(int fd, void* ud) override {
    auto* c = new UConn;
    c->fd = fd;
    c->ud = ud;
    conns_.push_back(c);
    ArmRecv(c);
    return AsConn(c);
  }

  void Send(Conn* conn, std::vector<char>* data) override {
    UConn* c = FromConn(conn);
    if (data->empty() || c->dead || c->closing) {
      return;
    }
    c->queued_bytes += data->size();
    c->sendq.push_back(TakeBuffer(data));
    if (!c->send_inflight) {
      SubmitSend(c);
    }
  }

  size_t SendQueueBytes(const Conn* conn) const override {
    return FromConn(conn)->queued_bytes;
  }

  void ResumeRead(Conn* conn) override {
    UConn* c = FromConn(conn);
    if (!c->read_paused || c->dead || c->closing) {
      return;
    }
    c->read_paused = false;
    DrainHoldover(c);
    if (!c->read_paused && c->recv_starved && free_bufs_ > 0 && !c->dead &&
        !c->closing) {
      c->recv_starved = false;
      ArmRecv(c);
    }
  }

  void Close(Conn* conn) override {
    CloseInternal(FromConn(conn), /*notify=*/false);
  }

  const TransportCounters& counters() const override { return counters_; }
  const char* name() const override { return "uring"; }

 private:
  static Conn* AsConn(UConn* c) { return reinterpret_cast<Conn*>(c); }
  static UConn* FromConn(Conn* c) { return reinterpret_cast<UConn*>(c); }
  static const UConn* FromConn(const Conn* c) {
    return reinterpret_cast<const UConn*>(c);
  }

  std::vector<char> TakeBuffer(std::vector<char>* data) {
    std::vector<char> owned;
    if (!free_sendbufs_.empty()) {
      owned = std::move(free_sendbufs_.back());
      free_sendbufs_.pop_back();
    }
    owned.swap(*data);
    data->clear();
    return owned;
  }

  void RecycleSendBuffer(std::vector<char>&& buf) {
    if (free_sendbufs_.size() < 16) {
      buf.clear();
      free_sendbufs_.push_back(std::move(buf));
    }
  }

  void DumpState() {
    fprintf(stderr,
            "[uring %p] free_bufs=%u starved=%zu conns=%zu pend_sub=%u "
            "pend_send_sqes=%u\n",
            static_cast<void*>(this), free_bufs_, starved_.size(),
            conns_.size(), PendingSubmissions(), pending_send_sqes_);
    for (UConn* c : conns_) {
      fprintf(stderr,
              "  conn fd=%d sendq=%zu qbytes=%zu send_inflight=%d "
              "recv_armed=%d recv_starved=%d read_paused=%d closing=%d "
              "holdover=%zu\n",
              c->fd, c->sendq.size(), c->queued_bytes, c->send_inflight,
              c->recv_armed, c->recv_starved, c->read_paused, c->closing,
              c->holdover.size());
    }
  }

  // --- submission-queue plumbing -------------------------------------------

  io_uring_sqe* GetSqe() {
    unsigned head = std::atomic_ref<unsigned>(*sq_head_)
                        .load(std::memory_order_acquire);
    if (sq_local_tail_ - head >= sq_entries_) {
      FlushSubmissions();  // SQ full: hand what we have to the kernel now
      head = std::atomic_ref<unsigned>(*sq_head_)
                 .load(std::memory_order_acquire);
      if (sq_local_tail_ - head >= sq_entries_) {
        return nullptr;  // kernel refused to drain; caller treats as fatal
      }
    }
    const unsigned idx = sq_local_tail_ & sq_mask_;
    io_uring_sqe* sqe = &sqes_[idx];
    memset(sqe, 0, sizeof(*sqe));
    sq_array_[idx] = idx;
    sq_local_tail_++;
    std::atomic_ref<unsigned>(*sq_tail_)
        .store(sq_local_tail_, std::memory_order_release);
    return sqe;
  }

  unsigned PendingSubmissions() const {
    return sq_local_tail_ - std::atomic_ref<unsigned>(*sq_head_)
                                .load(std::memory_order_acquire);
  }

  void FlushSubmissions() {
    const unsigned pending = PendingSubmissions();
    if (pending == 0) {
      return;
    }
    const int r = SysUringEnter(ring_fd_, pending, 0, 0, nullptr, 0);
    counters_.syscalls++;
    if (r > 0) {
      counters_.sqe_batches++;
      counters_.sqes += static_cast<uint64_t>(r);
    }
    pending_send_sqes_ = 0;
  }

  bool EnterAndWait(int timeout_ms) {
    const unsigned to_submit = PendingSubmissions();
    unsigned wait_nr = 1;
    int tmo = timeout_ms;
    if (pending_send_sqes_ > 0) {
      // Loopback sends complete inline during this very submission; waiting
      // for one completion would return immediately with only our own send
      // CQEs. Count them into the wait target, capped by a short timeout in
      // case a send does NOT complete (slow reader) — see file comment.
      wait_nr += pending_send_sqes_;
      tmo = tmo < 0 ? 1 : (tmo < 1 ? tmo : 1);
    }
    unsigned flags = IORING_ENTER_GETEVENTS;
    io_uring_getevents_arg arg{};
    __kernel_timespec ts{};
    const void* argp = nullptr;
    size_t argsz = 0;
    if (tmo >= 0) {
      ts.tv_sec = tmo / 1000;
      ts.tv_nsec = static_cast<long long>(tmo % 1000) * 1000000;
      arg.ts = reinterpret_cast<uint64_t>(&ts);
      argp = &arg;
      argsz = sizeof(arg);
      flags |= IORING_ENTER_EXT_ARG;
    }
    int r;
    do {
      r = SysUringEnter(ring_fd_, to_submit, wait_nr, flags, argp, argsz);
    } while (r < 0 && errno == EINTR);
    counters_.syscalls++;
    counters_.waits++;
    if (r >= 0) {
      if (r > 0) {
        counters_.sqe_batches++;
        counters_.sqes += static_cast<uint64_t>(r);
      }
      pending_send_sqes_ = 0;
      return true;
    }
    // ETIME: the timed wait elapsed (SQEs were still submitted). EBUSY /
    // EAGAIN: completion-side pressure; back off to dispatch what's there.
    if (errno == ETIME || errno == EBUSY || errno == EAGAIN) {
      pending_send_sqes_ = 0;
      return true;
    }
    return false;
  }

  // --- operation arming ----------------------------------------------------

  void ArmWakeRead() {
    io_uring_sqe* sqe = GetSqe();
    if (sqe == nullptr) {
      return;
    }
    sqe->opcode = IORING_OP_READ;
    sqe->fd = wake_fd_;
    sqe->addr = reinterpret_cast<uint64_t>(&wake_buf_);
    sqe->len = sizeof(wake_buf_);
    sqe->user_data = kUdWake;
  }

  void ArmAccept() {
    io_uring_sqe* sqe = GetSqe();
    if (sqe == nullptr) {
      return;
    }
    sqe->opcode = IORING_OP_ACCEPT;
    sqe->fd = listen_fd_;
    sqe->ioprio = IORING_ACCEPT_MULTISHOT;
    sqe->accept_flags = SOCK_CLOEXEC;
    sqe->user_data = kUdAccept;
  }

  void ArmRecv(UConn* c) {
    io_uring_sqe* sqe = GetSqe();
    if (sqe == nullptr) {
      return;
    }
    sqe->opcode = IORING_OP_RECV;
    sqe->fd = c->fd;
    sqe->ioprio = IORING_RECV_MULTISHOT;
    sqe->flags = IOSQE_BUFFER_SELECT;
    sqe->buf_group = kBufGroup;
    sqe->user_data = reinterpret_cast<uint64_t>(c) | kTagRecv;
    c->recv_armed = true;
  }

  void SubmitSend(UConn* c) {
    if (c->sendq.empty() || c->send_inflight || c->dead) {
      return;
    }
    const std::vector<char>& front = c->sendq.front();
    io_uring_sqe* sqe = GetSqe();
    if (sqe == nullptr) {
      return;
    }
    sqe->opcode = IORING_OP_SEND;
    sqe->fd = c->fd;
    sqe->addr = reinterpret_cast<uint64_t>(front.data() + c->front_off);
    sqe->len = static_cast<unsigned>(front.size() - c->front_off);
    sqe->msg_flags = MSG_NOSIGNAL;
    sqe->user_data = reinterpret_cast<uint64_t>(c) | kTagSend;
    c->send_inflight = true;
    pending_send_sqes_++;
  }

  // --- provided-buffer ring ------------------------------------------------

  // The provided-buffer ring is an array of io_uring_buf starting at offset 0
  // of the registered mapping; the ring tail overlays entry 0's resv field.
  // Do NOT go through io_uring_buf_ring::bufs here: its C++ expansion of
  // __DECLARE_FLEX_ARRAY places the array at offset 8 (the empty struct that
  // is size 0 in C has size 1 in C++ and gets padded), silently shifting
  // every entry away from where the kernel reads them.
  void PushBufferEntry(uint16_t bid) {
    io_uring_buf* entry = &buf_ring_[buf_tail_ & (kBufCount - 1)];
    entry->addr = reinterpret_cast<uint64_t>(buf_base_ +
                                             static_cast<size_t>(bid) * kBufSize);
    entry->len = kBufSize;
    entry->bid = bid;
    buf_tail_++;
  }

  void PublishBufferTail() {
    std::atomic_ref<__u16>(buf_ring_[0].resv)
        .store(static_cast<uint16_t>(buf_tail_), std::memory_order_release);
  }

  void RecycleBuffer(uint16_t bid) {
    PushBufferEntry(bid);
    PublishBufferTail();
    free_bufs_++;
    if (!starved_.empty()) {
      ReArmStarved();
    }
  }

  void ReArmStarved() {
    size_t kept = 0;
    for (size_t i = 0; i < starved_.size(); ++i) {
      UConn* c = starved_[i];
      if (c->dead || c->closing || !c->recv_starved) {
        continue;  // resolved or gone; drop from the list
      }
      if (c->read_paused || free_bufs_ == 0) {
        starved_[kept++] = c;  // not eligible yet; keep waiting
        continue;
      }
      c->recv_starved = false;
      ArmRecv(c);
    }
    starved_.resize(kept);
  }

  // --- completion dispatch -------------------------------------------------

  unsigned DispatchCompletions() {
    unsigned n = 0;
    unsigned head = *cq_head_;
    for (;;) {
      const unsigned tail = std::atomic_ref<unsigned>(*cq_tail_)
                                .load(std::memory_order_acquire);
      if (head == tail) {
        break;
      }
      while (head != tail) {
        const io_uring_cqe cqe = cqes_[head & cq_mask_];
        head++;
        std::atomic_ref<unsigned>(*cq_head_)
            .store(head, std::memory_order_release);
        HandleCqe(cqe);
        n++;
      }
    }
    counters_.events += n;
    // An ENOBUFS completion can sit in the CQ behind the very completions
    // whose buffers refill the pool: those recycles run ReArmStarved while
    // starved_ is still empty, and with the pool already full no later
    // recycle will ever re-arm the recv. Sweep once per batch.
    if (!starved_.empty() && free_bufs_ > 0) {
      ReArmStarved();
    }
    return n;
  }

  void HandleCqe(const io_uring_cqe& cqe) {
    switch (cqe.user_data & kTagMask) {
      case kUdWake:
        if (cqe.user_data == kUdWake) {
          ArmWakeRead();  // one-shot read: re-arm for the next Wake()
          return;
        }
        break;
      case kUdAccept:
        if (cqe.user_data == kUdAccept) {
          HandleAcceptCqe(cqe);
          return;
        }
        break;
      default:
        break;
    }
    auto* c = reinterpret_cast<UConn*>(cqe.user_data & ~kTagMask);
    if ((cqe.user_data & kTagMask) == kTagSend) {
      HandleSendCqe(c, cqe);
    } else {
      HandleRecvCqe(c, cqe);
    }
  }

  void HandleAcceptCqe(const io_uring_cqe& cqe) {
    const bool more = (cqe.flags & IORING_CQE_F_MORE) != 0;
    if (cqe.res >= 0) {
      const int fd = cqe.res;
      const int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      counters_.syscalls++;
      counters_.accepts++;
      auto* c = new UConn;
      c->fd = fd;
      conns_.push_back(c);
      c->ud = handler_->OnAccept(AsConn(c));
      ArmRecv(c);
    }
    if (!more) {
      ArmAccept();  // multishot terminated (error or resource pressure)
    }
  }

  void HandleRecvCqe(UConn* c, const io_uring_cqe& cqe) {
    const bool more = (cqe.flags & IORING_CQE_F_MORE) != 0;
    if (!more) {
      c->recv_armed = false;
    }
    if (cqe.res > 0) {
      if (more) {
        counters_.recv_merges++;
      }
      const auto bid =
          static_cast<uint16_t>(cqe.flags >> IORING_CQE_BUFFER_SHIFT);
      free_bufs_--;
      if (c->dead || c->closing) {
        RecycleBuffer(bid);
      } else {
        DeliverBuffer(c, bid, static_cast<uint32_t>(cqe.res));
      }
      if (!more && !c->dead && !c->closing) {
        // Multishot ended without error (often buffer-pool pressure raced
        // the flag): re-arm unless we are out of buffers.
        if (free_bufs_ > 0 && !c->read_paused) {
          ArmRecv(c);
        } else {
          c->recv_starved = true;
          starved_.push_back(c);
        }
      }
      MaybeFinishClose(c);
      return;
    }
    if (cqe.res == -ENOBUFS) {
      if (!c->dead && !c->closing) {
        c->recv_starved = true;
        starved_.push_back(c);
      }
      MaybeFinishClose(c);
      return;
    }
    if (c->dead || c->closing) {
      MaybeFinishClose(c);
      return;
    }
    // res == 0: orderly EOF. res < 0: ECONNRESET and friends.
    CloseInternal(c, /*notify=*/true);
  }

  void HandleSendCqe(UConn* c, const io_uring_cqe& cqe) {
    c->send_inflight = false;
    if (c->dead || c->closing) {
      MaybeFinishClose(c);
      return;
    }
    if (cqe.res <= 0) {
      CloseInternal(c, /*notify=*/true);  // EPIPE/ECONNRESET/...
      return;
    }
    size_t sent = static_cast<size_t>(cqe.res);
    c->front_off += sent;
    c->queued_bytes -= sent;
    std::vector<char>& front = c->sendq.front();
    if (c->front_off == front.size()) {
      RecycleSendBuffer(std::move(front));
      c->sendq.pop_front();
      c->front_off = 0;
    }
    if (!c->sendq.empty()) {
      SubmitSend(c);  // short send or further queued buffers
    } else {
      handler_->OnWritable(AsConn(c), c->ud);
    }
  }

  // Pushes a received provided buffer through the handler; on backpressure
  // the (rest of the) buffer is retained in arrival order until ResumeRead.
  void DeliverBuffer(UConn* c, uint16_t bid, uint32_t len) {
    if (c->read_paused || !c->holdover.empty()) {
      c->holdover.push_back({bid, 0, len});
      return;
    }
    const uint32_t delivered = DeliverBytes(c, bid, 0, len);
    if (c->dead || c->closing) {
      // The handler closed the conn mid-delivery; CloseInternal already
      // recycled the holdover queue, this buffer goes back too.
      RecycleBuffer(bid);
      return;
    }
    if (delivered < len) {
      c->holdover.push_back({bid, delivered, len - delivered});
      return;
    }
    RecycleBuffer(bid);
  }

  // Returns how many bytes the handler accepted; sets read_paused on refusal.
  uint32_t DeliverBytes(UConn* c, uint16_t bid, uint32_t off, uint32_t len) {
    const char* src = buf_base_ + static_cast<size_t>(bid) * kBufSize;
    uint32_t done = 0;
    while (done < len && !c->dead && !c->closing) {
      char* dst = nullptr;
      size_t cap = 0;
      if (!handler_->GetReadBuffer(AsConn(c), c->ud, &dst, &cap)) {
        c->read_paused = true;
        return done;
      }
      const uint32_t take =
          cap < len - done ? static_cast<uint32_t>(cap) : len - done;
      memcpy(dst, src + off + done, take);
      handler_->OnData(AsConn(c), c->ud, take);
      done += take;
    }
    return done;
  }

  void DrainHoldover(UConn* c) {
    while (!c->holdover.empty() && !c->read_paused && !c->dead &&
           !c->closing) {
      Holdover h = c->holdover.front();
      const uint32_t delivered = DeliverBytes(c, h.bid, h.off, h.len);
      if (c->dead || c->closing) {
        return;  // CloseInternal already recycled the whole holdover queue
      }
      if (delivered < h.len) {
        c->holdover.front().off = h.off + delivered;
        c->holdover.front().len = h.len - delivered;
        return;  // paused again mid-buffer
      }
      c->holdover.pop_front();
      RecycleBuffer(h.bid);
    }
  }

  // --- close protocol ------------------------------------------------------

  unsigned OutstandingOps(const UConn* c) const {
    return (c->send_inflight ? 1u : 0u) + (c->recv_armed ? 1u : 0u);
  }

  void CloseInternal(UConn* c, bool notify) {
    if (c->dead || c->closing) {
      return;
    }
    c->notify = notify;
    // Give back every retained provided buffer.
    while (!c->holdover.empty()) {
      RecycleBuffer(c->holdover.front().bid);
      c->holdover.pop_front();
    }
    if (c->recv_starved) {
      // Remove eagerly: the conn may be freed before the next starved sweep
      // runs, and a stale entry would dangle.
      c->recv_starved = false;
      for (size_t i = 0; i < starved_.size(); ++i) {
        if (starved_[i] == c) {
          starved_[i] = starved_.back();
          starved_.pop_back();
          break;
        }
      }
    }
    if (OutstandingOps(c) == 0) {
      FinishClose(c);
      return;
    }
    // In-flight recv/send CQEs still reference this conn: provoke their
    // completion and free only after the last one drains.
    c->closing = true;
    shutdown(c->fd, SHUT_RDWR);
    counters_.syscalls++;
  }

  void MaybeFinishClose(UConn* c) {
    if (c->closing && !c->dead && OutstandingOps(c) == 0) {
      FinishClose(c);
    }
  }

  void FinishClose(UConn* c) {
    c->dead = true;
    c->closing = false;
    close(c->fd);
    counters_.syscalls++;
    c->fd = -1;
    for (size_t i = 0; i < conns_.size(); ++i) {
      if (conns_[i] == c) {
        conns_[i] = conns_.back();
        conns_.pop_back();
        break;
      }
    }
    dead_.push_back({c, c->notify});
  }

  void DeliverClosures() {
    for (size_t i = 0; i < dead_.size(); ++i) {
      if (dead_[i].second) {
        handler_->OnClose(AsConn(dead_[i].first), dead_[i].first->ud);
      }
    }
    for (auto& [c, notify] : dead_) {
      delete c;
    }
    dead_.clear();
  }

  Handler* handler_ = nullptr;
  int listen_fd_ = -1;
  int ring_fd_ = -1;
  int wake_fd_ = -1;
  unsigned features_ = 0;
  bool needs_enable_ = false;  // ring created R_DISABLED; first Poll enables
  unsigned idle_waits_ = 0;    // S3FIFO_URING_DEBUG: consecutive empty waits
  uint64_t wake_buf_ = 0;

  void* sq_ring_ptr_ = nullptr;
  void* cq_ring_ptr_ = nullptr;
  size_t sq_ring_bytes_ = 0;
  size_t cq_ring_bytes_ = 0;
  io_uring_sqe* sqes_ = nullptr;
  size_t sqes_bytes_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned* sq_array_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned sq_entries_ = 0;
  unsigned sq_local_tail_ = 0;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;
  unsigned pending_send_sqes_ = 0;

  io_uring_buf* buf_ring_ = nullptr;  // registered pbuf ring entry array
  size_t buf_ring_bytes_ = 0;
  char* buf_base_ = nullptr;
  unsigned buf_tail_ = 0;
  unsigned free_bufs_ = 0;

  std::vector<UConn*> conns_;
  std::vector<UConn*> starved_;
  std::vector<std::pair<UConn*, bool>> dead_;  // (conn, deliver OnClose)
  std::vector<std::vector<char>> free_sendbufs_;
  TransportCounters counters_;
};

}  // namespace

std::unique_ptr<Transport> MakeUringTransport() {
  return std::make_unique<UringTransport>();
}

bool IoUringAvailable(std::string* why) {
  io_uring_params p{};
  const int fd = SysUringSetup(8, &p);
  if (fd < 0) {
    if (why != nullptr) {
      *why = std::string("io_uring_setup: ") + ErrnoName(errno) + " (" +
             strerror(errno) + ")";
    }
    return false;
  }
  bool ok = (p.features & IORING_FEAT_EXT_ARG) != 0 &&
            (p.features & IORING_FEAT_NODROP) != 0;
  if (!ok && why != nullptr) {
    *why = "io_uring present but lacks EXT_ARG/NODROP (kernel too old)";
  }
  if (ok) {
    // The data plane is only usable with provided-buffer rings (5.19+).
    void* ring = mmap(nullptr, sizeof(io_uring_buf) * 16, PROT_READ | PROT_WRITE,
                      MAP_ANONYMOUS | MAP_PRIVATE, -1, 0);
    if (ring == MAP_FAILED) {
      ok = false;
      if (why != nullptr) {
        *why = std::string("mmap: ") + strerror(errno);
      }
    } else {
      io_uring_buf_reg reg{};
      reg.ring_addr = reinterpret_cast<uint64_t>(ring);
      reg.ring_entries = 16;
      reg.bgid = 0;
      if (SysUringRegister(fd, IORING_REGISTER_PBUF_RING, &reg, 1) < 0) {
        ok = false;
        if (why != nullptr) {
          *why = std::string("io_uring_register(PBUF_RING): ") +
                 ErrnoName(errno) + " (" + strerror(errno) + ")";
        }
      }
      munmap(ring, sizeof(io_uring_buf) * 16);
    }
  }
  close(fd);
  return ok;
}

}  // namespace s3fifo

#else  // !S3FIFO_HAVE_IO_URING

namespace s3fifo {

std::unique_ptr<Transport> MakeUringTransport() { return nullptr; }

bool IoUringAvailable(std::string* why) {
  if (why != nullptr) {
    *why = "io_uring support not compiled in (non-Linux build)";
  }
  return false;
}

}  // namespace s3fifo

#endif  // S3FIFO_HAVE_IO_URING
