#include "src/sim/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace s3fifo {

double MissRatioReduction(double mr_algo, double mr_fifo) {
  if (mr_fifo <= 0.0 && mr_algo <= 0.0) {
    return 0.0;
  }
  if (mr_algo <= mr_fifo) {
    return mr_fifo <= 0.0 ? 0.0 : (mr_fifo - mr_algo) / mr_fifo;
  }
  return -(mr_algo - mr_fifo) / mr_algo;
}

PercentileRow Percentiles(std::vector<double> values) {
  PercentileRow row;
  if (values.empty()) {
    return row;
  }
  std::sort(values.begin(), values.end());
  auto at = [&](double p) {
    const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    const size_t lo = static_cast<size_t>(std::floor(rank));
    const size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
  };
  row.p10 = at(10);
  row.p25 = at(25);
  row.p50 = at(50);
  row.p75 = at(75);
  row.p90 = at(90);
  double sum = 0;
  for (double v : values) {
    sum += v;
  }
  row.mean = sum / static_cast<double>(values.size());
  return row;
}

std::string FormatPercentileRow(const std::string& label, const PercentileRow& row) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "%-14s P10=%+7.4f P25=%+7.4f P50=%+7.4f mean=%+7.4f P75=%+7.4f P90=%+7.4f",
                label.c_str(), row.p10, row.p25, row.p50, row.mean, row.p75, row.p90);
  return buf;
}

}  // namespace s3fifo
