#include "src/sim/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace s3fifo {

double MissRatioReduction(double mr_algo, double mr_fifo) {
  if (mr_fifo <= 0.0 && mr_algo <= 0.0) {
    return 0.0;
  }
  if (mr_algo <= mr_fifo) {
    return mr_fifo <= 0.0 ? 0.0 : (mr_fifo - mr_algo) / mr_fifo;
  }
  return -(mr_algo - mr_fifo) / mr_algo;
}

PercentileRow Percentiles(std::vector<double> values) {
  PercentileRow row;
  if (values.empty()) {
    return row;
  }
  std::sort(values.begin(), values.end());
  auto at = [&](double p) {
    const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    const size_t lo = static_cast<size_t>(std::floor(rank));
    const size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
  };
  row.p10 = at(10);
  row.p25 = at(25);
  row.p50 = at(50);
  row.p75 = at(75);
  row.p90 = at(90);
  double sum = 0;
  for (double v : values) {
    sum += v;
  }
  row.mean = sum / static_cast<double>(values.size());
  return row;
}

std::string FormatPercentileRow(const std::string& label, const PercentileRow& row) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "%-14s P10=%+7.4f P25=%+7.4f P50=%+7.4f mean=%+7.4f P75=%+7.4f P90=%+7.4f",
                label.c_str(), row.p10, row.p25, row.p50, row.mean, row.p75, row.p90);
  return buf;
}

LatencyHistogram::LatencyHistogram() : buckets_(kNumBuckets, 0) {}

// Values below kSubBuckets are recorded exactly (one bucket per integer);
// above that, bucket = (octave, top kSubBucketBits mantissa bits).
int LatencyHistogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) {
    return static_cast<int>(value);
  }
  const int msb = 63 - __builtin_clzll(value);
  const int shift = msb - kSubBucketBits;
  const int sub = static_cast<int>((value >> shift) & (kSubBuckets - 1));
  return (msb - kSubBucketBits + 1) * kSubBuckets + sub;
}

uint64_t LatencyHistogram::BucketUpperEdge(int index) {
  if (index < kSubBuckets) {
    return static_cast<uint64_t>(index);
  }
  const int octave = index / kSubBuckets + kSubBucketBits - 1;
  const int sub = index % kSubBuckets;
  const int shift = octave - kSubBucketBits;
  return ((uint64_t{1} << octave) | (static_cast<uint64_t>(sub) << shift)) +
         ((uint64_t{1} << shift) - 1);
}

void LatencyHistogram::Add(uint64_t value) {
  ++buckets_[BucketIndex(value)];
  ++count_;
  sum_ += static_cast<double>(value);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = ~uint64_t{0};
  max_ = 0;
}

double LatencyHistogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

uint64_t LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  if (p <= 0.0) {
    return min();
  }
  if (p >= 100.0) {
    return max_;
  }
  const double target = p / 100.0 * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) >= target) {
      return std::min(BucketUpperEdge(i), max_);
    }
  }
  return max_;
}

std::string LatencyHistogram::FormatLatencyUs(const std::string& label) const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "%-12s p50=%8.1fus p99=%8.1fus p999=%8.1fus max=%8.1fus (n=%llu)",
                label.c_str(), static_cast<double>(Percentile(50)) / 1e3,
                static_cast<double>(Percentile(99)) / 1e3,
                static_cast<double>(Percentile(99.9)) / 1e3, static_cast<double>(max_) / 1e3,
                static_cast<unsigned long long>(count_));
  return buf;
}

}  // namespace s3fifo
