// Metrics shared by the evaluation harness, chiefly the paper's bounded
// miss-ratio-reduction statistic (§5.1.2).
#ifndef SRC_SIM_METRICS_H_
#define SRC_SIM_METRICS_H_

#include <string>
#include <vector>

namespace s3fifo {

// (MR_fifo - MR_algo) / MR_fifo when the algorithm wins, and
// -(MR_algo - MR_fifo) / MR_algo when it loses — bounding the value to
// [-1, 1] so outliers cannot dominate the mean (paper §5.1.2).
double MissRatioReduction(double mr_algo, double mr_fifo);

// Pretty-prints a percentile row (P10/P25/P50/Mean/P75/P90) for a metric
// vector; used by the figure benches.
struct PercentileRow {
  double p10 = 0, p25 = 0, p50 = 0, mean = 0, p75 = 0, p90 = 0;
};
PercentileRow Percentiles(std::vector<double> values);
std::string FormatPercentileRow(const std::string& label, const PercentileRow& row);

}  // namespace s3fifo

#endif  // SRC_SIM_METRICS_H_
