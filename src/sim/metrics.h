// Metrics shared by the evaluation harness: the paper's bounded
// miss-ratio-reduction statistic (§5.1.2) and the latency histogram used by
// the network load generator and the concurrent replay loop.
#ifndef SRC_SIM_METRICS_H_
#define SRC_SIM_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace s3fifo {

// (MR_fifo - MR_algo) / MR_fifo when the algorithm wins, and
// -(MR_algo - MR_fifo) / MR_algo when it loses — bounding the value to
// [-1, 1] so outliers cannot dominate the mean (paper §5.1.2).
double MissRatioReduction(double mr_algo, double mr_fifo);

// Pretty-prints a percentile row (P10/P25/P50/Mean/P75/P90) for a metric
// vector; used by the figure benches.
struct PercentileRow {
  double p10 = 0, p25 = 0, p50 = 0, mean = 0, p75 = 0, p90 = 0;
};
PercentileRow Percentiles(std::vector<double> values);
std::string FormatPercentileRow(const std::string& label, const PercentileRow& row);

// Log-bucketed histogram for long-tailed latency distributions (HDR-style):
// each power-of-two octave is split into 2^kSubBucketBits linear sub-buckets,
// so quantiles carry <= ~3% relative error at fixed memory, values up to
// 2^63 never saturate, and two histograms merge by adding counts — each
// worker thread records into its own histogram and the harness merges them.
//
// Units are whatever the caller feeds in (the server stack uses nanoseconds).
class LatencyHistogram {
 public:
  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets per octave
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kNumBuckets = (64 - kSubBucketBits + 1) * kSubBuckets;

  LatencyHistogram();

  void Add(uint64_t value);
  void Merge(const LatencyHistogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;
  // p in [0, 100]. Returns the upper edge of the bucket where the CDF first
  // reaches p (the recorded value is <= the returned value); exact min/max
  // are reported at the extremes.
  uint64_t Percentile(double p) const;

  // "p50=... p99=... p999=... max=..." scaled to microseconds — the summary
  // line the load generator and fig08 print.
  std::string FormatLatencyUs(const std::string& label) const;

  const std::vector<uint64_t>& buckets() const { return buckets_; }
  // Inclusive upper edge of buckets()[index], in recorded units. With
  // buckets() this is enough to dump the histogram for offline plotting
  // (e.g. the load generator's --latency-csv).
  static uint64_t BucketEdge(int index) { return BucketUpperEdge(index); }

 private:
  static int BucketIndex(uint64_t value);
  static uint64_t BucketUpperEdge(int index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t min_ = ~uint64_t{0};
  uint64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace s3fifo

#endif  // SRC_SIM_METRICS_H_
