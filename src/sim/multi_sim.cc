#include "src/sim/multi_sim.h"

#include <algorithm>
#include <stdexcept>

namespace s3fifo {
namespace {

// Requests driven through one cache before switching to the next. Blocking
// keeps each cache's table hot for thousands of consecutive requests (per-
// request interleaving would touch every cache's working set on every
// request and thrash the CPU cache once the tables outgrow L2), while the
// trace block itself — the shared input — stays resident across all caches.
// Each cache still sees the full request sequence in order, so results are
// unchanged.
constexpr uint64_t kBlockRequests = 65536;

}  // namespace

std::vector<SimResult> MultiSimulate(const Trace& trace, std::span<Cache* const> caches,
                                     const SimOptions& options) {
  for (Cache* cache : caches) {
    if (cache->RequiresNextAccess() && !trace.annotated()) {
      throw std::invalid_argument("policy '" + cache->Name() +
                                  "' requires AnnotateNextAccess() on the trace");
    }
  }
  std::vector<SimResult> results(caches.size());
  const auto& requests = trace.requests();
  for (uint64_t begin = 0; begin < requests.size(); begin += kBlockRequests) {
    const uint64_t end = std::min<uint64_t>(begin + kBlockRequests, requests.size());
    for (size_t i = 0; i < caches.size(); ++i) {
      Cache* cache = caches[i];
      SimResult& r = results[i];
      for (uint64_t index = begin; index < end; ++index) {
        const Request& req = requests[index];
        const bool hit = cache->Get(req);
        if (index < options.warmup_requests || req.op == OpType::kDelete) {
          continue;
        }
        ++r.requests;
        r.bytes_requested += req.size;
        if (hit) {
          ++r.hits;
        } else {
          ++r.misses;
          r.bytes_missed += req.size;
        }
      }
    }
  }
  return results;
}

std::vector<SimResult> MultiSimulate(const Trace& trace,
                                     const std::vector<std::unique_ptr<Cache>>& caches,
                                     const SimOptions& options) {
  std::vector<Cache*> ptrs;
  ptrs.reserve(caches.size());
  for (const auto& cache : caches) {
    ptrs.push_back(cache.get());
  }
  return MultiSimulate(trace, std::span<Cache* const>(ptrs), options);
}

}  // namespace s3fifo
