#include "src/sim/multi_sim.h"

#include <algorithm>
#include <stdexcept>

namespace s3fifo {
namespace {

// Requests driven through one cache before switching to the next. Blocking
// keeps each cache's table hot for thousands of consecutive requests (per-
// request interleaving would touch every cache's working set on every
// request and thrash the CPU cache once the tables outgrow L2), while the
// trace block itself — the shared input — stays resident across all caches.
// Each cache still sees the full request sequence in order, so results are
// unchanged.
constexpr uint64_t kBlockRequests = 65536;

// One (cache, block) inner loop. `get` yields the request at an index — a
// reference into the AoS array for heap-backed views (copy-free, the seed
// hot path), a gather from the columns for mmap-backed ones.
template <typename GetReq>
void RunBlock(const TraceView& view, Cache* cache, SimResult& r, uint64_t begin, uint64_t end,
              const SimOptions& options, const GetReq& get) {
  const uint64_t prefetch = options.prefetch_distance;
  for (uint64_t index = begin; index < end; ++index) {
    // Prefetch stops at the block edge: the next block reaches this cache
    // only after every other cache has run the current one, by which time
    // the lines would be long gone.
    if (prefetch != 0 && index + prefetch < end) {
      cache->Prefetch(view.id(index + prefetch));
    }
    decltype(auto) req = get(index);
    const bool hit = cache->Get(req);
    if (index < options.warmup_requests || req.op == OpType::kDelete) {
      continue;
    }
    ++r.requests;
    r.bytes_requested += req.size;
    if (hit) {
      ++r.hits;
    } else {
      ++r.misses;
      r.bytes_missed += req.size;
    }
  }
}

// Batched (cache, block) inner loop: slices of batch_size requests go
// through Cache::GetBatch — the policy's devirtualized block loop — and the
// metrics are accounted from the hit bitmap plus the view's op/size columns.
void RunBlockBatched(const TraceView& view, Cache* cache, SimResult& r, uint64_t begin,
                     uint64_t end, const SimOptions& options, std::vector<uint8_t>& hits) {
  for (uint64_t b = begin; b < end; b += options.batch_size) {
    const uint64_t e = std::min<uint64_t>(b + options.batch_size, end);
    cache->GetBatch(view, b, e, hits.data(), options.prefetch_distance);
    for (uint64_t i = b; i < e; ++i) {
      if (i < options.warmup_requests || view.op(i) == OpType::kDelete) {
        continue;
      }
      const uint64_t size = view.object_size(i);
      ++r.requests;
      r.bytes_requested += size;
      if (hits[i - b] != 0) {
        ++r.hits;
      } else {
        ++r.misses;
        r.bytes_missed += size;
      }
    }
  }
}

}  // namespace

std::vector<SimResult> MultiSimulate(const TraceView& view, std::span<Cache* const> caches,
                                     const SimOptions& options) {
  for (Cache* cache : caches) {
    if (cache->RequiresNextAccess() && !view.annotated()) {
      throw std::invalid_argument("policy '" + cache->Name() +
                                  "' requires AnnotateNextAccess() on the trace");
    }
  }
  std::vector<SimResult> results(caches.size());
  const uint64_t n = view.size();
  const Request* aos = view.AsRequests();
  std::vector<uint8_t> hits(options.batch_size);  // reused across caches and blocks
  for (uint64_t begin = 0; begin < n; begin += kBlockRequests) {
    const uint64_t end = std::min<uint64_t>(begin + kBlockRequests, n);
    for (size_t i = 0; i < caches.size(); ++i) {
      if (options.batch_size != 0) {
        RunBlockBatched(view, caches[i], results[i], begin, end, options, hits);
      } else if (aos != nullptr) {
        RunBlock(view, caches[i], results[i], begin, end, options,
                 [aos](uint64_t index) -> const Request& { return aos[index]; });
      } else {
        RunBlock(view, caches[i], results[i], begin, end, options,
                 [&view](uint64_t index) { return view.At(index); });
      }
    }
  }
  return results;
}

std::vector<SimResult> MultiSimulate(const Trace& trace, std::span<Cache* const> caches,
                                     const SimOptions& options) {
  return MultiSimulate(TraceView::Borrow(trace), caches, options);
}

namespace {

std::vector<Cache*> RawPointers(const std::vector<std::unique_ptr<Cache>>& caches) {
  std::vector<Cache*> ptrs;
  ptrs.reserve(caches.size());
  for (const auto& cache : caches) {
    ptrs.push_back(cache.get());
  }
  return ptrs;
}

}  // namespace

std::vector<SimResult> MultiSimulate(const TraceView& view,
                                     const std::vector<std::unique_ptr<Cache>>& caches,
                                     const SimOptions& options) {
  const std::vector<Cache*> ptrs = RawPointers(caches);
  return MultiSimulate(view, std::span<Cache* const>(ptrs), options);
}

std::vector<SimResult> MultiSimulate(const Trace& trace,
                                     const std::vector<std::unique_ptr<Cache>>& caches,
                                     const SimOptions& options) {
  const std::vector<Cache*> ptrs = RawPointers(caches);
  return MultiSimulate(trace, std::span<Cache* const>(ptrs), options);
}

}  // namespace s3fifo
