// Single-pass multi-cache simulation: stream one trace through N caches
// (policies × capacities) at once, instead of re-reading it once per cache.
// This is the single-configuration-pass idea from single-pass MRC tooling
// (CIPARSim, DEW) applied to the whole policy-comparison harness: the trace
// is the expensive shared input, so every consumer rides the same scan.
//
// The canonical input is a TraceView, so the same loop runs over a heap
// Trace or an mmap'd trace-cache file with no deserialization. Within each
// block the loop is prefetch-batched (see SimOptions::prefetch_distance):
// the hash probe slot for request i+K is prefetched while request i is
// handled, which overlaps table misses — a hint only, results unchanged.
#ifndef SRC_SIM_MULTI_SIM_H_
#define SRC_SIM_MULTI_SIM_H_

#include <memory>
#include <span>
#include <vector>

#include "src/sim/simulator.h"

namespace s3fifo {

// Drives every cache through the trace in one pass. The i-th result is
// bit-identical to Simulate(trace, *caches[i], options): each cache sees the
// same request sequence in the same order, so per-cache state evolution is
// unchanged — only the trace iteration is shared.
//
// Throws std::invalid_argument if any cache requires next-access annotation
// (Belady) and the trace is not annotated.
std::vector<SimResult> MultiSimulate(const TraceView& view, std::span<Cache* const> caches,
                                     const SimOptions& options = {});
std::vector<SimResult> MultiSimulate(const Trace& trace, std::span<Cache* const> caches,
                                     const SimOptions& options = {});

// Convenience overloads for an owning vector of caches.
std::vector<SimResult> MultiSimulate(const TraceView& view,
                                     const std::vector<std::unique_ptr<Cache>>& caches,
                                     const SimOptions& options = {});
std::vector<SimResult> MultiSimulate(const Trace& trace,
                                     const std::vector<std::unique_ptr<Cache>>& caches,
                                     const SimOptions& options = {});

}  // namespace s3fifo

#endif  // SRC_SIM_MULTI_SIM_H_
