#include "src/sim/runner.h"

#include <exception>
#include <thread>

#include "src/util/thread_pool.h"

namespace s3fifo {

std::vector<TaskOutcome> RunTasks(size_t num_tasks, const std::function<void(size_t)>& task,
                                  const RunnerOptions& options) {
  std::vector<TaskOutcome> outcomes(num_tasks);
  unsigned threads = options.num_threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  ThreadPool pool(threads);
  for (size_t i = 0; i < num_tasks; ++i) {
    pool.Submit([&task, &outcomes, &options, i] {
      TaskOutcome& out = outcomes[i];
      for (uint32_t attempt = 0; attempt <= options.max_retries; ++attempt) {
        out.attempts = attempt + 1;
        try {
          task(i);
          out.ok = true;
          return;
        } catch (const std::exception& e) {
          out.error = e.what();
        } catch (...) {
          out.error = "unknown exception";
        }
      }
    });
  }
  pool.Wait();
  return outcomes;
}

std::vector<SimJobResult> RunJobs(const std::vector<SimJob>& jobs, const RunnerOptions& options) {
  std::vector<SimJobResult> results(jobs.size());
  const std::vector<TaskOutcome> outcomes = RunTasks(
      jobs.size(),
      [&jobs, &results](size_t i) {
        const SimJob& job = jobs[i];
        Trace trace = job.make_trace();
        std::unique_ptr<Cache> cache = job.make_cache();
        results[i].result = Simulate(trace, *cache, job.options);
      },
      options);
  for (size_t i = 0; i < jobs.size(); ++i) {
    results[i].label = jobs[i].label;
    results[i].ok = outcomes[i].ok;
    results[i].attempts = outcomes[i].attempts;
    results[i].error = outcomes[i].error;
  }
  return results;
}

}  // namespace s3fifo
