#include "src/sim/runner.h"

#include <exception>
#include <thread>

#include "src/util/thread_pool.h"

namespace s3fifo {

std::vector<SimJobResult> RunJobs(const std::vector<SimJob>& jobs, const RunnerOptions& options) {
  std::vector<SimJobResult> results(jobs.size());
  unsigned threads = options.num_threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  ThreadPool pool(threads);
  for (size_t i = 0; i < jobs.size(); ++i) {
    pool.Submit([&jobs, &results, &options, i] {
      const SimJob& job = jobs[i];
      SimJobResult& out = results[i];
      out.label = job.label;
      for (uint32_t attempt = 0; attempt <= options.max_retries; ++attempt) {
        out.attempts = attempt + 1;
        try {
          Trace trace = job.make_trace();
          std::unique_ptr<Cache> cache = job.make_cache();
          out.result = Simulate(trace, *cache, job.options);
          out.ok = true;
          return;
        } catch (const std::exception& e) {
          out.error = e.what();
        } catch (...) {
          out.error = "unknown exception";
        }
      }
    });
  }
  pool.Wait();
  return results;
}

}  // namespace s3fifo
