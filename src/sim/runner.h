// Parallel, fault-tolerant simulation runner — the in-process analog of the
// paper's distributed computation platform (§5.1.2). Jobs run on a thread
// pool; a job that throws is retried up to `max_retries` times and reported
// as failed afterwards, without affecting other jobs.
#ifndef SRC_SIM_RUNNER_H_
#define SRC_SIM_RUNNER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/simulator.h"

namespace s3fifo {

struct SimJob {
  std::string label;
  // Produces the trace and the cache; called on the worker thread so trace
  // generation parallelises too.
  std::function<Trace()> make_trace;
  std::function<std::unique_ptr<Cache>()> make_cache;
  SimOptions options;
};

struct SimJobResult {
  std::string label;
  SimResult result;
  bool ok = false;
  uint32_t attempts = 0;
  std::string error;
};

struct RunnerOptions {
  unsigned num_threads = 0;  // 0 = hardware concurrency
  uint32_t max_retries = 2;
};

// Outcome of one fault-tolerant task (see RunTasks).
struct TaskOutcome {
  bool ok = false;
  uint32_t attempts = 0;
  std::string error;
};

// The generic fault-tolerant parallel runner underlying RunJobs and the
// sweep engine: executes task(i) for every i in [0, num_tasks) on a thread
// pool, retrying a throwing task up to max_retries times without affecting
// the others. Outcomes are index-aligned with the task indices.
std::vector<TaskOutcome> RunTasks(size_t num_tasks, const std::function<void(size_t)>& task,
                                  const RunnerOptions& options = {});

// Runs all jobs; the result vector is index-aligned with `jobs`.
std::vector<SimJobResult> RunJobs(const std::vector<SimJob>& jobs,
                                  const RunnerOptions& options = {});

}  // namespace s3fifo

#endif  // SRC_SIM_RUNNER_H_
