#include "src/sim/simulator.h"

#include <stdexcept>

namespace s3fifo {
namespace {

template <typename GetReq>
SimResult RunLoop(const TraceView& view, Cache& cache, const SimOptions& options,
                  const GetReq& get) {
  SimResult result;
  const uint64_t n = view.size();
  const uint64_t prefetch = options.prefetch_distance;
  for (uint64_t index = 0; index < n; ++index) {
    if (prefetch != 0 && index + prefetch < n) {
      cache.Prefetch(view.id(index + prefetch));
    }
    decltype(auto) req = get(index);
    const bool hit = cache.Get(req);
    if (options.observer) {
      options.observer(index, req, hit);
    }
    if (index < options.warmup_requests || req.op == OpType::kDelete) {
      continue;
    }
    ++result.requests;
    result.bytes_requested += req.size;
    if (hit) {
      ++result.hits;
    } else {
      ++result.misses;
      result.bytes_missed += req.size;
    }
  }
  return result;
}

}  // namespace

SimResult Simulate(const TraceView& view, Cache& cache, const SimOptions& options) {
  if (cache.RequiresNextAccess() && !view.annotated()) {
    throw std::invalid_argument("policy '" + cache.Name() +
                                "' requires AnnotateNextAccess() on the trace");
  }
  const Request* aos = view.AsRequests();
  if (aos != nullptr) {
    return RunLoop(view, cache, options,
                   [aos](uint64_t index) -> const Request& { return aos[index]; });
  }
  return RunLoop(view, cache, options, [&view](uint64_t index) { return view.At(index); });
}

SimResult Simulate(const Trace& trace, Cache& cache, const SimOptions& options) {
  return Simulate(TraceView::Borrow(trace), cache, options);
}

}  // namespace s3fifo
