#include "src/sim/simulator.h"

#include <stdexcept>

namespace s3fifo {

SimResult Simulate(const Trace& trace, Cache& cache, const SimOptions& options) {
  if (cache.RequiresNextAccess() && !trace.annotated()) {
    throw std::invalid_argument("policy '" + cache.Name() +
                                "' requires AnnotateNextAccess() on the trace");
  }
  SimResult result;
  uint64_t index = 0;
  for (const Request& req : trace.requests()) {
    const bool hit = cache.Get(req);
    if (options.observer) {
      options.observer(index, req, hit);
    }
    const bool measured = index++ >= options.warmup_requests;
    if (!measured || req.op == OpType::kDelete) {
      continue;
    }
    ++result.requests;
    result.bytes_requested += req.size;
    if (hit) {
      ++result.hits;
    } else {
      ++result.misses;
      result.bytes_missed += req.size;
    }
  }
  return result;
}

}  // namespace s3fifo
