#include "src/sim/simulator.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace s3fifo {
namespace {

// The observer-free fast path: hand block-sized slices to Cache::GetBatch
// and account hits from the returned bitmap plus the view's op/size columns.
SimResult RunBatched(const TraceView& view, Cache& cache, const SimOptions& options) {
  SimResult result;
  const uint64_t n = view.size();
  std::vector<uint8_t> hits(options.batch_size);
  for (uint64_t begin = 0; begin < n; begin += options.batch_size) {
    const uint64_t end = std::min<uint64_t>(begin + options.batch_size, n);
    cache.GetBatch(view, begin, end, hits.data(), options.prefetch_distance);
    for (uint64_t i = begin; i < end; ++i) {
      if (i < options.warmup_requests || view.op(i) == OpType::kDelete) {
        continue;
      }
      const uint64_t size = view.object_size(i);
      ++result.requests;
      result.bytes_requested += size;
      if (hits[i - begin] != 0) {
        ++result.hits;
      } else {
        ++result.misses;
        result.bytes_missed += size;
      }
    }
  }
  return result;
}

template <typename GetReq>
SimResult RunLoop(const TraceView& view, Cache& cache, const SimOptions& options,
                  const GetReq& get) {
  SimResult result;
  const uint64_t n = view.size();
  const uint64_t prefetch = options.prefetch_distance;
  for (uint64_t index = 0; index < n; ++index) {
    if (prefetch != 0 && index + prefetch < n) {
      cache.Prefetch(view.id(index + prefetch));
    }
    decltype(auto) req = get(index);
    const bool hit = cache.Get(req);
    if (options.observer) {
      options.observer(index, req, hit);
    }
    if (index < options.warmup_requests || req.op == OpType::kDelete) {
      continue;
    }
    ++result.requests;
    result.bytes_requested += req.size;
    if (hit) {
      ++result.hits;
    } else {
      ++result.misses;
      result.bytes_missed += req.size;
    }
  }
  return result;
}

}  // namespace

SimResult Simulate(const TraceView& view, Cache& cache, const SimOptions& options) {
  if (cache.RequiresNextAccess() && !view.annotated()) {
    throw std::invalid_argument("policy '" + cache.Name() +
                                "' requires AnnotateNextAccess() on the trace");
  }
  if (!options.observer && options.batch_size != 0) {
    return RunBatched(view, cache, options);
  }
  const Request* aos = view.AsRequests();
  if (aos != nullptr) {
    return RunLoop(view, cache, options,
                   [aos](uint64_t index) -> const Request& { return aos[index]; });
  }
  return RunLoop(view, cache, options, [&view](uint64_t index) { return view.At(index); });
}

SimResult Simulate(const Trace& trace, Cache& cache, const SimOptions& options) {
  return Simulate(TraceView::Borrow(trace), cache, options);
}

}  // namespace s3fifo
