// Trace-driven simulation: runs a trace through a cache and collects miss
// metrics (request and byte miss ratio, with optional warmup exclusion).
//
// The canonical input is a TraceView — zero-copy over either a heap Trace or
// an mmap'd trace-cache file — and the request loop is prefetch-batched:
// while request i is being handled, the hash probe slot for request i+K is
// prefetched (Cache::Prefetch), overlapping table misses across the block.
// Prefetching is a pure hint, so results are bit-identical to the scalar
// loop (prefetch_distance = 0) on any backing.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>

#include "src/core/cache.h"
#include "src/trace/trace.h"
#include "src/trace/trace_view.h"

namespace s3fifo {

struct SimOptions {
  // Requests excluded from the metrics while still warming the cache.
  uint64_t warmup_requests = 0;
  // How far ahead of the current request the cache's hash slot is
  // prefetched. 0 disables prefetching (the scalar reference loop).
  uint32_t prefetch_distance = 16;
  // Requests handed to Cache::GetBatch per call when no observer is
  // installed — the batched path runs the policy's devirtualized block loop.
  // 0 forces the per-request reference loop (Get once per request), which is
  // also the path every observer run takes. Results are bit-identical either
  // way; this only changes the instruction schedule.
  uint32_t batch_size = 4096;
  // Invoked after every request (warmup included) with the request index,
  // the request, and the hit/miss outcome, while the cache still holds the
  // post-request state. The correctness harness hangs its per-request
  // metamorphic invariant checks here.
  std::function<void(uint64_t index, const Request& req, bool hit)> observer;
};

struct SimResult {
  uint64_t requests = 0;  // measured requests (post warmup, get/set only)
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t bytes_requested = 0;
  uint64_t bytes_missed = 0;

  double MissRatio() const {
    return requests == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(requests);
  }
  double ByteMissRatio() const {
    return bytes_requested == 0
               ? 0.0
               : static_cast<double>(bytes_missed) / static_cast<double>(bytes_requested);
  }
};

// Throws std::invalid_argument if the cache requires next-access annotation
// (Belady) and the trace is not annotated.
SimResult Simulate(const TraceView& view, Cache& cache, const SimOptions& options = {});
SimResult Simulate(const Trace& trace, Cache& cache, const SimOptions& options = {});

}  // namespace s3fifo

#endif  // SRC_SIM_SIMULATOR_H_
