#include "src/sim/sweep_engine.h"

namespace s3fifo {

TraceView SharedTrace::Acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!view_.has_value()) {
    view_ = make_view_();
  }
  return *view_;
}

void SharedTrace::AddUser() {
  std::lock_guard<std::mutex> lock(mu_);
  ++pending_users_;
}

void SharedTrace::ReleaseUser() {
  std::lock_guard<std::mutex> lock(mu_);
  if (--pending_users_ <= 0) {
    view_.reset();
  }
}

SharedTracePtr SweepEngine::MakeSharedTrace(std::function<Trace()> generate) {
  return MakeSharedView([generate = std::move(generate)] {
    auto trace = std::make_shared<Trace>(generate());
    // Warm the stats cache while we still have exclusive access; afterwards
    // concurrent stats() calls are pure reads.
    trace->Stats();
    return TraceView::FromTrace(std::move(trace));
  });
}

SharedTracePtr SweepEngine::MakeSharedDatasetTrace(const DatasetProfile& profile,
                                                   uint32_t trace_index, double scale,
                                                   TraceCache* trace_cache) {
  if (trace_cache == nullptr) {
    // Copy the profile: the generator outlives the caller's reference.
    return MakeSharedTrace(
        [profile, trace_index, scale] { return GenerateDatasetTrace(profile, trace_index, scale); });
  }
  return MakeSharedView([profile, trace_index, scale, trace_cache] {
    return trace_cache->GetOrGenerate(
        DatasetTraceSpec(profile, trace_index, scale),
        [&] { return GenerateDatasetTrace(profile, trace_index, scale); });
  });
}

std::vector<SweepUnitResult> SweepEngine::Run(const std::vector<SweepUnit>& units) {
  simulated_requests_ = 0;
  for (const SweepUnit& unit : units) {
    unit.trace->AddUser();
  }
  std::vector<SweepUnitResult> results(units.size());
  const std::vector<TaskOutcome> outcomes = RunTasks(
      units.size(),
      [this, &units, &results](size_t i) {
        const SweepUnit& unit = units[i];
        const TraceView view = unit.trace->Acquire();
        if (unit.run) {
          results[i].results = unit.run(view);
        } else {
          std::vector<std::unique_ptr<Cache>> caches = unit.make_caches(view);
          results[i].results = MultiSimulate(view, caches, unit.options);
        }
        // Σ trace length × result streams: for a one-pass unit this counts
        // the equivalent brute-force work the engine replaced, keeping
        // requests/sec comparable across modes.
        simulated_requests_ += view.size() * results[i].results.size();
        // Only a successful unit releases its claim; a permanently failing
        // one keeps the trace cached, which at worst delays the release
        // until the SharedTrace itself is destroyed.
        unit.trace->ReleaseUser();
      },
      options_);
  for (size_t i = 0; i < units.size(); ++i) {
    results[i].label = units[i].label;
    results[i].ok = outcomes[i].ok;
    results[i].attempts = outcomes[i].attempts;
    results[i].error = outcomes[i].error;
  }
  return results;
}

}  // namespace s3fifo
