// The sweep engine: fans dataset × trace simulation units out over the
// fault-tolerant RunTasks thread pool, streaming each trace ONCE through all
// of its unit's caches (MultiSimulate) and materializing each shared trace
// ONCE no matter how many units consume it.
//
// Traces flow through the engine as TraceViews: a SharedTrace produces a
// view lazily on the first worker that needs it — generated on the heap, or
// mmap'd straight out of a persistent TraceCache, in which case the trace is
// never deserialized into AoS Request records at all.
//
// Determinism: every unit is an independent (trace, caches) simulation whose
// result depends only on its inputs, and results are collected index-aligned
// with the unit list — so the output is identical for any thread count,
// including the sequential num_threads=1 case, and for any trace backing.
//
// Memory: a SharedTrace materializes its view lazily on the first worker
// that needs it and drops it as soon as the last unit registered against it
// completes, so peak memory is bounded by the traces in flight, not the
// whole sweep (mmap-backed views additionally release their file mapping).
#ifndef SRC_SIM_SWEEP_ENGINE_H_
#define SRC_SIM_SWEEP_ENGINE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/sim/multi_sim.h"
#include "src/sim/runner.h"
#include "src/trace/trace_cache.h"
#include "src/workload/dataset_profiles.h"

namespace s3fifo {

// A lazily materialized, shareable trace view. Acquire() runs the factory on
// first call (thread-safe; concurrent acquirers block on the same
// materialization) and hands out copies of one TraceView — copies share the
// backing storage (heap Trace or file mapping). Heap-backed factories
// pre-compute Trace::Stats() before publishing, so concurrent stats() reads
// never race on the stats cache.
class SharedTrace {
 public:
  explicit SharedTrace(std::function<TraceView()> make_view)
      : make_view_(std::move(make_view)) {}

  TraceView Acquire();

 private:
  friend class SweepEngine;

  // Engine bookkeeping: one more / one less unit will Acquire this trace.
  // When the pending count returns to zero the cached view is released
  // (workers still holding a view copy keep the backing alive until they
  // finish).
  void AddUser();
  void ReleaseUser();

  std::mutex mu_;
  std::function<TraceView()> make_view_;
  std::optional<TraceView> view_;
  int pending_users_ = 0;
};

using SharedTracePtr = std::shared_ptr<SharedTrace>;

// One unit of sweep work: a trace streamed once through a set of caches.
// make_caches runs on the worker with the materialized view, so cache
// capacities can be derived from trace statistics (footprint fractions).
//
// Alternatively a unit may supply `run`, an arbitrary view -> results
// computation executed on the worker (the one-pass MRC engine path: one
// traversal producing the results for a whole capacity grid). When `run` is
// set it replaces the make_caches/MultiSimulate pipeline; options are the
// callback's own business.
struct SweepUnit {
  std::string label;
  SharedTracePtr trace;
  std::function<std::vector<std::unique_ptr<Cache>>(const TraceView&)> make_caches;
  std::function<std::vector<SimResult>(const TraceView&)> run;
  SimOptions options;
};

struct SweepUnitResult {
  std::string label;
  std::vector<SimResult> results;  // index-aligned with make_caches' vector
  bool ok = false;
  uint32_t attempts = 0;
  std::string error;
};

class SweepEngine {
 public:
  explicit SweepEngine(const RunnerOptions& options = {}) : options_(options) {}

  // Any TraceView factory (the general form; the helpers below wrap it).
  static SharedTracePtr MakeSharedView(std::function<TraceView()> make_view) {
    return std::make_shared<SharedTrace>(std::move(make_view));
  }
  // Heap-generated trace (stats pre-warmed before publication).
  static SharedTracePtr MakeSharedTrace(std::function<Trace()> generate);
  // Dataset trace; with a TraceCache the view is served mmap'd from disk
  // after the first-ever generation, across runs and processes.
  static SharedTracePtr MakeSharedDatasetTrace(const DatasetProfile& profile,
                                               uint32_t trace_index, double scale,
                                               TraceCache* trace_cache = nullptr);

  // Runs every unit; the result vector is index-aligned with `units`.
  std::vector<SweepUnitResult> Run(const std::vector<SweepUnit>& units);

  // Total requests streamed through caches in the last Run
  // (Σ trace.size() × caches per unit) — the numerator for requests/sec.
  uint64_t last_simulated_requests() const { return simulated_requests_.load(); }

 private:
  RunnerOptions options_;
  std::atomic<uint64_t> simulated_requests_{0};
};

}  // namespace s3fifo

#endif  // SRC_SIM_SWEEP_ENGINE_H_
