// The sweep engine: fans dataset × trace simulation units out over the
// fault-tolerant RunTasks thread pool, streaming each trace ONCE through all
// of its unit's caches (MultiSimulate) and generating each shared trace ONCE
// no matter how many units consume it.
//
// Determinism: every unit is an independent (trace, caches) simulation whose
// result depends only on its inputs, and results are collected index-aligned
// with the unit list — so the output is identical for any thread count,
// including the sequential num_threads=1 case.
//
// Memory: a SharedTrace is generated lazily on the first worker that needs
// it and dropped as soon as the last unit registered against it completes,
// so peak memory is bounded by the traces in flight, not the whole sweep.
#ifndef SRC_SIM_SWEEP_ENGINE_H_
#define SRC_SIM_SWEEP_ENGINE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/sim/multi_sim.h"
#include "src/sim/runner.h"
#include "src/workload/dataset_profiles.h"

namespace s3fifo {

// A lazily generated, shareable trace. Acquire() generates on first call
// (thread-safe; concurrent acquirers block on the same generation) and hands
// out shared_ptrs to one Trace instance. Trace::Stats() is pre-computed
// before the trace is published, so concurrent readers never race on the
// stats cache.
class SharedTrace {
 public:
  explicit SharedTrace(std::function<Trace()> generate) : generate_(std::move(generate)) {}

  std::shared_ptr<const Trace> Acquire();

 private:
  friend class SweepEngine;

  // Engine bookkeeping: one more / one less unit will Acquire this trace.
  // When the pending count returns to zero the cached trace is released
  // (workers still holding a shared_ptr keep it alive until they finish).
  void AddUser();
  void ReleaseUser();

  std::mutex mu_;
  std::function<Trace()> generate_;
  std::shared_ptr<const Trace> trace_;
  int pending_users_ = 0;
};

using SharedTracePtr = std::shared_ptr<SharedTrace>;

// One unit of sweep work: a trace streamed once through a set of caches.
// make_caches runs on the worker with the materialized trace, so cache
// capacities can be derived from trace statistics (footprint fractions).
struct SweepUnit {
  std::string label;
  SharedTracePtr trace;
  std::function<std::vector<std::unique_ptr<Cache>>(const Trace&)> make_caches;
  SimOptions options;
};

struct SweepUnitResult {
  std::string label;
  std::vector<SimResult> results;  // index-aligned with make_caches' vector
  bool ok = false;
  uint32_t attempts = 0;
  std::string error;
};

class SweepEngine {
 public:
  explicit SweepEngine(const RunnerOptions& options = {}) : options_(options) {}

  static SharedTracePtr MakeSharedTrace(std::function<Trace()> generate) {
    return std::make_shared<SharedTrace>(std::move(generate));
  }
  static SharedTracePtr MakeSharedDatasetTrace(const DatasetProfile& profile,
                                               uint32_t trace_index, double scale);

  // Runs every unit; the result vector is index-aligned with `units`.
  std::vector<SweepUnitResult> Run(const std::vector<SweepUnit>& units);

  // Total requests streamed through caches in the last Run
  // (Σ trace.size() × caches per unit) — the numerator for requests/sec.
  uint64_t last_simulated_requests() const { return simulated_requests_.load(); }

 private:
  RunnerOptions options_;
  std::atomic<uint64_t> simulated_requests_{0};
};

}  // namespace s3fifo

#endif  // SRC_SIM_SWEEP_ENGINE_H_
