#include "src/trace/next_access.h"

#include <unordered_map>

namespace s3fifo {

void AnnotateNextAccess(Trace& trace) {
  auto& reqs = trace.mutable_requests();
  std::unordered_map<uint64_t, uint64_t> next_seen;
  next_seen.reserve(reqs.size() / 4 + 16);
  for (size_t i = reqs.size(); i-- > 0;) {
    Request& r = reqs[i];
    auto it = next_seen.find(r.id);
    r.next_access = it == next_seen.end() ? kNeverAccessed : it->second;
    next_seen[r.id] = i;
  }
  trace.set_annotated(true);
}

}  // namespace s3fifo
