// Next-access annotation: fills Request::next_access with the index of the
// subsequent request to the same id (kNeverAccessed if none). One reverse
// pass, O(n) time, O(distinct ids) space. Required by the Belady policy and
// the quick-demotion precision analysis (§6.1).
#ifndef SRC_TRACE_NEXT_ACCESS_H_
#define SRC_TRACE_NEXT_ACCESS_H_

#include "src/trace/trace.h"

namespace s3fifo {

void AnnotateNextAccess(Trace& trace);

}  // namespace s3fifo

#endif  // SRC_TRACE_NEXT_ACCESS_H_
