// The request model shared by the simulator, analysis, and workload layers.
#ifndef SRC_TRACE_REQUEST_H_
#define SRC_TRACE_REQUEST_H_

#include <cstdint>
#include <limits>

namespace s3fifo {

enum class OpType : uint8_t {
  kGet = 0,
  kSet = 1,     // write/overwrite: treated as insert-or-update
  kDelete = 2,  // explicit invalidation
};

// Sentinel for "this object is never requested again".
inline constexpr uint64_t kNeverAccessed = std::numeric_limits<uint64_t>::max();

struct Request {
  uint64_t id = 0;
  uint32_t size = 1;  // bytes; 1 in count-based (slab) simulations
  OpType op = OpType::kGet;
  uint32_t tenant = 0;
  uint64_t time = 0;  // logical timestamp (request index) unless a trace carries real time
  // Index of the next request to the same id, filled by AnnotateNextAccess();
  // kNeverAccessed when unknown or absent. Consumed by Belady and by the
  // demotion-precision analysis.
  uint64_t next_access = kNeverAccessed;
};

}  // namespace s3fifo

#endif  // SRC_TRACE_REQUEST_H_
