#include "src/trace/tenant_split.h"

#include <algorithm>
#include <unordered_map>

#include "src/util/hash.h"

namespace s3fifo {

std::vector<Trace> SplitByTenant(const Trace& trace) {
  std::unordered_map<uint32_t, size_t> index_of;
  std::vector<std::vector<Request>> buckets;
  for (const Request& r : trace.requests()) {
    auto [it, inserted] = index_of.emplace(r.tenant, buckets.size());
    if (inserted) {
      buckets.emplace_back();
    }
    buckets[it->second].push_back(r);
  }
  std::vector<Trace> out;
  out.reserve(buckets.size());
  for (size_t i = 0; i < buckets.size(); ++i) {
    const uint32_t tenant = buckets[i].empty() ? 0 : buckets[i].front().tenant;
    Trace t(std::move(buckets[i]), trace.name() + "/tenant" + std::to_string(tenant));
    out.push_back(std::move(t));
  }
  return out;
}

Trace AssignTenantsByIdHash(const Trace& trace, uint32_t num_tenants) {
  num_tenants = std::max(num_tenants, 1u);
  std::vector<Request> reqs = trace.requests();
  for (Request& r : reqs) {
    r.tenant = static_cast<uint32_t>(HashId(r.id ^ 0xa5a5a5a5a5a5a5a5ULL) % num_tenants);
  }
  return Trace(std::move(reqs), trace.name());
}

}  // namespace s3fifo
