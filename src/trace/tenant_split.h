// Multi-tenant trace splitting (paper §5.1.1: "we split four datasets ...
// with tenant information into per-tenant traces for an in-depth study").
#ifndef SRC_TRACE_TENANT_SPLIT_H_
#define SRC_TRACE_TENANT_SPLIT_H_

#include <vector>

#include "src/trace/trace.h"

namespace s3fifo {

// Splits a trace into one sub-trace per tenant id, preserving request
// order within each tenant. Tenants appear in order of first occurrence.
std::vector<Trace> SplitByTenant(const Trace& trace);

// Assigns synthetic tenants to a single-tenant trace by id-hash sharding
// (every request of an object maps to the same tenant), returning the
// annotated copy. Useful to exercise multi-tenant tooling on generated
// workloads.
Trace AssignTenantsByIdHash(const Trace& trace, uint32_t num_tenants);

}  // namespace s3fifo

#endif  // SRC_TRACE_TENANT_SPLIT_H_
