#include "src/trace/trace.h"

#include <unordered_map>

#include "src/trace/trace_view.h"
#include "src/util/hash.h"

namespace s3fifo {

Trace::Trace(std::vector<Request> requests, std::string name)
    : requests_(std::move(requests)), name_(std::move(name)) {}

void Trace::Append(const Request& req) {
  requests_.push_back(req);
  stats_valid_ = false;
  annotated_ = false;
}

uint64_t Trace::Fingerprint() const {
  // Single definition of the digest, shared with mmap-backed views.
  return TraceView::Borrow(*this).ComputeFingerprint();
}

const TraceStats& Trace::Stats() const {
  if (stats_valid_) {
    return stats_;
  }
  TraceStats s;
  s.num_requests = requests_.size();
  std::unordered_map<uint64_t, uint64_t> request_count;
  std::unordered_map<uint64_t, uint32_t> last_size;
  request_count.reserve(requests_.size() / 4 + 16);
  for (const Request& r : requests_) {
    switch (r.op) {
      case OpType::kGet:
        ++s.num_gets;
        break;
      case OpType::kSet:
        ++s.num_sets;
        break;
      case OpType::kDelete:
        ++s.num_deletes;
        break;
    }
    if (r.op == OpType::kDelete) {
      continue;  // deletes do not count toward popularity
    }
    s.total_bytes_requested += r.size;
    ++request_count[r.id];
    last_size[r.id] = r.size;
  }
  s.num_objects = request_count.size();
  uint64_t one_hit = 0;
  for (const auto& [id, count] : request_count) {
    if (count == 1) {
      ++one_hit;
    }
  }
  for (const auto& [id, size] : last_size) {
    s.footprint_bytes += size;
  }
  s.one_hit_wonder_ratio =
      s.num_objects == 0 ? 0.0
                         : static_cast<double>(one_hit) / static_cast<double>(s.num_objects);
  stats_ = s;
  stats_valid_ = true;
  return stats_;
}

}  // namespace s3fifo
