// An in-memory request trace plus its summary statistics.
#ifndef SRC_TRACE_TRACE_H_
#define SRC_TRACE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/request.h"

namespace s3fifo {

struct TraceStats {
  uint64_t num_requests = 0;
  uint64_t num_objects = 0;  // distinct ids ("footprint" in objects)
  uint64_t total_bytes_requested = 0;
  uint64_t footprint_bytes = 0;  // sum of sizes over distinct ids (last size seen)
  uint64_t num_gets = 0;
  uint64_t num_sets = 0;
  uint64_t num_deletes = 0;
  // Fraction of distinct objects requested exactly once in the full trace.
  double one_hit_wonder_ratio = 0.0;
};

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<Request> requests, std::string name = "");

  const std::vector<Request>& requests() const { return requests_; }
  std::vector<Request>& mutable_requests() { return requests_; }
  size_t size() const { return requests_.size(); }
  bool empty() const { return requests_.empty(); }
  const Request& operator[](size_t i) const { return requests_[i]; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  bool annotated() const { return annotated_; }
  void set_annotated(bool annotated) { annotated_ = annotated; }

  // Computes (and caches) full-trace statistics. O(n) on first call.
  const TraceStats& Stats() const;

  void Append(const Request& req);

  // Order-sensitive 64-bit digest over (id, size, op) of every request.
  // Bit-identical across platforms for the same trace; the golden-trace
  // tests pin generator outputs with it, and the correctness harness uses it
  // to assert replay determinism.
  uint64_t Fingerprint() const;

 private:
  std::vector<Request> requests_;
  std::string name_;
  bool annotated_ = false;
  mutable bool stats_valid_ = false;
  mutable TraceStats stats_;
};

}  // namespace s3fifo

#endif  // SRC_TRACE_TRACE_H_
