#include "src/trace/trace_cache.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "src/trace/trace_format.h"
#include "src/trace/trace_io.h"
#include "src/util/hash.h"

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace s3fifo {
namespace {

[[noreturn]] void Fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + ": " + path);
}

// Owns the bytes backing an mmap'd view; destroyed when the last view copy
// referencing it goes away.
struct Mapping {
  void* addr = nullptr;
  size_t len = 0;
  std::vector<std::byte> heap;  // non-mmap fallback

  const std::byte* data() const {
    return addr != nullptr ? static_cast<const std::byte*>(addr) : heap.data();
  }

  ~Mapping() {
#if !defined(_WIN32)
    if (addr != nullptr) {
      ::munmap(addr, len);
    }
#endif
  }
};

std::shared_ptr<Mapping> MapFile(const std::string& path) {
  auto mapping = std::make_shared<Mapping>();
#if !defined(_WIN32)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    Fail("cannot open trace file for mapping", path);
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    Fail("cannot stat trace file", path);
  }
  mapping->len = static_cast<size_t>(st.st_size);
  if (mapping->len > 0) {
    void* addr = ::mmap(nullptr, mapping->len, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      ::close(fd);
      Fail("mmap failed on trace file", path);
    }
    mapping->addr = addr;
  }
  ::close(fd);
#else
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    Fail("cannot open trace file for mapping", path);
  }
  in.seekg(0, std::ios::end);
  mapping->heap.resize(static_cast<size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(mapping->heap.data()),
          static_cast<std::streamsize>(mapping->heap.size()));
  mapping->len = mapping->heap.size();
#endif
  return mapping;
}

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

// The sidecar holding the cold (generate+persist) cost of a cache file, so
// warm runs can report their speedup without regenerating anything.
std::string SidecarPath(const std::string& trace_path) { return trace_path + ".ms"; }

void WriteColdCostSidecar(const std::string& trace_path, double ms) {
  std::ofstream out(SidecarPath(trace_path), std::ios::trunc);
  out << ms << "\n";  // best-effort: a missing sidecar only degrades reports
}

double ReadColdCostSidecar(const std::string& trace_path) {
  std::ifstream in(SidecarPath(trace_path));
  double ms = 0;
  if (in && (in >> ms) && ms >= 0) {
    return ms;
  }
  return 0;
}

std::string UniqueTempSuffix() {
  static std::atomic<uint64_t> counter{0};
#if !defined(_WIN32)
  const uint64_t pid = static_cast<uint64_t>(::getpid());
#else
  const uint64_t pid = 0;
#endif
  return std::to_string(pid) + "." + std::to_string(counter.fetch_add(1));
}

}  // namespace

std::string TraceSpec::CacheKey() const {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  const auto mix_string = [&h](const std::string& s) {
    for (const char c : s) {
      h = Mix64(h ^ static_cast<uint8_t>(c));
    }
    h = Mix64(h ^ s.size());
  };
  mix_string(group);
  mix_string(detail);
  h = Mix64(h ^ generator_version);

  std::string sanitized;
  for (const char c : group.substr(0, 40)) {
    const bool safe = std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_';
    sanitized += safe ? c : '_';
  }
  if (sanitized.empty()) {
    sanitized = "trace";
  }
  char digest[17];
  std::snprintf(digest, sizeof(digest), "%016llx", static_cast<unsigned long long>(h));
  return sanitized + "-" + digest;
}

TraceView MapTraceFile(const std::string& path, bool verify) {
  const std::shared_ptr<Mapping> mapping = MapFile(path);
  if (mapping->len < sizeof(TraceFileHeaderV2)) {
    Fail("truncated trace header", path);
  }
  const std::byte* base = mapping->data();
  TraceFileHeaderV2 header{};
  std::memcpy(&header, base, sizeof(header));
  if (std::memcmp(header.magic, kTraceMagic, sizeof(kTraceMagic)) != 0) {
    Fail("bad magic in trace file", path);
  }
  if (header.version != kTraceVersionV2) {
    Fail("unsupported trace version for mmap (only v2 is columnar)", path);
  }
  if (header.name_len > kMaxTraceNameLen) {
    Fail("corrupt name length in trace header", path);
  }
  const uint64_t n = header.num_requests;
  const bool annotated = (header.flags & kTraceFlagAnnotated) != 0;
  const TraceFileLayout layout = TraceFileLayout::For(n, annotated, header.name_len);
  if (layout.file_size != mapping->len) {
    Fail("trace file size mismatch (truncated or corrupt)", path);
  }
  std::string name(reinterpret_cast<const char*>(base + layout.name_offset), header.name_len);

  TraceStats stats;
  stats.num_requests = n;
  stats.num_objects = header.num_objects;
  stats.total_bytes_requested = header.total_bytes_requested;
  stats.footprint_bytes = header.footprint_bytes;
  stats.num_gets = header.num_gets;
  stats.num_sets = header.num_sets;
  stats.num_deletes = header.num_deletes;
  stats.one_hit_wonder_ratio = header.one_hit_wonder_ratio;

  TraceView::Columns cols;
  cols.id = {base + layout.id_offset, sizeof(uint64_t)};
  cols.time = {base + layout.time_offset, sizeof(uint64_t)};
  if (annotated) {
    cols.next_access = {base + layout.next_access_offset, sizeof(uint64_t)};
  }
  cols.size = {base + layout.size_offset, sizeof(uint32_t)};
  cols.tenant = {base + layout.tenant_offset, sizeof(uint32_t)};
  cols.op = {base + layout.op_offset, sizeof(uint8_t)};

  TraceView view = TraceView::FromColumns(cols, n, annotated, std::move(name), stats,
                                          header.fingerprint, mapping);
  if (verify) {
    const std::byte* ops = base + layout.op_offset;
    for (uint64_t i = 0; i < n; ++i) {
      if (static_cast<uint8_t>(ops[i]) > static_cast<uint8_t>(OpType::kDelete)) {
        Fail("corrupt op byte in trace", path);
      }
    }
    if (view.ComputeFingerprint() != header.fingerprint) {
      Fail("trace fingerprint mismatch (corrupt or stale cache file)", path);
    }
  }
  return view;
}

TraceCache::TraceCache(std::string dir, TraceCacheOptions options)
    : dir_(std::move(dir)), options_(options) {
  std::filesystem::create_directories(dir_);
}

uint64_t TraceCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t TraceCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::vector<TraceCacheEvent> TraceCache::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

TraceView TraceCache::GetOrGenerate(const TraceSpec& spec,
                                    const std::function<Trace()>& generate) {
  const std::string key = spec.CacheKey();
  const std::string path = dir_ + "/" + key + ".s3ft";

  std::shared_ptr<std::mutex> key_mutex;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = mapped_.find(key);
    if (it != mapped_.end()) {
      ++hits_;
      events_.push_back({spec.group, key, /*warm=*/true, 0.0, it->second.size()});
      return it->second;
    }
    auto& slot = inflight_[key];
    if (slot == nullptr) {
      slot = std::make_shared<std::mutex>();
    }
    key_mutex = slot;
  }

  // Serialize resolution per key: a second racer waits here, then finds the
  // mapping installed by the first.
  std::lock_guard<std::mutex> key_lock(*key_mutex);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = mapped_.find(key);
    if (it != mapped_.end()) {
      ++hits_;
      events_.push_back({spec.group, key, /*warm=*/true, 0.0, it->second.size()});
      return it->second;
    }
  }

  const auto start = std::chrono::steady_clock::now();
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    try {
      TraceView view = MapTraceFile(path, options_.verify_fingerprint);
      const double cold_ms = ReadColdCostSidecar(path);
      std::lock_guard<std::mutex> lock(mu_);
      mapped_[key] = view;
      ++hits_;
      events_.push_back({spec.group, key, /*warm=*/true, ElapsedMs(start), view.size(), cold_ms});
      return view;
    } catch (const std::exception& e) {
      // A corrupt/truncated/stale file is rejected and rebuilt from scratch.
      std::fprintf(stderr, "[trace-cache] discarding invalid cache file %s: %s\n", path.c_str(),
                   e.what());
      std::filesystem::remove(path, ec);
      std::filesystem::remove(SidecarPath(path), ec);
    }
  }

  Trace trace = generate();
  trace.Stats();  // computed once here, persisted in the header
  const std::string tmp = path + ".tmp." + UniqueTempSuffix();
  WriteBinaryTrace(trace, tmp);
  // Atomic publish: concurrent populators of the same key write identical
  // bytes (the v2 writer is byte-deterministic), so whichever rename lands
  // last leaves the same valid file.
  std::filesystem::rename(tmp, path);
  TraceView view = MapTraceFile(path, options_.verify_fingerprint);
  const double cold_ms = ElapsedMs(start);
  WriteColdCostSidecar(path, cold_ms);

  std::lock_guard<std::mutex> lock(mu_);
  mapped_[key] = view;
  ++misses_;
  events_.push_back({spec.group, key, /*warm=*/false, cold_ms, view.size(), cold_ms});
  return view;
}

}  // namespace s3fifo
