// A persistent, content-addressed on-disk cache of generated traces.
//
// Synthetic workload generation dominates cold figure regeneration (Zipf
// sampling, scan/loop mixing, per-request RNG), yet the output is a pure
// function of (generator, parameters, seed). The cache keys a generator spec
// to a v2 columnar trace file (trace_format.h): the first use generates and
// persists the trace; every later run — including across processes — mmaps
// the file read-only and serves a zero-copy columnar TraceView, so a cached
// trace is never deserialized into AoS Request records at all. This is the
// compact-binary-trace discipline libCacheSim applies to production traces,
// pointed at our generator outputs.
//
// Integrity: the v2 header carries the order-sensitive trace fingerprint.
// Verification is lazy — deferred to the first map of a key in a process,
// not rerun on later acquisitions of the same mapping — and a file that
// fails structural checks or the fingerprint is discarded and regenerated.
//
// Concurrency: populations write to a unique temp file and publish with an
// atomic rename(2), so two workers (threads or processes) racing on the same
// key both end up reading one valid file; byte-determinism of the v2 writer
// makes either winner equivalent.
#ifndef SRC_TRACE_TRACE_CACHE_H_
#define SRC_TRACE_TRACE_CACHE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/trace/trace_view.h"

namespace s3fifo {

// Version of the in-repo workload generators, folded into every cache key.
// Bump it whenever any generator's output changes (the golden-trace tests
// will flag such a change); stale cache files then simply stop being hit.
inline constexpr uint64_t kTraceGeneratorVersion = 1;

// Identifies one generated trace. `group` labels the source for reports
// (dataset profile name, "zipf", ...); `detail` is a canonical serialization
// of every parameter that affects the generator's output, including seeds.
struct TraceSpec {
  std::string group;
  std::string detail;
  uint64_t generator_version = kTraceGeneratorVersion;

  // "<sanitized-group>-<16 hex digest chars>" — stable across processes and
  // platforms, filesystem-safe.
  std::string CacheKey() const;
};

// Maps a v2 trace file read-only and wraps it in a columnar TraceView (the
// view shares ownership of the mapping). Structural validation (magic,
// version, exact file size for the header's request count) always runs;
// `verify` additionally recomputes the fingerprint and range-checks the op
// column in one linear pass. Throws std::runtime_error on any failure.
TraceView MapTraceFile(const std::string& path, bool verify = true);

struct TraceCacheOptions {
  // Verify the fingerprint on the first map of each key in this process.
  bool verify_fingerprint = true;
};

// One GetOrGenerate resolution, for the bench reports (BENCH_trace_cache).
struct TraceCacheEvent {
  std::string group;
  std::string key;
  bool warm = false;   // served from disk (or the in-process mapping table)
  double ms = 0;       // wall time to resolve: generate+persist+map, or map
  uint64_t requests = 0;
  // Generate+persist cost recorded by whichever run populated this key (a
  // sidecar next to the cache file), so a warm-only run can still report its
  // cold-vs-warm speedup. 0 = unknown.
  double cold_ms_recorded = 0;
};

class TraceCache {
 public:
  // Creates `dir` (and parents) if missing. Throws on failure.
  explicit TraceCache(std::string dir, TraceCacheOptions options = {});

  TraceCache(const TraceCache&) = delete;
  TraceCache& operator=(const TraceCache&) = delete;

  // Returns the view for `spec`, generating and persisting the trace on
  // first use. `generate` must be deterministic in the spec. Thread-safe;
  // concurrent misses on the same key generate once per process.
  TraceView GetOrGenerate(const TraceSpec& spec, const std::function<Trace()>& generate);

  const std::string& dir() const { return dir_; }
  uint64_t hits() const;
  uint64_t misses() const;
  std::vector<TraceCacheEvent> events() const;

 private:
  std::string dir_;
  TraceCacheOptions options_;
  mutable std::mutex mu_;
  // Open mappings, one per key: repeated acquisitions share one mmap and the
  // (lazy) fingerprint verification done when it was first mapped.
  std::map<std::string, TraceView> mapped_;
  // Per-key generation locks so a miss on one key never serializes another.
  std::map<std::string, std::shared_ptr<std::mutex>> inflight_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  std::vector<TraceCacheEvent> events_;
};

}  // namespace s3fifo

#endif  // SRC_TRACE_TRACE_CACHE_H_
