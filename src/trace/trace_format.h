// On-disk layout of the v2 binary trace format, shared by the stream
// reader/writer (trace_io) and the mmap loader (trace_cache).
//
// v2 is columnar (SoA): after a fixed header and the trace name, each request
// field is stored as one contiguous array, so an mmap'd file can be consumed
// in place by TraceView without materializing AoS Request records. Every
// column starts at an 8-byte-aligned offset and is padded to a multiple of 8
// with zero bytes, which keeps u64/u32 loads aligned (mmap bases are
// page-aligned) and makes files byte-deterministic for a given trace.
//
//   header (96 bytes, little-endian, no implicit padding)
//   name bytes               (name_len, zero-padded to 8)
//   id        u64 × n
//   time      u64 × n
//   next_access u64 × n      (only when kTraceFlagAnnotated is set)
//   size      u32 × n        (zero-padded to 8)
//   tenant    u32 × n        (zero-padded to 8)
//   op        u8  × n        (zero-padded to 8)
//
// v1 (AoS 24-byte records, no tenant/next_access) remains readable through
// ReadBinaryTrace; it cannot be mmap'd because its u64 fields land on
// unaligned offsets.
#ifndef SRC_TRACE_TRACE_FORMAT_H_
#define SRC_TRACE_TRACE_FORMAT_H_

#include <cstdint>

namespace s3fifo {

inline constexpr char kTraceMagic[4] = {'S', '3', 'F', 'T'};
inline constexpr uint32_t kTraceVersionV1 = 1;
inline constexpr uint32_t kTraceVersionV2 = 2;

// Header flags.
inline constexpr uint64_t kTraceFlagAnnotated = 1ull << 0;

// Sanity bound on the header's name_len (catches corrupt headers early).
inline constexpr uint32_t kMaxTraceNameLen = 4096;

struct TraceFileHeaderV2 {
  char magic[4];
  uint32_t version;
  uint64_t num_requests;
  uint64_t flags;
  // Trace::Fingerprint() of the payload — the order-sensitive digest over
  // (id, size, op). Verified against the columns when a cached file is
  // mapped, so silent corruption never reaches a simulation.
  uint64_t fingerprint;
  // TraceStats snapshot, so consumers of a cached trace never re-scan it.
  uint64_t num_objects;
  uint64_t total_bytes_requested;
  uint64_t footprint_bytes;
  uint64_t num_gets;
  uint64_t num_sets;
  uint64_t num_deletes;
  double one_hit_wonder_ratio;
  uint32_t name_len;
  uint32_t reserved;  // zero
};
static_assert(sizeof(TraceFileHeaderV2) == 96, "v2 trace header must be packed to 96 bytes");

// Byte offsets of each section for a given request count / flags / name
// length. All offsets are multiples of 8.
struct TraceFileLayout {
  uint64_t name_offset = 0;
  uint64_t id_offset = 0;
  uint64_t time_offset = 0;
  uint64_t next_access_offset = 0;  // 0 when the trace is not annotated
  uint64_t size_offset = 0;
  uint64_t tenant_offset = 0;
  uint64_t op_offset = 0;
  uint64_t file_size = 0;

  static constexpr uint64_t PadTo8(uint64_t v) { return (v + 7) & ~uint64_t{7}; }

  static TraceFileLayout For(uint64_t n, bool annotated, uint32_t name_len) {
    TraceFileLayout l;
    l.name_offset = sizeof(TraceFileHeaderV2);
    l.id_offset = l.name_offset + PadTo8(name_len);
    l.time_offset = l.id_offset + 8 * n;
    uint64_t pos = l.time_offset + 8 * n;
    if (annotated) {
      l.next_access_offset = pos;
      pos += 8 * n;
    }
    l.size_offset = pos;
    l.tenant_offset = l.size_offset + PadTo8(4 * n);
    l.op_offset = l.tenant_offset + PadTo8(4 * n);
    l.file_size = l.op_offset + PadTo8(n);
    return l;
  }
};

}  // namespace s3fifo

#endif  // SRC_TRACE_TRACE_FORMAT_H_
