#include "src/trace/trace_io.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/trace/trace_format.h"

namespace s3fifo {
namespace {

// v1 record layout (AoS), kept for backward-compatible reads only.
struct BinaryRecordV1 {
  uint64_t id;
  uint32_t size;
  uint8_t op;
  uint8_t pad[3];
  uint64_t time;
};
static_assert(sizeof(BinaryRecordV1) == 24, "v1 binary trace record must be packed to 24 bytes");

[[noreturn]] void Fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + ": " + path);
}

OpType OpFromString(const std::string& s) {
  if (s == "get" || s == "GET" || s == "read" || s == "r") {
    return OpType::kGet;
  }
  if (s == "set" || s == "SET" || s == "write" || s == "w") {
    return OpType::kSet;
  }
  if (s == "delete" || s == "DELETE" || s == "del" || s == "d") {
    return OpType::kDelete;
  }
  throw std::runtime_error("unknown op in CSV trace: " + s);
}

const char* OpToString(OpType op) {
  switch (op) {
    case OpType::kGet:
      return "get";
    case OpType::kSet:
      return "set";
    case OpType::kDelete:
      return "delete";
  }
  return "get";
}

// Writes one column (possibly a zero-filled pad tail) so the file is
// byte-deterministic for a given trace.
void WritePad(std::ofstream& out, uint64_t written) {
  static const char kZeros[8] = {0};
  const uint64_t padded = TraceFileLayout::PadTo8(written);
  out.write(kZeros, static_cast<std::streamsize>(padded - written));
}

Trace ReadBinaryTraceV1(std::ifstream& in, const std::string& path) {
  uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in) {
    Fail("truncated trace header", path);
  }
  std::vector<Request> reqs;
  reqs.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    BinaryRecordV1 rec{};
    in.read(reinterpret_cast<char*>(&rec), sizeof(rec));
    if (!in) {
      Fail("truncated trace body", path);
    }
    if (rec.op > static_cast<uint8_t>(OpType::kDelete)) {
      Fail("corrupt op byte in trace", path);
    }
    Request r;
    r.id = rec.id;
    r.size = rec.size;
    r.op = static_cast<OpType>(rec.op);
    r.time = rec.time;
    reqs.push_back(r);
  }
  return Trace(std::move(reqs));
}

Trace ReadBinaryTraceV2(std::ifstream& in, const std::string& path) {
  TraceFileHeaderV2 header{};
  in.seekg(0);
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!in) {
    Fail("truncated trace header", path);
  }
  if (header.name_len > kMaxTraceNameLen) {
    Fail("corrupt name length in trace header", path);
  }
  const uint64_t n = header.num_requests;
  const bool annotated = (header.flags & kTraceFlagAnnotated) != 0;
  const TraceFileLayout layout = TraceFileLayout::For(n, annotated, header.name_len);

  std::string name(header.name_len, '\0');
  in.read(name.data(), header.name_len);

  std::vector<Request> reqs(n);
  auto read_column = [&](uint64_t offset, auto* scratch, auto assign) {
    scratch->resize(n);
    in.seekg(static_cast<std::streamoff>(offset));
    in.read(reinterpret_cast<char*>(scratch->data()),
            static_cast<std::streamsize>(sizeof((*scratch)[0]) * n));
    for (uint64_t i = 0; i < n; ++i) {
      assign(reqs[i], (*scratch)[i]);
    }
  };
  std::vector<uint64_t> u64s;
  std::vector<uint32_t> u32s;
  std::vector<uint8_t> u8s;
  read_column(layout.id_offset, &u64s, [](Request& r, uint64_t v) { r.id = v; });
  read_column(layout.time_offset, &u64s, [](Request& r, uint64_t v) { r.time = v; });
  if (annotated) {
    read_column(layout.next_access_offset, &u64s,
                [](Request& r, uint64_t v) { r.next_access = v; });
  }
  read_column(layout.size_offset, &u32s, [](Request& r, uint32_t v) { r.size = v; });
  read_column(layout.tenant_offset, &u32s, [](Request& r, uint32_t v) { r.tenant = v; });
  read_column(layout.op_offset, &u8s, [](Request& r, uint8_t v) { r.op = static_cast<OpType>(v); });
  if (!in) {
    Fail("truncated trace body", path);
  }
  for (uint8_t op : u8s) {
    if (op > static_cast<uint8_t>(OpType::kDelete)) {
      Fail("corrupt op byte in trace", path);
    }
  }
  Trace trace(std::move(reqs), std::move(name));
  trace.set_annotated(annotated);
  return trace;
}

}  // namespace

void WriteBinaryTrace(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    Fail("cannot open trace file for writing", path);
  }
  if (trace.name().size() > kMaxTraceNameLen) {
    Fail("trace name too long for binary header", path);
  }
  const TraceStats& stats = trace.Stats();
  TraceFileHeaderV2 header{};
  std::memcpy(header.magic, kTraceMagic, sizeof(header.magic));
  header.version = kTraceVersionV2;
  header.num_requests = trace.size();
  header.flags = trace.annotated() ? kTraceFlagAnnotated : 0;
  header.fingerprint = trace.Fingerprint();
  header.num_objects = stats.num_objects;
  header.total_bytes_requested = stats.total_bytes_requested;
  header.footprint_bytes = stats.footprint_bytes;
  header.num_gets = stats.num_gets;
  header.num_sets = stats.num_sets;
  header.num_deletes = stats.num_deletes;
  header.one_hit_wonder_ratio = stats.one_hit_wonder_ratio;
  header.name_len = static_cast<uint32_t>(trace.name().size());
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out.write(trace.name().data(), static_cast<std::streamsize>(trace.name().size()));
  WritePad(out, trace.name().size());

  const std::vector<Request>& reqs = trace.requests();
  auto write_column = [&](auto getter, uint64_t value_size) {
    for (const Request& r : reqs) {
      const auto v = getter(r);
      out.write(reinterpret_cast<const char*>(&v), static_cast<std::streamsize>(sizeof(v)));
    }
    WritePad(out, value_size * reqs.size());
  };
  write_column([](const Request& r) { return r.id; }, 8);
  write_column([](const Request& r) { return r.time; }, 8);
  if (trace.annotated()) {
    write_column([](const Request& r) { return r.next_access; }, 8);
  }
  write_column([](const Request& r) { return r.size; }, 4);
  write_column([](const Request& r) { return r.tenant; }, 4);
  write_column([](const Request& r) { return static_cast<uint8_t>(r.op); }, 1);
  if (!out) {
    Fail("short write on trace file", path);
  }
}

Trace ReadBinaryTrace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    Fail("cannot open trace file for reading", path);
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kTraceMagic, sizeof(kTraceMagic)) != 0) {
    Fail("bad magic in trace file", path);
  }
  uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in) {
    Fail("truncated trace header", path);
  }
  if (version == kTraceVersionV1) {
    return ReadBinaryTraceV1(in, path);
  }
  if (version == kTraceVersionV2) {
    return ReadBinaryTraceV2(in, path);
  }
  Fail("unsupported trace version", path);
}

void WriteCsvTrace(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    Fail("cannot open trace file for writing", path);
  }
  out << "time,id,size,op\n";
  for (const Request& r : trace.requests()) {
    out << r.time << ',' << r.id << ',' << r.size << ',' << OpToString(r.op) << '\n';
  }
  if (!out) {
    Fail("short write on trace file", path);
  }
}

Trace ReadCsvTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    Fail("cannot open trace file for reading", path);
  }
  std::vector<Request> reqs;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    if (first && line.rfind("time,", 0) == 0) {
      first = false;
      continue;  // header
    }
    first = false;
    std::istringstream ls(line);
    std::string field;
    Request r;
    if (!std::getline(ls, field, ',')) {
      Fail("malformed CSV line: " + line, path);
    }
    r.time = std::stoull(field);
    if (!std::getline(ls, field, ',')) {
      Fail("malformed CSV line: " + line, path);
    }
    r.id = std::stoull(field);
    if (!std::getline(ls, field, ',')) {
      Fail("malformed CSV line: " + line, path);
    }
    r.size = static_cast<uint32_t>(std::stoul(field));
    if (!std::getline(ls, field, ',')) {
      Fail("malformed CSV line: " + line, path);
    }
    r.op = OpFromString(field);
    reqs.push_back(r);
  }
  return Trace(std::move(reqs));
}

}  // namespace s3fifo
