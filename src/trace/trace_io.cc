#include "src/trace/trace_io.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace s3fifo {
namespace {

constexpr char kMagic[4] = {'S', '3', 'F', 'T'};
constexpr uint32_t kVersion = 1;

struct BinaryRecord {
  uint64_t id;
  uint32_t size;
  uint8_t op;
  uint8_t pad[3];
  uint64_t time;
};
static_assert(sizeof(BinaryRecord) == 24, "binary trace record must be packed to 24 bytes");

[[noreturn]] void Fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + ": " + path);
}

OpType OpFromString(const std::string& s) {
  if (s == "get" || s == "GET" || s == "read" || s == "r") {
    return OpType::kGet;
  }
  if (s == "set" || s == "SET" || s == "write" || s == "w") {
    return OpType::kSet;
  }
  if (s == "delete" || s == "DELETE" || s == "del" || s == "d") {
    return OpType::kDelete;
  }
  throw std::runtime_error("unknown op in CSV trace: " + s);
}

const char* OpToString(OpType op) {
  switch (op) {
    case OpType::kGet:
      return "get";
    case OpType::kSet:
      return "set";
    case OpType::kDelete:
      return "delete";
  }
  return "get";
}

}  // namespace

void WriteBinaryTrace(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    Fail("cannot open trace file for writing", path);
  }
  out.write(kMagic, sizeof(kMagic));
  const uint32_t version = kVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const uint64_t n = trace.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (const Request& r : trace.requests()) {
    BinaryRecord rec{};
    rec.id = r.id;
    rec.size = r.size;
    rec.op = static_cast<uint8_t>(r.op);
    rec.time = r.time;
    out.write(reinterpret_cast<const char*>(&rec), sizeof(rec));
  }
  if (!out) {
    Fail("short write on trace file", path);
  }
}

Trace ReadBinaryTrace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    Fail("cannot open trace file for reading", path);
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    Fail("bad magic in trace file", path);
  }
  uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || version != kVersion) {
    Fail("unsupported trace version", path);
  }
  uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in) {
    Fail("truncated trace header", path);
  }
  std::vector<Request> reqs;
  reqs.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    BinaryRecord rec{};
    in.read(reinterpret_cast<char*>(&rec), sizeof(rec));
    if (!in) {
      Fail("truncated trace body", path);
    }
    if (rec.op > static_cast<uint8_t>(OpType::kDelete)) {
      Fail("corrupt op byte in trace", path);
    }
    Request r;
    r.id = rec.id;
    r.size = rec.size;
    r.op = static_cast<OpType>(rec.op);
    r.time = rec.time;
    reqs.push_back(r);
  }
  return Trace(std::move(reqs));
}

void WriteCsvTrace(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    Fail("cannot open trace file for writing", path);
  }
  out << "time,id,size,op\n";
  for (const Request& r : trace.requests()) {
    out << r.time << ',' << r.id << ',' << r.size << ',' << OpToString(r.op) << '\n';
  }
  if (!out) {
    Fail("short write on trace file", path);
  }
}

Trace ReadCsvTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    Fail("cannot open trace file for reading", path);
  }
  std::vector<Request> reqs;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    if (first && line.rfind("time,", 0) == 0) {
      first = false;
      continue;  // header
    }
    first = false;
    std::istringstream ls(line);
    std::string field;
    Request r;
    if (!std::getline(ls, field, ',')) {
      Fail("malformed CSV line: " + line, path);
    }
    r.time = std::stoull(field);
    if (!std::getline(ls, field, ',')) {
      Fail("malformed CSV line: " + line, path);
    }
    r.id = std::stoull(field);
    if (!std::getline(ls, field, ',')) {
      Fail("malformed CSV line: " + line, path);
    }
    r.size = static_cast<uint32_t>(std::stoul(field));
    if (!std::getline(ls, field, ',')) {
      Fail("malformed CSV line: " + line, path);
    }
    r.op = OpFromString(field);
    reqs.push_back(r);
  }
  return Trace(std::move(reqs));
}

}  // namespace s3fifo
