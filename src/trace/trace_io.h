// Trace persistence: a compact binary format and CSV for interoperability
// with other simulators.
//
// Writes produce the v2 columnar layout (see trace_format.h): a stats- and
// fingerprint-carrying header followed by one array per request field —
// including tenant and, for annotated traces, next_access, which the v1
// record format dropped. All padding is zero-filled, so the same trace
// always serializes to identical bytes. Reads accept v1 (legacy 24-byte AoS
// records; tenant/next_access absent) and v2. The mmap fast path over v2
// files lives in trace_cache.h.
#ifndef SRC_TRACE_TRACE_IO_H_
#define SRC_TRACE_TRACE_IO_H_

#include <string>

#include "src/trace/trace.h"

namespace s3fifo {

// All functions throw std::runtime_error on IO or format errors.
void WriteBinaryTrace(const Trace& trace, const std::string& path);
Trace ReadBinaryTrace(const std::string& path);

// CSV columns: time,id,size,op  (op: get|set|delete). A header line is
// written and tolerated on read.
void WriteCsvTrace(const Trace& trace, const std::string& path);
Trace ReadCsvTrace(const std::string& path);

}  // namespace s3fifo

#endif  // SRC_TRACE_TRACE_IO_H_
