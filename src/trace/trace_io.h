// Trace persistence: a compact binary format (magic + fixed-width records)
// and CSV for interoperability with other simulators.
//
// Binary layout (little-endian):
//   header: "S3FT" (4 bytes) | version u32 | num_requests u64
//   record: id u64 | size u32 | op u8 | pad u8[3] | time u64
#ifndef SRC_TRACE_TRACE_IO_H_
#define SRC_TRACE_TRACE_IO_H_

#include <string>

#include "src/trace/trace.h"

namespace s3fifo {

// All functions throw std::runtime_error on IO or format errors.
void WriteBinaryTrace(const Trace& trace, const std::string& path);
Trace ReadBinaryTrace(const std::string& path);

// CSV columns: time,id,size,op  (op: get|set|delete). A header line is
// written and tolerated on read.
void WriteCsvTrace(const Trace& trace, const std::string& path);
Trace ReadCsvTrace(const std::string& path);

}  // namespace s3fifo

#endif  // SRC_TRACE_TRACE_IO_H_
