#include "src/trace/trace_view.h"

#include <cstddef>

#include "src/util/hash.h"

namespace s3fifo {

TraceView TraceView::FromTraceImpl(const Trace* trace, std::shared_ptr<const void> owner) {
  TraceView v;
  v.size_ = trace->size();
  v.annotated_ = trace->annotated();
  v.name_ = trace->name();
  v.heap_trace_ = trace;
  v.owner_ = std::move(owner);
  if (!trace->empty()) {
    const Request* reqs = trace->requests().data();
    v.aos_ = reqs;
    const std::byte* base = reinterpret_cast<const std::byte*>(reqs);
    constexpr size_t kStride = sizeof(Request);
    v.columns_.id = {base + offsetof(Request, id), kStride};
    v.columns_.size = {base + offsetof(Request, size), kStride};
    v.columns_.op = {base + offsetof(Request, op), kStride};
    v.columns_.tenant = {base + offsetof(Request, tenant), kStride};
    v.columns_.time = {base + offsetof(Request, time), kStride};
    if (trace->annotated()) {
      v.columns_.next_access = {base + offsetof(Request, next_access), kStride};
    }
  }
  return v;
}

TraceView TraceView::FromColumns(Columns columns, size_t num_requests, bool annotated,
                                 std::string name, const TraceStats& stats,
                                 uint64_t file_fingerprint, std::shared_ptr<const void> owner) {
  TraceView v;
  v.columns_ = columns;
  v.size_ = num_requests;
  v.annotated_ = annotated;
  v.name_ = std::move(name);
  v.stats_ = stats;
  v.file_fingerprint_ = file_fingerprint;
  v.owner_ = std::move(owner);
  return v;
}

uint64_t TraceView::ComputeFingerprint() const {
  // Must stay bit-identical to Trace::Fingerprint().
  uint64_t h = 0x5851f42d4c957f2dULL;
  for (size_t i = 0; i < size_; ++i) {
    h = Mix64(h ^ id(i));
    h = Mix64(h ^ (static_cast<uint64_t>(object_size(i)) << 8) ^
              static_cast<uint64_t>(op(i)));
  }
  return h;
}

Trace MaterializeTrace(const TraceView& view) {
  std::vector<Request> reqs;
  reqs.reserve(view.size());
  for (size_t i = 0; i < view.size(); ++i) {
    reqs.push_back(view.At(i));
  }
  Trace trace(std::move(reqs), view.name());
  trace.set_annotated(view.annotated());
  return trace;
}

}  // namespace s3fifo
